#!/usr/bin/env bash
# Tier-1 verification gate (ROADMAP.md) plus a sanitizer pass over the
# concurrency-heavy subsystems:
#
#   1. Configure + build + full ctest suite in ./build (the seed's
#      acceptance command, unchanged).
#   2. A separate ASan+UBSan tree (./build-asan, bench/examples off)
#      running the trace recorder and simmpi/exchange tests — the
#      multi-threaded code where a data race or lifetime bug in the
#      per-thread ring buffers would hide.
#
# Usage: ci/tier1.sh [--skip-asan]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

echo "== tier 1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

if [[ "${1:-}" == "--skip-asan" ]]; then
  echo "== skipping ASan+UBSan pass =="
  exit 0
fi

echo "== ASan+UBSan: trace + comm tests =="
cmake -B build-asan -S . \
  -DGMG_SANITIZE=ON \
  -DGMG_ENABLE_BENCH=OFF \
  -DGMG_ENABLE_EXAMPLES=OFF \
  -DGMG_NATIVE_ARCH=OFF >/dev/null
cmake --build build-asan -j"${JOBS}" \
  --target test_trace test_simmpi test_exchange
for t in test_trace test_simmpi test_exchange; do
  echo "-- ${t} (sanitized)"
  "./build-asan/tests/${t}"
done

echo "== tier1.sh: all green =="
