#!/usr/bin/env bash
# Tier-1 verification gate (ROADMAP.md) plus a sanitizer pass over the
# concurrency-heavy subsystems:
#
#   1. Configure + build + full ctest suite in ./build (the seed's
#      acceptance command, unchanged).
#   2. A separate ASan+UBSan tree (./build-asan, bench/examples off)
#      running the trace recorder and simmpi/exchange tests — the
#      multi-threaded code where a data race or lifetime bug in the
#      per-thread ring buffers would hide.
#   3. A TSan tree (./build-tsan, OpenMP off — see GMG_SANITIZE_THREAD)
#      running the exec engine, kernel-runtime parallel_for, simmpi,
#      split-phase exchange, and solve-service tests: the worker-pool
#      handoffs of DESIGN.md §10–11 and the serve layer's executor
#      pool / hierarchy cache / brick arena (§12) are exactly what a
#      race detector must see scheduled live. The socket front's wire
#      and server tests (§14: poll loop x executor completion
#      callbacks x client threads) and the batched-solve suite (§15:
#      the coalescer's hold-window handoff) ride in the same tree, as
#      does the AMR composite suite (§17: patch smoothing and the
#      interface kernels run through the same parallel_for engine).
#
#   4. A static stage: the gmg_lint invariant checker, clang-tidy over
#      src/ when the binary is available (the CI image may only carry
#      gcc — then it warns and skips), and the `check`-labelled ctest
#      subset re-run with GMG_CHECK=1 so the access-hazard detector is
#      live for the seeded-bug and V-cycle-clean tests.
#
# Usage: ci/tier1.sh [--skip-asan] [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

echo "== tier 1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

echo "== tier 1: static stage =="
echo "-- gmg_lint self-tests (tokenizer + per-rule known-bad/known-good)"
./build/tools/gmg_lint --self-test
echo "-- gmg_lint"
./build/tools/gmg_lint .
# Schedule-verifier dry runs (DESIGN.md §18): record + statically prove
# the planned launch/exchange sequences of the smoother matrix, the
# K=4 batched solve, and the AMR composite cycle — both fusion states —
# without executing a sweep. The overhead assertion keeps the setup-time
# proof cheap enough to stay on by default (GMG_VERIFY_SCHEDULE).
echo "-- schedule verifier dry-run, fusion on"
GMG_FUSE_STAGES=1 ./build/tools/schedule_audit --amr --assert-overhead 5
echo "-- schedule verifier dry-run, fusion off"
GMG_FUSE_STAGES=0 ./build/tools/schedule_audit --amr --assert-overhead 5
if command -v run-clang-tidy >/dev/null 2>&1; then
  echo "-- clang-tidy (src/)"
  run-clang-tidy -p build -quiet "src/.*\.cpp$"
elif command -v clang-tidy >/dev/null 2>&1; then
  echo "-- clang-tidy (src/, serial)"
  find src -name '*.cpp' -print0 |
    xargs -0 -n1 -P"${JOBS}" clang-tidy -p build --quiet
else
  echo "-- clang-tidy not installed; skipping (configs in .clang-tidy)"
fi
echo "-- checker-enabled test subset (GMG_CHECK=1, label: check)"
GMG_CHECK=1 ctest --test-dir build --output-on-failure -L check -j"${JOBS}"
echo "-- checker-enabled test subset, fusion off (GMG_FUSE_STAGES=0)"
GMG_FUSE_STAGES=0 GMG_CHECK=1 \
  ctest --test-dir build --output-on-failure -L check -j"${JOBS}"

# The solver must produce bitwise-identical results at any worker
# count; run the solver suite serial and at the hardware default to
# catch anything the in-suite determinism tests miss. The fused
# descent (DESIGN.md §16) is on by default, so the default runs cover
# it; the GMG_FUSE_STAGES=0 runs exercise the split schedule the fused
# kernels must match bitwise.
echo "== tier 1: solver suite, GMG_EXEC_WORKERS=1 =="
GMG_EXEC_WORKERS=1 ./build/tests/test_solver
echo "== tier 1: solver suite, default workers =="
./build/tests/test_solver
echo "== tier 1: solver suite, fusion off (GMG_FUSE_STAGES=0) =="
GMG_FUSE_STAGES=0 ./build/tests/test_solver
echo "== tier 1: fused-kernel suite, fusion off (split fallback) =="
GMG_FUSE_STAGES=0 ./build/tests/test_fused

# Serve-layer smoke: cold vs cached request latency and client-fanout
# throughput (writes BENCH_serve_throughput.json + bench/out CSV).
echo "== tier 1: serve throughput smoke =="
./build/bench/serve_throughput

# Front-tier smoke (DESIGN.md §14): start the socket listener, drive a
# client round trip through the wire protocol, drain, and verify the
# stats. One process, deterministic, a few seconds.
echo "== tier 1: socket front smoke =="
./build/tools/serve_front --smoke --shards 2

# AMR refinement smoke (DESIGN.md §17): composite coarse+patch solve
# vs a uniformly fine solve at a reduced size; writes BENCH_amr.json.
echo "== tier 1: AMR refinement smoke =="
./build/bench/amr_refine -s 32 -b 4

SKIP_ASAN=0
SKIP_TSAN=0
for arg in "$@"; do
  case "${arg}" in
    --skip-asan) SKIP_ASAN=1 ;;
    --skip-tsan) SKIP_TSAN=1 ;;
    *) echo "unknown flag: ${arg}" >&2; exit 2 ;;
  esac
done

if [[ "${SKIP_ASAN}" == 1 ]]; then
  echo "== skipping ASan+UBSan pass =="
else
  echo "== ASan+UBSan: trace + comm tests =="
  cmake -B build-asan -S . \
    -DGMG_SANITIZE=ON \
    -DGMG_ENABLE_BENCH=OFF \
    -DGMG_ENABLE_EXAMPLES=OFF \
    -DGMG_NATIVE_ARCH=OFF >/dev/null
  cmake --build build-asan -j"${JOBS}" \
    --target test_trace test_simmpi test_exchange
  for t in test_trace test_simmpi test_exchange; do
    echo "-- ${t} (sanitized)"
    "./build-asan/tests/${t}"
  done
fi

if [[ "${SKIP_TSAN}" == 1 ]]; then
  echo "== skipping TSan pass =="
else
  echo "== TSan: exec engine + comm tests =="
  cmake -B build-tsan -S . \
    -DGMG_SANITIZE_THREAD=ON \
    -DGMG_ENABLE_BENCH=OFF \
    -DGMG_ENABLE_EXAMPLES=OFF \
    -DGMG_NATIVE_ARCH=OFF >/dev/null
  cmake --build build-tsan -j"${JOBS}" \
    --target test_exec test_parallel_for test_simmpi test_exchange \
             test_batch test_serve test_wire test_front test_fused \
             test_amr
  for t in test_exec test_parallel_for test_simmpi test_exchange \
           test_batch test_serve test_wire test_front test_fused \
           test_amr; do
    echo "-- ${t} (tsan)"
    "./build-tsan/tests/${t}"
  done
fi

echo "== tier1.sh: all green =="
