// serve_front: stand-alone socket front for the sharded serve tier
// (DESIGN.md §14). Binds a Unix-domain or loopback TCP socket, routes
// submit frames across GMG_FRONT_SHARDS in-process shards with
// admission control, and serves until a signal (or --run-seconds)
// stops it. --smoke performs a self-contained round trip — start,
// connect, solve one request through the socket, verify, stop — and
// is what ci/tier1.sh runs.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "front/client.hpp"
#include "front/front_server.hpp"

using namespace gmg;
namespace wire = gmg::front::wire;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

GmgOptions default_operator() {
  GmgOptions o;
  o.levels = 3;
  o.smooths = 6;
  o.bottom_smooths = 30;
  o.tolerance = 1e-8;
  o.max_vcycles = 40;
  o.brick = BrickShape::cube(4);
  return o;
}

int usage() {
  std::cerr
      << "usage: serve_front [--unix PATH | --tcp PORT] [--shards N]\n"
      << "                   [--max-inflight N] [--executors N]\n"
      << "                   [--run-seconds S] [--smoke]\n"
      << "  --unix PATH      listen on a Unix-domain socket at PATH\n"
      << "  --tcp PORT       listen on 127.0.0.1:PORT (0 = ephemeral)\n"
      << "  --shards N       in-process shards (env GMG_FRONT_SHARDS)\n"
      << "  --max-inflight N per-shard admission cap"
         " (env GMG_FRONT_MAX_INFLIGHT)\n"
      << "  --executors N    solve executors per shard\n"
      << "  --max-batch K    coalesce up to K compatible queued requests\n"
         "                   into one multi-RHS batched solve (default 1)\n"
      << "  --run-seconds S  serve for S seconds, then drain and exit\n"
      << "  --smoke          one client round trip through the socket,"
         " then exit\n";
  return 2;
}

void print_stats(const front::FrontServer& server) {
  const front::FrontStats s = server.stats();
  std::cout << "front: conns=" << s.connections_accepted
            << " submits=" << s.submits << " sheds=" << s.sheds
            << " spills=" << s.spills << " bad=" << s.bad_requests
            << " proto_err=" << s.protocol_errors << "\n";
  for (const auto& e : s.shards.shards) {
    const double occupancy =
        e.batch_solves ? static_cast<double>(e.batch_requests) /
                             static_cast<double>(e.batch_solves)
                       : 0.0;
    std::cout << "  shard " << e.shard_id << ": accepted=" << e.accepted
              << " completed=" << e.completed << " shed=" << e.shed_overload
              << " spilled_in=" << e.spilled_in
              << " cache_hit=" << e.cache_hit_ratio
              << " batch_solves=" << e.batch_solves
              << " batch_occupancy=" << occupancy << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string unix_path;
  int tcp_port = -1;
  double run_seconds = 0;
  bool smoke = false;
  int max_batch = 1;
  front::FrontConfig cfg = front::FrontConfig::from_env();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "serve_front: " << what << " needs a value\n";
        std::exit(usage());
      }
      return argv[++i];
    };
    if (arg == "--unix") {
      unix_path = next("--unix");
    } else if (arg == "--tcp") {
      tcp_port = std::atoi(next("--tcp"));
    } else if (arg == "--shards") {
      cfg.shards = std::atoi(next("--shards"));
    } else if (arg == "--max-inflight") {
      cfg.admission.max_inflight =
          static_cast<std::size_t>(std::atoi(next("--max-inflight")));
    } else if (arg == "--executors") {
      cfg.shard.executors = std::atoi(next("--executors"));
    } else if (arg == "--max-batch") {
      max_batch = std::atoi(next("--max-batch"));
    } else if (arg == "--run-seconds") {
      run_seconds = std::atof(next("--run-seconds"));
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "serve_front: unknown flag " << arg << "\n";
      return usage();
    }
  }
  if (smoke && unix_path.empty() && tcp_port < 0) tcp_port = 0;
  if (unix_path.empty() && tcp_port < 0) {
    std::cerr << "serve_front: need --unix or --tcp\n";
    return usage();
  }

  front::FrontServer server(cfg);
  GmgOptions op = default_operator();
  op.max_batch = std::max(1, max_batch);
  server.register_operator("poisson", op);

  std::uint16_t bound_port = 0;
  if (!unix_path.empty()) {
    server.listen_unix(unix_path);
    std::cout << "serve_front: listening on unix:" << unix_path;
  } else {
    bound_port = server.listen_tcp(static_cast<std::uint16_t>(tcp_port));
    std::cout << "serve_front: listening on 127.0.0.1:" << bound_port;
  }
  std::cout << " (shards=" << server.num_shards()
            << ", max_inflight=" << cfg.admission.max_inflight << ")\n";

  if (smoke) {
    front::FrontClient client;
    if (!unix_path.empty()) {
      client.connect_unix(unix_path);
    } else {
      client.connect_tcp(bound_port);
    }
    if (!client.ping(42, 5000)) {
      std::cerr << "smoke: ping failed: " << client.last_error() << "\n";
      return 1;
    }
    wire::SubmitFrame sf;
    sf.request_id = 1;
    sf.global_extent = {16, 16, 16};
    sf.rhs_samples = wire::sample_rhs(
        sf.global_extent, [](real_t x, real_t y, real_t z) {
          return std::sin(2 * M_PI * x) * std::sin(2 * M_PI * y) *
                 std::sin(2 * M_PI * z);
        });
    const front::FrontClient::Response r = client.submit_and_wait(sf, 30000);
    if (r.rejected) {
      std::cerr << "smoke: rejected: " << r.reject.detail << "\n";
      return 1;
    }
    if (static_cast<serve::RequestStatus>(r.result.status) !=
        serve::RequestStatus::kDone) {
      std::cerr << "smoke: status " << int(r.result.status) << " error "
                << r.result.error << "\n";
      return 1;
    }
    std::cout << "smoke: solved in " << r.result.vcycles
              << " vcycles, residual " << r.result.final_residual << "\n";
    server.stop();
    print_stats(server);
    std::cout << "smoke: OK\n";
    return 0;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  double served = 0;
  while (!g_stop && (run_seconds <= 0 || served < run_seconds)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    served += 0.1;
  }
  std::cout << "serve_front: draining\n";
  server.stop();
  print_stats(server);
  return 0;
}
