// stencilgen — the offline stencil-to-C++ code generator (the
// reproduction of BrickLib's vector code generator, paper §III).
//
//   stencilgen <spec-file> [-o <output.hpp>]
//
// Reads a stencil spec (see src/dsl/codegen.hpp for the format) and
// emits a specialized brick kernel header. Generated headers are
// checked in under src/dsl/generated/ and golden-tested against this
// tool's output.
#include <fstream>
#include <iostream>
#include <sstream>

#include "dsl/codegen.hpp"

int main(int argc, char** argv) {
  std::string spec_path;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      if (++i >= argc) {
        std::cerr << "-o needs a path\n";
        return 1;
      }
      out_path = argv[i];
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      std::cerr << "usage: stencilgen <spec-file> [-o <output.hpp>]\n";
      return 1;
    }
  }
  if (spec_path.empty()) {
    std::cerr << "usage: stencilgen <spec-file> [-o <output.hpp>]\n";
    return 1;
  }

  std::ifstream in(spec_path);
  if (!in.good()) {
    std::cerr << "cannot read '" << spec_path << "'\n";
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();

  try {
    const auto spec = gmg::dsl::codegen::StencilSpec::parse(text.str());
    const std::string code = gmg::dsl::codegen::generate_kernel(spec);
    if (out_path.empty()) {
      std::cout << code;
    } else {
      std::ofstream out(out_path);
      if (!out.good()) {
        std::cerr << "cannot write '" << out_path << "'\n";
        return 1;
      }
      out << code;
      std::cerr << "wrote " << out_path << " (" << code.size() << " bytes)\n";
    }
  } catch (const gmg::Error& e) {
    std::cerr << "stencilgen: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
