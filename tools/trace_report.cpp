// trace_report: render the human-readable analysis of a Chrome
// trace-event JSON produced by the bench harnesses' --trace-out flag
// (trace sink 1). Prints the per-rank timeline table, exchange-wait
// totals, per-rank critical-path decomposition, aggregated span
// metrics, counters, and the artifact-format per-(level, phase)
// profile.
//
//   trace_report run.trace.json
#include <exception>
#include <iostream>
#include <string>

#include "trace/chrome_trace.hpp"
#include "trace/report.hpp"

int main(int argc, char** argv) {
  if (argc != 2 || std::string(argv[1]) == "-h" ||
      std::string(argv[1]) == "--help") {
    std::cerr << "usage: trace_report <trace.json>\n"
              << "  <trace.json>  Chrome trace-event file written by a bench "
                 "harness's --trace-out flag\n";
    return argc == 2 ? 0 : 2;
  }
  try {
    const gmg::trace::Snapshot snap =
        gmg::trace::read_chrome_trace_file(argv[1]);
    std::cout << gmg::trace::render_report(snap);
  } catch (const std::exception& e) {
    std::cerr << "trace_report: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
