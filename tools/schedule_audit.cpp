// schedule_audit — dry-run the static schedule verifier (DESIGN.md
// §18) over representative solver configurations without executing a
// single sweep, and report how much the setup-time proof costs.
//
//   schedule_audit [--fuse 0|1] [--batch K] [--amr]
//                  [--assert-overhead PCT] [--extent N] [--levels L]
//
// For each configuration (4 smoothers, both bottom solvers on Jacobi,
// W-cycle, FMG is folded into every entry since verify_solver_schedule
// proves both the V-cycle and FMG schedules) the tool records the
// planned launch/exchange sequence with the ScheduleWalker and runs
// check::ScheduleVerifier over it, printing step counts and proof
// time. --batch K adds the K-component batched schedule (with the
// representative retirement between cycles); --amr adds the composite
// AMR schedule. --assert-overhead fails (exit 1) when the total
// record+verify time exceeds PCT percent of the corresponding solver
// setup time — the guard CI uses to keep the proof cheap enough to
// leave on by default.
//
// GMG_FUSE_STAGES is honored like everywhere else; --fuse just sets it
// for child configuration so `schedule_audit --fuse 0` and
// `GMG_FUSE_STAGES=0 schedule_audit` are the same dry run.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "amr/composite_audit.hpp"
#include "amr/hierarchy.hpp"
#include "batch/batched_audit.hpp"
#include "batch/batched_solver.hpp"
#include "check/schedule.hpp"
#include "common/timer.hpp"
#include "gmg/schedule_audit.hpp"
#include "gmg/solver.hpp"

namespace {

using namespace gmg;

struct Args {
  int fuse = -1;  // -1 = leave GMG_FUSE_STAGES alone
  int batch = 4;
  bool amr = false;
  double assert_overhead_pct = 0;  // 0 = report only
  index_t extent = 128;
  int levels = 4;
};

int usage() {
  std::fprintf(stderr,
               "usage: schedule_audit [--fuse 0|1] [--batch K] [--amr]\n"
               "                      [--assert-overhead PCT] [--extent N]\n"
               "                      [--levels L]\n");
  return 2;
}

GmgOptions base_options(const Args& a, Smoother sm, BottomSolverType bottom) {
  GmgOptions o;
  o.levels = a.levels;
  o.smooths = 8;
  o.bottom_smooths = 20;
  o.brick = BrickShape::cube(8);
  o.smoother = sm;
  o.bottom = bottom;
  return o;
}

const char* smoother_name(Smoother s) {
  switch (s) {
    case Smoother::kPointJacobi: return "jacobi";
    case Smoother::kWeightedJacobi: return "weighted";
    case Smoother::kChebyshev: return "chebyshev";
    case Smoother::kRedBlackGS: return "rbgs";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--fuse") {
      const char* v = next();
      if (v == nullptr) return usage();
      args.fuse = std::atoi(v);
    } else if (a == "--batch") {
      const char* v = next();
      if (v == nullptr) return usage();
      args.batch = std::atoi(v);
    } else if (a == "--amr") {
      args.amr = true;
    } else if (a == "--assert-overhead") {
      const char* v = next();
      if (v == nullptr) return usage();
      args.assert_overhead_pct = std::atof(v);
    } else if (a == "--extent") {
      const char* v = next();
      if (v == nullptr) return usage();
      args.extent = std::atoi(v);
    } else if (a == "--levels") {
      const char* v = next();
      if (v == nullptr) return usage();
      args.levels = std::atoi(v);
    } else {
      return usage();
    }
  }
  if (args.fuse == 0 || args.fuse == 1) {
    setenv("GMG_FUSE_STAGES", args.fuse != 0 ? "1" : "0", 1);
  }
  // The ctors would verify on their own; this tool wants the record
  // and proof phases timed separately from setup, so it disables the
  // hook and drives verification explicitly.
  check::set_verify_schedule_enabled(false);

  const CartDecomp decomp({args.extent, args.extent, args.extent},
                          {1, 1, 1});
  const char* fuse_env = std::getenv("GMG_FUSE_STAGES");
  std::printf("schedule_audit: extent=%lld levels=%d fuse=%s\n",
              static_cast<long long>(args.extent), args.levels,
              fuse_env != nullptr ? fuse_env : "default");

  struct Config {
    Smoother smoother;
    BottomSolverType bottom;
    CycleType cycle;
  };
  const std::vector<Config> configs = {
      {Smoother::kPointJacobi, BottomSolverType::kSmooth, CycleType::kV},
      {Smoother::kPointJacobi, BottomSolverType::kConjugateGradient,
       CycleType::kV},
      {Smoother::kPointJacobi, BottomSolverType::kSmooth, CycleType::kW},
      {Smoother::kWeightedJacobi, BottomSolverType::kSmooth, CycleType::kV},
      {Smoother::kChebyshev, BottomSolverType::kSmooth, CycleType::kV},
      {Smoother::kRedBlackGS, BottomSolverType::kSmooth, CycleType::kV},
  };

  double setup_s = 0, proof_s = 0;
  bool all_ok = true;
  for (const Config& c : configs) {
    GmgOptions o = base_options(args, c.smoother, c.bottom);
    o.cycle = c.cycle;
    Timer t;
    GmgSolver solver(o, decomp, 0);
    const double setup = t.elapsed();
    t.restart();
    const check::Schedule sched = record_solver_schedule(solver);
    const check::Schedule fmg = record_fmg_schedule(solver);
    bool ok = true;
    std::string diag;
    try {
      check::ScheduleVerifier().verify(sched);
      check::ScheduleVerifier().verify(fmg);
    } catch (const std::exception& e) {
      ok = false;
      diag = e.what();
    }
    const double proof = t.elapsed();
    setup_s += setup;
    proof_s += proof;
    std::printf(
        "  %-9s bottom=%-6s %s: %4zu steps (+%zu fmg)  setup %6.2f ms  "
        "proof %6.2f ms  %s\n",
        smoother_name(c.smoother),
        c.bottom == BottomSolverType::kConjugateGradient ? "cg" : "smooth",
        c.cycle == CycleType::kW ? "W" : "V", sched.steps.size(),
        fmg.steps.size(), setup * 1e3, proof * 1e3,
        ok ? "proven" : "REJECTED");
    if (!ok) {
      std::fprintf(stderr, "    %s\n", diag.c_str());
      all_ok = false;
    }
  }

  if (args.batch > 1) {
    GmgOptions o = base_options(args, Smoother::kPointJacobi,
                                BottomSolverType::kConjugateGradient);
    o.max_batch = args.batch;
    Timer t;
    GmgSolver base(o, decomp, 0);
    batch::BatchedSolver bs(base, args.batch);
    const double setup = t.elapsed();
    t.restart();
    const check::Schedule sched = batch::record_batched_schedule(bs);
    bool ok = true;
    std::string diag;
    try {
      check::ScheduleVerifier().verify(sched);
    } catch (const std::exception& e) {
      ok = false;
      diag = e.what();
    }
    const double proof = t.elapsed();
    setup_s += setup;
    proof_s += proof;
    std::printf("  batched K=%d: %4zu steps  setup %6.2f ms  proof %6.2f ms"
                "  %s\n",
                args.batch, sched.steps.size(), setup * 1e3, proof * 1e3,
                ok ? "proven" : "REJECTED");
    if (!ok) {
      std::fprintf(stderr, "    %s\n", diag.c_str());
      all_ok = false;
    }
  }

  if (args.amr) {
    amr::AmrOptions ao;
    ao.gmg = base_options(args, Smoother::kPointJacobi,
                          BottomSolverType::kSmooth);
    const index_t q = args.extent / 4;
    ao.patch = Box{{q, q, q}, {3 * q, 3 * q, 3 * q}};
    ao.patch_smooths = 4;
    ao.correction_vcycles = 2;
    Timer t;
    amr::AmrHierarchy h(ao, decomp, 0);
    const double setup = t.elapsed();
    t.restart();
    const check::Schedule sched = amr::record_composite_schedule(h);
    bool ok = true;
    std::string diag;
    try {
      check::ScheduleVerifier().verify(sched);
    } catch (const std::exception& e) {
      ok = false;
      diag = e.what();
    }
    const double proof = t.elapsed();
    setup_s += setup;
    proof_s += proof;
    std::printf("  amr composite: %4zu steps  setup %6.2f ms  proof %6.2f ms"
                "  %s\n",
                sched.steps.size(), setup * 1e3, proof * 1e3,
                ok ? "proven" : "REJECTED");
    if (!ok) {
      std::fprintf(stderr, "    %s\n", diag.c_str());
      all_ok = false;
    }
  }

  const double pct = setup_s > 0 ? 100.0 * proof_s / setup_s : 0;
  std::printf("schedule_audit: proof overhead %.2f%% of setup (%.2f ms / "
              "%.2f ms)\n",
              pct, proof_s * 1e3, setup_s * 1e3);
  if (!all_ok) return 1;
  if (args.assert_overhead_pct > 0 && pct > args.assert_overhead_pct) {
    std::fprintf(stderr,
                 "schedule_audit: overhead %.2f%% exceeds the %.2f%% "
                 "budget\n",
                 pct, args.assert_overhead_pct);
    return 1;
  }
  return 0;
}
