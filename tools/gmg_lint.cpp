// gmg_lint v2 — repo-invariant checker (layer 3 of src/check).
//
//   gmg_lint [repo-root]     lint the tree under <root>/src
//   gmg_lint --self-test     run the built-in per-rule tests
//   gmg_lint --list-rules    print the rule registry
//
// clang-tidy enforces general C++ hygiene (.clang-tidy at the repo
// root); this tool enforces the invariants that are specific to this
// codebase and that no generic checker knows about. v2 replaces the
// v1 regex-over-lines scanner with a real C++ tokenizer (comments,
// string/char literals, and preprocessor lines are lexed away before
// any rule runs) and a rule registry where every rule has an id,
// per-rule self-tests, and suppression support. v1's rule-5 false
// negative — kernel definitions whose return type was indented or on
// its own line, and kernel-launch calls split across lines, were
// never matched by the line-anchored patterns — is gone: functions
// and their bodies are recovered from the token stream.
//
// Rules (suppress one occurrence with `// gmg-lint: allow(<id>)` on
// the offending line or the line directly above):
//
//   no-raw-omp          1. No raw `#pragma omp parallel` in src/gmg,
//                       src/dsl, src/brick, src/check, src/batch or
//                       src/amr (`omp simd` is fine): all parallelism
//                       must go through the exec:: runtime so chunk
//                       plans stay deterministic and the src/check
//                       hazard tracker sees every launch.
//   no-fma              2. No std::fma / __builtin_fma anywhere in
//                       src/: the build uses -ffp-contract=off so CA
//                       redundant ghost computation is bitwise equal
//                       to the owning rank; a hand-written fma
//                       reintroduces exactly that contraction.
//   no-nondeterminism   3. No nondeterminism sources (random_device,
//                       rand, srand, high_resolution_clock) outside
//                       src/common/rng.hpp and the trace/perf clock
//                       wrappers.
//   fp-contract         4. The top-level CMakeLists.txt must keep
//                       -ffp-contract=off.
//   kernel-scope        5. In fused-kernel files (src/ *fused*) and
//                       src/amr, every namespace-scope non-template
//                       kernel that launches a parallel loop must
//                       register its access boxes with the hazard
//                       detector (check::scope_if_enabled /
//                       KernelScope).
//   plan-bindings       6. In src/gmg/solver.cpp the per-stage
//                       kernels (smooth, smooth_residual, apply_op,
//                       their varcoef twins) may only be invoked
//                       through KernelPlan bindings ('.' or '->'):
//                       a bare call bypasses the specializer registry
//                       and silently forks the solo/batched schedules.
//   effect-summary      7. Every kernel in src/gmg, src/dsl,
//                       src/batch, src/amr — a namespace-scope
//                       non-template function that launches a
//                       parallel loop (parallel_for, for_each_row,
//                       for_each_plan_brick, sweep_rows, run_plan,
//                       parallel_reduce) — must export a constexpr
//                       `<name>_effects` EffectSummary
//                       (check/effects.hpp), in the same file or its
//                       same-stem header/source sibling. The static
//                       schedule verifier proves whole-cycle hazard
//                       freedom from these summaries; a kernel
//                       without one is invisible to the proof.
//   exchange-call       8. In src/gmg, src/batch and src/amr, direct
//                       ghost-exchange engine calls
//                       (`*.exchange->exchange/begin/finish(...)`,
//                       `patch_exchange().exchange(...)`) may only
//                       appear inside functions whose name contains
//                       "exchange" — the audited scheduling routines.
//                       Anywhere else they bypass the recorded
//                       schedule that setup-time verification proved.
//
// Exit status 0 = clean, 1 = violations (one per line,
// `file:line: [rule] message`), 2 = usage/IO error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

struct Tok {
  enum Kind { kIdent, kNumber, kPunct, kPP };
  Kind kind = kPunct;
  std::string text;
  int line = 0;
};

struct TokenizedFile {
  std::vector<Tok> toks;
  /// line -> rule ids a `// gmg-lint: allow(...)` comment covers
  /// (the comment's own line and the next line).
  std::map<int, std::set<std::string>> allow;
};

bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool ident_char(char c) { return ident_start(c) || (c >= '0' && c <= '9'); }

void record_allow(TokenizedFile& tf, const std::string& comment, int line) {
  const std::string tag = "gmg-lint:";
  std::size_t pos = comment.find(tag);
  if (pos == std::string::npos) return;
  pos = comment.find("allow(", pos);
  if (pos == std::string::npos) return;
  pos += 6;
  const std::size_t close = comment.find(')', pos);
  if (close == std::string::npos) return;
  std::string ids = comment.substr(pos, close - pos);
  std::string id;
  const auto flush = [&] {
    while (!id.empty() && id.front() == ' ') id.erase(id.begin());
    while (!id.empty() && id.back() == ' ') id.pop_back();
    if (!id.empty()) {
      tf.allow[line].insert(id);
      tf.allow[line + 1].insert(id);
    }
    id.clear();
  };
  for (char c : ids) {
    if (c == ',')
      flush();
    else
      id.push_back(c);
  }
  flush();
}

TokenizedFile tokenize(const std::string& text) {
  TokenizedFile tf;
  int line = 1;
  std::size_t n = 0;
  const std::size_t size = text.size();
  bool at_line_start = true;
  while (n < size) {
    const char c = text[n];
    const char next = n + 1 < size ? text[n + 1] : '\0';
    if (c == '\n') {
      ++line;
      ++n;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++n;
      continue;
    }
    if (c == '/' && next == '/') {
      const std::size_t eol = text.find('\n', n);
      const std::string comment =
          text.substr(n, (eol == std::string::npos ? size : eol) - n);
      record_allow(tf, comment, line);
      n = eol == std::string::npos ? size : eol;
      continue;
    }
    if (c == '/' && next == '*') {
      const std::size_t end = text.find("*/", n + 2);
      const std::size_t stop = end == std::string::npos ? size : end + 2;
      int l = line;
      std::string comment;
      for (std::size_t i = n; i < stop; ++i) {
        if (text[i] == '\n') {
          record_allow(tf, comment, l);
          comment.clear();
          ++l;
        } else {
          comment.push_back(text[i]);
        }
      }
      record_allow(tf, comment, l);
      line = l;
      n = stop;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++n;
      // Raw strings are not used in this tree; plain escape scanning.
      while (n < size && text[n] != quote) {
        if (text[n] == '\\') ++n;
        if (n < size && text[n] == '\n') ++line;
        ++n;
      }
      ++n;
      continue;
    }
    if (c == '#' && at_line_start) {
      // One token per preprocessor logical line (with continuations).
      std::string pp;
      const int pp_line = line;
      while (n < size && text[n] != '\n') {
        if (text[n] == '\\' && n + 1 < size && text[n + 1] == '\n') {
          pp.push_back(' ');
          n += 2;
          ++line;
          continue;
        }
        if (text[n] == '/' && n + 1 < size &&
            (text[n + 1] == '/' || text[n + 1] == '*'))
          break;
        pp.push_back(text[n]);
        ++n;
      }
      tf.toks.push_back(Tok{Tok::kPP, pp, pp_line});
      continue;
    }
    at_line_start = false;
    if (ident_start(c)) {
      std::size_t e = n;
      while (e < size && ident_char(text[e])) ++e;
      tf.toks.push_back(Tok{Tok::kIdent, text.substr(n, e - n), line});
      n = e;
      continue;
    }
    if (c >= '0' && c <= '9') {
      std::size_t e = n;
      while (e < size && (ident_char(text[e]) || text[e] == '.')) ++e;
      tf.toks.push_back(Tok{Tok::kNumber, text.substr(n, e - n), line});
      n = e;
      continue;
    }
    // Multi-char punctuators the rules care about.
    if ((c == ':' && next == ':') || (c == '-' && next == '>')) {
      tf.toks.push_back(Tok{Tok::kPunct, std::string{c, next}, line});
      n += 2;
      continue;
    }
    tf.toks.push_back(Tok{Tok::kPunct, std::string(1, c), line});
    ++n;
  }
  return tf;
}

// ---------------------------------------------------------------------------
// Function extraction
// ---------------------------------------------------------------------------

/// A namespace-scope function definition recovered from the token
/// stream: [body_begin, body_end) indexes the tokens between the
/// function's braces.
struct FnInfo {
  std::string name;
  int line = 0;
  bool is_template = false;
  bool qualified = false;  // Class::method — a member definition
  bool anon_ns = false;    // inside an anonymous namespace
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

enum class ScopeKind { kNamespace, kAnonNamespace, kClass, kFunction, kOther };

std::size_t matching_close_brace(const std::vector<Tok>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != Tok::kPunct) continue;
    if (t[i].text == "{") ++depth;
    if (t[i].text == "}" && --depth == 0) return i;
  }
  return t.size();
}

std::vector<FnInfo> extract_functions(const TokenizedFile& tf) {
  const std::vector<Tok>& t = tf.toks;
  std::vector<FnInfo> fns;
  std::vector<ScopeKind> scopes;
  // Tokens since the last statement/brace delimiter at the current
  // scope — the "head" a '{' is classified by.
  std::size_t head = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind == Tok::kPP) {
      continue;  // does not delimit a head; #if bodies stay untouched
    }
    const bool punct = t[i].kind == Tok::kPunct;
    if (punct && (t[i].text == ";" || t[i].text == "}")) {
      if (t[i].text == "}" && !scopes.empty()) scopes.pop_back();
      head = i + 1;
      continue;
    }
    if (!punct || t[i].text != "{") continue;

    // Classify the brace by its head tokens.
    bool saw_namespace = false, saw_class = false, saw_assign = false;
    bool anon = true;
    std::size_t open_paren = t.size();
    for (std::size_t h = head; h < i; ++h) {
      if (t[h].kind == Tok::kIdent) {
        const std::string& w = t[h].text;
        if (w == "namespace") {
          saw_namespace = true;
          continue;
        }
        if (w == "class" || w == "struct" || w == "union" || w == "enum")
          saw_class = true;
        if (saw_namespace) anon = false;
      } else if (t[h].kind == Tok::kPunct) {
        if (t[h].text == "=") saw_assign = true;
        if (t[h].text == "(" && open_paren == t.size()) open_paren = h;
      }
    }
    const bool at_ns_scope =
        std::all_of(scopes.begin(), scopes.end(), [](ScopeKind k) {
          return k == ScopeKind::kNamespace || k == ScopeKind::kAnonNamespace;
        });
    if (saw_namespace) {
      scopes.push_back(anon ? ScopeKind::kAnonNamespace
                            : ScopeKind::kNamespace);
    } else if (saw_assign || saw_class || open_paren == t.size() ||
               !at_ns_scope) {
      // Initializer list, class body, or anything not at namespace
      // scope: skip the whole brace group so its internal braces
      // (lambdas, nested classes) can't confuse scope tracking.
      const std::size_t close = matching_close_brace(t, i);
      i = close;
      head = i + 1;
      continue;
    } else {
      // A function definition: name is the identifier before the
      // first '(' of the head.
      FnInfo fn;
      if (open_paren > head && t[open_paren - 1].kind == Tok::kIdent) {
        fn.name = t[open_paren - 1].text;
        fn.line = t[open_paren - 1].line;
        fn.qualified =
            open_paren >= 2 && t[open_paren - 2].text == "::";
      }
      for (std::size_t h = head; h < open_paren; ++h)
        if (t[h].kind == Tok::kIdent && t[h].text == "template")
          fn.is_template = true;
      fn.anon_ns = std::any_of(scopes.begin(), scopes.end(), [](ScopeKind k) {
        return k == ScopeKind::kAnonNamespace;
      });
      const std::size_t close = matching_close_brace(t, i);
      fn.body_begin = i + 1;
      fn.body_end = close;
      if (!fn.name.empty()) fns.push_back(fn);
      i = close;
      head = i + 1;
      continue;
    }
    head = i + 1;
  }
  return fns;
}

bool body_has_ident(const TokenizedFile& tf, const FnInfo& fn,
                    std::initializer_list<const char*> names) {
  for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
    if (tf.toks[i].kind != Tok::kIdent) continue;
    for (const char* w : names)
      if (tf.toks[i].text == w) return true;
  }
  return false;
}

constexpr const char* kLaunchTokens[] = {
    "parallel_for", "for_each_row", "for_each_plan_brick",
    "sweep_rows",   "run_plan",     "parallel_reduce"};

bool body_launches(const TokenizedFile& tf, const FnInfo& fn) {
  return body_has_ident(tf, fn,
                        {"parallel_for", "for_each_row",
                         "for_each_plan_brick", "sweep_rows", "run_plan",
                         "parallel_reduce"});
}

// ---------------------------------------------------------------------------
// Rule registry
// ---------------------------------------------------------------------------

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Where a file sits in the tree — derived from its generic
/// (forward-slash) path relative to the repo root, so the self-test
/// can classify synthetic paths.
struct FileClass {
  std::string rel;  // e.g. "src/gmg/solver.cpp"
  bool in_kernel_dirs = false;   // rule 1, 3 (clock)
  bool in_rng = false;           // rule 3 exemption
  bool in_clock_wrapper = false; // rule 3 exemption
  bool rule5_scope = false;      // fused files + src/amr
  bool is_solver_cpp = false;    // rule 6
  bool in_effect_dirs = false;   // rule 7
  bool in_exchange_dirs = false; // rule 8
};

bool starts_with(const std::string& s, const std::string& p) {
  return s.compare(0, p.size(), p) == 0;
}

FileClass classify(const std::string& rel) {
  FileClass fc;
  fc.rel = rel;
  const std::string base = rel.substr(rel.find_last_of('/') + 1);
  for (const char* d :
       {"src/gmg/", "src/dsl/", "src/brick/", "src/check/", "src/batch/",
        "src/amr/"})
    if (starts_with(rel, d)) fc.in_kernel_dirs = true;
  fc.in_rng = rel == "src/common/rng.hpp";
  fc.in_clock_wrapper = starts_with(rel, "src/trace/") ||
                        starts_with(rel, "src/perf/") ||
                        base == "timer.hpp" || base == "timer.cpp";
  fc.rule5_scope = starts_with(rel, "src/amr/") ||
                   (starts_with(rel, "src/") &&
                    base.find("fused") != std::string::npos);
  fc.is_solver_cpp = rel == "src/gmg/solver.cpp";
  for (const char* d : {"src/gmg/", "src/dsl/", "src/batch/", "src/amr/"})
    if (starts_with(rel, d)) fc.in_effect_dirs = true;
  for (const char* d : {"src/gmg/", "src/batch/", "src/amr/"})
    if (starts_with(rel, d)) fc.in_exchange_dirs = true;
  return fc;
}

/// Cross-file context rule 7 needs: every identifier each file
/// defines or mentions.
struct Corpus {
  std::map<std::string, TokenizedFile> files;  // rel path -> tokens

  bool mentions(const std::string& rel, const std::string& ident) const {
    auto it = files.find(rel);
    if (it == files.end()) return false;
    for (const Tok& t : it->second.toks)
      if (t.kind == Tok::kIdent && t.text == ident) return true;
    return false;
  }

  /// Same-stem siblings: foo.cpp <-> foo.hpp / foo.h (same directory).
  std::vector<std::string> siblings(const std::string& rel) const {
    const std::size_t dot = rel.find_last_of('.');
    if (dot == std::string::npos) return {};
    const std::string stem = rel.substr(0, dot);
    std::vector<std::string> out;
    for (const char* ext : {".hpp", ".h", ".cpp", ".cc"}) {
      const std::string cand = stem + ext;
      if (cand != rel && files.count(cand) != 0) out.push_back(cand);
    }
    return out;
  }
};

class Linter {
 public:
  explicit Linter(const Corpus& corpus) : corpus_(corpus) {}

  std::vector<Violation> run() {
    for (const auto& [rel, tf] : corpus_.files) lint_file(rel, tf);
    return std::move(violations_);
  }

 private:
  void report(const FileClass& fc, const TokenizedFile& tf, int line,
              const char* rule, const std::string& message) {
    auto it = tf.allow.find(line);
    if (it != tf.allow.end() && it->second.count(rule) != 0) return;
    violations_.push_back(Violation{fc.rel, line, rule, message});
  }

  void lint_file(const std::string& rel, const TokenizedFile& tf) {
    const FileClass fc = classify(rel);
    if (!starts_with(rel, "src/")) return;
    const std::vector<FnInfo> fns = extract_functions(tf);

    rule_no_raw_omp(fc, tf);
    rule_no_fma(fc, tf);
    rule_no_nondeterminism(fc, tf);
    rule_kernel_scope(fc, tf, fns);
    rule_plan_bindings(fc, tf);
    rule_effect_summary(fc, tf, fns);
    rule_exchange_call(fc, tf, fns);
  }

  void rule_no_raw_omp(const FileClass& fc, const TokenizedFile& tf) {
    if (!fc.in_kernel_dirs) return;
    for (const Tok& t : tf.toks) {
      if (t.kind != Tok::kPP) continue;
      if (t.text.find("pragma") == std::string::npos ||
          t.text.find("omp") == std::string::npos)
        continue;
      if (t.text.find("simd") != std::string::npos) continue;
      report(fc, tf, t.line, "no-raw-omp",
             "raw '#pragma omp' in a deterministic-kernel directory; route "
             "parallelism through exec:: (only 'omp simd' is allowed here)");
    }
  }

  void rule_no_fma(const FileClass& fc, const TokenizedFile& tf) {
    for (const Tok& t : tf.toks) {
      if (t.kind != Tok::kIdent) continue;
      if (t.text == "fma" || t.text == "fmaf" ||
          starts_with(t.text, "__builtin_fma")) {
        report(fc, tf, t.line, "no-fma",
               "explicit fma reintroduces the FP contraction that "
               "-ffp-contract=off disables (breaks bitwise-reproducible "
               "redundant ghost computation)");
      }
    }
  }

  void rule_no_nondeterminism(const FileClass& fc, const TokenizedFile& tf) {
    for (const Tok& t : tf.toks) {
      if (t.kind != Tok::kIdent) continue;
      if (!fc.in_rng &&
          (t.text == "random_device" || t.text == "rand" ||
           t.text == "srand")) {
        report(fc, tf, t.line, "no-nondeterminism",
               "nondeterministic RNG source; use common/rng.hpp (seeded, "
               "reproducible) instead");
      }
      if (fc.in_kernel_dirs && !fc.in_clock_wrapper &&
          t.text == "high_resolution_clock") {
        report(fc, tf, t.line, "no-nondeterminism",
               "clock read inside a kernel directory; timing belongs in "
               "src/trace / src/perf");
      }
    }
  }

  void rule_kernel_scope(const FileClass& fc, const TokenizedFile& tf,
                         const std::vector<FnInfo>& fns) {
    if (!fc.rule5_scope) return;
    for (const FnInfo& fn : fns) {
      if (fn.is_template || fn.anon_ns) continue;
      if (!body_launches(tf, fn)) continue;
      if (body_has_ident(tf, fn, {"scope_if_enabled", "KernelScope"}))
        continue;
      report(fc, tf, fn.line, "kernel-scope",
             "kernel '" + fn.name +
                 "' launches a parallel loop without declaring its access "
                 "boxes (check::scope_if_enabled / KernelScope); GMG_CHECK "
                 "cannot verify an undeclared footprint");
    }
  }

  void rule_plan_bindings(const FileClass& fc, const TokenizedFile& tf) {
    if (!fc.is_solver_cpp) return;
    static const std::set<std::string> kStage = {
        "smooth",   "smooth_residual",  "smooth_varcoef",
        "apply_op", "apply_op_varcoef", "smooth_residual_varcoef"};
    const std::vector<Tok>& t = tf.toks;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != Tok::kIdent || kStage.count(t[i].text) == 0) continue;
      if (t[i + 1].text != "(") continue;
      const bool via_member =
          i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->");
      if (via_member) continue;
      report(fc, tf, t[i].line, "plan-bindings",
             "bare per-stage kernel call '" + t[i].text +
                 "' in solver.cpp bypasses the KernelPlan specializer "
                 "registry; invoke it through the plan bindings");
    }
  }

  void rule_effect_summary(const FileClass& fc, const TokenizedFile& tf,
                           const std::vector<FnInfo>& fns) {
    if (!fc.in_effect_dirs) return;
    for (const FnInfo& fn : fns) {
      if (fn.is_template || fn.anon_ns || fn.qualified) continue;
      if (fn.name.size() > 8 &&
          fn.name.rfind("_effects") == fn.name.size() - 8)
        continue;
      if (!body_launches(tf, fn)) continue;
      const std::string want = fn.name + "_effects";
      bool found = corpus_.mentions(fc.rel, want);
      if (!found)
        for (const std::string& sib : corpus_.siblings(fc.rel))
          if (corpus_.mentions(sib, want)) {
            found = true;
            break;
          }
      if (found) continue;
      report(fc, tf, fn.line, "effect-summary",
             "kernel '" + fn.name + "' exports no constexpr '" + want +
                 "' EffectSummary (check/effects.hpp); the schedule "
                 "verifier cannot prove launches it knows nothing about "
                 "— declare one here or in the same-stem sibling header");
    }
  }

  void rule_exchange_call(const FileClass& fc, const TokenizedFile& tf,
                          const std::vector<FnInfo>& fns) {
    if (!fc.in_exchange_dirs) return;
    const std::vector<Tok>& t = tf.toks;
    for (const FnInfo& fn : fns) {
      if (fn.name.find("exchange") != std::string::npos) continue;
      for (std::size_t i = fn.body_begin; i + 1 < fn.body_end; ++i) {
        if (t[i].kind != Tok::kIdent ||
            (t[i].text != "exchange" && t[i].text != "begin" &&
             t[i].text != "finish"))
          continue;
        if (t[i + 1].text != "(") continue;
        if (i == fn.body_begin ||
            (t[i - 1].text != "." && t[i - 1].text != "->"))
          continue;
        // Resolve the receiver: ident, or the call result
        // `patch_exchange()` whose callee ident we recover by
        // matching parens backwards.
        std::string recv;
        if (i >= 2) {
          const Tok& r = t[i - 2];
          if (r.kind == Tok::kIdent) {
            recv = r.text;
          } else if (r.text == ")") {
            int depth = 0;
            for (std::size_t j = i - 2; j > fn.body_begin; --j) {
              if (t[j].text == ")") ++depth;
              if (t[j].text == "(" && --depth == 0) {
                if (t[j - 1].kind == Tok::kIdent) recv = t[j - 1].text;
                break;
              }
            }
          }
        }
        if (recv.find("exchange") == std::string::npos &&
            recv.find("pexch") == std::string::npos)
          continue;
        report(fc, tf, t[i].line, "exchange-call",
               "direct ghost-exchange call '" + recv + "." + t[i].text +
                   "(...)' inside '" + fn.name +
                   "' bypasses the recorded schedule; route it through an "
                   "exchange_* scheduling routine (setup-time verification "
                   "proves those, and only those)");
      }
    }
  }

  const Corpus& corpus_;
  std::vector<Violation> violations_;
};

/// Rule 4 — not token-based: the top-level CMakeLists must keep the
/// contraction flag off.
void check_fp_contract(const fs::path& root, std::vector<Violation>& out) {
  std::ifstream in(root / "CMakeLists.txt");
  if (!in.good()) {
    out.push_back(Violation{(root / "CMakeLists.txt").string(), 0,
                            "fp-contract", "cannot read top-level "
                                           "CMakeLists.txt"});
    return;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (text.find("-ffp-contract=off") == std::string::npos) {
    out.push_back(
        Violation{(root / "CMakeLists.txt").string(), 0, "fp-contract",
                  "-ffp-contract=off is missing; redundant ghost "
                  "computation is no longer bitwise reproducible"});
  }
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

struct SelfTest {
  const char* name;
  const char* path;  // synthetic repo-relative path
  const char* source;
  const char* expect_rule;  // nullptr = expect clean
  /// Extra sibling file the corpus should also contain.
  const char* sibling_path = nullptr;
  const char* sibling_source = nullptr;
};

const SelfTest kSelfTests[] = {
    {"raw omp flagged", "src/gmg/foo.cpp",
     "namespace gmg {\nvoid f() {\n#pragma omp parallel for\n}\n}\n",
     "no-raw-omp"},
    {"omp simd allowed", "src/gmg/foo.cpp",
     "namespace gmg {\nvoid f() {\n#pragma omp simd\n}\n}\n", nullptr},
    {"omp in comment ignored", "src/gmg/foo.cpp",
     "namespace gmg {\n// #pragma omp parallel\nvoid f() {}\n}\n", nullptr},
    {"fma flagged", "src/brick/foo.cpp",
     "namespace gmg {\nreal_t f(real_t a) { return std::fma(a, a, a); }\n}\n",
     "no-fma"},
    {"fma in string ignored", "src/brick/foo.cpp",
     "namespace gmg {\nconst char* f() { return \"use fma here\"; }\n}\n",
     nullptr},
    {"fma suppressed", "src/brick/foo.cpp",
     "namespace gmg {\n// gmg-lint: allow(no-fma)\nreal_t f(real_t a) { "
     "return std::fma(a, a, a); }\n}\n",
     nullptr},
    {"rand flagged", "src/serve/foo.cpp",
     "namespace gmg {\nint f() { return rand(); }\n}\n", "no-nondeterminism"},
    {"operand not rand", "src/serve/foo.cpp",
     "namespace gmg {\nint f(int operand) { return operand; }\n}\n", nullptr},
    // v1's rule-5 false negative: the launch literal spans lines and
    // the definition is indented / return type on its own line.
    {"multi-line launch without scope flagged", "src/gmg/my_fused.cpp",
     "namespace gmg::fused {\n  void\n  fused_pass(BrickedArray& out) {\n"
     "    exec::parallel_for(\n        plan,\n        body);\n  }\n}\n",
     "kernel-scope"},
    {"launch with KernelScope clean", "src/gmg/my_fused.cpp",
     "namespace gmg::fused {\n  void\n  fused_pass(BrickedArray& out) {\n"
     "    check::KernelScope scope(\"k\", {});\n"
     "    exec::parallel_for(\n        plan,\n        body);\n  }\n}\n"
     "namespace gmg::fused {\nconstexpr int fused_pass_effects() { return 0; "
     "}\n}\n",
     nullptr},
    {"anon-namespace helper exempt from rule 5", "src/amr/foo.cpp",
     "namespace gmg {\nnamespace {\nvoid helper() { "
     "exec::parallel_for(plan, body); }\n}\n}\n",
     nullptr},
    {"bare stage call flagged", "src/gmg/solver.cpp",
     "namespace gmg {\nvoid GmgSolver::sweep(MgLevel& lev) {\n"
     "  smooth(lev.x, lev.Ax, lev.b, active);\n}\n}\n",
     "plan-bindings"},
    {"plan binding clean", "src/gmg/solver.cpp",
     "namespace gmg {\nvoid GmgSolver::sweep(MgLevel& lev) {\n"
     "  lev.plan.smooth(active);\n}\n}\n",
     nullptr},
    {"kernel without effects flagged", "src/batch/foo_kernels.cpp",
     "namespace gmg::batch {\nvoid my_kernel(BrickedArray& out) {\n"
     "  exec::parallel_for(plan, body);\n}\n}\n",
     "effect-summary"},
    {"effects in sibling header clean", "src/batch/foo_kernels.cpp",
     "namespace gmg::batch {\nvoid my_kernel(BrickedArray& out) {\n"
     "  check::KernelScope scope(\"k\", {});\n"
     "  exec::parallel_for(plan, body);\n}\n}\n",
     nullptr, "src/batch/foo_kernels.hpp",
     "namespace gmg::batch {\nconstexpr check::EffectSummary "
     "my_kernel_effects() { return {}; }\n}\n"},
    {"template helper exempt from rule 7", "src/dsl/foo.hpp",
     "namespace gmg::dsl {\ntemplate <typename BD>\nvoid run_all(BD bd) {\n"
     "  for_each_plan_brick(bd);\n}\n}\n",
     nullptr},
    {"direct exchange outside schedule fn flagged", "src/gmg/foo.cpp",
     "namespace gmg {\nvoid GmgSolver::sneaky(comm::Communicator& c, "
     "MgLevel& lev) {\n  lev.exchange->exchange(c, lev.x);\n}\n}\n",
     "exchange-call"},
    {"exchange inside exchange_* fn clean", "src/gmg/foo.cpp",
     "namespace gmg {\nvoid GmgSolver::exchange_now(comm::Communicator& c, "
     "MgLevel& lev) {\n  lev.exchange->exchange(c, lev.x);\n}\n}\n",
     nullptr},
    {"patch_exchange() receiver flagged", "src/amr/foo.cpp",
     "namespace gmg::amr {\nvoid CompositeSolver::smooth_stage("
     "comm::Communicator& c) {\n  h_.patch_exchange().exchange(c, "
     "h_.patch().x);\n}\n}\n",
     "exchange-call"},
    {"vector begin not an exchange call", "src/gmg/foo.cpp",
     "namespace gmg {\nvoid GmgSolver::sort_stuff(std::vector<int>& v) {\n"
     "  std::sort(v.begin(), v.end());\n}\n}\n",
     nullptr},
    {"suppressed exchange call clean", "src/gmg/foo.cpp",
     "namespace gmg {\nvoid GmgSolver::sneaky(comm::Communicator& c, "
     "MgLevel& lev) {\n  // gmg-lint: allow(exchange-call)\n"
     "  lev.exchange->exchange(c, lev.x);\n}\n}\n",
     nullptr},
};

int run_self_tests() {
  int failures = 0;
  for (const SelfTest& st : kSelfTests) {
    Corpus corpus;
    corpus.files[st.path] = tokenize(st.source);
    if (st.sibling_path != nullptr)
      corpus.files[st.sibling_path] = tokenize(st.sibling_source);
    const std::vector<Violation> vs = Linter(corpus).run();
    bool ok;
    if (st.expect_rule == nullptr) {
      ok = vs.empty();
    } else {
      ok = std::any_of(vs.begin(), vs.end(), [&](const Violation& v) {
        return v.rule == st.expect_rule;
      });
    }
    if (!ok) {
      ++failures;
      std::fprintf(stderr, "self-test FAILED: %s\n", st.name);
      if (st.expect_rule != nullptr)
        std::fprintf(stderr, "  expected a '%s' violation, got %zu other\n",
                     st.expect_rule, vs.size());
      for (const Violation& v : vs)
        std::fprintf(stderr, "  got %s:%d: [%s] %s\n", v.file.c_str(), v.line,
                     v.rule.c_str(), v.message.c_str());
    }
  }
  const std::size_t total = sizeof(kSelfTests) / sizeof(kSelfTests[0]);
  if (failures == 0) {
    std::printf("gmg_lint: %zu self-tests passed\n", total);
    return 0;
  }
  std::fprintf(stderr, "gmg_lint: %d of %zu self-tests failed\n", failures,
               total);
  return 1;
}

bool has_extension(const fs::path& p, std::initializer_list<const char*> exts) {
  const std::string e = p.extension().string();
  for (const char* x : exts)
    if (e == x) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--self-test")
    return run_self_tests();
  if (argc == 2 && std::string(argv[1]) == "--list-rules") {
    std::printf(
        "no-raw-omp no-fma no-nondeterminism fp-contract kernel-scope "
        "plan-bindings effect-summary exchange-call\n");
    return 0;
  }
  if (argc > 2) {
    std::fprintf(stderr,
                 "usage: gmg_lint [repo-root | --self-test | --list-rules]\n");
    return 2;
  }
  fs::path root = argc == 2 ? fs::path(argv[1]) : fs::current_path();
  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec || !fs::exists(root / "src")) {
    std::fprintf(stderr, "gmg_lint: '%s' is not the repo root (no src/)\n",
                 argc == 2 ? argv[1] : ".");
    return 2;
  }

  Corpus corpus;
  for (fs::recursive_directory_iterator it(root / "src"), end; it != end;
       ++it) {
    if (!it->is_regular_file()) continue;
    const fs::path& p = it->path();
    if (!has_extension(p, {".hpp", ".cpp", ".h", ".cc"})) continue;
    std::ifstream in(p);
    if (!in.good()) {
      std::fprintf(stderr, "gmg_lint: cannot read %s\n", p.string().c_str());
      return 2;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const std::string rel =
        p.lexically_relative(root).generic_string();
    corpus.files[rel] = tokenize(text);
  }

  std::vector<Violation> violations = Linter(corpus).run();
  check_fp_contract(root, violations);

  for (const Violation& v : violations)
    std::fprintf(stderr, "%s:%d: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  if (!violations.empty()) {
    std::fprintf(stderr, "gmg_lint: %zu violation(s) in %zu files scanned\n",
                 violations.size(), corpus.files.size());
    return 1;
  }
  std::printf("gmg_lint: %zu files clean\n", corpus.files.size());
  return 0;
}
