// gmg_lint — repo-invariant checker (layer 3 of src/check).
//
//   gmg_lint [repo-root]
//
// clang-tidy enforces general C++ hygiene (.clang-tidy at the repo
// root); this tool enforces the handful of invariants that are
// specific to this codebase and that no generic checker knows about:
//
//   1. No raw `#pragma omp parallel` in src/gmg, src/dsl, src/brick,
//      src/check, src/batch or src/amr
//      (`omp simd` is fine): all parallelism must go through the
//      exec:: runtime so chunk plans stay deterministic and the
//      src/check hazard tracker sees every launch. The two sanctioned
//      exceptions (the runtime's own legacy OpenMP path and the
//      baseline reference operators) live outside those directories.
//   2. No std::fma / __builtin_fma anywhere in src/: the reproduction
//      builds with -ffp-contract=off so that redundantly-computed
//      ghost cells (communication-avoiding sweeps) are bitwise equal
//      to the owning rank's interior values; a hand-written fma
//      reintroduces exactly the contraction the flag disables.
//   3. No nondeterminism sources (std::random_device, rand, srand,
//      high_resolution_clock) outside src/common/rng.hpp and the
//      trace/perf clock wrappers: kernels and solvers must be bitwise
//      reproducible run-to-run.
//   4. The top-level CMakeLists.txt must keep -ffp-contract=off.
//   5. In fused-kernel files (any src/ file named *fused*) and in
//      src/amr, every public top-level kernel (namespace-scope
//      `void`/`real_t` function outside the anonymous namespace) that
//      launches a parallel loop (parallel_for / for_each_row /
//      for_each_plan_brick / sweep_rows) must register its access
//      boxes with the hazard detector (check::scope_if_enabled or
//      KernelScope): fused passes and the AMR interface kernels
//      (reflux, interface prolongation, covered-region transfers)
//      touch several fields across two levels, exactly the kind of
//      footprint GMG_CHECK exists to verify.
//   6. In src/gmg/solver.cpp, the per-stage kernels (smooth,
//      smooth_residual, smooth_varcoef, smooth_residual_varcoef,
//      apply_op, apply_op_varcoef) may only be invoked through the
//      KernelPlan bindings (preceded by '.' or '->'): a bare free-
//      function call bypasses the specializer registry resolved at
//      setup and silently forks the solo/batched schedules.
//
// Exit status 0 = clean, 1 = violations (printed one per line,
// `file:line: message`), 2 = usage/IO error.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  int line;
  std::string message;
};

std::vector<Violation> g_violations;

void report(const fs::path& file, int line, const std::string& message) {
  g_violations.push_back(Violation{file.string(), line, message});
}

bool has_extension(const fs::path& p, std::initializer_list<const char*> exts) {
  const std::string e = p.extension().string();
  for (const char* x : exts) {
    if (e == x) return true;
  }
  return false;
}

/// Strip // and /* */ comments and string literals so commented-out
/// code and message text can't trip the patterns. Line structure is
/// preserved (newlines survive) so reported line numbers stay right.
std::string strip_comments_and_strings(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar };
  St st = St::kCode;
  for (std::size_t n = 0; n < text.size(); ++n) {
    const char c = text[n];
    const char next = n + 1 < text.size() ? text[n + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          ++n;
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          ++n;
        } else if (c == '"') {
          st = St::kString;
          out.push_back(' ');
        } else if (c == '\'') {
          st = St::kChar;
          out.push_back(' ');
        } else {
          out.push_back(c);
        }
        break;
      case St::kLineComment:
        if (c == '\n') {
          st = St::kCode;
          out.push_back('\n');
        }
        break;
      case St::kBlockComment:
        if (c == '*' && next == '/') {
          st = St::kCode;
          ++n;
        } else if (c == '\n') {
          out.push_back('\n');
        }
        break;
      case St::kString:
        if (c == '\\') {
          ++n;
        } else if (c == '"') {
          st = St::kCode;
        } else if (c == '\n') {
          out.push_back('\n');
        }
        break;
      case St::kChar:
        if (c == '\\') {
          ++n;
        } else if (c == '\'') {
          st = St::kCode;
        } else if (c == '\n') {
          out.push_back('\n');
        }
        break;
    }
  }
  return out;
}

bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Whole-identifier match of `word` in `line` (so `rand` does not hit
/// `operand` or `random_shuffle` does not hit a longer name we allow).
bool contains_word(const std::string& line, const std::string& word) {
  for (std::size_t pos = line.find(word); pos != std::string::npos;
       pos = line.find(word, pos + 1)) {
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) return true;
  }
  return false;
}

bool under(const fs::path& file, const fs::path& dir) {
  const std::string f = file.lexically_normal().string();
  const std::string d = (dir.lexically_normal() / "").string();
  return f.compare(0, d.size(), d) == 0;
}

/// Rule 6: a banned stage kernel invoked as a bare free function
/// (`smooth_residual(...)`) rather than through a KernelPlan binding
/// (`lev.plan.smooth_residual(...)` / `plan->smooth(...)`).
void check_bare_stage_call(const fs::path& file, int lineno,
                           const std::string& line) {
  static const char* kStageKernels[] = {
      "smooth",   "smooth_residual",   "smooth_varcoef",
      "apply_op", "apply_op_varcoef",  "smooth_residual_varcoef"};
  for (const char* word : kStageKernels) {
    const std::string w(word);
    for (std::size_t pos = line.find(w); pos != std::string::npos;
         pos = line.find(w, pos + 1)) {
      const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
      const std::size_t end = pos + w.size();
      const bool is_call = end < line.size() && line[end] == '(';
      if (!left_ok || !is_call) continue;
      const bool via_member =
          (pos >= 1 && line[pos - 1] == '.') ||
          (pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>');
      if (!via_member) {
        report(file, lineno,
               "bare per-stage kernel call '" + w +
                   "' in solver.cpp bypasses the KernelPlan specializer "
                   "registry; invoke it through the plan bindings");
      }
    }
  }
}

void check_source_file(const fs::path& root, const fs::path& file) {
  std::ifstream in(file);
  if (!in.good()) {
    report(file, 0, "cannot read file");
    return;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const std::string code = strip_comments_and_strings(text);

  const bool in_kernel_dirs = under(file, root / "src" / "gmg") ||
                              under(file, root / "src" / "dsl") ||
                              under(file, root / "src" / "brick") ||
                              under(file, root / "src" / "check") ||
                              under(file, root / "src" / "batch") ||
                              under(file, root / "src" / "amr");
  const bool in_rng = file.filename() == "rng.hpp" &&
                      under(file, root / "src" / "common");
  const bool in_clock_wrapper =
      under(file, root / "src" / "trace") ||
      under(file, root / "src" / "perf") ||
      file.filename() == "timer.hpp" || file.filename() == "timer.cpp";
  const bool is_fused_file =
      under(file, root / "src") &&
      file.filename().string().find("fused") != std::string::npos;
  // Rule 5 covers fused passes and the AMR interface kernels alike.
  const bool scan_kernel_scopes =
      is_fused_file || under(file, root / "src" / "amr");
  const bool is_solver_cpp =
      file.filename() == "solver.cpp" && under(file, root / "src" / "gmg");

  // Rule 5 state: brace depth distinguishes namespace-scope kernels
  // (depth 1 inside `namespace gmg::... {`) from anonymous-namespace
  // helpers (depth >= 2), which are covered by their callers' scopes.
  int depth = 0;
  bool in_kernel_fn = false;
  int kernel_fn_line = 0;
  bool kernel_has_loop = false;
  bool kernel_has_scope = false;

  int lineno = 0;
  std::istringstream ls(code);
  std::string line;
  while (std::getline(ls, line)) {
    ++lineno;
    if (scan_kernel_scopes) {
      if (!in_kernel_fn && depth == 1 &&
          (line.rfind("void ", 0) == 0 || line.rfind("real_t ", 0) == 0)) {
        in_kernel_fn = true;
        kernel_fn_line = lineno;
        kernel_has_loop = false;
        kernel_has_scope = false;
      }
      if (in_kernel_fn) {
        if (line.find("parallel_for") != std::string::npos ||
            line.find("for_each_row") != std::string::npos ||
            line.find("for_each_plan_brick") != std::string::npos ||
            line.find("sweep_rows") != std::string::npos) {
          kernel_has_loop = true;
        }
        if (line.find("scope_if_enabled") != std::string::npos ||
            line.find("KernelScope") != std::string::npos) {
          kernel_has_scope = true;
        }
      }
      bool entered_body = false;
      for (const char c : line) {
        if (c == '{') {
          ++depth;
          if (in_kernel_fn) entered_body = true;
        } else if (c == '}') {
          --depth;
        }
      }
      if (in_kernel_fn && depth <= 1 &&
          (entered_body || line.find('}') != std::string::npos)) {
        if (kernel_has_loop && !kernel_has_scope) {
          report(file, kernel_fn_line,
                 "kernel launches a parallel loop without declaring "
                 "its access boxes (check::scope_if_enabled / KernelScope); "
                 "GMG_CHECK cannot verify an undeclared footprint");
        }
        in_kernel_fn = false;
      }
    }
    if (is_solver_cpp) check_bare_stage_call(file, lineno, line);
    // 1. Raw OpenMP parallelism in the deterministic-kernel dirs.
    if (in_kernel_dirs && line.find("#pragma omp") != std::string::npos &&
        line.find("omp simd") == std::string::npos) {
      report(file, lineno,
             "raw '#pragma omp' in a deterministic-kernel directory; route "
             "parallelism through exec:: (only 'omp simd' is allowed here)");
    }
    // 2. Hand-written fused multiply-add defeats -ffp-contract=off.
    if (contains_word(line, "fma") || contains_word(line, "fmaf") ||
        line.find("__builtin_fma") != std::string::npos) {
      report(file, lineno,
             "explicit fma reintroduces the FP contraction that "
             "-ffp-contract=off disables (breaks bitwise-reproducible "
             "redundant ghost computation)");
    }
    // 3. Nondeterminism sources outside the sanctioned wrappers.
    if (!in_rng && (contains_word(line, "random_device") ||
                    contains_word(line, "rand") ||
                    contains_word(line, "srand"))) {
      report(file, lineno,
             "nondeterministic RNG source; use common/rng.hpp (seeded, "
             "reproducible) instead");
    }
    if (in_kernel_dirs && !in_clock_wrapper &&
        contains_word(line, "high_resolution_clock")) {
      report(file, lineno,
             "clock read inside a kernel directory; timing belongs in "
             "src/trace / src/perf");
    }
  }
}

bool check_fp_contract(const fs::path& root) {
  std::ifstream in(root / "CMakeLists.txt");
  if (!in.good()) {
    report(root / "CMakeLists.txt", 0, "cannot read top-level CMakeLists.txt");
    return false;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (text.find("-ffp-contract=off") == std::string::npos) {
    report(root / "CMakeLists.txt", 0,
           "-ffp-contract=off is missing; redundant ghost computation is no "
           "longer bitwise reproducible");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2) {
    std::fprintf(stderr, "usage: gmg_lint [repo-root]\n");
    return 2;
  }
  fs::path root = argc == 2 ? fs::path(argv[1]) : fs::current_path();
  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec || !fs::exists(root / "src")) {
    std::fprintf(stderr, "gmg_lint: '%s' is not the repo root (no src/)\n",
                 argc == 2 ? argv[1] : ".");
    return 2;
  }

  std::size_t files = 0;
  for (fs::recursive_directory_iterator it(root / "src"), end; it != end;
       ++it) {
    if (!it->is_regular_file()) continue;
    const fs::path& p = it->path();
    if (!has_extension(p, {".hpp", ".cpp", ".h", ".cc"})) continue;
    ++files;
    check_source_file(root, p);
  }
  check_fp_contract(root);

  for (const Violation& v : g_violations) {
    std::fprintf(stderr, "%s:%d: %s\n", v.file.c_str(), v.line,
                 v.message.c_str());
  }
  if (!g_violations.empty()) {
    std::fprintf(stderr, "gmg_lint: %zu violation(s) in %zu files scanned\n",
                 g_violations.size(), files);
    return 1;
  }
  std::printf("gmg_lint: %zu files clean\n", files);
  return 0;
}
