// A 3-D field stored as fine-grain bricks: the data structure at the
// center of the paper. Element (i,j,k) of the subdomain lives inside
// brick (i/B, j/B, k/B) at in-brick offset (i%B, j%B, k%B); each brick
// is a contiguous, aligned chunk of memory.
#pragma once

#include <memory>

#include "brick/brick_grid.hpp"
#include "brick/brick_shape.hpp"
#include "common/aligned.hpp"
#include "mesh/array3d.hpp"

namespace gmg {

class BrickedArray {
 public:
  BrickedArray() = default;

  /// Build over a shared grid. All fields of one multigrid level share
  /// the grid (geometry/adjacency); each owns its own storage. When
  /// `zero` is set the storage is zeroed through the kernel runtime's
  /// chunking (first-touch: pages fault in on the threads that will
  /// compute on them).
  BrickedArray(std::shared_ptr<const BrickGrid> grid, BrickShape shape,
               bool zero = true);

  /// Build over a shared grid adopting `storage` (a buffer previously
  /// taken from another array, e.g. by a BrickArena). When the buffer
  /// size matches the grid's requirement its pages are reused — the
  /// malloc/first-touch cost of the plain constructor is skipped —
  /// otherwise it is reallocated. With `zero`, the (warm) storage is
  /// zeroed through the kernel runtime's chunking either way.
  BrickedArray(std::shared_ptr<const BrickGrid> grid, BrickShape shape,
               AlignedBuffer<real_t>&& storage, bool zero = true);

  /// Convenience: build a fresh grid for a subdomain of `cells`
  /// elements (must be divisible by the brick dims).
  static BrickedArray create(Vec3 cells, BrickShape shape, bool zero = true) {
    GMG_REQUIRE(cells.x % shape.bx == 0 && cells.y % shape.by == 0 &&
                    cells.z % shape.bz == 0,
                "subdomain extent must be a multiple of the brick shape");
    auto grid = std::make_shared<BrickGrid>(
        Vec3{cells.x / shape.bx, cells.y / shape.by, cells.z / shape.bz});
    return BrickedArray(std::move(grid), shape, zero);
  }

  const BrickGrid& grid() const { return *grid_; }
  std::shared_ptr<const BrickGrid> grid_ptr() const { return grid_; }
  BrickShape shape() const { return shape_; }

  /// Interior extent in cells.
  Vec3 extent() const {
    const Vec3 nb = grid_->interior_extent();
    return {nb.x * shape_.bx, nb.y * shape_.by, nb.z * shape_.bz};
  }
  /// Ghost depth in cells (always one brick layer).
  Vec3 ghost_depth() const { return shape_.dims(); }

  real_t* data() { return data_.data(); }
  const real_t* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }

  real_t* brick(std::int32_t id) {
    return data_.data() + static_cast<std::size_t>(id) *
                              static_cast<std::size_t>(shape_.volume());
  }
  const real_t* brick(std::int32_t id) const {
    return data_.data() + static_cast<std::size_t>(id) *
                              static_cast<std::size_t>(shape_.volume());
  }

  /// Random-access element read/write by subdomain cell coordinate
  /// (ghosts addressable via negative / >=n indices). This is the
  /// convenience path; kernels iterate bricks directly.
  real_t& operator()(index_t i, index_t j, index_t k) {
    return data_[element_index(i, j, k)];
  }
  const real_t& operator()(index_t i, index_t j, index_t k) const {
    return data_[element_index(i, j, k)];
  }

  std::size_t element_index(index_t i, index_t j, index_t k) const {
    const Vec3 bc{floor_div(i, shape_.bx), floor_div(j, shape_.by),
                  floor_div(k, shape_.bz)};
    const std::int32_t id = grid_->storage_id(bc);
    GMG_ASSERT(id >= 0);
    const index_t li = floor_mod(i, shape_.bx);
    const index_t lj = floor_mod(j, shape_.by);
    const index_t lk = floor_mod(k, shape_.bz);
    return static_cast<std::size_t>(id) *
               static_cast<std::size_t>(shape_.volume()) +
           static_cast<std::size_t>((lk * shape_.by + lj) * shape_.bx + li);
  }

  void fill(real_t v) {
    for (auto& x : data_) x = v;
  }

  /// Interchange with the conventional layout (used at setup, in tests
  /// and when comparing against the array baseline). Interior only.
  void copy_from(const Array3D& a);
  void copy_to(Array3D& a) const;

  /// Single-rank periodic ghost fill: copies the wrapped interior into
  /// the ghost bricks (multi-rank exchange lives in src/comm).
  void fill_ghosts_periodic();

  /// Surrender the storage (for recycling through a BrickArena) and
  /// leave this array empty (size() == 0, no grid).
  AlignedBuffer<real_t> take_storage();

 private:
  std::shared_ptr<const BrickGrid> grid_;
  BrickShape shape_{};
  AlignedBuffer<real_t> data_;
};

}  // namespace gmg
