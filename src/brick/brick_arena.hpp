// BrickArena: a recycling pool for BrickedArray storage.
//
// The one-shot benchmark harness allocates every field fresh — malloc
// plus a first-touch page-fault pass per array, per solve. A serving
// deployment runs thousands of solves on a handful of distinct grid
// sizes, so the arena keeps surrendered buffers keyed by element count
// and hands them back to the next request of the same size: warm pages,
// no allocator traffic, no faults. Acquired arrays are zeroed through
// the kernel runtime's chunk plan, so an arena-backed field is bitwise
// indistinguishable from a freshly constructed one (the serve-layer
// reproducibility guarantee rests on this).
//
// Thread-safe: concurrent request executors share one arena.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "brick/bricked_array.hpp"

namespace gmg {

class BrickArena {
 public:
  BrickArena() = default;
  BrickArena(const BrickArena&) = delete;
  BrickArena& operator=(const BrickArena&) = delete;

  /// A zeroed field over `grid`, backed by a pooled buffer of matching
  /// size when one is available (a *hit*), freshly allocated otherwise.
  BrickedArray acquire(std::shared_ptr<const BrickGrid> grid,
                       BrickShape shape);

  /// Surrender an array's storage back to the pool. Empty arrays
  /// (default-constructed or already taken) are ignored.
  void release(BrickedArray&& a);

  /// Drop pooled buffers (largest first) until the pool holds at most
  /// `max_bytes`. Does not touch storage currently checked out.
  void trim(std::size_t max_bytes);

  struct Stats {
    std::uint64_t acquires = 0;   // total acquire() calls
    std::uint64_t hits = 0;       // acquires served from the pool
    std::uint64_t releases = 0;   // buffers returned
    std::uint64_t trimmed = 0;    // buffers dropped by trim()
    std::size_t pooled_buffers = 0;
    std::size_t pooled_bytes = 0;

    /// Fraction of acquires served from the pool (0 when none yet).
    double reuse_ratio() const {
      return acquires ? static_cast<double>(hits) /
                            static_cast<double>(acquires)
                      : 0.0;
    }
  };
  Stats stats() const;

 private:
  mutable std::mutex mu_;
  // Free buffers by element count; sizes in a multigrid hierarchy
  // repeat exactly, so exact-size matching hits after one warmup pass.
  std::map<std::size_t, std::vector<AlignedBuffer<real_t>>> pool_;
  Stats stats_;
};

}  // namespace gmg
