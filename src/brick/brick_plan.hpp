// Fan a cached BrickIterPlan out over the parallel kernel runtime.
//
// The plan's item order (full bricks first, then clipped, each half
// lexicographic) combined with the runtime's worker-count-independent
// chunk boundaries makes every sweep deterministic: the same bricks
// always land in the same chunks, regardless of how many workers drain
// them.
#pragma once

#include <type_traits>

#include "brick/brick_grid.hpp"
#include "check/shadow.hpp"
#include "exec/runtime.hpp"

namespace gmg {

/// Invoke `per_brick(item, is_full)` for every brick of `plan`, chunked
/// over the runtime. `is_full` is std::true_type for full-interior
/// bricks (clip bounds statically whole-brick — kernels specialize to a
/// straight-line loop) and std::false_type for clipped ones. BD is the
/// BrickDims tag sizing the per-chunk grain.
template <typename BD, typename Fn>
void for_each_plan_brick(const char* name, const BrickIterPlan& plan,
                         Fn&& per_brick) {
  if (check::enabled()) {
    // A corrupt plan (duplicate ids, clip bounds escaping the brick)
    // would fan writes outside the kernel's declared region in ways
    // the deterministic chunk schedule hides from TSan.
    check::validate_plan(name, plan.items.data(), plan.items.size(),
                         plan.num_full, Vec3{BD::bx, BD::by, BD::bz});
  }
  const std::int64_t nf = plan.num_full;
  exec::parallel_for(
      name, static_cast<std::int64_t>(plan.items.size()),
      exec::brick_grain(BD::volume), [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e && i < nf; ++i) {
          per_brick(plan.items[static_cast<std::size_t>(i)],
                    std::true_type{});
        }
        for (std::int64_t i = b > nf ? b : nf; i < e; ++i) {
          per_brick(plan.items[static_cast<std::size_t>(i)],
                    std::false_type{});
        }
      });
}

}  // namespace gmg
