// Brick shape: the fine-grain blocking factor. The paper uses 8x8x8
// bricks on Perlmutter/Frontier and 4x4x4 on Sunspot (§V).
#pragma once

#include "common/error.hpp"
#include "common/types.hpp"

namespace gmg {

/// Runtime brick dimensions. Hot kernels dispatch to compile-time
/// specializations (see with_brick_dims) so the inner loops see
/// constant trip counts — the moral equivalent of BrickLib's code
/// generator emitting fixed-size kernels.
struct BrickShape {
  index_t bx = 8, by = 8, bz = 8;

  constexpr index_t volume() const { return bx * by * bz; }
  constexpr Vec3 dims() const { return {bx, by, bz}; }
  constexpr friend bool operator==(const BrickShape&, const BrickShape&) =
      default;

  static BrickShape cube(index_t b) { return {b, b, b}; }
};

/// Compile-time brick dimensions for generated kernels.
template <index_t BX, index_t BY, index_t BZ>
struct BrickDims {
  static constexpr index_t bx = BX, by = BY, bz = BZ;
  static constexpr index_t volume = BX * BY * BZ;
};

/// Dispatch a callable templated on BrickDims to the shapes used in the
/// paper (8^3, 4^3) plus 2^3 (useful for the coarsest levels and for
/// tests); falls back to an error for unsupported shapes. `fn` must be
/// a generic callable invoked as fn(BrickDims<...>{}).
template <typename Fn>
decltype(auto) with_brick_dims(const BrickShape& s, Fn&& fn) {
  GMG_REQUIRE(s.bx == s.by && s.by == s.bz,
              "only cubic bricks are supported");
  switch (s.bx) {
    case 2:
      return fn(BrickDims<2, 2, 2>{});
    case 4:
      return fn(BrickDims<4, 4, 4>{});
    case 8:
      return fn(BrickDims<8, 8, 8>{});
    default:
      GMG_REQUIRE(false, "unsupported brick dimension (use 2, 4 or 8)");
  }
  // unreachable; silences missing-return warnings
  return fn(BrickDims<8, 8, 8>{});
}

}  // namespace gmg
