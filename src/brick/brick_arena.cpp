#include "brick/brick_arena.hpp"

namespace gmg {

BrickedArray BrickArena::acquire(std::shared_ptr<const BrickGrid> grid,
                                 BrickShape shape) {
  const std::size_t needed = static_cast<std::size_t>(grid->num_bricks()) *
                             static_cast<std::size_t>(shape.volume());
  AlignedBuffer<real_t> storage;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.acquires;
    auto it = pool_.find(needed);
    if (it != pool_.end() && !it->second.empty()) {
      storage = std::move(it->second.back());
      it->second.pop_back();
      if (it->second.empty()) pool_.erase(it);
      ++stats_.hits;
      stats_.pooled_buffers -= 1;
      stats_.pooled_bytes -= needed * sizeof(real_t);
    }
  }
  // Zeroing (and the miss path's allocation) runs outside the lock;
  // the adopting constructor reuses the buffer when the size matches.
  return BrickedArray(std::move(grid), shape, std::move(storage),
                      /*zero=*/true);
}

void BrickArena::release(BrickedArray&& a) {
  AlignedBuffer<real_t> storage = a.take_storage();
  if (storage.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.releases;
  stats_.pooled_buffers += 1;
  stats_.pooled_bytes += storage.size() * sizeof(real_t);
  pool_[storage.size()].push_back(std::move(storage));
}

void BrickArena::trim(std::size_t max_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  while (stats_.pooled_bytes > max_bytes && !pool_.empty()) {
    auto it = std::prev(pool_.end());  // largest buffers first
    stats_.pooled_bytes -= it->first * sizeof(real_t);
    stats_.pooled_buffers -= 1;
    ++stats_.trimmed;
    it->second.pop_back();
    if (it->second.empty()) pool_.erase(it);
  }
}

BrickArena::Stats BrickArena::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace gmg
