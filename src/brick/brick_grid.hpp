// The brick grid: geometry, storage ordering, and adjacency of the
// fine-grain blocks covering one subdomain plus its one-brick-deep
// ghost shell.
//
// Storage order is the communication-optimized layout of the paper's
// reference [6] (Zhao et al., PPoPP'21): interior bricks first in
// lexicographic order, then the 26 ghost groups, each contiguous.
// Receives from a neighbor therefore land in a single contiguous range
// of brick storage — no unpack pass ("packing-free communication
// buffers", paper §V).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "brick/brick_shape.hpp"
#include "common/types.hpp"
#include "mesh/box.hpp"

namespace gmg {

class BrickMask;

/// Contiguous run of bricks in storage order: [first, first+count).
struct BrickRange {
  std::int32_t first = 0;
  std::int32_t count = 0;
};

/// Interior/surface split of a grid's owned bricks for compute–comm
/// overlap (DESIGN.md §10). A brick is *surface* iff its 26-point
/// stencil neighborhood touches a ghost brick received from another
/// rank — i.e. its data cannot be smoothed while that exchange is in
/// flight. Every owned brick appears in exactly one of the two lists.
struct BrickPartition {
  std::vector<std::int32_t> interior;  // storage ids, ascending
  std::vector<std::int32_t> surface;   // storage ids, ascending
  /// Brick-coordinate box holding exactly the interior set (the
  /// surface set is its complement shell; empty when all-surface).
  Box interior_box;
  /// Disjoint brick-coordinate boxes tiling the surface set.
  std::vector<Box> surface_boxes;
};

/// One resolved brick of a cached iteration plan: storage id, brick
/// coordinate, the local clip bounds of the active region inside the
/// brick, and a pointer to the brick's 27-entry adjacency row (valid
/// for the lifetime of the owning BrickGrid).
struct BrickPlanItem {
  std::int32_t id = -1;
  Vec3 coord;
  // Local element bounds in [0, brick dim]; a *full* brick has
  // (0, bx, 0, by, 0, bz) — the whole brick is active.
  std::int16_t ilo = 0, ihi = 0, jlo = 0, jhi = 0, klo = 0, khi = 0;
  const std::int32_t* adj = nullptr;
};

/// The resolved brick list for one (active box, brick dims) pair:
/// items[0, num_full) are full-interior bricks (whole brick active —
/// kernels run one straight-line loop with compile-time bounds),
/// items[num_full, ...) are clipped boundary bricks. Each half keeps
/// lexicographic brick order, so chunked sweeps stay deterministic.
/// Plans reference the grid's adjacency storage and must not outlive
/// it; the grid is immutable after construction, so a cached plan
/// never goes stale.
struct BrickIterPlan {
  Box active;
  Vec3 brick_dims;
  Box brick_region;           // brick-coordinate cover of `active`
  std::int64_t num_full = 0;  // prefix of `items` that is full bricks
  std::vector<BrickPlanItem> items;
};

class BrickGrid {
 public:
  /// `interior_bricks`: number of bricks per axis covering the
  /// subdomain interior. The grid always carries one ghost brick layer
  /// on every side (the paper's deep ghost zone: depth == brick dim).
  explicit BrickGrid(Vec3 interior_bricks);

  Vec3 interior_extent() const { return nb_; }
  Box interior_box() const { return Box::from_extent(nb_); }
  Box extended_box() const { return grow(interior_box(), 1); }

  std::int32_t num_bricks() const { return total_; }
  std::int32_t num_interior() const { return interior_count_; }

  /// Storage id of the brick at coordinate `bc` in [-1, nb+1)^3;
  /// -1 if outside the extended grid.
  std::int32_t storage_id(Vec3 bc) const {
    if (!extended_box().contains(bc)) return -1;
    return id_of_[flat_index(bc)];
  }

  /// Brick coordinate of a storage id.
  Vec3 coord_of(std::int32_t id) const { return coord_of_[id]; }

  /// Storage id of the neighbor of brick `id` in direction `dir`
  /// (one of 27; dir 13 returns id itself); -1 if the neighbor lies
  /// outside the extended grid.
  std::int32_t adjacent(std::int32_t id, int dir) const {
    return adj_[id][dir];
  }
  const std::array<std::int32_t, kNumDirections>& adjacency(
      std::int32_t id) const {
    return adj_[id];
  }

  /// The contiguous storage range holding the ghost bricks received
  /// from the neighbor in direction `dir`.
  BrickRange ghost_range(int dir) const;

  /// The ghost group (one of the 26 directions) a ghost brick belongs
  /// to. `id` must be a ghost brick (id >= num_interior()).
  int ghost_group(std::int32_t id) const;

  /// Split the owned bricks by `remote` — per-direction flags saying
  /// whether the ghost group there is filled by another rank
  /// (CartDecomp::remote_neighbors). The mask must be axis-consistent
  /// (an edge/corner direction is remote iff one of its face axes is,
  /// as periodic decompositions always are): that makes the interior
  /// set a box, which the partition cross-checks brick by brick.
  BrickPartition partition(
      const std::array<bool, kNumDirections>& remote) const;

  /// The memoized iteration plan for `active` under `brick_dims`
  /// (BrickShape element dims). Repeated calls with the same arguments
  /// return the same shared plan — steady-state V-cycle sweeps resolve
  /// their brick list, storage ids, clip bounds, and adjacency pointers
  /// exactly once. Thread-safe. The grid is immutable, so plans are
  /// never invalidated; they simply must not outlive the grid (see
  /// BrickIterPlan).
  ///
  /// `mask` (optional) restricts the plan to the bricks whose storage
  /// id tests true — AMR level masks (DESIGN.md §17). Masked plans keep
  /// the full/clipped split and lexicographic order of the uniform
  /// path; the cache keys on the mask's (unique_id, version), so
  /// mutating a mask transparently misses to a fresh build.
  ///
  /// The cache is a bounded LRU (default 128 entries; override with
  /// GMG_PLAN_CACHE_CAP or set_plan_cache_capacity): AMR masks
  /// multiply the key space, and an unbounded memo would leak. Lookups
  /// bump trace counters brick.plan_cache.{hit,miss}.
  std::shared_ptr<const BrickIterPlan> iteration_plan(
      const Box& active, Vec3 brick_dims,
      const BrickMask* mask = nullptr) const;

  /// Plan-cache observability (per grid). Counters are cumulative.
  struct PlanCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;
  };
  PlanCacheStats plan_cache_stats() const;

  /// Shrink-or-grow the LRU capacity (testing / tuning hook). Excess
  /// least-recently-used entries are evicted immediately. Thread-safe;
  /// const because the cache is already mutable state of a logically
  /// immutable grid.
  void set_plan_cache_capacity(std::size_t cap) const;

  /// The storage runs covering an arbitrary brick-coordinate region
  /// (adjacent storage ids merged). Used to build send segments.
  std::vector<BrickRange> segments_of(const Box& region) const;

  /// The brick-coordinate region this rank sends toward direction
  /// `dir`: the interior bricks that are the neighbor's ghost region
  /// seen from the opposite side.
  Box surface_box(int dir) const {
    return surface_region(interior_box(), dir, 1);
  }
  /// Ghost region (brick coordinates) received from direction `dir`.
  Box ghost_box(int dir) const {
    return ghost_region(interior_box(), dir, 1);
  }

 private:
  std::size_t flat_index(Vec3 bc) const {
    const Vec3 e = extended_box().extent();
    return static_cast<std::size_t>((bc.z + 1) * e.y * e.x +
                                    (bc.y + 1) * e.x + (bc.x + 1));
  }

  Vec3 nb_;
  std::int32_t total_ = 0;
  std::int32_t interior_count_ = 0;
  std::vector<std::int32_t> id_of_;   // flat extended-grid coord -> id
  std::vector<Vec3> coord_of_;        // id -> coord
  std::vector<std::array<std::int32_t, kNumDirections>> adj_;
  std::array<BrickRange, kNumDirections> ghost_ranges_{};

  std::shared_ptr<const BrickIterPlan> build_plan(const Box& active,
                                                  Vec3 brick_dims,
                                                  const BrickMask* mask) const;

  struct PlanKey {
    Box active;
    Vec3 brick_dims;
    std::uint64_t mask_id = 0;       // 0 == unmasked
    std::uint64_t mask_version = 0;  // 0 == unmasked
    friend bool operator==(const PlanKey&, const PlanKey&) = default;
  };
  // Few distinct keys are live at once (one per kernel margin, times
  // the active AMR masks), so an LRU list with linear scan beats a
  // hash map here. Front is least recently used, back most recent.
  mutable std::mutex plan_mu_;
  mutable std::vector<std::pair<PlanKey, std::shared_ptr<const BrickIterPlan>>>
      plan_cache_;
  mutable std::size_t plan_cache_cap_;
  mutable PlanCacheStats plan_stats_{};
};

/// Floor division/modulo for mapping (possibly negative) ghost cell
/// coordinates to brick coordinates.
constexpr index_t floor_div(index_t a, index_t b) {
  return a >= 0 ? a / b : -((-a + b - 1) / b);
}
constexpr index_t floor_mod(index_t a, index_t b) {
  return a - floor_div(a, b) * b;
}

}  // namespace gmg
