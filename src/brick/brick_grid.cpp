#include "brick/brick_grid.hpp"

#include <algorithm>
#include <cstdlib>

#include "brick/brick_mask.hpp"
#include "common/error.hpp"
#include "trace/trace.hpp"

namespace gmg {

namespace {

// Default LRU capacity for the per-grid plan cache; override with
// GMG_PLAN_CACHE_CAP (read once per process).
std::size_t default_plan_cache_cap() {
  static const std::size_t cap = [] {
    if (const char* s = std::getenv("GMG_PLAN_CACHE_CAP")) {
      const long v = std::atol(s);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return static_cast<std::size_t>(128);
  }();
  return cap;
}

}  // namespace

BrickGrid::BrickGrid(Vec3 interior_bricks)
    : nb_(interior_bricks), plan_cache_cap_(default_plan_cache_cap()) {
  GMG_REQUIRE(nb_.x > 0 && nb_.y > 0 && nb_.z > 0,
              "brick grid extents must be positive");

  const Box ext = extended_box();
  id_of_.assign(static_cast<std::size_t>(ext.volume()), -1);

  // Interior bricks first, lexicographic (i fastest).
  std::int32_t next = 0;
  for_each(interior_box(), [&](index_t i, index_t j, index_t k) {
    id_of_[flat_index({i, j, k})] = next++;
  });
  interior_count_ = next;

  // Then each of the 26 ghost groups, contiguous, in direction order.
  for (int dir = 0; dir < kNumDirections; ++dir) {
    if (dir == kSelfDirection) continue;
    const Box region = ghost_box(dir);
    ghost_ranges_[dir].first = next;
    for_each(region, [&](index_t i, index_t j, index_t k) {
      id_of_[flat_index({i, j, k})] = next++;
    });
    ghost_ranges_[dir].count = next - ghost_ranges_[dir].first;
  }
  total_ = next;

  // Reverse map and adjacency.
  coord_of_.resize(static_cast<std::size_t>(total_));
  for_each(ext, [&](index_t i, index_t j, index_t k) {
    const std::int32_t id = id_of_[flat_index({i, j, k})];
    GMG_ASSERT(id >= 0);
    coord_of_[static_cast<std::size_t>(id)] = {i, j, k};
  });

  adj_.resize(static_cast<std::size_t>(total_));
  for (std::int32_t id = 0; id < total_; ++id) {
    const Vec3 c = coord_of_[static_cast<std::size_t>(id)];
    for (int dir = 0; dir < kNumDirections; ++dir) {
      adj_[static_cast<std::size_t>(id)][dir] =
          storage_id(c + direction_offset(dir));
    }
  }
}

BrickRange BrickGrid::ghost_range(int dir) const {
  GMG_REQUIRE(dir >= 0 && dir < kNumDirections && dir != kSelfDirection,
              "dir must be one of the 26 neighbor directions");
  return ghost_ranges_[dir];
}

int BrickGrid::ghost_group(std::int32_t id) const {
  GMG_REQUIRE(id >= interior_count_ && id < total_,
              "id must be a ghost brick");
  const Vec3 c = coord_of_[static_cast<std::size_t>(id)];
  Vec3 off{0, 0, 0};
  for (int d = 0; d < 3; ++d) {
    if (c[d] < 0) off[d] = -1;
    if (c[d] >= nb_[d]) off[d] = 1;
  }
  return direction_index(static_cast<int>(off.x), static_cast<int>(off.y),
                         static_cast<int>(off.z));
}

BrickPartition BrickGrid::partition(
    const std::array<bool, kNumDirections>& remote) const {
  GMG_REQUIRE(!remote[kSelfDirection], "self direction cannot be remote");
  BrickPartition p;

  // The interior box: shrink one brick layer off every side whose face
  // neighbor is remote (the paper's ghost depth is one brick, so one
  // layer is exactly the stencil reach in brick units).
  p.interior_box = interior_box();
  for (int d = 0; d < 3; ++d) {
    int lo_off[3] = {0, 0, 0};
    lo_off[d] = -1;
    if (remote[static_cast<std::size_t>(
            direction_index(lo_off[0], lo_off[1], lo_off[2]))])
      ++p.interior_box.lo[d];
    int hi_off[3] = {0, 0, 0};
    hi_off[d] = 1;
    if (remote[static_cast<std::size_t>(
            direction_index(hi_off[0], hi_off[1], hi_off[2]))])
      --p.interior_box.hi[d];
  }
  if (p.interior_box.empty()) p.interior_box = Box{};  // normalize
  p.surface_boxes = shell_boxes(interior_box(), p.interior_box);

  // Ground truth per brick: surface iff some stencil neighbor is a
  // ghost brick in a remote group. Cross-check against the box form so
  // an axis-inconsistent mask cannot silently misclassify.
  for (std::int32_t id = 0; id < interior_count_; ++id) {
    bool surf = false;
    for (int dir = 0; dir < kNumDirections && !surf; ++dir) {
      if (dir == kSelfDirection) continue;
      const std::int32_t n = adj_[static_cast<std::size_t>(id)][dir];
      if (n < interior_count_) continue;  // owned neighbor
      surf = remote[static_cast<std::size_t>(ghost_group(n))];
    }
    GMG_ASSERT(
        p.interior_box.contains(coord_of_[static_cast<std::size_t>(id)]) ==
        !surf);
    (surf ? p.surface : p.interior).push_back(id);
  }
  return p;
}

std::shared_ptr<const BrickIterPlan> BrickGrid::build_plan(
    const Box& active, Vec3 brick_dims, const BrickMask* mask) const {
  const Vec3 bd = brick_dims;
  auto plan = std::make_shared<BrickIterPlan>();
  plan->active = active;
  plan->brick_dims = bd;
  if (active.empty()) return plan;
  plan->brick_region =
      Box{{floor_div(active.lo.x, bd.x), floor_div(active.lo.y, bd.y),
           floor_div(active.lo.z, bd.z)},
          {floor_div(active.hi.x - 1, bd.x) + 1,
           floor_div(active.hi.y - 1, bd.y) + 1,
           floor_div(active.hi.z - 1, bd.z) + 1}};
  GMG_REQUIRE(extended_box().covers(plan->brick_region),
              "active region extends beyond the ghost bricks");

  // Two lexicographic passes keep each half of `items` in brick order
  // (chunk boundaries then cut a deterministic sequence).
  std::vector<BrickPlanItem> clipped;
  for_each(plan->brick_region, [&](index_t bx, index_t by, index_t bz) {
    const std::int32_t id = storage_id({bx, by, bz});
    GMG_ASSERT(id >= 0);
    if (mask && !mask->test(id)) return;  // masked-out brick: skip
    BrickPlanItem it;
    it.id = id;
    it.coord = {bx, by, bz};
    const index_t cx = bx * bd.x, cy = by * bd.y, cz = bz * bd.z;
    it.ilo = static_cast<std::int16_t>(std::max<index_t>(0, active.lo.x - cx));
    it.ihi =
        static_cast<std::int16_t>(std::min<index_t>(bd.x, active.hi.x - cx));
    it.jlo = static_cast<std::int16_t>(std::max<index_t>(0, active.lo.y - cy));
    it.jhi =
        static_cast<std::int16_t>(std::min<index_t>(bd.y, active.hi.y - cy));
    it.klo = static_cast<std::int16_t>(std::max<index_t>(0, active.lo.z - cz));
    it.khi =
        static_cast<std::int16_t>(std::min<index_t>(bd.z, active.hi.z - cz));
    it.adj = adj_[static_cast<std::size_t>(id)].data();
    const bool full = it.ilo == 0 && it.jlo == 0 && it.klo == 0 &&
                      it.ihi == bd.x && it.jhi == bd.y && it.khi == bd.z;
    if (full) {
      plan->items.push_back(it);
    } else {
      clipped.push_back(it);
    }
  });
  plan->num_full = static_cast<std::int64_t>(plan->items.size());
  plan->items.insert(plan->items.end(), clipped.begin(), clipped.end());
  return plan;
}

std::shared_ptr<const BrickIterPlan> BrickGrid::iteration_plan(
    const Box& active, Vec3 brick_dims, const BrickMask* mask) const {
  if (mask) {
    GMG_REQUIRE(mask->size() == total_,
                "mask size must match the grid's brick count");
  }
  const PlanKey key{active, brick_dims, mask ? mask->unique_id() : 0,
                    mask ? mask->version() : 0};
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    for (auto it = plan_cache_.begin(); it != plan_cache_.end(); ++it) {
      if (it->first == key) {
        ++plan_stats_.hits;
        trace::counter_add("brick.plan_cache.hit", 1);
        std::rotate(it, it + 1, plan_cache_.end());  // move to MRU slot
        return plan_cache_.back().second;
      }
    }
    ++plan_stats_.misses;
    trace::counter_add("brick.plan_cache.miss", 1);
  }
  auto plan = build_plan(active, brick_dims, mask);
  std::lock_guard<std::mutex> lock(plan_mu_);
  for (const auto& [k, p] : plan_cache_) {  // lost a build race: reuse
    if (k == key) return p;
  }
  // Bounded LRU: the uniform path sees only a handful of (active, dims)
  // keys per level, but AMR masks multiply the key space (every mask
  // version is a distinct key) — evict the least recently used entry
  // rather than growing without bound.
  while (plan_cache_.size() >= plan_cache_cap_ && !plan_cache_.empty()) {
    plan_cache_.erase(plan_cache_.begin());
    ++plan_stats_.evictions;
  }
  if (plan_cache_cap_ > 0) plan_cache_.emplace_back(key, plan);
  return plan;
}

BrickGrid::PlanCacheStats BrickGrid::plan_cache_stats() const {
  std::lock_guard<std::mutex> lock(plan_mu_);
  PlanCacheStats s = plan_stats_;
  s.entries = plan_cache_.size();
  s.capacity = plan_cache_cap_;
  return s;
}

void BrickGrid::set_plan_cache_capacity(std::size_t cap) const {
  std::lock_guard<std::mutex> lock(plan_mu_);
  plan_cache_cap_ = cap;
  while (plan_cache_.size() > plan_cache_cap_) {
    plan_cache_.erase(plan_cache_.begin());
    ++plan_stats_.evictions;
  }
}

std::vector<BrickRange> BrickGrid::segments_of(const Box& region) const {
  GMG_REQUIRE(extended_box().covers(region),
              "region extends outside the brick grid");
  std::vector<BrickRange> runs;
  for_each(region, [&](index_t i, index_t j, index_t k) {
    const std::int32_t id = storage_id({i, j, k});
    GMG_ASSERT(id >= 0);
    if (!runs.empty() && runs.back().first + runs.back().count == id) {
      ++runs.back().count;
    } else {
      runs.push_back({id, 1});
    }
  });
  return runs;
}

}  // namespace gmg
