#include "brick/brick_grid.hpp"

#include "common/error.hpp"

namespace gmg {

BrickGrid::BrickGrid(Vec3 interior_bricks) : nb_(interior_bricks) {
  GMG_REQUIRE(nb_.x > 0 && nb_.y > 0 && nb_.z > 0,
              "brick grid extents must be positive");

  const Box ext = extended_box();
  id_of_.assign(static_cast<std::size_t>(ext.volume()), -1);

  // Interior bricks first, lexicographic (i fastest).
  std::int32_t next = 0;
  for_each(interior_box(), [&](index_t i, index_t j, index_t k) {
    id_of_[flat_index({i, j, k})] = next++;
  });
  interior_count_ = next;

  // Then each of the 26 ghost groups, contiguous, in direction order.
  for (int dir = 0; dir < kNumDirections; ++dir) {
    if (dir == kSelfDirection) continue;
    const Box region = ghost_box(dir);
    ghost_ranges_[dir].first = next;
    for_each(region, [&](index_t i, index_t j, index_t k) {
      id_of_[flat_index({i, j, k})] = next++;
    });
    ghost_ranges_[dir].count = next - ghost_ranges_[dir].first;
  }
  total_ = next;

  // Reverse map and adjacency.
  coord_of_.resize(static_cast<std::size_t>(total_));
  for_each(ext, [&](index_t i, index_t j, index_t k) {
    const std::int32_t id = id_of_[flat_index({i, j, k})];
    GMG_ASSERT(id >= 0);
    coord_of_[static_cast<std::size_t>(id)] = {i, j, k};
  });

  adj_.resize(static_cast<std::size_t>(total_));
  for (std::int32_t id = 0; id < total_; ++id) {
    const Vec3 c = coord_of_[static_cast<std::size_t>(id)];
    for (int dir = 0; dir < kNumDirections; ++dir) {
      adj_[static_cast<std::size_t>(id)][dir] =
          storage_id(c + direction_offset(dir));
    }
  }
}

BrickRange BrickGrid::ghost_range(int dir) const {
  GMG_REQUIRE(dir >= 0 && dir < kNumDirections && dir != kSelfDirection,
              "dir must be one of the 26 neighbor directions");
  return ghost_ranges_[dir];
}

std::vector<BrickRange> BrickGrid::segments_of(const Box& region) const {
  GMG_REQUIRE(extended_box().covers(region),
              "region extends outside the brick grid");
  std::vector<BrickRange> runs;
  for_each(region, [&](index_t i, index_t j, index_t k) {
    const std::int32_t id = storage_id({i, j, k});
    GMG_ASSERT(id >= 0);
    if (!runs.empty() && runs.back().first + runs.back().count == id) {
      ++runs.back().count;
    } else {
      runs.push_back({id, 1});
    }
  });
  return runs;
}

}  // namespace gmg
