#include "brick/bricked_array.hpp"

#include <cstring>

#include "exec/runtime.hpp"

namespace gmg {

BrickedArray::BrickedArray(std::shared_ptr<const BrickGrid> grid,
                           BrickShape shape, bool zero)
    : grid_(std::move(grid)),
      shape_(shape),
      data_(static_cast<std::size_t>(grid_->num_bricks()) *
                static_cast<std::size_t>(shape.volume()),
            /*zero=*/false) {
  if (!zero) return;
  // First-touch: fault the pages in under the same chunk plan the
  // kernels will use, so on NUMA hosts each page lands on the worker
  // that computes on it.
  real_t* p = data_.data();
  exec::parallel_for("brick.firstTouch", static_cast<std::int64_t>(size()),
                     exec::kElementGrain, [&](std::int64_t b, std::int64_t e) {
                       std::memset(p + b, 0,
                                   static_cast<std::size_t>(e - b) *
                                       sizeof(real_t));
                     });
}

BrickedArray::BrickedArray(std::shared_ptr<const BrickGrid> grid,
                           BrickShape shape, AlignedBuffer<real_t>&& storage,
                           bool zero)
    : grid_(std::move(grid)), shape_(shape), data_(std::move(storage)) {
  const std::size_t needed = static_cast<std::size_t>(grid_->num_bricks()) *
                             static_cast<std::size_t>(shape.volume());
  if (data_.size() != needed) data_.reset(needed, /*zero=*/false);
  if (!zero) return;
  real_t* p = data_.data();
  exec::parallel_for("brick.arenaZero", static_cast<std::int64_t>(size()),
                     exec::kElementGrain, [&](std::int64_t b, std::int64_t e) {
                       std::memset(p + b, 0,
                                   static_cast<std::size_t>(e - b) *
                                       sizeof(real_t));
                     });
}

AlignedBuffer<real_t> BrickedArray::take_storage() {
  AlignedBuffer<real_t> out = std::move(data_);
  grid_.reset();
  shape_ = BrickShape{};
  return out;
}

void BrickedArray::copy_from(const Array3D& a) {
  GMG_REQUIRE(a.extent() == extent(), "extent mismatch");
  for_each(Box::from_extent(extent()),
           [&](index_t i, index_t j, index_t k) { (*this)(i, j, k) = a(i, j, k); });
}

void BrickedArray::copy_to(Array3D& a) const {
  GMG_REQUIRE(a.extent() == extent(), "extent mismatch");
  for_each(Box::from_extent(extent()),
           [&](index_t i, index_t j, index_t k) { a(i, j, k) = (*this)(i, j, k); });
}

void BrickedArray::fill_ghosts_periodic() {
  const Vec3 n = extent();
  const Vec3 g = ghost_depth();
  const Box whole = Box{{-g.x, -g.y, -g.z}, n + g};
  const Box interior = Box::from_extent(n);
  for_each(whole, [&](index_t i, index_t j, index_t k) {
    if (interior.contains({i, j, k})) return;
    const index_t si = ((i % n.x) + n.x) % n.x;
    const index_t sj = ((j % n.y) + n.y) % n.y;
    const index_t sk = ((k % n.z) + n.z) % n.z;
    (*this)(i, j, k) = (*this)(si, sj, sk);
  });
}

}  // namespace gmg
