// Active-brick bitset for locally refined (AMR) levels.
//
// A mask selects a subset of a BrickGrid's bricks by storage id; the
// memoized BrickGrid::iteration_plan accepts an optional mask and
// filters the resolved BrickPlanItem list down to the selected bricks,
// so masked sweeps reuse the full-brick/clipped split and compile-time
// bounds of the uniform path (DESIGN.md §17). Masks carry a
// process-unique id plus a version counter that together extend the
// plan-cache key: mutating a mask invalidates exactly the plans built
// against its old contents, nothing else.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace gmg {

class BrickMask {
 public:
  /// A mask over `num_bricks` storage ids, initially all clear.
  explicit BrickMask(std::int32_t num_bricks)
      : bits_(static_cast<std::size_t>(num_bricks), 0),
        uid_(next_unique_id()) {
    GMG_REQUIRE(num_bricks >= 0, "mask size must be non-negative");
  }

  bool test(std::int32_t id) const {
    return bits_[static_cast<std::size_t>(id)] != 0;
  }

  void set(std::int32_t id, bool on) {
    auto& b = bits_[static_cast<std::size_t>(id)];
    const std::uint8_t v = on ? 1 : 0;
    if (b == v) return;
    b = v;
    ++version_;
  }

  std::int32_t size() const { return static_cast<std::int32_t>(bits_.size()); }

  /// Number of selected bricks.
  std::int64_t count() const {
    std::int64_t n = 0;
    for (const std::uint8_t b : bits_) n += b;
    return n;
  }

  /// Process-unique identity of this mask object; part of the plan
  /// cache key. Ids only distinguish cache entries — allocation order
  /// never affects numerics.
  std::uint64_t unique_id() const { return uid_; }

  /// Bumped on every mutating set(); stale plan-cache entries keyed on
  /// an older version are simply never hit again and age out via LRU.
  std::uint64_t version() const { return version_; }

 private:
  static std::uint64_t next_unique_id() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::vector<std::uint8_t> bits_;
  std::uint64_t uid_ = 0;
  std::uint64_t version_ = 1;
};

}  // namespace gmg
