#include "perf/movement.hpp"

#include "arch/kernel_costs.hpp"
#include "common/error.hpp"

namespace gmg::perf {

CacheSim::CacheSim(std::uint64_t capacity_bytes, int line_bytes)
    : capacity_lines_(capacity_bytes / static_cast<std::uint64_t>(line_bytes)),
      line_bytes_(line_bytes) {
  GMG_REQUIRE(line_bytes > 0, "line size must be positive");
  GMG_REQUIRE(capacity_bytes == 0 || capacity_lines_ >= 1,
              "cache smaller than one line");
}

void CacheSim::touch(std::uint64_t addr, bool is_write) {
  const std::uint64_t line = addr / static_cast<std::uint64_t>(line_bytes_);
  auto it = map_.find(line);
  if (it != map_.end()) {
    // Hit: move to MRU position.
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->dirty |= is_write;
    return;
  }
  // Miss. Reads fill from DRAM; write misses allocate without a fill
  // ("write-validate"): every store in these kernels covers whole
  // cache lines, so GPUs stream them out without reading first — the
  // convention behind the paper's per-kernel byte counts.
  if (!is_write) ++fills_;
  if (capacity_lines_ != 0 && lru_.size() >= capacity_lines_) evict_lru();
  lru_.push_front(Entry{line, is_write});
  map_[line] = lru_.begin();
}

void CacheSim::evict_lru() {
  const Entry& victim = lru_.back();
  if (victim.dirty) ++evicted_dirty_;
  map_.erase(victim.line);
  lru_.pop_back();
}

void CacheSim::read(std::uint64_t addr) { touch(addr, false); }
void CacheSim::write(std::uint64_t addr) { touch(addr, true); }

std::uint64_t CacheSim::writebacks() const {
  std::uint64_t dirty_resident = 0;
  for (const Entry& e : lru_)
    if (e.dirty) ++dirty_resident;
  return evicted_dirty_ + dirty_resident;
}

std::uint64_t CacheSim::bytes_moved() const {
  return (fills_ + writebacks()) * static_cast<std::uint64_t>(line_bytes_);
}

namespace {

/// Address provider: distinct non-overlapping base per field, element
/// addresses from the real layout mapping.
class BrickAddrs {
 public:
  BrickAddrs(index_t n, index_t bdim)
      : arr_(BrickedArray::create({n, n, n}, BrickShape::cube(bdim), false)) {}

  std::uint64_t at(int field, index_t i, index_t j, index_t k) const {
    return static_cast<std::uint64_t>(field) * span() +
           arr_.element_index(i, j, k) * kRealBytes;
  }
  std::uint64_t span() const { return arr_.size() * kRealBytes; }
  const BrickGrid& grid() const { return arr_.grid(); }
  BrickShape shape() const { return arr_.shape(); }

 private:
  BrickedArray arr_;
};

class ArrayAddrs {
 public:
  ArrayAddrs(index_t n, index_t ghost) : arr_({n, n, n}, ghost, false) {}

  std::uint64_t at(int field, index_t i, index_t j, index_t k) const {
    return static_cast<std::uint64_t>(field) * span() +
           static_cast<std::uint64_t>(arr_.linear_index(i, j, k)) * kRealBytes;
  }
  std::uint64_t span() const { return arr_.size() * kRealBytes; }

 private:
  Array3D arr_;
};

/// Visit interior cells in the kernel's iteration order for the given
/// layout: brick-by-brick rows for bricks, lexicographic for arrays.
template <typename Fn>
void visit_cells(Layout layout, index_t n, index_t bdim, Fn&& fn) {
  if (layout == Layout::kArray) {
    for_each(Box::from_extent({n, n, n}), fn);
    return;
  }
  const index_t nb = n / bdim;
  for_each(Box::from_extent({nb, nb, nb}), [&](index_t bx, index_t by,
                                               index_t bz) {
    for (index_t lk = 0; lk < bdim; ++lk)
      for (index_t lj = 0; lj < bdim; ++lj)
        for (index_t li = 0; li < bdim; ++li)
          fn(bx * bdim + li, by * bdim + lj, bz * bdim + lk);
  });
}

template <typename Addrs>
void replay(arch::Op op, const Addrs& addrs, Layout layout, index_t n,
            index_t bdim, CacheSim& cache) {
  // Field ids: 0 = x, 1 = Ax, 2 = b, 3 = r, 4 = coarse field.
  switch (op) {
    case arch::Op::kApplyOp:
      visit_cells(layout, n, bdim, [&](index_t i, index_t j, index_t k) {
        cache.read(addrs.at(0, i, j, k));
        cache.read(addrs.at(0, i + 1, j, k));
        cache.read(addrs.at(0, i - 1, j, k));
        cache.read(addrs.at(0, i, j + 1, k));
        cache.read(addrs.at(0, i, j - 1, k));
        cache.read(addrs.at(0, i, j, k + 1));
        cache.read(addrs.at(0, i, j, k - 1));
        cache.write(addrs.at(1, i, j, k));
      });
      break;
    case arch::Op::kSmooth:
      visit_cells(layout, n, bdim, [&](index_t i, index_t j, index_t k) {
        cache.read(addrs.at(1, i, j, k));
        cache.read(addrs.at(2, i, j, k));
        cache.read(addrs.at(0, i, j, k));
        cache.write(addrs.at(0, i, j, k));
      });
      break;
    case arch::Op::kSmoothResidual:
      visit_cells(layout, n, bdim, [&](index_t i, index_t j, index_t k) {
        cache.read(addrs.at(1, i, j, k));
        cache.read(addrs.at(2, i, j, k));
        cache.write(addrs.at(3, i, j, k));
        cache.read(addrs.at(0, i, j, k));
        cache.write(addrs.at(0, i, j, k));
      });
      break;
    default:
      // Transfer operators are replayed separately (two address
      // spaces); see measure_movement.
      GMG_REQUIRE(false, "unhandled op in single-level replay");
  }
}

}  // namespace

MovementResult measure_movement(arch::Op op, Layout layout, index_t n,
                                index_t bdim, std::uint64_t cache_bytes,
                                int line_bytes) {
  GMG_REQUIRE(n % 2 == 0, "extent must be even");
  CacheSim cache(cache_bytes, line_bytes);

  const index_t nc = n / 2;  // coarse extent for transfer operators
  if (op == arch::Op::kRestriction || op == arch::Op::kInterpIncrement) {
    // Transfer operators span two levels with their own layouts.
    const auto run = [&](const auto& fine_addr, const auto& coarse_addr) {
      if (op == arch::Op::kRestriction) {
        // Kernel iterates coarse output cells (array) or fine bricks
        // (bricks); both reduce to: 8 fine reads, 1 coarse write.
        visit_cells(layout, nc, std::min<index_t>(bdim, nc),
                    [&](index_t ci, index_t cj, index_t ck) {
                      for (index_t dz = 0; dz < 2; ++dz)
                        for (index_t dy = 0; dy < 2; ++dy)
                          for (index_t dx = 0; dx < 2; ++dx)
                            cache.read(fine_addr.at(0, 2 * ci + dx,
                                                    2 * cj + dy, 2 * ck + dz));
                      cache.write(coarse_addr.at(0, ci, cj, ck));
                    });
      } else {
        visit_cells(layout, n, bdim, [&](index_t i, index_t j, index_t k) {
          cache.read(coarse_addr.at(0, i / 2, j / 2, k / 2));
          cache.read(fine_addr.at(0, i, j, k));
          cache.write(fine_addr.at(0, i, j, k));
        });
      }
    };
    MovementResult res;
    if (layout == Layout::kBrick) {
      BrickAddrs fine(n, bdim), coarse_base(nc, std::min<index_t>(bdim, nc));
      // Offset the coarse field past the fine field's address range.
      struct Shifted {
        const BrickAddrs* a;
        std::uint64_t off;
        std::uint64_t at(int f, index_t i, index_t j, index_t k) const {
          return off + a->at(f, i, j, k);
        }
      } coarse{&coarse_base, fine.span()};
      run(fine, coarse);
    } else {
      ArrayAddrs fine(n, 1), coarse_base(nc, 1);
      struct Shifted {
        const ArrayAddrs* a;
        std::uint64_t off;
        std::uint64_t at(int f, index_t i, index_t j, index_t k) const {
          return off + a->at(f, i, j, k);
        }
      } coarse{&coarse_base, fine.span()};
      run(fine, coarse);
    }
    res.bytes = cache.bytes_moved();
    res.points = static_cast<double>(
        op == arch::Op::kRestriction ? nc * nc * nc : n * n * n);
    res.flops = arch::flops_per_point(op) * res.points;
    return res;
  }

  if (layout == Layout::kBrick) {
    BrickAddrs addrs(n, bdim);
    replay(op, addrs, layout, n, bdim, cache);
  } else {
    ArrayAddrs addrs(n, 1);
    replay(op, addrs, layout, n, bdim, cache);
  }
  MovementResult res;
  res.bytes = cache.bytes_moved();
  res.points = static_cast<double>(n * n * n);
  res.flops = arch::flops_per_point(op) * res.points;
  return res;
}

}  // namespace gmg::perf
