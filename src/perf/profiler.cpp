#include "perf/profiler.hpp"

#include <sstream>

#include "common/error.hpp"

namespace gmg::perf {

const char* phase_name(Phase p) {
  // Exhaustive: adding a Phase without naming it must fail to compile
  // (no default case, so -Wswitch flags the omission) and the
  // static_assert pins the count this switch was written against.
  static_assert(static_cast<int>(Phase::kCount) == 11,
                "Phase enum changed: update phase_name and "
                "phase_from_name");
  switch (p) {
    case Phase::kExchange:
      return "exchange";
    case Phase::kApplyOp:
      return "applyOp";
    case Phase::kSmooth:
      return "smooth";
    case Phase::kSmoothResidual:
      return "smooth+residual";
    case Phase::kResidual:
      return "residual";
    case Phase::kRestriction:
      return "restriction";
    case Phase::kFusedDescent:
      return "smooth+residual+restriction";
    case Phase::kInterpIncrement:
      return "interpolation+increment";
    case Phase::kInitZero:
      return "initZero";
    case Phase::kMaxNorm:
      return "maxNorm";
    case Phase::kBottomSolve:
      return "bottomSolve";
    case Phase::kCount:
      break;
  }
  return "?";
}

bool phase_from_name(std::string_view name, Phase& out) {
  for (int p = 0; p < static_cast<int>(Phase::kCount); ++p) {
    if (name == phase_name(static_cast<Phase>(p))) {
      out = static_cast<Phase>(p);
      return true;
    }
  }
  return false;
}

trace::Category phase_category(Phase p) {
  return p == Phase::kExchange ? trace::Category::kComm
                               : trace::Category::kCompute;
}

Profiler Profiler::from_trace(const trace::Snapshot& snap) {
  Profiler prof;
  for (const trace::SpanRecord& s : snap.spans) {
    Phase phase;
    if (s.level >= 0 && phase_from_name(s.name, phase))
      prof.record(s.level, phase, s.seconds());
  }
  return prof;
}

const RunningStats& Profiler::stats(int level, Phase phase) const {
  auto it = stats_.find({level, phase});
  GMG_REQUIRE(it != stats_.end(), "no samples for this (level, phase)");
  return it->second;
}

double Profiler::total(int level, Phase phase) const {
  auto it = stats_.find({level, phase});
  return it == stats_.end() ? 0.0 : it->second.sum();
}

double Profiler::level_total(int level) const {
  double t = 0.0;
  for (const auto& [key, s] : stats_)
    if (key.first == level) t += s.sum();
  return t;
}

double Profiler::grand_total() const {
  double t = 0.0;
  for (const auto& [key, s] : stats_) t += s.sum();
  return t;
}

int Profiler::max_level() const {
  int m = -1;
  for (const auto& [key, s] : stats_) m = std::max(m, key.first);
  return m;
}

std::map<Phase, double> Profiler::level_breakdown(int level) const {
  const double total_s = level_total(level);
  std::map<Phase, double> out;
  if (total_s <= 0.0) return out;
  for (const auto& [key, s] : stats_)
    if (key.first == level) out[key.second] = s.sum() / total_s;
  return out;
}

std::string Profiler::report() const {
  std::ostringstream os;
  for (const auto& [key, s] : stats_) {
    os << "level " << key.first << ' ' << phase_name(key.second) << ' '
       << s.summary() << '\n';
  }
  return os.str();
}

}  // namespace gmg::perf
