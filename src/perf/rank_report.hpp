// Cross-rank profile reduction: the paper artifact reports, for every
// (level, operation), the [min, avg, max] and sigma of the accumulated
// time ACROSS RANKS, e.g.
//   level 0 applyOp [0.265012, 0.265184, 0.265346] (σ: 9.2e-05)
#pragma once

#include <string>

#include "comm/simmpi.hpp"
#include "perf/profiler.hpp"

namespace gmg::perf {

/// Collective: every rank contributes its per-(level, phase) totals
/// (all ranks must hold the same key set — true for the solver's bulk-
/// synchronous schedule). Returns the artifact-format report on every
/// rank.
std::string cross_rank_report(comm::Communicator& comm,
                              const Profiler& profiler);

/// Collective: cross-rank stats of one phase total at one level.
RunningStats cross_rank_stats(comm::Communicator& comm,
                              const Profiler& profiler, int level,
                              Phase phase);

}  // namespace gmg::perf
