// Analytic V-cycle cost model: combines the device kernel-time model
// and the Slingshot network model over the exact operation schedule of
// Algorithm 2 (including the communication-avoiding exchange cadence
// and the redundant ghost computation CA introduces).
//
// This is the engine behind the paper-scale figures: per-level times
// (Fig. 3), the finest-level breakdown (Table II), and — together with
// a collective term — weak and strong scaling (Figs. 8 and 9). The
// same schedule runs for real through GmgSolver; the model simply
// prices it for a GPU+network this host does not have (DESIGN.md §2).
#pragma once

#include <vector>

#include "arch/device_model.hpp"
#include "common/types.hpp"
#include "net/net_model.hpp"

namespace gmg::perf {

struct VcycleModelInput {
  Vec3 subdomain{512, 512, 512};  // cells per rank at the finest level
  int levels = 6;
  int smooths = 12;
  int bottom_smooths = 100;
  index_t brick_dim = 8;
  bool communication_avoiding = true;
  /// Remote neighbors per exchange (26 for a 3-D decomposition with
  /// more than one rank per axis; 0 models a single isolated rank).
  int remote_neighbors = 26;
  /// Include the per-V-cycle convergence check (exchange + applyOp +
  /// residual at the finest level + allreduce).
  bool include_norm_check = true;
  int total_ranks = 8;  // for the allreduce tree depth
  int nodes = 8;        // for fabric congestion at scale
  /// When nonzero, exchanges carry a conventional ghost shell of this
  /// cell depth instead of whole-brick ghosts — used to price the
  /// HPGMG-style comparator (depth 1, exchange every smooth).
  index_t ghost_depth = 0;
  /// The bricked GMG fuses smooth and residual into one kernel; the
  /// conventional comparator runs them separately (extra kernel and
  /// extra traffic per iteration).
  bool fused_smooth_residual = true;
  /// Communication-ordered brick storage sends straight from field
  /// memory; the conventional comparator stages each exchange through
  /// pack and unpack kernels (two launches plus 2x the message volume
  /// through HBM).
  bool pack_free = true;
};

struct LevelCost {
  Vec3 cells;
  double applyop_s = 0;
  double smooth_s = 0;          // bottom-level plain smooth
  double smooth_residual_s = 0;
  double residual_s = 0;
  double restriction_s = 0;
  double interp_s = 0;
  double exchange_s = 0;
  int exchange_count = 0;
  std::uint64_t exchange_bytes = 0;  // per single exchange

  double compute_s() const {
    return applyop_s + smooth_s + smooth_residual_s + residual_s +
           restriction_s + interp_s;
  }
  double total_s() const { return compute_s() + exchange_s; }
};

struct VcycleCost {
  std::vector<LevelCost> levels;
  double collective_s = 0;  // allreduce for the norm check
  double total_s = 0;
  /// Useful stencil applications (interior points of applyOp +
  /// smooth(+residual) + restriction + interpolation), excluding CA
  /// redundant ghost work — the paper's GStencil/s numerator.
  double useful_stencils = 0;
};

/// Price one V-cycle of Algorithm 2 on the given device and network.
VcycleCost model_vcycle(const arch::DeviceModel& dev,
                        const net::NetworkModel& net,
                        const VcycleModelInput& in);

/// Ghost-shell payload of one brick exchange at a level: the full
/// one-brick-deep shell around `cells`, in bytes.
std::uint64_t brick_exchange_bytes(Vec3 cells, index_t brick_dim);

/// Ghost-shell payload of a conventional depth-g cell exchange.
std::uint64_t cell_exchange_bytes(Vec3 cells, index_t ghost_depth);

}  // namespace gmg::perf
