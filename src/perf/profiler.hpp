// Per-(level, operation) timing aggregates, reported in the
// artifact's output format:
//   level 0 applyOp [0.265012, 0.265184, 0.265346] (σ: 9.2e-05)
//
// Since the src/trace subsystem landed, the Profiler is a thin
// consumer of trace measurements: timed() opens a trace::TraceSpan
// (which puts the operation on the shared per-rank timeline) and
// records the *same* span duration into its running stats, so the
// timeline, the trace aggregates, and this report all share one
// source of timing truth. from_trace() rebuilds a Profiler purely
// from a collected snapshot.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <utility>

#include "common/stats.hpp"
#include "trace/trace.hpp"

namespace gmg::perf {

/// Everything the V-cycle spends time on, including communication.
enum class Phase : int {
  kExchange = 0,
  kApplyOp,
  kSmooth,
  kSmoothResidual,
  kResidual,
  kRestriction,
  /// One fused descent pass covering the final smooth application,
  /// the residual, and the restriction (DESIGN.md §16) — replaces a
  /// kSmoothResidual + kRestriction pair (Jacobi) or a kResidual +
  /// kRestriction pair (GS tail) when fusion is on.
  kFusedDescent,
  kInterpIncrement,
  kInitZero,
  kMaxNorm,
  kBottomSolve,
  kCount
};

const char* phase_name(Phase p);

/// Reverse lookup; returns false when `name` is no phase.
bool phase_from_name(std::string_view name, Phase& out);

/// Trace category a phase renders under (kExchange blocks on peers).
trace::Category phase_category(Phase p);

class Profiler {
 public:
  void record(int level, Phase phase, double seconds) {
    stats_[{level, phase}].add(seconds);
  }

  /// Time one callable: emit a trace span for the timeline and record
  /// the identical duration into the aggregate.
  template <typename Fn>
  void timed(int level, Phase phase, Fn&& fn) {
    trace::TraceSpan span(phase_name(phase), phase_category(phase), level);
    fn();
    record(level, phase, span.close());
  }

  /// Rebuild the per-(level, phase) aggregate from a trace snapshot's
  /// levelled spans (inverse of timed()'s emission).
  static Profiler from_trace(const trace::Snapshot& snap);

  const RunningStats& stats(int level, Phase phase) const;
  bool has(int level, Phase phase) const {
    return stats_.count({level, phase}) != 0;
  }

  /// Total accumulated seconds for one phase at one level.
  double total(int level, Phase phase) const;
  /// Total accumulated seconds across all phases at one level.
  double level_total(int level) const;
  /// Grand total.
  double grand_total() const;
  int max_level() const;

  /// Fraction of one level's time spent in each phase (Table II).
  std::map<Phase, double> level_breakdown(int level) const;

  /// Artifact-format report, one line per (level, phase).
  std::string report() const;

  void clear() { stats_.clear(); }

 private:
  std::map<std::pair<int, Phase>, RunningStats> stats_;
};

}  // namespace gmg::perf
