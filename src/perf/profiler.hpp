// Per-(level, operation) timing instrumentation, reported in the
// artifact's output format:
//   level 0 applyOp [0.265012, 0.265184, 0.265346] (σ: 9.2e-05)
#pragma once

#include <map>
#include <string>
#include <utility>

#include "common/stats.hpp"
#include "common/timer.hpp"

namespace gmg::perf {

/// Everything the V-cycle spends time on, including communication.
enum class Phase : int {
  kExchange = 0,
  kApplyOp,
  kSmooth,
  kSmoothResidual,
  kResidual,
  kRestriction,
  kInterpIncrement,
  kInitZero,
  kMaxNorm,
  kBottomSolve,
  kCount
};

const char* phase_name(Phase p);

class Profiler {
 public:
  void record(int level, Phase phase, double seconds) {
    stats_[{level, phase}].add(seconds);
  }

  /// Time one callable and record it.
  template <typename Fn>
  void timed(int level, Phase phase, Fn&& fn) {
    Timer t;
    fn();
    record(level, phase, t.elapsed());
  }

  const RunningStats& stats(int level, Phase phase) const;
  bool has(int level, Phase phase) const {
    return stats_.count({level, phase}) != 0;
  }

  /// Total accumulated seconds for one phase at one level.
  double total(int level, Phase phase) const;
  /// Total accumulated seconds across all phases at one level.
  double level_total(int level) const;
  /// Grand total.
  double grand_total() const;
  int max_level() const;

  /// Fraction of one level's time spent in each phase (Table II).
  std::map<Phase, double> level_breakdown(int level) const;

  /// Artifact-format report, one line per (level, phase).
  std::string report() const;

  void clear() { stats_.clear(); }

 private:
  std::map<std::pair<int, Phase>, RunningStats> stats_;
};

}  // namespace gmg::perf
