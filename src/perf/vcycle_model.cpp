#include "perf/vcycle_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gmg::perf {

std::uint64_t cell_exchange_bytes(Vec3 cells, index_t ghost_depth) {
  const std::uint64_t ext = static_cast<std::uint64_t>(cells.x + 2 * ghost_depth) *
                            static_cast<std::uint64_t>(cells.y + 2 * ghost_depth) *
                            static_cast<std::uint64_t>(cells.z + 2 * ghost_depth);
  return (ext - static_cast<std::uint64_t>(cells.volume())) * kRealBytes;
}

std::uint64_t brick_exchange_bytes(Vec3 cells, index_t brick_dim) {
  const Vec3 nb{cells.x / brick_dim, cells.y / brick_dim,
                cells.z / brick_dim};
  const std::uint64_t ext = static_cast<std::uint64_t>(nb.x + 2) *
                            static_cast<std::uint64_t>(nb.y + 2) *
                            static_cast<std::uint64_t>(nb.z + 2);
  const std::uint64_t interior = static_cast<std::uint64_t>(nb.volume());
  const std::uint64_t brick_vol =
      static_cast<std::uint64_t>(brick_dim * brick_dim * brick_dim);
  return (ext - interior) * brick_vol * kRealBytes;
}

namespace {

using arch::Op;

double active_volume(Vec3 cells, index_t margin) {
  return static_cast<double>((cells.x + 2 * margin) * (cells.y + 2 * margin) *
                             (cells.z + 2 * margin));
}

/// Price one smoothing loop (Algorithm 2 inner loop) at one level.
void price_smooth_loop(const arch::DeviceModel& dev,
                       const net::NetworkModel& net,
                       const VcycleModelInput& in, Vec3 cells,
                       int iterations, bool with_residual, LevelCost& out) {
  const double interior = static_cast<double>(cells.volume());
  const std::uint64_t xbytes =
      in.ghost_depth > 0 ? cell_exchange_bytes(cells, in.ghost_depth)
                         : brick_exchange_bytes(cells, in.brick_dim);
  out.exchange_bytes = xbytes;

  const auto exchange_once = [&] {
    ++out.exchange_count;
    if (in.remote_neighbors > 0) {
      out.exchange_s += net.exchange_time(static_cast<double>(xbytes),
                                          in.remote_neighbors, in.nodes);
    } else {
      // Periodic self-copies: a device-side memcpy of the shell.
      out.exchange_s += dev.spec().launch_overhead_us * 1e-6 +
                        static_cast<double>(xbytes) /
                            (dev.spec().hbm_measured_gbs * 1e9);
    }
    if (!in.pack_free) {
      // Pack + unpack kernels: two launches and the message volume
      // through HBM twice.
      out.exchange_s += 2.0 * (dev.spec().launch_overhead_us * 1e-6 +
                               static_cast<double>(xbytes) /
                                   (dev.spec().hbm_measured_gbs * 1e9));
    }
  };

  const auto smooth_kernels = [&](double pts, bool with_res) {
    if (!with_res) {
      out.smooth_s += dev.kernel_time(Op::kSmooth, pts);
    } else if (in.fused_smooth_residual) {
      out.smooth_residual_s += dev.kernel_time(Op::kSmoothResidual, pts);
    } else {
      // Separate smooth then residual kernels (24 B/pt each).
      out.smooth_s += dev.kernel_time(Op::kSmooth, pts);
      out.residual_s += dev.kernel_time(Op::kSmooth, pts);
    }
  };

  if (in.communication_avoiding) {
    index_t margin = 0;
    for (int it = 0; it < iterations; ++it) {
      if (margin < 1) {
        exchange_once();
        margin = in.brick_dim;
      }
      const double pts = active_volume(cells, margin - 1);
      out.applyop_s += dev.kernel_time(Op::kApplyOp, pts);
      smooth_kernels(pts, with_residual);
      --margin;
    }
  } else {
    for (int it = 0; it < iterations; ++it) {
      exchange_once();
      out.applyop_s += dev.kernel_time(Op::kApplyOp, interior);
      smooth_kernels(interior, with_residual);
    }
  }
}

}  // namespace

VcycleCost model_vcycle(const arch::DeviceModel& dev,
                        const net::NetworkModel& net,
                        const VcycleModelInput& in) {
  GMG_REQUIRE(in.levels >= 1, "need at least one level");
  VcycleCost cost;
  cost.levels.resize(static_cast<std::size_t>(in.levels));
  const int bottom = in.levels - 1;

  for (int l = 0; l < in.levels; ++l) {
    const index_t scale = index_t{1} << l;
    cost.levels[static_cast<std::size_t>(l)].cells = {
        in.subdomain.x / scale, in.subdomain.y / scale, in.subdomain.z / scale};
  }

  // Downsweep + upsweep smoothing loops, transfers.
  for (int l = 0; l < bottom; ++l) {
    LevelCost& lc = cost.levels[static_cast<std::size_t>(l)];
    const double cells = static_cast<double>(lc.cells.volume());
    // Two smoothing loops per V-cycle (down and up).
    price_smooth_loop(dev, net, in, lc.cells, in.smooths, true, lc);
    price_smooth_loop(dev, net, in, lc.cells, in.smooths, true, lc);
    lc.restriction_s += dev.kernel_time(Op::kRestriction, cells / 8.0);
    lc.interp_s += dev.kernel_time(Op::kInterpIncrement, cells);
    cost.useful_stencils +=
        2.0 * in.smooths * 2.0 * cells + cells / 8.0 + cells;
  }
  {
    LevelCost& lb = cost.levels[static_cast<std::size_t>(bottom)];
    price_smooth_loop(dev, net, in, lb.cells, in.bottom_smooths, false, lb);
    cost.useful_stencils +=
        2.0 * in.bottom_smooths * static_cast<double>(lb.cells.volume());
  }

  // Convergence check at the finest level: exchange, applyOp,
  // residual (24 B/pt at the smooth kernel's efficiency), maxNorm
  // (8 B/pt), and a latency-bound allreduce tree.
  if (in.include_norm_check) {
    LevelCost& l0 = cost.levels.front();
    const double cells = static_cast<double>(l0.cells.volume());
    ++l0.exchange_count;
    if (in.remote_neighbors > 0) {
      const std::uint64_t xb =
          in.ghost_depth > 0
              ? cell_exchange_bytes(l0.cells, in.ghost_depth)
              : brick_exchange_bytes(l0.cells, in.brick_dim);
      l0.exchange_s += net.exchange_time(static_cast<double>(xb),
                                         in.remote_neighbors, in.nodes);
    }
    l0.applyop_s += dev.kernel_time(Op::kApplyOp, cells);
    l0.residual_s += dev.kernel_time(Op::kSmooth, cells);  // 24 B/pt
    l0.residual_s += dev.spec().launch_overhead_us * 1e-6 +
                     cells * kRealBytes /
                         (dev.achieved_bandwidth(Op::kSmooth));  // maxNorm
    cost.useful_stencils += 2.0 * cells;
    const int hops =
        in.total_ranks > 1
            ? static_cast<int>(std::ceil(std::log2(in.total_ranks)))
            : 0;
    cost.collective_s = hops * dev.spec().nic_latency_us * 1e-6;
  }

  for (const LevelCost& lc : cost.levels) cost.total_s += lc.total_s();
  cost.total_s += cost.collective_s;
  return cost;
}

}  // namespace gmg::perf
