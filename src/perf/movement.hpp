// Data-movement measurement by address-trace cache simulation — the
// reproduction's stand-in for the vendor profilers' DRAM-traffic
// counters (Nsight / rocprof / Advisor in the paper §VII).
//
// Each V-cycle kernel's access pattern is replayed, in the kernel's
// real iteration order and through the real storage layout (bricked or
// conventional), against an LRU cache model at cache-line granularity.
//   * capacity 0 (infinite cache) measures compulsory traffic — the
//     denominator of the paper's theoretical AI (Table IV);
//   * a finite capacity measures actual traffic on a given
//     architecture — the numerator of the fraction-of-theoretical-AI
//     portability metric (Table V).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "arch/arch_spec.hpp"
#include "brick/bricked_array.hpp"
#include "mesh/array3d.hpp"

namespace gmg::perf {

/// Set-less (fully associative) LRU cache model with write-back,
/// write-allocate semantics. capacity_bytes == 0 means infinite.
class CacheSim {
 public:
  CacheSim(std::uint64_t capacity_bytes, int line_bytes);

  void read(std::uint64_t addr);
  void write(std::uint64_t addr);

  /// DRAM traffic: line fills plus dirty write-backs (including the
  /// final flush of resident dirty lines).
  std::uint64_t bytes_moved() const;
  std::uint64_t fills() const { return fills_; }
  std::uint64_t writebacks() const;

 private:
  struct Entry {
    std::uint64_t line;
    bool dirty;
  };
  void touch(std::uint64_t addr, bool is_write);
  void evict_lru();

  std::uint64_t capacity_lines_;
  int line_bytes_;
  std::uint64_t fills_ = 0;
  std::uint64_t evicted_dirty_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> map_;
};

/// Which storage layout to replay.
enum class Layout { kBrick, kArray };

struct MovementResult {
  std::uint64_t bytes = 0;  // simulated DRAM traffic
  double flops = 0;         // from the Table IV accounting
  double points = 0;        // kernel points processed
  double ai() const { return flops / static_cast<double>(bytes); }
  double bytes_per_point() const {
    return static_cast<double>(bytes) / points;
  }
};

/// Replay one kernel over a cubic subdomain of extent n (brick shape
/// `bdim` for the brick layout). cache_bytes == 0 simulates an
/// infinite cache (compulsory traffic).
MovementResult measure_movement(arch::Op op, Layout layout, index_t n,
                                index_t bdim, std::uint64_t cache_bytes,
                                int line_bytes);

}  // namespace gmg::perf
