#include "perf/rank_report.hpp"

#include <sstream>

namespace gmg::perf {

RunningStats cross_rank_stats(comm::Communicator& comm,
                              const Profiler& profiler, int level,
                              Phase phase) {
  const double mine = profiler.total(level, phase);
  RunningStats stats;
  for (double v : comm.allgather(mine)) stats.add(v);
  return stats;
}

std::string cross_rank_report(comm::Communicator& comm,
                              const Profiler& profiler) {
  std::ostringstream os;
  const int max_level = profiler.max_level();
  for (int level = 0; level <= max_level; ++level) {
    for (int p = 0; p < static_cast<int>(Phase::kCount); ++p) {
      const Phase phase = static_cast<Phase>(p);
      // The key set is schedule-determined and identical on every
      // rank, so this has()-check keeps the collective aligned.
      if (!profiler.has(level, phase)) continue;
      const RunningStats stats = cross_rank_stats(comm, profiler, level,
                                                  phase);
      os << "level " << level << ' ' << phase_name(phase) << ' '
         << stats.summary() << '\n';
    }
  }
  return os.str();
}

}  // namespace gmg::perf
