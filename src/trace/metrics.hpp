// Sink 2: aggregated metrics. Collapses a snapshot's spans into
// per-name distribution statistics (count / total / min / max / p50 /
// p99) and sums the counters, for a machine-readable JSON artifact CI
// can regress against.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace gmg::trace {

struct SpanStats {
  std::string name;
  Category cat = Category::kOther;
  std::size_t count = 0;
  double total_s = 0;
  double min_s = 0;
  double max_s = 0;
  double p50_s = 0;
  double p99_s = 0;
};

struct MetricsSummary {
  /// Per span name, sorted by total seconds descending.
  std::vector<SpanStats> spans;
  /// Per counter name, summed across ranks, sorted by name.
  std::vector<CounterTotal> counters;
  std::uint64_t dropped = 0;

  const SpanStats* find(std::string_view name) const;
};

MetricsSummary summarize(const Snapshot& snap);

void write_metrics_json(const MetricsSummary& m, std::ostream& os);
void write_metrics_json_file(const MetricsSummary& m,
                             const std::string& path);

}  // namespace gmg::trace
