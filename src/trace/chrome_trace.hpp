// Sink 1: Chrome trace-event JSON (the "JSON Array with metadata"
// flavor), loadable in chrome://tracing and Perfetto. Each simulated
// rank renders as its own pid so exchange overlap and rank skew are
// visible on one shared timeline; spans are "X" (complete) events with
// microsecond timestamps relative to the earliest span, counters are
// "C" events carrying the final totals.
//
// read_chrome_trace() parses exactly what write_chrome_trace() emits
// (plus tolerating unknown keys), so traces round-trip through
// tools/trace_report and tests can verify the format end to end.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace gmg::trace {

void write_chrome_trace(const Snapshot& snap, std::ostream& os);

/// Write to `path`; throws gmg::Error if the file cannot be opened.
void write_chrome_trace_file(const Snapshot& snap, const std::string& path);

/// Parse a trace-event JSON document back into a snapshot (timestamps
/// become nanoseconds relative to the file's origin). Throws
/// gmg::Error on malformed JSON.
Snapshot read_chrome_trace(std::istream& is);
Snapshot read_chrome_trace_file(const std::string& path);

}  // namespace gmg::trace
