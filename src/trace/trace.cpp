#include "trace/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

namespace gmg::trace {
namespace {

/// Events per thread buffer. 64Ki x 40B = 2.5 MiB per recording
/// thread; overflow drops events and counts them, never blocks.
constexpr std::size_t kRingCapacity = std::size_t{1} << 16;

struct RawEvent {
  const char* name = nullptr;
  std::uint64_t t0_ns = 0;
  std::uint64_t dur_ns = 0;
  std::int32_t level = -1;
  std::int32_t rank = 0;
  Category cat = Category::kOther;
};

struct RawCounter {
  const char* name = nullptr;
  int rank = 0;
  std::uint64_t value = 0;
};

/// Single-writer event ring plus a mutex-guarded counter table. The
/// owning thread is the only writer of events[0..count); collect()
/// reads count with acquire ordering against the owner's release
/// store, so harvested slots are fully written.
struct ThreadBuffer {
  explicit ThreadBuffer(int tid_) : events(kRingCapacity), tid(tid_) {}

  std::vector<RawEvent> events;
  std::atomic<std::size_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<bool> retired{false};
  int tid = 0;

  std::mutex counter_mu;
  std::vector<RawCounter> counters;
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;  // live + retired
  std::vector<std::shared_ptr<ThreadBuffer>> free;     // harvested, reusable
  int next_tid = 0;
};

/// Leaked singleton: rank threads may still touch their buffers while
/// static destructors run, so the registry must outlive everything.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

std::atomic<bool> g_enabled{true};

thread_local int tls_rank = 0;

/// Returning a buffer to the free list happens via this handle's
/// destructor at thread exit; events survive (the registry keeps a
/// reference) and the buffer is only reused after a clearing collect()
/// has harvested it.
struct TlsHandle {
  std::shared_ptr<ThreadBuffer> buf;
  ~TlsHandle() {
    if (buf) buf->retired.store(true, std::memory_order_release);
  }
};
thread_local TlsHandle tls_handle;

ThreadBuffer* local_buffer() {
  if (!tls_handle.buf) {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    if (!reg.free.empty()) {
      tls_handle.buf = std::move(reg.free.back());
      reg.free.pop_back();
      tls_handle.buf->retired.store(false, std::memory_order_relaxed);
      reg.buffers.push_back(tls_handle.buf);
    } else {
      tls_handle.buf = std::make_shared<ThreadBuffer>(reg.next_tid++);
      reg.buffers.push_back(tls_handle.buf);
    }
  }
  return tls_handle.buf.get();
}

void push_event(const char* name, Category cat, int level, std::uint64_t t0,
                std::uint64_t dur) {
  ThreadBuffer* b = local_buffer();
  const std::size_t i = b->count.load(std::memory_order_relaxed);
  if (i >= b->events.size()) {
    b->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  b->events[i] = RawEvent{name, t0, dur, level, tls_rank, cat};
  b->count.store(i + 1, std::memory_order_release);
}

}  // namespace

const char* category_name(Category c) {
  switch (c) {
    case Category::kCompute:
      return "compute";
    case Category::kComm:
      return "comm";
    case Category::kWait:
      return "wait";
    case Category::kModel:
      return "model";
    case Category::kExec:
      return "exec";
    case Category::kOther:
      return "other";
  }
  return "other";
}

Category category_from_name(std::string_view name) {
  if (name == "compute") return Category::kCompute;
  if (name == "comm") return Category::kComm;
  if (name == "wait") return Category::kWait;
  if (name == "model") return Category::kModel;
  if (name == "exec") return Category::kExec;
  return Category::kOther;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void set_rank(int rank) { tls_rank = rank; }
int current_rank() { return tls_rank; }

TraceSpan::TraceSpan(const char* name, Category cat, int level) {
  name_ = name;
  cat_ = cat;
  level_ = level;
  recording_ = enabled();
  t0_ = now_ns();
  open_ = true;
}

TraceSpan::~TraceSpan() { close(); }

double TraceSpan::close() {
  if (!open_) return 0.0;
  open_ = false;
  const std::uint64_t t1 = now_ns();
  if (recording_) push_event(name_, cat_, level_, t0_, t1 - t0_);
  return static_cast<double>(t1 - t0_) * 1e-9;
}

double TraceSpan::elapsed() const {
  if (!open_) return 0.0;
  return static_cast<double>(now_ns() - t0_) * 1e-9;
}

void counter_add(const char* name, std::uint64_t delta) {
  if (!enabled()) return;
  ThreadBuffer* b = local_buffer();
  std::lock_guard<std::mutex> lock(b->counter_mu);
  for (RawCounter& c : b->counters) {
    // Literal names usually dedup to one pointer; fall back to a
    // string compare so equal names from different TUs still merge.
    if (c.rank == tls_rank &&
        (c.name == name || std::string_view(c.name) == name)) {
      c.value += delta;
      return;
    }
  }
  b->counters.push_back(RawCounter{name, tls_rank, delta});
}

std::uint64_t Snapshot::counter_total(std::string_view name) const {
  std::uint64_t total = 0;
  for (const CounterTotal& c : counters)
    if (c.name == name) total += c.value;
  return total;
}

double Snapshot::span_seconds(std::string_view name, int rank) const {
  double total = 0;
  for (const SpanRecord& s : spans)
    if (s.name == name && (rank < 0 || s.rank == rank)) total += s.seconds();
  return total;
}

int Snapshot::max_rank() const {
  int m = -1;
  for (const SpanRecord& s : spans) m = std::max(m, s.rank);
  for (const CounterTotal& c : counters) m = std::max(m, c.rank);
  return m;
}

Snapshot collect(bool clear) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  Snapshot snap;
  for (const auto& b : reg.buffers) {
    const std::size_t n =
        std::min(b->count.load(std::memory_order_acquire), b->events.size());
    for (std::size_t i = 0; i < n; ++i) {
      const RawEvent& e = b->events[i];
      snap.spans.push_back(SpanRecord{e.name, e.cat, e.rank, b->tid, e.level,
                                      e.t0_ns, e.dur_ns});
    }
    snap.dropped += b->dropped.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> clock(b->counter_mu);
      for (const RawCounter& c : b->counters)
        snap.counters.push_back(CounterTotal{c.name, c.rank, c.value});
      if (clear) b->counters.clear();
    }
    if (clear) {
      b->count.store(0, std::memory_order_relaxed);
      b->dropped.store(0, std::memory_order_relaxed);
    }
  }
  if (clear) {
    // Recycle buffers whose owner thread has exited.
    auto it = std::partition(reg.buffers.begin(), reg.buffers.end(),
                             [](const std::shared_ptr<ThreadBuffer>& b) {
                               return !b->retired.load(
                                   std::memory_order_acquire);
                             });
    for (auto r = it; r != reg.buffers.end(); ++r)
      reg.free.push_back(std::move(*r));
    reg.buffers.erase(it, reg.buffers.end());
  }

  std::sort(snap.spans.begin(), snap.spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.rank != b.rank) return a.rank < b.rank;
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
              return a.dur_ns > b.dur_ns;  // parent before child
            });

  // Merge counters recorded by different threads of the same rank.
  std::sort(snap.counters.begin(), snap.counters.end(),
            [](const CounterTotal& a, const CounterTotal& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.rank < b.rank;
            });
  std::vector<CounterTotal> merged;
  for (CounterTotal& c : snap.counters) {
    if (!merged.empty() && merged.back().name == c.name &&
        merged.back().rank == c.rank) {
      merged.back().value += c.value;
    } else {
      merged.push_back(std::move(c));
    }
  }
  snap.counters = std::move(merged);
  return snap;
}

void clear() { (void)collect(/*clear=*/true); }

}  // namespace gmg::trace
