#include "trace/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

namespace gmg::trace {
namespace {

/// Parse a positive integer environment variable, clamped; `fallback`
/// when unset or unparsable.
std::size_t env_size(const char* name, std::size_t fallback, std::size_t lo,
                     std::size_t hi) {
  const char* s = std::getenv(name);
  if (s == nullptr) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || v <= 0) return fallback;
  return std::clamp(static_cast<std::size_t>(v), lo, hi);
}

struct RawEvent {
  const char* name = nullptr;
  std::uint64_t t0_ns = 0;
  std::uint64_t dur_ns = 0;
  std::int32_t level = -1;
  std::int32_t rank = 0;
  Category cat = Category::kOther;
};

struct RawCounter {
  const char* name = nullptr;
  int rank = 0;
  std::uint64_t value = 0;
};

/// Single-writer event ring plus a mutex-guarded counter table. The
/// owning thread is the only writer of events[0..count); collect()
/// reads count with acquire ordering against the owner's release
/// store, so harvested slots are fully written.
struct ThreadBuffer {
  explicit ThreadBuffer(int tid_) : events(ring_capacity()), tid(tid_) {}

  std::vector<RawEvent> events;
  std::atomic<std::size_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<bool> retired{false};
  int tid = 0;

  std::mutex counter_mu;
  std::vector<RawCounter> counters;
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;  // live + retired
  std::vector<std::shared_ptr<ThreadBuffer>> free;     // harvested, reusable
  int next_tid = 0;
};

/// Leaked singleton: rank threads may still touch their buffers while
/// static destructors run, so the registry must outlive everything.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

/// Where the periodic flusher parks drained events between collects.
/// Bounded: beyond `keep_spans` the oldest spans are discarded and
/// counted as dropped, so a runaway service degrades loudly (the drop
/// counter) instead of exhausting memory. Compaction runs only once
/// the store reaches twice `keep_spans` (then trims back down to it),
/// so the front-erase shift is amortized O(1) per appended span
/// instead of an O(keep_spans) memmove on every append at the cap.
struct FlushStore {
  std::mutex mu;
  std::vector<SpanRecord> spans;
  std::vector<CounterTotal> counters;
  std::uint64_t dropped = 0;
  std::size_t keep_spans =
      env_size("GMG_TRACE_FLUSH_KEEP", std::size_t{1} << 18,
               std::size_t{1} << 10, std::size_t{1} << 26);
};

FlushStore& flush_store() {
  static FlushStore* s = new FlushStore;
  return *s;
}

/// The background flusher thread and its stop signal.
struct Flusher {
  std::mutex mu;
  std::condition_variable cv;
  std::thread thread;
  bool stop = false;
  bool running = false;
};

Flusher& flusher() {
  static Flusher* f = new Flusher;
  return *f;
}

std::atomic<bool> g_enabled{true};

thread_local int tls_rank = 0;

// Defined below, after Snapshot's methods.
void drain_buffer(ThreadBuffer& b, Snapshot& snap);
void append_to_flush_store(Snapshot&& snap);

/// At thread exit the owning thread drains its ring into the bounded
/// flush store and returns the buffer to the free list. Draining
/// eagerly (rather than waiting for a clearing collect()) keeps trace
/// memory bounded by the peak number of concurrent threads: a serving
/// process spawns short-lived world threads per request, and stranding
/// one full ring per thread ever created grows without bound.
struct TlsHandle {
  std::shared_ptr<ThreadBuffer> buf;
  ~TlsHandle() {
    if (!buf) return;
    Snapshot snap;
    {
      Registry& reg = registry();
      std::lock_guard<std::mutex> lock(reg.mu);
      drain_buffer(*buf, snap);
      auto it = std::find(reg.buffers.begin(), reg.buffers.end(), buf);
      if (it != reg.buffers.end()) reg.buffers.erase(it);
      buf->retired.store(true, std::memory_order_release);
      reg.free.push_back(std::move(buf));
    }
    append_to_flush_store(std::move(snap));
  }
};
thread_local TlsHandle tls_handle;

ThreadBuffer* local_buffer() {
  if (!tls_handle.buf) {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    if (!reg.free.empty()) {
      tls_handle.buf = std::move(reg.free.back());
      reg.free.pop_back();
      tls_handle.buf->retired.store(false, std::memory_order_relaxed);
      reg.buffers.push_back(tls_handle.buf);
    } else {
      tls_handle.buf = std::make_shared<ThreadBuffer>(reg.next_tid++);
      reg.buffers.push_back(tls_handle.buf);
    }
  }
  return tls_handle.buf.get();
}

void push_event(const char* name, Category cat, int level, std::uint64_t t0,
                std::uint64_t dur) {
  ThreadBuffer* b = local_buffer();
  const std::size_t i = b->count.load(std::memory_order_relaxed);
  if (i >= b->events.size()) {
    b->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  b->events[i] = RawEvent{name, t0, dur, level, tls_rank, cat};
  b->count.store(i + 1, std::memory_order_release);
}

}  // namespace

const char* category_name(Category c) {
  switch (c) {
    case Category::kCompute:
      return "compute";
    case Category::kComm:
      return "comm";
    case Category::kWait:
      return "wait";
    case Category::kModel:
      return "model";
    case Category::kExec:
      return "exec";
    case Category::kOther:
      return "other";
  }
  return "other";
}

Category category_from_name(std::string_view name) {
  if (name == "compute") return Category::kCompute;
  if (name == "comm") return Category::kComm;
  if (name == "wait") return Category::kWait;
  if (name == "model") return Category::kModel;
  if (name == "exec") return Category::kExec;
  return Category::kOther;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

std::size_t ring_capacity() {
  static const std::size_t cap =
      env_size("GMG_TRACE_RING", std::size_t{1} << 16, std::size_t{1} << 10,
               std::size_t{1} << 24);
  return cap;
}

void set_rank(int rank) { tls_rank = rank; }
int current_rank() { return tls_rank; }

TraceSpan::TraceSpan(const char* name, Category cat, int level) {
  name_ = name;
  cat_ = cat;
  level_ = level;
  recording_ = enabled();
  t0_ = now_ns();
  open_ = true;
}

TraceSpan::~TraceSpan() { close(); }

double TraceSpan::close() {
  if (!open_) return 0.0;
  open_ = false;
  const std::uint64_t t1 = now_ns();
  if (recording_) push_event(name_, cat_, level_, t0_, t1 - t0_);
  return static_cast<double>(t1 - t0_) * 1e-9;
}

double TraceSpan::elapsed() const {
  if (!open_) return 0.0;
  return static_cast<double>(now_ns() - t0_) * 1e-9;
}

void counter_add(const char* name, std::uint64_t delta) {
  if (!enabled()) return;
  ThreadBuffer* b = local_buffer();
  std::lock_guard<std::mutex> lock(b->counter_mu);
  for (RawCounter& c : b->counters) {
    // Literal names usually dedup to one pointer; fall back to a
    // string compare so equal names from different TUs still merge.
    if (c.rank == tls_rank &&
        (c.name == name || std::string_view(c.name) == name)) {
      c.value += delta;
      return;
    }
  }
  b->counters.push_back(RawCounter{name, tls_rank, delta});
}

std::uint64_t Snapshot::counter_total(std::string_view name) const {
  std::uint64_t total = 0;
  for (const CounterTotal& c : counters)
    if (c.name == name) total += c.value;
  return total;
}

double Snapshot::span_seconds(std::string_view name, int rank) const {
  double total = 0;
  for (const SpanRecord& s : spans)
    if (s.name == name && (rank < 0 || s.rank == rank)) total += s.seconds();
  return total;
}

int Snapshot::max_rank() const {
  int m = -1;
  for (const SpanRecord& s : spans) m = std::max(m, s.rank);
  for (const CounterTotal& c : counters) m = std::max(m, c.rank);
  return m;
}

namespace {

/// Drain one buffer's ring and counter table into `snap` and reset
/// them. Caller must hold the registry lock (mutual exclusion with
/// harvest_rings) and be — or exclude — the owning thread.
void drain_buffer(ThreadBuffer& b, Snapshot& snap) {
  const std::size_t n =
      std::min(b.count.load(std::memory_order_acquire), b.events.size());
  for (std::size_t i = 0; i < n; ++i) {
    const RawEvent& e = b.events[i];
    snap.spans.push_back(SpanRecord{e.name, e.cat, e.rank, b.tid, e.level,
                                    e.t0_ns, e.dur_ns});
  }
  snap.dropped += b.dropped.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> clock(b.counter_mu);
    for (const RawCounter& c : b.counters)
      snap.counters.push_back(CounterTotal{c.name, c.rank, c.value});
    b.counters.clear();
  }
  b.count.store(0, std::memory_order_relaxed);
  b.dropped.store(0, std::memory_order_relaxed);
}

/// Park `snap` in the flush store, enforcing the keep_spans bound.
/// Takes only the flush-store lock; never called with the registry
/// lock held.
void append_to_flush_store(Snapshot&& snap) {
  FlushStore& fs = flush_store();
  std::lock_guard<std::mutex> lock(fs.mu);
  fs.dropped += snap.dropped;
  for (SpanRecord& s : snap.spans) fs.spans.push_back(std::move(s));
  for (CounterTotal& c : snap.counters) fs.counters.push_back(std::move(c));
  if (fs.spans.size() > 2 * fs.keep_spans) {
    const std::size_t excess = fs.spans.size() - fs.keep_spans;
    fs.spans.erase(fs.spans.begin(),
                   fs.spans.begin() + static_cast<std::ptrdiff_t>(excess));
    fs.spans.shrink_to_fit();
    fs.dropped += excess;
  }
}

/// Drain every ring buffer into `snap` (unsorted). Holds the registry
/// lock; the flush-store lock is never taken inside it.
void harvest_rings(Snapshot& snap, bool clear) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& b : reg.buffers) {
    const std::size_t n =
        std::min(b->count.load(std::memory_order_acquire), b->events.size());
    for (std::size_t i = 0; i < n; ++i) {
      const RawEvent& e = b->events[i];
      snap.spans.push_back(SpanRecord{e.name, e.cat, e.rank, b->tid, e.level,
                                      e.t0_ns, e.dur_ns});
    }
    snap.dropped += b->dropped.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> clock(b->counter_mu);
      for (const RawCounter& c : b->counters)
        snap.counters.push_back(CounterTotal{c.name, c.rank, c.value});
      if (clear) b->counters.clear();
    }
    if (clear) {
      b->count.store(0, std::memory_order_relaxed);
      b->dropped.store(0, std::memory_order_relaxed);
    }
  }
  if (clear) {
    // Recycle buffers whose owner thread has exited.
    auto it = std::partition(reg.buffers.begin(), reg.buffers.end(),
                             [](const std::shared_ptr<ThreadBuffer>& b) {
                               return !b->retired.load(
                                   std::memory_order_acquire);
                             });
    for (auto r = it; r != reg.buffers.end(); ++r)
      reg.free.push_back(std::move(*r));
    reg.buffers.erase(it, reg.buffers.end());
  }
}

/// Sort spans and merge per-(name, rank) counters — the snapshot
/// ordering contract documented in trace.hpp.
void finalize_snapshot(Snapshot& snap) {
  std::sort(snap.spans.begin(), snap.spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.rank != b.rank) return a.rank < b.rank;
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
              return a.dur_ns > b.dur_ns;  // parent before child
            });

  // Merge counters recorded by different threads of the same rank.
  std::sort(snap.counters.begin(), snap.counters.end(),
            [](const CounterTotal& a, const CounterTotal& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.rank < b.rank;
            });
  std::vector<CounterTotal> merged;
  for (CounterTotal& c : snap.counters) {
    if (!merged.empty() && merged.back().name == c.name &&
        merged.back().rank == c.rank) {
      merged.back().value += c.value;
    } else {
      merged.push_back(std::move(c));
    }
  }
  snap.counters = std::move(merged);
}

}  // namespace

Snapshot collect(bool clear) {
  Snapshot snap;
  // Flushed events precede anything still sitting in a ring, so they
  // go in first (ordering is restored by the sort regardless).
  {
    FlushStore& fs = flush_store();
    std::lock_guard<std::mutex> lock(fs.mu);
    snap.spans = clear ? std::move(fs.spans) : fs.spans;
    snap.counters = clear ? std::move(fs.counters) : fs.counters;
    snap.dropped = fs.dropped;
    if (clear) {
      fs.spans.clear();
      fs.counters.clear();
      fs.dropped = 0;
    }
  }
  harvest_rings(snap, clear);
  finalize_snapshot(snap);
  return snap;
}

void clear() { (void)collect(/*clear=*/true); }

void flush_now() {
  Snapshot snap;
  harvest_rings(snap, /*clear=*/true);
  append_to_flush_store(std::move(snap));
}

void start_periodic_flush(double interval_seconds) {
  if (!(interval_seconds > 0)) return;
  Flusher& f = flusher();
  stop_periodic_flush();
  std::lock_guard<std::mutex> lock(f.mu);
  f.stop = false;
  f.running = true;
  f.thread = std::thread([interval_seconds, &f] {
    const auto interval = std::chrono::duration<double>(interval_seconds);
    std::unique_lock<std::mutex> worker_lock(f.mu);
    while (!f.cv.wait_for(worker_lock, interval, [&] { return f.stop; })) {
      worker_lock.unlock();
      flush_now();
      worker_lock.lock();
    }
  });
}

bool start_periodic_flush_from_env() {
  const char* s = std::getenv("GMG_TRACE_FLUSH_MS");
  if (s == nullptr) return false;
  char* end = nullptr;
  const double ms = std::strtod(s, &end);
  if (end == s || !(ms > 0)) return false;
  start_periodic_flush(ms * 1e-3);
  return true;
}

void stop_periodic_flush() {
  Flusher& f = flusher();
  std::thread joinable;
  {
    std::lock_guard<std::mutex> lock(f.mu);
    if (!f.running) return;
    f.stop = true;
    f.running = false;
    joinable = std::move(f.thread);
  }
  f.cv.notify_all();
  joinable.join();
}

}  // namespace gmg::trace
