// Always-on structured tracing: the single source of timing truth for
// the repo (DESIGN.md § Tracing & metrics).
//
// Every instrumented site records *events* — completed spans with a
// monotonic start timestamp and duration, or monotonically increasing
// named counters — into a per-thread ring buffer. Recording is
// wait-free for spans (single-writer ring, release-store on the count)
// and takes one uncontended mutex for counters, so hot kernels can be
// wrapped unconditionally; the measured overhead budget is <2% on the
// fig5 kernels (see BENCH_trace_overhead.json).
//
// Rank identity comes from the simmpi layer: World::run tags each rank
// thread via set_rank(), so a collected snapshot can be rendered with
// one Chrome-trace pid per simulated rank and exchange overlap across
// ranks is visible on a shared timeline (chrome_trace.hpp). Aggregated
// views (metrics.hpp, report.hpp) and the legacy perf::Profiler are
// all consumers of the same snapshots.
//
// Span names must be string literals (or otherwise outlive the
// registry); the recorder stores the pointer, not a copy.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gmg::trace {

/// Coarse event classification, mapped to the Chrome trace "cat"
/// field. kWait marks time blocked on another rank (exchange waits,
/// barriers, reductions) — the per-rank skew signal. kExec marks work
/// scheduled through the exec::Engine task engine (interior compute
/// overlapped with an in-flight exchange); on the timeline these spans
/// run concurrently with the same rank's exchange.finish wait, which
/// is how compute–comm overlap is made visible.
enum class Category : std::uint8_t {
  kCompute,
  kComm,
  kWait,
  kModel,
  kExec,
  kOther
};

const char* category_name(Category c);
Category category_from_name(std::string_view name);

/// Monotonic timestamp in nanoseconds (steady_clock).
std::uint64_t now_ns();

/// Tracing is on by default ("always on"); disable only to measure
/// the instrumentation overhead itself.
bool enabled();
void set_enabled(bool on);

/// Events each per-thread ring buffer holds before it starts dropping.
/// Configurable via GMG_TRACE_RING (events per ring, clamped to
/// [2^10, 2^24]); resolved once, at the first buffer creation.
std::size_t ring_capacity();

/// Thread-local simulated-rank id attached to every event this thread
/// records from now on. comm::World::run sets it on each rank thread;
/// the main thread defaults to rank 0.
void set_rank(int rank);
int current_rank();

/// RAII span guard: opens at construction, records one completed event
/// at destruction (or at an explicit close(), which also returns the
/// elapsed seconds — used by perf::Profiler so its aggregates and the
/// timeline share one measurement).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Category cat = Category::kCompute,
                     int level = -1);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// End the span now and return its duration in seconds; idempotent
  /// (later calls return 0). The event is recorded only if tracing was
  /// enabled at construction, but the measurement is always valid, so
  /// perf::Profiler keeps working with tracing off.
  double close();

  /// Seconds since construction without closing.
  double elapsed() const;

 private:
  const char* name_ = nullptr;
  std::uint64_t t0_ = 0;
  int level_ = -1;
  Category cat_ = Category::kOther;
  bool open_ = false;     // still needs close()
  bool recording_ = false;  // tracing was enabled at construction
};

/// Add to a named monotonic counter (bytes packed, messages sent,
/// flops, allreduce calls, ...). Attributed to the calling thread's
/// current rank.
void counter_add(const char* name, std::uint64_t delta);

// ---------------------------------------------------------------------------
// Snapshots: an owned copy of everything recorded so far, for the
// sinks. Collect after worker threads have joined (World::run joins
// its rank threads, so bench mains can collect at exit).
// ---------------------------------------------------------------------------

struct SpanRecord {
  std::string name;
  Category cat = Category::kOther;
  int rank = 0;
  int tid = 0;      // recorder thread id, unique within a snapshot
  int level = -1;   // multigrid level, -1 when not applicable
  std::uint64_t t0_ns = 0;
  std::uint64_t dur_ns = 0;

  std::uint64_t t1_ns() const { return t0_ns + dur_ns; }
  double seconds() const { return static_cast<double>(dur_ns) * 1e-9; }
};

struct CounterTotal {
  std::string name;
  int rank = 0;
  std::uint64_t value = 0;
};

struct Snapshot {
  /// Sorted by (rank, tid, t0, -dur) so a parent span precedes its
  /// children within a thread.
  std::vector<SpanRecord> spans;
  /// One entry per (name, rank), sorted by (name, rank).
  std::vector<CounterTotal> counters;
  /// Events lost to ring-buffer overflow (0 in every shipped bench).
  std::uint64_t dropped = 0;

  /// Sum of one counter across ranks.
  std::uint64_t counter_total(std::string_view name) const;
  /// Total seconds of all spans with this name (optionally one rank).
  double span_seconds(std::string_view name, int rank = -1) const;
  /// Largest rank id seen in spans/counters, -1 if empty.
  int max_rank() const;
};

/// Harvest every thread's ring buffer into one snapshot, merged with
/// whatever the periodic flusher has accumulated. With `clear`,
/// buffers (and the flush accumulator) are reset and buffers of exited
/// threads are recycled.
Snapshot collect(bool clear = true);

/// Drop everything recorded so far (collect-and-discard).
void clear();

// ---------------------------------------------------------------------------
// Periodic flushing: a long-running process (the solve service) emits
// spans indefinitely, but each ring holds only ring_capacity() events.
// The flusher drains every ring into a process-wide accumulator on an
// interval, so collect() still returns the full history and nothing is
// dropped silently. The accumulator itself is bounded (oldest spans
// give way, counted in Snapshot::dropped): GMG_TRACE_FLUSH_KEEP spans,
// default 2^20.
// ---------------------------------------------------------------------------

/// Start the background flusher (idempotent; restarting with a new
/// interval replaces the old thread). interval_seconds must be > 0.
void start_periodic_flush(double interval_seconds);

/// Start from GMG_TRACE_FLUSH_MS (milliseconds between flushes);
/// returns false (and does nothing) when the variable is unset or
/// invalid.
bool start_periodic_flush_from_env();

/// Join the flusher thread. Accumulated events stay merged into the
/// next collect(). Safe to call when no flusher runs.
void stop_periodic_flush();

/// One synchronous flush: drain all rings into the accumulator (what
/// the background thread does each tick).
void flush_now();

}  // namespace gmg::trace
