#include "trace/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>

#include "common/error.hpp"

namespace gmg::trace {
namespace {

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

const SpanStats* MetricsSummary::find(std::string_view name) const {
  for (const SpanStats& s : spans)
    if (s.name == name) return &s;
  return nullptr;
}

MetricsSummary summarize(const Snapshot& snap) {
  MetricsSummary out;
  out.dropped = snap.dropped;

  std::map<std::string, std::pair<Category, std::vector<double>>> by_name;
  for (const SpanRecord& s : snap.spans) {
    auto& slot = by_name[s.name];
    slot.first = s.cat;
    slot.second.push_back(s.seconds());
  }
  for (auto& [name, slot] : by_name) {
    auto& durs = slot.second;
    std::sort(durs.begin(), durs.end());
    SpanStats st;
    st.name = name;
    st.cat = slot.first;
    st.count = durs.size();
    st.min_s = durs.front();
    st.max_s = durs.back();
    for (double d : durs) st.total_s += d;
    st.p50_s = percentile(durs, 0.50);
    st.p99_s = percentile(durs, 0.99);
    out.spans.push_back(std::move(st));
  }
  std::sort(out.spans.begin(), out.spans.end(),
            [](const SpanStats& a, const SpanStats& b) {
              return a.total_s > b.total_s;
            });

  std::map<std::string, std::uint64_t> counters;
  for (const CounterTotal& c : snap.counters) counters[c.name] += c.value;
  for (const auto& [name, value] : counters)
    out.counters.push_back(CounterTotal{name, /*rank=*/-1, value});
  return out;
}

void write_metrics_json(const MetricsSummary& m, std::ostream& os) {
  os << "{\"droppedEvents\":" << m.dropped << ",\n\"spans\":[";
  for (std::size_t i = 0; i < m.spans.size(); ++i) {
    const SpanStats& s = m.spans[i];
    os << (i ? ",\n " : "\n ") << "{\"name\":";
    write_escaped(os, s.name);
    os << ",\"cat\":\"" << category_name(s.cat) << "\",\"count\":" << s.count
       << ",\"total_s\":" << s.total_s << ",\"min_s\":" << s.min_s
       << ",\"max_s\":" << s.max_s << ",\"p50_s\":" << s.p50_s
       << ",\"p99_s\":" << s.p99_s << "}";
  }
  os << "\n],\n\"counters\":{";
  for (std::size_t i = 0; i < m.counters.size(); ++i) {
    os << (i ? ",\n " : "\n ");
    write_escaped(os, m.counters[i].name);
    os << ":" << m.counters[i].value;
  }
  os << "\n}}\n";
}

void write_metrics_json_file(const MetricsSummary& m,
                             const std::string& path) {
  std::ofstream os(path);
  GMG_REQUIRE(os.good(), "cannot open metrics output file '" + path + "'");
  write_metrics_json(m, os);
}

}  // namespace gmg::trace
