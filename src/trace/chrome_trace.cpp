#include "trace/chrome_trace.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <ostream>
#include <set>
#include <sstream>

#include "common/error.hpp"

namespace gmg::trace {
namespace {

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Microseconds with nanosecond resolution, printed as a fixed-point
/// decimal so the reader reconstructs the exact nanosecond value.
void write_us(std::ostream& os, std::uint64_t ns) {
  os << ns / 1000 << '.';
  const auto frac = ns % 1000;
  os << char('0' + frac / 100) << char('0' + frac / 10 % 10)
     << char('0' + frac % 10);
}

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough for the trace-event schema the
// writer above emits. Recursive descent over an in-memory string.
// ---------------------------------------------------------------------------

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::shared_ptr<JsonArray> arr;
  std::shared_ptr<JsonObject> obj;

  bool is_object() const { return type == Type::kObject; }
  const JsonValue* find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    auto it = obj->find(key);
    return it == obj->end() ? nullptr : &it->second;
  }
  double number_or(double fallback) const {
    return type == Type::kNumber ? num : fallback;
  }
  std::string string_or(const std::string& fallback) const {
    return type == Type::kString ? str : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    GMG_REQUIRE(pos_ == s_.size(), "trace JSON: trailing garbage");
    return v;
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw Error("trace JSON parse error at byte " + std::to_string(pos_) +
                ": " + what);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < s_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.str = parse_string();
        return v;
      }
      case 't':
      case 'f':
        return parse_literal_bool();
      case 'n':
        expect_word("null");
        return JsonValue{};
      default:
        return parse_number();
    }
  }

  void expect_word(std::string_view w) {
    skip_ws();
    GMG_REQUIRE(s_.substr(pos_, w.size()) == w,
                "trace JSON: bad literal");
    pos_ += w.size();
  }

  JsonValue parse_literal_bool() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (peek() == 't') {
      expect_word("true");
      v.b = true;
    } else {
      expect_word("false");
      v.b = false;
    }
    return v;
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected a number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.num = std::stod(std::string(s_.substr(start, pos_ - start)));
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        char e = s_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            GMG_REQUIRE(pos_ + 4 <= s_.size(), "bad \\u escape");
            const unsigned code = static_cast<unsigned>(
                std::stoul(std::string(s_.substr(pos_, 4)), nullptr, 16));
            pos_ += 4;
            // The writer only emits \u for control chars; decode the
            // BMP subset as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    v.arr = std::make_shared<JsonArray>();
    if (consume(']')) return v;
    while (true) {
      v.arr->push_back(parse_value());
      if (consume(']')) break;
      expect(',');
    }
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    v.obj = std::make_shared<JsonObject>();
    if (consume('}')) return v;
    while (true) {
      std::string key = parse_string();
      expect(':');
      (*v.obj)[std::move(key)] = parse_value();
      if (consume('}')) break;
      expect(',');
    }
    return v;
  }
};

std::uint64_t us_to_ns(double us) {
  return us <= 0 ? 0 : static_cast<std::uint64_t>(std::llround(us * 1000.0));
}

}  // namespace

void write_chrome_trace(const Snapshot& snap, std::ostream& os) {
  std::uint64_t origin = std::numeric_limits<std::uint64_t>::max();
  for (const SpanRecord& s : snap.spans) origin = std::min(origin, s.t0_ns);
  if (snap.spans.empty()) origin = 0;

  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":"
     << snap.dropped << "},\n\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    os << "\n";
    first = false;
  };

  // Process/thread naming metadata: one pid per simulated rank.
  std::set<int> ranks;
  std::set<std::pair<int, int>> rank_tids;
  for (const SpanRecord& s : snap.spans) {
    ranks.insert(s.rank);
    rank_tids.insert({s.rank, s.tid});
  }
  for (const CounterTotal& c : snap.counters) ranks.insert(c.rank);
  for (int r : ranks) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << r
       << ",\"name\":\"process_name\",\"args\":{\"name\":\"rank " << r
       << "\"}}";
  }
  for (const auto& [r, tid] : rank_tids) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << r << ",\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"thread " << tid
       << "\"}}";
  }

  std::uint64_t end_ns = 0;
  for (const SpanRecord& s : snap.spans) {
    end_ns = std::max(end_ns, s.t1_ns() - origin);
    sep();
    os << "{\"ph\":\"X\",\"name\":";
    write_escaped(os, s.name);
    os << ",\"cat\":\"" << category_name(s.cat) << "\",\"pid\":" << s.rank
       << ",\"tid\":" << s.tid << ",\"ts\":";
    write_us(os, s.t0_ns - origin);
    os << ",\"dur\":";
    write_us(os, s.dur_ns);
    if (s.level >= 0) os << ",\"args\":{\"level\":" << s.level << "}";
    os << "}";
  }

  // Counter totals as one "C" sample per (name, rank) at the end of
  // the timeline.
  for (const CounterTotal& c : snap.counters) {
    sep();
    os << "{\"ph\":\"C\",\"name\":";
    write_escaped(os, c.name);
    os << ",\"pid\":" << c.rank << ",\"ts\":";
    write_us(os, end_ns);
    os << ",\"args\":{\"value\":" << c.value << "}}";
  }
  os << "\n]}\n";
}

void write_chrome_trace_file(const Snapshot& snap, const std::string& path) {
  std::ofstream os(path);
  GMG_REQUIRE(os.good(), "cannot open trace output file '" + path + "'");
  write_chrome_trace(snap, os);
  GMG_REQUIRE(os.good(), "failed writing trace output file '" + path + "'");
}

Snapshot read_chrome_trace(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();
  const JsonValue doc = JsonParser(text).parse();
  GMG_REQUIRE(doc.is_object(), "trace JSON: top level must be an object");

  Snapshot snap;
  if (const JsonValue* other = doc.find("otherData")) {
    if (const JsonValue* d = other->find("droppedEvents"))
      snap.dropped = static_cast<std::uint64_t>(d->number_or(0));
  }
  const JsonValue* events = doc.find("traceEvents");
  GMG_REQUIRE(events != nullptr &&
                  events->type == JsonValue::Type::kArray,
              "trace JSON: missing traceEvents array");

  for (const JsonValue& ev : *events->arr) {
    if (!ev.is_object()) continue;
    const JsonValue* ph = ev.find("ph");
    const std::string kind = ph ? ph->string_or("") : "";
    if (kind == "X") {
      SpanRecord s;
      if (const JsonValue* v = ev.find("name")) s.name = v->string_or("");
      if (const JsonValue* v = ev.find("cat"))
        s.cat = category_from_name(v->string_or("other"));
      if (const JsonValue* v = ev.find("pid"))
        s.rank = static_cast<int>(v->number_or(0));
      if (const JsonValue* v = ev.find("tid"))
        s.tid = static_cast<int>(v->number_or(0));
      if (const JsonValue* v = ev.find("ts")) s.t0_ns = us_to_ns(v->num);
      if (const JsonValue* v = ev.find("dur")) s.dur_ns = us_to_ns(v->num);
      if (const JsonValue* args = ev.find("args"))
        if (const JsonValue* v = args->find("level"))
          s.level = static_cast<int>(v->number_or(-1));
      snap.spans.push_back(std::move(s));
    } else if (kind == "C") {
      CounterTotal c;
      if (const JsonValue* v = ev.find("name")) c.name = v->string_or("");
      if (const JsonValue* v = ev.find("pid"))
        c.rank = static_cast<int>(v->number_or(0));
      if (const JsonValue* args = ev.find("args"))
        if (const JsonValue* v = args->find("value"))
          c.value = static_cast<std::uint64_t>(v->number_or(0));
      snap.counters.push_back(std::move(c));
    }
    // "M" metadata and unknown phases are ignored.
  }

  std::sort(snap.spans.begin(), snap.spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.rank != b.rank) return a.rank < b.rank;
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
              return a.dur_ns > b.dur_ns;
            });
  return snap;
}

Snapshot read_chrome_trace_file(const std::string& path) {
  std::ifstream is(path);
  GMG_REQUIRE(is.good(), "cannot open trace file '" + path + "'");
  return read_chrome_trace(is);
}

}  // namespace gmg::trace
