#include "trace/report.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/stats.hpp"
#include "trace/metrics.hpp"

namespace gmg::trace {
namespace {

/// Walk one thread's time-sorted spans and distribute child durations
/// to parents (RAII spans nest properly within a thread).
void accumulate_thread(const std::vector<const SpanRecord*>& spans,
                       RankSummary& out) {
  struct Open {
    const SpanRecord* span;
    double child_s = 0;
  };
  std::vector<Open> stack;
  const auto close_until = [&](std::uint64_t t0) {
    while (!stack.empty() && stack.back().span->t1_ns() <= t0) {
      const Open top = stack.back();
      stack.pop_back();
      out.self_s[top.span->name] += top.span->seconds() - top.child_s;
    }
  };
  for (const SpanRecord* s : spans) {
    close_until(s->t0_ns);
    if (stack.empty()) {
      out.busy_s += s->seconds();
    } else {
      stack.back().child_s += s->seconds();
    }
    stack.push_back(Open{s});
  }
  close_until(std::numeric_limits<std::uint64_t>::max());
}

std::string seconds_str(double s) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(6) << s;
  return os.str();
}

}  // namespace

std::vector<RankSummary> per_rank_summary(const Snapshot& snap) {
  std::map<int, RankSummary> by_rank;
  std::map<std::pair<int, int>, std::vector<const SpanRecord*>> by_thread;

  for (const SpanRecord& s : snap.spans) {
    RankSummary& r = by_rank[s.rank];
    r.rank = s.rank;
    if (s.name == "exchange") r.exchange_s += s.seconds();
    if (s.name == "exchange.wait") r.exchange_wait_s += s.seconds();
    by_thread[{s.rank, s.tid}].push_back(&s);
  }

  for (auto& [key, spans] : by_thread) {
    // Snapshot order is already (t0 asc, dur desc) within a thread.
    accumulate_thread(spans, by_rank[key.first]);
  }

  for (auto& [rank, r] : by_rank) {
    std::uint64_t lo = std::numeric_limits<std::uint64_t>::max(), hi = 0;
    for (const SpanRecord& s : snap.spans) {
      if (s.rank != rank) continue;
      lo = std::min(lo, s.t0_ns);
      hi = std::max(hi, s.t1_ns());
    }
    if (hi > lo) r.wall_s = static_cast<double>(hi - lo) * 1e-9;
  }

  std::vector<RankSummary> out;
  out.reserve(by_rank.size());
  for (auto& [rank, r] : by_rank) out.push_back(std::move(r));
  return out;
}

std::string profiler_format(const Snapshot& snap) {
  std::map<std::pair<int, std::string>, RunningStats> stats;
  for (const SpanRecord& s : snap.spans)
    if (s.level >= 0) stats[{s.level, s.name}].add(s.seconds());

  std::ostringstream os;
  for (const auto& [key, st] : stats) {
    os << "level " << key.first << ' ' << key.second << ' ' << st.summary()
       << '\n';
  }
  return os.str();
}

std::string render_report(const Snapshot& snap) {
  std::ostringstream os;
  const std::vector<RankSummary> ranks = per_rank_summary(snap);

  os << "== trace report ==\n";
  os << "spans: " << snap.spans.size() << "  counters: "
     << snap.counters.size() << "  ranks: " << ranks.size()
     << "  dropped events: " << snap.dropped << "\n";

  os << "\n-- per-rank timeline --\n";
  os << "rank      wall[s]      busy[s]  exchange[s]  exchange-wait[s]\n";
  double wait_sum = 0, exch_sum = 0;
  for (const RankSummary& r : ranks) {
    os << std::setw(4) << r.rank << "  " << std::setw(11)
       << seconds_str(r.wall_s) << "  " << std::setw(11)
       << seconds_str(r.busy_s) << "  " << std::setw(11)
       << seconds_str(r.exchange_s) << "  " << std::setw(16)
       << seconds_str(r.exchange_wait_s) << "\n";
    wait_sum += r.exchange_wait_s;
    exch_sum += r.exchange_s;
  }
  os << "exchange-wait sum across ranks: " << seconds_str(wait_sum) << " s\n";
  os << "exchange total across ranks:    " << seconds_str(exch_sum)
     << " s  (compare: Profiler kExchange aggregate)\n";

  os << "\n-- per-rank critical path (top self-time spans) --\n";
  for (const RankSummary& r : ranks) {
    std::vector<std::pair<std::string, double>> items(r.self_s.begin(),
                                                      r.self_s.end());
    std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
    os << "rank " << r.rank << ":";
    const std::size_t n = std::min<std::size_t>(items.size(), 6);
    for (std::size_t i = 0; i < n; ++i) {
      const double pct =
          r.busy_s > 0 ? items[i].second / r.busy_s * 100.0 : 0.0;
      os << (i ? ", " : " ") << items[i].first << ' '
         << seconds_str(items[i].second) << "s (" << std::fixed
         << std::setprecision(1) << pct << "%)";
    }
    os << "\n";
  }

  const MetricsSummary m = summarize(snap);
  os << "\n-- aggregated span metrics --\n";
  os << "name                        count     total[s]       p50[s]       "
        "p99[s]\n";
  for (const SpanStats& s : m.spans) {
    os << std::left << std::setw(26) << s.name << std::right << std::setw(7)
       << s.count << "  " << std::setw(11) << seconds_str(s.total_s) << "  "
       << std::setw(11) << seconds_str(s.p50_s) << "  " << std::setw(11)
       << seconds_str(s.p99_s) << "\n";
  }

  if (!m.counters.empty()) {
    os << "\n-- counters (summed across ranks) --\n";
    for (const CounterTotal& c : m.counters)
      os << std::left << std::setw(26) << c.name << std::right << c.value
         << "\n";
  }

  const std::string prof = profiler_format(snap);
  if (!prof.empty()) {
    os << "\n-- per-(level, phase) profile (artifact format) --\n" << prof;
  }
  return os.str();
}

}  // namespace gmg::trace
