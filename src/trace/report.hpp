// Sink 3: human-readable reports over a trace snapshot — the per-rank
// timeline/critical-path/exchange-wait breakdowns printed by
// tools/trace_report, and the artifact-format per-(level, phase)
// profile that subsumes the legacy perf::Profiler output.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace gmg::trace {

struct RankSummary {
  int rank = 0;
  /// Timeline extent: last span end minus first span start.
  double wall_s = 0;
  /// Sum of top-level (un-nested) span durations — the rank's busy
  /// time; wall - busy is idle/untraced time.
  double busy_s = 0;
  /// Total of the solver's "exchange" phase spans (perf::Profiler
  /// kExchange umbrella; 0 when exchange ran outside the solver).
  double exchange_s = 0;
  /// Total of "exchange.wait" spans — time blocked in wait_all inside
  /// the ghost exchange, the rank-skew signal.
  double exchange_wait_s = 0;
  /// Self time per span name (duration minus traced children),
  /// i.e. the rank's critical-path decomposition.
  std::map<std::string, double> self_s;
};

std::vector<RankSummary> per_rank_summary(const Snapshot& snap);

/// Artifact-format per-(level, phase) lines derived purely from the
/// levelled spans, e.g.
///   level 0 applyOp [0.000112, 0.000119, 0.000140] (σ: 7.1e-06)
/// Stats are over individual span invocations pooled across ranks.
std::string profiler_format(const Snapshot& snap);

/// The full trace_report rendering: per-rank table, critical-path
/// decomposition, aggregated span metrics, counters, and the
/// artifact-format profile.
std::string render_report(const Snapshot& snap);

}  // namespace gmg::trace
