#include "exec/engine.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>

#include "common/error.hpp"
#include "trace/trace.hpp"

namespace gmg::exec {

namespace {
thread_local Engine* tls_engine = nullptr;
}  // namespace

Engine* this_thread_engine() { return tls_engine; }

namespace detail {

/// Shared completion state behind an Event handle. Fires exactly once;
/// engines whose streams are parked on the event register a one-shot
/// callback so a cross-engine (or cross-thread) fire can requeue them.
struct EventState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::vector<std::function<void()>> on_fire;

  bool ready() {
    std::lock_guard<std::mutex> lock(mu);
    return done;
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
  }

  void fire() {
    std::vector<std::function<void()>> callbacks;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (done) return;
      done = true;
      callbacks.swap(on_fire);
      cv.notify_all();
    }
    // Run outside the event lock: callbacks take an engine lock, and
    // workers subscribe while holding that engine lock (engine -> event
    // order). Releasing first keeps the lock graph acyclic.
    for (auto& cb : callbacks) cb();
  }

  /// Register a callback to run at fire time; returns false (without
  /// registering) when the event already fired.
  bool subscribe(std::function<void()> cb) {
    std::lock_guard<std::mutex> lock(mu);
    if (done) return false;
    on_fire.push_back(std::move(cb));
    return true;
  }
};

namespace {

/// One queue entry. Exactly one of {fn, fires, gate} is meaningful:
/// a compute task, a record() marker that fires an event, or a
/// wait_event() marker that stalls the stream until its gate fires.
struct Task {
  const char* name = nullptr;
  std::function<void()> fn;
  std::shared_ptr<EventState> fires;
  std::shared_ptr<EventState> gate;
  int rank = 0;
};

struct StreamState {
  const char* name = nullptr;
  std::deque<Task> queue;
  bool running = false;  // a worker is draining this stream right now
  bool queued = false;   // sitting in the engine ready list
  std::shared_ptr<EventState> parked_on;  // head gate not yet fired
};

}  // namespace

/// One in-flight parallel_for_chunks call. Chunks are claimed by an
/// atomic ticket; the submitting thread and any free workers race for
/// them. The `fn` pointer targets the caller's frame — safe because
/// the caller blocks until done == chunks, and no thread dereferences
/// it without first holding a valid (< chunks) ticket.
struct ParallelJob {
  const char* name = nullptr;
  std::int64_t n = 0;
  int chunks = 0;
  int rank = 0;
  const std::function<void(int, std::int64_t, std::int64_t)>* fn = nullptr;
  std::atomic<int> next{0};
  std::atomic<int> done{0};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  // first exception wins; guarded by mu
};

struct EngineState {
  std::mutex mu;
  std::condition_variable work_cv;  // workers: ready stream, job or stop
  std::condition_variable sync_cv;  // sync() callers: stream drained
  std::vector<std::unique_ptr<StreamState>> streams;
  std::deque<int> ready;
  std::deque<std::shared_ptr<ParallelJob>> jobs;
  bool stop = false;
  std::uint64_t tasks_run = 0;

  /// Requires `mu` held. A stream is schedulable when it has work and
  /// is neither queued, being drained, nor parked on a gate.
  void make_ready(int sid) {
    StreamState& s = *streams[static_cast<std::size_t>(sid)];
    if (s.queue.empty() || s.queued || s.running || s.parked_on) return;
    s.queued = true;
    ready.push_back(sid);
    work_cv.notify_one();
  }

  bool drained(const StreamState& s) const {
    return s.queue.empty() && !s.running;
  }
};

namespace {

/// Fire-time callback for a parked stream: pop the gate marker and
/// requeue the stream. The weak_ptr guards the (pathological) case of
/// an event outliving its waiter's engine.
void unpark_stream(const std::weak_ptr<EngineState>& weak, int sid,
                   const std::shared_ptr<EventState>& gate) {
  std::shared_ptr<EngineState> st = weak.lock();
  if (!st) return;
  std::lock_guard<std::mutex> lock(st->mu);
  StreamState& s = *st->streams[static_cast<std::size_t>(sid)];
  if (s.parked_on != gate) return;  // stale callback
  s.parked_on.reset();
  GMG_ASSERT(!s.queue.empty() && s.queue.front().gate == gate);
  s.queue.pop_front();
  st->make_ready(sid);
  st->sync_cv.notify_all();
}

/// Claim and execute chunks of `job` until its ticket runs out. Runs
/// with no engine lock held; the per-chunk work happens entirely on
/// this thread. The final done-increment is the completion signal the
/// submitting thread waits on.
void run_job_chunks(ParallelJob& job) {
  for (;;) {
    const int c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.chunks) return;
    try {
      (*job.fn)(c, Engine::chunk_bound(job.n, job.chunks, c),
                Engine::chunk_bound(job.n, job.chunks, c + 1));
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.mu);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.chunks) {
      std::lock_guard<std::mutex> lock(job.mu);
      job.cv.notify_all();
    }
  }
}

void run_task(const Task& task) {
  // Attribute the span to the *submitting* thread's simulated rank, so
  // overlapped compute lands on that rank's timeline row next to its
  // exchange wait.
  trace::set_rank(task.rank);
  trace::TraceSpan span(task.name ? task.name : "exec.task",
                        trace::Category::kExec);
  task.fn();
}

void worker_loop(const std::shared_ptr<EngineState>& st) {
  std::unique_lock<std::mutex> lock(st->mu);
  for (;;) {
    st->work_cv.wait(lock, [&] {
      return st->stop || !st->ready.empty() || !st->jobs.empty();
    });
    if (st->ready.empty() && st->jobs.empty()) return;  // stop && no work
    // parallel_for jobs first: their submitter is blocked on them.
    if (!st->jobs.empty()) {
      std::shared_ptr<ParallelJob> job = st->jobs.front();
      if (job->next.load(std::memory_order_relaxed) >= job->chunks) {
        st->jobs.pop_front();  // exhausted; retire and look again
        continue;
      }
      lock.unlock();
      {
        trace::set_rank(job->rank);
        trace::TraceSpan span(job->name ? job->name : "exec.parallel_for",
                              trace::Category::kExec);
        run_job_chunks(*job);
      }
      lock.lock();
      continue;
    }
    const int sid = st->ready.front();
    st->ready.pop_front();
    StreamState& s = *st->streams[static_cast<std::size_t>(sid)];
    s.queued = false;
    s.running = true;

    // Drain consecutive head tasks until the queue empties or the
    // stream parks on an unfired gate.
    while (!s.queue.empty()) {
      if (s.queue.front().gate) {
        std::shared_ptr<EventState> gate = s.queue.front().gate;
        s.running = false;
        s.parked_on = gate;
        std::weak_ptr<EngineState> weak = st;
        const bool parked = gate->subscribe(
            [weak, sid, gate] { unpark_stream(weak, sid, gate); });
        if (parked) break;  // unpark_stream resumes the stream later
        s.parked_on.reset();
        s.running = true;
        s.queue.pop_front();
        continue;
      }
      if (s.queue.front().fires) {
        std::shared_ptr<EventState> ev = std::move(s.queue.front().fires);
        s.queue.pop_front();
        lock.unlock();  // fire() runs subscriber callbacks -> engine mu
        ev->fire();
        lock.lock();
        continue;
      }
      Task task = std::move(s.queue.front());
      s.queue.pop_front();
      lock.unlock();
      run_task(task);
      lock.lock();
      ++st->tasks_run;
    }
    if (s.running) s.running = false;
    st->sync_cv.notify_all();
  }
}

}  // namespace
}  // namespace detail

bool Event::ready() const { return !state_ || state_->ready(); }

void Event::wait() const {
  if (state_) state_->wait();
}

Event::Event(std::shared_ptr<detail::EventState> s) : state_(std::move(s)) {}

Engine::Engine(int workers) {
  GMG_REQUIRE(workers >= 1, "exec::Engine needs at least one worker");
  state_ = std::make_shared<detail::EngineState>();
  // A lone worker on a single-CPU host cannot add parallelism to a
  // blocking parallel_for — the submitter would only trade chunks back
  // and forth with it through the scheduler. Run those chunk plans
  // inline instead (identical results: boundaries don't change).
  solo_ = workers == 1 && std::thread::hardware_concurrency() <= 1;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, st = state_] {
      tls_engine = this;
      detail::worker_loop(st);
    });
  }
}

Engine::~Engine() {
  sync();
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->stop = true;
  }
  state_->work_cv.notify_all();
  for (auto& w : workers_) w.join();
}

Stream Engine::create_stream(const char* name) {
  std::lock_guard<std::mutex> lock(state_->mu);
  auto s = std::make_unique<detail::StreamState>();
  s->name = name;
  state_->streams.push_back(std::move(s));
  return Stream(static_cast<int>(state_->streams.size()) - 1);
}

void Engine::submit(Stream s, const char* name, std::function<void()> fn) {
  GMG_REQUIRE(s.valid(), "submit to an invalid stream");
  std::lock_guard<std::mutex> lock(state_->mu);
  GMG_REQUIRE(static_cast<std::size_t>(s.id_) < state_->streams.size(),
              "stream belongs to another engine");
  detail::StreamState& ss = *state_->streams[static_cast<std::size_t>(s.id_)];
  detail::Task task;
  task.name = name;
  task.fn = std::move(fn);
  task.rank = trace::current_rank();
  ss.queue.push_back(std::move(task));
  state_->make_ready(s.id_);
}

Event Engine::record(Stream s) {
  GMG_REQUIRE(s.valid(), "record on an invalid stream");
  std::lock_guard<std::mutex> lock(state_->mu);
  GMG_REQUIRE(static_cast<std::size_t>(s.id_) < state_->streams.size(),
              "stream belongs to another engine");
  detail::StreamState& ss = *state_->streams[static_cast<std::size_t>(s.id_)];
  auto state = std::make_shared<detail::EventState>();
  if (state_->drained(ss)) {
    state->done = true;  // nothing pending: trivially ready
    return Event(std::move(state));
  }
  detail::Task marker;
  marker.fires = state;
  ss.queue.push_back(std::move(marker));
  state_->make_ready(s.id_);
  return Event(std::move(state));
}

void Engine::wait_event(Stream s, Event e) {
  GMG_REQUIRE(s.valid(), "wait_event on an invalid stream");
  if (!e.state_) return;  // default event: trivially ready
  std::lock_guard<std::mutex> lock(state_->mu);
  GMG_REQUIRE(static_cast<std::size_t>(s.id_) < state_->streams.size(),
              "stream belongs to another engine");
  detail::StreamState& ss = *state_->streams[static_cast<std::size_t>(s.id_)];
  detail::Task marker;
  marker.gate = std::move(e.state_);
  ss.queue.push_back(std::move(marker));
  state_->make_ready(s.id_);
}

void Engine::sync(Stream s) {
  GMG_REQUIRE(s.valid(), "sync on an invalid stream");
  trace::TraceSpan span("exec.sync", trace::Category::kWait);
  std::unique_lock<std::mutex> lock(state_->mu);
  GMG_REQUIRE(static_cast<std::size_t>(s.id_) < state_->streams.size(),
              "stream belongs to another engine");
  detail::StreamState& ss = *state_->streams[static_cast<std::size_t>(s.id_)];
  state_->sync_cv.wait(lock, [&] { return state_->drained(ss); });
}

void Engine::sync() {
  trace::TraceSpan span("exec.sync_all", trace::Category::kWait);
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->sync_cv.wait(lock, [&] {
    for (const auto& s : state_->streams)
      if (!state_->drained(*s)) return false;
    return true;
  });
}

int Engine::plan_chunks(std::int64_t n, std::int64_t grain) {
  if (n <= 0) return 0;
  const std::int64_t g = std::max<std::int64_t>(1, grain);
  return static_cast<int>(
      std::clamp<std::int64_t>(n / g, 1, kMaxChunks));
}

std::int64_t Engine::chunk_bound(std::int64_t n, int chunks, int c) {
  return n * c / chunks;
}

void Engine::parallel_for_chunks(
    const char* name, std::int64_t n, std::int64_t grain,
    const std::function<void(int, std::int64_t, std::int64_t)>& fn) {
  if (n <= 0) return;
  const int chunks = plan_chunks(n, grain);
  if (chunks == 1 || solo_) {
    for (int c = 0; c < chunks; ++c) {
      fn(c, chunk_bound(n, chunks, c), chunk_bound(n, chunks, c + 1));
    }
    return;
  }
  auto job = std::make_shared<detail::ParallelJob>();
  job->name = name;
  job->n = n;
  job->chunks = chunks;
  job->rank = trace::current_rank();
  job->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->jobs.push_back(job);
  }
  state_->work_cv.notify_all();
  detail::run_job_chunks(*job);  // the submitter always participates
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->cv.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == job->chunks;
    });
  }
  {
    // Retire the job if no worker got around to popping it.
    std::lock_guard<std::mutex> lock(state_->mu);
    auto& jobs = state_->jobs;
    jobs.erase(std::remove(jobs.begin(), jobs.end(), job), jobs.end());
  }
  if (job->error) std::rethrow_exception(job->error);
}

int Engine::workers() const { return static_cast<int>(workers_.size()); }

std::uint64_t Engine::tasks_run() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->tasks_run;
}

}  // namespace gmg::exec
