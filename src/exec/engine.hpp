// exec: a small stream/event-style asynchronous task engine — the
// host-side analogue of the CUDA/HIP stream model the paper's GPU
// mapping uses to hide halo-exchange latency behind stencil work.
//
// The engine owns a pool of worker threads draining a ready queue of
// *streams*. Work submitted to one stream executes in submission order
// (an ordered queue, like a CUDA stream); distinct streams may run
// concurrently on different workers. *Events* mark points in a
// stream's history: record() completes once all previously submitted
// work on that stream has run, wait_event() stalls a stream until an
// event (typically recorded on another stream) fires — the
// cudaStreamWaitEvent cross-stream dependency.
//
// This layers on the thread-backed simmpi runtime: rank threads submit
// interior compute to their engine, then block in the split-phase
// exchange finish() while the worker executes — the compute–comm
// overlap every scaling PR schedules through (DESIGN.md §10). Tasks
// are traced under Category::kExec with the submitting rank's id, so
// Chrome timelines show the overlapped compute span running
// concurrently with the same rank's exchange wait.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace gmg::exec {

class Engine;
namespace detail {
struct EventState;
struct EngineState;
}  // namespace detail

/// Completion marker for a point in a stream's history. Default-
/// constructed events are trivially ready. Copyable handles share one
/// underlying state; an Event outlives the Engine that recorded it.
class Event {
 public:
  Event() = default;

  /// True once every task submitted before the matching record() has
  /// finished (always true for a default-constructed event).
  bool ready() const;

  /// Block the calling thread until ready.
  void wait() const;

 private:
  friend class Engine;
  explicit Event(std::shared_ptr<detail::EventState> s);
  std::shared_ptr<detail::EventState> state_;
};

/// Handle to one ordered work queue of an Engine.
class Stream {
 public:
  Stream() = default;
  bool valid() const { return id_ >= 0; }

 private:
  friend class Engine;
  explicit Stream(int id) : id_(id) {}
  int id_ = -1;
};

class Engine {
 public:
  /// Spawn `workers` worker threads (>= 1). One worker still overlaps
  /// with the submitting thread — the common solver configuration.
  explicit Engine(int workers = 1);

  /// Drains every stream, then joins the workers.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Create a new stream. `name` must outlive the engine (pass a
  /// string literal); it labels the stream's sync points in traces.
  Stream create_stream(const char* name);

  /// Enqueue `fn` on `s` after everything already submitted to `s`.
  /// `name` must outlive the engine (string literal); the task runs
  /// under a trace span of that name, Category::kExec, attributed to
  /// the submitting thread's simulated rank.
  void submit(Stream s, const char* name, std::function<void()> fn);

  /// An event that fires once all work submitted to `s` so far has
  /// completed.
  Event record(Stream s);

  /// Stall `s`: tasks submitted to `s` after this call run only once
  /// `e` has fired. Events from another engine (or already-ready ones)
  /// are honored too.
  void wait_event(Stream s, Event e);

  /// Block until all work submitted to `s` so far has completed.
  void sync(Stream s);

  /// Block until every stream is drained.
  void sync();

  int workers() const;

  /// Total tasks executed (record/wait markers excluded).
  std::uint64_t tasks_run() const;

  /// Hard upper bound on chunks per parallel_for_chunks call. A fixed
  /// constant on purpose: chunk boundaries must never depend on the
  /// worker count, or chunked reductions stop being reproducible.
  static constexpr int kMaxChunks = 64;

  /// Number of chunks a range of `n` items splits into when each chunk
  /// should hold at least `grain` items: clamp(n/grain, 1, kMaxChunks).
  /// Pure function of (n, grain) — see kMaxChunks.
  static int plan_chunks(std::int64_t n, std::int64_t grain);

  /// Start index of chunk `c` of `chunks` over [0, n): n*c/chunks.
  /// chunk_bound(n, chunks, chunks) == n, so chunk c spans
  /// [chunk_bound(c), chunk_bound(c+1)).
  static std::int64_t chunk_bound(std::int64_t n, int chunks, int c);

  /// Data-parallel loop over [0, n): runs `fn(chunk, begin, end)` once
  /// per chunk of the (n, grain) chunk plan. The calling thread always
  /// participates (claiming chunks alongside the workers), so the call
  /// cannot deadlock even when submitted from inside a stream task —
  /// nested use shares this engine's pool. Blocking: returns once every
  /// chunk has run. Chunks may execute in any order on any thread;
  /// chunk *boundaries* are worker-count independent. If any chunk
  /// throws, the first exception is rethrown here after all claimed
  /// chunks finish. Single-chunk plans run inline with no pool traffic.
  void parallel_for_chunks(
      const char* name, std::int64_t n, std::int64_t grain,
      const std::function<void(int, std::int64_t, std::int64_t)>& fn);

 private:
  std::shared_ptr<detail::EngineState> state_;
  std::vector<std::thread> workers_;
  bool solo_ = false;  // 1 worker on a 1-CPU host: run chunks inline
};

/// The engine whose pool the current thread belongs to, or nullptr off
/// the pool. Lets nested parallel_for calls from a stream task target
/// the owning engine instead of the process default.
Engine* this_thread_engine();

}  // namespace gmg::exec
