// The process-wide parallel kernel runtime: every brick/array hot-path
// kernel funnels its loop through the free functions here instead of
// spawning an OpenMP team per invocation.
//
// Two execution modes share one deterministic chunk plan
// (Engine::plan_chunks — boundaries depend only on the trip count and
// grain, never on thread counts):
//
//   kEnginePool  (default) a persistent exec::Engine worker pool. The
//                calling thread participates, nested calls from stream
//                tasks reuse the owning engine's pool, and no threads
//                are created or joined per kernel — the fork/join cost
//                the paper's GPU runs never pay.
//   kOpenMP      the legacy fork/join path (one `omp parallel for`
//                over the same chunks). Kept as the reference for the
//                bitwise runtime-equivalence tests and the
//                micro_runtime bench; select with GMG_EXEC_RUNTIME=omp.
//
// Reductions combine per-chunk partials through a fixed binary tree in
// chunk order, so sums and maxima are bitwise reproducible at any
// worker count and across both modes (DESIGN.md §11).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>

#include "exec/engine.hpp"

namespace gmg::exec {

/// How the parallel_for/parallel_reduce free functions execute.
enum class KernelRuntime {
  kEnginePool,  // persistent worker pool (exec::Engine::parallel_for_chunks)
  kOpenMP,      // legacy per-call fork/join over the same chunk plan
};

/// The shared engine kernels run on, built lazily from GMG_EXEC_WORKERS
/// (default: max(1, hardware_concurrency - 1)).
Engine& default_engine();

/// Monotonic id of the current default engine; bumps whenever
/// configure_default_engine rebuilds it. Holders of Streams created on
/// the default engine must re-create them when this changes.
std::uint64_t default_engine_generation();

/// Rebuild the default engine with `workers` threads (test/bench hook).
/// Callers must ensure no kernel is in flight on the old engine.
void configure_default_engine(int workers);

/// Worker count GMG_EXEC_WORKERS/hardware resolve to (what a fresh
/// default engine would get).
int resolved_default_workers();

/// Current mode: GMG_EXEC_RUNTIME=omp selects kOpenMP, anything else
/// (or unset) the engine pool. Overridable at runtime for tests.
KernelRuntime kernel_runtime();
void set_kernel_runtime(KernelRuntime mode);

/// Grain for flat per-element loops (norms, axpy, zero-fill): at least
/// this many elements per chunk.
inline constexpr std::int64_t kElementGrain = std::int64_t{1} << 15;

/// Grain for per-brick loops: enough bricks per chunk to cover
/// kElementGrain elements.
constexpr std::int64_t brick_grain(std::int64_t brick_volume) {
  return std::max<std::int64_t>(1, kElementGrain / brick_volume);
}

namespace detail {

/// The engine a kernel on this thread should use: the owning engine
/// when already on a pool (nested parallel_for inside a stream task),
/// else the process default.
inline Engine& runtime_engine() {
  Engine* own = this_thread_engine();
  return own ? *own : default_engine();
}

/// The kOpenMP mode body: one fork/join team over the chunk ids
/// (serial when built without OpenMP, e.g. under TSan).
void run_chunks_openmp(
    int chunks, std::int64_t n,
    const std::function<void(int, std::int64_t, std::int64_t)>& fn);

/// Fold `parts[0, m)` pairwise: parts[i] absorbs parts[i + stride] for
/// stride = 1, 2, 4, ... — a fixed-shape binary tree over chunk ids,
/// independent of which threads produced the partials.
template <typename T, typename Combine>
T combine_chunk_tree(T* parts, int m, Combine&& combine) {
  for (int stride = 1; stride < m; stride *= 2) {
    for (int i = 0; i + stride < m; i += 2 * stride) {
      parts[i] = combine(parts[i], parts[i + stride]);
    }
  }
  return parts[0];
}

}  // namespace detail

/// Run `fn(begin, end)` over a deterministic chunking of [0, n) on the
/// kernel runtime. Blocking; rethrows the first chunk exception.
template <typename Fn>
void parallel_for(const char* name, std::int64_t n, std::int64_t grain,
                  Fn&& fn) {
  if (n <= 0) return;
  const auto body = [&fn](int, std::int64_t b, std::int64_t e) { fn(b, e); };
  if (kernel_runtime() == KernelRuntime::kOpenMP) {
    detail::run_chunks_openmp(Engine::plan_chunks(n, grain), n, body);
  } else {
    detail::runtime_engine().parallel_for_chunks(name, n, grain, body);
  }
}

/// Sum of per-chunk partials `fn(begin, end) -> T` over [0, n),
/// combined in the fixed tree order — bitwise reproducible for any
/// worker count (the chunk plan depends only on n and grain).
template <typename T, typename Fn>
T parallel_reduce_sum(const char* name, std::int64_t n, std::int64_t grain,
                      Fn&& fn) {
  if (n <= 0) return T{};
  const int chunks = Engine::plan_chunks(n, grain);
  if (chunks == 1) return fn(std::int64_t{0}, n);
  T parts[Engine::kMaxChunks] = {};
  const auto body = [&fn, &parts](int c, std::int64_t b, std::int64_t e) {
    parts[c] = fn(b, e);
  };
  if (kernel_runtime() == KernelRuntime::kOpenMP) {
    detail::run_chunks_openmp(chunks, n, body);
  } else {
    detail::runtime_engine().parallel_for_chunks(name, n, grain, body);
  }
  return detail::combine_chunk_tree(parts, chunks,
                                    [](T a, T b) { return a + b; });
}

/// Max of per-chunk partials `fn(begin, end) -> T`; T{} for n == 0.
template <typename T, typename Fn>
T parallel_reduce_max(const char* name, std::int64_t n, std::int64_t grain,
                      Fn&& fn) {
  if (n <= 0) return T{};
  const int chunks = Engine::plan_chunks(n, grain);
  if (chunks == 1) return fn(std::int64_t{0}, n);
  T parts[Engine::kMaxChunks] = {};
  const auto body = [&fn, &parts](int c, std::int64_t b, std::int64_t e) {
    parts[c] = fn(b, e);
  };
  if (kernel_runtime() == KernelRuntime::kOpenMP) {
    detail::run_chunks_openmp(chunks, n, body);
  } else {
    detail::runtime_engine().parallel_for_chunks(name, n, grain, body);
  }
  return detail::combine_chunk_tree(
      parts, chunks, [](T a, T b) { return std::max(a, b); });
}

}  // namespace gmg::exec
