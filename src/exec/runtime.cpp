#include "exec/runtime.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>

namespace gmg::exec {

namespace {

std::mutex g_engine_mu;
std::unique_ptr<Engine> g_engine;               // guarded by g_engine_mu
std::atomic<Engine*> g_engine_ptr{nullptr};     // fast path
std::atomic<std::uint64_t> g_engine_gen{0};

std::atomic<int> g_runtime_mode{-1};  // -1: unresolved, else KernelRuntime

int env_workers() {
  if (const char* s = std::getenv("GMG_EXEC_WORKERS")) {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end != s && v >= 1 && v <= 1024) return static_cast<int>(v);
  }
  return 0;
}

KernelRuntime env_runtime() {
  if (const char* s = std::getenv("GMG_EXEC_RUNTIME")) {
    if (std::string(s) == "omp") return KernelRuntime::kOpenMP;
  }
  return KernelRuntime::kEnginePool;
}

}  // namespace

int resolved_default_workers() {
  if (const int w = env_workers()) return w;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 1 ? static_cast<int>(hc - 1) : 1;
}

Engine& default_engine() {
  if (Engine* e = g_engine_ptr.load(std::memory_order_acquire)) return *e;
  std::lock_guard<std::mutex> lock(g_engine_mu);
  if (!g_engine) {
    g_engine = std::make_unique<Engine>(resolved_default_workers());
    g_engine_gen.fetch_add(1, std::memory_order_relaxed);
    g_engine_ptr.store(g_engine.get(), std::memory_order_release);
  }
  return *g_engine;
}

std::uint64_t default_engine_generation() {
  return g_engine_gen.load(std::memory_order_acquire);
}

void configure_default_engine(int workers) {
  std::lock_guard<std::mutex> lock(g_engine_mu);
  g_engine_ptr.store(nullptr, std::memory_order_release);
  g_engine.reset();  // joins the old pool before the new one spawns
  g_engine = std::make_unique<Engine>(workers < 1 ? 1 : workers);
  g_engine_gen.fetch_add(1, std::memory_order_relaxed);
  g_engine_ptr.store(g_engine.get(), std::memory_order_release);
}

KernelRuntime kernel_runtime() {
  int mode = g_runtime_mode.load(std::memory_order_relaxed);
  if (mode < 0) {
    mode = static_cast<int>(env_runtime());
    g_runtime_mode.store(mode, std::memory_order_relaxed);
  }
  return static_cast<KernelRuntime>(mode);
}

void set_kernel_runtime(KernelRuntime mode) {
  g_runtime_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

namespace detail {

// The only `omp parallel for` left in the codebase: the legacy
// fork/join reference mode. Same chunk plan as the engine path, so the
// two modes produce bitwise-identical results.
void run_chunks_openmp(
    int chunks, std::int64_t n,
    const std::function<void(int, std::int64_t, std::int64_t)>& fn) {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int c = 0; c < chunks; ++c) {
    fn(c, Engine::chunk_bound(n, chunks, c), Engine::chunk_bound(n, chunks, c + 1));
  }
}

}  // namespace detail

}  // namespace gmg::exec
