// Wall-clock timing utilities used by the profiler and benches.
#pragma once

#include <chrono>

namespace gmg {

/// Monotonic wall-clock time in seconds.
inline double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Simple stopwatch. `elapsed()` may be called repeatedly; `restart()`
/// resets the origin.
class Timer {
 public:
  Timer() : start_(now_seconds()) {}
  void restart() { start_ = now_seconds(); }
  double elapsed() const { return now_seconds() - start_; }

 private:
  double start_;
};

}  // namespace gmg
