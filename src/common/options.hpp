// Command-line options in the paper-artifact style:
//   <exe> -s 512,512,512 -I 10 -l 6 -n 20
// where -s is the subdomain size, -I timing iterations, -l V-cycle
// levels, -n max solver iterations. Generic enough for all examples
// and benches in this repo.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace gmg {

/// Minimal flag parser: "-x value" or "--name value" or "--name=value"
/// plus boolean switches ("--flag"). Unknown flags are an error so that
/// typos do not silently fall back to defaults.
class Options {
 public:
  Options() = default;

  /// Declare flags before parsing. `key` without dashes, e.g. "s".
  void add_flag(const std::string& key, const std::string& help,
                const std::string& default_value = "");
  void add_switch(const std::string& key, const std::string& help);

  void parse(int argc, const char* const argv[]);

  bool has(const std::string& key) const;
  std::string get(const std::string& key) const;
  long get_int(const std::string& key) const;
  double get_double(const std::string& key) const;
  bool get_bool(const std::string& key) const;

  /// Parse "nx,ny,nz" (or a single "n" meaning a cube) into a Vec3.
  Vec3 get_vec3(const std::string& key) const;

  std::string help(const std::string& program) const;

 private:
  struct Spec {
    std::string help;
    std::string value;
    bool is_switch = false;
    bool seen = false;
  };
  std::map<std::string, Spec> specs_;
};

}  // namespace gmg
