// Error handling: precondition checks that throw with location info.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gmg {

/// Exception type for all library-level contract violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": requirement failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace gmg

/// Check a precondition; throws gmg::Error on failure. Always enabled —
/// these guard API misuse, not hot inner loops.
#define GMG_REQUIRE(cond, msg)                                       \
  do {                                                               \
    if (!(cond))                                                     \
      ::gmg::detail::throw_error(#cond, __FILE__, __LINE__, (msg));  \
  } while (0)

/// Debug-only assertion for hot paths; compiled out in release builds.
#ifndef NDEBUG
#define GMG_ASSERT(cond) GMG_REQUIRE(cond, "debug assertion")
#else
#define GMG_ASSERT(cond) ((void)0)
#endif
