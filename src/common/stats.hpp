// Streaming statistics: the artifact output format reports
// [min, avg, max] (σ) per operation across ranks/invocations.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <string>

namespace gmg {

/// Welford-style running statistics over a stream of samples.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    sum_ += x;
  }

  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double na = static_cast<double>(n_), nb = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    const double total = na + nb;
    m2_ += o.m2_ + delta * delta * na * nb / total;
    mean_ = (na * mean_ + nb * o.mean_) / total;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
    n_ += o.n_;
  }

  std::size_t count() const { return n_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double mean() const { return mean_; }
  double sum() const { return sum_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Artifact-style rendering: "[min, avg, max] (σ: s)".
  std::string summary() const;

 private:
  std::size_t n_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace gmg
