// Cache-line/vector-aligned storage for field data.
//
// Brick storage must be aligned so that a brick's innermost rows map to
// whole SIMD vectors and whole cache lines — the property fine-grain
// data blocking exploits (paper §III).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

#include "common/error.hpp"

namespace gmg {

/// Alignment for all field allocations: 64 B covers x86 cache lines and
/// AVX-512 vectors, and matches GPU memory-transaction granularity.
inline constexpr std::size_t kFieldAlignment = 64;

/// std::allocator-compatible aligned allocator.
template <typename T, std::size_t Align = kFieldAlignment>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = std::aligned_alloc(Align, round_up(n * sizeof(T)));
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Align>&) const {
    return true;
  }

  static constexpr std::size_t round_up(std::size_t bytes) {
    return (bytes + Align - 1) / Align * Align;
  }
};

/// Owning aligned buffer of trivially-destructible elements, not
/// zero-initialized unless asked. Cheaper and more explicit than
/// std::vector for large field data (no value-init write pass).
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t n, bool zero = true) { reset(n, zero); }

  AlignedBuffer(AlignedBuffer&& o) noexcept
      : data_(std::move(o.data_)), size_(o.size_) {
    o.size_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& o) noexcept {
    data_ = std::move(o.data_);
    size_ = o.size_;
    o.size_ = 0;
    return *this;
  }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  void reset(std::size_t n, bool zero = true) {
    AlignedAllocator<T> alloc;
    data_.reset(n > 0 ? alloc.allocate(n) : nullptr);
    size_ = n;
    if (zero && n > 0) std::fill_n(data_.get(), n, T{});
  }

  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

 private:
  struct FreeDeleter {
    void operator()(T* p) const noexcept { std::free(p); }
  };
  std::unique_ptr<T[], FreeDeleter> data_;
  std::size_t size_ = 0;
};

}  // namespace gmg
