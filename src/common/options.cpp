#include "common/options.hpp"

#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace gmg {

void Options::add_flag(const std::string& key, const std::string& help,
                       const std::string& default_value) {
  specs_[key] = Spec{help, default_value, /*is_switch=*/false, false};
}

void Options::add_switch(const std::string& key, const std::string& help) {
  specs_[key] = Spec{help, "0", /*is_switch=*/true, false};
}

void Options::parse(int argc, const char* const argv[]) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    GMG_REQUIRE(arg.size() >= 2 && arg[0] == '-',
                "expected flag, got '" + arg + "'");
    std::string key = arg.substr(arg[1] == '-' ? 2 : 1);
    std::string inline_value;
    bool has_inline = false;
    if (auto eq = key.find('='); eq != std::string::npos) {
      inline_value = key.substr(eq + 1);
      key = key.substr(0, eq);
      has_inline = true;
    }
    auto it = specs_.find(key);
    GMG_REQUIRE(it != specs_.end(), "unknown flag '" + arg + "'");
    Spec& spec = it->second;
    spec.seen = true;
    if (spec.is_switch) {
      spec.value = has_inline ? inline_value : "1";
    } else if (has_inline) {
      spec.value = inline_value;
    } else {
      GMG_REQUIRE(i + 1 < argc, "flag '" + arg + "' expects a value");
      spec.value = argv[++i];
    }
  }
}

bool Options::has(const std::string& key) const {
  auto it = specs_.find(key);
  return it != specs_.end() && it->second.seen;
}

std::string Options::get(const std::string& key) const {
  auto it = specs_.find(key);
  GMG_REQUIRE(it != specs_.end(), "flag '" + key + "' was never declared");
  return it->second.value;
}

long Options::get_int(const std::string& key) const {
  const std::string v = get(key);
  char* end = nullptr;
  long r = std::strtol(v.c_str(), &end, 10);
  GMG_REQUIRE(end && *end == '\0' && !v.empty(),
              "flag '" + key + "': '" + v + "' is not an integer");
  return r;
}

double Options::get_double(const std::string& key) const {
  const std::string v = get(key);
  char* end = nullptr;
  double r = std::strtod(v.c_str(), &end);
  GMG_REQUIRE(end && *end == '\0' && !v.empty(),
              "flag '" + key + "': '" + v + "' is not a number");
  return r;
}

bool Options::get_bool(const std::string& key) const {
  const std::string v = get(key);
  return v == "1" || v == "true" || v == "on" || v == "yes";
}

Vec3 Options::get_vec3(const std::string& key) const {
  const std::string v = get(key);
  std::istringstream is(v);
  Vec3 out;
  char comma = 0;
  is >> out.x;
  GMG_REQUIRE(!is.fail(), "flag '" + key + "': bad extent '" + v + "'");
  if (is >> comma) {
    GMG_REQUIRE(comma == ',', "flag '" + key + "': expected commas in '" + v + "'");
    is >> out.y >> comma >> out.z;
    GMG_REQUIRE(!is.fail() && comma == ',',
                "flag '" + key + "': bad extent '" + v + "'");
  } else {
    out.y = out.z = out.x;  // a single value means a cube
  }
  return out;
}

std::string Options::help(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [key, spec] : specs_) {
    os << "  -" << key;
    if (!spec.is_switch) os << " <value>";
    os << "  " << spec.help;
    if (!spec.is_switch && !spec.value.empty())
      os << " (default: " << spec.value << ")";
    os << '\n';
  }
  return os.str();
}

}  // namespace gmg
