#include "common/table.hpp"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "common/error.hpp"

namespace gmg {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  GMG_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& text) {
  GMG_REQUIRE(!rows_.empty(), "call row() before cell()");
  GMG_REQUIRE(rows_.back().size() < headers_.size(),
              "row has more cells than headers");
  rows_.back().push_back(text);
  return *this;
}

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(long value) { return cell(std::to_string(value)); }

Table& Table::cell_percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return cell(os.str());
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string();
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(widths[c])) << text;
    }
    os << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|" : "-|") << std::string(widths[c] + 2, '-');
  }
  os << "-|\n";
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

void Table::print() const { std::cout << str() << std::flush; }

std::string Table::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << (c ? "," : "") << cells[c];
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream f(path);
  GMG_REQUIRE(f.good(), "cannot open '" + path + "' for writing");
  f << csv();
}

}  // namespace gmg
