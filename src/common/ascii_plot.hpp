// Terminal plotting for the bench harnesses: the paper's figures are
// log-log curves (GStencil/s vs size, GB/s vs message volume,
// efficiency vs nodes); rendering them directly in the bench output
// makes the reproduced *shapes* visible without leaving the terminal.
// CSV sidecars remain the machine-readable record.
#pragma once

#include <string>
#include <vector>

namespace gmg {

class AsciiPlot {
 public:
  struct Options {
    int width = 64;    // plot area columns
    int height = 16;   // plot area rows
    bool log_x = false;
    bool log_y = false;
    std::string x_label;
    std::string y_label;
  };

  explicit AsciiPlot(Options options);

  /// Add one named series; each series gets its own glyph (a, b, c...).
  void add_series(const std::string& name,
                  std::vector<std::pair<double, double>> points);

  std::string render() const;
  void print() const;

 private:
  struct Series {
    std::string name;
    std::vector<std::pair<double, double>> points;
  };
  Options opt_;
  std::vector<Series> series_;
};

}  // namespace gmg
