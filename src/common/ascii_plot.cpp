#include "common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <iostream>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace gmg {

AsciiPlot::AsciiPlot(Options options) : opt_(options) {
  GMG_REQUIRE(opt_.width >= 8 && opt_.height >= 4, "plot area too small");
}

void AsciiPlot::add_series(const std::string& name,
                           std::vector<std::pair<double, double>> points) {
  GMG_REQUIRE(series_.size() < 26, "too many series");
  series_.push_back(Series{name, std::move(points)});
}

std::string AsciiPlot::render() const {
  // Bounds over all (transformed) points.
  const auto tx = [&](double v) { return opt_.log_x ? std::log10(v) : v; };
  const auto ty = [&](double v) { return opt_.log_y ? std::log10(v) : v; };
  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = xmin, ymax = -xmin;
  for (const Series& s : series_) {
    for (const auto& [x, y] : s.points) {
      GMG_REQUIRE(!opt_.log_x || x > 0, "log x-axis needs positive values");
      GMG_REQUIRE(!opt_.log_y || y > 0, "log y-axis needs positive values");
      xmin = std::min(xmin, tx(x));
      xmax = std::max(xmax, tx(x));
      ymin = std::min(ymin, ty(y));
      ymax = std::max(ymax, ty(y));
    }
  }
  GMG_REQUIRE(xmin <= xmax, "nothing to plot");
  if (xmax == xmin) xmax = xmin + 1;
  if (ymax == ymin) ymax = ymin + 1;

  std::vector<std::string> canvas(
      static_cast<std::size_t>(opt_.height),
      std::string(static_cast<std::size_t>(opt_.width), ' '));
  for (std::size_t s = 0; s < series_.size(); ++s) {
    const char glyph = static_cast<char>('a' + s);
    for (const auto& [x, y] : series_[s].points) {
      const int col = static_cast<int>(std::lround(
          (tx(x) - xmin) / (xmax - xmin) * (opt_.width - 1)));
      const int row = static_cast<int>(std::lround(
          (ty(y) - ymin) / (ymax - ymin) * (opt_.height - 1)));
      auto& cell = canvas[static_cast<std::size_t>(opt_.height - 1 - row)]
                         [static_cast<std::size_t>(col)];
      // Overlapping series show the later glyph capitalized as a clash
      // marker.
      cell = (cell == ' ' || cell == glyph)
                 ? glyph
                 : static_cast<char>(std::toupper(glyph));
    }
  }

  const auto fmt = [&](double v, bool is_log) {
    std::ostringstream os;
    os << std::setprecision(3) << (is_log ? std::pow(10.0, v) : v);
    return os.str();
  };

  std::ostringstream os;
  if (!opt_.y_label.empty()) os << opt_.y_label << '\n';
  const std::string ytop = fmt(ymax, opt_.log_y);
  const std::string ybot = fmt(ymin, opt_.log_y);
  const std::size_t margin = std::max(ytop.size(), ybot.size());
  for (int r = 0; r < opt_.height; ++r) {
    std::string label;
    if (r == 0) label = ytop;
    if (r == opt_.height - 1) label = ybot;
    os << std::setw(static_cast<int>(margin)) << label << " |"
       << canvas[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(margin + 1, ' ') << '+'
     << std::string(static_cast<std::size_t>(opt_.width), '-') << '\n';
  const std::string xlo = fmt(xmin, opt_.log_x);
  const std::string xhi = fmt(xmax, opt_.log_x);
  os << std::string(margin + 2, ' ') << xlo
     << std::string(
            std::max<std::size_t>(
                1, static_cast<std::size_t>(opt_.width) - xlo.size() -
                       xhi.size()),
            ' ')
     << xhi;
  if (!opt_.x_label.empty()) os << "  " << opt_.x_label;
  os << '\n';
  for (std::size_t s = 0; s < series_.size(); ++s) {
    os << "  " << static_cast<char>('a' + s) << " = " << series_[s].name
       << '\n';
  }
  return os.str();
}

void AsciiPlot::print() const { std::cout << render() << std::flush; }

}  // namespace gmg
