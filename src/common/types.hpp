// Fundamental scalar and small-vector types shared across the library.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>

namespace gmg {

/// Floating-point type used for all field data. The paper evaluates
/// double precision (FP64) exclusively; all roofline/AI accounting
/// assumes 8-byte elements.
using real_t = double;

/// Signed index type for cell/brick coordinates. Signed so that ghost
/// regions (negative offsets) are representable without casts.
using index_t = std::int64_t;

/// Number of bytes in one field element.
inline constexpr std::size_t kRealBytes = sizeof(real_t);

/// A small integer 3-vector used for extents, coordinates and strides.
struct Vec3 {
  index_t x = 0, y = 0, z = 0;

  constexpr index_t& operator[](int d) { return d == 0 ? x : (d == 1 ? y : z); }
  constexpr const index_t& operator[](int d) const {
    return d == 0 ? x : (d == 1 ? y : z);
  }

  constexpr friend Vec3 operator+(Vec3 a, Vec3 b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  constexpr friend Vec3 operator-(Vec3 a, Vec3 b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  constexpr friend Vec3 operator*(Vec3 a, index_t s) {
    return {a.x * s, a.y * s, a.z * s};
  }
  constexpr friend bool operator==(const Vec3&, const Vec3&) = default;

  /// Product of components (e.g. cell count of an extent).
  constexpr index_t volume() const { return x * y * z; }
};

std::ostream& operator<<(std::ostream& os, const Vec3& v);

/// The 26 neighbor directions of a 3-D subdomain plus self, encoded as
/// a base-3 digit per axis: dir = (dz+1)*9 + (dy+1)*3 + (dx+1).
/// Index 13 is "self" (0,0,0).
inline constexpr int kNumDirections = 27;
inline constexpr int kSelfDirection = 13;

constexpr int direction_index(int dx, int dy, int dz) {
  return (dz + 1) * 9 + (dy + 1) * 3 + (dx + 1);
}

constexpr Vec3 direction_offset(int dir) {
  return {dir % 3 - 1, (dir / 3) % 3 - 1, dir / 9 - 1};
}

/// The opposite of a direction (used to match a send with the
/// neighbor's receive).
constexpr int opposite_direction(int dir) { return kNumDirections - 1 - dir; }

}  // namespace gmg
