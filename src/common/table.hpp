// ASCII table rendering for bench harnesses: the paper's tables and
// figure series are printed as aligned columns plus an optional CSV
// sidecar for plotting.
#pragma once

#include <string>
#include <vector>

namespace gmg {

/// Column-aligned text table. Cells are strings; numeric helpers format
/// with fixed precision. Rendered with a header rule, suitable for
/// terminal output of paper tables.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row; subsequent `cell()` calls fill it left to right.
  Table& row();
  Table& cell(const std::string& text);
  Table& cell(double value, int precision = 3);
  Table& cell(long value);
  Table& cell_percent(double fraction, int precision = 1);  // 0.73 -> "73.0%"

  std::string str() const;
  void print() const;

  /// Comma-separated form (headers + rows) for plotting scripts.
  std::string csv() const;
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gmg
