#include "common/types.hpp"

#include <ostream>

namespace gmg {

std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ',' << v.y << ',' << v.z << ')';
}

}  // namespace gmg
