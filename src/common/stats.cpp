#include "common/stats.hpp"

#include <sstream>

namespace gmg {

std::string RunningStats::summary() const {
  std::ostringstream os;
  os.precision(6);
  os << '[' << min() << ", " << mean() << ", " << max() << "] (σ: "
     << stddev() << ')';
  return os.str();
}

}  // namespace gmg
