#include "common/stats.hpp"

#include <sstream>

namespace gmg {

std::string RunningStats::summary() const {
  // Zero samples must render (not divide by zero or print ±inf
  // min/max): operations can legitimately be queried at levels that
  // never ran.
  if (count() == 0) return "[no samples] (σ: 0)";
  std::ostringstream os;
  os.precision(6);
  os << '[' << min() << ", " << mean() << ", " << max() << "] (σ: "
     << stddev() << ')';
  return os.str();
}

}  // namespace gmg
