// Deterministic random fields for tests and property sweeps.
#pragma once

#include <cstdint>
#include <random>

#include "common/types.hpp"

namespace gmg {

/// Deterministic 64-bit RNG (fixed seed stream per id) so that tests
/// and property sweeps are reproducible across runs and platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : gen_(seed) {}

  real_t uniform(real_t lo = -1.0, real_t hi = 1.0) {
    return std::uniform_real_distribution<real_t>(lo, hi)(gen_);
  }
  index_t uniform_int(index_t lo, index_t hi) {  // inclusive bounds
    return std::uniform_int_distribution<index_t>(lo, hi)(gen_);
  }

 private:
  std::mt19937_64 gen_;
};

}  // namespace gmg
