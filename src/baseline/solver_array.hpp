// Conventional geometric multigrid on ghosted ijk arrays — the
// HPGMG-style comparator of paper Fig. 4. Identical algorithm
// (Algorithms 1 & 2, same smoother, same model problem), but:
//   * lexicographic array storage with a one-cell ghost shell,
//   * element-wise pack/unpack ghost exchange before every applyOp,
//   * no communication avoidance, no fine-grain blocking.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "baseline/operators_array.hpp"
#include "comm/exchange.hpp"
#include "comm/simmpi.hpp"
#include "mesh/decomposition.hpp"
#include "perf/profiler.hpp"

namespace gmg::baseline {

struct ArrayGmgOptions {
  int levels = 6;
  int smooths = 12;
  int bottom_smooths = 100;
  real_t tolerance = 1e-10;
  int max_vcycles = 100;
};

struct ArrayLevel {
  int level = 0;
  real_t h = 0;
  Vec3 cells;
  Vec3 global;
  Box rank_box;
  real_t alpha = 0, beta = 0, gamma = 0;
  Array3D x, b, Ax, r;
  std::unique_ptr<comm::ArrayExchange> exchange;

  Box interior() const { return Box::from_extent(cells); }
};

struct ArraySolveResult {
  int vcycles = 0;
  real_t final_residual = 0;
  bool converged = false;
  double seconds = 0;
};

class ArrayGmgSolver {
 public:
  ArrayGmgSolver(const ArrayGmgOptions& opts, const CartDecomp& decomp,
                 int rank);

  int num_levels() const { return static_cast<int>(levels_.size()); }
  ArrayLevel& level(int l) { return levels_[static_cast<std::size_t>(l)]; }

  void set_rhs(const std::function<real_t(real_t, real_t, real_t)>& f);
  ArraySolveResult solve(comm::Communicator& comm);
  void vcycle(comm::Communicator& comm);
  real_t residual_norm(comm::Communicator& comm);

  const Array3D& solution() const { return levels_.front().x; }
  perf::Profiler& profiler() { return profiler_; }

 private:
  void smooth_level(comm::Communicator& comm, ArrayLevel& lev, int iterations,
                    bool with_residual);

  ArrayGmgOptions opts_;
  int rank_;
  std::vector<ArrayLevel> levels_;
  perf::Profiler profiler_;
};

}  // namespace gmg::baseline
