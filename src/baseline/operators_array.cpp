#include "baseline/operators_array.hpp"

#include <cmath>
#include <cstring>

#include "common/error.hpp"

namespace gmg::baseline {

void apply_op(Array3D& Ax, const Array3D& x, real_t alpha, real_t beta,
              const Box& region) {
  GMG_REQUIRE(x.ghost() >= 1, "applyOp needs one ghost layer");
  const index_t sy = x.stride_y(), sz = x.stride_z();
#pragma omp parallel for collapse(2) schedule(static)
  for (index_t k = region.lo.z; k < region.hi.z; ++k) {
    for (index_t j = region.lo.y; j < region.hi.y; ++j) {
      const real_t* __restrict xp = &x(region.lo.x, j, k);
      real_t* __restrict op = &Ax(region.lo.x, j, k);
      const index_t n = region.hi.x - region.lo.x;
#pragma omp simd
      for (index_t i = 0; i < n; ++i) {
        op[i] = alpha * xp[i] +
                beta * (xp[i + 1] + xp[i - 1] + xp[i + sy] + xp[i - sy] +
                        xp[i + sz] + xp[i - sz]);
      }
    }
  }
}

void smooth(Array3D& x, const Array3D& Ax, const Array3D& b, real_t gamma,
            const Box& region) {
#pragma omp parallel for collapse(2) schedule(static)
  for (index_t k = region.lo.z; k < region.hi.z; ++k) {
    for (index_t j = region.lo.y; j < region.hi.y; ++j) {
      real_t* __restrict xp = &x(region.lo.x, j, k);
      const real_t* __restrict ap = &Ax(region.lo.x, j, k);
      const real_t* __restrict bp = &b(region.lo.x, j, k);
      const index_t n = region.hi.x - region.lo.x;
#pragma omp simd
      for (index_t i = 0; i < n; ++i) xp[i] += gamma * (ap[i] - bp[i]);
    }
  }
}

void smooth_residual(Array3D& x, Array3D& r, const Array3D& Ax,
                     const Array3D& b, real_t gamma, const Box& region) {
#pragma omp parallel for collapse(2) schedule(static)
  for (index_t k = region.lo.z; k < region.hi.z; ++k) {
    for (index_t j = region.lo.y; j < region.hi.y; ++j) {
      real_t* __restrict xp = &x(region.lo.x, j, k);
      real_t* __restrict rp = &r(region.lo.x, j, k);
      const real_t* __restrict ap = &Ax(region.lo.x, j, k);
      const real_t* __restrict bp = &b(region.lo.x, j, k);
      const index_t n = region.hi.x - region.lo.x;
#pragma omp simd
      for (index_t i = 0; i < n; ++i) {
        const real_t ax = ap[i];
        const real_t rhs = bp[i];
        rp[i] = rhs - ax;
        xp[i] += gamma * (ax - rhs);
      }
    }
  }
}

void residual(Array3D& r, const Array3D& b, const Array3D& Ax,
              const Box& region) {
#pragma omp parallel for collapse(2) schedule(static)
  for (index_t k = region.lo.z; k < region.hi.z; ++k) {
    for (index_t j = region.lo.y; j < region.hi.y; ++j) {
      real_t* __restrict rp = &r(region.lo.x, j, k);
      const real_t* __restrict ap = &Ax(region.lo.x, j, k);
      const real_t* __restrict bp = &b(region.lo.x, j, k);
      const index_t n = region.hi.x - region.lo.x;
#pragma omp simd
      for (index_t i = 0; i < n; ++i) rp[i] = bp[i] - ap[i];
    }
  }
}

void restriction(Array3D& coarse, const Array3D& fine) {
  const Vec3 ce = coarse.extent(), fe = fine.extent();
  GMG_REQUIRE(fe.x == 2 * ce.x && fe.y == 2 * ce.y && fe.z == 2 * ce.z,
              "fine extent must be twice the coarse extent");
#pragma omp parallel for collapse(2) schedule(static)
  for (index_t k = 0; k < ce.z; ++k) {
    for (index_t j = 0; j < ce.y; ++j) {
      for (index_t i = 0; i < ce.x; ++i) {
        const index_t fi = 2 * i, fj = 2 * j, fk = 2 * k;
        coarse(i, j, k) =
            0.125 * (fine(fi, fj, fk) + fine(fi + 1, fj, fk) +
                     fine(fi, fj + 1, fk) + fine(fi + 1, fj + 1, fk) +
                     fine(fi, fj, fk + 1) + fine(fi + 1, fj, fk + 1) +
                     fine(fi, fj + 1, fk + 1) + fine(fi + 1, fj + 1, fk + 1));
      }
    }
  }
}

void interpolation_increment(Array3D& fine, const Array3D& coarse) {
  const Vec3 ce = coarse.extent(), fe = fine.extent();
  GMG_REQUIRE(fe.x == 2 * ce.x && fe.y == 2 * ce.y && fe.z == 2 * ce.z,
              "fine extent must be twice the coarse extent");
#pragma omp parallel for collapse(2) schedule(static)
  for (index_t k = 0; k < fe.z; ++k) {
    for (index_t j = 0; j < fe.y; ++j) {
      for (index_t i = 0; i < fe.x; ++i) {
        fine(i, j, k) += coarse(i / 2, j / 2, k / 2);
      }
    }
  }
}

void init_zero(Array3D& a) {
  std::memset(a.data(), 0, a.size() * sizeof(real_t));
}

real_t max_norm(const Array3D& a) {
  real_t m = 0.0;
  const Box region = a.interior();
#pragma omp parallel for collapse(2) schedule(static) reduction(max : m)
  for (index_t k = region.lo.z; k < region.hi.z; ++k) {
    for (index_t j = region.lo.y; j < region.hi.y; ++j) {
      for (index_t i = region.lo.x; i < region.hi.x; ++i) {
        m = std::max(m, std::abs(a(i, j, k)));
      }
    }
  }
  return m;
}

}  // namespace gmg::baseline
