#include "baseline/solver_array.hpp"

#include "common/timer.hpp"

namespace gmg::baseline {

ArrayGmgSolver::ArrayGmgSolver(const ArrayGmgOptions& opts,
                               const CartDecomp& decomp, int rank)
    : opts_(opts), rank_(rank) {
  GMG_REQUIRE(opts_.levels >= 1, "need at least one level");
  const Vec3 sub0 = decomp.subdomain_extent();
  const Vec3 global0 = decomp.global_extent();

  int levels = opts_.levels;
  for (int l = 0; l < levels; ++l) {
    const index_t scale = index_t{1} << l;
    const bool ok = sub0.x % (2 * scale) == 0 && sub0.y % (2 * scale) == 0 &&
                    sub0.z % (2 * scale) == 0;
    if (!ok) {
      levels = l + 1;
      break;
    }
  }
  opts_.levels = levels;

  const Box rank_box0 = decomp.subdomain_box(rank);
  levels_.reserve(static_cast<std::size_t>(levels));
  for (int l = 0; l < levels; ++l) {
    const index_t scale = index_t{1} << l;
    ArrayLevel lev;
    lev.level = l;
    lev.cells = {sub0.x / scale, sub0.y / scale, sub0.z / scale};
    lev.global = {global0.x / scale, global0.y / scale, global0.z / scale};
    lev.rank_box = Box{{rank_box0.lo.x / scale, rank_box0.lo.y / scale,
                        rank_box0.lo.z / scale},
                       {rank_box0.hi.x / scale, rank_box0.hi.y / scale,
                        rank_box0.hi.z / scale}};
    lev.h = 1.0 / static_cast<real_t>(lev.global.x);
    lev.alpha = -6.0 / (lev.h * lev.h);
    lev.beta = 1.0 / (lev.h * lev.h);
    lev.gamma = lev.h * lev.h / 12.0;
    lev.x = Array3D(lev.cells, 1);
    lev.b = Array3D(lev.cells, 1);
    lev.Ax = Array3D(lev.cells, 1);
    lev.r = Array3D(lev.cells, 1);
    lev.exchange =
        std::make_unique<comm::ArrayExchange>(lev.cells, 1, decomp, rank);
    levels_.push_back(std::move(lev));
  }
}

void ArrayGmgSolver::set_rhs(
    const std::function<real_t(real_t, real_t, real_t)>& f) {
  ArrayLevel& fine = levels_.front();
  const real_t h = fine.h;
  for_each(fine.interior(), [&](index_t i, index_t j, index_t k) {
    const real_t px = (static_cast<real_t>(fine.rank_box.lo.x + i) + 0.5) * h;
    const real_t py = (static_cast<real_t>(fine.rank_box.lo.y + j) + 0.5) * h;
    const real_t pz = (static_cast<real_t>(fine.rank_box.lo.z + k) + 0.5) * h;
    fine.b(i, j, k) = f(px, py, pz);
  });
  for (auto& lev : levels_) {
    init_zero(lev.x);
    if (lev.level > 0) init_zero(lev.b);
  }
}

void ArrayGmgSolver::smooth_level(comm::Communicator& comm, ArrayLevel& lev,
                                  int iterations, bool with_residual) {
  const Box interior = lev.interior();
  for (int it = 0; it < iterations; ++it) {
    profiler_.timed(lev.level, perf::Phase::kExchange,
                    [&] { lev.exchange->exchange(comm, lev.x); });
    profiler_.timed(lev.level, perf::Phase::kApplyOp, [&] {
      apply_op(lev.Ax, lev.x, lev.alpha, lev.beta, interior);
    });
    if (with_residual) {
      profiler_.timed(lev.level, perf::Phase::kSmoothResidual, [&] {
        smooth_residual(lev.x, lev.r, lev.Ax, lev.b, lev.gamma, interior);
      });
    } else {
      profiler_.timed(lev.level, perf::Phase::kSmooth, [&] {
        smooth(lev.x, lev.Ax, lev.b, lev.gamma, interior);
      });
    }
  }
}

void ArrayGmgSolver::vcycle(comm::Communicator& comm) {
  const int bottom = num_levels() - 1;
  for (int l = 0; l < bottom; ++l) {
    ArrayLevel& lev = levels_[static_cast<std::size_t>(l)];
    ArrayLevel& coarse = levels_[static_cast<std::size_t>(l + 1)];
    smooth_level(comm, lev, opts_.smooths, /*with_residual=*/true);
    profiler_.timed(l, perf::Phase::kRestriction,
                    [&] { restriction(coarse.b, lev.r); });
    profiler_.timed(l + 1, perf::Phase::kInitZero,
                    [&] { init_zero(coarse.x); });
  }
  smooth_level(comm, levels_[static_cast<std::size_t>(bottom)],
               opts_.bottom_smooths, /*with_residual=*/false);
  for (int l = bottom - 1; l >= 0; --l) {
    ArrayLevel& lev = levels_[static_cast<std::size_t>(l)];
    ArrayLevel& coarse = levels_[static_cast<std::size_t>(l + 1)];
    profiler_.timed(l, perf::Phase::kInterpIncrement,
                    [&] { interpolation_increment(lev.x, coarse.x); });
    smooth_level(comm, lev, opts_.smooths, /*with_residual=*/true);
  }
}

real_t ArrayGmgSolver::residual_norm(comm::Communicator& comm) {
  ArrayLevel& fine = levels_.front();
  profiler_.timed(0, perf::Phase::kExchange,
                  [&] { fine.exchange->exchange(comm, fine.x); });
  profiler_.timed(0, perf::Phase::kApplyOp, [&] {
    apply_op(fine.Ax, fine.x, fine.alpha, fine.beta, fine.interior());
  });
  profiler_.timed(0, perf::Phase::kResidual, [&] {
    residual(fine.r, fine.b, fine.Ax, fine.interior());
  });
  real_t local = 0;
  profiler_.timed(0, perf::Phase::kMaxNorm,
                  [&] { local = max_norm(fine.r); });
  return comm.allreduce_max(local);
}

ArraySolveResult ArrayGmgSolver::solve(comm::Communicator& comm) {
  Timer timer;
  ArraySolveResult result;
  real_t res = residual_norm(comm);
  while (res > opts_.tolerance && result.vcycles < opts_.max_vcycles) {
    vcycle(comm);
    res = residual_norm(comm);
    ++result.vcycles;
  }
  result.final_residual = res;
  result.converged = res <= opts_.tolerance;
  result.seconds = timer.elapsed();
  return result;
}

}  // namespace gmg::baseline
