// The V-cycle operators on the conventional ghosted ijk array layout.
// This is the comparator implementation (HPGMG-style, paper Fig. 4)
// and doubles as the independent reference the brick kernels are
// tested against.
#pragma once

#include "common/types.hpp"
#include "mesh/array3d.hpp"

namespace gmg::baseline {

/// Ax = alpha*x + beta*(6 neighbors) over `region` (requires >=1
/// ghost layer on x).
void apply_op(Array3D& Ax, const Array3D& x, real_t alpha, real_t beta,
              const Box& region);

/// x += gamma*(Ax - b) over `region`.
void smooth(Array3D& x, const Array3D& Ax, const Array3D& b, real_t gamma,
            const Box& region);

/// Fused smooth and r = b - Ax (pre-smooth Ax).
void smooth_residual(Array3D& x, Array3D& r, const Array3D& Ax,
                     const Array3D& b, real_t gamma, const Box& region);

/// r = b - Ax over `region`.
void residual(Array3D& r, const Array3D& b, const Array3D& Ax,
              const Box& region);

/// coarse = volume average of 8 fine cells, over the full interiors.
void restriction(Array3D& coarse, const Array3D& fine);

/// fine += piecewise-constant coarse correction, full fine interior.
void interpolation_increment(Array3D& fine, const Array3D& coarse);

/// Zero interior and ghosts.
void init_zero(Array3D& a);

/// max |a| over the interior.
real_t max_norm(const Array3D& a);

}  // namespace gmg::baseline
