#include "net/net_model.hpp"

namespace gmg::net {

LinearParams fit_linear_model(const std::vector<double>& bytes,
                              const std::vector<double>& seconds) {
  GMG_REQUIRE(bytes.size() == seconds.size(), "sample size mismatch");
  GMG_REQUIRE(bytes.size() >= 2, "need at least two samples to fit");
  // Ordinary least squares on t = alpha + x * (1/beta).
  const auto n = static_cast<double>(bytes.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    sx += bytes[i];
    sy += seconds[i];
    sxx += bytes[i] * bytes[i];
    sxy += bytes[i] * seconds[i];
  }
  const double denom = n * sxx - sx * sx;
  GMG_REQUIRE(denom != 0.0, "degenerate samples (all equal sizes)");
  const double slope = (n * sxy - sx * sy) / denom;
  const double intercept = (sy - slope * sx) / n;
  GMG_REQUIRE(slope > 0.0, "fit produced non-positive bandwidth");
  LinearParams p;
  p.alpha_s = intercept;
  p.beta_bytes_s = 1.0 / slope;
  return p;
}

}  // namespace gmg::net
