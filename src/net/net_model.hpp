// Slingshot-11 network performance model — the substitution for the
// paper's interconnect (DESIGN.md §2).
//
// The paper evaluates exchange() with the classic alpha-beta law
// (§VI-A):   t(x) = alpha + x/beta,   f(x) = x / t(x)  [GB/s]
// where x is the total message volume of one exchange, alpha the
// empirical latency/overhead and beta the sustained NIC bandwidth.
// On top of the base law we model the knobs §V discusses:
//   * small-message protocol: the CXI eager path adds per-message
//     overhead below the rendezvous threshold; the paper's
//     FI_CXI_RDZV_* = 0 settings force rendezvous everywhere, which is
//     what made Frontier fast at the coarsest levels.
//   * GPU-aware MPI: when unavailable (Sunspot), every transfer stages
//     through host memory over PCIe, adding a copy term and latency.
#pragma once

#include <cmath>
#include <vector>

#include "arch/arch_spec.hpp"
#include "common/error.hpp"

namespace gmg::net {

/// Small-message protocol policy (paper Table I environment variables).
enum class Protocol {
  kEagerDefault,      // default libfabric behavior
  kForceRendezvous,   // FI_CXI_RDZV_EAGER_SIZE=0 etc.
};

/// Parameters of the alpha-beta law.
struct LinearParams {
  double alpha_s = 0.0;       // latency/overhead, seconds
  double beta_bytes_s = 0.0;  // bandwidth, bytes/second

  double time(double bytes) const { return alpha_s + bytes / beta_bytes_s; }
  double rate_gbs(double bytes) const { return bytes / time(bytes) / 1e9; }
};

/// Default eager->rendezvous crossover used by the CXI provider.
inline constexpr double kEagerThresholdBytes = 16384.0;

class NetworkModel {
 public:
  /// `active_ranks_per_node`: how many ranks share the node's NICs in
  /// the experiment being modeled. The paper's per-level studies
  /// (Figs. 3, 5, 6) run ONE rank per node — a dedicated NIC — while
  /// the scaling studies (Figs. 8, 9) populate full nodes.
  NetworkModel(const arch::ArchSpec& spec,
               Protocol protocol = Protocol::kForceRendezvous,
               int active_ranks_per_node = 1)
      : spec_(&spec),
        protocol_(protocol),
        active_ranks_per_node_(active_ranks_per_node) {}

  const arch::ArchSpec& spec() const { return *spec_; }
  Protocol protocol() const { return protocol_; }

  /// Fabric-congestion factor at `nodes` nodes: the empirical
  /// bandwidth degradation of a shared Slingshot fabric under a
  /// bisection-heavy 26-neighbor pattern. Baselined at the paper's
  /// 8-node per-level experiments (no extra penalty there) and
  /// calibrated so weak scaling lands at the paper's >=87% parallel
  /// efficiency at 128 nodes.
  static double congestion_factor(int nodes) {
    if (nodes <= 8) return 1.0;
    return 1.0 + 0.08 * std::log2(static_cast<double>(nodes) / 8.0);
  }

  /// Seconds to complete one exchange of `total_bytes` split across
  /// `messages` point-to-point messages on one NIC, on a job spanning
  /// `nodes` nodes.
  double exchange_time(double total_bytes, int messages,
                       int nodes = 1) const {
    GMG_REQUIRE(messages >= 1, "an exchange needs at least one message");
    double alpha = spec_->nic_latency_us * 1e-6;
    double beta = spec_->nic_sustained_gbs * 1e9;
    // Ranks sharing a NIC split its bandwidth (Sunspot: 12 ranks on 8
    // NICs when nodes are fully populated; Perlmutter/Frontier: one
    // NIC per rank).
    if (active_ranks_per_node_ > spec_->nics_per_node) {
      beta *= static_cast<double>(spec_->nics_per_node) /
              static_cast<double>(active_ranks_per_node_);
    }
    beta /= congestion_factor(nodes);

    // The 26 messages of one exchange overlap on the NIC; what
    // serializes is one wire latency plus a ~1 us CPU posting cost per
    // additional message.
    constexpr double kPostingCost = 1e-6;
    double overhead = alpha + kPostingCost * (messages - 1);

    const double mean_msg = total_bytes / messages;
    if (protocol_ == Protocol::kEagerDefault &&
        mean_msg < kEagerThresholdBytes) {
      // Eager path: bounce-buffer copy halves the effective bandwidth
      // for small transfers and adds matching overhead per message.
      beta *= 0.5;
      overhead *= 1.6;
    }
    double t = overhead + total_bytes / beta;

    if (!spec_->gpu_aware_mpi) {
      // Stage GPU->host and host->GPU over PCIe plus a driver round
      // trip per exchange.
      t += 2.0 * total_bytes / (spec_->pcie_gbs * 1e9) + 30e-6;
    }
    return t;
  }

  double exchange_rate_gbs(double total_bytes, int messages,
                           int nodes = 1) const {
    return total_bytes / exchange_time(total_bytes, messages, nodes) / 1e9;
  }

 private:
  const arch::ArchSpec* spec_;
  Protocol protocol_;
  int active_ranks_per_node_ = 1;
};

/// Least-squares fit of t = alpha + x/beta to (bytes, seconds)
/// samples — the procedure the paper uses to extract empirical latency
/// and bandwidth from measurements (Figs. 5 and 6).
LinearParams fit_linear_model(const std::vector<double>& bytes,
                              const std::vector<double>& seconds);

}  // namespace gmg::net
