#include "comm/exchange.hpp"

#include <cstring>

#include "check/shadow.hpp"
#include "trace/trace.hpp"

namespace gmg::comm {

namespace {
/// Tags: the sender tags a message with its own outgoing direction, so
/// the receiver posts opposite(dir). kPerBrick appends a per-brick
/// sequence number.
constexpr int kPerBrickTagStride = 64;
int per_brick_tag(int dir, int seq) { return dir + kPerBrickTagStride * (seq + 1); }

/// PatchExchange tags live in their own band, disjoint from both the
/// plain direction tags (0..26) and every per-brick tag
/// (dir + 64*(seq+1)): an AMR patch round can never collide with a
/// parent-level BrickExchange left in flight by the overlap engine.
constexpr int kPatchTagBase = 1 << 20;
}  // namespace

BrickExchange::BrickExchange(std::shared_ptr<const BrickGrid> grid,
                             BrickShape shape, const CartDecomp& decomp,
                             int rank, BrickExchangeMode mode)
    : grid_(std::move(grid)), shape_(shape), rank_(rank), mode_(mode) {
  GMG_REQUIRE(grid_ != nullptr, "null brick grid");
  for (int dir = 0; dir < kNumDirections; ++dir) {
    if (dir == kSelfDirection) continue;
    DirectionPlan plan;
    plan.dir = dir;
    plan.neighbor = decomp.neighbor(rank, dir);
    plan.self = (plan.neighbor == rank);
    plan.recv_range = grid_->ghost_range(dir);
    // Self-copies source from the surface facing the *opposite* side
    // (periodic wrap); remote sends carry the surface facing `dir`.
    const Box src_box =
        plan.self ? grid_->surface_box(opposite_direction(dir))
                  : grid_->surface_box(dir);
    plan.send_runs = grid_->segments_of(src_box);

    const std::uint64_t bytes =
        static_cast<std::uint64_t>(plan.recv_range.count) *
        static_cast<std::uint64_t>(shape_.volume()) * kRealBytes;
    bytes_per_exchange_ += bytes;
    if (!plan.self) {
      remote_bytes_ += bytes;
      ++remote_neighbors_;
    }
    plans_.push_back(std::move(plan));
  }
  send_staging_.resize(plans_.size());
  recv_staging_.resize(plans_.size());
}

void BrickExchange::exchange(Communicator& comm, BrickedArray& field) {
  std::vector<BrickedArray*> one{&field};
  exchange(comm, one);
}

void BrickExchange::exchange(Communicator& comm,
                             std::vector<BrickedArray*> fields) {
  begin(comm, std::move(fields));
  finish(comm);
}

void BrickExchange::begin(Communicator& comm, BrickedArray& field) {
  begin(comm, std::vector<BrickedArray*>{&field});
}

void BrickExchange::begin(Communicator& comm,
                          std::vector<BrickedArray*> fields) {
  GMG_REQUIRE(!in_flight_, "an exchange is already in flight");
  GMG_REQUIRE(!fields.empty(), "no fields to exchange");
  for (BrickedArray* f : fields) {
    GMG_REQUIRE(f->grid_ptr().get() == grid_.get(),
                "field does not share this engine's brick grid");
  }
  const std::size_t vol = static_cast<std::size_t>(shape_.volume());
  const std::size_t brick_bytes = vol * kRealBytes;

  trace::counter_add("exchange.bytes",
                     bytes_per_exchange_ * fields.size());
  trace::counter_add("exchange.remote_bytes", remote_bytes_ * fields.size());
  trace::counter_add("exchange.calls", 1);

  std::vector<Request>& requests = requests_;
  requests.clear();
  requests.reserve(plans_.size() * 2 * fields.size());

  // Post all receives first (the usual MPI_IRecv-before-ISend pattern).
  {
    trace::TraceSpan span("exchange.recv_post", trace::Category::kComm);
    for (std::size_t p = 0; p < plans_.size(); ++p) {
      const DirectionPlan& plan = plans_[p];
      if (plan.self) continue;
      const int tag = opposite_direction(plan.dir);
      switch (mode_) {
        case BrickExchangeMode::kPackFree: {
          std::vector<Segment> segs;
          segs.reserve(fields.size());
          for (BrickedArray* f : fields) {
            segs.push_back(Segment{
                f->brick(plan.recv_range.first),
                static_cast<std::size_t>(plan.recv_range.count) *
                    brick_bytes});
          }
          requests.push_back(comm.irecvv(std::move(segs), plan.neighbor, tag));
          break;
        }
        case BrickExchangeMode::kPacked: {
          const std::size_t n =
              static_cast<std::size_t>(plan.recv_range.count) * vol *
              fields.size();
          if (recv_staging_[p].size() < n) recv_staging_[p].reset(n, false);
          requests.push_back(comm.irecv(recv_staging_[p].data(),
                                        n * kRealBytes, plan.neighbor, tag));
          break;
        }
        case BrickExchangeMode::kPerBrick: {
          int seq = 0;
          for (BrickedArray* f : fields) {
            for (std::int32_t b = 0; b < plan.recv_range.count; ++b) {
              requests.push_back(
                  comm.irecv(f->brick(plan.recv_range.first + b), brick_bytes,
                             plan.neighbor, per_brick_tag(tag, seq++)));
            }
          }
          break;
        }
      }
    }
  }

  // Pack: local periodic copies (all modes), staging-buffer gathers
  // (kPacked), and the scatter/gather segment lists (kPackFree — no
  // data motion, just descriptors: the packing-free claim).
  std::vector<std::vector<ConstSegment>> send_segs(plans_.size());
  {
    trace::TraceSpan span("exchange.pack", trace::Category::kComm);
    std::uint64_t packed_bytes = 0;
    for (std::size_t p = 0; p < plans_.size(); ++p) {
      const DirectionPlan& plan = plans_[p];
      if (plan.self) {
        // Periodic wrap onto ourselves: copy surface bricks into our
        // own ghost range, in matching lexicographic order.
        for (BrickedArray* f : fields) {
          std::int32_t dst = plan.recv_range.first;
          for (const BrickRange& run : plan.send_runs) {
            std::memcpy(f->brick(dst), f->brick(run.first),
                        static_cast<std::size_t>(run.count) * brick_bytes);
            dst += run.count;
          }
        }
        continue;
      }
      switch (mode_) {
        case BrickExchangeMode::kPackFree: {
          std::vector<ConstSegment>& segs = send_segs[p];
          for (BrickedArray* f : fields) {
            for (const BrickRange& run : plan.send_runs) {
              segs.emplace_back(
                  f->brick(run.first),
                  static_cast<std::size_t>(run.count) * brick_bytes);
            }
          }
          break;
        }
        case BrickExchangeMode::kPacked: {
          std::size_t total = 0;
          for (const BrickRange& run : plan.send_runs)
            total += static_cast<std::size_t>(run.count) * vol;
          total *= fields.size();
          if (send_staging_[p].size() < total)
            send_staging_[p].reset(total, false);
          real_t* dst = send_staging_[p].data();
          for (BrickedArray* f : fields) {
            for (const BrickRange& run : plan.send_runs) {
              std::memcpy(dst, f->brick(run.first),
                          static_cast<std::size_t>(run.count) * brick_bytes);
              dst += static_cast<std::size_t>(run.count) * vol;
            }
          }
          packed_bytes += total * kRealBytes;
          break;
        }
        case BrickExchangeMode::kPerBrick:
          break;  // sends straight from brick storage
      }
    }
    if (packed_bytes) trace::counter_add("exchange.bytes_packed", packed_bytes);
  }

  // Send.
  {
    trace::TraceSpan span("exchange.send", trace::Category::kComm);
    for (std::size_t p = 0; p < plans_.size(); ++p) {
      const DirectionPlan& plan = plans_[p];
      if (plan.self) continue;
      const int tag = plan.dir;
      switch (mode_) {
        case BrickExchangeMode::kPackFree:
          requests.push_back(
              comm.isendv(std::move(send_segs[p]), plan.neighbor, tag));
          break;
        case BrickExchangeMode::kPacked: {
          std::size_t total = 0;
          for (const BrickRange& run : plan.send_runs)
            total += static_cast<std::size_t>(run.count) * vol;
          total *= fields.size();
          requests.push_back(comm.isend(send_staging_[p].data(),
                                        total * kRealBytes, plan.neighbor,
                                        tag));
          break;
        }
        case BrickExchangeMode::kPerBrick: {
          int seq = 0;
          for (BrickedArray* f : fields) {
            for (const BrickRange& run : plan.send_runs) {
              for (std::int32_t b = 0; b < run.count; ++b) {
                requests.push_back(comm.isend(f->brick(run.first + b),
                                              brick_bytes, plan.neighbor,
                                              per_brick_tag(tag, seq++)));
              }
            }
          }
          break;
        }
      }
    }
  }

  // Hazard tracking: the receive ghost ranges of every field are now
  // in flight until finish(). Sends need no marking — kPackFree buffers
  // them inside isendv at post time, kPacked stages them above, and
  // self-copies completed synchronously in the pack phase.
  if (check::enabled()) {
    std::vector<BrickRange> ghost;
    for (const DirectionPlan& plan : plans_) {
      if (!plan.self) ghost.push_back(plan.recv_range);
    }
    for (BrickedArray* f : fields) {
      check::on_exchange_begin(f->data(), grid_.get(), ghost);
    }
  }

  inflight_fields_ = std::move(fields);
  in_flight_ = true;
}

bool BrickExchange::test(Communicator& comm) {
  if (!in_flight_) return true;
  for (Request& r : requests_)
    if (!comm.test(r)) return false;
  return true;
}

void BrickExchange::finish(Communicator& comm) {
  GMG_REQUIRE(in_flight_, "no exchange in flight");
  {
    // Drain in completion order, not post order: early-arriving
    // messages retire immediately while stragglers are still flying.
    trace::TraceSpan span("exchange.wait", trace::Category::kWait);
    while (comm.wait_any(requests_) >= 0) {
    }
  }
  requests_.clear();

  // kPacked: unpack staged receives into the ghost ranges.
  if (mode_ == BrickExchangeMode::kPacked) {
    trace::TraceSpan span("exchange.unpack", trace::Category::kComm);
    const std::size_t vol = static_cast<std::size_t>(shape_.volume());
    const std::size_t brick_bytes = vol * kRealBytes;
    for (std::size_t p = 0; p < plans_.size(); ++p) {
      const DirectionPlan& plan = plans_[p];
      if (plan.self) continue;
      const real_t* src = recv_staging_[p].data();
      for (BrickedArray* f : inflight_fields_) {
        std::memcpy(f->brick(plan.recv_range.first), src,
                    static_cast<std::size_t>(plan.recv_range.count) *
                        brick_bytes);
        src += static_cast<std::size_t>(plan.recv_range.count) * vol;
      }
    }
  }
  if (check::enabled()) {
    for (BrickedArray* f : inflight_fields_) {
      check::on_exchange_finish(f->data());
    }
  }
  inflight_fields_.clear();
  in_flight_ = false;
}

// ---------------------------------------------------------------------------
// PatchExchange
// ---------------------------------------------------------------------------

PatchExchange::PatchExchange(std::shared_ptr<const BrickGrid> grid,
                             BrickShape shape, const Box& patch,
                             const Box& part, const CartDecomp& decomp,
                             int rank)
    : grid_(std::move(grid)), shape_(shape), rank_(rank) {
  if (part.empty()) {
    GMG_REQUIRE(grid_ == nullptr, "empty part must carry no brick grid");
    return;  // this rank owns no patch bricks; nothing to exchange
  }
  GMG_REQUIRE(grid_ != nullptr, "null patch brick grid");
  GMG_REQUIRE(patch.covers(part), "part must lie within the global patch");

  // Only the 6 face directions: the radius-1 patch smoother never
  // reads edge/corner ghost bricks, so those groups stay untouched.
  for (int axis = 0; axis < 3; ++axis) {
    for (int side = -1; side <= 1; side += 2) {
      int off[3] = {0, 0, 0};
      off[axis] = side;
      const int dir = direction_index(off[0], off[1], off[2]);
      const Box ghost = ghost_region(part, dir, 1);
      const Box inside = intersect(ghost, patch);
      if (inside.empty()) continue;  // patch boundary: prolonged ghosts
      GMG_REQUIRE(inside == ghost,
                  "patch part face must be entirely interior to the patch or "
                  "entirely on its boundary");
      DirectionPlan plan;
      plan.dir = dir;
      plan.neighbor = decomp.neighbor(rank, dir);
      GMG_REQUIRE(plan.neighbor != rank,
                  "a fine-filled patch face cannot wrap onto its own rank");
      plan.send_runs = grid_->segments_of(grid_->surface_box(dir));
      plan.recv_range = grid_->ghost_range(dir);
      bytes_per_exchange_ += static_cast<std::uint64_t>(plan.recv_range.count) *
                             static_cast<std::uint64_t>(shape_.volume()) *
                             kRealBytes;
      plans_.push_back(std::move(plan));
    }
  }
}

bool PatchExchange::is_fine_filled(int dir) const {
  for (const DirectionPlan& plan : plans_) {
    if (plan.dir == dir) return true;
  }
  return false;
}

void PatchExchange::exchange(Communicator& comm, BrickedArray& field) {
  std::vector<BrickedArray*> one{&field};
  exchange(comm, one);
}

void PatchExchange::exchange(Communicator& comm,
                             std::vector<BrickedArray*> fields) {
  if (plans_.empty()) return;  // bilateral: nobody is sending to us either
  GMG_REQUIRE(!fields.empty(), "no fields to exchange");
  for (BrickedArray* f : fields) {
    GMG_REQUIRE(f->grid_ptr().get() == grid_.get(),
                "field does not share this engine's patch brick grid");
  }
  const std::size_t brick_bytes =
      static_cast<std::size_t>(shape_.volume()) * kRealBytes;

  trace::counter_add("exchange.bytes", bytes_per_exchange_ * fields.size());
  trace::counter_add("exchange.remote_bytes",
                     bytes_per_exchange_ * fields.size());
  trace::counter_add("exchange.calls", 1);

  std::vector<Request> requests;
  requests.reserve(plans_.size() * 2);
  {
    trace::TraceSpan span("exchange.recv_post", trace::Category::kComm);
    for (const DirectionPlan& plan : plans_) {
      const int tag = kPatchTagBase + opposite_direction(plan.dir);
      std::vector<Segment> segs;
      segs.reserve(fields.size());
      for (BrickedArray* f : fields) {
        segs.push_back(Segment{
            f->brick(plan.recv_range.first),
            static_cast<std::size_t>(plan.recv_range.count) * brick_bytes});
      }
      requests.push_back(comm.irecvv(std::move(segs), plan.neighbor, tag));
    }
  }
  {
    trace::TraceSpan span("exchange.send", trace::Category::kComm);
    for (const DirectionPlan& plan : plans_) {
      std::vector<ConstSegment> segs;
      for (BrickedArray* f : fields) {
        for (const BrickRange& run : plan.send_runs) {
          segs.emplace_back(f->brick(run.first),
                            static_cast<std::size_t>(run.count) * brick_bytes);
        }
      }
      requests.push_back(
          comm.isendv(std::move(segs), plan.neighbor, kPatchTagBase + plan.dir));
    }
  }
  if (check::enabled()) {
    std::vector<BrickRange> ghost;
    for (const DirectionPlan& plan : plans_) ghost.push_back(plan.recv_range);
    for (BrickedArray* f : fields) {
      check::on_exchange_begin(f->data(), grid_.get(), ghost);
    }
  }
  {
    trace::TraceSpan span("exchange.wait", trace::Category::kWait);
    comm.wait_all(requests);
  }
  if (check::enabled()) {
    for (BrickedArray* f : fields) check::on_exchange_finish(f->data());
  }
}

// ---------------------------------------------------------------------------
// ArrayExchange
// ---------------------------------------------------------------------------

ArrayExchange::ArrayExchange(Vec3 subdomain_extent, index_t ghost_depth,
                             const CartDecomp& decomp, int rank)
    : extent_(subdomain_extent), ghost_(ghost_depth), rank_(rank) {
  GMG_REQUIRE(ghost_ >= 1, "ghost depth must be at least 1");
  const Box interior = Box::from_extent(extent_);
  for (int dir = 0; dir < kNumDirections; ++dir) {
    if (dir == kSelfDirection) continue;
    DirectionPlan plan;
    plan.dir = dir;
    plan.neighbor = decomp.neighbor(rank, dir);
    plan.self = (plan.neighbor == rank);
    plan.recv_region = ghost_region(interior, dir, ghost_);
    plan.send_region =
        plan.self ? surface_region(interior, opposite_direction(dir), ghost_)
                  : surface_region(interior, dir, ghost_);
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(plan.recv_region.volume()) * kRealBytes;
    bytes_per_exchange_ += bytes;
    if (!plan.self) remote_bytes_ += bytes;
    plans_.push_back(plan);
  }
  // Size the per-direction staging buffers once, here: the region
  // volumes are fixed by the plan, so exchange() never allocates.
  send_staging_.resize(plans_.size());
  recv_staging_.resize(plans_.size());
  for (std::size_t p = 0; p < plans_.size(); ++p) {
    if (plans_[p].self) continue;
    send_staging_[p].reset(
        static_cast<std::size_t>(plans_[p].send_region.volume()), false);
    recv_staging_[p].reset(
        static_cast<std::size_t>(plans_[p].recv_region.volume()), false);
  }
}

void ArrayExchange::exchange(Communicator& comm, Array3D& field) {
  GMG_REQUIRE(field.extent() == extent_ && field.ghost() >= ghost_,
              "field does not match this exchange plan");
  trace::counter_add("exchange.bytes", bytes_per_exchange_);
  trace::counter_add("exchange.remote_bytes", remote_bytes_);
  trace::counter_add("exchange.calls", 1);

  std::vector<Request> requests;
  requests.reserve(plans_.size() * 2);

  {
    trace::TraceSpan span("exchange.recv_post", trace::Category::kComm);
    for (std::size_t p = 0; p < plans_.size(); ++p) {
      const DirectionPlan& plan = plans_[p];
      if (plan.self) continue;
      const std::size_t n =
          static_cast<std::size_t>(plan.recv_region.volume());
      GMG_ASSERT(recv_staging_[p].size() >= n);  // sized in the ctor
      requests.push_back(comm.irecv(recv_staging_[p].data(), n * kRealBytes,
                                    plan.neighbor,
                                    opposite_direction(plan.dir)));
    }
  }

  // Element-wise pack (the conventional approach the brick layout
  // eliminates) plus periodic self-copies.
  {
    trace::TraceSpan span("exchange.pack", trace::Category::kComm);
    std::uint64_t packed_bytes = 0;
    for (std::size_t p = 0; p < plans_.size(); ++p) {
      const DirectionPlan& plan = plans_[p];
      if (plan.self) {
        // Periodic wrap onto ourselves: ghost cell <- interior cell
        // shifted by one subdomain extent along the wrapped axes.
        const Vec3 off = direction_offset(plan.dir);
        const Vec3 shiftv{-off.x * extent_.x, -off.y * extent_.y,
                          -off.z * extent_.z};
        for_each(plan.recv_region, [&](index_t i, index_t j, index_t k) {
          field(i, j, k) = field(i + shiftv.x, j + shiftv.y, k + shiftv.z);
        });
        continue;
      }
      const std::size_t n =
          static_cast<std::size_t>(plan.send_region.volume());
      GMG_ASSERT(send_staging_[p].size() >= n);  // sized in the ctor
      real_t* dst = send_staging_[p].data();
      for_each(plan.send_region, [&](index_t i, index_t j, index_t k) {
        *dst++ = field(i, j, k);
      });
      packed_bytes += n * kRealBytes;
    }
    if (packed_bytes) trace::counter_add("exchange.bytes_packed", packed_bytes);
  }

  {
    trace::TraceSpan span("exchange.send", trace::Category::kComm);
    for (std::size_t p = 0; p < plans_.size(); ++p) {
      const DirectionPlan& plan = plans_[p];
      if (plan.self) continue;
      const std::size_t n =
          static_cast<std::size_t>(plan.send_region.volume());
      requests.push_back(comm.isend(send_staging_[p].data(), n * kRealBytes,
                                    plan.neighbor, plan.dir));
    }
  }

  {
    trace::TraceSpan span("exchange.wait", trace::Category::kWait);
    comm.wait_all(requests);
  }

  {
    trace::TraceSpan span("exchange.unpack", trace::Category::kComm);
    for (std::size_t p = 0; p < plans_.size(); ++p) {
      const DirectionPlan& plan = plans_[p];
      if (plan.self) continue;
      const real_t* src = recv_staging_[p].data();
      for_each(plan.recv_region, [&](index_t i, index_t j, index_t k) {
        field(i, j, k) = *src++;
      });
    }
  }
}

}  // namespace gmg::comm
