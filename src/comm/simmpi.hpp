// simmpi: a message-passing runtime with MPI point-to-point semantics
// (nonblocking send/recv with source+tag matching, WaitAll, barrier,
// allreduce), backed by threads instead of a network.
//
// This is the substitution for the paper's MPI layer (see DESIGN.md):
// every rank genuinely executes the decomposition, 26-neighbor
// exchange, packing/aggregation and communication-avoiding logic; only
// the wire time is modeled (src/net) rather than measured, because the
// reproduction host has no interconnect.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace gmg::comm {

/// Matches any source rank (MPI_ANY_SOURCE analogue).
inline constexpr int kAnySource = -1;

/// A scatter/gather segment of a message (iovec analogue). Messages
/// sent or received directly from brick storage use several segments;
/// the packing-free exchange is expressed this way.
struct Segment {
  void* data = nullptr;
  std::size_t bytes = 0;
};
struct ConstSegment {
  const void* data = nullptr;
  std::size_t bytes = 0;

  ConstSegment() = default;
  ConstSegment(const void* d, std::size_t b) : data(d), bytes(b) {}
  explicit ConstSegment(const Segment& s) : data(s.data), bytes(s.bytes) {}
};

namespace detail {
struct RequestState;
struct WorldState;
}  // namespace detail

/// Handle to a pending nonblocking operation.
class Request {
 public:
  Request() = default;
  bool valid() const { return state_ != nullptr; }

 private:
  friend class Communicator;
  explicit Request(std::shared_ptr<detail::RequestState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::RequestState> state_;
};

/// Per-rank communicator handle. Thread-affine: each rank thread uses
/// only its own Communicator.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Nonblocking send/recv. Buffers must stay valid until wait_all.
  /// Sends are buffered (complete immediately, MPI_Ibsend-like);
  /// receives complete when a matching send arrives.
  Request isend(const void* buf, std::size_t bytes, int dest, int tag);
  Request irecv(void* buf, std::size_t bytes, int source, int tag);

  /// Scatter/gather variants used by the packing-free brick exchange.
  Request isendv(std::vector<ConstSegment> segments, int dest, int tag);
  Request irecvv(std::vector<Segment> segments, int source, int tag);

  void wait_all(std::span<Request> requests);
  void wait(Request& request);

  /// Nonblocking completion check (MPI_Test analogue, minus the
  /// request deallocation): true once the operation has completed, and
  /// on every later call — the request stays valid, so split-phase
  /// engines can poll the same handle repeatedly. An invalid (default
  /// or consumed) request tests true, like MPI_REQUEST_NULL. Untraced:
  /// this sits in polling loops.
  bool test(Request& request);

  /// Block until any valid request in `requests` completes; return its
  /// index and invalidate that entry (MPI_Waitany semantics: the
  /// consumed request becomes MPI_REQUEST_NULL). Returns -1 when every
  /// entry is already invalid. Completion order need not match post
  /// order — drain loops call this until it returns -1.
  int wait_any(std::span<Request> requests);

  void barrier();
  double allreduce_max(double v);
  double allreduce_sum(double v);
  /// Gather one double from every rank (index == rank).
  std::vector<double> allgather(double v);

  /// Bytes/messages sent by this rank since construction (feeds the
  /// network model and the bench harnesses).
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  friend class World;
  Communicator(detail::WorldState* w, int rank) : world_(w), rank_(rank) {}

  detail::WorldState* world_ = nullptr;
  int rank_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
};

/// A world of N ranks. `run` executes `fn(comm)` on every rank
/// concurrently and rethrows the first rank failure after joining.
class World {
 public:
  explicit World(int nranks);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return nranks_; }

  void run(const std::function<void(Communicator&)>& fn);

  /// Aggregate traffic across all ranks from the last run().
  std::uint64_t total_bytes_sent() const { return total_bytes_; }
  std::uint64_t total_messages_sent() const { return total_messages_; }

 private:
  int nranks_;
  std::unique_ptr<detail::WorldState> state_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_messages_ = 0;
};

}  // namespace gmg::comm
