#include "comm/simmpi.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "trace/trace.hpp"

namespace gmg::comm {
namespace detail {

namespace {
/// How long a blocked wait may stall before we declare deadlock.
/// Generous: the host has a single core, so rank threads time-slice.
constexpr auto kDeadlockTimeout = std::chrono::seconds(300);

std::size_t total_bytes(const std::vector<Segment>& segs) {
  std::size_t n = 0;
  for (const auto& s : segs) n += s.bytes;
  return n;
}
std::size_t total_bytes(const std::vector<ConstSegment>& segs) {
  std::size_t n = 0;
  for (const auto& s : segs) n += s.bytes;
  return n;
}

void copy_flat_to_segments(const std::byte* src,
                           const std::vector<Segment>& dst) {
  for (const auto& s : dst) {
    std::memcpy(s.data, src, s.bytes);
    src += s.bytes;
  }
}

void copy_segments_to_flat(const std::vector<ConstSegment>& src,
                           std::byte* dst) {
  for (const auto& s : src) {
    std::memcpy(dst, s.data, s.bytes);
    dst += s.bytes;
  }
}

/// General gather->scatter copy across mismatched segment boundaries.
void copy_segments(const std::vector<ConstSegment>& src,
                   const std::vector<Segment>& dst) {
  std::size_t si = 0, so = 0;  // source segment index / offset
  for (const auto& d : dst) {
    std::size_t filled = 0;
    while (filled < d.bytes) {
      GMG_ASSERT(si < src.size());
      const std::size_t n = std::min(d.bytes - filled, src[si].bytes - so);
      std::memcpy(static_cast<std::byte*>(d.data) + filled,
                  static_cast<const std::byte*>(src[si].data) + so, n);
      filled += n;
      so += n;
      if (so == src[si].bytes) {
        ++si;
        so = 0;
      }
    }
  }
}
}  // namespace

struct RequestState {
  bool done = false;
};

struct PendingRecv {
  int source = kAnySource;
  int tag = 0;
  std::vector<Segment> segments;
  std::shared_ptr<RequestState> state;
};

struct UnexpectedMessage {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> data;
};

struct Mailbox {
  std::deque<PendingRecv> posted;
  std::deque<UnexpectedMessage> unexpected;
};

struct WorldState {
  int nranks = 0;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Mailbox> mailboxes;

  // Generation-counted collectives.
  int barrier_count = 0;
  std::uint64_t barrier_gen = 0;

  int reduce_count = 0;
  std::uint64_t reduce_gen = 0;
  double reduce_acc = 0.0;
  double reduce_result = 0.0;

  int gather_count = 0;
  std::uint64_t gather_gen = 0;
  std::vector<double> gather_buf;
  std::vector<double> gather_result;

  /// Set when any rank throws, so peers blocked on collectives or
  /// receives fail fast instead of riding out the deadlock timeout.
  bool aborted = false;

  explicit WorldState(int n) : nranks(n), mailboxes(static_cast<size_t>(n)) {
    gather_buf.resize(static_cast<size_t>(n));
  }

  template <typename Pred>
  void wait_until(std::unique_lock<std::mutex>& lock, Pred pred,
                  const char* what) {
    if (!cv.wait_for(lock, kDeadlockTimeout,
                     [&] { return aborted || pred(); })) {
      throw Error(std::string("simmpi: timed out in ") + what +
                  " — communication deadlock");
    }
    if (aborted && !pred()) {
      throw Error(std::string("simmpi: peer rank failed during ") + what);
    }
  }
};

}  // namespace detail

using detail::WorldState;

int Communicator::size() const { return world_->nranks; }

Request Communicator::isendv(std::vector<ConstSegment> segments, int dest,
                             int tag) {
  GMG_REQUIRE(dest >= 0 && dest < world_->nranks, "invalid destination rank");
  trace::TraceSpan span("mpi.isend", trace::Category::kComm);
  auto state = std::make_shared<detail::RequestState>();
  const std::size_t bytes = detail::total_bytes(segments);
  bytes_sent_ += bytes;
  ++messages_sent_;
  trace::counter_add("mpi.bytes_sent", bytes);
  trace::counter_add("mpi.messages_sent", 1);

  std::lock_guard<std::mutex> lock(world_->mu);
  detail::Mailbox& box = world_->mailboxes[static_cast<size_t>(dest)];
  for (auto it = box.posted.begin(); it != box.posted.end(); ++it) {
    if ((it->source == kAnySource || it->source == rank_) && it->tag == tag) {
      GMG_REQUIRE(detail::total_bytes(it->segments) == bytes,
                  "simmpi: send/recv size mismatch");
      detail::copy_segments(segments, it->segments);
      it->state->done = true;
      box.posted.erase(it);
      state->done = true;  // buffered-send semantics
      world_->cv.notify_all();
      return Request(std::move(state));
    }
  }
  detail::UnexpectedMessage msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.data.resize(bytes);
  detail::copy_segments_to_flat(segments, msg.data.data());
  box.unexpected.push_back(std::move(msg));
  state->done = true;
  return Request(std::move(state));
}

Request Communicator::isend(const void* buf, std::size_t bytes, int dest,
                            int tag) {
  return isendv({ConstSegment{buf, bytes}}, dest, tag);
}

Request Communicator::irecvv(std::vector<Segment> segments, int source,
                             int tag) {
  GMG_REQUIRE(source == kAnySource ||
                  (source >= 0 && source < world_->nranks),
              "invalid source rank");
  trace::TraceSpan span("mpi.irecv", trace::Category::kComm);
  auto state = std::make_shared<detail::RequestState>();
  const std::size_t bytes = detail::total_bytes(segments);

  std::lock_guard<std::mutex> lock(world_->mu);
  detail::Mailbox& box = world_->mailboxes[static_cast<size_t>(rank_)];
  for (auto it = box.unexpected.begin(); it != box.unexpected.end(); ++it) {
    if ((source == kAnySource || it->source == source) && it->tag == tag) {
      GMG_REQUIRE(it->data.size() == bytes,
                  "simmpi: send/recv size mismatch");
      detail::copy_flat_to_segments(it->data.data(), segments);
      box.unexpected.erase(it);
      state->done = true;
      return Request(std::move(state));
    }
  }
  box.posted.push_back(
      detail::PendingRecv{source, tag, std::move(segments), state});
  return Request(std::move(state));
}

Request Communicator::irecv(void* buf, std::size_t bytes, int source,
                            int tag) {
  return irecvv({Segment{buf, bytes}}, source, tag);
}

void Communicator::wait(Request& request) {
  Request reqs[1] = {request};
  wait_all(reqs);
}

bool Communicator::test(Request& request) {
  if (!request.valid()) return true;
  std::lock_guard<std::mutex> lock(world_->mu);
  return request.state_->done;
}

int Communicator::wait_any(std::span<Request> requests) {
  trace::TraceSpan span("mpi.wait_any", trace::Category::kWait);
  std::unique_lock<std::mutex> lock(world_->mu);
  int found = -1;
  const auto done_or_empty = [&] {
    found = -1;
    bool any_valid = false;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (!requests[i].valid()) continue;
      any_valid = true;
      if (requests[i].state_->done) {
        found = static_cast<int>(i);
        return true;
      }
    }
    return !any_valid;
  };
  world_->wait_until(lock, done_or_empty, "wait_any");
  if (found >= 0) requests[static_cast<std::size_t>(found)].state_.reset();
  return found;
}

void Communicator::wait_all(std::span<Request> requests) {
  trace::TraceSpan span("mpi.wait_all", trace::Category::kWait);
  std::unique_lock<std::mutex> lock(world_->mu);
  for (Request& r : requests) {
    if (!r.valid()) continue;
    world_->wait_until(lock, [&] { return r.state_->done; }, "wait_all");
  }
}

void Communicator::barrier() {
  trace::TraceSpan span("mpi.barrier", trace::Category::kWait);
  std::unique_lock<std::mutex> lock(world_->mu);
  const std::uint64_t gen = world_->barrier_gen;
  if (++world_->barrier_count == world_->nranks) {
    world_->barrier_count = 0;
    ++world_->barrier_gen;
    world_->cv.notify_all();
  } else {
    world_->wait_until(lock, [&] { return world_->barrier_gen != gen; },
                       "barrier");
  }
}

namespace {
template <typename Combine>
double reduce_impl(WorldState* w, int, double v, Combine combine) {
  trace::TraceSpan span("mpi.allreduce", trace::Category::kWait);
  trace::counter_add("mpi.allreduce_calls", 1);
  std::unique_lock<std::mutex> lock(w->mu);
  const std::uint64_t gen = w->reduce_gen;
  if (w->reduce_count == 0) {
    w->reduce_acc = v;
  } else {
    w->reduce_acc = combine(w->reduce_acc, v);
  }
  if (++w->reduce_count == w->nranks) {
    w->reduce_result = w->reduce_acc;
    w->reduce_count = 0;
    ++w->reduce_gen;
    w->cv.notify_all();
  } else {
    w->wait_until(lock, [&] { return w->reduce_gen != gen; }, "allreduce");
  }
  return w->reduce_result;
}
}  // namespace

double Communicator::allreduce_max(double v) {
  return reduce_impl(world_, rank_, v,
                     [](double a, double b) { return a > b ? a : b; });
}

double Communicator::allreduce_sum(double v) {
  return reduce_impl(world_, rank_, v,
                     [](double a, double b) { return a + b; });
}

std::vector<double> Communicator::allgather(double v) {
  trace::TraceSpan span("mpi.allgather", trace::Category::kWait);
  std::unique_lock<std::mutex> lock(world_->mu);
  const std::uint64_t gen = world_->gather_gen;
  world_->gather_buf[static_cast<size_t>(rank_)] = v;
  if (++world_->gather_count == world_->nranks) {
    world_->gather_result = world_->gather_buf;
    world_->gather_count = 0;
    ++world_->gather_gen;
    world_->cv.notify_all();
  } else {
    world_->wait_until(lock, [&] { return world_->gather_gen != gen; },
                       "allgather");
  }
  return world_->gather_result;
}

World::World(int nranks) : nranks_(nranks) {
  GMG_REQUIRE(nranks >= 1, "world needs at least one rank");
  state_ = std::make_unique<WorldState>(nranks);
}

World::~World() = default;

void World::run(const std::function<void(Communicator&)>& fn) {
  // Fresh mailboxes per run so leftover state cannot leak across runs.
  for (auto& box : state_->mailboxes) {
    box.posted.clear();
    box.unexpected.clear();
  }
  state_->aborted = false;

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<size_t>(nranks_));
  std::vector<Communicator> comms;
  comms.reserve(static_cast<size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r)
    comms.push_back(Communicator(state_.get(), r));

  threads.reserve(static_cast<size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      // Tag every event this rank thread records with its rank, so
      // trace sinks render one timeline pid per simulated rank.
      trace::set_rank(r);
      try {
        fn(comms[static_cast<size_t>(r)]);
      } catch (...) {
        errors[static_cast<size_t>(r)] = std::current_exception();
        {
          std::lock_guard<std::mutex> lock(state_->mu);
          state_->aborted = true;
        }
        state_->cv.notify_all();
      }
    });
  }
  for (auto& t : threads) t.join();

  total_bytes_ = 0;
  total_messages_ = 0;
  for (const auto& c : comms) {
    total_bytes_ += c.bytes_sent();
    total_messages_ += c.messages_sent();
  }
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace gmg::comm
