// Ghost-zone exchange engines for the 26-neighbor periodic
// decomposition (paper §IV-C / §V).
//
// BrickExchange exploits the communication-optimized brick ordering:
// the ghost bricks received from each neighbor occupy one contiguous
// storage range, so receives are *packing-free* — the message lands
// directly in brick storage. Sends gather whole bricks (few large
// memcpy runs instead of per-element packing). Modes:
//   kPackFree  — scatter/gather segments straight from brick storage
//   kPacked    — stage through contiguous buffers (the conventional
//                approach; kept as the ablation baseline)
//   kPerBrick  — one message per brick (no aggregation; quantifies the
//                paper's "consolidate to minimize messages")
//
// ArrayExchange is the conventional ghost-cell exchange used by the
// HPGMG-like baseline: element-wise pack, send, element-wise unpack,
// with a configurable ghost depth.
#pragma once

#include <array>
#include <vector>

#include "brick/bricked_array.hpp"
#include "comm/simmpi.hpp"
#include "common/aligned.hpp"
#include "mesh/array3d.hpp"
#include "mesh/decomposition.hpp"

namespace gmg::comm {

enum class BrickExchangeMode { kPackFree, kPacked, kPerBrick };

class BrickExchange {
 public:
  /// `grid` must be the brick grid shared by every field this engine
  /// will exchange; `decomp` is in units of ranks; `rank` is ours.
  BrickExchange(std::shared_ptr<const BrickGrid> grid, BrickShape shape,
                const CartDecomp& decomp, int rank,
                BrickExchangeMode mode = BrickExchangeMode::kPackFree);

  /// Fill all 26 ghost-brick groups of `field` from the neighbors.
  /// Equivalent to begin() + finish().
  void exchange(Communicator& comm, BrickedArray& field);

  /// Exchange several fields in one round with message aggregation
  /// across fields (one message per neighbor carrying all fields).
  void exchange(Communicator& comm, std::vector<BrickedArray*> fields);

  // Split-phase protocol (DESIGN.md §10). begin() posts the ghost
  // receives, performs the periodic self-copies synchronously, packs
  // (mode-dependent) and sends; the caller then computes on data that
  // does not touch the in-flight ghost ranges — for kPackFree the
  // receives scatter straight into ghost brick storage, so those
  // bricks are off-limits until finish() returns. finish() drains the
  // requests (wait_any order, so completion need not match post order)
  // and unpacks in kPacked mode. One exchange may be in flight per
  // engine at a time; begin() while in flight is an error.
  void begin(Communicator& comm, BrickedArray& field);
  void begin(Communicator& comm, std::vector<BrickedArray*> fields);
  /// Nonblocking: true once every message of the in-flight exchange
  /// has completed (true when none is in flight). Does not unpack —
  /// finish() must still be called.
  bool test(Communicator& comm);
  void finish(Communicator& comm);
  bool in_flight() const { return in_flight_; }

  /// Total payload bytes moved per exchange() of one field (both into
  /// messages and self-copies) — feeds the network model.
  std::uint64_t bytes_per_exchange() const { return bytes_per_exchange_; }
  /// Bytes sent to remote neighbors only (excludes periodic
  /// self-copies), per field per exchange.
  std::uint64_t remote_bytes_per_exchange() const { return remote_bytes_; }
  int remote_neighbor_count() const { return remote_neighbors_; }

  /// Ghost layers one exchange round fills on every face — the brick
  /// depth of the level's shape. Schedule recording quotes this as the
  /// exchange depth it proves reads against.
  index_t ghost_layers() const { return shape_.bx; }

 private:
  struct DirectionPlan {
    int dir = 0;
    int neighbor = -1;        // rank
    bool self = false;        // periodic wrap onto this same rank
    std::vector<BrickRange> send_runs;  // storage runs of surface bricks
    BrickRange recv_range;    // contiguous ghost range
    // For self-copies: send_runs (from surface of opposite dir) map
    // 1:1 onto the bricks of recv_range in order.
  };

  std::shared_ptr<const BrickGrid> grid_;
  BrickShape shape_;
  int rank_;
  BrickExchangeMode mode_;
  std::vector<DirectionPlan> plans_;
  std::uint64_t bytes_per_exchange_ = 0;
  std::uint64_t remote_bytes_ = 0;
  int remote_neighbors_ = 0;

  // Staging buffers for kPacked mode, one pair per direction plan.
  std::vector<AlignedBuffer<real_t>> send_staging_;
  std::vector<AlignedBuffer<real_t>> recv_staging_;

  // Split-phase state: requests and the field set of the exchange
  // begun but not yet finished.
  std::vector<Request> requests_;
  std::vector<BrickedArray*> inflight_fields_;
  bool in_flight_ = false;
};

/// Masked ghost exchange for an AMR patch part (DESIGN.md §17).
///
/// A refined patch is decomposed by the same rank grid as its parent
/// level; each rank owns the intersection of the global fine patch box
/// with its (refined) subdomain. Only *fine-filled* faces exchange: a
/// face of the part whose one-cell ghost layer is still inside the
/// global patch (i.e. a rank-internal cut through the patch). Faces on
/// the patch boundary receive prolonged coarse data instead and post
/// no messages; edge/corner ghost groups are never read by the
/// radius-1 patch smoother and are skipped entirely — the "masked"
/// part of the exchange. Sends move whole surface bricks pack-free,
/// receives land in the contiguous ghost ranges, exactly like
/// BrickExchange::kPackFree; the round is blocking (patch surfaces are
/// small, split-phase overlap buys nothing here). Messages use a
/// disjoint tag base so an in-flight BrickExchange on the parent level
/// can never collide.
class PatchExchange {
 public:
  /// `grid`/`shape`: the patch part's brick grid on this rank (null
  /// iff `part` is empty — the rank owns no patch bricks). `patch`:
  /// the global fine patch box; `part`: this rank's fine-cell part of
  /// it in global fine coordinates. `decomp` is the parent level's
  /// rank decomposition. Every part face must be entirely fine-filled
  /// or entirely patch boundary (guaranteed when the patch is
  /// brick-aligned and its faces lie strictly inside ranks).
  PatchExchange(std::shared_ptr<const BrickGrid> grid, BrickShape shape,
                const Box& patch, const Box& part, const CartDecomp& decomp,
                int rank);

  /// Fill the fine-filled ghost groups of the fields from the
  /// neighboring parts. Blocking; collective over the ranks whose
  /// parts share faces (bilateral plans, so no global participation
  /// requirement — ranks without messages return immediately).
  void exchange(Communicator& comm, BrickedArray& field);
  void exchange(Communicator& comm, std::vector<BrickedArray*> fields);

  bool is_fine_filled(int dir) const;
  int fine_filled_count() const { return static_cast<int>(plans_.size()); }
  std::uint64_t bytes_per_exchange() const { return bytes_per_exchange_; }

 private:
  struct DirectionPlan {
    int dir = 0;
    int neighbor = -1;
    std::vector<BrickRange> send_runs;  // surface bricks facing dir
    BrickRange recv_range;              // contiguous ghost range
  };

  std::shared_ptr<const BrickGrid> grid_;
  BrickShape shape_;
  int rank_ = 0;
  std::vector<DirectionPlan> plans_;
  std::uint64_t bytes_per_exchange_ = 0;
};

/// Conventional ghosted-array exchange with depth `g` ghost cells.
class ArrayExchange {
 public:
  ArrayExchange(Vec3 subdomain_extent, index_t ghost_depth,
                const CartDecomp& decomp, int rank);

  void exchange(Communicator& comm, Array3D& field);

  std::uint64_t bytes_per_exchange() const { return bytes_per_exchange_; }
  std::uint64_t remote_bytes_per_exchange() const { return remote_bytes_; }

 private:
  struct DirectionPlan {
    int dir = 0;
    int neighbor = -1;
    bool self = false;
    Box send_region;  // interior cells the neighbor needs
    Box recv_region;  // our ghost cells
  };

  Vec3 extent_;
  index_t ghost_;
  int rank_;
  std::vector<DirectionPlan> plans_;
  std::uint64_t bytes_per_exchange_ = 0;
  std::uint64_t remote_bytes_ = 0;
  std::vector<AlignedBuffer<real_t>> send_staging_;
  std::vector<AlignedBuffer<real_t>> recv_staging_;
};

}  // namespace gmg::comm
