#include "front/shard_router.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gmg::front {

std::uint64_t ShardRouter::hash64(std::string_view s) {
  // FNV-1a, 64-bit. Chosen for bit-exact portability, not speed: the
  // router hashes one short key string per request.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

ShardRouter::ShardRouter(int shards, int vnodes_per_shard) {
  GMG_REQUIRE(shards > 0, "ShardRouter: need at least one shard");
  std::vector<int> ids(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) ids[static_cast<std::size_t>(s)] = s;
  build(ids, vnodes_per_shard);
}

ShardRouter::ShardRouter(const std::vector<int>& shard_ids,
                         int vnodes_per_shard) {
  build(shard_ids, vnodes_per_shard);
}

void ShardRouter::build(const std::vector<int>& shard_ids,
                        int vnodes_per_shard) {
  GMG_REQUIRE(!shard_ids.empty(), "ShardRouter: need at least one shard");
  GMG_REQUIRE(vnodes_per_shard > 0, "ShardRouter: need at least one vnode");
  num_shards_ = static_cast<int>(shard_ids.size());
  ring_.reserve(shard_ids.size() *
                static_cast<std::size_t>(vnodes_per_shard));
  for (const int id : shard_ids) {
    for (int v = 0; v < vnodes_per_shard; ++v) {
      // A fixed naming scheme makes each shard's points a function of
      // (shard id, vnode index) only — adding or removing a shard
      // never moves another shard's points.
      const std::string label =
          "shard-" + std::to_string(id) + "#" + std::to_string(v);
      ring_.emplace_back(hash64(label), id);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

int ShardRouter::route(std::string_view key) const {
  const std::uint64_t h = hash64(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, int>& p, std::uint64_t v) {
        return p.first < v;
      });
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

}  // namespace gmg::front
