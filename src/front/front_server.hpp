// FrontServer: the socket-fronted, sharded serve tier (DESIGN.md §14).
//
//   client frames ──▶ Listener (poll loop, per-connection FrameReader)
//                        │ decode submit
//                        ▼
//                  ShardRouter: consistent hash on hierarchy_key
//                        │ affine shard
//                        ▼
//              AdmissionController (cost-aware, deadline-aware)
//               │ admit          │ shed
//               ▼                ├─▶ spill to least-loaded shard that
//        shard SolveService      │   admits (pays cold setup — the
//        (own HierarchyCache     │   cache, not compute, was the
//         + BrickArena + pool)   │   bottleneck), else
//               │ on_complete    └─▶ REJECT(kOverload) frame, fast
//               ▼
//        response frame queued on the connection, flushed by the
//        poll loop
//
// Sharding is in-process: each shard is an isolated serve::SolveService
// (its own executor pool, hierarchy cache, and brick arena), so a
// shard is exactly the HierarchyCache affinity unit — the router sends
// every request for one problem shape to the shard whose cache holds
// its hierarchy. One poll thread owns all sockets; solve executors
// never touch a socket (completion callbacks enqueue bytes and wake
// the poll loop through a self-pipe).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "front/admission.hpp"
#include "front/shard_router.hpp"
#include "front/wire.hpp"
#include "serve/service.hpp"

namespace gmg::front {

struct FrontConfig {
  /// In-process shards (isolated SolveService + caches each).
  /// Env: GMG_FRONT_SHARDS.
  int shards = 2;
  /// Per-shard serve configuration. queue_capacity is raised to the
  /// admission inflight cap automatically so an admitted request can
  /// never bounce off the serve queue.
  serve::ServeConfig shard;
  /// Per-shard admission control; max_inflight from
  /// GMG_FRONT_MAX_INFLIGHT when set.
  AdmissionConfig admission;
  /// When the cache-affine shard sheds, offer the request to the
  /// least-loaded shard that admits it — a cold setup there beats a
  /// rejection when compute, not the cache, has headroom.
  bool spill_to_cold = true;
  int vnodes_per_shard = 64;
  int listen_backlog = 64;
  /// Cap on simultaneously open client connections.
  std::size_t max_connections = 256;

  /// Defaults with GMG_FRONT_SHARDS / GMG_FRONT_MAX_INFLIGHT applied.
  static FrontConfig from_env();
};

/// Point-in-time front counters (listener level plus per-shard
/// admission + service, in wire form so kStats serves the same data).
struct FrontStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t protocol_errors = 0;  // corrupt streams, closed
  std::uint64_t submits = 0;
  std::uint64_t sheds = 0;   // rejected kOverload (no spill taken)
  std::uint64_t spills = 0;  // admitted on a non-affine shard
  std::uint64_t bad_requests = 0;
  wire::StatsFrame shards;
};

class FrontServer {
 public:
  explicit FrontServer(FrontConfig cfg = {});
  ~FrontServer();  // stop()
  FrontServer(const FrontServer&) = delete;
  FrontServer& operator=(const FrontServer&) = delete;

  /// Register an operator on every shard (and for front-side cost /
  /// key computation). Register before serving traffic.
  void register_operator(const std::string& id, const GmgOptions& options);
  void register_operator(const std::string& id,
                         const serve::OperatorSpec& spec);

  /// Bind a Unix-domain socket at `path` (any stale socket file is
  /// replaced) and start serving. One listen_* call per server.
  void listen_unix(const std::string& path);

  /// Bind 127.0.0.1:`port` (0 = ephemeral) and start serving;
  /// returns the bound port.
  std::uint16_t listen_tcp(std::uint16_t port);

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Graceful stop: refuse new submits (kShuttingDown), drain every
  /// shard, flush remaining responses, close sockets. Idempotent.
  void stop();

  FrontStats stats() const;

  /// The shard the router picks for this request — exposed so tests
  /// can pin affinity and find the service that ran a request.
  int shard_for(const serve::DomainSpec& domain,
                const std::string& operator_id) const;
  serve::SolveService& shard_service(int shard);
  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ShardRouter& router() const { return router_; }

 private:
  struct Connection {
    int fd = -1;
    wire::FrameReader reader;
    std::mutex mu;  // guards outbox/out_off/closed (poll + executors)
    std::deque<std::vector<std::uint8_t>> outbox;
    std::size_t out_off = 0;  // bytes of outbox.front() already sent
    bool closed = false;
  };

  struct Shard {
    std::unique_ptr<serve::SolveService> service;
    std::unique_ptr<AdmissionController> admission;
    std::atomic<std::uint64_t> spilled_in{0};
  };

  void start_poll_thread();
  void poll_loop();
  void accept_ready();
  void read_ready(const std::shared_ptr<Connection>& conn);
  void write_ready(const std::shared_ptr<Connection>& conn);
  void close_connection(const std::shared_ptr<Connection>& conn);
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    wire::Frame frame);
  void handle_submit(const std::shared_ptr<Connection>& conn,
                     wire::Frame frame);
  void send_frame(const std::shared_ptr<Connection>& conn,
                  std::vector<std::uint8_t> bytes);
  void reject(const std::shared_ptr<Connection>& conn, std::uint64_t id,
              wire::RejectReason reason, const std::string& detail);
  wire::StatsFrame shard_stats() const;
  void wake();

  FrontConfig cfg_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex operators_mu_;
  std::map<std::string, GmgOptions> operator_options_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] read, [1] write
  std::string unix_path_;       // unlinked on stop
  std::thread poll_thread_;
  /// Owned by the poll thread (no lock): fd -> connection.
  std::map<int, std::shared_ptr<Connection>> conns_;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_open_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> submits_{0};
  std::atomic<std::uint64_t> sheds_{0};
  std::atomic<std::uint64_t> spills_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
};

}  // namespace gmg::front
