#include "front/admission.hpp"

#include <algorithm>

#include "trace/trace.hpp"

namespace gmg::front {

double AdmissionController::estimate_cost(Vec3 global_extent, int levels) {
  return static_cast<double>(global_extent.volume()) *
         static_cast<double>(std::max(1, levels));
}

double AdmissionController::wait_estimate_locked() const {
  if (cost_per_second_ <= 0) return 0;  // no observation yet
  const double rate =
      cost_per_second_ * static_cast<double>(std::max(1, cfg_.parallelism));
  return inflight_cost_ / rate;
}

AdmissionController::Decision AdmissionController::try_admit(
    double cost, double deadline_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (inflight_ >= cfg_.max_inflight) {
    ++shed_overload_;
    trace::counter_add("front.shed_overload", 1);
    return Decision::kShedOverload;
  }
  double cost_cap = cfg_.max_inflight_cost;
  if (cost_cap <= 0) {
    // Until configured, cap outstanding cost at max_inflight requests
    // of the largest size seen — pure count-limiting for a uniform
    // mix, but a burst of giants cannot stack behind small ones.
    cost_cap = static_cast<double>(cfg_.max_inflight) *
               std::max(max_cost_seen_, cost);
  }
  if (inflight_ > 0 && inflight_cost_ + cost > cost_cap) {
    ++shed_overload_;
    trace::counter_add("front.shed_overload", 1);
    return Decision::kShedOverload;
  }
  if (cfg_.deadline_headroom > 0 && deadline_seconds > 0 &&
      wait_estimate_locked() > cfg_.deadline_headroom * deadline_seconds) {
    ++shed_deadline_;
    trace::counter_add("front.shed_deadline", 1);
    return Decision::kShedDeadline;
  }
  ++admitted_;
  ++inflight_;
  inflight_cost_ += cost;
  max_cost_seen_ = std::max(max_cost_seen_, cost);
  trace::counter_add("front.admitted", 1);
  return Decision::kAdmit;
}

void AdmissionController::on_complete(double cost, double solve_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  inflight_ = inflight_ > 0 ? inflight_ - 1 : 0;
  inflight_cost_ = std::max(0.0, inflight_cost_ - cost);
  if (solve_seconds > 0) {
    const double observed = cost / solve_seconds;
    cost_per_second_ = cost_per_second_ <= 0
                           ? observed
                           : 0.8 * cost_per_second_ + 0.2 * observed;
  }
}

double AdmissionController::estimated_wait_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wait_estimate_locked();
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.admitted = admitted_;
  s.shed_overload = shed_overload_;
  s.shed_deadline = shed_deadline_;
  s.inflight = inflight_;
  s.inflight_cost = inflight_cost_;
  s.cost_per_second = cost_per_second_;
  return s;
}

}  // namespace gmg::front
