// FrontClient: a blocking-socket client for the front wire protocol.
//
// One connection, two independently usable halves: send_* (guarded by
// a send mutex) and read_* (single reader). The saturation bench runs
// them from different threads — an open-loop sender thread and a
// response-reader thread — while tests use the synchronous
// submit_and_wait()/ping()/fetch_stats() convenience calls on an
// otherwise idle connection.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "front/wire.hpp"

namespace gmg::front {

class FrontClient {
 public:
  FrontClient() = default;
  ~FrontClient();  // close()
  FrontClient(const FrontClient&) = delete;
  FrontClient& operator=(const FrontClient&) = delete;

  void connect_unix(const std::string& path);
  void connect_tcp(std::uint16_t port);  // 127.0.0.1:port
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one encoded frame (thread-safe: senders serialize on an
  /// internal mutex; a frame is always written contiguously).
  void send_frame(const std::vector<std::uint8_t>& bytes);
  void send_submit(const wire::SubmitFrame& f);

  /// Block until a complete frame arrives. false on EOF, a corrupt
  /// stream, or timeout (timeout_ms < 0 = wait forever). Single
  /// reader only.
  bool read_frame(wire::Frame* out, int timeout_ms = -1);

  /// One decoded server response to a submit.
  struct Response {
    std::uint64_t request_id = 0;
    bool rejected = false;
    wire::ResultFrame result;  // valid when !rejected
    wire::RejectFrame reject;  // valid when rejected
  };

  /// Read frames until a kResult/kReject arrives (other frame types
  /// are skipped). false on EOF/corrupt/timeout.
  bool read_response(Response* out, int timeout_ms = -1);

  // Synchronous conveniences — idle connection only (they assume the
  // next response frame answers this call).
  Response submit_and_wait(const wire::SubmitFrame& f, int timeout_ms = -1);
  bool ping(std::uint64_t nonce, int timeout_ms = -1);
  bool fetch_stats(wire::StatsFrame* out, int timeout_ms = -1);

  const std::string& last_error() const { return last_error_; }

 private:
  int fd_ = -1;
  std::mutex send_mu_;
  wire::FrameReader reader_;
  std::string last_error_;
};

}  // namespace gmg::front
