#include "front/wire.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#include "common/error.hpp"

namespace gmg::front::wire {

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kSubmit:
      return "submit";
    case FrameType::kResult:
      return "result";
    case FrameType::kReject:
      return "reject";
    case FrameType::kPing:
      return "ping";
    case FrameType::kPong:
      return "pong";
    case FrameType::kStatsRequest:
      return "stats_request";
    case FrameType::kStats:
      return "stats";
  }
  return "unknown";
}

const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kOverload:
      return "overload";
    case RejectReason::kShuttingDown:
      return "shutting_down";
    case RejectReason::kBadRequest:
      return "bad_request";
    case RejectReason::kUnknownOperator:
      return "unknown_operator";
  }
  return "unknown";
}

namespace {

bool valid_frame_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kSubmit) &&
         t <= static_cast<std::uint8_t>(FrameType::kStats);
}

/// Little-endian payload builder. Appends to a byte vector that
/// starts with a placeholder header; seal() patches the length in.
class Writer {
 public:
  explicit Writer(FrameType type) {
    buf_.reserve(64);
    put_u32(kMagic);
    put_u8(kVersion);
    put_u8(static_cast<std::uint8_t>(type));
    put_u16(0);  // reserved flags
    put_u32(0);  // payload length, patched by seal()
  }

  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }
  void put_string(const std::string& s) {
    GMG_REQUIRE(s.size() <= kMaxStringBytes, "wire string too long");
    put_u16(static_cast<std::uint16_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void put_reals(const std::vector<real_t>& v) {
    GMG_REQUIRE(v.size() <= kMaxPayloadBytes / sizeof(real_t),
                "wire real array too long");
    put_u32(static_cast<std::uint32_t>(v.size()));
    for (real_t x : v) put_f64(x);
  }

  std::vector<std::uint8_t> seal() {
    const std::size_t payload = buf_.size() - kHeaderBytes;
    GMG_REQUIRE(payload <= kMaxPayloadBytes, "wire frame over payload cap");
    const std::uint32_t len = static_cast<std::uint32_t>(payload);
    for (int i = 0; i < 4; ++i)
      buf_[8 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(len >> (8 * i));
    return std::move(buf_);
  }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian payload reader. Every get_* returns
/// false on underflow; nothing is allocated from a length that has
/// not been proven to fit in the bytes actually present.
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t n) : p_(data), n_(n) {}

  std::size_t remaining() const { return n_ - off_; }

  bool get_u8(std::uint8_t* v) {
    if (remaining() < 1) return false;
    *v = p_[off_++];
    return true;
  }
  bool get_u16(std::uint16_t* v) {
    if (remaining() < 2) return false;
    *v = static_cast<std::uint16_t>(p_[off_] |
                                    (static_cast<std::uint16_t>(p_[off_ + 1])
                                     << 8));
    off_ += 2;
    return true;
  }
  bool get_u32(std::uint32_t* v) {
    if (remaining() < 4) return false;
    std::uint32_t r = 0;
    for (int i = 0; i < 4; ++i)
      r |= static_cast<std::uint32_t>(p_[off_ + static_cast<std::size_t>(i)])
           << (8 * i);
    off_ += 4;
    *v = r;
    return true;
  }
  bool get_u64(std::uint64_t* v) {
    if (remaining() < 8) return false;
    std::uint64_t r = 0;
    for (int i = 0; i < 8; ++i)
      r |= static_cast<std::uint64_t>(p_[off_ + static_cast<std::size_t>(i)])
           << (8 * i);
    off_ += 8;
    *v = r;
    return true;
  }
  bool get_i32(std::int32_t* v) {
    std::uint32_t u = 0;
    if (!get_u32(&u)) return false;
    *v = static_cast<std::int32_t>(u);
    return true;
  }
  bool get_f64(double* v) {
    std::uint64_t u = 0;
    if (!get_u64(&u)) return false;
    *v = std::bit_cast<double>(u);
    return true;
  }
  bool get_string(std::string* s) {
    std::uint16_t len = 0;
    if (!get_u16(&len)) return false;
    if (len > kMaxStringBytes || remaining() < len) return false;
    s->assign(reinterpret_cast<const char*>(p_ + off_), len);
    off_ += len;
    return true;
  }
  bool get_reals(std::vector<real_t>* v) {
    std::uint32_t count = 0;
    if (!get_u32(&count)) return false;
    // The count must be backed by bytes already received — the
    // allocation below is bounded by the frame's validated payload
    // length, never by the count alone.
    if (remaining() / sizeof(real_t) < count) return false;
    v->resize(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      double x = 0;
      get_f64(&x);  // cannot fail: remaining() was checked above
      (*v)[i] = x;
    }
    return true;
  }

 private:
  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t off_ = 0;
};

bool fail(std::string* error, const char* why) {
  if (error) *error = why;
  return false;
}

}  // namespace

std::vector<std::uint8_t> encode_submit(const SubmitFrame& f) {
  Writer w(FrameType::kSubmit);
  w.put_u64(f.request_id);
  w.put_i32(static_cast<std::int32_t>(f.global_extent.x));
  w.put_i32(static_cast<std::int32_t>(f.global_extent.y));
  w.put_i32(static_cast<std::int32_t>(f.global_extent.z));
  w.put_i32(static_cast<std::int32_t>(f.rank_grid.x));
  w.put_i32(static_cast<std::int32_t>(f.rank_grid.y));
  w.put_i32(static_cast<std::int32_t>(f.rank_grid.z));
  w.put_f64(f.tolerance);
  w.put_i32(f.max_vcycles);
  w.put_i32(f.priority);
  w.put_f64(f.deadline_seconds);
  w.put_u8(f.return_solution ? 1 : 0);
  w.put_string(f.operator_id);
  w.put_reals(f.rhs_samples);
  return w.seal();
}

std::vector<std::uint8_t> encode_result(const ResultFrame& f) {
  Writer w(FrameType::kResult);
  w.put_u64(f.request_id);
  w.put_u8(f.status);
  w.put_u8(f.cache_hit ? 1 : 0);
  w.put_u8(f.converged ? 1 : 0);
  w.put_i32(f.vcycles);
  w.put_f64(f.final_residual);
  w.put_f64(f.queue_seconds);
  w.put_f64(f.setup_seconds);
  w.put_f64(f.solve_seconds);
  w.put_f64(f.total_seconds);
  w.put_string(f.error);
  w.put_reals(f.solution);
  return w.seal();
}

std::vector<std::uint8_t> encode_reject(const RejectFrame& f) {
  Writer w(FrameType::kReject);
  w.put_u64(f.request_id);
  w.put_u16(static_cast<std::uint16_t>(f.reason));
  w.put_string(f.detail);
  return w.seal();
}

std::vector<std::uint8_t> encode_ping(std::uint64_t nonce) {
  Writer w(FrameType::kPing);
  w.put_u64(nonce);
  return w.seal();
}

std::vector<std::uint8_t> encode_pong(std::uint64_t nonce) {
  Writer w(FrameType::kPong);
  w.put_u64(nonce);
  return w.seal();
}

std::vector<std::uint8_t> encode_stats_request() {
  Writer w(FrameType::kStatsRequest);
  return w.seal();
}

std::vector<std::uint8_t> encode_stats(const StatsFrame& f) {
  Writer w(FrameType::kStats);
  w.put_u32(static_cast<std::uint32_t>(f.shards.size()));
  for (const ShardStatsEntry& s : f.shards) {
    w.put_u32(s.shard_id);
    w.put_u64(s.accepted);
    w.put_u64(s.completed);
    w.put_u64(s.cancelled);
    w.put_u64(s.expired);
    w.put_u64(s.rejected);
    w.put_u64(s.failed);
    w.put_u64(s.shed_overload);
    w.put_u64(s.spilled_in);
    w.put_u64(s.queue_depth);
    w.put_u64(s.inflight);
    w.put_u64(s.batch_solves);
    w.put_u64(s.batch_requests);
    w.put_f64(s.inflight_cost);
    w.put_f64(s.cache_hit_ratio);
  }
  return w.seal();
}

bool decode_submit(const std::vector<std::uint8_t>& payload, SubmitFrame* out,
                   std::string* error) {
  Cursor c(payload.data(), payload.size());
  std::int32_t gx = 0, gy = 0, gz = 0, rx = 0, ry = 0, rz = 0;
  std::uint8_t flags = 0;
  if (!c.get_u64(&out->request_id) || !c.get_i32(&gx) || !c.get_i32(&gy) ||
      !c.get_i32(&gz) || !c.get_i32(&rx) || !c.get_i32(&ry) ||
      !c.get_i32(&rz) || !c.get_f64(&out->tolerance) ||
      !c.get_i32(&out->max_vcycles) || !c.get_i32(&out->priority) ||
      !c.get_f64(&out->deadline_seconds) || !c.get_u8(&flags) ||
      !c.get_string(&out->operator_id) || !c.get_reals(&out->rhs_samples)) {
    return fail(error, "truncated submit payload");
  }
  if (c.remaining() != 0) return fail(error, "trailing bytes after submit");
  out->global_extent = {gx, gy, gz};
  out->rank_grid = {rx, ry, rz};
  out->return_solution = (flags & 1) != 0;
  if (gx <= 0 || gy <= 0 || gz <= 0 || rx <= 0 || ry <= 0 || rz <= 0)
    return fail(error, "non-positive extent or rank grid");
  if (out->operator_id.empty()) return fail(error, "empty operator id");
  if (out->rhs_samples.size() !=
      static_cast<std::size_t>(out->global_extent.volume()))
    return fail(error, "rhs sample count does not match global extent");
  if (!(out->tolerance >= 0) || !std::isfinite(out->tolerance))
    return fail(error, "bad tolerance");
  if (out->max_vcycles <= 0) return fail(error, "non-positive max_vcycles");
  if (!std::isfinite(out->deadline_seconds) || out->deadline_seconds < 0)
    return fail(error, "bad deadline");
  return true;
}

bool decode_result(const std::vector<std::uint8_t>& payload, ResultFrame* out,
                   std::string* error) {
  Cursor c(payload.data(), payload.size());
  std::uint8_t cache_hit = 0, converged = 0;
  if (!c.get_u64(&out->request_id) || !c.get_u8(&out->status) ||
      !c.get_u8(&cache_hit) || !c.get_u8(&converged) ||
      !c.get_i32(&out->vcycles) || !c.get_f64(&out->final_residual) ||
      !c.get_f64(&out->queue_seconds) || !c.get_f64(&out->setup_seconds) ||
      !c.get_f64(&out->solve_seconds) || !c.get_f64(&out->total_seconds) ||
      !c.get_string(&out->error) || !c.get_reals(&out->solution)) {
    return fail(error, "truncated result payload");
  }
  if (c.remaining() != 0) return fail(error, "trailing bytes after result");
  out->cache_hit = cache_hit != 0;
  out->converged = converged != 0;
  return true;
}

bool decode_reject(const std::vector<std::uint8_t>& payload, RejectFrame* out,
                   std::string* error) {
  Cursor c(payload.data(), payload.size());
  std::uint16_t reason = 0;
  if (!c.get_u64(&out->request_id) || !c.get_u16(&reason) ||
      !c.get_string(&out->detail)) {
    return fail(error, "truncated reject payload");
  }
  if (c.remaining() != 0) return fail(error, "trailing bytes after reject");
  if (reason < static_cast<std::uint16_t>(RejectReason::kOverload) ||
      reason > static_cast<std::uint16_t>(RejectReason::kUnknownOperator))
    return fail(error, "unknown reject reason");
  out->reason = static_cast<RejectReason>(reason);
  return true;
}

bool decode_nonce(const std::vector<std::uint8_t>& payload,
                  std::uint64_t* nonce, std::string* error) {
  Cursor c(payload.data(), payload.size());
  if (!c.get_u64(nonce)) return fail(error, "truncated ping payload");
  if (c.remaining() != 0) return fail(error, "trailing bytes after ping");
  return true;
}

bool decode_stats(const std::vector<std::uint8_t>& payload, StatsFrame* out,
                  std::string* error) {
  Cursor c(payload.data(), payload.size());
  std::uint32_t count = 0;
  if (!c.get_u32(&count)) return fail(error, "truncated stats payload");
  // 116 bytes per entry; reject counts the payload cannot back before
  // reserving anything.
  if (c.remaining() / 116 < count)
    return fail(error, "stats shard count exceeds payload");
  out->shards.clear();
  out->shards.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ShardStatsEntry s;
    if (!c.get_u32(&s.shard_id) || !c.get_u64(&s.accepted) ||
        !c.get_u64(&s.completed) || !c.get_u64(&s.cancelled) ||
        !c.get_u64(&s.expired) || !c.get_u64(&s.rejected) ||
        !c.get_u64(&s.failed) || !c.get_u64(&s.shed_overload) ||
        !c.get_u64(&s.spilled_in) || !c.get_u64(&s.queue_depth) ||
        !c.get_u64(&s.inflight) || !c.get_u64(&s.batch_solves) ||
        !c.get_u64(&s.batch_requests) || !c.get_f64(&s.inflight_cost) ||
        !c.get_f64(&s.cache_hit_ratio)) {
      return fail(error, "truncated stats entry");
    }
    out->shards.push_back(s);
  }
  if (c.remaining() != 0) return fail(error, "trailing bytes after stats");
  return true;
}

void FrameReader::poison(const std::string& why) {
  corrupt_ = true;
  error_ = why;
  buf_.clear();
  buf_.shrink_to_fit();
}

void FrameReader::feed(const std::uint8_t* data, std::size_t n) {
  if (corrupt_) return;  // stream is dead; drop everything
  buf_.insert(buf_.end(), data, data + n);
  // Validate the header as soon as it is complete so a garbage or
  // oversized length prefix can never grow the buffer: after this
  // check the buffer is bounded by kHeaderBytes + validated length.
  if (buf_.size() >= kHeaderBytes) {
    std::uint32_t magic = 0, len = 0;
    std::uint16_t flags = 0;
    Cursor c(buf_.data(), kHeaderBytes);
    c.get_u32(&magic);
    std::uint8_t version = 0, type = 0;
    c.get_u8(&version);
    c.get_u8(&type);
    c.get_u16(&flags);
    c.get_u32(&len);
    if (magic != kMagic) return poison("bad magic");
    if (version != kVersion) return poison("bad version");
    if (flags != 0) return poison("nonzero reserved flags");
    if (!valid_frame_type(type)) return poison("unknown frame type");
    if (len > max_payload_) return poison("oversized frame length");
  }
}

bool FrameReader::next(Frame* out) {
  if (corrupt_ || buf_.size() < kHeaderBytes) return false;
  std::uint32_t len = 0;
  {
    Cursor c(buf_.data() + 8, 4);
    c.get_u32(&len);
  }
  const std::size_t total = kHeaderBytes + len;
  if (buf_.size() < total) return false;  // mid-frame; wait for more
  out->type = static_cast<FrameType>(buf_[5]);
  out->payload.assign(buf_.begin() + kHeaderBytes, buf_.begin() + total);
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(total));
  // Re-validate the header now at the front of the buffer (feed()
  // only checks the first header after each append).
  if (buf_.size() >= kHeaderBytes) {
    std::vector<std::uint8_t> rest;
    rest.swap(buf_);
    feed(rest.data(), rest.size());
  }
  return true;
}

std::vector<real_t> sample_rhs(
    Vec3 extent, const std::function<real_t(real_t, real_t, real_t)>& f) {
  GMG_REQUIRE(extent.x > 0 && extent.y > 0 && extent.z > 0,
              "sample_rhs: non-positive extent");
  // Exactly GmgSolver::set_rhs's coordinate expressions: one h for
  // all axes, cell centers at (index + 0.5) * h.
  const real_t h = 1.0 / static_cast<real_t>(extent.x);
  std::vector<real_t> samples;
  samples.reserve(static_cast<std::size_t>(extent.volume()));
  for (index_t k = 0; k < extent.z; ++k) {
    for (index_t j = 0; j < extent.y; ++j) {
      for (index_t i = 0; i < extent.x; ++i) {
        const real_t px = (static_cast<real_t>(i) + 0.5) * h;
        const real_t py = (static_cast<real_t>(j) + 0.5) * h;
        const real_t pz = (static_cast<real_t>(k) + 0.5) * h;
        samples.push_back(f(px, py, pz));
      }
    }
  }
  return samples;
}

std::function<real_t(real_t, real_t, real_t)> rhs_from_samples(
    Vec3 extent, std::shared_ptr<const std::vector<real_t>> samples) {
  GMG_REQUIRE(samples != nullptr &&
                  samples->size() ==
                      static_cast<std::size_t>(extent.volume()),
              "rhs_from_samples: sample count != extent volume");
  // Invert px = (gi + 0.5) * h, h = 1/extent.x (shared by all axes):
  // px * extent.x lands within an ulp of gi + 0.5, so rounding
  // px * extent.x - 0.5 to the nearest integer recovers gi exactly.
  const real_t nx = static_cast<real_t>(extent.x);
  return [extent, nx, samples = std::move(samples)](real_t px, real_t py,
                                                    real_t pz) -> real_t {
    const index_t i = static_cast<index_t>(std::llround(px * nx - 0.5));
    const index_t j = static_cast<index_t>(std::llround(py * nx - 0.5));
    const index_t k = static_cast<index_t>(std::llround(pz * nx - 0.5));
    GMG_REQUIRE(i >= 0 && i < extent.x && j >= 0 && j < extent.y && k >= 0 &&
                    k < extent.z,
                "rhs_from_samples: coordinate outside the sampled domain");
    return (*samples)[static_cast<std::size_t>(
        i + extent.x * (j + extent.y * k))];
  };
}

}  // namespace gmg::front::wire
