// Wire protocol for the socket-fronted serve tier (DESIGN.md §14).
//
// Length-prefixed binary frames over a byte stream (TCP or Unix
// domain socket). Every frame is a fixed 12-byte header followed by a
// typed payload:
//
//   offset  size  field
//        0     4  magic 0x31474D46 ("FMG1" on the wire)
//        4     1  version (kVersion)
//        5     1  frame type (FrameType)
//        6     2  flags, reserved, must be 0
//        8     4  payload length in bytes, <= kMaxPayloadBytes
//
// All multi-byte integers are little-endian, encoded/decoded byte by
// byte (the host's endianness never touches the wire); floating-point
// values travel as the IEEE-754 bit pattern of a real_t (f64) so a
// round trip is bitwise exact — the foundation of the front tier's
// "socket solve == direct submit" identity guarantee.
//
// Robustness contract (test_wire): malformed input — bad magic, bad
// version, nonzero reserved flags, an oversized length prefix, a
// truncated header or payload, a mid-frame disconnect — must never
// crash the decoder and must never cause an allocation proportional
// to an attacker-controlled length. FrameReader validates the header
// before buffering a payload, caps payload length *before* any
// allocation, and every payload decoder bounds-checks against bytes
// actually received (counts are cross-checked against the remaining
// payload, never trusted on their own).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace gmg::front::wire {

inline constexpr std::uint32_t kMagic = 0x31474D46u;  // "FMG1" little-endian
// v2: ShardStatsEntry grew batch_solves/batch_requests (coalescer
// occupancy). Version mismatches poison the stream, so v1 peers must
// upgrade in lockstep — the protocol has no mixed-version mode.
inline constexpr std::uint8_t kVersion = 2;
inline constexpr std::size_t kHeaderBytes = 12;
/// Hard cap on a frame payload (64 MiB covers a 192^3 solution copy;
/// anything larger is rejected before allocation).
inline constexpr std::size_t kMaxPayloadBytes = std::size_t{1} << 26;
/// Cap on embedded strings (operator ids, error text).
inline constexpr std::size_t kMaxStringBytes = 4096;

enum class FrameType : std::uint8_t {
  kSubmit = 1,        // client -> server: solve request
  kResult = 2,        // server -> client: completed request
  kReject = 3,        // server -> client: refused request (fast path)
  kPing = 4,          // client -> server: liveness probe
  kPong = 5,          // server -> client: ping echo
  kStatsRequest = 6,  // client -> server: per-shard counters
  kStats = 7,         // server -> client: stats response
};
const char* frame_type_name(FrameType t);

/// Why a submit was refused without running. kOverload is the
/// load-shedder's fast rejection (REJECTED_OVERLOAD): the client
/// should back off, not retry immediately.
enum class RejectReason : std::uint16_t {
  kOverload = 1,         // admission control shed the request
  kShuttingDown = 2,     // server is draining
  kBadRequest = 3,       // malformed/inconsistent submit payload
  kUnknownOperator = 4,  // operator_id not registered
};
const char* reject_reason_name(RejectReason r);

/// A complete decoded frame: type plus raw payload bytes (decode with
/// the matching decode_* function).
struct Frame {
  FrameType type = FrameType::kPing;
  std::vector<std::uint8_t> payload;
};

// ---------------------------------------------------------------------------
// Typed payloads.
// ---------------------------------------------------------------------------

/// Solve request. The RHS travels as samples at the finest-level cell
/// centers (x-fastest over global_extent) rather than as code: the
/// client evaluates its RHS function locally with sample_rhs(), and
/// the server reconstructs an equivalent coordinate function with
/// rhs_from_samples() — both sides see byte-identical inputs, so the
/// solve is bitwise identical to a direct in-process submit.
struct SubmitFrame {
  std::uint64_t request_id = 0;
  Vec3 global_extent{0, 0, 0};
  Vec3 rank_grid{1, 1, 1};
  std::string operator_id = "poisson";
  real_t tolerance = 1e-10;
  std::int32_t max_vcycles = 100;
  std::int32_t priority = 0;
  real_t deadline_seconds = 0;
  bool return_solution = false;
  /// One sample per global cell, x-fastest; size must equal
  /// global_extent.volume().
  std::vector<real_t> rhs_samples;
};

struct ResultFrame {
  std::uint64_t request_id = 0;
  std::uint8_t status = 0;  // serve::RequestStatus
  bool cache_hit = false;
  bool converged = false;
  std::int32_t vcycles = 0;
  real_t final_residual = 0;
  double queue_seconds = 0;
  double setup_seconds = 0;
  double solve_seconds = 0;
  double total_seconds = 0;
  std::vector<real_t> solution;  // empty unless requested and done
  std::string error;
};

struct RejectFrame {
  std::uint64_t request_id = 0;
  RejectReason reason = RejectReason::kOverload;
  std::string detail;
};

/// Per-shard counters for the kStats response (admission + service,
/// flattened for the wire).
struct ShardStatsEntry {
  std::uint32_t shard_id = 0;
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t expired = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed_overload = 0;  // admission fast rejections
  std::uint64_t spilled_in = 0;     // overflow routed here cold
  std::uint64_t queue_depth = 0;
  std::uint64_t inflight = 0;
  /// Coalescer occupancy (v2): batched solve invocations and the
  /// requests they carried; requests/solves = mean batch size.
  std::uint64_t batch_solves = 0;
  std::uint64_t batch_requests = 0;
  double inflight_cost = 0;
  double cache_hit_ratio = 0;
};

struct StatsFrame {
  std::vector<ShardStatsEntry> shards;
};

// ---------------------------------------------------------------------------
// Encoding: each returns one complete frame (header + payload).
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_submit(const SubmitFrame& f);
std::vector<std::uint8_t> encode_result(const ResultFrame& f);
std::vector<std::uint8_t> encode_reject(const RejectFrame& f);
std::vector<std::uint8_t> encode_ping(std::uint64_t nonce);
std::vector<std::uint8_t> encode_pong(std::uint64_t nonce);
std::vector<std::uint8_t> encode_stats_request();
std::vector<std::uint8_t> encode_stats(const StatsFrame& f);

// ---------------------------------------------------------------------------
// Decoding: false = malformed payload (error filled in, output
// partially written but not to be used). Never throws, never
// allocates from an unvalidated length.
// ---------------------------------------------------------------------------

bool decode_submit(const std::vector<std::uint8_t>& payload, SubmitFrame* out,
                   std::string* error);
bool decode_result(const std::vector<std::uint8_t>& payload, ResultFrame* out,
                   std::string* error);
bool decode_reject(const std::vector<std::uint8_t>& payload, RejectFrame* out,
                   std::string* error);
bool decode_nonce(const std::vector<std::uint8_t>& payload,
                  std::uint64_t* nonce, std::string* error);
bool decode_stats(const std::vector<std::uint8_t>& payload, StatsFrame* out,
                  std::string* error);

// ---------------------------------------------------------------------------
// Incremental frame extraction from a byte stream.
// ---------------------------------------------------------------------------

/// Per-connection framing state machine: feed() raw received bytes,
/// pop complete frames with next(). A header that fails validation
/// (bad magic/version/flags, oversized length) poisons the stream —
/// corrupt() turns true, further bytes are dropped, and the caller
/// should close the connection. Buffered memory is bounded by one
/// valid header plus its validated payload length.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  void feed(const std::uint8_t* data, std::size_t n);

  /// Extract the next complete frame; false when none is buffered yet
  /// or the stream is corrupt.
  bool next(Frame* out);

  bool corrupt() const { return corrupt_; }
  const std::string& error() const { return error_; }
  /// Bytes buffered but not yet consumed (mid-frame on a clean
  /// stream: a disconnect now is a truncated frame, which simply
  /// never completes).
  std::size_t buffered() const { return buf_.size(); }

 private:
  void poison(const std::string& why);

  std::size_t max_payload_;
  std::vector<std::uint8_t> buf_;
  bool corrupt_ = false;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Sampled-RHS helpers (the bitwise-identity bridge to GmgSolver).
// ---------------------------------------------------------------------------

/// Evaluate `f` at every finest-level cell center of `extent` in
/// canonical x-fastest order — coordinate-for-coordinate exactly how
/// GmgSolver::set_rhs evaluates its RHS (px = (gi + 0.5) * h with
/// h = 1 / extent.x, all three axes sharing h).
std::vector<real_t> sample_rhs(
    Vec3 extent, const std::function<real_t(real_t, real_t, real_t)>& f);

/// Wrap samples (x-fastest over `extent`) back into the coordinate
/// function set_rhs expects, inverting the cell-center mapping. The
/// samples vector is shared so the returned function stays valid
/// after the frame is gone.
std::function<real_t(real_t, real_t, real_t)> rhs_from_samples(
    Vec3 extent, std::shared_ptr<const std::vector<real_t>> samples);

}  // namespace gmg::front::wire
