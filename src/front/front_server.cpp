#include "front/front_server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "trace/trace.hpp"

namespace gmg::front {

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || parsed <= 0) return fallback;
  return static_cast<int>(parsed);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  GMG_REQUIRE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
              "front: fcntl(O_NONBLOCK) failed");
}

}  // namespace

FrontConfig FrontConfig::from_env() {
  FrontConfig cfg;
  cfg.shards = env_int("GMG_FRONT_SHARDS", cfg.shards);
  cfg.admission.max_inflight = static_cast<std::size_t>(env_int(
      "GMG_FRONT_MAX_INFLIGHT",
      static_cast<int>(cfg.admission.max_inflight)));
  return cfg;
}

FrontServer::FrontServer(FrontConfig cfg)
    : cfg_(cfg),
      router_(std::max(1, cfg.shards), cfg.vnodes_per_shard) {
  cfg_.shards = std::max(1, cfg_.shards);
  // An admitted request must never bounce off the shard's serve
  // queue: the admission inflight cap (queued + executing) bounds the
  // queue depth, so capacity = max_inflight always suffices.
  serve::ServeConfig shard_cfg = cfg_.shard;
  shard_cfg.queue_capacity =
      std::max(shard_cfg.queue_capacity, cfg_.admission.max_inflight);
  AdmissionConfig adm_cfg = cfg_.admission;
  adm_cfg.parallelism = std::max(1, shard_cfg.executors);
  shards_.reserve(static_cast<std::size_t>(cfg_.shards));
  for (int s = 0; s < cfg_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->service = std::make_unique<serve::SolveService>(shard_cfg);
    shard->admission = std::make_unique<AdmissionController>(adm_cfg);
    shards_.push_back(std::move(shard));
  }
}

FrontServer::~FrontServer() { stop(); }

void FrontServer::register_operator(const std::string& id,
                                    const GmgOptions& options) {
  register_operator(id, serve::OperatorSpec{options, nullptr});
}

void FrontServer::register_operator(const std::string& id,
                                    const serve::OperatorSpec& spec) {
  {
    std::lock_guard<std::mutex> lock(operators_mu_);
    operator_options_[id] = spec.options;
  }
  for (auto& shard : shards_) shard->service->register_operator(id, spec);
}

void FrontServer::listen_unix(const std::string& path) {
  GMG_REQUIRE(listen_fd_ < 0, "front: already listening");
  sockaddr_un addr{};
  GMG_REQUIRE(path.size() < sizeof(addr.sun_path),
              "front: unix socket path too long");
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  GMG_REQUIRE(fd >= 0, "front: socket(AF_UNIX) failed");
  ::unlink(path.c_str());  // replace a stale socket file
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  GMG_REQUIRE(::bind(fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0,
              "front: bind(unix) failed");
  GMG_REQUIRE(::listen(fd, cfg_.listen_backlog) == 0,
              "front: listen failed");
  set_nonblocking(fd);
  listen_fd_ = fd;
  unix_path_ = path;
  start_poll_thread();
}

std::uint16_t FrontServer::listen_tcp(std::uint16_t port) {
  GMG_REQUIRE(listen_fd_ < 0, "front: already listening");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  GMG_REQUIRE(fd >= 0, "front: socket(AF_INET) failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  GMG_REQUIRE(::bind(fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0,
              "front: bind(tcp) failed");
  GMG_REQUIRE(::listen(fd, cfg_.listen_backlog) == 0,
              "front: listen failed");
  socklen_t len = sizeof(addr);
  GMG_REQUIRE(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr),
                            &len) == 0,
              "front: getsockname failed");
  set_nonblocking(fd);
  listen_fd_ = fd;
  start_poll_thread();
  return ntohs(addr.sin_port);
}

void FrontServer::start_poll_thread() {
  GMG_REQUIRE(::pipe(wake_fds_) == 0, "front: pipe failed");
  set_nonblocking(wake_fds_[0]);
  set_nonblocking(wake_fds_[1]);
  running_.store(true, std::memory_order_release);
  poll_thread_ = std::thread([this] { poll_loop(); });
}

void FrontServer::wake() {
  if (wake_fds_[1] < 0) return;
  const std::uint8_t b = 1;
  // EAGAIN means the pipe already holds a wakeup; that is enough.
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &b, 1);
}

void FrontServer::stop() {
  if (stopping_.exchange(true)) {
    if (poll_thread_.joinable()) poll_thread_.join();
    return;
  }
  // 1. New submits now answer kShuttingDown; everything already
  //    admitted finishes and its response lands in an outbox.
  for (auto& shard : shards_) shard->service->drain();
  // 2. Let the poll loop flush outboxes, then exit.
  wake();
  if (poll_thread_.joinable()) poll_thread_.join();
  // 3. Tear down sockets (the poll loop closed the connections).
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int i = 0; i < 2; ++i) {
    if (wake_fds_[i] >= 0) {
      ::close(wake_fds_[i]);
      wake_fds_[i] = -1;
    }
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
  running_.store(false, std::memory_order_release);
}

void FrontServer::poll_loop() {
  trace::set_rank(0);
  std::uint64_t quit_seen_ns = 0;
  for (;;) {
    const bool quitting = stopping_.load(std::memory_order_acquire);
    bool pending_output = false;
    std::vector<pollfd> fds;
    std::vector<std::shared_ptr<Connection>> polled;
    fds.reserve(conns_.size() + 2);
    fds.push_back({wake_fds_[0], POLLIN, 0});
    if (!quitting && listen_fd_ >= 0) fds.push_back({listen_fd_, POLLIN, 0});
    for (auto& [fd, conn] : conns_) {
      short events = POLLIN;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->outbox.empty()) {
          events |= POLLOUT;
          pending_output = true;
        }
      }
      fds.push_back({fd, events, 0});
      polled.push_back(conn);
    }
    if (quitting) {
      if (quit_seen_ns == 0) quit_seen_ns = trace::now_ns();
      const bool flush_deadline =
          trace::now_ns() - quit_seen_ns > 2'000'000'000ULL;
      if (!pending_output || flush_deadline) break;
    }

    const int ready = ::poll(fds.data(), fds.size(), 50);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;

    std::size_t idx = 0;
    if (fds[idx].revents & POLLIN) {
      std::uint8_t drain[64];
      while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
      }
    }
    ++idx;
    if (!quitting && listen_fd_ >= 0) {
      if (fds[idx].revents & POLLIN) accept_ready();
      ++idx;
    }
    for (std::size_t c = 0; c < polled.size(); ++c, ++idx) {
      const short re = fds[idx].revents;
      const std::shared_ptr<Connection>& conn = polled[c];
      if (conns_.find(conn->fd) == conns_.end()) continue;  // closed above
      if (re & (POLLERR | POLLHUP | POLLNVAL)) {
        close_connection(conn);
        continue;
      }
      if (re & POLLOUT) write_ready(conn);
      if (conns_.find(conn->fd) == conns_.end()) continue;
      if (re & POLLIN) read_ready(conn);
    }
  }
  // Exit: close every remaining connection.
  std::vector<std::shared_ptr<Connection>> remaining;
  remaining.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) remaining.push_back(conn);
  for (auto& conn : remaining) close_connection(conn);
}

void FrontServer::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: poll again
    if (conns_.size() >= cfg_.max_connections) {
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conns_.emplace(fd, std::move(conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_open_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FrontServer::read_ready(const std::shared_ptr<Connection>& conn) {
  std::uint8_t buf[16384];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) {  // peer closed; any mid-frame bytes die with it
      close_connection(conn);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      close_connection(conn);
      return;
    }
    conn->reader.feed(buf, static_cast<std::size_t>(n));
    wire::Frame frame;
    while (conn->reader.next(&frame)) {
      handle_frame(conn, std::move(frame));
      if (conns_.find(conn->fd) == conns_.end()) return;  // closed
    }
    if (conn->reader.corrupt()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      close_connection(conn);
      return;
    }
  }
}

void FrontServer::write_ready(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conn->mu);
  while (!conn->outbox.empty()) {
    const std::vector<std::uint8_t>& front = conn->outbox.front();
    const std::size_t left = front.size() - conn->out_off;
    const ssize_t n = ::send(conn->fd, front.data() + conn->out_off, left,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      // Peer vanished: drop the outbox; the poll loop closes on the
      // next POLLERR/POLLHUP wakeup.
      conn->outbox.clear();
      conn->out_off = 0;
      return;
    }
    conn->out_off += static_cast<std::size_t>(n);
    if (conn->out_off == front.size()) {
      conn->outbox.pop_front();
      conn->out_off = 0;
    }
  }
}

void FrontServer::close_connection(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    conn->outbox.clear();
    ::close(conn->fd);
  }
  conns_.erase(conn->fd);
  connections_open_.fetch_sub(1, std::memory_order_relaxed);
}

void FrontServer::send_frame(const std::shared_ptr<Connection>& conn,
                             std::vector<std::uint8_t> bytes) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;  // response outlived its connection
    conn->outbox.push_back(std::move(bytes));
  }
  wake();
}

void FrontServer::reject(const std::shared_ptr<Connection>& conn,
                         std::uint64_t id, wire::RejectReason reason,
                         const std::string& detail) {
  wire::RejectFrame rj;
  rj.request_id = id;
  rj.reason = reason;
  rj.detail = detail;
  send_frame(conn, wire::encode_reject(rj));
}

void FrontServer::handle_frame(const std::shared_ptr<Connection>& conn,
                               wire::Frame frame) {
  switch (frame.type) {
    case wire::FrameType::kSubmit:
      handle_submit(conn, std::move(frame));
      return;
    case wire::FrameType::kPing: {
      std::uint64_t nonce = 0;
      std::string err;
      if (!wire::decode_nonce(frame.payload, &nonce, &err)) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        close_connection(conn);
        return;
      }
      send_frame(conn, wire::encode_pong(nonce));
      return;
    }
    case wire::FrameType::kStatsRequest:
      send_frame(conn, wire::encode_stats(shard_stats()));
      return;
    default:
      // Server-to-client frame types arriving at the server are a
      // protocol violation, not a recoverable request.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      close_connection(conn);
      return;
  }
}

void FrontServer::handle_submit(const std::shared_ptr<Connection>& conn,
                                wire::Frame frame) {
  trace::TraceSpan span("front.submit", trace::Category::kOther);
  wire::SubmitFrame sf;
  std::string err;
  if (!wire::decode_submit(frame.payload, &sf, &err)) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    reject(conn, sf.request_id, wire::RejectReason::kBadRequest, err);
    return;
  }
  if (stopping_.load(std::memory_order_acquire)) {
    reject(conn, sf.request_id, wire::RejectReason::kShuttingDown,
           "server draining");
    return;
  }

  GmgOptions options;
  {
    std::lock_guard<std::mutex> lock(operators_mu_);
    auto it = operator_options_.find(sf.operator_id);
    if (it == operator_options_.end()) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      reject(conn, sf.request_id, wire::RejectReason::kUnknownOperator,
             "unknown operator id: " + sf.operator_id);
      return;
    }
    options = it->second;
  }
  if (sf.rank_grid.volume() > 512) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    reject(conn, sf.request_id, wire::RejectReason::kBadRequest,
           "rank grid too large");
    return;
  }

  serve::DomainSpec domain;
  domain.global_extent = sf.global_extent;
  domain.rank_grid = sf.rank_grid;
  const std::string key =
      serve::hierarchy_key(domain, sf.operator_id, options);
  const double cost =
      AdmissionController::estimate_cost(sf.global_extent, options.levels);

  // Route to the cache-affine shard; on shed, overflow to the
  // least-loaded shard that admits (cold setup beats rejection while
  // compute has headroom), else reject fast.
  const int primary = router_.route(key);
  int target = -1;
  bool spilled = false;
  if (shards_[static_cast<std::size_t>(primary)]->admission->try_admit(
          cost, sf.deadline_seconds) == AdmissionController::Decision::kAdmit) {
    target = primary;
  } else if (cfg_.spill_to_cold && num_shards() > 1) {
    std::vector<std::pair<double, int>> by_load;
    for (int s = 0; s < num_shards(); ++s) {
      if (s == primary) continue;
      by_load.emplace_back(
          shards_[static_cast<std::size_t>(s)]->admission->stats()
              .inflight_cost,
          s);
    }
    std::sort(by_load.begin(), by_load.end());
    for (const auto& [load, s] : by_load) {
      if (shards_[static_cast<std::size_t>(s)]->admission->try_admit(
              cost, sf.deadline_seconds) ==
          AdmissionController::Decision::kAdmit) {
        target = s;
        spilled = true;
        break;
      }
    }
  }
  if (target < 0) {
    sheds_.fetch_add(1, std::memory_order_relaxed);
    trace::counter_add("front.rejected_overload", 1);
    reject(conn, sf.request_id, wire::RejectReason::kOverload,
           "admission: shards saturated");
    return;
  }
  Shard* shard = shards_[static_cast<std::size_t>(target)].get();
  if (spilled) {
    spills_.fetch_add(1, std::memory_order_relaxed);
    shard->spilled_in.fetch_add(1, std::memory_order_relaxed);
    trace::counter_add("front.spilled", 1);
  }
  submits_.fetch_add(1, std::memory_order_relaxed);

  serve::SolveRequest req;
  req.domain = domain;
  req.operator_id = sf.operator_id;
  auto samples = std::make_shared<const std::vector<real_t>>(
      std::move(sf.rhs_samples));
  req.rhs = wire::rhs_from_samples(sf.global_extent, samples);
  req.tolerance = sf.tolerance;
  req.max_vcycles = sf.max_vcycles;
  req.priority = sf.priority;
  req.deadline_seconds = sf.deadline_seconds;
  req.return_solution = sf.return_solution;

  const std::uint64_t id = sf.request_id;
  std::weak_ptr<Connection> wconn = conn;
  req.on_complete = [this, wconn, id, shard,
                     cost](const serve::RequestResult& r) {
    shard->admission->on_complete(cost, r.solve_seconds);
    auto c = wconn.lock();
    if (!c) return;  // client went away; nothing to tell
    std::vector<std::uint8_t> bytes;
    if (r.status == serve::RequestStatus::kRejected) {
      // Admission sized the serve queue, so this only happens when
      // the shard stopped underneath us.
      wire::RejectFrame rj;
      rj.request_id = id;
      rj.reason = stopping_.load(std::memory_order_acquire)
                      ? wire::RejectReason::kShuttingDown
                      : wire::RejectReason::kOverload;
      rj.detail = "serve queue rejected request";
      bytes = wire::encode_reject(rj);
    } else {
      wire::ResultFrame rf;
      rf.request_id = id;
      rf.status = static_cast<std::uint8_t>(r.status);
      rf.cache_hit = r.cache_hit;
      rf.converged = r.solve.converged;
      rf.vcycles = r.solve.vcycles;
      rf.final_residual = r.solve.final_residual;
      rf.queue_seconds = r.queue_seconds;
      rf.setup_seconds = r.setup_seconds;
      rf.solve_seconds = r.solve_seconds;
      rf.total_seconds = r.total_seconds;
      rf.solution = r.solution;
      rf.error = r.error;
      bytes = wire::encode_result(rf);
    }
    send_frame(c, std::move(bytes));
  };
  shard->service->try_submit(std::move(req));
}

wire::StatsFrame FrontServer::shard_stats() const {
  wire::StatsFrame out;
  out.shards.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const AdmissionController::Stats a = shards_[s]->admission->stats();
    const serve::ServiceStats svc = shards_[s]->service->stats();
    wire::ShardStatsEntry e;
    e.shard_id = static_cast<std::uint32_t>(s);
    e.accepted = a.admitted;
    e.completed = svc.completed;
    e.cancelled = svc.cancelled;
    e.expired = svc.expired;
    e.rejected = svc.rejected;
    e.failed = svc.failed;
    e.shed_overload = a.shed_overload + a.shed_deadline;
    e.spilled_in = shards_[s]->spilled_in.load(std::memory_order_relaxed);
    e.queue_depth = svc.queue_depth;
    e.inflight = a.inflight;
    e.batch_solves = svc.batch_solves;
    e.batch_requests = svc.batch_requests;
    e.inflight_cost = a.inflight_cost;
    e.cache_hit_ratio = svc.cache_hit_ratio;
    out.shards.push_back(e);
  }
  return out;
}

FrontStats FrontServer::stats() const {
  FrontStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_open = connections_open_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.submits = submits_.load(std::memory_order_relaxed);
  s.sheds = sheds_.load(std::memory_order_relaxed);
  s.spills = spills_.load(std::memory_order_relaxed);
  s.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  s.shards = shard_stats();
  return s;
}

int FrontServer::shard_for(const serve::DomainSpec& domain,
                           const std::string& operator_id) const {
  GmgOptions options;
  {
    std::lock_guard<std::mutex> lock(operators_mu_);
    auto it = operator_options_.find(operator_id);
    GMG_REQUIRE(it != operator_options_.end(),
                "shard_for: unknown operator id");
    options = it->second;
  }
  return router_.route(serve::hierarchy_key(domain, operator_id, options));
}

serve::SolveService& FrontServer::shard_service(int shard) {
  GMG_REQUIRE(shard >= 0 && shard < num_shards(),
              "shard_service: shard out of range");
  return *shards_[static_cast<std::size_t>(shard)]->service;
}

}  // namespace gmg::front
