#include "front/client.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace gmg::front {

FrontClient::~FrontClient() { close(); }

void FrontClient::connect_unix(const std::string& path) {
  GMG_REQUIRE(fd_ < 0, "FrontClient: already connected");
  sockaddr_un addr{};
  GMG_REQUIRE(path.size() < sizeof(addr.sun_path),
              "FrontClient: unix socket path too long");
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  GMG_REQUIRE(fd >= 0, "FrontClient: socket(AF_UNIX) failed");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    GMG_REQUIRE(false, "FrontClient: connect(unix) failed");
  }
  fd_ = fd;
}

void FrontClient::connect_tcp(std::uint16_t port) {
  GMG_REQUIRE(fd_ < 0, "FrontClient: already connected");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  GMG_REQUIRE(fd >= 0, "FrontClient: socket(AF_INET) failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    GMG_REQUIRE(false, "FrontClient: connect(tcp) failed");
  }
  fd_ = fd;
}

void FrontClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void FrontClient::send_frame(const std::vector<std::uint8_t>& bytes) {
  std::lock_guard<std::mutex> lock(send_mu_);
  GMG_REQUIRE(fd_ >= 0, "FrontClient: not connected");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      GMG_REQUIRE(false, "FrontClient: send failed (connection lost)");
    }
    off += static_cast<std::size_t>(n);
  }
}

void FrontClient::send_submit(const wire::SubmitFrame& f) {
  send_frame(wire::encode_submit(f));
}

bool FrontClient::read_frame(wire::Frame* out, int timeout_ms) {
  for (;;) {
    if (reader_.next(out)) return true;
    if (reader_.corrupt()) {
      last_error_ = "corrupt stream: " + reader_.error();
      return false;
    }
    if (fd_ < 0) {
      last_error_ = "not connected";
      return false;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      last_error_ = "poll failed";
      return false;
    }
    if (ready == 0) {
      last_error_ = "timeout";
      return false;
    }
    std::uint8_t buf[16384];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      last_error_ = "connection closed by server";
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      last_error_ = "recv failed";
      return false;
    }
    reader_.feed(buf, static_cast<std::size_t>(n));
  }
}

bool FrontClient::read_response(Response* out, int timeout_ms) {
  wire::Frame frame;
  for (;;) {
    if (!read_frame(&frame, timeout_ms)) return false;
    std::string err;
    if (frame.type == wire::FrameType::kResult) {
      if (!wire::decode_result(frame.payload, &out->result, &err)) {
        last_error_ = "bad result frame: " + err;
        return false;
      }
      out->rejected = false;
      out->request_id = out->result.request_id;
      return true;
    }
    if (frame.type == wire::FrameType::kReject) {
      if (!wire::decode_reject(frame.payload, &out->reject, &err)) {
        last_error_ = "bad reject frame: " + err;
        return false;
      }
      out->rejected = true;
      out->request_id = out->reject.request_id;
      return true;
    }
    // kPong / kStats interleaved with a pending submit: skip.
  }
}

FrontClient::Response FrontClient::submit_and_wait(const wire::SubmitFrame& f,
                                                   int timeout_ms) {
  send_submit(f);
  Response r;
  GMG_REQUIRE(read_response(&r, timeout_ms),
              "FrontClient: no response to submit: " + last_error_);
  return r;
}

bool FrontClient::ping(std::uint64_t nonce, int timeout_ms) {
  send_frame(wire::encode_ping(nonce));
  wire::Frame frame;
  if (!read_frame(&frame, timeout_ms)) return false;
  if (frame.type != wire::FrameType::kPong) {
    last_error_ = "expected pong";
    return false;
  }
  std::uint64_t echoed = 0;
  std::string err;
  if (!wire::decode_nonce(frame.payload, &echoed, &err)) {
    last_error_ = "bad pong: " + err;
    return false;
  }
  if (echoed != nonce) {
    last_error_ = "pong nonce mismatch";
    return false;
  }
  return true;
}

bool FrontClient::fetch_stats(wire::StatsFrame* out, int timeout_ms) {
  send_frame(wire::encode_stats_request());
  wire::Frame frame;
  if (!read_frame(&frame, timeout_ms)) return false;
  if (frame.type != wire::FrameType::kStats) {
    last_error_ = "expected stats frame";
    return false;
  }
  std::string err;
  if (!wire::decode_stats(frame.payload, out, &err)) {
    last_error_ = "bad stats frame: " + err;
    return false;
  }
  return true;
}

}  // namespace gmg::front
