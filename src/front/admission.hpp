// Per-shard admission control with cost-aware load-shedding
// (DESIGN.md §14).
//
// Request cost varies by orders of magnitude with domain shape (a
// 128^3 x 5-level request is ~512x a 32^3 x 3-level one), so a
// count-based limit either starves small requests or admits a queue
// of huge ones that blows every deadline. The controller therefore
// accounts in *estimated cycle cost* — global cells x levels, the
// dominant term of a V-cycle's work — and sheds in O(1) before the
// request ever touches the shard's solve queue:
//
//   * inflight caps: at most max_inflight admitted-but-unfinished
//     requests AND at most max_inflight_cost outstanding cost;
//   * deadline-aware: an EWMA of observed cost throughput converts
//     outstanding cost into an estimated queue wait — a request whose
//     deadline would already be blown by the backlog is rejected
//     immediately (REJECTED_OVERLOAD) instead of expiring uselessly
//     in the queue.
//
// Shedding fast is the point: under overload the listener answers
// with a reject frame in microseconds, accepted requests keep their
// latency, and goodput stays at capacity instead of collapsing under
// queue bloat (bench/front_saturation measures exactly this).
#pragma once

#include <cstdint>
#include <mutex>

#include "common/types.hpp"

namespace gmg::front {

struct AdmissionConfig {
  /// Admitted-but-unfinished request cap (queued + executing). The
  /// front sizes the shard's serve queue to match so an admitted
  /// request never blocks the listener. Env: GMG_FRONT_MAX_INFLIGHT.
  std::size_t max_inflight = 4;
  /// Outstanding-cost cap in cost units (global cells x levels);
  /// 0 = derived as max_inflight x the largest cost seen so far
  /// (i.e. effectively count-limited until the mix is known).
  double max_inflight_cost = 0;
  /// Shed when estimated_wait > deadline_headroom x deadline. <= 0
  /// disables deadline-aware shedding.
  double deadline_headroom = 1.0;
  /// Concurrent executors draining this shard; scales outstanding
  /// cost into wait time.
  int parallelism = 2;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig cfg = {}) : cfg_(cfg) {}
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  enum class Decision {
    kAdmit,
    kShedOverload,  // inflight or cost cap hit
    kShedDeadline,  // backlog already exceeds the request's deadline
  };

  /// O(1) under one mutex; never blocks. kAdmit charges `cost` until
  /// the matching on_complete().
  Decision try_admit(double cost, double deadline_seconds);

  /// Release `cost`. `solve_seconds` > 0 (an actually-executed solve)
  /// also updates the cost-throughput EWMA used for wait estimates.
  void on_complete(double cost, double solve_seconds);

  /// Estimated queue wait for a new request behind the current
  /// backlog, seconds; 0 until a throughput estimate exists.
  double estimated_wait_seconds() const;

  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t shed_overload = 0;
    std::uint64_t shed_deadline = 0;
    std::size_t inflight = 0;
    double inflight_cost = 0;
    /// EWMA cost units per executor-second (0 = not yet observed).
    double cost_per_second = 0;
  };
  Stats stats() const;

  const AdmissionConfig& config() const { return cfg_; }

  /// The cost model: global cells x levels. Deliberately crude — it
  /// only needs to rank requests and scale linearly with work.
  static double estimate_cost(Vec3 global_extent, int levels);

 private:
  double wait_estimate_locked() const;

  AdmissionConfig cfg_;
  mutable std::mutex mu_;
  std::size_t inflight_ = 0;
  double inflight_cost_ = 0;
  double max_cost_seen_ = 0;
  double cost_per_second_ = 0;  // EWMA, per executor
  std::uint64_t admitted_ = 0, shed_overload_ = 0, shed_deadline_ = 0;
};

}  // namespace gmg::front
