// Consistent-hash routing of hierarchy keys onto serve shards
// (DESIGN.md §14).
//
// Each shard owns `vnodes_per_shard` points on a 64-bit hash ring; a
// key routes to the shard owning the first point at or after the
// key's hash (wrapping). Two properties the front tier depends on:
//
//   * Stability: the ring is built from FNV-1a over fixed strings, so
//     the same key maps to the same shard in every process on every
//     run — a client can even predict placement. Cache affinity
//     (HierarchyCache entries live per shard) survives restarts.
//   * Minimal disruption: removing one of N shards deletes only that
//     shard's points, so only the keys in the deleted arcs move
//     (~1/N of them), to the next point on the ring. All other keys
//     keep their shard and therefore their warm hierarchy caches.
//     test_front pins both properties.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gmg::front {

class ShardRouter {
 public:
  /// Ring over shard ids 0..shards-1.
  explicit ShardRouter(int shards, int vnodes_per_shard = 64);

  /// Ring over an explicit shard-id set: the ring for {0..N-1} minus
  /// shard s is exactly the full ring with s's points deleted, which
  /// is what makes removal minimally disruptive.
  ShardRouter(const std::vector<int>& shard_ids, int vnodes_per_shard = 64);

  /// Shard owning `key` (a serve::hierarchy_key string).
  int route(std::string_view key) const;

  int num_shards() const { return num_shards_; }

  /// FNV-1a; deterministic across runs and platforms by construction.
  static std::uint64_t hash64(std::string_view s);

 private:
  void build(const std::vector<int>& shard_ids, int vnodes_per_shard);

  int num_shards_ = 0;
  /// (ring point, shard id), sorted by point.
  std::vector<std::pair<std::uint64_t, int>> ring_;
};

}  // namespace gmg::front
