#include "mesh/decomposition.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gmg {

Vec3 factor_ranks(int nranks) {
  GMG_REQUIRE(nranks >= 1, "need at least one rank");
  // Greedy: repeatedly give the smallest dimension the largest
  // remaining prime factor. Produces balanced grids for the powers of
  // two used throughout the paper (8, 64, 512 ranks -> cubes).
  Vec3 grid{1, 1, 1};
  int n = nranks;
  std::vector<int> primes;
  for (int p = 2; p * p <= n; ++p)
    while (n % p == 0) {
      primes.push_back(p);
      n /= p;
    }
  if (n > 1) primes.push_back(n);
  std::sort(primes.rbegin(), primes.rend());
  for (int p : primes) {
    int d = 0;
    for (int e = 1; e < 3; ++e)
      if (grid[e] < grid[d]) d = e;
    grid[d] *= p;
  }
  return grid;
}

CartDecomp::CartDecomp(Vec3 global_extent, Vec3 rank_grid)
    : global_(global_extent), grid_(rank_grid) {
  for (int d = 0; d < 3; ++d) {
    GMG_REQUIRE(grid_[d] > 0, "rank grid must be positive");
    GMG_REQUIRE(global_[d] % grid_[d] == 0,
                "global extent must divide evenly across ranks");
    sub_[d] = global_[d] / grid_[d];
  }
}

Vec3 CartDecomp::coord_of(int rank) const {
  GMG_REQUIRE(rank >= 0 && rank < num_ranks(), "rank out of range");
  return {rank % grid_.x, (rank / grid_.x) % grid_.y,
          rank / (grid_.x * grid_.y)};
}

int CartDecomp::rank_of(Vec3 coord) const {
  const auto wrap = [](index_t v, index_t n) { return ((v % n) + n) % n; };
  const index_t cx = wrap(coord.x, grid_.x);
  const index_t cy = wrap(coord.y, grid_.y);
  const index_t cz = wrap(coord.z, grid_.z);
  return static_cast<int>(cz * grid_.x * grid_.y + cy * grid_.x + cx);
}

int CartDecomp::neighbor(int rank, int dir) const {
  return rank_of(coord_of(rank) + direction_offset(dir));
}

std::array<bool, kNumDirections> CartDecomp::remote_neighbors(
    int rank) const {
  std::array<bool, kNumDirections> remote{};
  for (int dir = 0; dir < kNumDirections; ++dir) {
    if (dir == kSelfDirection) continue;
    remote[static_cast<std::size_t>(dir)] = neighbor(rank, dir) != rank;
  }
  return remote;
}

Box CartDecomp::subdomain_box(int rank) const {
  const Vec3 c = coord_of(rank);
  const Vec3 lo{c.x * sub_.x, c.y * sub_.y, c.z * sub_.z};
  return Box{lo, lo + sub_};
}

}  // namespace gmg
