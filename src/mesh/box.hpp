// Integer axis-aligned boxes: the index-space vocabulary for
// subdomains, ghost regions, brick regions, and CA active regions.
#pragma once

#include <algorithm>
#include <iosfwd>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace gmg {

/// Half-open integer box [lo, hi) in 3-D cell (or brick) index space.
struct Box {
  Vec3 lo{0, 0, 0};
  Vec3 hi{0, 0, 0};

  static Box from_extent(Vec3 extent) { return Box{{0, 0, 0}, extent}; }

  constexpr Vec3 extent() const { return hi - lo; }
  constexpr index_t volume() const {
    const Vec3 e = extent();
    return empty() ? 0 : e.volume();
  }
  constexpr bool empty() const {
    return hi.x <= lo.x || hi.y <= lo.y || hi.z <= lo.z;
  }
  constexpr bool contains(Vec3 p) const {
    return p.x >= lo.x && p.x < hi.x && p.y >= lo.y && p.y < hi.y &&
           p.z >= lo.z && p.z < hi.z;
  }
  /// True when `b` lies entirely inside this box.
  constexpr bool covers(const Box& b) const {
    return b.empty() ||
           (contains(b.lo) &&
            contains(Vec3{b.hi.x - 1, b.hi.y - 1, b.hi.z - 1}));
  }

  friend Box intersect(const Box& a, const Box& b) {
    Box r;
    for (int d = 0; d < 3; ++d) {
      r.lo[d] = std::max(a.lo[d], b.lo[d]);
      r.hi[d] = std::min(a.hi[d], b.hi[d]);
    }
    return r;
  }

  /// Translate by an offset.
  friend Box shift(const Box& b, Vec3 off) {
    return Box{b.lo + off, b.hi + off};
  }

  /// Symmetric growth by g cells on every side (negative shrinks).
  friend Box grow(const Box& b, index_t g) {
    return Box{{b.lo.x - g, b.lo.y - g, b.lo.z - g},
               {b.hi.x + g, b.hi.y + g, b.hi.z + g}};
  }

  /// Coarsen by a factor r (extents must divide evenly; this mirrors
  /// the paper's power-of-two level hierarchy).
  friend Box coarsen(const Box& b, index_t r) {
    Box c;
    for (int d = 0; d < 3; ++d) {
      GMG_REQUIRE(b.lo[d] % r == 0 && b.hi[d] % r == 0,
                  "box is not aligned to the coarsening ratio");
      c.lo[d] = b.lo[d] / r;
      c.hi[d] = b.hi[d] / r;
    }
    return c;
  }
  friend Box refine(const Box& b, index_t r) {
    return Box{b.lo * r, b.hi * r};
  }

  constexpr friend bool operator==(const Box&, const Box&) = default;
};

std::ostream& operator<<(std::ostream& os, const Box& b);

/// Visit every point of a box in k-outer, i-inner (lexicographic ijk)
/// order. `fn(i, j, k)`.
template <typename Fn>
inline void for_each(const Box& b, Fn&& fn) {
  for (index_t k = b.lo.z; k < b.hi.z; ++k)
    for (index_t j = b.lo.y; j < b.hi.y; ++j)
      for (index_t i = b.lo.x; i < b.hi.x; ++i) fn(i, j, k);
}

/// The region of `domain`'s ghost shell lying in direction `dir`
/// (one of the 26 neighbor directions), of depth `g`: e.g. the +x face
/// ghost region is [hi.x, hi.x+g) x [lo.y, hi.y) x [lo.z, hi.z).
/// Edge/corner directions combine per-axis face regions.
Box ghost_region(const Box& domain, int dir, index_t g);

/// The interior region whose data a neighbor in direction `dir` needs:
/// the `g`-deep strip adjacent to the boundary facing `dir`.
Box surface_region(const Box& domain, int dir, index_t g);

/// Decompose `outer` minus `inner` into at most six disjoint slabs
/// whose union with `inner` is exactly `outer` (z-lo, y-lo, x-lo,
/// x-hi, y-hi, z-hi order). `inner` must be covered by `outer`; an
/// empty `inner` yields {outer}, `inner == outer` yields {}. This is
/// the overlap path's surface region: the cells a split-phase smoother
/// computes after exchange finish() (DESIGN.md §10).
std::vector<Box> shell_boxes(const Box& outer, const Box& inner);

}  // namespace gmg
