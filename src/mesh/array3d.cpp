#include "mesh/array3d.hpp"

namespace gmg {

void Array3D::fill_ghosts_periodic() {
  const Box whole_box = whole();
  for_each(whole_box, [&](index_t i, index_t j, index_t k) {
    if (interior().contains({i, j, k})) return;
    const index_t si = ((i % n_.x) + n_.x) % n_.x;
    const index_t sj = ((j % n_.y) + n_.y) % n_.y;
    const index_t sk = ((k % n_.z) + n_.z) % n_.z;
    (*this)(i, j, k) = (*this)(si, sj, sk);
  });
}

}  // namespace gmg
