// Domain decomposition: split a global periodic box across P ranks in
// a 3-D cartesian grid, with 26-neighbor topology (paper §IV-C uses
// MPI_ISend/IRecv/WaitAll to 26 neighbors).
#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"
#include "mesh/box.hpp"

namespace gmg {

/// A near-cubic factorization of `nranks` into px*py*pz, preferring
/// balanced factors (the paper's experiments double ranks per axis).
Vec3 factor_ranks(int nranks);

/// Cartesian decomposition of a global domain. All subdomains must be
/// the same size (extent divisible by the rank grid), matching the
/// paper's weak/strong scaling setup.
class CartDecomp {
 public:
  CartDecomp(Vec3 global_extent, Vec3 rank_grid);

  Vec3 global_extent() const { return global_; }
  Vec3 rank_grid() const { return grid_; }
  int num_ranks() const { return static_cast<int>(grid_.volume()); }
  Vec3 subdomain_extent() const { return sub_; }

  /// Rank id <-> 3-D rank coordinate (periodic).
  Vec3 coord_of(int rank) const;
  int rank_of(Vec3 coord) const;  // coordinates taken mod grid (periodic)

  /// The neighbor rank in one of the 26 directions (periodic wrap).
  int neighbor(int rank, int dir) const;

  /// For each of the 27 directions, whether the neighbor there is a
  /// *different* rank (self direction is always false). With periodic
  /// wrap this is per-axis: the ±a neighbors are remote iff
  /// rank_grid()[a] > 1, so the result is rank-independent — but the
  /// rank parameter keeps the call-site shape of neighbor(). This
  /// drives the interior/surface brick partition for compute–comm
  /// overlap (DESIGN.md §10).
  std::array<bool, kNumDirections> remote_neighbors(int rank) const;

  /// This rank's interior box in global cell coordinates.
  Box subdomain_box(int rank) const;

 private:
  Vec3 global_;
  Vec3 grid_;
  Vec3 sub_;
};

}  // namespace gmg
