#include "mesh/box.hpp"

#include <ostream>

namespace gmg {

std::ostream& operator<<(std::ostream& os, const Box& b) {
  return os << '[' << b.lo << ", " << b.hi << ')';
}

Box ghost_region(const Box& domain, int dir, index_t g) {
  GMG_REQUIRE(dir >= 0 && dir < kNumDirections && dir != kSelfDirection,
              "dir must be one of the 26 neighbor directions");
  const Vec3 off = direction_offset(dir);
  Box r = domain;
  for (int d = 0; d < 3; ++d) {
    if (off[d] < 0) {
      r.lo[d] = domain.lo[d] - g;
      r.hi[d] = domain.lo[d];
    } else if (off[d] > 0) {
      r.lo[d] = domain.hi[d];
      r.hi[d] = domain.hi[d] + g;
    }
  }
  return r;
}

Box surface_region(const Box& domain, int dir, index_t g) {
  GMG_REQUIRE(dir >= 0 && dir < kNumDirections && dir != kSelfDirection,
              "dir must be one of the 26 neighbor directions");
  const Vec3 off = direction_offset(dir);
  Box r = domain;
  for (int d = 0; d < 3; ++d) {
    if (off[d] < 0) {
      r.hi[d] = domain.lo[d] + g;
    } else if (off[d] > 0) {
      r.lo[d] = domain.hi[d] - g;
    }
  }
  return r;
}

}  // namespace gmg
