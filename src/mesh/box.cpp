#include "mesh/box.hpp"

#include <ostream>

namespace gmg {

std::ostream& operator<<(std::ostream& os, const Box& b) {
  return os << '[' << b.lo << ", " << b.hi << ')';
}

Box ghost_region(const Box& domain, int dir, index_t g) {
  GMG_REQUIRE(dir >= 0 && dir < kNumDirections && dir != kSelfDirection,
              "dir must be one of the 26 neighbor directions");
  const Vec3 off = direction_offset(dir);
  Box r = domain;
  for (int d = 0; d < 3; ++d) {
    if (off[d] < 0) {
      r.lo[d] = domain.lo[d] - g;
      r.hi[d] = domain.lo[d];
    } else if (off[d] > 0) {
      r.lo[d] = domain.hi[d];
      r.hi[d] = domain.hi[d] + g;
    }
  }
  return r;
}

std::vector<Box> shell_boxes(const Box& outer, const Box& inner) {
  if (outer.empty()) return {};
  if (inner.empty()) return {outer};
  GMG_REQUIRE(outer.covers(inner), "inner box must lie inside outer");
  std::vector<Box> shell;
  // Peel full-width slabs axis by axis (z, then y, then x): each slab
  // spans the not-yet-peeled extent of the faster axes, so the slabs
  // tile outer \ inner exactly without overlap.
  Box rest = outer;
  for (int d = 2; d >= 0; --d) {
    if (inner.lo[d] > rest.lo[d]) {
      Box slab = rest;
      slab.hi[d] = inner.lo[d];
      shell.push_back(slab);
      rest.lo[d] = inner.lo[d];
    }
    if (inner.hi[d] < rest.hi[d]) {
      Box slab = rest;
      slab.lo[d] = inner.hi[d];
      shell.push_back(slab);
      rest.hi[d] = inner.hi[d];
    }
  }
  GMG_ASSERT(rest == inner);
  return shell;
}

Box surface_region(const Box& domain, int dir, index_t g) {
  GMG_REQUIRE(dir >= 0 && dir < kNumDirections && dir != kSelfDirection,
              "dir must be one of the 26 neighbor directions");
  const Vec3 off = direction_offset(dir);
  Box r = domain;
  for (int d = 0; d < 3; ++d) {
    if (off[d] < 0) {
      r.hi[d] = domain.lo[d] + g;
    } else if (off[d] > 0) {
      r.lo[d] = domain.hi[d] - g;
    }
  }
  return r;
}

}  // namespace gmg
