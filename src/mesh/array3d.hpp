// Conventional lexicographic ijk array with a ghost shell — the data
// layout the paper's fine-grain blocking is measured against, and the
// layout used by the HPGMG-like baseline solver.
#pragma once

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/types.hpp"
#include "mesh/box.hpp"

namespace gmg {

/// A 3-D field over interior extent `n` with `g` ghost cells on every
/// side, stored contiguously in i-fastest order. Index space runs
/// [-g, n+g) per axis; (0,0,0) is the first interior cell.
class Array3D {
 public:
  Array3D() = default;
  Array3D(Vec3 n, index_t ghost, bool zero = true)
      : n_(n),
        g_(ghost),
        stride_y_(n.x + 2 * ghost),
        stride_z_(static_cast<index_t>(n.x + 2 * ghost) * (n.y + 2 * ghost)),
        data_(static_cast<std::size_t>(stride_z_) * (n.z + 2 * ghost), zero) {
    GMG_REQUIRE(n.x > 0 && n.y > 0 && n.z > 0, "extents must be positive");
    GMG_REQUIRE(ghost >= 0, "ghost depth must be non-negative");
  }

  Vec3 extent() const { return n_; }
  index_t ghost() const { return g_; }
  Box interior() const { return Box::from_extent(n_); }
  Box whole() const { return grow(interior(), g_); }
  std::size_t size() const { return data_.size(); }

  real_t* data() { return data_.data(); }
  const real_t* data() const { return data_.data(); }

  index_t linear_index(index_t i, index_t j, index_t k) const {
    GMG_ASSERT(i >= -g_ && i < n_.x + g_);
    GMG_ASSERT(j >= -g_ && j < n_.y + g_);
    GMG_ASSERT(k >= -g_ && k < n_.z + g_);
    return (k + g_) * stride_z_ + (j + g_) * stride_y_ + (i + g_);
  }

  real_t& operator()(index_t i, index_t j, index_t k) {
    return data_[static_cast<std::size_t>(linear_index(i, j, k))];
  }
  const real_t& operator()(index_t i, index_t j, index_t k) const {
    return data_[static_cast<std::size_t>(linear_index(i, j, k))];
  }

  index_t stride_y() const { return stride_y_; }
  index_t stride_z() const { return stride_z_; }

  void fill(real_t v) {
    for (auto& x : data_) x = v;
  }

  /// Copy interior values (not ghosts) from another array of identical
  /// interior extent.
  void copy_interior_from(const Array3D& o) {
    GMG_REQUIRE(o.extent() == n_, "extent mismatch");
    for_each(interior(),
             [&](index_t i, index_t j, index_t k) { (*this)(i, j, k) = o(i, j, k); });
  }

  /// Fill this array's ghost shell from its own interior assuming the
  /// subdomain is itself the whole periodic domain (single-rank case).
  void fill_ghosts_periodic();

 private:
  Vec3 n_{0, 0, 0};
  index_t g_ = 0;
  index_t stride_y_ = 0;
  index_t stride_z_ = 0;
  AlignedBuffer<real_t> data_;
};

}  // namespace gmg
