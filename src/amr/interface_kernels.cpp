#include "amr/interface_kernels.hpp"

#include "brick/brick_grid.hpp"
#include "check/footprint.hpp"
#include "check/shadow.hpp"
#include "common/error.hpp"
#include "dsl/stencils.hpp"
#include "exec/runtime.hpp"
#include "trace/trace.hpp"

namespace gmg::amr {

namespace {

// ---------------------------------------------------------------------------
// Constexpr footprint verification (check:: layer 1). The interface
// prolongation is the DSL expression dsl::cf_interface_prolongation,
// evaluated per parity below; the union of its eight parity footprints
// must be the declared interface-prolongation shape, and each parity
// reads exactly its 8 coarse taps within reach 1. The reflux footprints
// are declared per axis; the hand-scheduled kernel below must stay
// inside them (reach 1 on both grids).
// ---------------------------------------------------------------------------

constexpr dsl::OffsetSet cf_parity_union() {
  dsl::OffsetSet s;
  for (int sx = -1; sx <= 1; sx += 2) {
    for (int sy = -1; sy <= 1; sy += 2) {
      for (int sz = -1; sz <= 1; sz += 2) {
        s = s.merged(dsl::cf_interface_prolongation(sx, sy, sz).offsets());
      }
    }
  }
  return s;
}

static_assert(check::same_footprint(cf_parity_union(),
                                    check::amr_interface_prolongation_shape()),
              "interface prolongation parities must union to the declared "
              "radius-1 box footprint");
static_assert(dsl::cf_interface_prolongation(1, 1, 1).offsets().num_taps() == 8,
              "one parity of the interface prolongation reads 8 coarse cells");
static_assert(dsl::cf_interface_prolongation(-1, -1, -1).offsets().radius() ==
                  1,
              "interface prolongation reach is one coarse cell");
static_assert(check::reflux_fine_shape(0).num_taps() == 8 &&
                  check::reflux_fine_shape(1).num_taps() == 8 &&
                  check::reflux_fine_shape(2).num_taps() == 8,
              "reflux reads the 2x2 fine pair layer on each side of a face");
static_assert(check::reflux_fine_shape(0).radius() == 1 &&
                  check::reflux_coarse_shape().radius() == 1,
              "reflux reach is one cell on both grids");
/// Element accessor over a BrickedArray for DSL expression evaluation;
/// ghost coordinates resolve through the grid's adjacency like any
/// element access.
struct FieldAccessor {
  const BrickedArray* f;
  template <int Slot>
  real_t load(index_t i, index_t j, index_t k) const {
    return (*f)(i, j, k);
  }
};

/// Deterministic parallel sweep over the rows (fixed j,k) of `box`,
/// calling fn(i_range...) cell by cell: fn(i, j, k). The chunk plan
/// depends only on the row count, and every cell has one writer, so
/// results are bitwise identical for any worker count.
template <typename Fn>
void sweep_rows(const char* name, const Box& box, Fn&& fn) {
  if (box.empty()) return;
  const Vec3 e = box.extent();
  const index_t rows = e.y * e.z;
  const std::int64_t grain =
      std::max<std::int64_t>(1, exec::kElementGrain / std::max<index_t>(1, e.x));
  exec::parallel_for(name, rows, grain, [&](std::int64_t rb, std::int64_t re) {
    for (std::int64_t row = rb; row < re; ++row) {
      const index_t j = box.lo.y + row % e.y;
      const index_t k = box.lo.z + row / e.y;
      for (index_t i = box.lo.x; i < box.hi.x; ++i) fn(i, j, k);
    }
  });
}

/// Coarse-cell cover of a fine-cell box (2x refinement).
Box coarse_cover(const Box& fine) {
  if (fine.empty()) return Box{};
  return Box{{floor_div(fine.lo.x, 2), floor_div(fine.lo.y, 2),
              floor_div(fine.lo.z, 2)},
             {floor_div(fine.hi.x - 1, 2) + 1, floor_div(fine.hi.y - 1, 2) + 1,
              floor_div(fine.hi.z - 1, 2) + 1}};
}

/// One coarse interface face of the patch: the outside cell layer, the
/// covered neighbor offset, and the fine interface layers.
struct InterfaceFace {
  int axis = 0;
  Box cells;            // global coarse interface cells (outside patch)
  index_t d_step = 0;   // c + d_step*e_axis = covered neighbor d
  index_t fine_in = 0;  // global fine coord along axis: first cell inside
  index_t fine_g = 0;   // global fine coord along axis: prolonged ghost
};

/// The (up to 6) interface faces of the patch clipped to this rank.
/// Empty when the rank's subdomain does not touch the interface.
std::vector<InterfaceFace> interface_faces(const InterfaceGeometry& g) {
  const Box pc = coarsen(g.patch_fine, 2);
  std::vector<InterfaceFace> faces;
  for (int axis = 0; axis < 3; ++axis) {
    for (int side = -1; side <= 1; side += 2) {
      InterfaceFace f;
      f.axis = axis;
      Box cells = pc;
      if (side < 0) {
        cells.lo[axis] = pc.lo[axis] - 1;
        cells.hi[axis] = pc.lo[axis];
        f.d_step = 1;
        f.fine_in = 2 * pc.lo[axis];
        f.fine_g = f.fine_in - 1;
      } else {
        cells.lo[axis] = pc.hi[axis];
        cells.hi[axis] = pc.hi[axis] + 1;
        f.d_step = -1;
        f.fine_in = 2 * pc.hi[axis] - 1;
        f.fine_g = f.fine_in + 1;
      }
      f.cells = intersect(cells, g.rank_coarse);
      if (!f.cells.empty()) faces.push_back(f);
    }
  }
  return faces;
}

}  // namespace

void prolong_interface_ghosts(BrickedArray& px, const BrickedArray& xH,
                              const InterfaceGeometry& g) {
  trace::TraceSpan span("amr.prolongGhosts");
  const Vec3 fine_lo = g.part_fine.lo;
  const Vec3 coarse_lo = g.rank_coarse.lo;
  const FieldAccessor acc{&xH};

  for (int dir = 0; dir < kNumDirections; ++dir) {
    const Vec3 off = direction_offset(dir);
    const int nz = (off.x != 0) + (off.y != 0) + (off.z != 0);
    if (nz != 1) continue;  // faces only: radius-1 taps skip edges/corners
    const Box ghost_global = ghost_region(g.part_fine, dir, 1);
    if (!intersect(ghost_global, g.patch_fine).empty()) {
      continue;  // interior face: PatchExchange fills these ghosts
    }
    // Local (part-relative) write box and the coarse cells it reads:
    // the parent cover grown one cell for the far trilinear taps.
    const Box ghost_local = shift(ghost_global, Vec3{} - fine_lo);
    const Box read_local =
        shift(grow(coarse_cover(ghost_global), 1), Vec3{} - coarse_lo);
    const auto scope = check::scope_if_enabled(
        "amr.prolongGhosts", {check::access(px, ghost_local)},
        {check::access(xH, read_local)});
    sweep_rows("amr.prolongGhosts", ghost_global,
               [&](index_t gi, index_t gj, index_t gk) {
                 const index_t ci = floor_div(gi, 2), cj = floor_div(gj, 2),
                               ck = floor_div(gk, 2);
                 const int sx = floor_mod(gi, 2) == 0 ? -1 : 1;
                 const int sy = floor_mod(gj, 2) == 0 ? -1 : 1;
                 const int sz = floor_mod(gk, 2) == 0 ? -1 : 1;
                 const auto expr = dsl::cf_interface_prolongation(sx, sy, sz);
                 px(gi - fine_lo.x, gj - fine_lo.y, gk - fine_lo.z) = expr.eval(
                     acc, ci - coarse_lo.x, cj - coarse_lo.y, ck - coarse_lo.z);
               });
  }
}

void reflux_residual(BrickedArray& rH, const BrickedArray& xH,
                     const BrickedArray& px, const InterfaceGeometry& g,
                     real_t beta_h) {
  trace::TraceSpan span("amr.reflux");
  const auto faces = interface_faces(g);
  if (faces.empty()) return;
  const Vec3 fine_lo = g.part_fine.lo;
  const Vec3 coarse_lo = g.rank_coarse.lo;

  // Declare the exact union of per-face accesses up front: writes are
  // the interface cell layers, coarse reads extend one cell toward the
  // patch (the covered neighbor d), fine reads are the two-layer slab
  // straddling each refined face.
  std::vector<check::Access> writes, reads;
  for (const InterfaceFace& f : faces) {
    const Box face_local = shift(f.cells, Vec3{} - coarse_lo);
    writes.push_back(check::access(rH, face_local));
    reads.push_back(check::access(xH, grow(face_local, 1)));
    Box fine_slab;
    for (int d = 0; d < 3; ++d) {
      fine_slab.lo[d] = 2 * f.cells.lo[d];
      fine_slab.hi[d] = 2 * f.cells.hi[d];
    }
    fine_slab.lo[f.axis] = std::min(f.fine_in, f.fine_g);
    fine_slab.hi[f.axis] = std::max(f.fine_in, f.fine_g) + 1;
    reads.push_back(check::access(px, shift(fine_slab, Vec3{} - fine_lo)));
  }
  const auto scope =
      check::scope_if_enabled("amr.reflux", std::move(writes),
                              std::move(reads));

  for (const InterfaceFace& f : faces) {
    const int a = f.axis, t1 = (a + 1) % 3, t2 = (a + 2) % 3;
    sweep_rows("amr.reflux", f.cells, [&](index_t i, index_t j, index_t k) {
      const Vec3 c{i, j, k};
      Vec3 d = c;
      d[a] += f.d_step;
      const real_t u_c = xH(c.x - coarse_lo.x, c.y - coarse_lo.y,
                            c.z - coarse_lo.z);
      const real_t u_d = xH(d.x - coarse_lo.x, d.y - coarse_lo.y,
                            d.z - coarse_lo.z);
      real_t pair_sum = 0;
      for (index_t dt1 = 0; dt1 <= 1; ++dt1) {
        for (index_t dt2 = 0; dt2 <= 1; ++dt2) {
          Vec3 fin, fg;
          fin[a] = f.fine_in;
          fg[a] = f.fine_g;
          fin[t1] = fg[t1] = 2 * c[t1] + dt1;
          fin[t2] = fg[t2] = 2 * c[t2] + dt2;
          const real_t u_f = px(fin.x - fine_lo.x, fin.y - fine_lo.y,
                                fin.z - fine_lo.z);
          const real_t u_g = px(fg.x - fine_lo.x, fg.y - fine_lo.y,
                                fg.z - fine_lo.z);
          pair_sum += u_f - u_g;
        }
      }
      rH(c.x - coarse_lo.x, c.y - coarse_lo.y, c.z - coarse_lo.z) +=
          beta_h * ((u_d - u_c) - real_t{0.5} * pair_sum);
    });
  }
}

void restrict_patch(BrickedArray& coarse, const BrickedArray& fine,
                    const InterfaceGeometry& g) {
  trace::TraceSpan span("amr.restrictPatch");
  const Box covered =
      intersect(coarsen(g.patch_fine, 2), g.rank_coarse);
  if (covered.empty()) return;
  const Vec3 fine_lo = g.part_fine.lo;
  const Vec3 coarse_lo = g.rank_coarse.lo;
  const Box covered_local = shift(covered, Vec3{} - coarse_lo);
  const auto scope = check::scope_if_enabled(
      "amr.restrictPatch", {check::access(coarse, covered_local)},
      {check::access(fine, shift(refine(covered, 2), Vec3{} - fine_lo))});
  sweep_rows("amr.restrictPatch", covered,
             [&](index_t ci, index_t cj, index_t ck) {
               const index_t fi = 2 * ci - fine_lo.x;
               const index_t fj = 2 * cj - fine_lo.y;
               const index_t fk = 2 * ck - fine_lo.z;
               // Pairwise tree: on 8 equal summands every intermediate
               // doubles exactly, so R∘P_pc is the identity bitwise —
               // the covered coarse solution stays slaved with no
               // rounding drift across correction round-trips.
               const real_t s =
                   ((fine(fi, fj, fk) + fine(fi + 1, fj, fk)) +
                    (fine(fi, fj + 1, fk) + fine(fi + 1, fj + 1, fk))) +
                   ((fine(fi, fj, fk + 1) + fine(fi + 1, fj, fk + 1)) +
                    (fine(fi, fj + 1, fk + 1) +
                     fine(fi + 1, fj + 1, fk + 1)));
               coarse(ci - coarse_lo.x, cj - coarse_lo.y, ck - coarse_lo.z) =
                   real_t{0.125} * s;
             });
}

void correct_patch(BrickedArray& px, const BrickedArray& e,
                   const InterfaceGeometry& g) {
  trace::TraceSpan span("amr.correctPatch");
  if (g.part_fine.empty()) return;
  const Vec3 fine_lo = g.part_fine.lo;
  const Vec3 coarse_lo = g.rank_coarse.lo;
  const Box part_local = Box::from_extent(g.part_fine.extent());
  const Box covered_local =
      shift(coarse_cover(g.part_fine), Vec3{} - coarse_lo);
  const auto scope = check::scope_if_enabled(
      "amr.correctPatch", {check::access(px, part_local)},
      {check::access(e, covered_local)});
  sweep_rows("amr.correctPatch", g.part_fine,
             [&](index_t gi, index_t gj, index_t gk) {
               px(gi - fine_lo.x, gj - fine_lo.y, gk - fine_lo.z) +=
                   e(floor_div(gi, 2) - coarse_lo.x,
                     floor_div(gj, 2) - coarse_lo.y,
                     floor_div(gk, 2) - coarse_lo.z);
             });
}

}  // namespace gmg::amr
