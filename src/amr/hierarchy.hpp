// Patch-based locally refined brick hierarchies (DESIGN.md §17).
//
// An AmrHierarchy is a uniform coarse GmgSolver hierarchy plus one
// refined patch: a brick-aligned rectangular region of the finest
// solver level overlaid with 2x-finer bricks. The patch is decomposed
// by the same rank grid as its parent level — each rank owns the
// intersection of the global fine patch box with its refined
// subdomain — and its per-rank part is a synthetic MgLevel whose
// kernels come from the same resolve_level_kernels specializer the
// solver uses, so fusion-era kernel bindings, the constexpr footprint
// verifier, and the GMG_CHECK shadow tracker all apply unchanged.
//
// The covered/uncovered split of the coarse level is expressed as
// BrickMasks threaded into the memoized BrickGrid::iteration_plan:
// composite-operator kernels on the coarse level iterate only the
// bricks their mask admits, reusing the BrickPlanItem machinery and
// the compile-time full-brick bounds.
#pragma once

#include <functional>
#include <memory>

#include "amr/interface_kernels.hpp"
#include "brick/brick_arena.hpp"
#include "brick/brick_mask.hpp"
#include "comm/exchange.hpp"
#include "gmg/solver.hpp"

namespace gmg::amr {

struct AmrOptions {
  /// Coarse-hierarchy configuration; defines the composite coarse
  /// grid, the operator (identity_coef/laplacian_coef), the smoother
  /// family, and the V-cycle below the patch. Requires
  /// operator_radius == 1 (the reflux stencil is the 7-point flux
  /// form) and a pointwise Jacobi-family smoother on the patch.
  GmgOptions gmg;
  /// The region to refine, as a global COARSE-cell box. Must be
  /// brick-aligned, strictly interior to the domain, and every face
  /// plane must lie strictly inside a rank of the decomposition.
  Box patch;
  /// Patch smoothing sweeps per composite cycle.
  int patch_smooths = 6;
  /// Coarse V-cycles per composite correction solve. Fixed count, so
  /// the collective schedule is identical on every rank.
  int correction_vcycles = 2;
  /// Composite solve: stop when the composite residual max-norm drops
  /// below tolerance * (initial residual norm).
  real_t tolerance = 1e-9;
  int max_cycles = 60;
};

class AmrHierarchy {
 public:
  AmrHierarchy(const AmrOptions& opts, const CartDecomp& decomp, int rank);

  /// Evaluate f at cell centers of both composite levels: the coarse
  /// RHS everywhere at coarse centers, the patch RHS at fine centers.
  /// Resets xH and the patch solution to zero.
  void set_rhs(const std::function<real_t(real_t, real_t, real_t)>& f);

  const AmrOptions& options() const { return opts_; }
  GmgSolver& solver() { return solver_; }
  const GmgSolver& solver() const { return solver_; }

  /// Whether this rank owns any patch bricks.
  bool has_part() const { return !geom_.part_fine.empty(); }
  /// The per-rank patch part as a synthetic MgLevel (kernels resolved,
  /// no exchange engine — PatchExchange handles patch ghosts).
  MgLevel& patch() { return patch_; }
  const MgLevel& patch() const { return patch_; }
  const InterfaceGeometry& geometry() const { return geom_; }
  comm::PatchExchange& patch_exchange() { return *pexch_; }

  /// Composite coarse fields, owned here (distinct from the solver's
  /// per-vcycle fields, which the correction solve scribbles on):
  /// the composite solution, RHS, and residual on the coarse grid.
  BrickedArray& xH() { return xH_; }
  BrickedArray& bH() { return bH_; }
  BrickedArray& rH() { return rH_; }
  BrickedArray& AxH() { return AxH_; }

  /// Level masks over the finest solver grid: bricks wholly inside
  /// the patch (covered) and the complement (uncovered).
  const BrickMask& covered() const { return *covered_; }
  const BrickMask& uncovered() const { return *uncovered_; }

  /// Park / revive every per-solve field (the solver hierarchy's, the
  /// composite coarse fields, and the patch fields — the latter a
  /// different bucket size than any solver level when the part is
  /// brick-count-odd, exercising the arena's mixed-bucket path).
  void detach_field_storage(BrickArena& arena);
  void attach_field_storage(BrickArena& arena);

 private:
  AmrOptions opts_;
  CartDecomp decomp_;
  int rank_ = 0;
  GmgSolver solver_;
  InterfaceGeometry geom_;
  std::unique_ptr<BrickMask> covered_;
  std::unique_ptr<BrickMask> uncovered_;
  BrickedArray xH_, bH_, rH_, AxH_;
  MgLevel patch_;
  std::unique_ptr<comm::PatchExchange> pexch_;
  bool detached_ = false;
};

}  // namespace gmg::amr
