#include "amr/hierarchy.hpp"

#include "amr/composite_audit.hpp"
#include "common/error.hpp"
#include "gmg/kernel_plan.hpp"
#include "gmg/operators.hpp"

namespace gmg::amr {

AmrHierarchy::AmrHierarchy(const AmrOptions& opts, const CartDecomp& decomp,
                           int rank)
    : opts_(opts),
      decomp_(decomp),
      rank_(rank),
      solver_(opts.gmg, decomp, rank) {
  GMG_REQUIRE(opts_.gmg.operator_radius == 1,
              "AMR refluxing is derived from the 7-point flux form; "
              "operator_radius must be 1");
  GMG_REQUIRE(opts_.gmg.smoother == Smoother::kPointJacobi ||
                  opts_.gmg.smoother == Smoother::kWeightedJacobi,
              "the patch smoother is the pointwise Jacobi family");
  GMG_REQUIRE(opts_.patch_smooths >= 1 && opts_.correction_vcycles >= 1,
              "composite cycle needs at least one sweep of each stage");

  const MgLevel& L0 = solver_.level(0);
  const Box& pc = opts_.patch;
  const Vec3 global = L0.global;
  const Vec3 sub = decomp.subdomain_extent();
  GMG_REQUIRE(!pc.empty(), "refinement patch is empty");
  for (int a = 0; a < 3; ++a) {
    const index_t b = a == 0 ? L0.shape.bx : (a == 1 ? L0.shape.by
                                                     : L0.shape.bz);
    GMG_REQUIRE(pc.lo[a] % b == 0 && pc.hi[a] % b == 0,
                "patch must be aligned to coarse bricks (so the "
                "covered/uncovered split is brick-granular)");
    GMG_REQUIRE(pc.lo[a] >= 1 && pc.hi[a] <= global[a] - 1,
                "patch must be strictly interior to the domain (the "
                "interface treatment does not wrap periodically)");
    GMG_REQUIRE(pc.lo[a] % sub[a] != 0 && pc.hi[a] % sub[a] != 0,
                "every patch face plane must lie strictly inside a rank "
                "(interface cells, their covered neighbors, and the fine "
                "interface layers then share a rank)");
  }

  geom_.patch_fine = refine(pc, 2);
  geom_.rank_coarse = decomp.subdomain_box(rank);
  geom_.part_fine =
      intersect(geom_.patch_fine, refine(geom_.rank_coarse, 2));

  // Level masks over the finest solver grid. Alignment makes every
  // brick wholly covered or wholly uncovered; a partial brick would
  // fail the REQUIRE above before reaching here.
  const std::shared_ptr<const BrickGrid>& grid = L0.grid;
  covered_ = std::make_unique<BrickMask>(grid->num_bricks());
  uncovered_ = std::make_unique<BrickMask>(grid->num_bricks());
  const Vec3 bdim{L0.shape.bx, L0.shape.by, L0.shape.bz};
  for_each(grid->interior_box(), [&](index_t bi, index_t bj, index_t bk) {
    const Vec3 lo = L0.rank_box.lo +
                    Vec3{bi * bdim.x, bj * bdim.y, bk * bdim.z};
    const bool cov = pc.covers(Box{lo, lo + bdim});
    const std::int32_t id = grid->storage_id(Vec3{bi, bj, bk});
    covered_->set(id, cov);
    uncovered_->set(id, !cov);
  });

  // Composite coarse fields on the solver's finest grid (the solver's
  // own x/b/Ax/r are scratch for the correction solves).
  xH_ = BrickedArray(grid, L0.shape);
  bH_ = BrickedArray(grid, L0.shape);
  rH_ = BrickedArray(grid, L0.shape);
  AxH_ = BrickedArray(grid, L0.shape);

  // The per-rank patch part as a synthetic MgLevel: same brick shape,
  // half the spacing, kernels bound by the same specializer the
  // solver levels use. No exchange engine — PatchExchange below does
  // the masked fine–fine ghost rounds.
  if (has_part()) {
    const Vec3 ext = geom_.part_fine.extent();
    GMG_REQUIRE(ext.x % bdim.x == 0 && ext.y % bdim.y == 0 &&
                    ext.z % bdim.z == 0,
                "patch part must be brick-divisible (follows from the "
                "alignment requirements)");
    patch_.level = 0;
    patch_.cells = ext;
    patch_.global = Vec3{2 * global.x, 2 * global.y, 2 * global.z};
    patch_.rank_box = geom_.part_fine;
    patch_.shape = L0.shape;
    patch_.h = L0.h / real_t{2};
    patch_.radius = 1;
    const real_t c_over_h2 =
        opts_.gmg.laplacian_coef / (patch_.h * patch_.h);
    patch_.alpha = opts_.gmg.identity_coef - 6.0 * c_over_h2;
    patch_.beta = c_over_h2;
    patch_.beta2 = 0.0;
    GMG_REQUIRE(patch_.alpha != 0.0, "patch operator diagonal vanishes");
    patch_.gamma = -0.5 / patch_.alpha;
    patch_.grid = std::make_shared<BrickGrid>(Vec3{
        ext.x / bdim.x, ext.y / bdim.y, ext.z / bdim.z});
    patch_.x = BrickedArray(patch_.grid, patch_.shape);
    patch_.b = BrickedArray(patch_.grid, patch_.shape);
    patch_.Ax = BrickedArray(patch_.grid, patch_.shape);
    patch_.r = BrickedArray(patch_.grid, patch_.shape);
    resolve_level_kernels(opts_.gmg, patch_);
  }
  pexch_ = std::make_unique<comm::PatchExchange>(
      has_part() ? patch_.grid : nullptr, L0.shape, geom_.patch_fine,
      geom_.part_fine, decomp, rank);

  // The correction-solve schedule was already proven by the embedded
  // GmgSolver's constructor; this proves the composite cycle around it
  // (masked coarse passes, interface kernels, patch rounds).
  if (check::verify_schedule_enabled()) verify_composite_schedule(*this);
}

void AmrHierarchy::set_rhs(
    const std::function<real_t(real_t, real_t, real_t)>& f) {
  GMG_REQUIRE(!detached_, "attach_field_storage() before set_rhs on a "
                          "parked hierarchy");
  const MgLevel& L0 = solver_.level(0);
  const real_t H = L0.h;
  for_each(L0.interior(), [&](index_t i, index_t j, index_t k) {
    const real_t px = (static_cast<real_t>(L0.rank_box.lo.x + i) + 0.5) * H;
    const real_t py = (static_cast<real_t>(L0.rank_box.lo.y + j) + 0.5) * H;
    const real_t pz = (static_cast<real_t>(L0.rank_box.lo.z + k) + 0.5) * H;
    bH_(i, j, k) = f(px, py, pz);
  });
  init_zero(xH_);
  init_zero(rH_);
  init_zero(AxH_);
  if (has_part()) {
    const real_t h = patch_.h;
    for_each(patch_.interior(), [&](index_t i, index_t j, index_t k) {
      const real_t px =
          (static_cast<real_t>(geom_.part_fine.lo.x + i) + 0.5) * h;
      const real_t py =
          (static_cast<real_t>(geom_.part_fine.lo.y + j) + 0.5) * h;
      const real_t pz =
          (static_cast<real_t>(geom_.part_fine.lo.z + k) + 0.5) * h;
      patch_.b(i, j, k) = f(px, py, pz);
    });
    init_zero(patch_.x);
    init_zero(patch_.Ax);
    init_zero(patch_.r);
  }
}

void AmrHierarchy::detach_field_storage(BrickArena& arena) {
  if (detached_) return;
  solver_.detach_field_storage(arena);
  arena.release(std::move(xH_));
  arena.release(std::move(bH_));
  arena.release(std::move(rH_));
  arena.release(std::move(AxH_));
  if (has_part()) {
    arena.release(std::move(patch_.x));
    arena.release(std::move(patch_.b));
    arena.release(std::move(patch_.Ax));
    arena.release(std::move(patch_.r));
  }
  detached_ = true;
}

void AmrHierarchy::attach_field_storage(BrickArena& arena) {
  if (!detached_) return;
  solver_.attach_field_storage(arena);
  const MgLevel& L0 = solver_.level(0);
  xH_ = arena.acquire(L0.grid, L0.shape);
  bH_ = arena.acquire(L0.grid, L0.shape);
  rH_ = arena.acquire(L0.grid, L0.shape);
  AxH_ = arena.acquire(L0.grid, L0.shape);
  if (has_part()) {
    patch_.x = arena.acquire(patch_.grid, patch_.shape);
    patch_.b = arena.acquire(patch_.grid, patch_.shape);
    patch_.Ax = arena.acquire(patch_.grid, patch_.shape);
    patch_.r = arena.acquire(patch_.grid, patch_.shape);
  }
  detached_ = false;
}

}  // namespace gmg::amr
