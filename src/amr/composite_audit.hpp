// Dry-run schedule recording for the AMR composite cycle
// (DESIGN.md §18). Records the full planned launch sequence of one
// composite-residual evaluation plus one composite cycle — the masked
// uncovered-brick coarse kernels (with their scheduled and covered
// storage-id sets, so the verifier can prove a masked plan never
// sweeps a covered brick), the interface prolong/reflux/restrict
// kernels spanning the coarse level and the synthetic patch level,
// the patch-exchange rounds, and the embedded correction V-cycles
// walked by the same ScheduleWalker the solo solver verifies with.
#pragma once

#include "check/schedule.hpp"

namespace gmg::amr {

class AmrHierarchy;

/// Record the planned composite schedule: initial composite residual,
/// then one full cycle (correction solve, correction application,
/// patch smooth, slave restriction, closing residual). The patch part
/// appears as synthetic level index solver().num_levels().
check::Schedule record_composite_schedule(const AmrHierarchy& h);

/// Record and statically verify; throws gmg::Error naming the
/// offending step pair. Called from the AmrHierarchy constructor when
/// check::verify_schedule_enabled().
void verify_composite_schedule(const AmrHierarchy& h);

}  // namespace gmg::amr
