// Composite-grid solve over an AmrHierarchy (DESIGN.md §17): a
// local-defect-correction / MLAT-style cycle. Each composite cycle
//   1. solves A_H e = r_comp on the coarse composite grid with a
//      fixed number of V-cycles of the existing GmgSolver (so the
//      collective schedule is rank-aligned by construction),
//   2. applies the correction to the composite solution and,
//      piecewise-constant prolonged, to the patch,
//   3. smooths the patch with Dirichlet closure: interface ghosts
//      prolonged from the corrected coarse solution and frozen for
//      the sweep block, fine–fine ghosts re-exchanged per sweep,
//   4. slaves the covered coarse solution to the restricted patch,
// and then recomputes the composite residual: masked coarse
// operator on uncovered bricks, reflux at the coarse–fine interface,
// restricted patch residual on covered bricks.
#pragma once

#include <vector>

#include "amr/hierarchy.hpp"

namespace gmg::amr {

struct CompositeResult {
  int cycles = 0;
  real_t initial_residual = 0;
  real_t final_residual = 0;
  bool converged = false;
  double seconds = 0;
  std::vector<real_t> history;  // residual norm after each cycle
};

class CompositeSolver {
 public:
  explicit CompositeSolver(AmrHierarchy& hier) : h_(hier) {}

  /// Cycle until the composite residual max-norm drops below
  /// tolerance * (initial norm) or max_cycles is reached. Collective.
  CompositeResult solve(comm::Communicator& comm);

  /// Recompute the global composite residual max-norm (and, as a
  /// byproduct, the hierarchy's rH/patch-r fields). Collective.
  real_t composite_residual(comm::Communicator& comm);

 private:
  void correction_solve(comm::Communicator& comm);
  void patch_smooth(comm::Communicator& comm);

  /// The sanctioned ghost-round entry points (gmg_lint rule 8): one
  /// coarse-engine round over the composite solution, one masked
  /// fine–fine patch round.
  void exchange_coarse_solution(comm::Communicator& comm);
  void exchange_patch_solution(comm::Communicator& comm);

  AmrHierarchy& h_;
};

}  // namespace gmg::amr
