#include "amr/composite_audit.hpp"

#include <string>
#include <vector>

#include "amr/composite_solver.hpp"
#include "amr/hierarchy.hpp"
#include "amr/interface_kernels.hpp"
#include "gmg/operators.hpp"
#include "gmg/schedule_audit.hpp"

namespace gmg::amr {

namespace {

using check::read_access;
using check::write_access;

/// Records the composite cycle against a hierarchy, with the embedded
/// correction V-cycles walked by the solver's own ScheduleWalker so
/// the coarse margins carry across composite stages.
class CompositeRecorder {
 public:
  CompositeRecorder(check::ScheduleRecorder& rec, const AmrHierarchy& h)
      : rec_(rec), h_(h), w_(rec, h.solver()),
        patch_level_(h.solver().num_levels()) {
    const MgLevel& L0 = h_.solver().level(0);
    interior0_ = L0.interior();
    bx0_ = L0.shape.bx;
    // The patch part's coarse image, in this rank's local coarse
    // coordinates (patch face planes lie strictly inside ranks).
    part_coarse_ = shift(coarsen(h_.geometry().part_fine, 2),
                         Vec3{0, 0, 0} - L0.rank_box.lo);
    if (h_.has_part()) interior_p_ = h_.patch().interior();
  }

  void record() {
    w_.add_levels();
    w_.set_canonical_initial();
    if (h_.has_part()) {
      check::LevelInfo info;
      info.level = patch_level_;
      info.interior = interior_p_;
      info.ghost_depth = h_.patch().shape.bx;
      rec_.add_level(info);
    }
    // Post-set_rhs composite state: xH/rH/AxH and the patch fields
    // are init_zero'd whole-array (ghost zeros valid to brick depth);
    // the two RHS fields are interior-written with stale ghosts.
    rec_.set_initial("xH", 0, bx0_);
    rec_.set_initial("rH", 0, bx0_);
    rec_.set_initial("AxH", 0, bx0_);
    rec_.set_initial("bH", 0, 0);
    if (h_.has_part()) {
      const index_t pbx = h_.patch().shape.bx;
      rec_.set_initial("x", patch_level_, pbx);
      rec_.set_initial("Ax", patch_level_, pbx);
      rec_.set_initial("r", patch_level_, pbx);
      rec_.set_initial("b", patch_level_, 0);
    }

    composite_residual();
    // One composite cycle.
    w_.reset_fine_for_correction("rH");
    for (int i = 0; i < h_.options().correction_vcycles; ++i) w_.vcycle();

    check::ScheduleStep& ax =
        rec_.kernel("kernel.axpy", 0, axpy_interior_effects());
    ax.accesses.push_back(write_access("xH", 0, interior0_, "y"));
    ax.accesses.push_back(read_access("xH", 0, interior0_, 0, "y"));
    ax.accesses.push_back(read_access("x", 0, interior0_, 0, "x"));
    if (h_.has_part()) {
      check::ScheduleStep& cp = rec_.kernel("amr.correctPatch", patch_level_,
                                            correct_patch_effects());
      cp.accesses.push_back(
          write_access("x", patch_level_, interior_p_, "patch_x"));
      cp.accesses.push_back(
          read_access("x", patch_level_, interior_p_, 0, "patch_x"));
      cp.accesses.push_back(read_access("x", 0, part_coarse_, 0, "coarse"));
    }
    patch_smooth();
    if (h_.has_part()) restrict_patch_step("xH");
    composite_residual();
  }

 private:
  void mask_ids(check::ScheduleStep& step) {
    const BrickMask& cov = h_.covered();
    const BrickMask& unc = h_.uncovered();
    for (std::int32_t id = 0; id < unc.size(); ++id)
      if (unc.test(id)) step.scheduled_bricks.push_back(id);
    for (std::int32_t id = 0; id < cov.size(); ++id)
      if (cov.test(id)) step.covered_bricks.push_back(id);
  }

  void exchange_coarse_xh() { rec_.exchange(0, {"xH"}, bx0_); }
  void exchange_patch_x() { rec_.exchange(patch_level_, {"x"}, 1); }

  void prolong_ghosts() {
    check::ScheduleStep& step = rec_.kernel("amr.prolongGhosts", patch_level_,
                                            prolong_interface_ghosts_effects());
    step.accesses.push_back(
        write_access("x", patch_level_, grow(interior_p_, 1), "patch_x"));
    step.accesses.push_back(read_access("xH", 0, part_coarse_, 1, "xH"));
  }

  void patch_apply_residual() {
    check::ScheduleStep& ap =
        rec_.kernel("kernel.applyOp", patch_level_, apply_op_effects(1));
    ap.accesses.push_back(write_access("Ax", patch_level_, interior_p_, "Ax"));
    ap.accesses.push_back(read_access("x", patch_level_, interior_p_, 1, "x"));
    check::ScheduleStep& res =
        rec_.kernel("kernel.residual", patch_level_, residual_effects());
    res.accesses.push_back(write_access("r", patch_level_, interior_p_, "r"));
    res.accesses.push_back(read_access("b", patch_level_, interior_p_, 0, "b"));
    res.accesses.push_back(
        read_access("Ax", patch_level_, interior_p_, 0, "Ax"));
  }

  void restrict_patch_step(const char* coarse_field) {
    check::ScheduleStep& step =
        rec_.kernel("amr.restrictPatch", 0, restrict_patch_effects());
    step.accesses.push_back(write_access(coarse_field, 0, part_coarse_,
                                         "coarse"));
    const char* fine = coarse_field == std::string("xH") ? "x" : "r";
    step.accesses.push_back(
        read_access(fine, patch_level_, interior_p_, 0, "fine"));
  }

  void composite_residual() {
    exchange_coarse_xh();
    if (h_.has_part()) {
      prolong_ghosts();
      exchange_patch_x();
      patch_apply_residual();
    }

    // Masked coarse pass: the uncovered bricks only. The verifier
    // proves the scheduled set never intersects the covered set.
    check::ScheduleStep& ap = rec_.kernel(
        "kernel.applyOp", 0,
        apply_op_effects(static_cast<int>(h_.solver().level(0).radius)));
    ap.accesses.push_back(write_access("AxH", 0, interior0_, "Ax"));
    ap.accesses.push_back(read_access(
        "xH", 0, interior0_, static_cast<int>(h_.solver().level(0).radius),
        "x"));
    mask_ids(ap);
    check::ScheduleStep& res =
        rec_.kernel("kernel.residual", 0, residual_effects());
    res.accesses.push_back(write_access("rH", 0, interior0_, "r"));
    res.accesses.push_back(read_access("bH", 0, interior0_, 0, "b"));
    res.accesses.push_back(read_access("AxH", 0, interior0_, 0, "Ax"));
    mask_ids(res);

    if (h_.has_part()) {
      check::ScheduleStep& rf =
          rec_.kernel("amr.reflux", 0, reflux_residual_effects());
      rf.accesses.push_back(write_access("rH", 0, interior0_, "rH"));
      rf.accesses.push_back(read_access("rH", 0, interior0_, 0, "rH"));
      rf.accesses.push_back(read_access("xH", 0, interior0_, 1, "xH"));
      rf.accesses.push_back(
          read_access("x", patch_level_, interior_p_, 1, "patch_x"));
      restrict_patch_step("rH");
      check::ScheduleStep& pm =
          rec_.kernel("kernel.maxNorm", patch_level_, max_norm_effects());
      pm.accesses.push_back(
          read_access("r", patch_level_, interior_p_, 0, "a"));
    }
    check::ScheduleStep& mn =
        rec_.kernel("kernel.maxNorm", 0, max_norm_effects());
    mn.accesses.push_back(read_access("rH", 0, interior0_, 0, "a"));
    rec_.reduction("allreduce.max_norm", 0, 0, rec_.next_reduction_group());
  }

  void patch_smooth() {
    exchange_coarse_xh();
    if (h_.has_part()) prolong_ghosts();
    for (int s = 0; s < h_.options().patch_smooths; ++s) {
      exchange_patch_x();
      if (!h_.has_part()) continue;
      check::ScheduleStep& ap =
          rec_.kernel("kernel.applyOp", patch_level_, apply_op_effects(1));
      ap.accesses.push_back(
          write_access("Ax", patch_level_, interior_p_, "Ax"));
      ap.accesses.push_back(
          read_access("x", patch_level_, interior_p_, 1, "x"));
      check::ScheduleStep& sm =
          rec_.kernel("kernel.smooth", patch_level_, smooth_effects());
      sm.accesses.push_back(write_access("x", patch_level_, interior_p_, "x"));
      sm.accesses.push_back(
          read_access("x", patch_level_, interior_p_, 0, "x"));
      sm.accesses.push_back(
          read_access("Ax", patch_level_, interior_p_, 0, "Ax"));
      sm.accesses.push_back(
          read_access("b", patch_level_, interior_p_, 0, "b"));
    }
  }

  check::ScheduleRecorder& rec_;
  const AmrHierarchy& h_;
  ScheduleWalker w_;
  int patch_level_;
  Box interior0_, interior_p_, part_coarse_;
  index_t bx0_ = 0;
};

}  // namespace

check::Schedule record_composite_schedule(const AmrHierarchy& h) {
  check::ScheduleRecorder rec("amr.composite");
  CompositeRecorder(rec, h).record();
  return rec.take();
}

void verify_composite_schedule(const AmrHierarchy& h) {
  check::ScheduleVerifier().verify(record_composite_schedule(h));
}

}  // namespace gmg::amr
