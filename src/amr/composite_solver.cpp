#include "amr/composite_solver.hpp"

#include <algorithm>

#include "common/timer.hpp"
#include "gmg/operators.hpp"
#include "trace/trace.hpp"

namespace gmg::amr {

void CompositeSolver::exchange_coarse_solution(comm::Communicator& comm) {
  h_.solver().level(0).exchange->exchange(comm, h_.xH());
}

void CompositeSolver::exchange_patch_solution(comm::Communicator& comm) {
  h_.patch_exchange().exchange(comm, h_.patch().x);
}

real_t CompositeSolver::composite_residual(comm::Communicator& comm) {
  trace::TraceSpan span("amr.compositeResidual");
  MgLevel& L0 = h_.solver().level(0);
  MgLevel& P = h_.patch();
  const InterfaceGeometry& g = h_.geometry();

  // Ghost protocol: coarse ghosts of xH first (the interface
  // prolongation taps reach one coarse ghost cell where a patch face
  // runs along a rank boundary), then the prolonged interface layer,
  // then the fine–fine round.
  exchange_coarse_solution(comm);
  if (h_.has_part()) {
    prolong_interface_ghosts(P.x, h_.xH(), g);
    exchange_patch_solution(comm);
    P.plan.apply(P.Ax, P.x, P.interior());
    residual(P.r, P.b, P.Ax, P.interior());
  }

  // Masked coarse residual: uncovered bricks only, through the same
  // memoized iteration-plan machinery as the uniform kernels.
  apply_op(h_.AxH(), h_.xH(), L0.alpha, L0.beta, L0.interior(),
           h_.uncovered());
  residual(h_.rH(), h_.bH(), h_.AxH(), L0.interior(), h_.uncovered());

  real_t local = 0;
  if (h_.has_part()) {
    // Replace the coarse flux across the interface by the averaged
    // fine flux, then inject the patch residual into the covered
    // bricks — rH now holds the composite residual everywhere.
    reflux_residual(h_.rH(), h_.xH(), P.x, g, L0.beta);
    restrict_patch(h_.rH(), P.r, g);
    local = max_norm(P.r);
  }
  local = std::max(local, max_norm(h_.rH()));
  return static_cast<real_t>(comm.allreduce_max(local));
}

void CompositeSolver::correction_solve(comm::Communicator& comm) {
  trace::TraceSpan span("amr.correctionSolve");
  GmgSolver& S = h_.solver();
  MgLevel& L0 = S.level(0);
  // The composite residual is the correction equation's RHS; start
  // from a zero guess so the fixed V-cycle count is a pure linear
  // operation on rH (zero ghosts are valid for a zero x).
  copy_interior(L0.b, h_.rH());
  init_zero(L0.x);
  L0.margin = L0.shape.bx;
  L0.b_ghosts_valid = false;
  for (int i = 0; i < h_.options().correction_vcycles; ++i) S.vcycle(comm);
}

void CompositeSolver::patch_smooth(comm::Communicator& comm) {
  trace::TraceSpan span("amr.patchSmooth");
  MgLevel& P = h_.patch();
  // Dirichlet closure: prolong the interface ghosts from the current
  // coarse solution once and freeze them for the whole sweep block;
  // only fine–fine ghosts are re-exchanged per sweep.
  exchange_coarse_solution(comm);
  if (h_.has_part()) {
    prolong_interface_ghosts(P.x, h_.xH(), h_.geometry());
  }
  for (int s = 0; s < h_.options().patch_smooths; ++s) {
    exchange_patch_solution(comm);
    if (h_.has_part()) {
      P.plan.apply(P.Ax, P.x, P.interior());
      P.plan.smooth(P.interior());
    }
  }
}

CompositeResult CompositeSolver::solve(comm::Communicator& comm) {
  trace::TraceSpan span("amr.solve");
  Timer timer;
  CompositeResult result;
  MgLevel& L0 = h_.solver().level(0);

  real_t res = composite_residual(comm);
  result.initial_residual = res;
  result.history.push_back(res);
  const real_t target = h_.options().tolerance * res;

  while (res > target && result.cycles < h_.options().max_cycles) {
    correction_solve(comm);
    // Apply the coarse correction to the composite solution and,
    // piecewise-constant prolonged, to the patch (R∘P_pc = identity,
    // so the covered coarse cells stay consistent until the patch
    // smooth refines them).
    axpy_interior(h_.xH(), real_t{1}, L0.x);
    if (h_.has_part()) {
      correct_patch(h_.patch().x, L0.x, h_.geometry());
    }
    patch_smooth(comm);
    if (h_.has_part()) {
      restrict_patch(h_.xH(), h_.patch().x, h_.geometry());
    }
    res = composite_residual(comm);
    ++result.cycles;
    result.history.push_back(res);
  }
  result.final_residual = res;
  result.converged = res <= target;
  result.seconds = timer.elapsed();
  return result;
}

}  // namespace gmg::amr
