// Coarse–fine interface kernels for patch-based refinement
// (DESIGN.md §17): ghost prolongation into patch boundary bricks,
// flux refluxing back onto the coarse composite level, and the
// covered-region transfer operators. All kernels are rank-local —
// the hierarchy geometry guarantees every patch face lies strictly
// inside one rank — and bitwise deterministic for any worker count
// (deterministic chunk plans, disjoint single-writer cells).
#pragma once

#include "brick/bricked_array.hpp"
#include "check/effects.hpp"
#include "common/types.hpp"
#include "mesh/box.hpp"

namespace gmg::amr {

/// Rank-local geometry bundle threaded through the interface kernels.
/// Patch fields are indexed in part-local fine cells (0-origin at
/// `part_fine.lo`), coarse fields in rank-local coarse cells
/// (0-origin at `rank_coarse.lo`); all three boxes are global.
struct InterfaceGeometry {
  Box patch_fine;   // the whole patch, global fine cells
  Box part_fine;    // this rank's part of it, global fine cells
  Box rank_coarse;  // this rank's subdomain, global coarse cells
};

/// Fill the one-fine-cell ghost layer of the patch field `px` on every
/// patch-boundary face of the part with the cell-centered trilinear
/// prolongation of the coarse solution `xH` (the DSL expression
/// dsl::cf_interface_prolongation; footprint
/// check::amr_interface_prolongation_shape). Faces interior to the
/// patch are skipped — PatchExchange fills those from the neighboring
/// part. Requires valid coarse ghosts on `xH` (taps cross the rank
/// boundary where a patch face runs along one).
void prolong_interface_ghosts(BrickedArray& px, const BrickedArray& xH,
                              const InterfaceGeometry& g);

/// Flux refluxing (DESIGN.md §17): at every coarse interface cell c
/// (just outside the patch, face-adjacent to a covered cell d) replace
/// the coarse face flux in the already-computed residual rH by the
/// area-averaged fine flux across the same physical face:
///
///   rH(c) += beta_H * ((u_d - u_c) - 0.5 * sum_{2x2}(u_f - u_g))
///
/// where u_f is the first fine cell inside the patch and u_g the
/// prolonged fine ghost straddling the face (footprints
/// check::reflux_coarse_shape / check::reflux_fine_shape). Requires
/// prolonged interface ghosts on `px` consistent with `xH`.
void reflux_residual(BrickedArray& rH, const BrickedArray& xH,
                     const BrickedArray& px, const InterfaceGeometry& g,
                     real_t beta_h);

/// coarse(c) = 1/8 sum of the 2x2x2 fine cells covering c, over the
/// covered region of this rank only (check::restriction_shape). Used
/// both to slave the covered coarse solution to the patch and to
/// inject the patch residual into the composite residual.
void restrict_patch(BrickedArray& coarse, const BrickedArray& fine,
                    const InterfaceGeometry& g);

/// patch(f) += coarse(parent(f)) over the whole part — the
/// piecewise-constant prolongation of a coarse correction
/// (check::interpolation_pc_shape; exactly inverted by restrict_patch
/// on constants, so the covered coarse solution stays slaved).
void correct_patch(BrickedArray& px, const BrickedArray& e,
                   const InterfaceGeometry& g);

// Static effect summaries (check/effects.hpp, DESIGN.md §18). Roles:
// `patch_x` is the fine patch field, `xH`/`rH` the composite coarse
// fields. Reaches restate the interface footprints pinned in
// check/footprint.hpp.

/// Writes the one-cell interface ghost layer of the patch (the
/// recorded access box carries the ghost spill); trilinear coarse taps
/// reach one coarse ghost layer.
constexpr check::EffectSummary prolong_interface_ghosts_effects() {
  return check::EffectSummary("amr.prolongGhosts")
      .writes("patch_x")
      .reads("xH", 1);
}

/// Coarse-side taps reach the face-adjacent covered neighbor (radius
/// 1); fine-side taps read the patch's first interior cells and its
/// prolonged interface ghosts (radius 1 on the patch level).
constexpr check::EffectSummary reflux_residual_effects() {
  return check::EffectSummary("amr.reflux")
      .writes("rH")
      .reads("rH")
      .reads("xH", 1)
      .reads("patch_x", 1);
}

constexpr check::EffectSummary restrict_patch_effects() {
  return check::EffectSummary("amr.restrictPatch")
      .writes("coarse")
      .reads("fine");
}

constexpr check::EffectSummary correct_patch_effects() {
  return check::EffectSummary("amr.correctPatch")
      .writes("patch_x")
      .reads("patch_x")
      .reads("coarse");
}

}  // namespace gmg::amr
