// Apply a DSL expression over bricked storage — the fine-grain
// data-blocking engine of the paper.
//
// The iteration is brick-by-brick. Inside a brick, cells whose taps
// stay in-brick run through a unit-stride SIMD loop over contiguous
// memory (this is what fine-grain blocking buys: one address stream
// per brick instead of one per (j,k) row — paper §III). Cells on the
// brick boundary resolve their out-of-brick taps through the brick
// adjacency table, exactly like BrickLib's generated code.
//
// The engine takes an *active region* in cell coordinates that may
// extend into the ghost bricks: this is what makes communication-
// avoiding smoothing possible (compute redundantly into the ghost
// region, shrinking by the stencil radius each sweep — paper §V).
#pragma once

#include <array>
#include <optional>
#include <tuple>

#include "brick/brick_plan.hpp"
#include "brick/bricked_array.hpp"
#include "check/footprint.hpp"
#include "check/shadow.hpp"
#include "dsl/expr.hpp"

namespace gmg::dsl {

namespace detail {

/// Accessor for one brick: resolves local coordinates that step out of
/// [0,B)^3 through the adjacency table. |tap| must be <= B, i.e. the
/// stencil radius may not exceed the brick dimension (true for every
/// operator in the paper: radius 1, bricks 4 or 8).
template <typename BD, int NSlots>
struct BrickAccessor {
  std::array<const real_t*, NSlots> field;  // storage base per slot
  const std::int32_t* adj;                  // 27 adjacency entries
  std::int32_t id;                          // current brick

  template <int Slot>
  real_t load(index_t li, index_t lj, index_t lk) const {
    const int sx = li < 0 ? -1 : (li >= BD::bx ? 1 : 0);
    const int sy = lj < 0 ? -1 : (lj >= BD::by ? 1 : 0);
    const int sz = lk < 0 ? -1 : (lk >= BD::bz ? 1 : 0);
    std::int32_t b = id;
    if (sx != 0 || sy != 0 || sz != 0) {
      b = adj[direction_index(sx, sy, sz)];
      GMG_ASSERT(b >= 0);
      li -= sx * BD::bx;
      lj -= sy * BD::by;
      lk -= sz * BD::bz;
    }
    return field[Slot][static_cast<std::size_t>(b) * BD::volume +
                       static_cast<std::size_t>((lk * BD::by + lj) * BD::bx +
                                                li)];
  }
};

/// Accessor for rows whose taps provably stay inside the brick: plain
/// contiguous loads, vectorizable.
template <typename BD, int NSlots>
struct FastAccessor {
  std::array<const real_t*, NSlots> brick;  // base pointer of this brick

  template <int Slot>
  real_t load(index_t li, index_t lj, index_t lk) const {
    return brick[Slot][static_cast<std::size_t>((lk * BD::by + lj) * BD::bx +
                                                li)];
  }
};

template <bool Increment, typename BD, typename Expr, typename... Fields>
void apply_bricks_impl(BD, const Expr& expr, BrickedArray& out,
                       const Box& active, const Fields&... inputs) {
  const BrickGrid& grid = out.grid();
  const auto check_grid = [&](const BrickedArray& f) {
    GMG_REQUIRE(&f.grid() == &grid,
                "all fields of one apply must share a brick grid");
  };
  (check_grid(inputs), ...);

  // Footprint-vs-ghost-depth check (src/check): an undersized ghost
  // depth is a setup failure here, not a silent out-of-ghost read in
  // the accessor.
  const Extents ext = expr.extents();
  check::require_footprint_fits("dsl::apply",
                                ext, BrickShape{BD::bx, BD::by, BD::bz});

  constexpr int kSlots = sizeof...(Fields);
  const std::array<const real_t*, kSlots> bases{inputs.data()...};

  // Access-hazard scope: out is written over `active`; each input is
  // read over `active` grown by its own slot's tap reach.
  std::optional<check::KernelScope> scope;
  if (check::enabled()) {
    const OffsetSet offs = expr.offsets();
    std::vector<check::Access> reads;
    reads.reserve(kSlots);
    int slot = 0;
    const auto add_read = [&](const BrickedArray& f) {
      const Extents se = offs.slot_extents(slot++);
      const Box reach{{active.lo.x + se.lo[0], active.lo.y + se.lo[1],
                       active.lo.z + se.lo[2]},
                      {active.hi.x + se.hi[0], active.hi.y + se.hi[1],
                       active.hi.z + se.hi[2]}};
      reads.push_back(check::access(f, reach));
    };
    (add_read(inputs), ...);
    scope.emplace("dsl.apply",
                  std::vector<check::Access>{check::access(out, active)},
                  std::move(reads));
  }

  // Taps of the outermost active cells must still hit existing bricks
  // (the plan itself validates the active region's own brick cover).
  {
    const Box tap_region{
        {floor_div(active.lo.x + ext.lo[0], BD::bx),
         floor_div(active.lo.y + ext.lo[1], BD::by),
         floor_div(active.lo.z + ext.lo[2], BD::bz)},
        {floor_div(active.hi.x - 1 + ext.hi[0], BD::bx) + 1,
         floor_div(active.hi.y - 1 + ext.hi[1], BD::by) + 1,
         floor_div(active.hi.z - 1 + ext.hi[2], BD::bz) + 1}};
    GMG_REQUIRE(grid.extended_box().covers(tap_region),
                "stencil taps reach beyond the ghost bricks");
  }

  const auto plan = grid.iteration_plan(active, Vec3{BD::bx, BD::by, BD::bz});
  real_t* const out_base = out.data();
  for_each_plan_brick<BD>(
      "dsl.apply", *plan, [&](const BrickPlanItem& it, auto full) {
        constexpr bool kFull = decltype(full)::value;
        const std::int32_t id = it.id;
        real_t* __restrict ob =
            out_base + static_cast<std::size_t>(id) * BD::volume;

        // Active cell region clipped to this brick (local coords) —
        // whole-brick constants for the plan's full bricks.
        const index_t ilo = kFull ? 0 : it.ilo;
        const index_t ihi = kFull ? BD::bx : it.ihi;
        const index_t jlo = kFull ? 0 : it.jlo;
        const index_t jhi = kFull ? BD::by : it.jhi;
        const index_t klo = kFull ? 0 : it.klo;
        const index_t khi = kFull ? BD::bz : it.khi;

        const BrickAccessor<BD, kSlots> slow{bases, it.adj, id};
        std::array<const real_t*, kSlots> brick_bases{};
        for (int s = 0; s < kSlots; ++s)
          brick_bases[static_cast<std::size_t>(s)] =
              bases[static_cast<std::size_t>(s)] +
              static_cast<std::size_t>(id) * BD::volume;
        const FastAccessor<BD, kSlots> fast{brick_bases};

        for (index_t lk = klo; lk < khi; ++lk) {
          const bool zin = (lk + ext.lo[2] >= 0) && (lk + ext.hi[2] < BD::bz);
          for (index_t lj = jlo; lj < jhi; ++lj) {
            const bool yin = (lj + ext.lo[1] >= 0) && (lj + ext.hi[1] < BD::by);
            real_t* __restrict orow = ob + (lk * BD::by + lj) * BD::bx;
            if (zin && yin) {
              // Row interior in y/z: split x into shell|core|shell so
              // the core is a pure in-brick SIMD loop.
              const index_t core_lo =
                  std::max<index_t>(ilo, static_cast<index_t>(-ext.lo[0]));
              const index_t core_hi = std::min<index_t>(
                  ihi, BD::bx - static_cast<index_t>(ext.hi[0]));
              for (index_t li = ilo; li < std::min(core_lo, ihi); ++li) {
                const real_t v = expr.eval(slow, li, lj, lk);
                if constexpr (Increment)
                  orow[li] += v;
                else
                  orow[li] = v;
              }
              if (core_lo < core_hi) {
#pragma omp simd
                for (index_t li = core_lo; li < core_hi; ++li) {
                  const real_t v = expr.eval(fast, li, lj, lk);
                  if constexpr (Increment)
                    orow[li] += v;
                  else
                    orow[li] = v;
                }
              }
              for (index_t li = std::max(core_hi, ilo); li < ihi; ++li) {
                const real_t v = expr.eval(slow, li, lj, lk);
                if constexpr (Increment)
                  orow[li] += v;
                else
                  orow[li] = v;
              }
            } else {
              for (index_t li = ilo; li < ihi; ++li) {
                const real_t v = expr.eval(slow, li, lj, lk);
                if constexpr (Increment)
                  orow[li] += v;
                else
                  orow[li] = v;
              }
            }
          }
        }
      });
}

}  // namespace detail

/// out(i,j,k) = expr over `active` (cell coordinates; may extend into
/// the ghost bricks for communication-avoiding sweeps).
template <typename Expr, typename... Fields>
void apply(const Expr& expr, BrickedArray& out, const Box& active,
           const Fields&... inputs) {
  const auto check_shape = [&](const BrickedArray& f) {
    GMG_REQUIRE(f.shape() == out.shape(), "brick shape mismatch");
  };
  (check_shape(inputs), ...);
  with_brick_dims(out.shape(), [&](auto bd) {
    detail::apply_bricks_impl<false>(bd, expr, out, active, inputs...);
  });
}

/// out(i,j,k) += expr over `active`.
template <typename Expr, typename... Fields>
void apply_increment(const Expr& expr, BrickedArray& out, const Box& active,
                     const Fields&... inputs) {
  const auto check_shape = [&](const BrickedArray& f) {
    GMG_REQUIRE(f.shape() == out.shape(), "brick shape mismatch");
  };
  (check_shape(inputs), ...);
  with_brick_dims(out.shape(), [&](auto bd) {
    detail::apply_bricks_impl<true>(bd, expr, out, active, inputs...);
  });
}

}  // namespace gmg::dsl
