// Stencil expression DSL — the C++ analogue of BrickLib's Python DSL
// (paper Fig. 1). A 7-point stencil is written as:
//
//   using namespace gmg::dsl;
//   constexpr Index<0> i; constexpr Index<1> j; constexpr Index<2> k;
//   Grid<0> x;                       // input field, slot 0
//   Coef alpha(-6.0 / (h * h)), beta(1.0 / (h * h));
//   auto calc = alpha * x(i, j, k)
//             + beta * (x(i + 1, j, k) + x(i - 1, j, k)
//                     + x(i, j + 1, k) + x(i, j - 1, k)
//                     + x(i, j, k + 1) + x(i, j, k - 1));
//
// Expressions are evaluated against an *accessor* supplying field loads
// at relative offsets; the apply engines (apply_array.hpp /
// apply_brick.hpp) instantiate the expression inside their loop nests,
// so the compiler sees one fused, inlinable kernel per expression —
// the same effect as BrickLib's code generator emitting a specialized
// kernel from the DSL description.
#pragma once

#include <algorithm>
#include <type_traits>
#include <utility>

#include "common/error.hpp"
#include "common/types.hpp"

namespace gmg::dsl {

/// Relative tap offset of a grid access.
struct Offset {
  int dx = 0, dy = 0, dz = 0;
};

/// Per-axis index term `i + c`. D is the axis (0=i, 1=j, 2=k).
template <int D>
struct IndexTerm {
  int shift = 0;
};

/// The loop indices of Fig. 1: Index(0), Index(1), Index(2).
template <int D>
struct Index {
  constexpr operator IndexTerm<D>() const { return {0}; }
  constexpr friend IndexTerm<D> operator+(Index, int c) { return {c}; }
  constexpr friend IndexTerm<D> operator-(Index, int c) { return {-c}; }
  constexpr friend IndexTerm<D> operator+(int c, Index) { return {c}; }
};

/// Stencil reach of an expression: per-axis min/max tap offsets.
struct Extents {
  int lo[3] = {0, 0, 0};
  int hi[3] = {0, 0, 0};

  constexpr Extents merged(const Extents& o) const {
    Extents r;
    for (int d = 0; d < 3; ++d) {
      r.lo[d] = std::min(lo[d], o.lo[d]);
      r.hi[d] = std::max(hi[d], o.hi[d]);
    }
    return r;
  }
  constexpr int radius() const {
    int r = 0;
    for (int d = 0; d < 3; ++d) r = std::max({r, -lo[d], hi[d]});
    return r;
  }
};

/// One field tap of an expression: which input slot it reads and at
/// what relative offset.
struct Tap {
  int slot = 0;
  int dx = 0, dy = 0, dz = 0;

  constexpr friend bool operator==(const Tap& a, const Tap& b) {
    return a.slot == b.slot && a.dx == b.dx && a.dy == b.dy && a.dz == b.dz;
  }
};

/// Deduplicated set of taps — the exact footprint of a stencil
/// expression, built structurally by offsets() on every DSL node.
/// Everything here is constexpr: an expression constructed from
/// literal coefficients yields a footprint usable in static_assert
/// (the compile-time half of src/check).
struct OffsetSet {
  // The largest shipped stencil is the radius-4 star (25 taps); the
  // 27-point box uses 27. Leave generous room for composed exprs.
  static constexpr int kCapacity = 160;

  Tap taps[kCapacity] = {};
  int count = 0;

  constexpr bool contains(const Tap& t) const {
    for (int n = 0; n < count; ++n) {
      if (taps[n] == t) return true;
    }
    return false;
  }
  constexpr bool contains(int slot, int dx, int dy, int dz) const {
    return contains(Tap{slot, dx, dy, dz});
  }

  constexpr void add(const Tap& t) {
    if (contains(t)) return;
    GMG_REQUIRE(count < kCapacity, "stencil footprint exceeds OffsetSet capacity");
    taps[count] = t;
    ++count;
  }

  constexpr OffsetSet merged(const OffsetSet& o) const {
    OffsetSet r = *this;
    for (int n = 0; n < o.count; ++n) r.add(o.taps[n]);
    return r;
  }

  constexpr int num_taps() const { return count; }

  /// Set equality (order-independent; both sides are deduplicated).
  constexpr bool same_taps(const OffsetSet& o) const {
    if (count != o.count) return false;
    for (int n = 0; n < count; ++n) {
      if (!o.contains(taps[n])) return false;
    }
    return true;
  }

  /// Per-axis reach over every tap of every slot.
  constexpr Extents extents() const {
    Extents e;
    for (int n = 0; n < count; ++n) {
      Extents t;
      t.lo[0] = std::min(taps[n].dx, 0);
      t.hi[0] = std::max(taps[n].dx, 0);
      t.lo[1] = std::min(taps[n].dy, 0);
      t.hi[1] = std::max(taps[n].dy, 0);
      t.lo[2] = std::min(taps[n].dz, 0);
      t.hi[2] = std::max(taps[n].dz, 0);
      e = e.merged(t);
    }
    return e;
  }

  /// Per-axis reach of one input slot only (e.g. the coefficient field
  /// of a variable-coefficient operator has a tighter footprint than
  /// the solution field).
  constexpr Extents slot_extents(int slot) const {
    Extents e;
    for (int n = 0; n < count; ++n) {
      if (taps[n].slot != slot) continue;
      Extents t;
      t.lo[0] = std::min(taps[n].dx, 0);
      t.hi[0] = std::max(taps[n].dx, 0);
      t.lo[1] = std::min(taps[n].dy, 0);
      t.hi[1] = std::max(taps[n].dy, 0);
      t.lo[2] = std::min(taps[n].dz, 0);
      t.hi[2] = std::max(taps[n].dz, 0);
      e = e.merged(t);
    }
    return e;
  }

  constexpr int radius() const { return extents().radius(); }

  constexpr int max_slot() const {
    int m = -1;
    for (int n = 0; n < count; ++n) m = std::max(m, taps[n].slot);
    return m;
  }
};

// ---------------------------------------------------------------------------
// Expression nodes. Each node provides:
//   eval(acc, i, j, k) -> real_t     evaluate at a point via the accessor
//   extents() -> Extents             static tap reach
//   offsets() -> OffsetSet           exact (slot, offset) tap set
// Accessors provide: load(slot, i+dx, j+dy, k+dz) -> real_t.
// ---------------------------------------------------------------------------

/// Access to input field number `Slot` at a fixed offset.
template <int Slot>
struct GridAccess {
  Offset off;

  template <typename Acc>
  real_t eval(const Acc& acc, index_t i, index_t j, index_t k) const {
    return acc.template load<Slot>(i + off.dx, j + off.dy, k + off.dz);
  }
  constexpr Extents extents() const {
    Extents e;
    e.lo[0] = std::min(off.dx, 0);
    e.hi[0] = std::max(off.dx, 0);
    e.lo[1] = std::min(off.dy, 0);
    e.hi[1] = std::max(off.dy, 0);
    e.lo[2] = std::min(off.dz, 0);
    e.hi[2] = std::max(off.dz, 0);
    return e;
  }
  constexpr OffsetSet offsets() const {
    OffsetSet s;
    s.add(Tap{Slot, off.dx, off.dy, off.dz});
    return s;
  }
};

/// An input grid placeholder bound to accessor slot `Slot` (Fig. 1's
/// Grid("x", 3)).
template <int Slot>
struct Grid {
  constexpr GridAccess<Slot> operator()(IndexTerm<0> i, IndexTerm<1> j,
                                        IndexTerm<2> k) const {
    return {{i.shift, j.shift, k.shift}};
  }
};

/// A scalar coefficient (Fig. 1's ConstRef), bound at construction.
struct Coef {
  real_t value;
  constexpr explicit Coef(real_t v) : value(v) {}

  template <typename Acc>
  real_t eval(const Acc&, index_t, index_t, index_t) const {
    return value;
  }
  constexpr Extents extents() const { return {}; }
  constexpr OffsetSet offsets() const { return {}; }
};

template <typename L, typename R>
struct Add {
  L l;
  R r;
  template <typename Acc>
  real_t eval(const Acc& a, index_t i, index_t j, index_t k) const {
    return l.eval(a, i, j, k) + r.eval(a, i, j, k);
  }
  constexpr Extents extents() const { return l.extents().merged(r.extents()); }
  constexpr OffsetSet offsets() const { return l.offsets().merged(r.offsets()); }
};

template <typename L, typename R>
struct Sub {
  L l;
  R r;
  template <typename Acc>
  real_t eval(const Acc& a, index_t i, index_t j, index_t k) const {
    return l.eval(a, i, j, k) - r.eval(a, i, j, k);
  }
  constexpr Extents extents() const { return l.extents().merged(r.extents()); }
  constexpr OffsetSet offsets() const { return l.offsets().merged(r.offsets()); }
};

template <typename L, typename R>
struct Mul {
  L l;
  R r;
  template <typename Acc>
  real_t eval(const Acc& a, index_t i, index_t j, index_t k) const {
    return l.eval(a, i, j, k) * r.eval(a, i, j, k);
  }
  constexpr Extents extents() const { return l.extents().merged(r.extents()); }
  constexpr OffsetSet offsets() const { return l.offsets().merged(r.offsets()); }
};

template <typename E>
struct Neg {
  E e;
  template <typename Acc>
  real_t eval(const Acc& a, index_t i, index_t j, index_t k) const {
    return -e.eval(a, i, j, k);
  }
  constexpr Extents extents() const { return e.extents(); }
  constexpr OffsetSet offsets() const { return e.offsets(); }
};

// Trait gating the operators to DSL node types only.
template <typename T>
struct is_expr : std::false_type {};
template <int S>
struct is_expr<GridAccess<S>> : std::true_type {};
template <>
struct is_expr<Coef> : std::true_type {};
template <typename L, typename R>
struct is_expr<Add<L, R>> : std::true_type {};
template <typename L, typename R>
struct is_expr<Sub<L, R>> : std::true_type {};
template <typename L, typename R>
struct is_expr<Mul<L, R>> : std::true_type {};
template <typename E>
struct is_expr<Neg<E>> : std::true_type {};

template <typename T>
concept ExprNode = is_expr<std::remove_cvref_t<T>>::value;

/// Wrap raw doubles so `2.0 * x(i,j,k)` works like `Coef(2.0) * ...`.
template <typename T>
constexpr decltype(auto) as_expr(T&& v) {
  if constexpr (ExprNode<T>) {
    return std::forward<T>(v);
  } else {
    return Coef(static_cast<real_t>(v));
  }
}

template <typename L, typename R>
  requires(ExprNode<L> || ExprNode<R>)
constexpr auto operator+(L l, R r) {
  return Add{as_expr(l), as_expr(r)};
}
template <typename L, typename R>
  requires(ExprNode<L> || ExprNode<R>)
constexpr auto operator-(L l, R r) {
  return Sub{as_expr(l), as_expr(r)};
}
template <typename L, typename R>
  requires(ExprNode<L> || ExprNode<R>)
constexpr auto operator*(L l, R r) {
  return Mul{as_expr(l), as_expr(r)};
}
template <ExprNode E>
constexpr auto operator-(E e) {
  return Neg{e};
}

}  // namespace gmg::dsl
