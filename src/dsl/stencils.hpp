// Pre-built stencil expressions used throughout the library: the
// paper's 7-point constant-coefficient operator plus general star
// stencils of radius 1..4 for the DSL tests and microbenches.
#pragma once

#include <array>

#include "dsl/expr.hpp"

namespace gmg::dsl {

inline constexpr Index<0> i{};
inline constexpr Index<1> j{};
inline constexpr Index<2> k{};

/// The paper's applyOp stencil (Fig. 1): alpha*center + beta*(6
/// face neighbors). Factored form — 6 adds + 2 multiplies = 8 FLOPs
/// per point, matching the Table IV accounting (AI = 8/16 = 0.50).
template <int Slot = 0>
constexpr auto laplacian_7pt(real_t alpha, real_t beta) {
  Grid<Slot> x;
  return Coef(alpha) * x(i, j, k) +
         Coef(beta) * (x(i + 1, j, k) + x(i - 1, j, k) + x(i, j + 1, k) +
                       x(i, j - 1, k) + x(i, j, k + 1) + x(i, j, k - 1));
}

/// 27-point box stencil: c0*center + c1*(6 faces) + c2*(12 edges) +
/// c3*(8 corners) — the compact radius-1 footprint used by 27-point
/// discretizations; here chiefly a footprint-analysis reference shape.
template <int Slot = 0>
constexpr auto box_27pt(real_t c0, real_t c1, real_t c2, real_t c3) {
  Grid<Slot> x;
  auto faces = x(i + 1, j, k) + x(i - 1, j, k) + x(i, j + 1, k) +
               x(i, j - 1, k) + x(i, j, k + 1) + x(i, j, k - 1);
  auto edges = x(i + 1, j + 1, k) + x(i + 1, j - 1, k) + x(i - 1, j + 1, k) +
               x(i - 1, j - 1, k) + x(i + 1, j, k + 1) + x(i + 1, j, k - 1) +
               x(i - 1, j, k + 1) + x(i - 1, j, k - 1) + x(i, j + 1, k + 1) +
               x(i, j + 1, k - 1) + x(i, j - 1, k + 1) + x(i, j - 1, k - 1);
  auto corners = x(i + 1, j + 1, k + 1) + x(i + 1, j + 1, k - 1) +
                 x(i + 1, j - 1, k + 1) + x(i + 1, j - 1, k - 1) +
                 x(i - 1, j + 1, k + 1) + x(i - 1, j + 1, k - 1) +
                 x(i - 1, j - 1, k + 1) + x(i - 1, j - 1, k - 1);
  return Coef(c0) * x(i, j, k) + Coef(c1) * faces + Coef(c2) * edges +
         Coef(c3) * corners;
}

/// Cell-centered coarse–fine interface prolongation (AMR, DESIGN.md
/// §17) for one fine-cell parity: `sx, sy, sz` in {-1, +1} give the
/// side of the parent coarse cell the fine center sits on, and the
/// blend is the cell-centered trilinear 3/4·near + 1/4·far per axis.
/// The union of the eight parity footprints is the radius-1 box —
/// check::amr_interface_prolongation_shape(); the AMR interface kernel
/// static_asserts both that union and the per-parity weights' sum.
template <int Slot = 0>
constexpr auto cf_interface_prolongation(int sx, int sy, int sz) {
  Grid<Slot> x;
  const real_t wn = 0.75, wf = 0.25;
  return Coef(wn * wn * wn) * x(i, j, k) +
         Coef(wf * wn * wn) * x(i + sx, j, k) +
         Coef(wn * wf * wn) * x(i, j + sy, k) +
         Coef(wf * wf * wn) * x(i + sx, j + sy, k) +
         Coef(wn * wn * wf) * x(i, j, k + sz) +
         Coef(wf * wn * wf) * x(i + sx, j, k + sz) +
         Coef(wn * wf * wf) * x(i, j + sy, k + sz) +
         Coef(wf * wf * wf) * x(i + sx, j + sy, k + sz);
}

/// Star stencil of radius R with per-distance coefficients:
/// c[0]*center + sum_d c[d]*(6 neighbors at distance d). Exercises the
/// DSL and the brick engine's shell/core split at larger radii.
template <int R, int Slot = 0>
constexpr auto star_stencil(const std::array<real_t, R + 1>& c) {
  Grid<Slot> x;
  auto acc = Coef(c[0]) * x(i, j, k);
  if constexpr (R >= 1) {
    auto ring = [&](int d) {
      return x(i + d, j, k) + x(i - d, j, k) + x(i, j + d, k) +
             x(i, j - d, k) + x(i, j, k + d) + x(i, j, k - d);
    };
    if constexpr (R == 1) {
      return acc + Coef(c[1]) * ring(1);
    } else if constexpr (R == 2) {
      return acc + Coef(c[1]) * ring(1) + Coef(c[2]) * ring(2);
    } else if constexpr (R == 3) {
      return acc + Coef(c[1]) * ring(1) + Coef(c[2]) * ring(2) +
             Coef(c[3]) * ring(3);
    } else {
      return acc + Coef(c[1]) * ring(1) + Coef(c[2]) * ring(2) +
             Coef(c[3]) * ring(3) + Coef(c[4]) * ring(4);
    }
  } else {
    return acc;
  }
}

}  // namespace gmg::dsl
