// Apply a DSL expression over the conventional ghosted array layout.
// This is the reference/baseline engine: straightforward loop nest,
// SIMD on the unit-stride axis.
#pragma once

#include <tuple>

#include "dsl/expr.hpp"
#include "mesh/array3d.hpp"

namespace gmg::dsl {

namespace detail {

/// Accessor binding expression slots to Array3D inputs.
template <typename... Arrays>
struct ArrayAccessor {
  std::tuple<const Arrays*...> in;

  template <int Slot>
  real_t load(index_t i, index_t j, index_t k) const {
    return (*std::get<Slot>(in))(i, j, k);
  }
};

}  // namespace detail

/// out(i,j,k) = expr(i,j,k) over `region` (interior coordinates). The
/// expression's taps must stay within the arrays' ghost shells — this
/// is checked once up front, not per point.
template <typename Expr, typename... Arrays>
void apply(const Expr& expr, Array3D& out, const Box& region,
           const Arrays&... inputs) {
  const Extents e = expr.extents();
  auto check = [&](const Array3D& a) {
    for (int d = 0; d < 3; ++d) {
      GMG_REQUIRE(region.lo[d] + e.lo[d] >= -a.ghost() &&
                      region.hi[d] + e.hi[d] <= a.extent()[d] + a.ghost(),
                  "stencil taps extend beyond the ghost shell");
    }
  };
  (check(inputs), ...);
  GMG_REQUIRE(out.whole().covers(region), "output does not cover region");

  const detail::ArrayAccessor<Arrays...> acc{{&inputs...}};
  for (index_t k = region.lo.z; k < region.hi.z; ++k) {
    for (index_t j = region.lo.y; j < region.hi.y; ++j) {
      real_t* __restrict row = &out(region.lo.x, j, k);
#pragma omp simd
      for (index_t i = 0; i < region.hi.x - region.lo.x; ++i) {
        row[i] = expr.eval(acc, region.lo.x + i, j, k);
      }
    }
  }
}

/// out(i,j,k) += expr(i,j,k) — used by interpolation+increment.
template <typename Expr, typename... Arrays>
void apply_increment(const Expr& expr, Array3D& out, const Box& region,
                     const Arrays&... inputs) {
  const detail::ArrayAccessor<Arrays...> acc{{&inputs...}};
  for (index_t k = region.lo.z; k < region.hi.z; ++k) {
    for (index_t j = region.lo.y; j < region.hi.y; ++j) {
      real_t* __restrict row = &out(region.lo.x, j, k);
#pragma omp simd
      for (index_t i = 0; i < region.hi.x - region.lo.x; ++i) {
        row[i] += expr.eval(acc, region.lo.x + i, j, k);
      }
    }
  }
}

}  // namespace gmg::dsl
