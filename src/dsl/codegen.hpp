// Offline stencil code generation — the reproduction of BrickLib's
// vector code generator (paper §III). A stencil is described in a
// small text format:
//
//     kernel laplacian_7pt
//     coef alpha beta
//     tap   0  0  0  alpha
//     tap   1  0  0  beta
//     tap  -1  0  0  beta
//     ...
//
// and `generate_kernel` emits a specialized C++ brick kernel: taps are
// grouped by coefficient, neighbor-brick row pointers are hoisted per
// row, the row core is a branchless SIMD loop, and only the x-boundary
// cells fall back to the generic element resolver — the same shape the
// hand-written apply_op kernel (and BrickLib's generated CUDA/HIP/SYCL
// code) has. tools/stencilgen is the CLI; generated headers are
// checked in under src/dsl/generated/ and golden-tested.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"

namespace gmg::dsl::codegen {

struct Tap {
  int dx = 0, dy = 0, dz = 0;
  std::string coef;
};

struct StencilSpec {
  std::string name;
  std::vector<std::string> coefs;  // parameter order
  std::vector<Tap> taps;

  int radius() const;
  /// Parse the text format above; throws gmg::Error on malformed
  /// input (unknown directive, tap with undeclared coefficient, ...).
  static StencilSpec parse(const std::string& text);
};

/// Emit the full generated header (include guard, namespace, kernel
/// template, runtime-dispatch wrapper).
std::string generate_kernel(const StencilSpec& spec);

}  // namespace gmg::dsl::codegen
