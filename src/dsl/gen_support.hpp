// Runtime support for kernels emitted by tools/stencilgen — the
// reproduction's analogue of BrickLib's vector code generator
// (paper §III). Generated kernels iterate brick-by-brick; this header
// supplies the brick/row/element resolution they lean on, so the
// emitted code is just the unrolled, coefficient-factored loop body.
#pragma once

#include <optional>

#include "brick/brick_plan.hpp"
#include "brick/bricked_array.hpp"
#include "check/footprint.hpp"
#include "check/shadow.hpp"

namespace gmg::dsl::gen {

/// Per-brick context handed to generated loop bodies: resolves
/// neighbor-brick row pointers and single out-of-brick elements
/// through the adjacency table.
template <typename BD>
struct BrickCtx {
  const real_t* in_base = nullptr;      // input field storage
  const std::int32_t* adj = nullptr;    // 27-entry adjacency of brick

  const real_t* brick(int sx, int sy, int sz) const {
    const std::int32_t b = adj[direction_index(sx, sy, sz)];
    GMG_ASSERT(b >= 0);
    return in_base + static_cast<std::size_t>(b) * BD::volume;
  }

  /// Pointer to the row holding taps at plane offset (dy, dz) from
  /// local row (lj, lk); |dy|,|dz| <= brick dims.
  const real_t* row(index_t lj, index_t lk, int dy, int dz) const {
    index_t j = lj + dy, k = lk + dz;
    const int sy = j < 0 ? -1 : (j >= BD::by ? 1 : 0);
    const int sz = k < 0 ? -1 : (k >= BD::bz ? 1 : 0);
    j -= sy * BD::by;
    k -= sz * BD::bz;
    return brick(0, sy, sz) + (k * BD::by + j) * BD::bx;
  }

  /// Single element at tap (dx, dy, dz) from local cell (li, lj, lk),
  /// resolving all three axes (used for the x-boundary patch cells).
  real_t at(index_t li, index_t lj, index_t lk, int dx, int dy,
            int dz) const {
    index_t i = li + dx, j = lj + dy, k = lk + dz;
    const int sx = i < 0 ? -1 : (i >= BD::bx ? 1 : 0);
    const int sy = j < 0 ? -1 : (j >= BD::by ? 1 : 0);
    const int sz = k < 0 ? -1 : (k >= BD::bz ? 1 : 0);
    i -= sx * BD::bx;
    j -= sy * BD::by;
    k -= sz * BD::bz;
    return brick(sx, sy, sz)[(k * BD::by + j) * BD::bx + i];
  }
};

/// The tap-reach check shared by all generated kernels: every tap of
/// the outermost active cells must land in an existing brick.
template <typename BD>
void require_tap_reach(const BrickGrid& grid, const Box& active, int radius) {
  const Box tap_region{
      {floor_div(active.lo.x - radius, BD::bx),
       floor_div(active.lo.y - radius, BD::by),
       floor_div(active.lo.z - radius, BD::bz)},
      {floor_div(active.hi.x - 1 + radius, BD::bx) + 1,
       floor_div(active.hi.y - 1 + radius, BD::by) + 1,
       floor_div(active.hi.z - 1 + radius, BD::bz) + 1}};
  GMG_REQUIRE(grid.extended_box().covers(tap_region),
              "stencil taps reach beyond the ghost bricks");
}

/// Brick range covered by an active cell region, with the tap-reach
/// check shared by all generated kernels.
template <typename BD>
Box generated_brick_region(const BrickGrid& grid, const Box& active,
                           int radius) {
  const Box brick_region{
      {floor_div(active.lo.x, BD::bx), floor_div(active.lo.y, BD::by),
       floor_div(active.lo.z, BD::bz)},
      {floor_div(active.hi.x - 1, BD::bx) + 1,
       floor_div(active.hi.y - 1, BD::by) + 1,
       floor_div(active.hi.z - 1, BD::bz) + 1}};
  require_tap_reach<BD>(grid, active, radius);
  return brick_region;
}

/// Run a generated per-brick body over the grid's cached iteration
/// plan on the kernel runtime. `body(item, is_full)` is invoked for
/// every brick covering `active` (is_full as in for_each_plan_brick).
template <typename BD, typename Fn>
void run_plan(const BrickGrid& grid, const Box& active, int radius,
              const char* name, Fn&& body) {
  require_tap_reach<BD>(grid, active, radius);
  const auto plan = grid.iteration_plan(active, Vec3{BD::bx, BD::by, BD::bz});
  for_each_plan_brick<BD>(name, *plan, body);
}

/// As above, but with the kernel's fields declared for the src/check
/// access-hazard detector: `out` is written over `active`, `in` read
/// over `active` grown by the stencil radius. stencilgen emits calls
/// to this overload; the footprint-vs-ghost-depth check runs here too.
template <typename BD, typename Fn>
void run_plan(BrickedArray& out, const BrickedArray& in, const Box& active,
              int radius, const char* name, Fn&& body) {
  {
    Extents ext;
    for (int d = 0; d < 3; ++d) {
      ext.lo[d] = -radius;
      ext.hi[d] = radius;
    }
    check::require_footprint_fits(name, ext,
                                  BrickShape{BD::bx, BD::by, BD::bz});
  }
  std::optional<check::KernelScope> scope;
  if (check::enabled()) {
    scope.emplace(
        name, std::vector<check::Access>{check::access(out, active)},
        std::vector<check::Access>{check::access(in, grow(active, radius))});
  }
  run_plan<BD>(out.grid(), active, radius, name, body);
}

}  // namespace gmg::dsl::gen
