#include "serve/hierarchy_cache.hpp"

#include <algorithm>

#include "trace/trace.hpp"

namespace gmg::serve {

std::unique_ptr<CachedHierarchy> HierarchyCache::acquire(
    const std::string& key) {
  std::unique_ptr<CachedHierarchy> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find_if(idle_.begin(), idle_.end(),
                           [&](const std::unique_ptr<CachedHierarchy>& e) {
                             return e->key == key;
                           });
    if (it == idle_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    entry = std::move(*it);
    idle_.erase(it);
    ++stats_.hits;
  }
  // Attach outside the lock: zeroing the fields is real work and other
  // executors must be able to hit the cache meanwhile.
  trace::TraceSpan span("serve.cache_attach");
  for (auto& s : entry->solvers) s->attach_field_storage(*arena_);
  return entry;
}

void HierarchyCache::release(std::unique_ptr<CachedHierarchy> entry) {
  if (!entry) return;
  {
    trace::TraceSpan span("serve.cache_detach");
    for (auto& s : entry->solvers) s->detach_field_storage(*arena_);
  }
  entry->last_used_ns = trace::now_ns();
  std::lock_guard<std::mutex> lock(mu_);
  idle_.push_back(std::move(entry));
  while (idle_.size() > capacity_) {
    auto lru = std::min_element(
        idle_.begin(), idle_.end(),
        [](const std::unique_ptr<CachedHierarchy>& a,
           const std::unique_ptr<CachedHierarchy>& b) {
          return a->last_used_ns < b->last_used_ns;
        });
    idle_.erase(lru);
    ++stats_.evictions;
  }
}

HierarchyCache::Stats HierarchyCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.idle_entries = idle_.size();
  return s;
}

}  // namespace gmg::serve
