// SolveService: the multi-tenant solve front-end (DESIGN.md §12).
//
// The solver below this layer is a one-shot harness: build a
// hierarchy, solve, exit. A serving deployment instead sees a stream
// of solve requests over a handful of recurring problem shapes. This
// subsystem turns the reproduction into that system:
//
//   submit(request) --> bounded admission queue (priority + FIFO,
//   blocking backpressure) --> executor pool --> hierarchy cache
//   (reuse full GmgLevel chains, skip setup) --> brick arena (recycle
//   field storage, skip malloc/first-touch) --> simmpi World solve on
//   the shared exec engine (one compute stream per cached solver) -->
//   completion future.
//
// Determinism contract: a request's result is bitwise identical to
// running the same request alone on a fresh solver — cached
// hierarchies are re-zeroed through the same chunk plans, and the
// kernel runtime's fixed chunk boundaries/reduction trees make results
// independent of what else the service is executing concurrently.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "brick/brick_arena.hpp"
#include "gmg/solver.hpp"
#include "serve/hierarchy_cache.hpp"

namespace gmg::serve {

/// The domain a request solves on: the global box and how it is
/// decomposed over simulated ranks.
struct DomainSpec {
  Vec3 global_extent{64, 64, 64};
  Vec3 rank_grid{1, 1, 1};

  int ranks() const { return static_cast<int>(rank_grid.volume()); }
};

/// A named operator configuration (the request's `operator_id` refers
/// to one of these). `options` fixes everything about the cycle; the
/// optional `coefficient` switches the hierarchy to the
/// variable-coefficient operator, evaluated once per cached hierarchy.
struct OperatorSpec {
  GmgOptions options;
  std::function<real_t(real_t, real_t, real_t)> coefficient;
};

struct RequestResult;

struct SolveRequest {
  DomainSpec domain;
  std::string operator_id = "poisson";
  /// RHS as a function of physical cell-center coordinates.
  std::function<real_t(real_t, real_t, real_t)> rhs;
  real_t tolerance = 1e-10;
  int max_vcycles = 100;
  /// Higher runs earlier; FIFO within a priority class.
  int priority = 0;
  /// Wall-clock budget from submission; expired requests abort at the
  /// next cycle boundary (0 = none).
  double deadline_seconds = 0;
  /// Copy the finest-level solution into the result (rank-major, each
  /// rank's interior in for_each order).
  bool return_solution = true;
  /// Invoked exactly once, after the future is ready, on whichever
  /// thread completed the request (an executor; the submitting thread
  /// for immediate rejections). The socket front uses this to write
  /// the response frame without parking a thread per request.
  std::function<void(const RequestResult&)> on_complete;
};

enum class RequestStatus {
  kQueued,
  kRunning,
  kDone,       // solve ran to convergence (or its cycle budget)
  kCancelled,  // cancel() before or during the solve
  kExpired,    // deadline passed before or during the solve
  kRejected,   // admission queue full (try_submit) or service stopped
  kFailed,     // solver threw (bad domain/operator); see error
};
const char* status_name(RequestStatus s);

struct RequestResult {
  RequestStatus status = RequestStatus::kQueued;
  SolveResult solve;
  bool cache_hit = false;
  double queue_seconds = 0;
  double setup_seconds = 0;  // hierarchy build; 0 on cache hits
  double solve_seconds = 0;
  double total_seconds = 0;  // submission to completion
  std::vector<real_t> solution;
  std::string error;
};

namespace detail {
struct RequestState;
}

/// Completion handle. Copyable; all copies share one state.
class SolveFuture {
 public:
  SolveFuture() = default;
  bool valid() const { return state_ != nullptr; }
  bool ready() const;
  void wait() const;
  /// Block until completion, then return a copy of the result (valid
  /// futures only). By value so the result outlives the future —
  /// `service.submit(req).get()` destroys the temporary future (and
  /// possibly the shared state) at the end of the statement.
  RequestResult get() const;
  /// Ask the service to abandon the request: immediately when still
  /// queued, at the next V-cycle boundary when running. Returns false
  /// when the request had already completed.
  bool cancel();

 private:
  friend class SolveService;
  explicit SolveFuture(std::shared_ptr<detail::RequestState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::RequestState> state_;
};

struct ServeConfig {
  /// Executor threads draining the admission queue (concurrent
  /// requests in flight).
  int executors = 2;
  /// Admission-queue bound: submit() blocks (backpressure) and
  /// try_submit() rejects once this many requests are queued.
  std::size_t queue_capacity = 16;
  /// Idle hierarchies kept by the cache.
  std::size_t cache_capacity = 4;
  /// Start trace::start_periodic_flush at this interval; 0 consults
  /// GMG_TRACE_FLUSH_MS (and leaves flushing off when unset).
  double trace_flush_seconds = 0;
  /// Coalescer hold window: an executor that popped a request whose
  /// operator allows batching (GmgOptions::max_batch > 1) but found
  /// fewer than max_batch compatible peers queued may wait up to this
  /// long for stragglers — and only when the recent arrival rate says
  /// stragglers are likely (EWMA inter-arrival <= the window). An
  /// empty queue with sparse arrivals never delays a solo request.
  double max_batch_hold_seconds = 0.002;
};

/// Live admission-level counters, cheap enough to sample per request
/// (one mutex, no latency sort). The front tier's load-shedder reads
/// these at frame-decode frequency; report() is the human-facing
/// superset. All counters are also exported as trace counters
/// (serve.accepted, serve.rejected, serve.cancelled, serve.expired,
/// serve.completed, serve.failed, serve.cache_hits,
/// serve.cache_misses; queue depth is the difference of the monotonic
/// serve.enqueued/serve.dequeued pair).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;  // admitted into the queue
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t expired = 0;  // deadline passed before/during the solve
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  std::size_t queue_depth = 0;
  /// Admitted but not yet complete (queued + executing).
  std::size_t inflight = 0;
  double cache_hit_ratio = 0;
  /// Coalescer tallies: batched solve invocations (K >= 2) and the
  /// requests they carried. requests/solves = mean batch occupancy.
  std::uint64_t batch_solves = 0;
  std::uint64_t batch_requests = 0;
  /// Process-wide count of schedules proven clean at setup
  /// (GMG_VERIFY_SCHEDULE): every hierarchy the cache built — solo,
  /// batched, composite — was statically verified this many times.
  std::uint64_t schedules_verified = 0;
};

/// Point-in-time service metrics (report()).
struct ServiceReport {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  // kDone
  std::uint64_t cancelled = 0;
  std::uint64_t expired = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_high_water = 0;
  std::uint64_t batch_solves = 0;
  std::uint64_t batch_requests = 0;
  std::uint64_t schedules_verified = 0;
  HierarchyCache::Stats cache;
  BrickArena::Stats arena;
  /// Total request latency (submission to completion) over finished
  /// requests, seconds. Nearest-rank percentiles.
  double latency_p50 = 0;
  double latency_p99 = 0;
  double latency_p999 = 0;
  double latency_max = 0;

  std::string to_string() const;
};

/// The hierarchy-cache key for (domain, operator): everything that
/// determines setup. The front tier routes on this same string so
/// consistent-hash sharding preserves cache affinity (DESIGN.md §14).
std::string hierarchy_key(const DomainSpec& domain,
                          const std::string& operator_id,
                          const GmgOptions& options);

class SolveService {
 public:
  explicit SolveService(ServeConfig config = {});
  ~SolveService();  // shutdown()
  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Register (or replace) the operator configuration `id` refers to.
  /// Not synchronized against in-flight requests using `id` — register
  /// before submitting.
  void register_operator(const std::string& id, const GmgOptions& options);
  void register_operator(const std::string& id, const OperatorSpec& spec);

  /// Admit a request, blocking while the queue is full (backpressure).
  /// Returns an already-rejected future after shutdown().
  SolveFuture submit(SolveRequest req);

  /// Admit without blocking: a queue-full service rejects immediately
  /// (future completes with kRejected).
  SolveFuture try_submit(SolveRequest req);

  /// Graceful drain: stop admitting (submit() completes kRejected and
  /// any submitter blocked on backpressure wakes with that rejection
  /// instead of deadlocking), then block until everything already
  /// admitted — queued or executing — has completed. Executors stay
  /// alive; report()/stats() remain valid. Idempotent.
  void drain();

  /// Stop admitting, finish everything queued, join the executors.
  /// Idempotent; the destructor calls it.
  void shutdown();

  ServiceReport report() const;

  /// Cheap live counters (no latency percentile sort).
  ServiceStats stats() const;

  BrickArena& arena() { return arena_; }
  const ServeConfig& config() const { return config_; }

 private:
  SolveFuture enqueue(SolveRequest req, bool block);
  void executor_loop();
  /// Coalescer (DESIGN.md §15): with mu_ held and `group` holding one
  /// just-popped leader, pull queued requests that can ride the same
  /// batched solve (same operator, domain, decomposition — i.e. the
  /// same hierarchy_key; tolerance/deadline stay per-component) up to
  /// the operator's max_batch, holding briefly for stragglers when the
  /// arrival rate warrants it.
  void gather_batch(std::unique_lock<std::mutex>& lock,
                    std::vector<std::shared_ptr<detail::RequestState>>& group);
  void execute(const std::shared_ptr<detail::RequestState>& rs);
  /// Run >= 2 coalesced requests as one K-way batched solve.
  void execute_batch(
      std::vector<std::shared_ptr<detail::RequestState>> group);
  void complete(const std::shared_ptr<detail::RequestState>& rs,
                RequestStatus status);

  ServeConfig config_;
  BrickArena arena_;
  HierarchyCache cache_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  // executors: work or stop
  std::condition_variable space_cv_;  // submitters: queue has room
  std::vector<std::shared_ptr<detail::RequestState>> queue_;  // max-heap
  std::map<std::string, OperatorSpec> operators_;
  bool stopping_ = false;
  bool draining_ = false;  // admission closed; executors keep running
  std::condition_variable drained_cv_;  // drain(): queue empty, none inflight
  std::uint64_t next_seq_ = 0;
  bool flush_started_ = false;

  // Metrics (guarded by mu_).
  std::uint64_t submitted_ = 0, accepted_ = 0, completed_ = 0, cancelled_ = 0,
                expired_ = 0, rejected_ = 0, failed_ = 0;
  std::size_t inflight_ = 0;  // admitted, not yet complete
  std::size_t queue_high_water_ = 0;
  std::uint64_t batch_solves_ = 0, batch_requests_ = 0;
  /// Arrival-rate estimate feeding the adaptive hold window.
  double ewma_interarrival_s_ = 0;
  std::uint64_t last_enqueue_ns_ = 0;
  std::vector<double> latency_samples_;

  std::vector<std::thread> executors_;
};

}  // namespace gmg::serve
