// Hierarchy cache: fully-set-up multigrid hierarchies keyed by
// everything that determines their setup — (domain box, rank grid,
// brick dims, operator id, levels) — so repeated solves skip the
// dominant cost of a request: level construction, exchange-engine
// setup, brick iteration-plan creation, and (for variable-coefficient
// operators) coefficient restriction.
//
// Entries are checked out *exclusively*: a GmgSolver holds mutable
// per-solve state, so two requests may never share one entry. Idle
// entries are parked with their field storage detached into the shared
// BrickArena (arena lifetime rule: the cache owns hierarchy skeletons,
// the arena owns idle field pages; a checked-out request owns both).
// Beyond `capacity` idle entries the least-recently-used is evicted —
// its skeleton is freed, its already-detached pages stay pooled.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "batch/batched_solver.hpp"
#include "brick/brick_arena.hpp"
#include "gmg/solver.hpp"
#include "mesh/decomposition.hpp"

namespace gmg::serve {

/// One cached hierarchy: the per-rank solver chain for a decomposed
/// domain, plus the bookkeeping the service needs to reuse it.
struct CachedHierarchy {
  std::string key;
  CartDecomp decomp;
  GmgOptions options;
  /// One solver per rank of `decomp`, index == rank.
  std::vector<std::unique_ptr<GmgSolver>> solvers;
  /// Batched (multi-RHS) twins keyed by batch size K, one per rank,
  /// built lazily on the first K-way coalesced batch and reused for
  /// the hierarchy's lifetime — a batched solver's construction
  /// (stretched exchanges, K-wide fields) is per-shape setup, exactly
  /// what this cache exists to amortize. Their storage stays attached
  /// while the entry is idle: a memory-for-latency trade scoped to
  /// operators that opted into batching (GmgOptions::max_batch > 1).
  /// Declared after `solvers`: each BatchedSolver references its base
  /// GmgSolver and must be destroyed first.
  std::map<int, std::vector<std::unique_ptr<batch::BatchedSolver>>> batched;
  /// Variable-coefficient operators evaluate their coefficient once
  /// per hierarchy (it is keyed state, like the stencil).
  bool coefficient_set = false;
  std::uint64_t last_used_ns = 0;

  CachedHierarchy(std::string k, const CartDecomp& d, const GmgOptions& o)
      : key(std::move(k)), decomp(d), options(o) {}
};

class HierarchyCache {
 public:
  /// Keep at most `capacity` idle hierarchies; detach/attach field
  /// storage through `arena` (must outlive the cache).
  HierarchyCache(std::size_t capacity, BrickArena* arena)
      : capacity_(capacity), arena_(arena) {}
  HierarchyCache(const HierarchyCache&) = delete;
  HierarchyCache& operator=(const HierarchyCache&) = delete;

  /// Check out the entry for `key` with its field storage re-attached
  /// (a *hit*), or nullptr when none is idle under that key (a *miss*
  /// — the caller builds the hierarchy and later release()s it).
  std::unique_ptr<CachedHierarchy> acquire(const std::string& key);

  /// Return a checked-out (or freshly built) entry: field storage is
  /// detached into the arena and the entry becomes acquirable again.
  /// May evict the least-recently-used idle entry over capacity.
  void release(std::unique_ptr<CachedHierarchy> entry);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t idle_entries = 0;

    double hit_ratio() const {
      const std::uint64_t total = hits + misses;
      return total ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
    }
  };
  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  BrickArena* arena_;
  std::vector<std::unique_ptr<CachedHierarchy>> idle_;
  Stats stats_;
};

}  // namespace gmg::serve
