#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "batch/batched_solver.hpp"
#include "check/schedule.hpp"
#include "trace/trace.hpp"

namespace gmg::serve {

namespace detail {

/// Shared state behind a SolveFuture: the request as admitted, its
/// schedule metadata, the cancellation control shared with the
/// in-flight solve, and the completed result.
struct RequestState {
  SolveRequest req;
  std::uint64_t seq = 0;
  std::uint64_t submit_ns = 0;
  std::uint64_t deadline_ns = 0;  // 0 = none
  SolveControl control;

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  bool done = false;
  RequestResult result;
};

namespace {

/// Max-heap order: highest priority first, FIFO (lowest sequence)
/// within a priority class.
bool heap_less(const std::shared_ptr<RequestState>& a,
               const std::shared_ptr<RequestState>& b) {
  if (a->req.priority != b->req.priority)
    return a->req.priority < b->req.priority;
  return a->seq > b->seq;
}

}  // namespace
}  // namespace detail

const char* status_name(RequestStatus s) {
  switch (s) {
    case RequestStatus::kQueued:
      return "queued";
    case RequestStatus::kRunning:
      return "running";
    case RequestStatus::kDone:
      return "done";
    case RequestStatus::kCancelled:
      return "cancelled";
    case RequestStatus::kExpired:
      return "expired";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

bool SolveFuture::ready() const {
  if (!state_) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

void SolveFuture::wait() const {
  GMG_REQUIRE(state_ != nullptr, "wait() on an invalid SolveFuture");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
}

RequestResult SolveFuture::get() const {
  wait();
  return state_->result;
}

bool SolveFuture::cancel() {
  GMG_REQUIRE(state_ != nullptr, "cancel() on an invalid SolveFuture");
  state_->control.cancel.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(state_->mu);
  return !state_->done;
}

SolveService::SolveService(ServeConfig config)
    : config_(config),
      cache_(std::max<std::size_t>(config.cache_capacity, 0), &arena_) {
  if (config_.trace_flush_seconds > 0) {
    trace::start_periodic_flush(config_.trace_flush_seconds);
    flush_started_ = true;
  } else {
    flush_started_ = trace::start_periodic_flush_from_env();
  }
  const int n = std::max(1, config_.executors);
  executors_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

SolveService::~SolveService() { shutdown(); }

void SolveService::register_operator(const std::string& id,
                                     const GmgOptions& options) {
  register_operator(id, OperatorSpec{options, nullptr});
}

void SolveService::register_operator(const std::string& id,
                                     const OperatorSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  operators_[id] = spec;
}

std::string hierarchy_key(const DomainSpec& domain,
                          const std::string& operator_id,
                          const GmgOptions& options) {
  std::ostringstream os;
  const Vec3 g = domain.global_extent;
  const Vec3 r = domain.rank_grid;
  const BrickShape b = options.brick;
  os << g.x << 'x' << g.y << 'x' << g.z << '/' << r.x << 'x' << r.y << 'x'
     << r.z << "/b" << b.bx << 'x' << b.by << 'x' << b.bz << "/l"
     << options.levels << '/' << operator_id;
  return os.str();
}

SolveFuture SolveService::submit(SolveRequest req) {
  return enqueue(std::move(req), /*block=*/true);
}

SolveFuture SolveService::try_submit(SolveRequest req) {
  return enqueue(std::move(req), /*block=*/false);
}

SolveFuture SolveService::enqueue(SolveRequest req, bool block) {
  auto rs = std::make_shared<detail::RequestState>();
  rs->req = std::move(req);
  rs->submit_ns = trace::now_ns();
  if (rs->req.deadline_seconds > 0) {
    rs->deadline_ns = rs->submit_ns + static_cast<std::uint64_t>(
                                          rs->req.deadline_seconds * 1e9);
    rs->control.deadline_ns = rs->deadline_ns;
  }
  trace::counter_add("serve.submitted", 1);
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++submitted_;
    if (block) {
      space_cv_.wait(lock, [&] {
        return stopping_ || draining_ ||
               queue_.size() < config_.queue_capacity;
      });
    }
    if (stopping_ || draining_ ||
        queue_.size() >= config_.queue_capacity) {
      ++rejected_;
      lock.unlock();
      trace::counter_add("serve.rejected", 1);
      complete(rs, RequestStatus::kRejected);
      return SolveFuture(std::move(rs));
    }
    rs->seq = next_seq_++;
    ++accepted_;
    ++inflight_;
    if (last_enqueue_ns_ != 0 && rs->submit_ns > last_enqueue_ns_) {
      const double dt =
          static_cast<double>(rs->submit_ns - last_enqueue_ns_) * 1e-9;
      ewma_interarrival_s_ = ewma_interarrival_s_ == 0
                                 ? dt
                                 : 0.8 * ewma_interarrival_s_ + 0.2 * dt;
    }
    last_enqueue_ns_ = rs->submit_ns;
    queue_.push_back(rs);
    std::push_heap(queue_.begin(), queue_.end(), detail::heap_less);
    queue_high_water_ = std::max(queue_high_water_, queue_.size());
  }
  trace::counter_add("serve.accepted", 1);
  trace::counter_add("serve.enqueued", 1);
  queue_cv_.notify_one();
  return SolveFuture(std::move(rs));
}

void SolveService::executor_loop() {
  for (;;) {
    std::vector<std::shared_ptr<detail::RequestState>> group;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      std::pop_heap(queue_.begin(), queue_.end(), detail::heap_less);
      group.push_back(std::move(queue_.back()));
      queue_.pop_back();
      gather_batch(lock, group);
      // Gathering may have consumed enqueue notifications meant for an
      // idle executor; re-arm one if work remains.
      if (!queue_.empty()) queue_cv_.notify_one();
    }
    trace::counter_add("serve.dequeued", group.size());
    space_cv_.notify_all();
    if (group.size() == 1) {
      execute(group.front());
    } else {
      execute_batch(std::move(group));
    }
  }
}

void SolveService::gather_batch(
    std::unique_lock<std::mutex>& lock,
    std::vector<std::shared_ptr<detail::RequestState>>& group) {
  // Copy the shared_ptr: push_back below may reallocate `group`, which
  // would invalidate a reference into it.
  const std::shared_ptr<detail::RequestState> leader = group.front();
  const auto it = operators_.find(leader->req.operator_id);
  if (it == operators_.end()) return;
  const std::size_t max_batch =
      static_cast<std::size_t>(std::max(1, it->second.options.max_batch));
  // The batched solver runs the interpreted kernels only.
  if (max_batch <= 1 || it->second.options.use_generated_kernels) return;

  // Compatible = same hierarchy_key. Requests share the operator-id's
  // registered options, so the key reduces to (operator_id, domain);
  // tolerance, cycle budget, and deadline ride per-component.
  const auto compatible = [&](const detail::RequestState& cand) {
    return cand.req.operator_id == leader->req.operator_id &&
           cand.req.domain.global_extent == leader->req.domain.global_extent &&
           cand.req.domain.rank_grid == leader->req.domain.rank_grid;
  };
  const auto take_matching = [&] {
    bool changed = false;
    for (auto qit = queue_.begin();
         qit != queue_.end() && group.size() < max_batch;) {
      if (compatible(**qit)) {
        group.push_back(std::move(*qit));
        qit = queue_.erase(qit);
        changed = true;
      } else {
        ++qit;
      }
    }
    if (changed) {
      std::make_heap(queue_.begin(), queue_.end(), detail::heap_less);
    }
  };

  take_matching();
  if (group.size() >= max_batch) return;

  // Adaptive hold: wait for stragglers only while arrivals are landing
  // at least as fast as the window — an idle service executes solo
  // requests immediately.
  const double hold = config_.max_batch_hold_seconds;
  if (hold <= 0) return;
  if (ewma_interarrival_s_ <= 0 || ewma_interarrival_s_ > hold) return;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(hold);
  while (group.size() < max_batch && !stopping_) {
    if (queue_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      take_matching();
      return;
    }
    take_matching();
  }
}

void SolveService::execute(const std::shared_ptr<detail::RequestState>& rs) {
  trace::TraceSpan request_span("serve.request", trace::Category::kOther);
  const std::uint64_t start_ns = trace::now_ns();
  rs->result.queue_seconds =
      static_cast<double>(start_ns - rs->submit_ns) * 1e-9;

  if (rs->control.cancel.load(std::memory_order_relaxed)) {
    complete(rs, RequestStatus::kCancelled);
    return;
  }
  if (rs->deadline_ns != 0 && start_ns >= rs->deadline_ns) {
    complete(rs, RequestStatus::kExpired);
    return;
  }

  OperatorSpec spec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = operators_.find(rs->req.operator_id);
    if (it != operators_.end()) {
      spec = it->second;
    } else {
      rs->result.error = "unknown operator id: " + rs->req.operator_id;
    }
  }
  if (!rs->result.error.empty()) {
    complete(rs, RequestStatus::kFailed);
    return;
  }

  const std::string key =
      hierarchy_key(rs->req.domain, rs->req.operator_id, spec.options);
  const int nranks = rs->req.domain.ranks();

  std::unique_ptr<CachedHierarchy> entry;
  try {
    entry = cache_.acquire(key);
    rs->result.cache_hit = entry != nullptr;
    if (!entry) {
      trace::counter_add("serve.cache_misses", 1);
      trace::TraceSpan setup_span("serve.setup");
      const CartDecomp decomp(rs->req.domain.global_extent,
                              rs->req.domain.rank_grid);
      entry = std::make_unique<CachedHierarchy>(key, decomp, spec.options);
      entry->solvers.reserve(static_cast<std::size_t>(nranks));
      for (int r = 0; r < nranks; ++r) {
        entry->solvers.push_back(
            std::make_unique<GmgSolver>(spec.options, decomp, r));
      }
      rs->result.setup_seconds = setup_span.elapsed();
    } else {
      trace::counter_add("serve.cache_hits", 1);
    }

    const bool needs_coefficient =
        spec.coefficient != nullptr && !entry->coefficient_set;
    std::vector<SolveResult> per_rank(static_cast<std::size_t>(nranks));
    {
      trace::TraceSpan solve_span("serve.solve");
      comm::World world(nranks);
      world.run([&](comm::Communicator& c) {
        GmgSolver& s = *entry->solvers[static_cast<std::size_t>(c.rank())];
        s.set_solve_params(rs->req.tolerance, rs->req.max_vcycles);
        if (needs_coefficient) s.set_coefficient(c, spec.coefficient);
        s.set_rhs(rs->req.rhs);
        per_rank[static_cast<std::size_t>(c.rank())] =
            s.solve(c, &rs->control);
      });
      rs->result.solve_seconds = solve_span.elapsed();
    }
    if (needs_coefficient) entry->coefficient_set = true;

    rs->result.solve = per_rank.front();
    if (rs->req.return_solution && !rs->result.solve.cancelled) {
      const Vec3 g = rs->req.domain.global_extent;
      rs->result.solution.reserve(
          static_cast<std::size_t>(g.x) * static_cast<std::size_t>(g.y) *
          static_cast<std::size_t>(g.z));
      for (int r = 0; r < nranks; ++r) {
        const BrickedArray& x = entry->solvers[static_cast<std::size_t>(r)]
                                    ->solution();
        for_each(Box::from_extent(x.extent()),
                 [&](index_t i, index_t j, index_t k) {
                   rs->result.solution.push_back(x(i, j, k));
                 });
      }
    }
    cache_.release(std::move(entry));
  } catch (const std::exception& e) {
    rs->result.error = e.what();
    // The hierarchy may be mid-mutation — drop it rather than cache a
    // possibly inconsistent entry (its detached pages, if any, are
    // already pooled).
    entry.reset();
    complete(rs, RequestStatus::kFailed);
    return;
  }

  if (rs->result.solve.cancelled) {
    complete(rs, rs->control.cancel.load(std::memory_order_relaxed)
                     ? RequestStatus::kCancelled
                     : RequestStatus::kExpired);
  } else {
    complete(rs, RequestStatus::kDone);
  }
}

void SolveService::execute_batch(
    std::vector<std::shared_ptr<detail::RequestState>> group) {
  trace::TraceSpan request_span("serve.batch", trace::Category::kOther);
  const std::uint64_t start_ns = trace::now_ns();

  // Per-member admission checks; members that died in the queue drop
  // out of the batch individually.
  std::vector<std::shared_ptr<detail::RequestState>> live;
  live.reserve(group.size());
  for (auto& rs : group) {
    rs->result.queue_seconds =
        static_cast<double>(start_ns - rs->submit_ns) * 1e-9;
    if (rs->control.cancel.load(std::memory_order_relaxed)) {
      complete(rs, RequestStatus::kCancelled);
    } else if (rs->deadline_ns != 0 && start_ns >= rs->deadline_ns) {
      complete(rs, RequestStatus::kExpired);
    } else {
      live.push_back(std::move(rs));
    }
  }
  if (live.empty()) return;
  if (live.size() == 1) {
    execute(live.front());
    return;
  }

  const auto& lead = live.front();
  const auto fail_all = [&](const std::string& error) {
    for (auto& rs : live) {
      rs->result.error = error;
      complete(rs, RequestStatus::kFailed);
    }
  };
  OperatorSpec spec;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = operators_.find(lead->req.operator_id);
    if (it != operators_.end()) {
      spec = it->second;
      found = true;
    }
  }
  if (!found) {
    fail_all("unknown operator id: " + lead->req.operator_id);
    return;
  }

  const std::string key =
      hierarchy_key(lead->req.domain, lead->req.operator_id, spec.options);
  const int nranks = lead->req.domain.ranks();
  const int k = static_cast<int>(live.size());

  std::unique_ptr<CachedHierarchy> entry;
  try {
    entry = cache_.acquire(key);
    const bool cache_hit = entry != nullptr;
    double setup_seconds = 0;
    if (!entry) {
      trace::counter_add("serve.cache_misses", 1);
      trace::TraceSpan setup_span("serve.setup");
      const CartDecomp decomp(lead->req.domain.global_extent,
                              lead->req.domain.rank_grid);
      entry = std::make_unique<CachedHierarchy>(key, decomp, spec.options);
      entry->solvers.reserve(static_cast<std::size_t>(nranks));
      for (int r = 0; r < nranks; ++r) {
        entry->solvers.push_back(
            std::make_unique<GmgSolver>(spec.options, decomp, r));
      }
      setup_seconds = setup_span.elapsed();
    } else {
      trace::counter_add("serve.cache_hits", 1);
    }

    const bool needs_coefficient =
        spec.coefficient != nullptr && !entry->coefficient_set;

    std::vector<std::function<real_t(real_t, real_t, real_t)>> rhs;
    std::vector<batch::BatchSolveSpec> specs;
    rhs.reserve(live.size());
    specs.reserve(live.size());
    for (const auto& rs : live) {
      rhs.push_back(rs->req.rhs);
      specs.push_back(batch::BatchSolveSpec{rs->req.tolerance,
                                            rs->req.max_vcycles,
                                            &rs->control});
    }

    std::vector<std::vector<SolveResult>> per_rank(
        static_cast<std::size_t>(nranks));
    std::vector<std::vector<std::vector<real_t>>> per_rank_solution(
        static_cast<std::size_t>(nranks));
    auto& batched = entry->batched[k];
    if (batched.empty()) batched.resize(static_cast<std::size_t>(nranks));
    double solve_seconds = 0;
    {
      trace::TraceSpan solve_span("serve.solve");
      comm::World world(nranks);
      world.run([&](comm::Communicator& c) {
        const std::size_t r = static_cast<std::size_t>(c.rank());
        GmgSolver& s = *entry->solvers[r];
        if (needs_coefficient) s.set_coefficient(c, spec.coefficient);
        if (!batched[r]) {
          batched[r] = std::make_unique<batch::BatchedSolver>(s, k, &arena_);
        }
        batch::BatchedSolver& bs = *batched[r];
        bs.set_rhs(rhs);
        per_rank[r] = bs.solve(c, specs);
        per_rank_solution[r].reserve(static_cast<std::size_t>(k));
        for (int c2 = 0; c2 < k; ++c2) {
          per_rank_solution[r].push_back(bs.solution(c2));
        }
      });
      solve_seconds = solve_span.elapsed();
    }
    if (needs_coefficient) entry->coefficient_set = true;
    cache_.release(std::move(entry));

    {
      std::lock_guard<std::mutex> lock(mu_);
      batch_solves_ += 1;
      batch_requests_ += static_cast<std::uint64_t>(k);
    }
    trace::counter_add("serve.batch_solves", 1);
    trace::counter_add("serve.batch_requests",
                       static_cast<std::uint64_t>(k));

    for (int c = 0; c < k; ++c) {
      auto& rs = live[static_cast<std::size_t>(c)];
      rs->result.cache_hit = cache_hit;
      rs->result.setup_seconds = setup_seconds;
      rs->result.solve_seconds = solve_seconds;
      rs->result.solve = per_rank.front()[static_cast<std::size_t>(c)];
      if (rs->req.return_solution && !rs->result.solve.cancelled) {
        const Vec3 g = rs->req.domain.global_extent;
        rs->result.solution.reserve(
            static_cast<std::size_t>(g.x) * static_cast<std::size_t>(g.y) *
            static_cast<std::size_t>(g.z));
        for (int r = 0; r < nranks; ++r) {
          const auto& sol =
              per_rank_solution[static_cast<std::size_t>(r)]
                               [static_cast<std::size_t>(c)];
          rs->result.solution.insert(rs->result.solution.end(), sol.begin(),
                                     sol.end());
        }
      }
      if (rs->result.solve.cancelled) {
        complete(rs, rs->control.cancel.load(std::memory_order_relaxed)
                         ? RequestStatus::kCancelled
                         : RequestStatus::kExpired);
      } else {
        complete(rs, RequestStatus::kDone);
      }
    }
  } catch (const std::exception& e) {
    entry.reset();
    fail_all(e.what());
  }
}

void SolveService::complete(const std::shared_ptr<detail::RequestState>& rs,
                            RequestStatus status) {
  rs->result.total_seconds =
      static_cast<double>(trace::now_ns() - rs->submit_ns) * 1e-9;
  bool drained = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    switch (status) {
      case RequestStatus::kDone:
        ++completed_;
        latency_samples_.push_back(rs->result.total_seconds);
        trace::counter_add("serve.completed", 1);
        break;
      case RequestStatus::kCancelled:
        ++cancelled_;
        trace::counter_add("serve.cancelled", 1);
        break;
      case RequestStatus::kExpired:
        ++expired_;
        trace::counter_add("serve.expired", 1);
        break;
      case RequestStatus::kFailed:
        ++failed_;
        trace::counter_add("serve.failed", 1);
        break;
      case RequestStatus::kRejected:
        // counted at enqueue, under mu_; never admitted
        break;
      default:
        break;
    }
    if (status != RequestStatus::kRejected) {
      --inflight_;
      drained = draining_ && queue_.empty() && inflight_ == 0;
    }
  }
  {
    std::lock_guard<std::mutex> lock(rs->mu);
    rs->result.status = status;
    rs->done = true;
  }
  rs->cv.notify_all();
  if (drained) drained_cv_.notify_all();
  if (rs->req.on_complete) rs->req.on_complete(rs->result);
}

void SolveService::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  space_cv_.notify_all();  // blocked submitters wake and get kRejected
  drained_cv_.wait(lock, [&] { return queue_.empty() && inflight_ == 0; });
}

void SolveService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && executors_.empty()) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& t : executors_) t.join();
  executors_.clear();
  if (flush_started_) {
    trace::stop_periodic_flush();
    flush_started_ = false;
  }
}

namespace {

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(sorted.size()) - 1,
                       std::ceil(p * static_cast<double>(sorted.size())) - 1));
  return sorted[idx];
}

}  // namespace

ServiceReport SolveService::report() const {
  ServiceReport rep;
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rep.submitted = submitted_;
    rep.completed = completed_;
    rep.cancelled = cancelled_;
    rep.expired = expired_;
    rep.rejected = rejected_;
    rep.failed = failed_;
    rep.queue_depth = queue_.size();
    rep.queue_high_water = queue_high_water_;
    rep.batch_solves = batch_solves_;
    rep.batch_requests = batch_requests_;
    samples = latency_samples_;
  }
  rep.schedules_verified = check::schedules_verified();
  rep.cache = cache_.stats();
  rep.arena = arena_.stats();
  std::sort(samples.begin(), samples.end());
  rep.latency_p50 = percentile(samples, 0.50);
  rep.latency_p99 = percentile(samples, 0.99);
  rep.latency_p999 = percentile(samples, 0.999);
  rep.latency_max = samples.empty() ? 0 : samples.back();
  return rep;
}

ServiceStats SolveService::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.submitted = submitted_;
    s.accepted = accepted_;
    s.completed = completed_;
    s.cancelled = cancelled_;
    s.expired = expired_;
    s.rejected = rejected_;
    s.failed = failed_;
    s.queue_depth = queue_.size();
    s.inflight = inflight_;
    s.batch_solves = batch_solves_;
    s.batch_requests = batch_requests_;
  }
  s.cache_hit_ratio = cache_.stats().hit_ratio();
  s.schedules_verified = check::schedules_verified();
  return s;
}

std::string ServiceReport::to_string() const {
  std::ostringstream os;
  os << "serve: submitted=" << submitted << " done=" << completed
     << " cancelled=" << cancelled << " expired=" << expired
     << " rejected=" << rejected << " failed=" << failed
     << " queue=" << queue_depth << " (hwm " << queue_high_water << ")\n"
     << "cache: hits=" << cache.hits << " misses=" << cache.misses
     << " evictions=" << cache.evictions << " idle=" << cache.idle_entries
     << " hit_ratio=" << cache.hit_ratio() << "\n"
     << "arena: acquires=" << arena.acquires << " hits=" << arena.hits
     << " reuse=" << arena.reuse_ratio()
     << " pooled_bytes=" << arena.pooled_bytes << "\n"
     << "batch: solves=" << batch_solves << " requests=" << batch_requests
     << " occupancy="
     << (batch_solves ? static_cast<double>(batch_requests) /
                            static_cast<double>(batch_solves)
                      : 0.0)
     << " schedules_verified=" << schedules_verified << "\n"
     << "latency: p50=" << latency_p50 << "s p99=" << latency_p99
     << "s p999=" << latency_p999 << "s max=" << latency_max << "s\n";
  return os.str();
}

}  // namespace gmg::serve
