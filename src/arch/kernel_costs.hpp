// Per-point FLOP and data-movement accounting for every V-cycle
// kernel. These conventions reproduce the paper's Table IV exactly
// (see DESIGN.md §5 for the derivation):
//
//   applyOp           Ax = alpha*x + beta*(sum of 6 neighbors)
//                     8 FLOPs (6 adds + 2 muls, factored beta);
//                     16 B (read x once — neighbor reuse is what the
//                     cache is for — write Ax). AI = 0.50.
//   smooth            x += gamma*(Ax - b)
//                     3 FLOPs; 24 B (read Ax, b; x is a cache-resident
//                     read-modify-write counted once). AI = 0.125.
//   smooth+residual   fused smooth and r = b - Ax
//                     6 FLOPs; 40 B (read x, Ax, b; write x, r).
//                     AI = 0.15.
//   restriction       coarse = average of 8 fine cells
//                     8 FLOPs per COARSE point; 72 B (8 reads + 1
//                     write). AI = 0.111.
//   interp+increment  fine += coarse (piecewise constant)
//                     1 FLOP per FINE point; 17 B (read + write fine,
//                     coarse read amortized 1/8). AI = 0.059.
#pragma once

#include "arch/arch_spec.hpp"

namespace gmg::arch {

/// FLOPs per kernel point (see header comment for the point basis).
constexpr double flops_per_point(Op op) {
  switch (op) {
    case Op::kApplyOp:
      return 8.0;
    case Op::kSmooth:
      return 3.0;
    case Op::kSmoothResidual:
      return 6.0;
    case Op::kRestriction:
      return 8.0;
    case Op::kInterpIncrement:
      return 1.0;
    default:
      return 0.0;
  }
}

/// Compulsory (infinite-cache) data movement per kernel point in bytes.
constexpr double bytes_per_point(Op op) {
  switch (op) {
    case Op::kApplyOp:
      return 16.0;
    case Op::kSmooth:
      return 24.0;
    case Op::kSmoothResidual:
      return 40.0;
    case Op::kRestriction:
      return 72.0;
    case Op::kInterpIncrement:
      return 17.0;
    default:
      return 0.0;
  }
}

/// Theoretical arithmetic intensity (FLOP/byte) — paper Table IV.
constexpr double theoretical_ai(Op op) {
  return flops_per_point(op) / bytes_per_point(op);
}

/// Number of kernel points for a level of `cells` cells: restriction
/// is counted per coarse point (cells/8), everything else per cell of
/// the level it runs on.
constexpr double points_for(Op op, double cells) {
  return op == Op::kRestriction ? cells / 8.0 : cells;
}

}  // namespace gmg::arch
