// Analytic GPU kernel-time model — the substitution for running on
// A100 / MI250X / PVC hardware (DESIGN.md §2).
//
// The model is exactly the linear latency/throughput law the paper
// fits to its measurements in §VI-A:
//
//     t(n) = alpha + bytes(n) / beta
//     f(n) = n / t(n)            (GStencil/s when n is in stencils)
//
// with alpha the empirical kernel-launch latency and beta the achieved
// memory bandwidth (fraction-of-roofline x measured HBM bandwidth).
// Because the paper demonstrates this law matches all three machines
// (Fig. 5), regenerating the figures from it preserves every shape the
// paper reports: ceilings, the latency-bound roll-off deep in the
// V-cycle, and the per-vendor ordering.
#pragma once

#include "arch/arch_spec.hpp"
#include "arch/kernel_costs.hpp"
#include "trace/trace.hpp"

namespace gmg::arch {

class DeviceModel {
 public:
  explicit DeviceModel(const ArchSpec& spec) : spec_(&spec) {}

  const ArchSpec& spec() const { return *spec_; }

  /// Achieved memory bandwidth for one kernel (bytes/s).
  double achieved_bandwidth(Op op) const {
    return spec_->hbm_measured_gbs * 1e9 *
           spec_->frac_roofline[static_cast<int>(op)];
  }

  /// Wall-clock seconds for one kernel invocation over `points`
  /// stencil points.
  double kernel_time(Op op, double points) const {
    trace::counter_add("arch.model_evals", 1);
    return spec_->launch_overhead_us * 1e-6 +
           points * bytes_per_point(op) / achieved_bandwidth(op);
  }

  /// Throughput in GStencil/s for one invocation.
  double gstencils_per_s(Op op, double points) const {
    return points / kernel_time(op, points) / 1e9;
  }

  /// The paper's dashed theoretical ceiling: measured HBM bandwidth
  /// divided by the kernel's compulsory bytes per stencil.
  /// (A100 applyOp: 1420/16 = 88.75 GStencil/s, §VI-A.)
  double ceiling_gstencils(Op op) const {
    return spec_->hbm_measured_gbs / bytes_per_point(op);
  }

 private:
  const ArchSpec* spec_;
};

}  // namespace gmg::arch
