// Architecture registry: the three GPU platforms of the paper plus the
// reproduction host.
//
// The per-GPU numbers come from paper §IV-A (peaks) and §VI/§VII
// (measured bandwidths, empirical latencies, per-kernel efficiencies as
// reported by Nsight/rocprof/Advisor). On this reproduction host there
// is no GPU, so these specs parameterize the analytic device model
// (device_model.hpp) that regenerates the paper's figures; the host CPU
// entry is calibrated from live measurements instead.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace gmg::arch {

/// The five V-cycle computation kernels the paper reports on, plus the
/// communication operation.
enum class Op : int {
  kApplyOp = 0,
  kSmooth,
  kSmoothResidual,
  kRestriction,
  kInterpIncrement,
  kCount
};
inline constexpr int kNumOps = static_cast<int>(Op::kCount);

const char* op_name(Op op);

/// One GPU (or GPU sub-device: GCD / tile) as the paper binds one MPI
/// rank to it, plus the node- and network-level facts needed by the
/// scaling benches.
struct ArchSpec {
  std::string name;        // "NVIDIA A100", ...
  std::string system;      // "Perlmutter", ...
  std::string model;       // programming model: CUDA / HIP / SYCL / OpenMP
  bool is_simulated = true;  // false for the live host

  // --- compute device ---
  double peak_fp64_gflops = 0;    // vendor peak
  double hbm_peak_gbs = 0;        // vendor peak memory bandwidth
  double hbm_measured_gbs = 0;    // empirical STREAM-like bandwidth
  double launch_overhead_us = 0;  // kernel launch + sync latency
  int simd_width = 0;             // threads/block used by applyOp (§V)
  index_t brick_dim = 8;          // optimal brick size found in §V
  double l2_cache_mb = 0;
  int cache_line_bytes = 128;

  // --- node / network ---
  int ranks_per_node = 1;         // GPUs (GCDs / tiles) per node
  int nics_per_node = 1;          // Slingshot NICs per node
  double nic_peak_gbs = 25.0;     // Slingshot 11
  double nic_sustained_gbs = 0;   // empirical per-NIC bandwidth (Fig. 6)
  double nic_latency_us = 0;      // empirical message latency (Fig. 6)
  bool gpu_aware_mpi = true;      // §V: off on Sunspot
  double pcie_gbs = 32.0;         // host<->device link (used when
                                  // gpu_aware_mpi is false)

  // --- per-kernel calibration (what the vendor profilers reported;
  //     Table III and Table V of the paper) ---
  std::array<double, kNumOps> frac_roofline{};        // Table III
  std::array<double, kNumOps> frac_theoretical_ai{};  // Table V
};

/// The paper's three platforms.
const ArchSpec& a100();       // Perlmutter, CUDA
const ArchSpec& mi250x_gcd(); // Frontier, HIP
const ArchSpec& pvc_tile();   // Sunspot, SYCL

/// The live reproduction host. Bandwidth and launch overhead are
/// measured once (memoized) with a STREAM-like triad and an empty
/// kernel dispatch; per-kernel efficiencies are filled by the caller
/// from real measurements.
ArchSpec host_cpu();

/// All three paper platforms, in the order the paper tabulates them.
std::vector<const ArchSpec*> paper_platforms();

}  // namespace gmg::arch
