// Roofline model (Williams et al.) and the Pennycook performance-
// portability metric — the analysis machinery behind the paper's
// Tables III/V and Figure 7.
#pragma once

#include <algorithm>
#include <vector>

#include "arch/arch_spec.hpp"
#include "common/error.hpp"

namespace gmg::arch {

/// Attainable GFLOP/s at arithmetic intensity `ai` under a roofline
/// with the given peak compute and memory bandwidth.
inline double roofline_gflops(double ai, double peak_gflops,
                              double bandwidth_gbs) {
  return std::min(peak_gflops, ai * bandwidth_gbs);
}

/// Attainable GFLOP/s on an architecture using its *measured* memory
/// ceiling (the empirical roofline the paper extracts via mixbench /
/// Advisor).
inline double roofline_gflops(const ArchSpec& spec, double ai) {
  return roofline_gflops(ai, spec.peak_fp64_gflops, spec.hbm_measured_gbs);
}

/// Harmonic mean; zero if any efficiency is zero (an unsupported
/// platform zeroes the Pennycook metric by definition).
inline double harmonic_mean(const std::vector<double>& e) {
  GMG_REQUIRE(!e.empty(), "harmonic mean of nothing");
  double denom = 0.0;
  for (double x : e) {
    if (x <= 0.0) return 0.0;
    denom += 1.0 / x;
  }
  return static_cast<double>(e.size()) / denom;
}

/// Pennycook performance portability: the harmonic mean of the
/// application's efficiency across the platform set H (paper §VII).
inline double performance_portability(const std::vector<double>& efficiency) {
  return harmonic_mean(efficiency);
}

/// The paper's Fig. 7 potential-speedup isometric:
///   speedup = (100%/%roofline) * (100%/%theoretical AI)
/// i.e. the headroom from any mix of better code generation and
/// better data locality.
inline double potential_speedup(double frac_roofline, double frac_theor_ai) {
  GMG_REQUIRE(frac_roofline > 0 && frac_theor_ai > 0,
              "efficiencies must be positive");
  return (1.0 / frac_roofline) * (1.0 / frac_theor_ai);
}

}  // namespace gmg::arch
