#include "arch/arch_spec.hpp"

#include <omp.h>

#include "common/aligned.hpp"
#include "common/timer.hpp"
#include "trace/trace.hpp"

namespace gmg::arch {

const char* op_name(Op op) {
  switch (op) {
    case Op::kApplyOp:
      return "applyOp";
    case Op::kSmooth:
      return "smooth";
    case Op::kSmoothResidual:
      return "smooth+residual";
    case Op::kRestriction:
      return "restriction";
    case Op::kInterpIncrement:
      return "interpolation+increment";
    default:
      return "?";
  }
}

// ---------------------------------------------------------------------------
// Paper platforms. Sources:
//  - peaks, caches, SIMD widths: paper §IV-A.
//  - measured HBM: §VI-A states 1420 GB/s for the A100; the MI250X GCD
//    and PVC tile values are the widely reported STREAM results for
//    those parts (~1.30 TB/s and ~1.05 TB/s) consistent with the
//    paper's Fig. 5 ceilings.
//  - launch overheads: §VI-A extracts empirical kernel latencies of
//    5–20 us with NVIDIA lowest; we use 5/10/20 us.
//  - NIC: §VI-A Fig. 6 — Frontier 16 GB/s sustained with the lowest
//    overhead, Perlmutter ~14 GB/s, Sunspot ~7 GB/s (no GPU-aware
//    MPI); latencies span 25–200 us.
//  - frac_roofline / frac_theoretical_ai: paper Tables III and V,
//    i.e. the per-kernel efficiencies the vendor profilers reported.
//    They parameterize the device model so the reproduction regenerates
//    the paper's figures on a host with no GPU (see DESIGN.md §2).
// ---------------------------------------------------------------------------

const ArchSpec& a100() {
  static const ArchSpec spec = [] {
    ArchSpec s;
    s.name = "NVIDIA A100";
    s.system = "Perlmutter";
    s.model = "CUDA";
    s.peak_fp64_gflops = 9770.0;
    s.hbm_peak_gbs = 1500.0;
    s.hbm_measured_gbs = 1420.0;
    s.launch_overhead_us = 5.0;
    s.simd_width = 32;
    s.brick_dim = 8;
    s.l2_cache_mb = 40.0;
    s.cache_line_bytes = 128;
    s.ranks_per_node = 4;
    s.nics_per_node = 4;
    s.nic_sustained_gbs = 14.0;
    s.nic_latency_us = 50.0;
    s.gpu_aware_mpi = true;
    s.frac_roofline = {0.90, 0.98, 0.94, 0.95, 0.88};
    s.frac_theoretical_ai = {0.98, 0.96, 1.00, 0.99, 1.00};
    return s;
  }();
  return spec;
}

const ArchSpec& mi250x_gcd() {
  static const ArchSpec spec = [] {
    ArchSpec s;
    s.name = "AMD MI250X GCD";
    s.system = "Frontier";
    s.model = "HIP";
    s.peak_fp64_gflops = 24000.0;
    s.hbm_peak_gbs = 1600.0;
    s.hbm_measured_gbs = 1300.0;
    s.launch_overhead_us = 10.0;
    s.simd_width = 64;
    s.brick_dim = 8;
    s.l2_cache_mb = 8.0;
    s.cache_line_bytes = 128;
    s.ranks_per_node = 8;
    s.nics_per_node = 8;
    s.nic_sustained_gbs = 16.0;
    s.nic_latency_us = 25.0;
    s.gpu_aware_mpi = true;
    s.frac_roofline = {0.77, 0.87, 0.87, 0.79, 0.42};
    s.frac_theoretical_ai = {0.88, 1.00, 1.00, 0.99, 0.74};
    return s;
  }();
  return spec;
}

const ArchSpec& pvc_tile() {
  static const ArchSpec spec = [] {
    ArchSpec s;
    s.name = "Intel PVC tile";
    s.system = "Sunspot";
    s.model = "SYCL";
    s.peak_fp64_gflops = 16000.0;
    s.hbm_peak_gbs = 1640.0;
    s.hbm_measured_gbs = 1050.0;
    s.launch_overhead_us = 20.0;
    s.simd_width = 16;
    s.brick_dim = 4;
    s.l2_cache_mb = 208.0;  // L3 per stack
    s.cache_line_bytes = 64;
    s.ranks_per_node = 12;
    s.nics_per_node = 8;  // eight NICs shared by twelve ranks (§IV-A)
    s.nic_sustained_gbs = 7.0;
    s.nic_latency_us = 200.0;
    s.gpu_aware_mpi = false;  // §V: host buffers performed better
    s.frac_roofline = {0.66, 0.64, 0.71, 0.62, 0.52};
    s.frac_theoretical_ai = {0.86, 0.94, 0.71, 0.86, 1.00};
    return s;
  }();
  return spec;
}

std::vector<const ArchSpec*> paper_platforms() {
  return {&a100(), &mi250x_gcd(), &pvc_tile()};
}

namespace {

/// STREAM-triad-like bandwidth probe: a(i) = b(i) + s*c(i) over a
/// buffer far larger than LLC; returns GB/s of (2 reads + 1 write).
double measure_host_bandwidth() {
  trace::TraceSpan span("arch.calibrate.bandwidth", trace::Category::kModel);
  const std::size_t n = 8u << 20;  // 3 x 64 MiB
  AlignedBuffer<real_t> a(n, false), b(n, false), c(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<real_t>(i % 17);
    c[i] = static_cast<real_t>(i % 31);
  }
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Timer t;
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + 3.0 * c[i];
    const double secs = t.elapsed();
    const double gbs = 3.0 * static_cast<double>(n) * kRealBytes / secs / 1e9;
    best = std::max(best, gbs);
  }
  // Defeat dead-code elimination.
  volatile real_t sink = a[n / 2];
  (void)sink;
  return best;
}

/// Parallel-region dispatch overhead: the host analogue of a kernel
/// launch (an empty omp parallel region round-trip).
double measure_host_launch_us() {
  trace::TraceSpan span("arch.calibrate.launch", trace::Category::kModel);
  const int reps = 2000;
  int sink = 0;
  Timer t;
  for (int r = 0; r < reps; ++r) {
#pragma omp parallel
    {
#pragma omp atomic
      sink += 1;
    }
  }
  const double us = t.elapsed() / reps * 1e6;
  volatile int keep = sink;
  (void)keep;
  return us;
}

}  // namespace

ArchSpec host_cpu() {
  static const double bw = measure_host_bandwidth();
  static const double launch = measure_host_launch_us();
  ArchSpec s;
  s.name = "Host CPU";
  s.system = "reproduction host";
  s.model = "OpenMP";
  s.is_simulated = false;
  s.hbm_peak_gbs = bw;  // best observed = our empirical roofline
  s.hbm_measured_gbs = bw;
  // Rough FP64 peak: cores x 2 FMA ports x 4-wide AVX2 x ~3 GHz.
  s.peak_fp64_gflops = omp_get_max_threads() * 2.0 * 2.0 * 4.0 * 3.0;
  s.launch_overhead_us = launch;
  s.simd_width = 4;
  s.brick_dim = 8;
  s.l2_cache_mb = 32.0;
  s.cache_line_bytes = 64;
  s.ranks_per_node = 1;
  s.nics_per_node = 1;
  s.nic_sustained_gbs = 10.0;  // placeholder; host has no NIC
  s.nic_latency_us = 1.0;
  // Efficiencies are to be filled from live measurements by callers.
  s.frac_roofline = {0, 0, 0, 0, 0};
  s.frac_theoretical_ai = {0, 0, 0, 0, 0};
  return s;
}

}  // namespace gmg::arch
