// Multi-RHS batched geometric multigrid (DESIGN.md §15): one V-cycle
// schedule driven over K independent systems that share a hierarchy's
// geometry and operator. Fields live in AoSoA batched storage
// (batched_array.hpp), every kernel is the K-systems twin of the solo
// one (batched_kernels.hpp), and ONE stretched-shape ghost exchange
// round per sweep moves all K components of every aggregated field.
//
// Correctness bar: a K-way batched solve is BITWISE identical to K
// solo GmgSolver::solve runs with the same hierarchy and inputs —
// same iterates, same residual histories, same cycle counts. The
// schedule is value-neutral by construction (see batched_kernels.hpp);
// per-component divergence (one system converging first, a deadline
// hitting one request) is handled by *retiring* components — capturing
// their solution snapshot the moment their solo twin's cycle loop
// would have exited — while the shared schedule keeps running for the
// rest. Retired components keep being smoothed (masking the main
// kernels would change nothing for the live ones and cost extra
// branches); only the masked bottom-CG updates freeze per component,
// because the solo CG exits its own iteration loop mid-cycle.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "batch/batched_array.hpp"
#include "brick/brick_arena.hpp"
#include "check/schedule.hpp"
#include "comm/exchange.hpp"
#include "comm/simmpi.hpp"
#include "exec/engine.hpp"
#include "gmg/solver.hpp"

namespace gmg::batch {

/// Per-component solve parameters — the batched counterpart of
/// (GmgSolver::set_solve_params, SolveControl).
struct BatchSolveSpec {
  real_t tolerance = 1e-10;
  int max_vcycles = 100;
  /// Optional external cancel/deadline hook for this component; the
  /// check is collective at cycle boundaries, exactly like the solo
  /// solve loop's.
  const SolveControl* control = nullptr;
};

/// Drives K systems through one cycle schedule over a solo hierarchy.
/// The base GmgSolver contributes everything per-level that is shared
/// across the batch — geometry, stencil coefficients, the variable-
/// coefficient operator and its diagonal, brick partitions — and is
/// not mutated (its own fields stay untouched). The BatchedSolver owns
/// the K-component field set and its stretched exchange engines.
class BatchedSolver {
 public:
  /// Build the K-component twin of `base`'s hierarchy. With `arena`,
  /// field storage is checked out of the pool (and returned on
  /// destruction) instead of allocated. Requires k >= 1 and
  /// !base.options().use_generated_kernels (the generated kernels are
  /// emitted for solo layout only).
  BatchedSolver(GmgSolver& base, int k, BrickArena* arena = nullptr);
  ~BatchedSolver();

  BatchedSolver(const BatchedSolver&) = delete;
  BatchedSolver& operator=(const BatchedSolver&) = delete;

  int batch() const { return k_; }
  int num_levels() const { return static_cast<int>(levels_.size()); }

  /// Initialize component c's RHS on the finest level for every
  /// component (fs.size() == batch()) and reset the whole field set,
  /// mirroring GmgSolver::set_rhs state exactly per component.
  void set_rhs(
      const std::vector<std::function<real_t(real_t, real_t, real_t)>>& fs);

  /// Run the shared cycle schedule until every component has retired
  /// (converged, exhausted its cycle budget, or been cancelled).
  /// results[c] is bitwise what GmgSolver::solve would have returned
  /// for component c alone, except `seconds`, which reports time from
  /// batch start to that component's retirement.
  std::vector<SolveResult> solve(comm::Communicator& comm,
                                 const std::vector<BatchSolveSpec>& specs);

  /// Interior extent of the finest level (snapshot geometry).
  Vec3 solution_extent() const;
  /// Component c's solution, captured at its retirement, in
  /// for_each(Box::from_extent(solution_extent())) iteration order.
  const std::vector<real_t>& solution(int c) const {
    return solutions_[static_cast<std::size_t>(c)];
  }

  /// The live batched fine-level solution field (testing hook).
  BatchedBrickedArray& solution_field() { return levels_.front().x; }

 private:
  /// Batched per-level state: the K-component twins of MgLevel's
  /// per-solve fields plus this solver's own exchange scheduling state.
  /// Everything else (geometry, coefficients) is read from
  /// base_.level(l).
  struct BatchLevel {
    BatchedBrickedArray x, b, Ax, r, p;
    std::unique_ptr<comm::BrickExchange> exchange;
    index_t margin = 0;  // valid ghost depth, in BASE cells
    bool b_ghosts_valid = false;
  };

  const MgLevel& base_level(int l) const { return base_.level(l); }
  int bottom_level() const { return num_levels() - 1; }

  void apply_operator(const MgLevel& lev, BatchedBrickedArray& out,
                      const BatchedBrickedArray& in, const Box& active);

  /// Smoother sweeps; a non-null `restrict_to` asks the final descent
  /// sweep to also restrict the fresh residual into that coarse RHS
  /// (honored when the base level's KernelPlan fuses — same
  /// capability rules as the solo smooth_level).
  void smooth_level(comm::Communicator& comm, int l, int iterations,
                    bool with_residual,
                    BatchedBrickedArray* restrict_to = nullptr);
  void jacobi_sweeps(comm::Communicator& comm, int l, int iterations,
                     bool with_residual, BatchedBrickedArray* restrict_to);
  void chebyshev_sweeps(comm::Communicator& comm, int l, int iterations,
                        bool with_residual, BatchedBrickedArray* restrict_to);
  void gs_sweeps(comm::Communicator& comm, int l, int iterations,
                 bool with_residual, BatchedBrickedArray* restrict_to);
  void bottom_solve(comm::Communicator& comm);
  void bottom_cg(comm::Communicator& comm, int l);
  void cycle_at(comm::Communicator& comm, int l);
  void vcycle(comm::Communicator& comm);

  /// One aggregated stretched-shape exchange round: the same field set
  /// the solo exchange_for_smooth aggregates ({x, +b when stale under
  /// CA, +p for CA Chebyshev}), each carrying all K components.
  void exchange_for_smooth(comm::Communicator& comm, int l);
  bool use_overlap(int l) const;
  void begin_exchange_for_smooth(comm::Communicator& comm, int l);
  Box overlap_safe_box(const MgLevel& lev, const Box& active) const;
  void finish_exchange_overlapped(
      comm::Communicator& comm, int l, const Box& active,
      const std::function<void(const Box&)>& kernel);
  exec::Engine& engine();

  /// Per-active-component residual max-norms on the finest level (one
  /// batched exchange+applyOp+residual pass, then a per-component
  /// reduce+allreduce in component order). Retired components are
  /// skipped (res untouched).
  void residual_norms(comm::Communicator& comm,
                      const std::vector<bool>& active,
                      std::vector<real_t>& res);

  /// Capture component c's fine-level solution into solutions_[c].
  void snapshot_solution(int c);

  bool needs_p() const {
    return base_.options().smoother == Smoother::kChebyshev ||
           base_.options().bottom == BottomSolverType::kConjugateGradient;
  }

  /// The single sanctioned direct-exchange entry point outside the
  /// exchange_* scheduling routines (gmg_lint rule 8); margin
  /// bookkeeping stays at the call sites.
  void exchange_now(comm::Communicator& comm, BatchLevel& bl,
                    BrickedArray& field);

  /// Dry-run schedule recording (batch/batched_audit.hpp) reads the
  /// base hierarchy and batch width without mutating anything.
  friend check::Schedule record_batched_schedule(const BatchedSolver& bs);

  GmgSolver& base_;
  int k_;
  BrickArena* arena_;
  std::vector<BatchLevel> levels_;
  std::vector<std::vector<real_t>> solutions_;
  std::uint64_t engine_generation_ = 0;
  exec::Stream compute_stream_;
};

}  // namespace gmg::batch
