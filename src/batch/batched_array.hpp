// Multi-RHS (batched) bricked storage — AoSoA with the batch index
// innermost (DESIGN.md §15).
//
// A batch of K systems shares one BrickGrid and stores component c of
// cell (i,j,k) at inner element (i*K + c, j, k) of a BrickedArray
// whose brick shape is stretched along x: {bx*K, by, bz}. That makes
// the K components of a cell adjacent in memory (the innermost fold of
// the AoSoA layout), keeps every brick contiguous, and — because the
// ghost-exchange engine only cares about whole-brick storage ranges —
// lets ONE BrickExchange round built on the stretched shape move all K
// components of every ghost brick per neighbor.
//
// The key flat-index identity the batched kernels build on: interior
// bricks are ids [0, num_interior) in both the solo and the stretched
// layout (same grid), so if a solo field stores interior element e at
// flat offset e, the batched field stores component c of that same
// cell at flat offset e*K + c. Component c of the whole interior is a
// stride-K slice of one contiguous span — which is what makes the
// per-component reductions below bitwise identical to solo (see
// batched_kernels.cpp).
#pragma once

#include <utility>

#include "brick/brick_arena.hpp"
#include "brick/bricked_array.hpp"

namespace gmg::batch {

/// The stretched inner brick shape for a batch of `k` systems.
inline BrickShape stretched_shape(BrickShape base, int k) {
  return BrickShape{base.bx * static_cast<index_t>(k), base.by, base.bz};
}

/// Map a box in base cell coordinates to the stretched inner
/// coordinates (x scaled by K; the image covers all K components of
/// every base cell).
inline Box stretch_box(const Box& b, int k) {
  const index_t kk = static_cast<index_t>(k);
  return Box{{b.lo.x * kk, b.lo.y, b.lo.z}, {b.hi.x * kk, b.hi.y, b.hi.z}};
}

class BatchedBrickedArray {
 public:
  BatchedBrickedArray() = default;

  BatchedBrickedArray(std::shared_ptr<const BrickGrid> grid, BrickShape base,
                      int k, bool zero = true)
      : base_(base),
        k_(static_cast<index_t>(k)),
        inner_(std::move(grid), stretched_shape(base, k), zero) {}

  /// Adopt pooled storage from a BrickArena (zeroed through the kernel
  /// runtime's chunk plan, like any arena acquire).
  BatchedBrickedArray(std::shared_ptr<const BrickGrid> grid, BrickShape base,
                      int k, BrickArena& arena)
      : base_(base),
        k_(static_cast<index_t>(k)),
        inner_(arena.acquire(std::move(grid), stretched_shape(base, k))) {}

  int batch() const { return static_cast<int>(k_); }
  BrickShape base_shape() const { return base_; }

  /// The stretched-shape storage array: what the ghost exchange, the
  /// hazard-detector scopes, and init_zero operate on directly.
  BrickedArray& inner() { return inner_; }
  const BrickedArray& inner() const { return inner_; }

  const BrickGrid& grid() const { return inner_.grid(); }
  std::size_t size() const { return inner_.size(); }
  real_t* data() { return inner_.data(); }
  const real_t* data() const { return inner_.data(); }

  /// Element access by base cell coordinate and component (convenience
  /// path; kernels iterate bricks directly).
  real_t& at(index_t i, index_t j, index_t k, int c) {
    return inner_(i * k_ + static_cast<index_t>(c), j, k);
  }
  const real_t& at(index_t i, index_t j, index_t k, int c) const {
    return inner_(i * k_ + static_cast<index_t>(c), j, k);
  }

  /// Return the storage to an arena, leaving this array empty.
  void release_to(BrickArena& arena) { arena.release(std::move(inner_)); }

 private:
  BrickShape base_{};
  index_t k_ = 1;
  BrickedArray inner_;
};

}  // namespace gmg::batch
