#include "batch/batched_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <optional>
#include <vector>

#include "batch/apply_batch.hpp"
#include "brick/brick_plan.hpp"
#include "check/shadow.hpp"
#include "common/aligned.hpp"
#include "exec/runtime.hpp"
#include "gmg/operators.hpp"
#include "gmg/operators_varcoef.hpp"
#include "trace/trace.hpp"

namespace gmg::batch {

namespace {

inline void count_flops(std::uint64_t pts, std::uint64_t flops_per_pt) {
  trace::counter_add("gmg.flops", pts * flops_per_pt);
}

inline std::uint64_t batch_points(const Box& active,
                                  const BatchedBrickedArray& a) {
  return static_cast<std::uint64_t>(active.volume()) *
         static_cast<std::uint64_t>(a.batch());
}

/// Row visitor over the BASE brick plan — the twin of operators.cpp's
/// for_each_row. fn(base_row_offset, ilo, ihi) in BASE flat elements;
/// callers expand to the stretched storage via flat index
/// (base + i) * K + c. Full bricks collapse to one whole-brick call.
template <typename BD, typename Fn>
void for_each_row_b(BD, const char* name, const BrickGrid& grid,
                    const Box& active, Fn&& fn) {
  const auto plan =
      grid.iteration_plan(active, Vec3{BD::bx, BD::by, BD::bz});
  for_each_plan_brick<BD>(name, *plan, [&](const BrickPlanItem& it,
                                           auto full) {
    const std::size_t brick_base = static_cast<std::size_t>(it.id) * BD::volume;
    if constexpr (decltype(full)::value) {
      fn(brick_base, index_t{0}, static_cast<index_t>(BD::volume));
    } else {
      for (index_t lk = it.klo; lk < it.khi; ++lk) {
        for (index_t lj = it.jlo; lj < it.jhi; ++lj) {
          fn(brick_base +
                 static_cast<std::size_t>((lk * BD::by + lj) * BD::bx),
             static_cast<index_t>(it.ilo), static_cast<index_t>(it.ihi));
        }
      }
    }
  });
}

/// 8->1 full weighting of ONE fine brick (all K components) into its
/// coarse octant — batched restriction()'s per-brick body verbatim
/// (same row pointers, same 0.125 * 8-term summation order), so fused
/// coarse RHS values are bitwise identical to the split pass. `bc` is
/// the fine brick's grid coordinate; `fb` points at its stretched
/// (freshly written) residual.
template <typename BD>
inline void restrict_brick_b(index_t K, const Vec3& bc, const BrickGrid& cg,
                             const real_t* __restrict fb,
                             real_t* __restrict cp) {
  const index_t bx = bc.x, by = bc.y, bz = bc.z;
  const std::int32_t cid = cg.storage_id({bx / 2, by / 2, bz / 2});
  GMG_ASSERT(cid >= 0);
  const index_t ox = (bx % 2) * (BD::bx / 2);
  const index_t oy = (by % 2) * (BD::by / 2);
  const index_t oz = (bz % 2) * (BD::bz / 2);
  const std::size_t bvol =
      static_cast<std::size_t>(BD::volume) * static_cast<std::size_t>(K);
  real_t* cb = cp + static_cast<std::size_t>(cid) * bvol;
  for (index_t lk = 0; lk < BD::bz; lk += 2) {
    for (index_t lj = 0; lj < BD::by; lj += 2) {
      const real_t* r0 = fb + (lk * BD::by + lj) * BD::bx * K;
      const real_t* r1 = r0 + BD::bx * K;           // j+1
      const real_t* r2 = r0 + BD::by * BD::bx * K;  // k+1
      const real_t* r3 = r2 + BD::bx * K;           // j+1, k+1
      real_t* crow =
          cb + (((oz + lk / 2) * BD::by + (oy + lj / 2)) * BD::bx + ox) * K;
      for (index_t li = 0; li < BD::bx / 2; ++li) {
        const index_t f = 2 * li * K;
#pragma omp simd
        for (index_t c = 0; c < K; ++c) {
          crow[li * K + c] =
              0.125 * (r0[f + c] + r0[f + K + c] + r1[f + c] + r1[f + K + c] +
                       r2[f + c] + r2[f + K + c] + r3[f + c] + r3[f + K + c]);
        }
      }
    }
  }
}

/// The batched twin of gmg::fused's descent_pass: one pass over the
/// bricks of `active` running `pointwise(base_row_offset, ilo, ihi)`
/// on every BASE row (chunked exactly as for_each_row_b), plus the
/// 8->1 restriction of each INTERIOR brick's just-written residual.
/// Interior bricks are always in the plan's full prefix because
/// `active` covers the interior; clipped items are ghost-shell bricks.
template <typename BD, typename PointwiseRow>
void descent_pass_b(BD, const char* name, const BrickGrid& fg,
                    const BrickGrid& cg, index_t K,
                    const real_t* __restrict rp, real_t* __restrict cp,
                    const Box& active, PointwiseRow&& pointwise) {
  const std::int64_t ni = fg.num_interior();
  const std::size_t bvol =
      static_cast<std::size_t>(BD::volume) * static_cast<std::size_t>(K);
  const auto plan = fg.iteration_plan(active, Vec3{BD::bx, BD::by, BD::bz});
  for_each_plan_brick<BD>(name, *plan, [&](const BrickPlanItem& it,
                                           auto full) {
    const std::size_t base = static_cast<std::size_t>(it.id) * BD::volume;
    if constexpr (decltype(full)::value) {
      pointwise(base, index_t{0}, static_cast<index_t>(BD::volume));
      if (it.id < ni) {
        restrict_brick_b<BD>(K, it.coord, cg,
                             rp + static_cast<std::size_t>(it.id) * bvol, cp);
      }
    } else {
      GMG_ASSERT(it.id >= ni);
      for (index_t lk = it.klo; lk < it.khi; ++lk) {
        for (index_t lj = it.jlo; lj < it.jhi; ++lj) {
          pointwise(base +
                        static_cast<std::size_t>((lk * BD::by + lj) * BD::bx),
                    static_cast<index_t>(it.ilo),
                    static_cast<index_t>(it.ihi));
        }
      }
    }
  });
}

/// Tap cover check in BASE bricks (ghost depth is one base brick on the
/// stretched storage exactly as on solo storage).
template <typename BD>
void require_taps_in_grid(BD, const BrickGrid& grid, const Box& active,
                          index_t radius) {
  const Box tap_region{{floor_div(active.lo.x - radius, BD::bx),
                        floor_div(active.lo.y - radius, BD::by),
                        floor_div(active.lo.z - radius, BD::bz)},
                       {floor_div(active.hi.x - 1 + radius, BD::bx) + 1,
                        floor_div(active.hi.y - 1 + radius, BD::by) + 1,
                        floor_div(active.hi.z - 1 + radius, BD::bz) + 1}};
  GMG_REQUIRE(grid.extended_box().covers(tap_region),
              "stencil taps reach beyond the ghost bricks");
}

/// Contiguous interior range in BASE elements (interior bricks are ids
/// [0, num_interior)); the matching stretched range is K times longer.
std::int64_t interior_span_base(const BatchedBrickedArray& a) {
  return static_cast<std::int64_t>(a.grid().num_interior()) *
         static_cast<std::int64_t>(a.base_shape().volume());
}

void require_compatible(const BatchedBrickedArray& a,
                        const BatchedBrickedArray& b) {
  GMG_REQUIRE(&a.grid() == &b.grid(), "fields must share a brick grid");
  GMG_REQUIRE(a.batch() == b.batch() && a.base_shape() == b.base_shape(),
              "fields must share batch size and base brick shape");
}

/// Shared argument checks for the fused descent kernels (stretched
/// extents in x, BASE `active` coordinates).
void require_descent_args_b(const BatchedBrickedArray& r,
                            const BatchedBrickedArray& coarse_b,
                            const Box& active) {
  const Vec3 fe = r.inner().extent(), ce = coarse_b.inner().extent();
  GMG_REQUIRE(fe.x == 2 * ce.x && fe.y == 2 * ce.y && fe.z == 2 * ce.z,
              "fine extent must be twice the coarse extent");
  GMG_REQUIRE(r.base_shape() == coarse_b.base_shape() &&
                  r.batch() == coarse_b.batch(),
              "fused restriction assumes equal base shapes and batch sizes");
  const index_t K = static_cast<index_t>(r.batch());
  GMG_REQUIRE(active.covers(Box::from_extent({fe.x / K, fe.y, fe.z})),
              "fused descent sweep must cover the fine interior");
}

/// 64-byte-aligned per-thread gather scratch for the '+'-reductions.
/// The alignment matters for bitwise identity: solo hands
/// detail::sum_sq_range pointers at p + lo with lo a multiple of the
/// element grain, preserving the field buffer's 64-byte alignment —
/// the gathered chunk must present the same alignment so the shared
/// compiled loop takes the same vector path.
using AlignedVec = AlignedBuffer<real_t>;

AlignedVec& tl_scratch(int which) {
  static thread_local AlignedVec bufs[2];
  return bufs[which];
}

void scratch_reserve(AlignedVec& s, std::int64_t n) {
  if (static_cast<std::int64_t>(s.size()) < n) {
    s.reset(static_cast<std::size_t>(n), /*zero=*/false);
  }
}

/// Batched 7-point star — the stretched-storage twin of operators.cpp's
/// apply_op_7pt. Row pointers carry all K components interleaved; the
/// SIMD core runs flat over [core_lo*K, core_hi*K) where the x-axis
/// taps sit at +-K, and the two x-boundary patch-ups loop over
/// components with the solo tap summation order (xm + xp + ym + yp +
/// zm + zp) kept identical.
template <typename BD>
void apply_op_7pt_b(BD, BatchedBrickedArray& Ax, const BatchedBrickedArray& x,
                    real_t alpha, real_t beta, const Box& active) {
  const BrickGrid& grid = x.grid();
  const index_t K = static_cast<index_t>(x.batch());
  const real_t* __restrict xp = x.data();
  real_t* __restrict op = Ax.data();

  require_taps_in_grid(BD{}, grid, active, 1);
  const auto plan = grid.iteration_plan(active, Vec3{BD::bx, BD::by, BD::bz});

  for_each_plan_brick<BD>("kernel.applyOp", *plan, [&](const BrickPlanItem& it,
                                                       auto full) {
    constexpr bool kFull = decltype(full)::value;
    const auto& adj = it.adj;
    const std::size_t bvol =
        static_cast<std::size_t>(BD::volume) * static_cast<std::size_t>(K);
    const auto brick_of = [&](int dx, int dy, int dz) {
      const std::int32_t b = adj[direction_index(dx, dy, dz)];
      GMG_ASSERT(b >= 0);
      return xp + static_cast<std::size_t>(b) * bvol;
    };
    const real_t* __restrict xb = xp + static_cast<std::size_t>(it.id) * bvol;
    real_t* __restrict ob = op + static_cast<std::size_t>(it.id) * bvol;

    const index_t ilo = kFull ? 0 : it.ilo;
    const index_t ihi = kFull ? BD::bx : it.ihi;
    const index_t jlo = kFull ? 0 : it.jlo;
    const index_t jhi = kFull ? BD::by : it.jhi;
    const index_t klo = kFull ? 0 : it.klo;
    const index_t khi = kFull ? BD::bz : it.khi;

    constexpr index_t kRow = BD::bx;
    constexpr index_t kPlane = BD::bx * BD::by;
    const auto row_at = [&](const real_t* brick, index_t lj, index_t lk) {
      return brick + (lk * kPlane + lj * kRow) * K;
    };

    for (index_t lk = klo; lk < khi; ++lk) {
      for (index_t lj = jlo; lj < jhi; ++lj) {
        const real_t* __restrict xr = row_at(xb, lj, lk);
        const real_t* __restrict ym =
            lj > 0 ? row_at(xb, lj - 1, lk)
                   : row_at(brick_of(0, -1, 0), BD::by - 1, lk);
        const real_t* __restrict yp =
            lj < BD::by - 1 ? row_at(xb, lj + 1, lk)
                            : row_at(brick_of(0, 1, 0), 0, lk);
        const real_t* __restrict zm =
            lk > 0 ? row_at(xb, lj, lk - 1)
                   : row_at(brick_of(0, 0, -1), lj, BD::bz - 1);
        const real_t* __restrict zp =
            lk < BD::bz - 1 ? row_at(xb, lj, lk + 1)
                            : row_at(brick_of(0, 0, 1), lj, 0);
        real_t* __restrict orow = ob + (lk * kPlane + lj * kRow) * K;

        const index_t core_lo = kFull ? 1 : std::max<index_t>(ilo, 1);
        const index_t core_hi =
            kFull ? BD::bx - 1 : std::min<index_t>(ihi, BD::bx - 1);
#pragma omp simd
        for (index_t s = core_lo * K; s < core_hi * K; ++s) {
          orow[s] = alpha * xr[s] +
                    beta * (xr[s - K] + xr[s + K] + ym[s] + yp[s] + zm[s] +
                            zp[s]);
        }
        if (kFull || ilo == 0) {
          const real_t* __restrict nb = row_at(brick_of(-1, 0, 0), lj, lk);
          for (index_t c = 0; c < K; ++c) {
            const real_t xm = nb[(BD::bx - 1) * K + c];
            orow[c] = alpha * xr[c] +
                      beta * (xm + xr[K + c] + ym[c] + yp[c] + zm[c] + zp[c]);
          }
        }
        if (kFull || ihi == BD::bx) {
          constexpr index_t e = BD::bx - 1;
          const real_t* __restrict nb = row_at(brick_of(1, 0, 0), lj, lk);
          for (index_t c = 0; c < K; ++c) {
            const index_t ei = e * K + c;
            const real_t xpv = nb[c];
            orow[ei] = alpha * xr[ei] +
                       beta * (xr[ei - K] + xpv + ym[ei] + yp[ei] + zm[ei] +
                               zp[ei]);
          }
        }
      }
    }
  });
}

}  // namespace

void apply_op(BatchedBrickedArray& Ax, const BatchedBrickedArray& x,
              real_t alpha, real_t beta, const Box& active) {
  require_compatible(Ax, x);
  trace::TraceSpan span("kernel.applyOp");
  count_flops(batch_points(active, x), 8);
  const auto scope = check::scope_if_enabled(
      "kernel.applyOp",
      {check::access(Ax.inner(), stretch_box(active, Ax.batch()))},
      {check::access(x.inner(), stretch_box(grow(active, 1), x.batch()))});
  with_brick_dims(x.base_shape(), [&](auto bd) {
    apply_op_7pt_b(bd, Ax, x, alpha, beta, active);
  });
}

void smooth(BatchedBrickedArray& x, const BatchedBrickedArray& Ax,
            const BatchedBrickedArray& b, real_t gamma, const Box& active) {
  require_compatible(x, Ax);
  require_compatible(x, b);
  trace::TraceSpan span("kernel.smooth");
  count_flops(batch_points(active, x), 3);
  const auto scope = check::scope_if_enabled(
      "kernel.smooth",
      {check::access(x.inner(), stretch_box(active, x.batch()))},
      {check::access(Ax.inner(), stretch_box(active, x.batch())),
       check::access(b.inner(), stretch_box(active, x.batch()))});
  with_brick_dims(x.base_shape(), [&](auto bd) {
    const index_t K = static_cast<index_t>(x.batch());
    real_t* __restrict xp = x.data();
    const real_t* __restrict axp = Ax.data();
    const real_t* __restrict bp = b.data();
    for_each_row_b(bd, "kernel.smooth", x.grid(), active,
                   [&](std::size_t o, index_t ilo, index_t ihi) {
                     const std::size_t ob = o * static_cast<std::size_t>(K);
#pragma omp simd
                     for (index_t s = ilo * K; s < ihi * K; ++s) {
                       xp[ob + s] += gamma * (axp[ob + s] - bp[ob + s]);
                     }
                   });
  });
}

void smooth_residual(BatchedBrickedArray& x, BatchedBrickedArray& r,
                     const BatchedBrickedArray& Ax,
                     const BatchedBrickedArray& b, real_t gamma,
                     const Box& active) {
  require_compatible(x, r);
  require_compatible(x, Ax);
  require_compatible(x, b);
  trace::TraceSpan span("kernel.smoothResidual");
  count_flops(batch_points(active, x), 4);
  const auto scope = check::scope_if_enabled(
      "kernel.smoothResidual",
      {check::access(x.inner(), stretch_box(active, x.batch())),
       check::access(r.inner(), stretch_box(active, x.batch()))},
      {check::access(Ax.inner(), stretch_box(active, x.batch())),
       check::access(b.inner(), stretch_box(active, x.batch()))});
  with_brick_dims(x.base_shape(), [&](auto bd) {
    const index_t K = static_cast<index_t>(x.batch());
    real_t* __restrict xp = x.data();
    real_t* __restrict rp = r.data();
    const real_t* __restrict axp = Ax.data();
    const real_t* __restrict bp = b.data();
    for_each_row_b(bd, "kernel.smoothResidual", x.grid(), active,
                   [&](std::size_t o, index_t ilo, index_t ihi) {
                     const std::size_t ob = o * static_cast<std::size_t>(K);
#pragma omp simd
                     for (index_t s = ilo * K; s < ihi * K; ++s) {
                       const real_t ax = axp[ob + s];
                       const real_t rhs = bp[ob + s];
                       rp[ob + s] = rhs - ax;
                       xp[ob + s] += gamma * (ax - rhs);
                     }
                   });
  });
}

void residual(BatchedBrickedArray& r, const BatchedBrickedArray& b,
              const BatchedBrickedArray& Ax, const Box& active) {
  require_compatible(r, b);
  require_compatible(r, Ax);
  trace::TraceSpan span("kernel.residual");
  count_flops(batch_points(active, r), 1);
  const auto scope = check::scope_if_enabled(
      "kernel.residual",
      {check::access(r.inner(), stretch_box(active, r.batch()))},
      {check::access(b.inner(), stretch_box(active, r.batch())),
       check::access(Ax.inner(), stretch_box(active, r.batch()))});
  with_brick_dims(r.base_shape(), [&](auto bd) {
    const index_t K = static_cast<index_t>(r.batch());
    real_t* __restrict rp = r.data();
    const real_t* __restrict axp = Ax.data();
    const real_t* __restrict bp = b.data();
    for_each_row_b(bd, "kernel.residual", r.grid(), active,
                   [&](std::size_t o, index_t ilo, index_t ihi) {
                     const std::size_t ob = o * static_cast<std::size_t>(K);
#pragma omp simd
                     for (index_t s = ilo * K; s < ihi * K; ++s) {
                       rp[ob + s] = bp[ob + s] - axp[ob + s];
                     }
                   });
  });
}

void restriction(BatchedBrickedArray& coarse, const BatchedBrickedArray& fine) {
  const Vec3 fe = fine.inner().extent(), ce = coarse.inner().extent();
  GMG_REQUIRE(fe.x == 2 * ce.x && fe.y == 2 * ce.y && fe.z == 2 * ce.z,
              "fine extent must be twice the coarse extent");
  GMG_REQUIRE(fine.base_shape() == coarse.base_shape() &&
                  fine.batch() == coarse.batch(),
              "restriction assumes equal base shapes and batch sizes");
  trace::TraceSpan span("kernel.restriction");
  count_flops(static_cast<std::uint64_t>(ce.x) * ce.y * ce.z, 8);
  const auto scope = check::scope_if_enabled(
      "kernel.restriction",
      {check::access(coarse.inner(), Box::from_extent(ce))},
      {check::access(fine.inner(), Box::from_extent(fe))});
  with_brick_dims(fine.base_shape(), [&](auto bd) {
    using BD = decltype(bd);
    static_assert(BD::bx % 2 == 0 && BD::by % 2 == 0 && BD::bz % 2 == 0);
    const index_t K = static_cast<index_t>(fine.batch());
    const std::size_t bvol =
        static_cast<std::size_t>(BD::volume) * static_cast<std::size_t>(K);
    const BrickGrid& fg = fine.grid();
    const BrickGrid& cg = coarse.grid();
    const real_t* __restrict fp = fine.data();
    real_t* __restrict cp = coarse.data();
    exec::parallel_for(
        "kernel.restriction", fg.num_interior(), exec::brick_grain(BD::volume),
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t fid = lo; fid < hi; ++fid) {
            const Vec3 bc = fg.coord_of(static_cast<std::int32_t>(fid));
            const index_t bx = bc.x, by = bc.y, bz = bc.z;
            const std::int32_t cid = cg.storage_id({bx / 2, by / 2, bz / 2});
            GMG_ASSERT(cid >= 0);
            const index_t ox = (bx % 2) * (BD::bx / 2);
            const index_t oy = (by % 2) * (BD::by / 2);
            const index_t oz = (bz % 2) * (BD::bz / 2);
            const real_t* fb = fp + static_cast<std::size_t>(fid) * bvol;
            real_t* cb = cp + static_cast<std::size_t>(cid) * bvol;
            for (index_t lk = 0; lk < BD::bz; lk += 2) {
              for (index_t lj = 0; lj < BD::by; lj += 2) {
                const real_t* r0 = fb + (lk * BD::by + lj) * BD::bx * K;
                const real_t* r1 = r0 + BD::bx * K;           // j+1
                const real_t* r2 = r0 + BD::by * BD::bx * K;  // k+1
                const real_t* r3 = r2 + BD::bx * K;           // j+1, k+1
                real_t* crow =
                    cb +
                    (((oz + lk / 2) * BD::by + (oy + lj / 2)) * BD::bx + ox) *
                        K;
                for (index_t li = 0; li < BD::bx / 2; ++li) {
                  const index_t f = 2 * li * K;
#pragma omp simd
                  for (index_t c = 0; c < K; ++c) {
                    crow[li * K + c] =
                        0.125 * (r0[f + c] + r0[f + K + c] + r1[f + c] +
                                 r1[f + K + c] + r2[f + c] + r2[f + K + c] +
                                 r3[f + c] + r3[f + K + c]);
                  }
                }
              }
            }
          }
        });
  });
}

void smooth_residual_restrict(BatchedBrickedArray& x, BatchedBrickedArray& r,
                              BatchedBrickedArray& coarse_b,
                              const BatchedBrickedArray& Ax,
                              const BatchedBrickedArray& b, real_t gamma,
                              const Box& active) {
  require_compatible(x, r);
  require_compatible(x, Ax);
  require_compatible(x, b);
  require_descent_args_b(r, coarse_b, active);
  trace::TraceSpan span("kernel.smoothResidualRestrict");
  count_flops(batch_points(active, x), 4);
  const Vec3 ce = coarse_b.inner().extent();
  count_flops(static_cast<std::uint64_t>(ce.x) * ce.y * ce.z, 8);
  // r appears in both lists: the restriction stage reads the residual
  // the pointwise stage just wrote (same-brick read-after-write,
  // ordered within one chunk).
  const auto scope = check::scope_if_enabled(
      "kernel.smoothResidualRestrict",
      {check::access(x.inner(), stretch_box(active, x.batch())),
       check::access(r.inner(), stretch_box(active, x.batch())),
       check::access(coarse_b.inner(), Box::from_extent(ce))},
      {check::access(Ax.inner(), stretch_box(active, x.batch())),
       check::access(b.inner(), stretch_box(active, x.batch())),
       check::access(r.inner(), Box::from_extent(r.inner().extent()))});
  with_brick_dims(x.base_shape(), [&](auto bd) {
    using BD = decltype(bd);
    static_assert(BD::bx % 2 == 0 && BD::by % 2 == 0 && BD::bz % 2 == 0);
    const index_t K = static_cast<index_t>(x.batch());
    real_t* __restrict xp = x.data();
    real_t* __restrict rp = r.data();
    real_t* __restrict cp = coarse_b.data();
    const real_t* __restrict axp = Ax.data();
    const real_t* __restrict bp = b.data();
    descent_pass_b(bd, "kernel.smoothResidualRestrict", x.grid(),
                   coarse_b.grid(), K, rp, cp, active,
                   [&](std::size_t o, index_t ilo, index_t ihi) {
                     const std::size_t ob = o * static_cast<std::size_t>(K);
#pragma omp simd
                     for (index_t s = ilo * K; s < ihi * K; ++s) {
                       const real_t ax = axp[ob + s];
                       const real_t rhs = bp[ob + s];
                       rp[ob + s] = rhs - ax;
                       xp[ob + s] += gamma * (ax - rhs);
                     }
                   });
  });
}

void smooth_residual_restrict_varcoef(
    BatchedBrickedArray& x, BatchedBrickedArray& r,
    BatchedBrickedArray& coarse_b, const BatchedBrickedArray& Ax,
    const BatchedBrickedArray& b, const BrickedArray& diag, real_t omega,
    const Box& active) {
  require_compatible(x, r);
  require_compatible(x, Ax);
  require_compatible(x, b);
  require_descent_args_b(r, coarse_b, active);
  trace::TraceSpan span("kernel.smoothResidualRestrictVarCoef");
  count_flops(batch_points(active, x), 6);
  const Vec3 ce = coarse_b.inner().extent();
  count_flops(static_cast<std::uint64_t>(ce.x) * ce.y * ce.z, 8);
  const auto scope = check::scope_if_enabled(
      "kernel.smoothResidualRestrictVarCoef",
      {check::access(x.inner(), stretch_box(active, x.batch())),
       check::access(r.inner(), stretch_box(active, x.batch())),
       check::access(coarse_b.inner(), Box::from_extent(ce))},
      {check::access(Ax.inner(), stretch_box(active, x.batch())),
       check::access(b.inner(), stretch_box(active, x.batch())),
       check::access(diag, active),
       check::access(r.inner(), Box::from_extent(r.inner().extent()))});
  with_brick_dims(x.base_shape(), [&](auto bd) {
    using BD = decltype(bd);
    static_assert(BD::bx % 2 == 0 && BD::by % 2 == 0 && BD::bz % 2 == 0);
    const index_t K = static_cast<index_t>(x.batch());
    real_t* __restrict xp = x.data();
    real_t* __restrict rp = r.data();
    real_t* __restrict cp = coarse_b.data();
    const real_t* __restrict axp = Ax.data();
    const real_t* __restrict bp = b.data();
    const real_t* __restrict dp = diag.data();
    descent_pass_b(bd, "kernel.smoothResidualRestrictVarCoef", x.grid(),
                   coarse_b.grid(), K, rp, cp, active,
                   [&](std::size_t o, index_t ilo, index_t ihi) {
                     for (index_t i = ilo; i < ihi; ++i) {
                       const real_t g = -omega / dp[o + i];
                       const std::size_t e =
                           (o + i) * static_cast<std::size_t>(K);
                       for (index_t c = 0; c < K; ++c) {
                         const real_t ax = axp[e + c];
                         const real_t rhs = bp[e + c];
                         rp[e + c] = rhs - ax;
                         xp[e + c] += g * (ax - rhs);
                       }
                     }
                   });
  });
}

void residual_restrict(BatchedBrickedArray& r, BatchedBrickedArray& coarse_b,
                       const BatchedBrickedArray& b,
                       const BatchedBrickedArray& Ax) {
  require_compatible(r, b);
  require_compatible(r, Ax);
  const Vec3 fe = r.inner().extent(), ce = coarse_b.inner().extent();
  GMG_REQUIRE(fe.x == 2 * ce.x && fe.y == 2 * ce.y && fe.z == 2 * ce.z,
              "fine extent must be twice the coarse extent");
  GMG_REQUIRE(r.base_shape() == coarse_b.base_shape() &&
                  r.batch() == coarse_b.batch(),
              "fused restriction assumes equal base shapes and batch sizes");
  trace::TraceSpan span("kernel.residualRestrict");
  count_flops(static_cast<std::uint64_t>(fe.x) * fe.y * fe.z, 1);
  count_flops(static_cast<std::uint64_t>(ce.x) * ce.y * ce.z, 8);
  const auto scope = check::scope_if_enabled(
      "kernel.residualRestrict",
      {check::access(r.inner(), Box::from_extent(fe)),
       check::access(coarse_b.inner(), Box::from_extent(ce))},
      {check::access(b.inner(), Box::from_extent(fe)),
       check::access(Ax.inner(), Box::from_extent(fe)),
       check::access(r.inner(), Box::from_extent(fe))});
  with_brick_dims(r.base_shape(), [&](auto bd) {
    using BD = decltype(bd);
    static_assert(BD::bx % 2 == 0 && BD::by % 2 == 0 && BD::bz % 2 == 0);
    const index_t K = static_cast<index_t>(r.batch());
    const std::size_t bvol =
        static_cast<std::size_t>(BD::volume) * static_cast<std::size_t>(K);
    const BrickGrid& fg = r.grid();
    const BrickGrid& cg = coarse_b.grid();
    real_t* __restrict rp = r.data();
    real_t* __restrict cp = coarse_b.data();
    const real_t* __restrict bp = b.data();
    const real_t* __restrict axp = Ax.data();
    // Interior fine bricks are ids [0, num_interior): per brick, the
    // flat stretched residual rows then the octant copy from the
    // residual still in cache. Race-free under any chunking (disjoint
    // r bricks, disjoint coarse octants).
    exec::parallel_for(
        "kernel.residualRestrict", fg.num_interior(),
        exec::brick_grain(BD::volume), [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t fid = lo; fid < hi; ++fid) {
            const std::size_t base = static_cast<std::size_t>(fid) * bvol;
            const index_t n = static_cast<index_t>(BD::volume) * K;
#pragma omp simd
            for (index_t s = 0; s < n; ++s) {
              rp[base + s] = bp[base + s] - axp[base + s];
            }
            restrict_brick_b<BD>(K,
                                 fg.coord_of(static_cast<std::int32_t>(fid)),
                                 cg, rp + base, cp);
          }
        });
  });
}

void interpolation_increment(BatchedBrickedArray& fine,
                             const BatchedBrickedArray& coarse) {
  const Vec3 fe = fine.inner().extent(), ce = coarse.inner().extent();
  GMG_REQUIRE(fe.x == 2 * ce.x && fe.y == 2 * ce.y && fe.z == 2 * ce.z,
              "fine extent must be twice the coarse extent");
  GMG_REQUIRE(fine.base_shape() == coarse.base_shape() &&
                  fine.batch() == coarse.batch(),
              "interpolation assumes equal base shapes and batch sizes");
  trace::TraceSpan span("kernel.interpIncrement");
  count_flops(static_cast<std::uint64_t>(fe.x) * fe.y * fe.z, 1);
  const auto scope = check::scope_if_enabled(
      "kernel.interpIncrement",
      {check::access(fine.inner(), Box::from_extent(fe))},
      {check::access(coarse.inner(), Box::from_extent(ce))});
  with_brick_dims(fine.base_shape(), [&](auto bd) {
    using BD = decltype(bd);
    const index_t K = static_cast<index_t>(fine.batch());
    const std::size_t bvol =
        static_cast<std::size_t>(BD::volume) * static_cast<std::size_t>(K);
    const BrickGrid& fg = fine.grid();
    const BrickGrid& cg = coarse.grid();
    real_t* __restrict fp = fine.data();
    const real_t* __restrict cp = coarse.data();
    exec::parallel_for(
        "kernel.interpIncrement", fg.num_interior(),
        exec::brick_grain(BD::volume), [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t fid = lo; fid < hi; ++fid) {
            const Vec3 bc = fg.coord_of(static_cast<std::int32_t>(fid));
            const index_t bx = bc.x, by = bc.y, bz = bc.z;
            const std::int32_t cid = cg.storage_id({bx / 2, by / 2, bz / 2});
            GMG_ASSERT(cid >= 0);
            const index_t ox = (bx % 2) * (BD::bx / 2);
            const index_t oy = (by % 2) * (BD::by / 2);
            const index_t oz = (bz % 2) * (BD::bz / 2);
            real_t* fb = fp + static_cast<std::size_t>(fid) * bvol;
            const real_t* cb = cp + static_cast<std::size_t>(cid) * bvol;
            for (index_t lk = 0; lk < BD::bz; ++lk) {
              for (index_t lj = 0; lj < BD::by; ++lj) {
                real_t* frow = fb + (lk * BD::by + lj) * BD::bx * K;
                const real_t* crow =
                    cb +
                    (((oz + lk / 2) * BD::by + (oy + lj / 2)) * BD::bx + ox) *
                        K;
                for (index_t li = 0; li < BD::bx; ++li) {
#pragma omp simd
                  for (index_t c = 0; c < K; ++c) {
                    frow[li * K + c] += crow[(li / 2) * K + c];
                  }
                }
              }
            }
          }
        });
  });
}

void gs_color_sweep(BatchedBrickedArray& x, const BatchedBrickedArray& b,
                    real_t alpha, real_t beta, int color, Vec3 origin,
                    const Box& active) {
  GMG_REQUIRE(color == 0 || color == 1, "color must be 0 (red) or 1 (black)");
  require_compatible(x, b);
  trace::TraceSpan span("kernel.gsColorSweep");
  count_flops(batch_points(active, x) / 2, 9);
  const auto scope = check::scope_if_enabled(
      "kernel.gsColorSweep",
      {check::access(x.inner(), stretch_box(active, x.batch()))},
      {check::access(x.inner(), stretch_box(grow(active, 1), x.batch())),
       check::access(b.inner(), stretch_box(active, x.batch()))});
  with_brick_dims(x.base_shape(), [&](auto bd) {
    using BD = decltype(bd);
    const BrickGrid& grid = x.grid();
    const index_t K = static_cast<index_t>(x.batch());
    const std::size_t bvol =
        static_cast<std::size_t>(BD::volume) * static_cast<std::size_t>(K);
    real_t* __restrict xp = x.data();
    const real_t* __restrict bp = b.data();

    require_taps_in_grid(bd, grid, active, 1);
    const auto plan =
        grid.iteration_plan(active, Vec3{BD::bx, BD::by, BD::bz});

    for_each_plan_brick<BD>(
        "kernel.gsColorSweep", *plan, [&](const BrickPlanItem& it, auto full) {
          constexpr bool kFull = decltype(full)::value;
          const auto& adj = it.adj;
          const auto brick_of = [&](int dx, int dy, int dz) {
            const std::int32_t nb = adj[direction_index(dx, dy, dz)];
            GMG_ASSERT(nb >= 0);
            return xp + static_cast<std::size_t>(nb) * bvol;
          };
          real_t* __restrict xb = xp + static_cast<std::size_t>(it.id) * bvol;
          const real_t* __restrict bb =
              bp + static_cast<std::size_t>(it.id) * bvol;

          const Vec3 c3 = it.coord;
          const index_t cx = c3.x * BD::bx, cy = c3.y * BD::by,
                        cz = c3.z * BD::bz;
          const index_t ilo = kFull ? 0 : it.ilo;
          const index_t ihi = kFull ? BD::bx : it.ihi;
          const index_t jlo = kFull ? 0 : it.jlo;
          const index_t jhi = kFull ? BD::by : it.jhi;
          const index_t klo = kFull ? 0 : it.klo;
          const index_t khi = kFull ? BD::bz : it.khi;

          constexpr index_t kRow = BD::bx;
          constexpr index_t kPlane = BD::bx * BD::by;
          const auto row_at = [&](const real_t* brick, index_t lj,
                                  index_t lk) {
            return brick + (lk * kPlane + lj * kRow) * K;
          };

          for (index_t lk = klo; lk < khi; ++lk) {
            for (index_t lj = jlo; lj < jhi; ++lj) {
              real_t* __restrict xr = xb + (lk * kPlane + lj * kRow) * K;
              const real_t* __restrict br =
                  bb + (lk * kPlane + lj * kRow) * K;
              const real_t* __restrict ym =
                  lj > 0 ? row_at(xb, lj - 1, lk)
                         : row_at(brick_of(0, -1, 0), BD::by - 1, lk);
              const real_t* __restrict yprow =
                  lj < BD::by - 1 ? row_at(xb, lj + 1, lk)
                                  : row_at(brick_of(0, 1, 0), 0, lk);
              const real_t* __restrict zm =
                  lk > 0 ? row_at(xb, lj, lk - 1)
                         : row_at(brick_of(0, 0, -1), lj, BD::bz - 1);
              const real_t* __restrict zprow =
                  lk < BD::bz - 1 ? row_at(xb, lj, lk + 1)
                                  : row_at(brick_of(0, 0, 1), lj, 0);
              const index_t row_parity =
                  (origin.x + cx + origin.y + cy + lj + origin.z + cz + lk) &
                  1;
              index_t first = ilo + (((color - row_parity - ilo) % 2) + 2) % 2;
              for (index_t li = first; li < ihi; li += 2) {
                const real_t* __restrict xmrow =
                    li > 0 ? xr + (li - 1) * K
                           : row_at(brick_of(-1, 0, 0), lj, lk) +
                                 (BD::bx - 1) * K;
                const real_t* __restrict xprow2 =
                    li < BD::bx - 1 ? xr + (li + 1) * K
                                    : row_at(brick_of(1, 0, 0), lj, lk);
                for (index_t c = 0; c < K; ++c) {
                  const index_t li_c = li * K + c;
                  xr[li_c] =
                      (br[li_c] - beta * (xmrow[c] + xprow2[c] + ym[li_c] +
                                          yprow[li_c] + zm[li_c] +
                                          zprow[li_c])) /
                      alpha;
                }
              }
            }
          }
        });
  });
}

void init_zero(BatchedBrickedArray& a) { gmg::init_zero(a.inner()); }

real_t max_norm(const BatchedBrickedArray& a, int c) {
  // fp max is exactly associative, so a direct strided reduce matches
  // solo regardless of chunking or vectorization.
  const real_t* __restrict p = a.data();
  const std::size_t K = static_cast<std::size_t>(a.batch());
  const std::size_t cc = static_cast<std::size_t>(c);
  return exec::parallel_reduce_max<real_t>(
      "kernel.maxNorm", interior_span_base(a), exec::kElementGrain,
      [&](std::int64_t lo, std::int64_t hi) {
        real_t local = 0.0;
        for (std::int64_t i = lo; i < hi; ++i) {
          local = std::max(
              local, std::abs(p[static_cast<std::size_t>(i) * K + cc]));
        }
        return local;
      });
}

real_t norm2_sq(const BatchedBrickedArray& a, int c) {
  // Same chunk plan, same noinline per-chunk body, same 64-byte chunk
  // alignment as solo norm2_sq — the partial sums and the fixed
  // combine-in-chunk-order tree are bitwise identical to a solo field
  // holding component c's values.
  const real_t* __restrict p = a.data();
  const std::size_t K = static_cast<std::size_t>(a.batch());
  const std::size_t cc = static_cast<std::size_t>(c);
  return exec::parallel_reduce_sum<real_t>(
      "kernel.norm2", interior_span_base(a), exec::kElementGrain,
      [&](std::int64_t lo, std::int64_t hi) {
        AlignedVec& s = tl_scratch(0);
        const std::int64_t n = hi - lo;
        scratch_reserve(s, n);
        for (std::int64_t i = 0; i < n; ++i) {
          s[static_cast<std::size_t>(i)] =
              p[static_cast<std::size_t>(lo + i) * K + cc];
        }
        return gmg::detail::sum_sq_range(s.data(), n);
      });
}

real_t dot_interior(const BatchedBrickedArray& a, const BatchedBrickedArray& b,
                    int c) {
  require_compatible(a, b);
  const real_t* __restrict pa = a.data();
  const real_t* __restrict pb = b.data();
  const std::size_t K = static_cast<std::size_t>(a.batch());
  const std::size_t cc = static_cast<std::size_t>(c);
  return exec::parallel_reduce_sum<real_t>(
      "kernel.dot", interior_span_base(a), exec::kElementGrain,
      [&](std::int64_t lo, std::int64_t hi) {
        AlignedVec& sa = tl_scratch(0);
        AlignedVec& sb = tl_scratch(1);
        const std::int64_t n = hi - lo;
        scratch_reserve(sa, n);
        scratch_reserve(sb, n);
        for (std::int64_t i = 0; i < n; ++i) {
          const std::size_t e = static_cast<std::size_t>(lo + i) * K + cc;
          sa[static_cast<std::size_t>(i)] = pa[e];
          sb[static_cast<std::size_t>(i)] = pb[e];
        }
        return gmg::detail::dot_range(sa.data(), sb.data(), n);
      });
}

void axpy_interior(BatchedBrickedArray& y, real_t alpha,
                   const BatchedBrickedArray& x, int c) {
  require_compatible(y, x);
  real_t* __restrict py = y.data();
  const real_t* __restrict px = x.data();
  const std::size_t K = static_cast<std::size_t>(y.batch());
  const std::size_t cc = static_cast<std::size_t>(c);
  exec::parallel_for("kernel.axpy", interior_span_base(y), exec::kElementGrain,
                     [&](std::int64_t lo, std::int64_t hi) {
                       for (std::int64_t i = lo; i < hi; ++i) {
                         const std::size_t e =
                             static_cast<std::size_t>(i) * K + cc;
                         py[e] += alpha * px[e];
                       }
                     });
}

void xpay_interior(BatchedBrickedArray& y, const BatchedBrickedArray& x,
                   real_t beta, int c) {
  require_compatible(y, x);
  real_t* __restrict py = y.data();
  const real_t* __restrict px = x.data();
  const std::size_t K = static_cast<std::size_t>(y.batch());
  const std::size_t cc = static_cast<std::size_t>(c);
  exec::parallel_for("kernel.xpay", interior_span_base(y), exec::kElementGrain,
                     [&](std::int64_t lo, std::int64_t hi) {
                       for (std::int64_t i = lo; i < hi; ++i) {
                         const std::size_t e =
                             static_cast<std::size_t>(i) * K + cc;
                         py[e] = px[e] + beta * py[e];
                       }
                     });
}

void copy_interior(BatchedBrickedArray& dst, const BatchedBrickedArray& src) {
  require_compatible(dst, src);
  real_t* __restrict pd = dst.data();
  const real_t* __restrict ps = src.data();
  const std::int64_t n =
      interior_span_base(dst) * static_cast<std::int64_t>(dst.batch());
  exec::parallel_for("kernel.copy", n, exec::kElementGrain,
                     [&](std::int64_t lo, std::int64_t hi) {
                       std::memcpy(pd + lo, ps + lo,
                                   static_cast<std::size_t>(hi - lo) *
                                       sizeof(real_t));
                     });
}

void axpy(BatchedBrickedArray& y, real_t alpha, const BatchedBrickedArray& x,
          const Box& active) {
  require_compatible(y, x);
  const auto scope = check::scope_if_enabled(
      "kernel.axpyActive",
      {check::access(y.inner(), stretch_box(active, y.batch()))},
      {check::access(x.inner(), stretch_box(active, y.batch()))});
  with_brick_dims(y.base_shape(), [&](auto bd) {
    const index_t K = static_cast<index_t>(y.batch());
    real_t* __restrict py = y.data();
    const real_t* __restrict px = x.data();
    for_each_row_b(bd, "kernel.axpyActive", y.grid(), active,
                   [&](std::size_t o, index_t ilo, index_t ihi) {
                     const std::size_t ob = o * static_cast<std::size_t>(K);
#pragma omp simd
                     for (index_t s = ilo * K; s < ihi * K; ++s) {
                       py[ob + s] += alpha * px[ob + s];
                     }
                   });
  });
}

void cheby_p_update(BatchedBrickedArray& p, const BatchedBrickedArray& r,
                    real_t inv_diag, real_t beta, const Box& active) {
  require_compatible(p, r);
  const auto scope = check::scope_if_enabled(
      "kernel.chebyP",
      {check::access(p.inner(), stretch_box(active, p.batch()))},
      {check::access(r.inner(), stretch_box(active, p.batch()))});
  with_brick_dims(p.base_shape(), [&](auto bd) {
    const index_t K = static_cast<index_t>(p.batch());
    real_t* __restrict pp = p.data();
    const real_t* __restrict pr = r.data();
    for_each_row_b(bd, "kernel.chebyP", p.grid(), active,
                   [&](std::size_t o, index_t ilo, index_t ihi) {
                     const std::size_t ob = o * static_cast<std::size_t>(K);
#pragma omp simd
                     for (index_t s = ilo * K; s < ihi * K; ++s) {
                       pp[ob + s] = inv_diag * pr[ob + s] + beta * pp[ob + s];
                     }
                   });
  });
}

void apply_op_varcoef(BatchedBrickedArray& Ax, const BatchedBrickedArray& x,
                      const BrickedArray& beta, real_t identity_coef, real_t h,
                      const Box& active) {
  require_compatible(Ax, x);
  trace::TraceSpan span("kernel.applyOpVarCoef");
  count_flops(batch_points(active, x), 26);
  const real_t f = 0.5 / (h * h);
  // Literally the same expression tree as the solo kernel (vc::), run
  // by the batched engine with the coefficient as a shared slot.
  batch::apply(vc::apply_expr(identity_coef, f), Ax, active, x, beta);
}

void smooth_residual_varcoef(BatchedBrickedArray& x, BatchedBrickedArray& r,
                             const BatchedBrickedArray& Ax,
                             const BatchedBrickedArray& b,
                             const BrickedArray& diag, real_t omega,
                             const Box& active) {
  require_compatible(x, r);
  require_compatible(x, Ax);
  require_compatible(x, b);
  trace::TraceSpan span("kernel.smoothResidualVarCoef");
  count_flops(batch_points(active, x), 6);
  const auto scope = check::scope_if_enabled(
      "kernel.smoothResidualVarCoef",
      {check::access(x.inner(), stretch_box(active, x.batch())),
       check::access(r.inner(), stretch_box(active, x.batch()))},
      {check::access(Ax.inner(), stretch_box(active, x.batch())),
       check::access(b.inner(), stretch_box(active, x.batch())),
       check::access(diag, active)});
  with_brick_dims(x.base_shape(), [&](auto bd) {
    const index_t K = static_cast<index_t>(x.batch());
    real_t* __restrict xp = x.data();
    real_t* __restrict rp = r.data();
    const real_t* __restrict axp = Ax.data();
    const real_t* __restrict bp = b.data();
    const real_t* __restrict dp = diag.data();
    for_each_row_b(bd, "kernel.smoothResidualVarCoef", x.grid(), active,
                   [&](std::size_t o, index_t ilo, index_t ihi) {
                     for (index_t i = ilo; i < ihi; ++i) {
                       const real_t g = -omega / dp[o + i];
                       const std::size_t e =
                           (o + i) * static_cast<std::size_t>(K);
                       for (index_t c = 0; c < K; ++c) {
                         const real_t ax = axp[e + c];
                         const real_t rhs = bp[e + c];
                         rp[e + c] = rhs - ax;
                         xp[e + c] += g * (ax - rhs);
                       }
                     }
                   });
  });
}

void smooth_varcoef(BatchedBrickedArray& x, const BatchedBrickedArray& Ax,
                    const BatchedBrickedArray& b, const BrickedArray& diag,
                    real_t omega, const Box& active) {
  require_compatible(x, Ax);
  require_compatible(x, b);
  trace::TraceSpan span("kernel.smoothVarCoef");
  count_flops(batch_points(active, x), 5);
  const auto scope = check::scope_if_enabled(
      "kernel.smoothVarCoef",
      {check::access(x.inner(), stretch_box(active, x.batch()))},
      {check::access(Ax.inner(), stretch_box(active, x.batch())),
       check::access(b.inner(), stretch_box(active, x.batch())),
       check::access(diag, active)});
  with_brick_dims(x.base_shape(), [&](auto bd) {
    const index_t K = static_cast<index_t>(x.batch());
    real_t* __restrict xp = x.data();
    const real_t* __restrict axp = Ax.data();
    const real_t* __restrict bp = b.data();
    const real_t* __restrict dp = diag.data();
    for_each_row_b(bd, "kernel.smoothVarCoef", x.grid(), active,
                   [&](std::size_t o, index_t ilo, index_t ihi) {
                     for (index_t i = ilo; i < ihi; ++i) {
                       const real_t g = -omega / dp[o + i];
                       const std::size_t e =
                           (o + i) * static_cast<std::size_t>(K);
                       for (index_t c = 0; c < K; ++c) {
                         xp[e + c] += g * (axp[e + c] - bp[e + c]);
                       }
                     }
                   });
  });
}

void cheby_p_update_varcoef(BatchedBrickedArray& p,
                            const BatchedBrickedArray& r,
                            const BrickedArray& diag, real_t beta_ch,
                            const Box& active) {
  require_compatible(p, r);
  const auto scope = check::scope_if_enabled(
      "kernel.chebyPVarCoef",
      {check::access(p.inner(), stretch_box(active, p.batch()))},
      {check::access(r.inner(), stretch_box(active, p.batch())),
       check::access(diag, active)});
  with_brick_dims(p.base_shape(), [&](auto bd) {
    const index_t K = static_cast<index_t>(p.batch());
    real_t* __restrict pp = p.data();
    const real_t* __restrict pr = r.data();
    const real_t* __restrict dp = diag.data();
    for_each_row_b(bd, "kernel.chebyPVarCoef", p.grid(), active,
                   [&](std::size_t o, index_t ilo, index_t ihi) {
                     for (index_t i = ilo; i < ihi; ++i) {
                       const real_t d = dp[o + i];
                       const std::size_t e =
                           (o + i) * static_cast<std::size_t>(K);
                       for (index_t c = 0; c < K; ++c) {
                         pp[e + c] = pr[e + c] / d + beta_ch * pp[e + c];
                       }
                     }
                   });
  });
}

}  // namespace gmg::batch
