// The V-cycle operators on batched (multi-RHS) bricked storage —
// K-systems twins of src/gmg/operators*.{hpp,cpp} (DESIGN.md §15).
//
// Bitwise-identity contract: every kernel here evaluates, per cell and
// component, the exact expression its solo twin evaluates (identical
// tap summation order, identical patch-up structure), under the
// repo-wide -ffp-contract=off pin. Element-independent kernels are
// therefore bitwise identical to K solo runs by construction. The two
// '+'-reductions (norm2_sq, dot) gather each component's stride-K
// slice into a contiguous scratch chunk and call the SAME noinline
// per-chunk helper over the SAME chunk plan as solo, reproducing
// solo's fixed reduction tree; max_norm reduces strided directly (fp
// max is exact under any association).
#pragma once

#include "batch/batched_array.hpp"
#include "common/types.hpp"
#include "gmg/fused_kernels.hpp"
#include "gmg/operators.hpp"
#include "gmg/operators_varcoef.hpp"

namespace gmg::batch {

/// Ax = alpha*x + beta * (6-point neighbor sum), all K components,
/// over `active` (base cell coordinates throughout this header).
void apply_op(BatchedBrickedArray& Ax, const BatchedBrickedArray& x,
              real_t alpha, real_t beta, const Box& active);

/// x += gamma * (Ax - b).
void smooth(BatchedBrickedArray& x, const BatchedBrickedArray& Ax,
            const BatchedBrickedArray& b, real_t gamma, const Box& active);

/// Fused point-Jacobi smooth and residual.
void smooth_residual(BatchedBrickedArray& x, BatchedBrickedArray& r,
                     const BatchedBrickedArray& Ax,
                     const BatchedBrickedArray& b, real_t gamma,
                     const Box& active);

/// r = b - Ax.
void residual(BatchedBrickedArray& r, const BatchedBrickedArray& b,
              const BatchedBrickedArray& Ax, const Box& active);

/// coarse = volume average of the 8 fine cells, per component. Full
/// interiors; equal base brick shapes and batch sizes.
void restriction(BatchedBrickedArray& coarse, const BatchedBrickedArray& fine);

// Fused descent kernels — the K-inner twins of gmg::fused (DESIGN.md
// §16): one pass per fine brick covers the final smoother update, the
// residual, and the 8->1 coarse contribution for all K components.
// Same bitwise contract as the split twins above: identical per-cell,
// per-component expressions and summation order, so fused batched ==
// split batched == K solo runs.

/// Fused final Jacobi sweep + restriction of the just-written residual
/// (interior fine bricks) into `coarse_b`. `active` must cover the
/// fine interior.
void smooth_residual_restrict(BatchedBrickedArray& x, BatchedBrickedArray& r,
                              BatchedBrickedArray& coarse_b,
                              const BatchedBrickedArray& Ax,
                              const BatchedBrickedArray& b, real_t gamma,
                              const Box& active);

/// Variable-coefficient twin (diag shared across the batch).
void smooth_residual_restrict_varcoef(
    BatchedBrickedArray& x, BatchedBrickedArray& r,
    BatchedBrickedArray& coarse_b, const BatchedBrickedArray& Ax,
    const BatchedBrickedArray& b, const BrickedArray& diag, real_t omega,
    const Box& active);

/// Fused GS descent tail: r = b - Ax over the full interior plus the
/// per-brick restriction into `coarse_b`, one pass per fine brick.
void residual_restrict(BatchedBrickedArray& r, BatchedBrickedArray& coarse_b,
                       const BatchedBrickedArray& b,
                       const BatchedBrickedArray& Ax);

/// fine += piecewise-constant coarse correction, per component.
void interpolation_increment(BatchedBrickedArray& fine,
                             const BatchedBrickedArray& coarse);

/// One red-black Gauss-Seidel half-sweep per component (constant
/// coefficients, radius 1).
void gs_color_sweep(BatchedBrickedArray& x, const BatchedBrickedArray& b,
                    real_t alpha, real_t beta, int color, Vec3 origin,
                    const Box& active);

/// Zero the entire storage, ghosts included.
void init_zero(BatchedBrickedArray& a);

/// max |a_c| over the interior, one component.
real_t max_norm(const BatchedBrickedArray& a, int c);

/// Sum of a_c(i)^2 over the interior, one component — bitwise equal to
/// gmg::norm2_sq of the solo field with the same values.
real_t norm2_sq(const BatchedBrickedArray& a, int c);

/// Local <a_c, b_c> over the interior, one component.
real_t dot_interior(const BatchedBrickedArray& a, const BatchedBrickedArray& b,
                    int c);

/// y_c += alpha * x_c over the interior (per-component, for the masked
/// bottom-CG updates).
void axpy_interior(BatchedBrickedArray& y, real_t alpha,
                   const BatchedBrickedArray& x, int c);

/// y_c = x_c + beta * y_c over the interior.
void xpay_interior(BatchedBrickedArray& y, const BatchedBrickedArray& x,
                   real_t beta, int c);

/// dst = src over the interior, all components.
void copy_interior(BatchedBrickedArray& dst, const BatchedBrickedArray& src);

/// y += alpha * x over `active`, all components (shared scalar).
void axpy(BatchedBrickedArray& y, real_t alpha, const BatchedBrickedArray& x,
          const Box& active);

/// Chebyshev direction update p = inv_diag * r + beta * p, all
/// components.
void cheby_p_update(BatchedBrickedArray& p, const BatchedBrickedArray& r,
                    real_t inv_diag, real_t beta, const Box& active);

// Variable-coefficient twins: the coefficient/diagonal fields are
// SHARED across the batch (plain solo arrays from the base hierarchy).

/// Ax = s*x + div(beta grad x), all components, beta shared.
void apply_op_varcoef(BatchedBrickedArray& Ax, const BatchedBrickedArray& x,
                      const BrickedArray& beta, real_t identity_coef, real_t h,
                      const Box& active);

void smooth_residual_varcoef(BatchedBrickedArray& x, BatchedBrickedArray& r,
                             const BatchedBrickedArray& Ax,
                             const BatchedBrickedArray& b,
                             const BrickedArray& diag, real_t omega,
                             const Box& active);

void smooth_varcoef(BatchedBrickedArray& x, const BatchedBrickedArray& Ax,
                    const BatchedBrickedArray& b, const BrickedArray& diag,
                    real_t omega, const Box& active);

void cheby_p_update_varcoef(BatchedBrickedArray& p,
                            const BatchedBrickedArray& r,
                            const BrickedArray& diag, real_t beta_ch,
                            const Box& active);

// Static effect summaries (check/effects.hpp, DESIGN.md §18). Every
// batched kernel is the K-systems twin of a solo one and applies the
// SAME expression over the same base-cell footprint (the bitwise
// contract above), so its effect summary delegates to the solo
// kernel's — per-base-cell reads and writes are identical, only the
// innermost component fold differs.

constexpr check::EffectSummary apply_op_effects(int radius) {
  return ::gmg::apply_op_effects(radius);
}
constexpr check::EffectSummary smooth_effects() {
  return ::gmg::smooth_effects();
}
constexpr check::EffectSummary smooth_residual_effects() {
  return ::gmg::smooth_residual_effects();
}
constexpr check::EffectSummary residual_effects() {
  return ::gmg::residual_effects();
}
constexpr check::EffectSummary restriction_effects() {
  return ::gmg::restriction_effects();
}
constexpr check::EffectSummary smooth_residual_restrict_effects() {
  return ::gmg::fused::smooth_residual_restrict_effects();
}
constexpr check::EffectSummary smooth_residual_restrict_varcoef_effects() {
  return ::gmg::fused::smooth_residual_restrict_varcoef_effects();
}
constexpr check::EffectSummary residual_restrict_effects() {
  return ::gmg::fused::residual_restrict_effects();
}
constexpr check::EffectSummary interpolation_increment_effects() {
  return ::gmg::interpolation_increment_effects();
}
constexpr check::EffectSummary gs_color_sweep_effects() {
  return ::gmg::gs_color_sweep_effects();
}
constexpr check::EffectSummary init_zero_effects() {
  return ::gmg::init_zero_effects();
}
constexpr check::EffectSummary max_norm_effects() {
  return ::gmg::max_norm_effects();
}
constexpr check::EffectSummary norm2_sq_effects() {
  return ::gmg::norm2_sq_effects();
}
constexpr check::EffectSummary dot_interior_effects() {
  return ::gmg::dot_interior_effects();
}
constexpr check::EffectSummary axpy_interior_effects() {
  return ::gmg::axpy_interior_effects();
}
constexpr check::EffectSummary xpay_interior_effects() {
  return ::gmg::xpay_interior_effects();
}
constexpr check::EffectSummary copy_interior_effects() {
  return ::gmg::copy_interior_effects();
}
constexpr check::EffectSummary axpy_effects() {
  return ::gmg::axpy_effects();
}
constexpr check::EffectSummary cheby_p_update_effects() {
  return ::gmg::cheby_p_update_effects();
}
constexpr check::EffectSummary apply_op_varcoef_effects() {
  return ::gmg::apply_op_varcoef_effects();
}
constexpr check::EffectSummary smooth_residual_varcoef_effects() {
  return ::gmg::smooth_residual_varcoef_effects();
}
constexpr check::EffectSummary smooth_varcoef_effects() {
  return ::gmg::smooth_varcoef_effects();
}
constexpr check::EffectSummary cheby_p_update_varcoef_effects() {
  return ::gmg::cheby_p_update_varcoef_effects();
}

}  // namespace gmg::batch
