#include "batch/batched_audit.hpp"

#include <numeric>
#include <vector>

#include "batch/batched_solver.hpp"
#include "gmg/schedule_audit.hpp"

namespace gmg::batch {

check::Schedule record_batched_schedule(const BatchedSolver& bs) {
  check::ScheduleRecorder rec("batch.solve");
  rec.set_num_components(bs.k_);
  ScheduleWalker w(rec, bs.base_);
  w.add_levels();
  w.set_canonical_initial();
  w.set_num_components(bs.k_);

  std::vector<int> active(static_cast<std::size_t>(bs.k_));
  std::iota(active.begin(), active.end(), 0);
  w.set_active_components(active);

  w.residual_norm();
  w.vcycle();
  w.residual_norm();

  // Representative retirement: component 0 leaves the batch between
  // cycles; subsequent masked norm groups must cover only survivors,
  // in ascending order, while the bottom solve's unconditional
  // collectives keep the full width.
  if (bs.k_ > 1) {
    rec.retire(0);
    active.erase(active.begin());
    w.set_active_components(active);
  }

  w.vcycle();
  w.residual_norm();
  return rec.take();
}

void verify_batched_schedule(const BatchedSolver& bs) {
  check::ScheduleVerifier().verify(record_batched_schedule(bs));
}

}  // namespace gmg::batch
