// Apply a DSL expression over batched (multi-RHS) bricked storage —
// the K-systems twin of dsl::apply (src/dsl/apply_brick.hpp,
// DESIGN.md §15).
//
// Iteration runs over the BASE brick plan (the same cached plan the
// solo kernels use) with an innermost loop over the K components.
// Input slots may be batched (a BatchedBrickedArray: component c of
// cell e at flat e*K + c) or shared across the batch (a plain
// BrickedArray, e.g. the variable-coefficient field: every component
// reads the same value). Each element evaluates the SAME expression
// tree as the solo engine — expressions are element-independent, so
// under the repo-wide -ffp-contract=off pin every component's result
// is bitwise identical to a solo apply of that component, regardless
// of loop order or vectorization.
#pragma once

#include <array>
#include <optional>

#include "batch/batched_array.hpp"
#include "brick/brick_plan.hpp"
#include "check/footprint.hpp"
#include "check/shadow.hpp"
#include "dsl/expr.hpp"

namespace gmg::batch {

namespace detail {

/// Accessor resolving base-cell coordinates through the adjacency
/// table, then indexing component `c` of the slot's (possibly
/// stretched) storage. stride = K for batched slots, 1 for shared.
template <typename BD, int NSlots>
struct BatchedAccessor {
  std::array<const real_t*, NSlots> field;
  std::array<index_t, NSlots> stride;
  const std::int32_t* adj;
  std::int32_t id;
  index_t c = 0;

  template <int Slot>
  real_t load(index_t li, index_t lj, index_t lk) const {
    const int sx = li < 0 ? -1 : (li >= BD::bx ? 1 : 0);
    const int sy = lj < 0 ? -1 : (lj >= BD::by ? 1 : 0);
    const int sz = lk < 0 ? -1 : (lk >= BD::bz ? 1 : 0);
    std::int32_t b = id;
    if (sx != 0 || sy != 0 || sz != 0) {
      b = adj[direction_index(sx, sy, sz)];
      GMG_ASSERT(b >= 0);
      li -= sx * BD::bx;
      lj -= sy * BD::by;
      lk -= sz * BD::bz;
    }
    const std::size_t e =
        static_cast<std::size_t>(b) * BD::volume +
        static_cast<std::size_t>((lk * BD::by + lj) * BD::bx + li);
    const index_t s = stride[Slot];
    return field[Slot][e * static_cast<std::size_t>(s) +
                       static_cast<std::size_t>(s > 1 ? c : 0)];
  }
};

inline const real_t* slot_data(const BatchedBrickedArray& f) {
  return f.data();
}
inline const real_t* slot_data(const BrickedArray& f) { return f.data(); }

inline index_t slot_stride(const BatchedBrickedArray& f) {
  return static_cast<index_t>(f.batch());
}
inline index_t slot_stride(const BrickedArray&) { return 1; }

inline const BrickGrid* slot_grid(const BatchedBrickedArray& f) {
  return &f.grid();
}
inline const BrickGrid* slot_grid(const BrickedArray& f) { return &f.grid(); }

inline check::Access slot_access(const BatchedBrickedArray& f,
                                 const Box& reach) {
  return check::access(f.inner(), stretch_box(reach, f.batch()));
}
inline check::Access slot_access(const BrickedArray& f, const Box& reach) {
  return check::access(f, reach);
}

inline void slot_require_shape(const BatchedBrickedArray& f, BrickShape base,
                               int k) {
  GMG_REQUIRE(f.base_shape() == base && f.batch() == k,
              "batched apply: slot base shape / batch size mismatch");
}
inline void slot_require_shape(const BrickedArray& f, BrickShape base, int) {
  GMG_REQUIRE(f.shape() == base,
              "batched apply: shared slot brick shape mismatch");
}

template <typename BD, typename Expr, typename... Fields>
void apply_batched_impl(BD, const Expr& expr, BatchedBrickedArray& out,
                        const Box& active, const Fields&... inputs) {
  const BrickGrid& grid = out.grid();
  const auto check_grid = [&](const auto& f) {
    GMG_REQUIRE(slot_grid(f) == &grid,
                "all fields of one batched apply must share a brick grid");
  };
  (check_grid(inputs), ...);

  const index_t kBatch = static_cast<index_t>(out.batch());

  // Footprint-vs-ghost checks run against the BASE shape: taps are in
  // base cells and the ghost region is one base brick (K components)
  // deep either way.
  const dsl::Extents ext = expr.extents();
  check::require_footprint_fits("batch::apply", ext,
                                BrickShape{BD::bx, BD::by, BD::bz});

  constexpr int kSlots = sizeof...(Fields);
  const std::array<const real_t*, kSlots> bases{slot_data(inputs)...};
  const std::array<index_t, kSlots> strides{slot_stride(inputs)...};

  std::optional<check::KernelScope> scope;
  if (check::enabled()) {
    const dsl::OffsetSet offs = expr.offsets();
    std::vector<check::Access> reads;
    reads.reserve(kSlots);
    int slot = 0;
    const auto add_read = [&](const auto& f) {
      const dsl::Extents se = offs.slot_extents(slot++);
      const Box reach{{active.lo.x + se.lo[0], active.lo.y + se.lo[1],
                       active.lo.z + se.lo[2]},
                      {active.hi.x + se.hi[0], active.hi.y + se.hi[1],
                       active.hi.z + se.hi[2]}};
      reads.push_back(slot_access(f, reach));
    };
    (add_read(inputs), ...);
    scope.emplace("batch.apply",
                  std::vector<check::Access>{check::access(
                      out.inner(), stretch_box(active, out.batch()))},
                  std::move(reads));
  }

  {
    const Box tap_region{
        {floor_div(active.lo.x + ext.lo[0], BD::bx),
         floor_div(active.lo.y + ext.lo[1], BD::by),
         floor_div(active.lo.z + ext.lo[2], BD::bz)},
        {floor_div(active.hi.x - 1 + ext.hi[0], BD::bx) + 1,
         floor_div(active.hi.y - 1 + ext.hi[1], BD::by) + 1,
         floor_div(active.hi.z - 1 + ext.hi[2], BD::bz) + 1}};
    GMG_REQUIRE(grid.extended_box().covers(tap_region),
                "stencil taps reach beyond the ghost bricks");
  }

  const auto plan = grid.iteration_plan(active, Vec3{BD::bx, BD::by, BD::bz});
  real_t* const out_base = out.data();
  for_each_plan_brick<BD>(
      "batch.apply", *plan, [&](const BrickPlanItem& it, auto full) {
        constexpr bool kFull = decltype(full)::value;
        const std::int32_t id = it.id;
        real_t* __restrict ob =
            out_base +
            static_cast<std::size_t>(id) * BD::volume *
                static_cast<std::size_t>(kBatch);

        const index_t ilo = kFull ? 0 : it.ilo;
        const index_t ihi = kFull ? BD::bx : it.ihi;
        const index_t jlo = kFull ? 0 : it.jlo;
        const index_t jhi = kFull ? BD::by : it.jhi;
        const index_t klo = kFull ? 0 : it.klo;
        const index_t khi = kFull ? BD::bz : it.khi;

        BatchedAccessor<BD, kSlots> acc{bases, strides, it.adj, id, 0};
        for (index_t lk = klo; lk < khi; ++lk) {
          for (index_t lj = jlo; lj < jhi; ++lj) {
            real_t* __restrict orow =
                ob + (lk * BD::by + lj) * BD::bx * kBatch;
            for (index_t li = ilo; li < ihi; ++li) {
              for (index_t c = 0; c < kBatch; ++c) {
                acc.c = c;
                orow[li * kBatch + c] = expr.eval(acc, li, lj, lk);
              }
            }
          }
        }
      });
}

}  // namespace detail

/// out(i,j,k,c) = expr evaluated on component c, for all K components,
/// over `active` (base cell coordinates). Inputs may be
/// BatchedBrickedArrays (per-component) or BrickedArrays (shared).
template <typename Expr, typename... Fields>
void apply(const Expr& expr, BatchedBrickedArray& out, const Box& active,
           const Fields&... inputs) {
  (detail::slot_require_shape(inputs, out.base_shape(), out.batch()), ...);
  with_brick_dims(out.base_shape(), [&](auto bd) {
    detail::apply_batched_impl(bd, expr, out, active, inputs...);
  });
}

}  // namespace gmg::batch
