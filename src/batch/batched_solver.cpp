#include "batch/batched_solver.hpp"

#include <array>
#include <cmath>

#include "batch/apply_batch.hpp"
#include "batch/batched_audit.hpp"
#include "batch/batched_kernels.hpp"
#include "common/timer.hpp"
#include "dsl/stencils.hpp"
#include "mesh/box.hpp"
#include "trace/trace.hpp"

namespace gmg::batch {

// Every schedule method below is a line-for-line twin of the matching
// GmgSolver method (src/gmg/solver.cpp), with batched kernels and this
// solver's own margin/ghost bookkeeping — same exchange points, same
// active regions, same update order. When editing one side, port the
// change to the other; the bitwise-identity test (test_batch) holds
// both to it.

BatchedSolver::BatchedSolver(GmgSolver& base, int k, BrickArena* arena)
    : base_(base), k_(k), arena_(arena) {
  GMG_REQUIRE(k >= 1, "batch size must be >= 1");
  GMG_REQUIRE(!base.options().use_generated_kernels,
              "batched solves support the hand-written and DSL kernels only "
              "(stencilgen output is emitted for solo layout)");
  const GmgOptions& opts = base.options();
  const CartDecomp& decomp = base.decomp();
  levels_.reserve(static_cast<std::size_t>(base.num_levels()));
  for (int l = 0; l < base.num_levels(); ++l) {
    const MgLevel& lev = base.level(l);
    BatchLevel bl;
    if (arena_ != nullptr) {
      bl.x = BatchedBrickedArray(lev.grid, lev.shape, k, *arena_);
      bl.b = BatchedBrickedArray(lev.grid, lev.shape, k, *arena_);
      bl.Ax = BatchedBrickedArray(lev.grid, lev.shape, k, *arena_);
      bl.r = BatchedBrickedArray(lev.grid, lev.shape, k, *arena_);
      if (needs_p()) bl.p = BatchedBrickedArray(lev.grid, lev.shape, k, *arena_);
    } else {
      bl.x = BatchedBrickedArray(lev.grid, lev.shape, k);
      bl.b = BatchedBrickedArray(lev.grid, lev.shape, k);
      bl.Ax = BatchedBrickedArray(lev.grid, lev.shape, k);
      bl.r = BatchedBrickedArray(lev.grid, lev.shape, k);
      if (needs_p()) bl.p = BatchedBrickedArray(lev.grid, lev.shape, k);
    }
    // One stretched-shape exchange engine per level: a single round
    // moves all K components of every aggregated field per neighbor.
    bl.exchange = std::make_unique<comm::BrickExchange>(
        lev.grid, stretched_shape(lev.shape, k), decomp, base.rank(),
        opts.exchange_mode);
    levels_.push_back(std::move(bl));
  }
  solutions_.assign(static_cast<std::size_t>(k_), {});
  if (check::verify_schedule_enabled()) verify_batched_schedule(*this);
}

void BatchedSolver::exchange_now(comm::Communicator& comm, BatchLevel& bl,
                                 BrickedArray& field) {
  bl.exchange->exchange(comm, field);
}

BatchedSolver::~BatchedSolver() {
  if (arena_ == nullptr) return;
  for (BatchLevel& bl : levels_) {
    bl.x.release_to(*arena_);
    bl.b.release_to(*arena_);
    bl.Ax.release_to(*arena_);
    bl.r.release_to(*arena_);
    if (bl.p.size() != 0) bl.p.release_to(*arena_);
  }
}

void BatchedSolver::set_rhs(
    const std::vector<std::function<real_t(real_t, real_t, real_t)>>& fs) {
  GMG_REQUIRE(static_cast<int>(fs.size()) == k_,
              "need one RHS function per batch component");
  const MgLevel& fine = base_level(0);
  BatchLevel& bf = levels_.front();
  const real_t h = fine.h;
  for_each(fine.interior(), [&](index_t i, index_t j, index_t k) {
    const real_t px = (static_cast<real_t>(fine.rank_box.lo.x + i) + 0.5) * h;
    const real_t py = (static_cast<real_t>(fine.rank_box.lo.y + j) + 0.5) * h;
    const real_t pz = (static_cast<real_t>(fine.rank_box.lo.z + k) + 0.5) * h;
    for (int c = 0; c < k_; ++c) {
      bf.b.at(i, j, k, c) = fs[static_cast<std::size_t>(c)](px, py, pz);
    }
  });
  init_zero(bf.x);
  bf.margin = fine.shape.bx;  // zero ghosts are valid for a zero x
  bf.b_ghosts_valid = false;
  for (std::size_t l = 1; l < levels_.size(); ++l) {
    init_zero(levels_[l].x);
    init_zero(levels_[l].b);
    levels_[l].margin = 0;
    levels_[l].b_ghosts_valid = false;
  }
  // Same back-to-back-solve audit as GmgSolver::set_rhs: p is read
  // before written by the first Chebyshev sweep.
  for (BatchLevel& bl : levels_) {
    if (bl.p.size() != 0) init_zero(bl.p);
  }
}

void BatchedSolver::apply_operator(const MgLevel& lev, BatchedBrickedArray& out,
                                   const BatchedBrickedArray& in,
                                   const Box& active) {
  if (lev.varcoef) {
    apply_op_varcoef(out, in, lev.coef, base_.options().identity_coef, lev.h,
                     active);
  } else if (lev.radius == 1) {
    apply_op(out, in, lev.alpha, lev.beta, active);
  } else {
    const auto expr = dsl::star_stencil<2, 0>(
        std::array<real_t, 3>{lev.alpha, lev.beta, lev.beta2});
    batch::apply(expr, out, active, in);
  }
}

void BatchedSolver::exchange_for_smooth(comm::Communicator& comm, int l) {
  const GmgOptions& opts = base_.options();
  BatchLevel& bl = levels_[static_cast<std::size_t>(l)];
  const bool with_p =
      opts.smoother == Smoother::kChebyshev && bl.p.size() != 0;
  std::vector<BrickedArray*> fields{&bl.x.inner()};
  if (opts.communication_avoiding && !bl.b_ghosts_valid) {
    fields.push_back(&bl.b.inner());
    bl.b_ghosts_valid = true;
  }
  if (with_p && opts.communication_avoiding) fields.push_back(&bl.p.inner());
  bl.exchange->exchange(comm, fields);
  bl.margin = base_level(l).shape.bx;
}

bool BatchedSolver::use_overlap(int l) const {
  const GmgOptions& opts = base_.options();
  const MgLevel& lev = base_level(l);
  const BatchLevel& bl = levels_[static_cast<std::size_t>(l)];
  if (!(opts.overlap && lev.has_remote &&
        static_cast<int>(lev.part.interior.size()) >=
            opts.overlap_min_interior_bricks)) {
    return false;
  }
  if (opts.overlap_min_compute_bytes_ratio > 0.0) {
    // Stretched numbers on both sides of the ratio (interior work and
    // remote payload both scale by K, so the cutoff is K-invariant).
    const double interior_bytes =
        static_cast<double>(lev.part.interior.size()) *
        static_cast<double>(lev.shape.volume()) *
        static_cast<double>(k_) * sizeof(real_t);
    const double remote_bytes =
        static_cast<double>(bl.exchange->remote_bytes_per_exchange());
    if (interior_bytes <
        opts.overlap_min_compute_bytes_ratio * remote_bytes) {
      return false;
    }
  }
  return true;
}

exec::Engine& BatchedSolver::engine() {
  exec::Engine& eng = exec::default_engine();
  const std::uint64_t gen = exec::default_engine_generation();
  if (gen != engine_generation_) {
    compute_stream_ = eng.create_stream("batch.compute");
    engine_generation_ = gen;
  }
  return eng;
}

void BatchedSolver::begin_exchange_for_smooth(comm::Communicator& comm,
                                              int l) {
  const GmgOptions& opts = base_.options();
  BatchLevel& bl = levels_[static_cast<std::size_t>(l)];
  const bool with_p =
      opts.smoother == Smoother::kChebyshev && bl.p.size() != 0;
  std::vector<BrickedArray*> fields{&bl.x.inner()};
  if (opts.communication_avoiding && !bl.b_ghosts_valid) {
    fields.push_back(&bl.b.inner());
    bl.b_ghosts_valid = true;
  }
  if (with_p && opts.communication_avoiding) fields.push_back(&bl.p.inner());
  bl.exchange->begin(comm, std::move(fields));
  // Margin claimed at begin time, completed by
  // finish_exchange_overlapped — same contract as the solo solver.
  bl.margin = base_level(l).shape.bx;
}

Box BatchedSolver::overlap_safe_box(const MgLevel& lev,
                                    const Box& active) const {
  if (lev.part.interior_box.empty()) return Box{};
  Box safe = active;
  for (int d = 0; d < 3; ++d) {
    int off[3] = {0, 0, 0};
    off[d] = -1;
    if (lev.remote[static_cast<std::size_t>(
            direction_index(off[0], off[1], off[2]))])
      safe.lo[d] = std::max(safe.lo[d], lev.part_cells.lo[d]);
    off[d] = 1;
    if (lev.remote[static_cast<std::size_t>(
            direction_index(off[0], off[1], off[2]))])
      safe.hi[d] = std::min(safe.hi[d], lev.part_cells.hi[d]);
  }
  return safe.empty() ? Box{} : safe;
}

void BatchedSolver::finish_exchange_overlapped(
    comm::Communicator& comm, int l, const Box& active,
    const std::function<void(const Box&)>& kernel) {
  const MgLevel& lev = base_level(l);
  BatchLevel& bl = levels_[static_cast<std::size_t>(l)];
  const Box safe = overlap_safe_box(lev, active);
  exec::Event done;
  if (!safe.empty()) {
    exec::Engine& eng = engine();
    eng.submit(compute_stream_, "overlap.interior", [&, safe] {
      trace::TraceSpan span("batch.overlap.interior");
      kernel(safe);
    });
    done = eng.record(compute_stream_);
  }
  bl.exchange->finish(comm);
  const std::vector<Box> shell = shell_boxes(active, safe);
  for (const Box& s : shell) kernel(s);
  {
    trace::TraceSpan wait_span("exec.wait_overlap", trace::Category::kWait);
    done.wait();
  }
}

void BatchedSolver::smooth_level(comm::Communicator& comm, int l,
                                 int iterations, bool with_residual,
                                 BatchedBrickedArray* restrict_to) {
  // The smoother choice and the per-smoother fusion capability both
  // come from the base level's KernelPlan (resolved once at setup by
  // the solo specializer) — the batched path makes no fusion decision
  // of its own.
  switch (base_.options().smoother) {
    case Smoother::kPointJacobi:
    case Smoother::kWeightedJacobi:
      jacobi_sweeps(comm, l, iterations, with_residual, restrict_to);
      break;
    case Smoother::kChebyshev:
      chebyshev_sweeps(comm, l, iterations, with_residual, restrict_to);
      break;
    case Smoother::kRedBlackGS:
      gs_sweeps(comm, l, iterations, with_residual, restrict_to);
      break;
  }
}

void BatchedSolver::gs_sweeps(comm::Communicator& comm, int l, int iterations,
                              bool with_residual,
                              BatchedBrickedArray* restrict_to) {
  const MgLevel& lev = base_level(l);
  BatchLevel& bl = levels_[static_cast<std::size_t>(l)];
  GMG_REQUIRE(lev.radius == 1 && !lev.varcoef,
              "red-black Gauss-Seidel supports the constant-coefficient "
              "7-point operator only");
  const GmgOptions& opts = base_.options();
  const Box interior = lev.interior();
  const Vec3 origin = lev.rank_box.lo;
  for (int it = 0; it < iterations; ++it) {
    if (opts.communication_avoiding) {
      bool split = false;
      if (bl.margin < 2 || !bl.b_ghosts_valid) {
        split = use_overlap(l);
        if (split)
          begin_exchange_for_smooth(comm, l);
        else
          exchange_for_smooth(comm, l);
      }
      const Box red_box = grow(interior, bl.margin - 1);
      const Box black_box = grow(interior, bl.margin - 2);
      if (split) {
        finish_exchange_overlapped(
            comm, l, red_box, [&](const Box& region) {
              gs_color_sweep(bl.x, bl.b, lev.alpha, lev.beta, 0, origin,
                             region);
            });
        gs_color_sweep(bl.x, bl.b, lev.alpha, lev.beta, 1, origin, black_box);
      } else {
        gs_color_sweep(bl.x, bl.b, lev.alpha, lev.beta, 0, origin, red_box);
        gs_color_sweep(bl.x, bl.b, lev.alpha, lev.beta, 1, origin, black_box);
      }
      bl.margin -= 2;
    } else {
      for (int color = 0; color < 2; ++color) {
        if (use_overlap(l)) {
          begin_exchange_for_smooth(comm, l);
          finish_exchange_overlapped(
              comm, l, interior, [&](const Box& region) {
                gs_color_sweep(bl.x, bl.b, lev.alpha, lev.beta, color, origin,
                               region);
              });
        } else {
          exchange_for_smooth(comm, l);
          gs_color_sweep(bl.x, bl.b, lev.alpha, lev.beta, color, origin,
                         interior);
        }
      }
      bl.margin = 0;
    }
  }
  if (with_residual) {
    if (bl.margin < 1) {
      if (use_overlap(l)) {
        begin_exchange_for_smooth(comm, l);
        finish_exchange_overlapped(comm, l, interior,
                                   [&](const Box& region) {
                                     apply_operator(lev, bl.Ax, bl.x, region);
                                   });
      } else {
        exchange_for_smooth(comm, l);
        apply_operator(lev, bl.Ax, bl.x, interior);
      }
    } else {
      apply_operator(lev, bl.Ax, bl.x, interior);
    }
    if (restrict_to != nullptr && lev.plan.fuse_gs_tail) {
      residual_restrict(bl.r, *restrict_to, bl.b, bl.Ax);
    } else {
      residual(bl.r, bl.b, bl.Ax, interior);
    }
  }
}

void BatchedSolver::jacobi_sweeps(comm::Communicator& comm, int l,
                                  int iterations, bool with_residual,
                                  BatchedBrickedArray* restrict_to) {
  const MgLevel& lev = base_level(l);
  BatchLevel& bl = levels_[static_cast<std::size_t>(l)];
  const GmgOptions& opts = base_.options();
  const Box interior = lev.interior();
  const real_t weight = lev.plan.weight;
  const real_t gamma = -weight / lev.alpha;
  const index_t radius = lev.radius;
  for (int it = 0; it < iterations; ++it) {
    Box active = interior;
    bool split = false;
    if (opts.communication_avoiding) {
      if (bl.margin < radius || !bl.b_ghosts_valid) {
        split = use_overlap(l);
        if (split)
          begin_exchange_for_smooth(comm, l);
        else
          exchange_for_smooth(comm, l);
      }
      active = grow(interior, bl.margin - radius);
    } else {
      split = use_overlap(l);
      if (split)
        begin_exchange_for_smooth(comm, l);
      else
        exchange_for_smooth(comm, l);
      bl.margin = 0;
    }
    if (split) {
      finish_exchange_overlapped(comm, l, active, [&](const Box& region) {
        apply_operator(lev, bl.Ax, bl.x, region);
      });
    } else {
      apply_operator(lev, bl.Ax, bl.x, active);
    }
    const bool fuse_final = with_residual && restrict_to != nullptr &&
                            lev.plan.fuse_descent && it == iterations - 1;
    if (fuse_final) {
      if (lev.varcoef) {
        smooth_residual_restrict_varcoef(bl.x, bl.r, *restrict_to, bl.Ax,
                                         bl.b, lev.diag, weight, active);
      } else {
        smooth_residual_restrict(bl.x, bl.r, *restrict_to, bl.Ax, bl.b,
                                 gamma, active);
      }
    } else if (with_residual) {
      if (lev.varcoef) {
        smooth_residual_varcoef(bl.x, bl.r, bl.Ax, bl.b, lev.diag, weight,
                                active);
      } else {
        smooth_residual(bl.x, bl.r, bl.Ax, bl.b, gamma, active);
      }
    } else {
      if (lev.varcoef) {
        smooth_varcoef(bl.x, bl.Ax, bl.b, lev.diag, weight, active);
      } else {
        smooth(bl.x, bl.Ax, bl.b, gamma, active);
      }
    }
    if (opts.communication_avoiding) bl.margin -= radius;
  }
}

void BatchedSolver::chebyshev_sweeps(comm::Communicator& comm, int l,
                                     int iterations, bool with_residual,
                                     BatchedBrickedArray* restrict_to) {
  (void)with_residual;  // r = b - Ax is produced every sweep anyway
  (void)restrict_to;    // split fallback: the recurrence consumes r
                        // every sweep, so the caller restricts
  const MgLevel& lev = base_level(l);
  BatchLevel& bl = levels_[static_cast<std::size_t>(l)];
  const GmgOptions& opts = base_.options();
  const Box interior = lev.interior();
  const index_t radius = lev.radius;
  const real_t lambda_max = opts.cheby_lambda_max;
  const real_t lambda_min = lambda_max * opts.cheby_min_frac;
  const real_t theta = 0.5 * (lambda_max + lambda_min);
  const real_t delta = 0.5 * (lambda_max - lambda_min);
  const real_t inv_diag = 1.0 / lev.alpha;

  real_t alpha_ch = 0.0;
  for (int it = 0; it < iterations; ++it) {
    Box active = interior;
    bool split = false;
    if (opts.communication_avoiding) {
      if (bl.margin < radius || !bl.b_ghosts_valid) {
        split = use_overlap(l);
        if (split)
          begin_exchange_for_smooth(comm, l);
        else
          exchange_for_smooth(comm, l);
      }
      active = grow(interior, bl.margin - radius);
    } else {
      split = use_overlap(l);
      if (split)
        begin_exchange_for_smooth(comm, l);
      else
        exchange_for_smooth(comm, l);
      bl.margin = 0;
    }
    if (split) {
      finish_exchange_overlapped(comm, l, active, [&](const Box& region) {
        apply_operator(lev, bl.Ax, bl.x, region);
      });
    } else {
      apply_operator(lev, bl.Ax, bl.x, active);
    }
    residual(bl.r, bl.b, bl.Ax, active);
    real_t beta_ch;
    if (it == 0) {
      beta_ch = 0.0;
      alpha_ch = 1.0 / theta;
    } else {
      beta_ch = 0.25 * (delta * alpha_ch) * (delta * alpha_ch);
      alpha_ch = 1.0 / (theta - beta_ch / alpha_ch);
    }
    if (lev.varcoef) {
      cheby_p_update_varcoef(bl.p, bl.r, lev.diag, beta_ch, active);
    } else {
      cheby_p_update(bl.p, bl.r, inv_diag, beta_ch, active);
    }
    axpy(bl.x, alpha_ch, bl.p, active);
    if (opts.communication_avoiding) bl.margin -= radius;
  }
}

void BatchedSolver::bottom_solve(comm::Communicator& comm) {
  if (base_.options().bottom == BottomSolverType::kSmooth) {
    smooth_level(comm, bottom_level(), base_.options().bottom_smooths,
                 /*with_residual=*/false);
  } else {
    bottom_cg(comm, bottom_level());
  }
}

void BatchedSolver::bottom_cg(comm::Communicator& comm, int l) {
  // Masked CG: per-component scalars (rr, pAp, step length) and
  // per-component freezing where the solo iteration would have exited
  // (rr <= stop, or a pAp breakdown). Exchanges and the operator
  // application keep running over all K components — a frozen
  // component's p never changes, so re-exchanging and re-applying it
  // perturbs nothing — while the masked axpy/xpay updates skip frozen
  // components so their x, r, p stay exactly at the solo exit state.
  // All freeze decisions derive from allreduced scalars, so every rank
  // agrees on the collective count and order (component order).
  const MgLevel& lev = base_level(l);
  BatchLevel& bl = levels_[static_cast<std::size_t>(l)];
  const GmgOptions& opts = base_.options();
  const Box interior = lev.interior();

  if (bl.margin < lev.radius) {
    exchange_now(comm, bl, bl.x.inner());
    bl.margin = lev.shape.bx;
  }
  apply_operator(lev, bl.Ax, bl.x, interior);
  residual(bl.r, bl.b, bl.Ax, interior);
  copy_interior(bl.p, bl.r);

  const real_t stop = opts.bottom_cg_tolerance * opts.bottom_cg_tolerance;
  std::vector<real_t> rr(static_cast<std::size_t>(k_));
  std::vector<bool> live(static_cast<std::size_t>(k_));
  int nlive = 0;
  for (int c = 0; c < k_; ++c) {
    rr[static_cast<std::size_t>(c)] =
        comm.allreduce_sum(dot_interior(bl.r, bl.r, c));
    live[static_cast<std::size_t>(c)] = rr[static_cast<std::size_t>(c)] > stop;
    if (live[static_cast<std::size_t>(c)]) ++nlive;
  }
  for (int it = 0; it < opts.bottom_smooths && nlive > 0; ++it) {
    exchange_now(comm, bl, bl.p.inner());
    apply_operator(lev, bl.Ax, bl.p, interior);  // Ax := A p
    for (int c = 0; c < k_; ++c) {
      const std::size_t cc = static_cast<std::size_t>(c);
      if (!live[cc]) continue;
      const real_t pAp = comm.allreduce_sum(dot_interior(bl.p, bl.Ax, c));
      if (pAp == 0.0) {
        live[cc] = false;
        --nlive;
        continue;
      }
      const real_t a = rr[cc] / pAp;
      axpy_interior(bl.x, a, bl.p, c);
      axpy_interior(bl.r, -a, bl.Ax, c);
      const real_t rr_new = comm.allreduce_sum(dot_interior(bl.r, bl.r, c));
      xpay_interior(bl.p, bl.r, rr_new / rr[cc], c);
      rr[cc] = rr_new;
      if (!(rr[cc] > stop)) {
        live[cc] = false;
        --nlive;
      }
    }
  }
  bl.margin = 0;  // x changed; ghosts are stale
}

void BatchedSolver::cycle_at(comm::Communicator& comm, int l) {
  if (l == bottom_level()) {
    bottom_solve(comm);
    return;
  }
  const GmgOptions& opts = base_.options();
  BatchLevel& bl = levels_[static_cast<std::size_t>(l)];
  BatchLevel& coarse = levels_[static_cast<std::size_t>(l + 1)];

  // Same fused-descent wiring as the solo cycle_at: when the base
  // level's plan fuses the restriction, the smoother's final sweep
  // writes coarse.b directly and the split pass disappears.
  BatchedBrickedArray* restrict_to =
      base_level(l).plan.fuses_restriction() ? &coarse.b : nullptr;
  smooth_level(comm, l, opts.smooths, /*with_residual=*/true, restrict_to);
  if (restrict_to == nullptr) restriction(coarse.b, bl.r);
  coarse.b_ghosts_valid = false;
  init_zero(coarse.x);
  coarse.margin = base_level(l + 1).shape.bx;  // zero ghosts are valid

  cycle_at(comm, l + 1);
  if (opts.cycle == CycleType::kW) cycle_at(comm, l + 1);

  interpolation_increment(bl.x, coarse.x);
  bl.margin = 0;  // interior changed; ghosts are stale
  smooth_level(comm, l, opts.smooths, /*with_residual=*/true);
}

void BatchedSolver::vcycle(comm::Communicator& comm) {
  trace::TraceSpan span("batch.vcycle");
  cycle_at(comm, 0);
}

void BatchedSolver::residual_norms(comm::Communicator& comm,
                                   const std::vector<bool>& active,
                                   std::vector<real_t>& res) {
  const MgLevel& lev = base_level(0);
  BatchLevel& bl = levels_.front();
  const Box interior = lev.interior();
  if (bl.margin < lev.radius && use_overlap(0)) {
    begin_exchange_for_smooth(comm, 0);
    finish_exchange_overlapped(comm, 0, interior, [&](const Box& region) {
      apply_operator(lev, bl.Ax, bl.x, region);
    });
  } else {
    if (bl.margin < lev.radius) exchange_for_smooth(comm, 0);
    apply_operator(lev, bl.Ax, bl.x, interior);
  }
  // Stays split (no fused residual+max-norm here): the reduction is
  // per-component with retirement masking, so one residual pass feeds
  // up to K separate strided reduces — and the split pair is value-
  // identical to the solo fused kernel anyway.
  residual(bl.r, bl.b, bl.Ax, interior);
  // Retired components are skipped consistently on every rank (their
  // retirement derived from allreduced values), keeping the collective
  // count and order rank-uniform.
  for (int c = 0; c < k_; ++c) {
    if (!active[static_cast<std::size_t>(c)]) continue;
    res[static_cast<std::size_t>(c)] = comm.allreduce_max(max_norm(bl.r, c));
  }
}

Vec3 BatchedSolver::solution_extent() const {
  return base_level(0).cells;
}

void BatchedSolver::snapshot_solution(int c) {
  const MgLevel& fine = base_level(0);
  BatchedBrickedArray& x = levels_.front().x;
  std::vector<real_t>& out = solutions_[static_cast<std::size_t>(c)];
  out.clear();
  out.reserve(static_cast<std::size_t>(fine.cells.volume()));
  for_each(fine.interior(), [&](index_t i, index_t j, index_t k) {
    out.push_back(x.at(i, j, k, c));
  });
}

std::vector<SolveResult> BatchedSolver::solve(
    comm::Communicator& comm, const std::vector<BatchSolveSpec>& specs) {
  GMG_REQUIRE(static_cast<int>(specs.size()) == k_,
              "need one BatchSolveSpec per component");
  Timer timer;
  trace::counter_add("batch.solves", 1);
  trace::counter_add("batch.components", static_cast<std::uint64_t>(k_));
  std::vector<SolveResult> results(static_cast<std::size_t>(k_));
  std::vector<bool> active(static_cast<std::size_t>(k_), true);
  std::vector<real_t> res(static_cast<std::size_t>(k_), 0.0);
  int live = k_;

  const auto retire = [&](int c) {
    const std::size_t cc = static_cast<std::size_t>(c);
    active[cc] = false;
    results[cc].final_residual = res[cc];
    results[cc].converged = !results[cc].cancelled &&
                            res[cc] <= specs[cc].tolerance;
    results[cc].seconds = timer.elapsed();
    snapshot_solution(c);
    --live;
  };

  residual_norms(comm, active, res);
  for (int c = 0; c < k_; ++c) {
    results[static_cast<std::size_t>(c)].history.push_back(
        res[static_cast<std::size_t>(c)]);
  }
  // The per-component retirement points replicate the solo cycle
  // loop's exits exactly: loop-condition check (converged or budget
  // spent) first, then the collective cancel/deadline check, then the
  // cycle. A component that retires mid-batch keeps riding the
  // schedule, but its result and solution snapshot are frozen here.
  for (int c = 0; c < k_; ++c) {
    const std::size_t cc = static_cast<std::size_t>(c);
    if (!(res[cc] > specs[cc].tolerance &&
          results[cc].vcycles < specs[cc].max_vcycles)) {
      retire(c);
    }
  }
  while (live > 0) {
    for (int c = 0; c < k_; ++c) {
      const std::size_t cc = static_cast<std::size_t>(c);
      if (!active[cc] || specs[cc].control == nullptr) continue;
      const SolveControl* control = specs[cc].control;
      const bool local =
          control->cancel.load(std::memory_order_relaxed) ||
          (control->deadline_ns != 0 &&
           trace::now_ns() >= control->deadline_ns);
      if (comm.allreduce_max(local ? 1.0 : 0.0) > 0.0) {
        results[cc].cancelled = true;
        retire(c);
      }
    }
    if (live == 0) break;
    vcycle(comm);
    residual_norms(comm, active, res);
    for (int c = 0; c < k_; ++c) {
      const std::size_t cc = static_cast<std::size_t>(c);
      if (!active[cc]) continue;
      results[cc].history.push_back(res[cc]);
      ++results[cc].vcycles;
    }
    for (int c = 0; c < k_; ++c) {
      const std::size_t cc = static_cast<std::size_t>(c);
      if (!active[cc]) continue;
      if (!(res[cc] > specs[cc].tolerance &&
            results[cc].vcycles < specs[cc].max_vcycles)) {
        retire(c);
      }
    }
  }
  return results;
}

}  // namespace gmg::batch
