// Dry-run schedule recording for BatchedSolver (DESIGN.md §18). The
// batched schedule is the solo walker's launch/exchange structure —
// the K-component twin kernels share the solo effect summaries and the
// BatchLevel margin algebra is identical — widened to K reduction
// components: residual_norms contributes one retirement-masked norm
// per active component (ascending), the bottom CG contributes
// unconditional whole-batch collective groups, and a representative
// retirement between recorded cycles proves that shrinking the active
// set can never reorder or resurrect a collective.
#pragma once

#include "check/schedule.hpp"

namespace gmg::batch {

class BatchedSolver;

/// Record the planned batched schedule: an initial convergence check,
/// one full cycle with every component active, the representative
/// retirement of component 0, and a second cycle over the survivors.
check::Schedule record_batched_schedule(const BatchedSolver& bs);

/// Record and statically verify; throws gmg::Error naming the
/// offending step pair. Called from the BatchedSolver constructor when
/// check::verify_schedule_enabled().
void verify_batched_schedule(const BatchedSolver& bs);

}  // namespace gmg::batch
