// Compile-time stencil footprint verification (layer 1 of src/check).
//
// Every DSL expression exposes its exact tap set via offsets()
// (dsl/expr.hpp); this header supplies the reference shapes the
// library's operators must match, static_assert-able matchers, and the
// solver-setup checks that turn a silent out-of-ghost read into an
// immediate gmg::Error. Ghost storage is always one brick layer deep
// (BrickedArray::ghost_depth), so "fits" means: per-axis reach <=
// brick dimension, both for a single application and for the layers a
// communication-avoiding sweep consumes per iteration.
#pragma once

#include <algorithm>
#include <string>

#include "brick/brick_shape.hpp"
#include "common/error.hpp"
#include "dsl/expr.hpp"

namespace gmg::check {

/// The classic star of `radius`: center + 6 face rays.
constexpr dsl::OffsetSet star_shape(int radius, int slot = 0) {
  dsl::OffsetSet s;
  s.add(dsl::Tap{slot, 0, 0, 0});
  for (int d = 1; d <= radius; ++d) {
    s.add(dsl::Tap{slot, d, 0, 0});
    s.add(dsl::Tap{slot, -d, 0, 0});
    s.add(dsl::Tap{slot, 0, d, 0});
    s.add(dsl::Tap{slot, 0, -d, 0});
    s.add(dsl::Tap{slot, 0, 0, d});
    s.add(dsl::Tap{slot, 0, 0, -d});
  }
  return s;
}

/// The dense box of `radius`: (2r+1)^3 taps (r=1 is the 27-point box).
constexpr dsl::OffsetSet box_shape(int radius, int slot = 0) {
  dsl::OffsetSet s;
  for (int dz = -radius; dz <= radius; ++dz) {
    for (int dy = -radius; dy <= radius; ++dy) {
      for (int dx = -radius; dx <= radius; ++dx) {
        s.add(dsl::Tap{slot, dx, dy, dz});
      }
    }
  }
  return s;
}

/// Full-weighting restriction: each coarse cell reads its 2x2x2 fine
/// octant — offsets {0,1}^3 in fine-cell coordinates.
constexpr dsl::OffsetSet restriction_shape(int slot = 0) {
  dsl::OffsetSet s;
  for (int dz = 0; dz <= 1; ++dz) {
    for (int dy = 0; dy <= 1; ++dy) {
      for (int dx = 0; dx <= 1; ++dx) {
        s.add(dsl::Tap{slot, dx, dy, dz});
      }
    }
  }
  return s;
}

/// Piecewise-constant interpolation: each fine cell reads exactly its
/// parent coarse cell.
constexpr dsl::OffsetSet interpolation_pc_shape(int slot = 0) {
  dsl::OffsetSet s;
  s.add(dsl::Tap{slot, 0, 0, 0});
  return s;
}

/// Trilinear (FMG) interpolation: a fine cell reads 8 coarse cells;
/// over both parities per axis the union is the radius-1 box of its
/// parent — this is why FMG needs one valid coarse ghost layer.
constexpr dsl::OffsetSet interpolation_trilinear_shape(int slot = 0) {
  return box_shape(1, slot);
}

/// AMR coarse–fine interface ghost prolongation (DESIGN.md §17): a
/// fine ghost cell just outside a patch takes the cell-centered
/// trilinear blend of coarse cells — per parity 8 taps, union over
/// parities the radius-1 box of the parent, exactly the FMG
/// interpolation footprint. Needs one valid coarse ghost layer where
/// the patch face runs along a rank boundary.
constexpr dsl::OffsetSet amr_interface_prolongation_shape(int slot = 0) {
  return interpolation_trilinear_shape(slot);
}

/// AMR reflux (coarse–fine flux correction): per refined face of a
/// coarse interface cell the kernel reads, in fine-cell coordinates
/// anchored at the first fine cell inside the patch, the 2x2 fine
/// layer inside the patch plus the matching prolonged ghost layer just
/// outside — offsets {-1,0} along the face normal x {0,1}^2
/// tangentially, 8 taps with reach 1 (`axis` 0/1/2 = x/y/z normal).
constexpr dsl::OffsetSet reflux_fine_shape(int axis, int slot = 0) {
  dsl::OffsetSet s;
  for (int dn = -1; dn <= 0; ++dn) {
    for (int dt = 0; dt <= 1; ++dt) {
      for (int du = 0; du <= 1; ++du) {
        int o[3] = {0, 0, 0};
        o[axis] = dn;
        o[(axis + 1) % 3] = dt;
        o[(axis + 2) % 3] = du;
        s.add(dsl::Tap{slot, o[0], o[1], o[2]});
      }
    }
  }
  return s;
}

/// Coarse-side reflux footprint: the interface cell and its covered
/// face neighbor (the flux pair whose coarse flux is replaced).
constexpr dsl::OffsetSet reflux_coarse_shape(int slot = 0) {
  return star_shape(1, slot);
}

constexpr bool same_footprint(const dsl::OffsetSet& a,
                              const dsl::OffsetSet& b) {
  return a.same_taps(b);
}

namespace detail {
inline std::string extents_str(const dsl::Extents& e) {
  std::string s = "[";
  for (int d = 0; d < 3; ++d) {
    if (d) s += ", ";
    s += std::to_string(e.lo[d]) + ".." + std::to_string(e.hi[d]);
  }
  return s + "]";
}
}  // namespace detail

/// True when every tap of `ext` stays within one brick layer of ghost
/// storage around the active region — the constexpr form, usable as
/// `static_assert(footprint_fits(expr.offsets().extents(), 4, 4, 4))`.
constexpr bool footprint_fits(const dsl::Extents& ext, index_t bx, index_t by,
                              index_t bz) {
  const index_t depth[3] = {bx, by, bz};
  for (int d = 0; d < 3; ++d) {
    if (-ext.lo[d] > depth[d] || ext.hi[d] > depth[d]) return false;
  }
  return true;
}

/// Setup check: throws gmg::Error when a stencil's reach exceeds the
/// one-brick ghost depth of `shape` on any axis.
inline void require_footprint_fits(const std::string& what,
                                   const dsl::Extents& ext,
                                   const BrickShape& shape) {
  GMG_REQUIRE(footprint_fits(ext, shape.bx, shape.by, shape.bz),
              what + ": stencil reach " + detail::extents_str(ext) +
                  " exceeds the ghost depth of brick " +
                  std::to_string(shape.bx) + "x" + std::to_string(shape.by) +
                  "x" + std::to_string(shape.bz) +
                  " (ghost storage is one brick layer deep)");
}

/// Setup check for communication-avoiding smoothing: each sweep
/// consumes `layers_per_sweep` ghost layers of margin (the operator
/// radius for Jacobi/Chebyshev, 2 for a red+black GS iteration); the
/// margin refills to the brick dimension per exchange, so at least one
/// sweep must fit or the smoother can never make progress.
inline void require_ghost_capacity(const std::string& what,
                                   const BrickShape& shape,
                                   index_t layers_per_sweep) {
  const index_t depth = std::min(shape.bx, std::min(shape.by, shape.bz));
  GMG_REQUIRE(layers_per_sweep <= depth,
              what + ": consumes " + std::to_string(layers_per_sweep) +
                  " ghost layers per sweep but the brick shape provides only " +
                  std::to_string(depth) +
                  " (deep-ghost margin refills one brick layer per exchange)");
}

}  // namespace gmg::check
