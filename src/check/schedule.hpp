// Setup-time schedule verification (DESIGN.md §18, layer 3 of the
// verification ladder). A Schedule is the full planned sequence of
// kernel launches, ghost exchanges (blocking and split-phase), masked
// sweeps, reductions and component retirements one solver
// configuration will execute — recorded by a dry-run walker
// (gmg/schedule_audit.hpp, batch/batched_audit.hpp,
// amr/composite_audit.hpp) that replicates the solver's margin
// algebra without running a single sweep. The ScheduleVerifier then
// statically proves, per level and per field:
//
//   * ghost-validity: every read reaching `g` layers past the
//     interior is preceded by a completed exchange (or producing
//     write) that filled at least `g` layers — the CA margin
//     invariant, proven over the whole plan instead of observed at
//     runtime by GMG_CHECK;
//   * split-phase safety: while an exchange is in flight, no kernel
//     reads or writes the in-flight fields' remote-side ghost layers,
//     and no second exchange begins on the same engine;
//   * effect conformance: each recorded access matches the kernel's
//     constexpr EffectSummary — an access with no declared effect for
//     its role is an undeclared read/write box;
//   * fused chunk disjointness: a fused stage's per-chunk write boxes
//     are pairwise disjoint (congruent aligned tiles take an O(n)
//     hash path; small irregular sets fall back to O(n^2));
//   * masked plans: the scheduled brick set never intersects the
//     covered set;
//   * reduction order: within a reduction group components are
//     non-decreasing, and a retired component never appears in a
//     later group — so batch retirement cannot reorder reductions.
//
// Failures reject the solver at setup with a diagnostic naming the
// offending kernel pair and step indices. Gated by GMG_VERIFY_SCHEDULE
// (default on; "0" disables).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "check/effects.hpp"
#include "common/types.hpp"
#include "mesh/box.hpp"

namespace gmg::check {

/// Process-wide gate, mirroring check::enabled() for GMG_CHECK.
/// Reads GMG_VERIFY_SCHEDULE once; default on.
bool verify_schedule_enabled();
void set_verify_schedule_enabled(bool on);

/// Count of schedules proven clean since process start (serve-tier
/// stats surface this: every hierarchy the cache builds was verified).
std::uint64_t schedules_verified();

/// One recorded field access of a kernel step. `box` is in the level's
/// local cell coordinates (the interior is [0, cells)); `reach` is the
/// stencil radius beyond `box` for reads and must be 0 for writes.
/// `role` names the formal slot in the kernel's EffectSummary this
/// access binds ("x", "b", "coarse", ...).
struct StepAccess {
  std::string field;
  int level = 0;
  Box box;
  int reach = 0;
  bool write = false;
  std::string role;
};

enum class StepKind : std::uint8_t {
  kKernel,
  kExchange,        // blocking: fields valid to `exchange_depth` after
  kExchangeBegin,   // split-phase start: self-copies done, remotes in flight
  kExchangeFinish,  // split-phase completion
  kReduction,       // one collective contribution (component, group)
  kRetire,          // batch component retirement
  kPlanSwitch,      // kernel-plan rebind (set_coefficient, fusion flip)
};

struct ScheduleStep {
  StepKind kind = StepKind::kKernel;
  std::string kernel;  // kernel name / exchange label / reduction op
  int level = 0;
  std::vector<StepAccess> accesses;

  // kExchange / kExchangeBegin: which fields, filled to what depth.
  std::vector<std::string> exchange_fields;
  index_t exchange_depth = 0;

  // Masked kernel steps (AMR level masks): brick storage ids this
  // launch schedules, and the ids the mask declares covered.
  std::vector<std::int32_t> scheduled_bricks;
  std::vector<std::int32_t> covered_bricks;

  // Fused stages: per-chunk write boxes that must be pairwise
  // disjoint (the parallel chunks of one fused launch). When
  // `chunk_pitch` is set to the brick dims, each chunk is expected to
  // stay inside one cell of that tiling — the O(n) disjointness fast
  // path; irregular sets fall back to O(n^2).
  std::vector<Box> chunk_writes;
  Vec3 chunk_pitch{0, 0, 0};

  // kReduction / kRetire: batch component and reduction group id.
  // `retirement_masked` marks reductions belonging to a sequence that
  // skips retired components (residual_norms); only those are subject
  // to the never-resurrect rule. Unmasked sequences (bottom CG, which
  // keeps every component riding to preserve the collective count)
  // are order-checked but exempt.
  int component = -1;
  int reduction_group = -1;
  bool retirement_masked = false;

  // Overlap split-phase interior pass: runs while the exchange is in
  // flight over a remote-clipped safe box. Verified against in-flight
  // rules but does NOT update ghost validity — the post-finish
  // full-active step carries the combined effect.
  bool partial = false;

  // The kernel's static effect summary (empty => no conformance check,
  // used only for exchange/reduction pseudo-steps).
  EffectSummary summary;
};

/// Static per-level geometry the verifier needs: the interior box in
/// local coordinates, the ghost capacity in layers, and which of the
/// six faces borders a remote rank (in-flight ghost rules apply there;
/// self-periodic faces complete synchronously at begin()).
struct LevelInfo {
  int level = 0;
  Box interior;
  index_t ghost_depth = 0;
  bool remote_lo[3] = {false, false, false};
  bool remote_hi[3] = {false, false, false};
};

/// Initial ghost validity of one field (e.g. init_zero'd fields start
/// fully valid; freshly-set RHS interiors start at 0).
struct InitialValidity {
  std::string field;
  int level = 0;
  index_t valid_layers = 0;
};

struct Schedule {
  std::string name;
  std::vector<LevelInfo> levels;
  std::vector<InitialValidity> initial;
  std::vector<ScheduleStep> steps;
  int num_components = 1;  // batch width K (reduction components)
};

/// Builder used by the dry-run walkers. Thin: it owns the Schedule and
/// hands out step construction helpers so walker code reads like the
/// solver schedule it mirrors.
class ScheduleRecorder {
 public:
  explicit ScheduleRecorder(std::string name) { sched_.name = std::move(name); }

  Schedule& schedule() { return sched_; }
  const Schedule& schedule() const { return sched_; }
  Schedule take() { return std::move(sched_); }

  void add_level(const LevelInfo& info) { sched_.levels.push_back(info); }
  void set_initial(const std::string& field, int level, index_t layers) {
    sched_.initial.push_back(InitialValidity{field, level, layers});
  }
  void set_num_components(int k) { sched_.num_components = k; }

  ScheduleStep& push(ScheduleStep step) {
    ScheduleStep& out = emplace();
    out = std::move(step);
    return out;
  }

  ScheduleStep& emplace() {
    if (sched_.steps.capacity() == sched_.steps.size())
      sched_.steps.reserve(
          std::max<std::size_t>(256, sched_.steps.size() * 2));
    return sched_.steps.emplace_back();
  }

  /// Kernel step with summary; append accesses via read()/write().
  ScheduleStep& kernel(const char* name, int level,
                       const EffectSummary& summary) {
    // Built in place — a schedule holds thousands of kernel steps and
    // this runs in every solver constructor (see the overhead budget
    // in ci/tier1.sh): no intermediate ScheduleStep to move, and one
    // up-front allocation for the handful of accesses instead of the
    // vector's growth ladder.
    ScheduleStep& out = emplace();
    out.kind = StepKind::kKernel;
    out.kernel = name;
    out.level = level;
    out.summary = summary;
    out.accesses.reserve(6);
    return out;
  }

  void exchange(int level, std::vector<std::string> fields, index_t depth) {
    ScheduleStep s;
    s.kind = StepKind::kExchange;
    s.kernel = "exchange";
    s.level = level;
    s.exchange_fields = std::move(fields);
    s.exchange_depth = depth;
    push(std::move(s));
  }
  void exchange_begin(int level, std::vector<std::string> fields,
                      index_t depth) {
    ScheduleStep s;
    s.kind = StepKind::kExchangeBegin;
    s.kernel = "exchange.begin";
    s.level = level;
    s.exchange_fields = std::move(fields);
    s.exchange_depth = depth;
    push(std::move(s));
  }
  void exchange_finish(int level) {
    ScheduleStep s;
    s.kind = StepKind::kExchangeFinish;
    s.kernel = "exchange.finish";
    s.level = level;
    push(std::move(s));
  }

  int next_reduction_group() { return reduction_groups_++; }
  void reduction(const char* op, int level, int component, int group,
                 bool retirement_masked = false) {
    ScheduleStep s;
    s.kind = StepKind::kReduction;
    s.kernel = op;
    s.level = level;
    s.component = component;
    s.reduction_group = group;
    s.retirement_masked = retirement_masked;
    push(std::move(s));
  }
  void retire(int component) {
    ScheduleStep s;
    s.kind = StepKind::kRetire;
    s.kernel = "retire";
    s.component = component;
    push(std::move(s));
  }
  void plan_switch(const char* what) {
    ScheduleStep s;
    s.kind = StepKind::kPlanSwitch;
    s.kernel = what;
    push(std::move(s));
  }

 private:
  Schedule sched_;
  int reduction_groups_ = 0;
};

/// Convenience access builders.
inline StepAccess read_access(const std::string& field, int level,
                              const Box& box, int reach,
                              const std::string& role) {
  return StepAccess{field, level, box, reach, false, role};
}
inline StepAccess write_access(const std::string& field, int level,
                               const Box& box, const std::string& role) {
  return StepAccess{field, level, box, 0, true, role};
}

/// The static prover. check() returns every diagnostic (empty ==
/// schedule is clean); verify() throws gmg::Error on the first
/// finding, with the schedule name, step index and offending kernel
/// pair in the message. Thread-safe (no shared state).
class ScheduleVerifier {
 public:
  std::vector<std::string> check(const Schedule& sched) const;
  void verify(const Schedule& sched) const;
};

/// Record of a completed verification, for the setup-overhead bench
/// and the serve stats.
void note_schedule_verified();

}  // namespace gmg::check
