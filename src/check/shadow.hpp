// Debug-build brick access-hazard detector (layer 2 of src/check).
//
// The kernel runtime's chunk plans are deterministic (DESIGN.md §11):
// the same bricks land in the same chunks on every run, so TSan almost
// never sees the conflicting schedules that a wrong plan or a
// mis-split overlap phase *could* produce. This tracker checks the
// region-disjointness invariants directly instead of waiting for an
// unlucky interleaving:
//
//   - every kernel launch opens a KernelScope declaring, per field,
//     the cell box it writes and the (tap-grown) boxes it reads;
//   - BrickExchange begin()/finish() mark the receive ghost-brick
//     ranges of each in-flight field (sends are buffered at post time,
//     so only receives matter);
//   - hazards are recorded when a scope reads or writes an in-flight
//     ghost brick (split-phase ordering bug), when two concurrently
//     open scopes write intersecting cell boxes of one field, when a
//     second exchange begins while one is in flight for the same
//     field, or when a cached iteration plan is structurally corrupt
//     (a kernel would write bricks outside its declared footprint).
//
// Enabled via GMG_CHECK=1 (or the GMG_CHECK CMake option, which flips
// the default); disabled, every hook is a single early-out call per
// kernel *launch* — nothing per brick or cell — so release solve time
// is unaffected. Hazards are recorded, not thrown (kernels run on
// engine workers where an exception would terminate the process);
// tests and CI drain them via hazards()/require_clean().
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "brick/brick_grid.hpp"
#include "brick/bricked_array.hpp"
#include "mesh/box.hpp"

namespace gmg::check {

/// Is the detector on? First call resolves GMG_CHECK from the
/// environment (GMG_CHECK_DEFAULT_ON builds default to on); cached in
/// an atomic afterwards.
bool enabled();
/// Programmatic override (tests); wins over the environment.
void set_enabled(bool on);

enum class HazardKind {
  kReadInflightGhost,   // read of a ghost brick whose exchange has not finished
  kWriteInflightGhost,  // write into an in-flight receive ghost brick
  kWriteWriteOverlap,   // two open scopes write intersecting boxes of a field
  kOverlappingExchange, // begin() while the field is already in flight
  kCorruptPlan,         // iteration plan covers bricks outside its declaration
};

const char* hazard_kind_name(HazardKind kind);

struct HazardRecord {
  HazardKind kind;
  std::string detail;    // kernel/exchange name + field + box/brick info
  std::uint64_t epoch;   // per-field write epoch when the hazard fired
};

/// One declared field access of a kernel launch. `box` is in cell
/// coordinates of the field's grid; reads pass their box already grown
/// by the stencil reach.
struct Access {
  const void* key = nullptr;         // field identity: storage base pointer
  const BrickGrid* grid = nullptr;
  Vec3 brick_dims{0, 0, 0};
  Box box;
};

inline Access access(const BrickedArray& f, const Box& box) {
  return Access{f.data(), &f.grid(), f.shape().dims(), box};
}

/// RAII declaration of one kernel launch's reads and writes. All
/// hazard checks run in the constructor; the destructor closes the
/// scope and bumps the write epoch of every written field. No-op when
/// the detector is disabled.
class KernelScope {
 public:
  KernelScope(const char* name, std::vector<Access> writes,
              std::vector<Access> reads);
  ~KernelScope();
  KernelScope(KernelScope&& other) noexcept : token_(other.token_) {
    other.token_ = 0;
  }
  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;
  KernelScope& operator=(KernelScope&&) = delete;

 private:
  std::uint64_t token_ = 0;  // 0: detector was off at construction
};

/// Convenience wrapper for kernel call sites: a live scope only when
/// the detector is on. Costs one atomic load per launch when off.
inline std::optional<KernelScope> scope_if_enabled(const char* name,
                                                   std::vector<Access> writes,
                                                   std::vector<Access> reads) {
  std::optional<KernelScope> s;
  if (enabled()) s.emplace(name, std::move(writes), std::move(reads));
  return s;
}

/// Exchange hooks (called by comm::BrickExchange). `ghost_ranges` are
/// the storage ranges the in-flight receives will scatter into.
void on_exchange_begin(const void* key, const BrickGrid* grid,
                       const std::vector<BrickRange>& ghost_ranges);
void on_exchange_finish(const void* key);

/// Structural validation of a cached iteration plan, run once per
/// launch by for_each_plan_brick when the detector is on: unique
/// non-negative ids, a genuinely-full full prefix, in-range clip
/// bounds. A violation means chunks would write bricks outside the
/// declared active region.
void validate_plan(const char* name, const BrickPlanItem* items,
                   std::size_t count, std::int64_t num_full, Vec3 brick_dims);

// Hazard sink. Thread-safe; reset() also drops all shadow state
// (in-flight marks, open scopes, epochs).
std::size_t hazard_count();
std::vector<HazardRecord> hazards();
void clear_hazards();
void reset();
/// Throws gmg::Error listing every recorded hazard unless clean.
void require_clean(const std::string& what);

}  // namespace gmg::check
