#include "check/schedule.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "common/error.hpp"

namespace gmg::check {

namespace {

std::atomic<bool> g_verify_enabled{[] {
  const char* env = std::getenv("GMG_VERIFY_SCHEDULE");
  return env == nullptr || std::string(env) != "0";
}()};

std::atomic<std::uint64_t> g_verified_count{0};

}  // namespace

bool verify_schedule_enabled() {
  return g_verify_enabled.load(std::memory_order_relaxed);
}
void set_verify_schedule_enabled(bool on) {
  g_verify_enabled.store(on, std::memory_order_relaxed);
}
std::uint64_t schedules_verified() {
  return g_verified_count.load(std::memory_order_relaxed);
}
void note_schedule_verified() {
  g_verified_count.fetch_add(1, std::memory_order_relaxed);
}

namespace {

// Per-(level, field) ghost-validity state: how many ghost layers hold
// values coherent with the interior, and which step produced them.
// Provenance is kept as step indices and rendered lazily — producer
// strings are only built inside a failure branch, so the clean-path
// cost per write/exchange is a couple of integer stores (the verifier
// runs inside every solver constructor; see the overhead budget in
// ci/tier1.sh).
struct FieldState {
  enum class From : std::uint8_t { kInitial, kWrite, kExchange, kFinish };
  index_t valid = 0;
  From from = From::kInitial;
  std::size_t step = 0;         // producing step (kWrite/kExchange: itself;
  std::size_t finish_step = 0;  // kFinish: begin step + finishing step)
};

// One in-flight split-phase exchange per level (BrickExchange enforces
// exactly this at runtime; the verifier proves the plan never relies
// on more).
struct InFlight {
  bool active = false;
  std::size_t begin_step = 0;
  std::vector<std::string> fields;
  index_t depth = 0;
  bool covers(const std::string& f) const {
    return std::find(fields.begin(), fields.end(), f) != fields.end();
  }
};

struct FieldSlot {
  std::string field;
  FieldState st;
};

struct LevelSlots {
  int level = 0;
  std::vector<FieldSlot> fields;
};

struct SideNeed {
  int lo[3] = {0, 0, 0};
  int hi[3] = {0, 0, 0};
  int max() const {
    int m = lo[0];
    for (int d = 0; d < 3; ++d) m = std::max({m, lo[d], hi[d]});
    return m;
  }
};

// Ghost growth of `box` beyond `interior`, per face, plus the read
// reach: how many ghost layers each side of this access touches.
SideNeed side_need(const Box& box, const Box& interior, int reach) {
  SideNeed n;
  for (int d = 0; d < 3; ++d) {
    n.lo[d] = static_cast<int>(interior.lo[d] - box.lo[d]) + reach;
    n.hi[d] = static_cast<int>(box.hi[d] - interior.hi[d]) + reach;
  }
  return n;
}

std::string step_name(const Schedule& s, std::size_t i) {
  std::ostringstream os;
  os << "'" << s.steps[i].kernel << "' (step " << i << ", level "
     << s.steps[i].level << ")";
  return os.str();
}

class Checker {
 public:
  explicit Checker(const Schedule& s) : s_(s) {
    for (const LevelInfo& l : s.levels) levels_[l.level] = &l;
    for (const InitialValidity& iv : s.initial) {
      state(iv.level, iv.field) = FieldState{iv.valid_layers};
    }
  }

  std::vector<std::string> run() {
    for (i_ = 0; i_ < s_.steps.size(); ++i_) {
      const ScheduleStep& st = s_.steps[i_];
      switch (st.kind) {
        case StepKind::kExchange:
          check_exchange(st, /*split=*/false);
          break;
        case StepKind::kExchangeBegin:
          check_exchange(st, /*split=*/true);
          break;
        case StepKind::kExchangeFinish:
          check_finish(st);
          break;
        case StepKind::kKernel:
          check_kernel(st);
          break;
        case StepKind::kReduction:
          check_reduction(st);
          break;
        case StepKind::kRetire:
          check_retire(st);
          break;
        case StepKind::kPlanSwitch:
          break;
      }
    }
    for (const auto& [lvl, fl] : inflight_) {
      if (fl.active) {
        std::ostringstream os;
        os << "split-phase exchange begun at " << step_name(s_, fl.begin_step)
           << " is never finished";
        report(os.str());
      }
    }
    return std::move(diags_);
  }

 private:
  std::string producer_name(const FieldState& fs) const {
    switch (fs.from) {
      case FieldState::From::kInitial:
        return "initial state";
      case FieldState::From::kWrite:
        return "write by " + step_name(s_, fs.step);
      case FieldState::From::kExchange:
        return step_name(s_, fs.step);
      case FieldState::From::kFinish:
        return step_name(s_, fs.step) + " (completed at step " +
               std::to_string(fs.finish_step) + ")";
    }
    return "initial state";
  }

  void report(const std::string& msg) {
    std::ostringstream os;
    os << "[schedule '" << s_.name << "'] " << msg;
    diags_.push_back(os.str());
  }

  const LevelInfo* level_info(int l) {
    auto it = levels_.find(l);
    if (it == levels_.end()) {
      std::ostringstream os;
      os << step_name(s_, i_) << " references level " << l
         << " with no LevelInfo";
      report(os.str());
      return nullptr;
    }
    return it->second;
  }

  // A schedule touches a handful of fields on a handful of levels, so
  // per-(level, field) state lives in flat arrays scanned linearly —
  // no hashing and no key-string copies on the per-access hot path.
  FieldState& state(int level, const std::string& field) {
    LevelSlots& ls = level_slots(level);
    for (FieldSlot& s : ls.fields) {
      if (s.field == field) return s.st;
    }
    ls.fields.push_back(FieldSlot{field, FieldState{}});
    return ls.fields.back().st;
  }

  LevelSlots& level_slots(int level) {
    for (LevelSlots& ls : state_) {
      if (ls.level == level) return ls;
    }
    state_.push_back(LevelSlots{level, {}});
    return state_.back();
  }

  InFlight& inflight(int level) {
    for (auto& [lvl, fl] : inflight_) {
      if (lvl == level) return fl;
    }
    inflight_.push_back({level, InFlight{}});
    return inflight_.back().second;
  }

  void check_exchange(const ScheduleStep& st, bool split) {
    InFlight& fl = inflight(st.level);
    if (fl.active) {
      std::ostringstream os;
      os << step_name(s_, i_) << " overlaps the exchange begun at "
         << step_name(s_, fl.begin_step)
         << ": one exchange may be in flight per level engine";
      report(os.str());
      // Model the new exchange anyway so later diagnostics stay sane.
    }
    if (split) {
      fl.active = true;
      fl.begin_step = i_;
      fl.fields = st.exchange_fields;
      fl.depth = st.exchange_depth;
    } else {
      for (const std::string& f : st.exchange_fields) {
        FieldState& fs = state(st.level, f);
        fs.valid = st.exchange_depth;
        fs.from = FieldState::From::kExchange;
        fs.step = i_;
      }
    }
  }

  void check_finish(const ScheduleStep& st) {
    InFlight& fl = inflight(st.level);
    if (!fl.active) {
      report(step_name(s_, i_) + " finishes an exchange that was never begun");
      return;
    }
    for (const std::string& f : fl.fields) {
      FieldState& fs = state(st.level, f);
      fs.valid = fl.depth;
      fs.from = FieldState::From::kFinish;
      fs.step = fl.begin_step;
      fs.finish_step = i_;
    }
    fl.active = false;
  }

  void check_kernel(const ScheduleStep& st) {
    const LevelInfo* li = level_info(st.level);
    check_effect_conformance(st);
    check_masked(st);
    check_chunks(st, li);
    if (li == nullptr) return;
    // Reads see the pre-launch ghost state: check every read before
    // applying any of the step's own writes (a sweep that reads and
    // writes the same field must not have its read validated against
    // the validity its own write establishes).
    for (const StepAccess& a : st.accesses) {
      const LevelInfo* ali = a.level == st.level ? li : level_info(a.level);
      if (ali == nullptr || a.box.empty() || a.write) continue;
      check_read(a, *ali);
    }
    for (const StepAccess& a : st.accesses) {
      const LevelInfo* ali = a.level == st.level ? li : level_info(a.level);
      if (ali == nullptr || a.box.empty() || !a.write) continue;
      check_write(st, a, *ali);
    }
  }

  void check_read(const StepAccess& a, const LevelInfo& li) {
    const SideNeed need = side_need(a.box, li.interior, a.reach);
    // Interior-only reads touch no ghost layer: nothing to prove, and
    // nothing an in-flight exchange could conflict with (its receive
    // targets are ghost layers). Skipping the state lookups here keeps
    // the common case — reach-0 interior reads — at a few subtractions.
    if (need.max() <= 0) return;
    const InFlight& fl = inflight(a.level);
    const bool in_flight = fl.active && fl.covers(a.field);
    const FieldState& fs = state(a.level, a.field);
    for (int d = 0; d < 3; ++d) {
      for (int side = 0; side < 2; ++side) {
        const int n = side == 0 ? need.lo[d] : need.hi[d];
        if (n <= 0) continue;
        const bool remote = side == 0 ? li.remote_lo[d] : li.remote_hi[d];
        if (in_flight) {
          if (remote) {
            std::ostringstream os;
            os << step_name(s_, i_) << " reads '" << a.field << "' " << n
               << " ghost layer(s) deep on a remote face while that field's"
               << " exchange (begun at " << step_name(s_, fl.begin_step)
               << ") is still in flight";
            report(os.str());
            return;
          }
          if (n > static_cast<int>(fl.depth)) {
            std::ostringstream os;
            os << step_name(s_, i_) << " reads '" << a.field << "' " << n
               << " ghost layer(s) deep but the in-flight exchange fills only "
               << fl.depth;
            report(os.str());
            return;
          }
          continue;
        }
        if (n > static_cast<int>(fs.valid)) {
          std::ostringstream os;
          os << step_name(s_, i_) << " reads '" << a.field << "' (level "
             << a.level << ") " << n << " ghost layer(s) deep but only "
             << fs.valid << " are valid; last producer: "
             << producer_name(fs)
             << " — a matching completed exchange must precede this read";
          report(os.str());
          return;
        }
      }
    }
  }

  void check_write(const ScheduleStep& st, const StepAccess& a,
                   const LevelInfo& li) {
    const SideNeed g = side_need(a.box, li.interior, /*reach=*/0);
    const InFlight& fl = inflight(a.level);
    if (fl.active && fl.covers(a.field)) {
      if (!st.partial) {
        std::ostringstream os;
        os << step_name(s_, i_) << " writes '" << a.field
           << "' while its exchange (begun at " << step_name(s_, fl.begin_step)
           << ") is in flight; only the remote-clipped interior pass may run "
              "here";
        report(os.str());
        return;
      }
      for (int d = 0; d < 3; ++d) {
        const bool bad_lo = li.remote_lo[d] && g.lo[d] > 0;
        const bool bad_hi = li.remote_hi[d] && g.hi[d] > 0;
        if (bad_lo || bad_hi) {
          std::ostringstream os;
          os << step_name(s_, i_) << " writes '" << a.field
             << "' into remote-face ghost layers that are in-flight receive "
                "targets of the exchange begun at "
             << step_name(s_, fl.begin_step);
          report(os.str());
          return;
        }
      }
    }
    if (st.partial) return;  // combined effect lands with the full pass
    index_t valid = li.ghost_depth;
    for (int d = 0; d < 3; ++d) {
      valid = std::min(valid, static_cast<index_t>(std::max(0, g.lo[d])));
      valid = std::min(valid, static_cast<index_t>(std::max(0, g.hi[d])));
    }
    FieldState& fs = state(a.level, a.field);
    fs.valid = valid;
    fs.from = FieldState::From::kWrite;
    fs.step = i_;
  }

  void check_effect_conformance(const ScheduleStep& st) {
    if (st.summary.empty()) return;
    for (const StepAccess& a : st.accesses) {
      const char* role = a.role.c_str();
      if (a.write) {
        if (!st.summary.writes_role(role)) {
          std::ostringstream os;
          os << step_name(s_, i_) << " records a write of '" << a.field
             << "' (role '" << a.role << "') but EffectSummary '"
             << st.summary.kernel
             << "' declares no write effect for that role — undeclared "
                "write box";
          report(os.str());
        }
      } else {
        const int declared = st.summary.read_reach(role);
        if (declared < 0) {
          std::ostringstream os;
          os << step_name(s_, i_) << " records a read of '" << a.field
             << "' (role '" << a.role << "') but EffectSummary '"
             << st.summary.kernel << "' declares no read effect for that role";
          report(os.str());
        } else if (a.reach > declared) {
          std::ostringstream os;
          os << step_name(s_, i_) << " records a read reach of " << a.reach
             << " for role '" << a.role << "' but EffectSummary '"
             << st.summary.kernel << "' declares only " << declared;
          report(os.str());
        }
      }
    }
  }

  void check_masked(const ScheduleStep& st) {
    if (st.scheduled_bricks.empty() || st.covered_bricks.empty()) return;
    std::unordered_set<std::int32_t> covered(st.covered_bricks.begin(),
                                             st.covered_bricks.end());
    for (std::int32_t id : st.scheduled_bricks) {
      if (covered.count(id) != 0) {
        std::ostringstream os;
        os << step_name(s_, i_) << " schedules brick " << id
           << " which the level mask declares covered by refinement — a "
              "masked plan must never sweep covered bricks";
        report(os.str());
        return;
      }
    }
  }

  void check_chunks(const ScheduleStep& st, const LevelInfo* li) {
    const std::vector<Box>& ch = st.chunk_writes;
    if (ch.empty()) return;
    // Every chunk must land inside a declared write box of this step.
    if (li != nullptr) {
      for (std::size_t c = 0; c < ch.size(); ++c) {
        bool inside = false;
        for (const StepAccess& a : st.accesses) {
          if (a.write && a.level == st.level && a.box.covers(ch[c])) {
            inside = true;
            break;
          }
        }
        if (!inside) {
          std::ostringstream os;
          os << step_name(s_, i_) << " fused chunk " << c
             << " writes outside every declared write box of the stage — "
                "undeclared write box";
          report(os.str());
          break;
        }
      }
    }
    // Pairwise disjointness. Fast path: when the step declares a chunk
    // pitch (the brick dims), every chunk of a well-formed fused launch
    // stays inside one cell of that tiling — including the clipped
    // ghost-brick slabs a CA active region produces — so the set is
    // disjoint iff the containing cells are unique: O(n) through a
    // hash set. Any chunk straddling a tile cell drops the whole set
    // to the O(n^2) fallback.
    const Vec3 pitch = st.chunk_pitch;
    if (pitch.x > 0 && pitch.y > 0 && pitch.z > 0) {
      auto floor_div = [](index_t a, index_t p) {
        return a >= 0 ? a / p : -((-a + p - 1) / p);
      };
      // Bias keeps each packed 21-bit field non-negative for cells a
      // CA active region pushes below the interior origin.
      constexpr std::int64_t kBias = std::int64_t{1} << 20;
      auto tile_key = [&](const Box& b, Vec3& cell) -> std::int64_t {
        cell = Vec3{floor_div(b.lo.x, pitch.x), floor_div(b.lo.y, pitch.y),
                    floor_div(b.lo.z, pitch.z)};
        if (b.lo.x < cell.x * pitch.x || b.lo.y < cell.y * pitch.y ||
            b.lo.z < cell.z * pitch.z || b.hi.x > (cell.x + 1) * pitch.x ||
            b.hi.y > (cell.y + 1) * pitch.y ||
            b.hi.z > (cell.z + 1) * pitch.z) {
          return -1;  // straddles a tile cell: not a tiled set
        }
        return ((cell.z + kBias) << 42) | ((cell.y + kBias) << 21) |
               (cell.x + kBias);
      };
      auto report_repeat = [&](std::size_t c, const Vec3& cell) {
        std::ostringstream os;
        os << step_name(s_, i_) << " fused chunk " << c
           << " repeats brick tile (" << cell.x << "," << cell.y << ","
           << cell.z << "): chunk write sets are not pairwise disjoint";
        report(os.str());
      };
      // The audit walkers emit chunks in brick-iteration order
      // (for_each: z outer, x inner — exactly this key's collation),
      // so a well-formed set is strictly increasing and one
      // allocation-free scan proves uniqueness. Only sets that break
      // the order pay for a sort; only non-tiled sets fall through to
      // the O(n^2) overlap check.
      bool tiled = true;
      bool monotone = true;
      std::int64_t prev = -1;
      Vec3 cell{0, 0, 0};
      for (std::size_t c = 0; c < ch.size(); ++c) {
        const std::int64_t h = tile_key(ch[c], cell);
        if (h < 0) {
          tiled = false;
          break;
        }
        if (h == prev) {
          report_repeat(c, cell);
          return;
        }
        if (h < prev) {
          monotone = false;
          break;
        }
        prev = h;
      }
      if (tiled && monotone) return;
      if (tiled) {
        cells_.clear();
        cells_.reserve(ch.size());
        for (std::size_t c = 0; c < ch.size(); ++c) {
          cells_.push_back({tile_key(ch[c], cell),
                            static_cast<std::int64_t>(c)});
        }
        std::sort(cells_.begin(), cells_.end());
        for (std::size_t c = 1; c < cells_.size(); ++c) {
          if (cells_[c].first != cells_[c - 1].first) continue;
          const std::size_t ci = static_cast<std::size_t>(cells_[c].second);
          tile_key(ch[ci], cell);
          report_repeat(ci, cell);
          return;
        }
        return;
      }
    }
    if (ch.size() > 4096) {
      std::ostringstream os;
      os << step_name(s_, i_) << " has " << ch.size()
         << " irregular fused chunks — too many to prove pairwise disjoint";
      report(os.str());
      return;
    }
    for (std::size_t a = 0; a < ch.size(); ++a) {
      for (std::size_t b = a + 1; b < ch.size(); ++b) {
        if (!intersect(ch[a], ch[b]).empty()) {
          std::ostringstream os;
          os << step_name(s_, i_) << " fused chunks " << a << " and " << b
             << " overlap: chunk write sets are not pairwise disjoint";
          report(os.str());
          return;
        }
      }
    }
  }

  void check_reduction(const ScheduleStep& st) {
    if (st.component < 0 || st.component >= s_.num_components) {
      std::ostringstream os;
      os << step_name(s_, i_) << " reduces component " << st.component
         << " outside the batch width " << s_.num_components;
      report(os.str());
      return;
    }
    if (st.retirement_masked && retired_.count(st.component) != 0) {
      std::ostringstream os;
      os << step_name(s_, i_) << " reduces component " << st.component
         << " after its retirement — retirement must not resurrect a "
            "component's collectives";
      report(os.str());
      return;
    }
    auto it = group_last_.find(st.reduction_group);
    if (it != group_last_.end() && st.component < it->second.first) {
      std::ostringstream os;
      os << step_name(s_, i_) << " reduces component " << st.component
         << " after " << step_name(s_, it->second.second)
         << " reduced component " << it->second.first
         << " in the same group — retirement would reorder the collective "
            "sequence across ranks";
      report(os.str());
      return;
    }
    group_last_[st.reduction_group] = {st.component, i_};
  }

  void check_retire(const ScheduleStep& st) {
    if (!retired_.insert(st.component).second) {
      std::ostringstream os;
      os << step_name(s_, i_) << " retires component " << st.component
         << " twice";
      report(os.str());
    }
  }

  const Schedule& s_;
  std::size_t i_ = 0;
  std::map<int, const LevelInfo*> levels_;
  std::vector<LevelSlots> state_;
  std::vector<std::pair<std::int64_t, std::int64_t>> cells_;
  std::vector<std::pair<int, InFlight>> inflight_;
  std::map<int, std::pair<int, std::size_t>> group_last_;  // group -> (component, step)
  std::unordered_set<int> retired_;
  std::vector<std::string> diags_;
};

}  // namespace

std::vector<std::string> ScheduleVerifier::check(const Schedule& sched) const {
  return Checker(sched).run();
}

void ScheduleVerifier::verify(const Schedule& sched) const {
  std::vector<std::string> diags = check(sched);
  if (diags.empty()) {
    note_schedule_verified();
    return;
  }
  std::ostringstream os;
  os << "schedule verification failed: " << diags.front();
  if (diags.size() > 1)
    os << " (+" << diags.size() - 1 << " further finding(s))";
  throw Error(os.str());
}

}  // namespace gmg::check
