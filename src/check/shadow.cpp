#include "check/shadow.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"

namespace gmg::check {

namespace {

std::atomic<int> g_mode{-1};  // -1 unresolved, 0 off, 1 on

int resolve_mode() {
  const char* env = std::getenv("GMG_CHECK");
  if (env == nullptr || env[0] == '\0') {
#ifdef GMG_CHECK_DEFAULT_ON
    return 1;
#else
    return 0;
#endif
  }
  return (env[0] == '0' && env[1] == '\0') ? 0 : 1;
}

struct OpenScope {
  std::uint64_t token = 0;
  const char* name = nullptr;
  std::thread::id tid;
  std::vector<Access> writes;
};

struct FieldState {
  const BrickGrid* grid = nullptr;       // set by on_exchange_begin
  std::vector<BrickRange> inflight;      // receive ghost ranges
  bool in_flight = false;
  std::uint64_t epoch = 0;
};

struct Tracker {
  std::mutex mu;
  std::unordered_map<const void*, FieldState> fields;
  std::vector<OpenScope> open;
  std::vector<HazardRecord> hazards;
  std::uint64_t next_token = 1;
};

Tracker& tracker() {
  // Leaked deliberately: the at-exit hazard report below runs during
  // shutdown, after function-local statics would have been destroyed.
  static Tracker* t = new Tracker;
  return *t;
}

/// With the detector on, a process that recorded hazards but never
/// called require_clean() still reports them — to stderr, at exit, so
/// existing tests and examples run under GMG_CHECK=1 surface ordering
/// bugs without being rewritten.
void register_exit_report() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::atexit([] {
      Tracker& t = tracker();
      std::lock_guard<std::mutex> lock(t.mu);
      if (t.hazards.empty()) return;
      std::fprintf(stderr, "[gmg-check] %zu access hazard(s) recorded:\n",
                   t.hazards.size());
      for (const HazardRecord& h : t.hazards) {
        std::fprintf(stderr, "  [%s @epoch %llu] %s\n",
                     hazard_kind_name(h.kind),
                     static_cast<unsigned long long>(h.epoch),
                     h.detail.c_str());
      }
    });
  });
}

std::string box_str(const Box& b) {
  std::ostringstream os;
  os << "[" << b.lo.x << ".." << b.hi.x << ")x[" << b.lo.y << ".." << b.hi.y
     << ")x[" << b.lo.z << ".." << b.hi.z << ")";
  return os.str();
}

/// Brick-coordinate cover of a cell box.
Box brick_cover(const Box& cells, Vec3 bd) {
  if (cells.empty()) return Box{};
  return Box{{floor_div(cells.lo.x, bd.x), floor_div(cells.lo.y, bd.y),
              floor_div(cells.lo.z, bd.z)},
             {floor_div(cells.hi.x - 1, bd.x) + 1,
              floor_div(cells.hi.y - 1, bd.y) + 1,
              floor_div(cells.hi.z - 1, bd.z) + 1}};
}

/// First in-flight ghost brick whose coordinate falls inside `cover`,
/// or -1. The in-flight set is the ghost shell (at most a few hundred
/// bricks), so a linear scan per launch is fine for a debug tool.
std::int32_t inflight_hit(const FieldState& f, const Box& cover) {
  if (f.grid == nullptr) return -1;
  for (const BrickRange& range : f.inflight) {
    for (std::int32_t b = 0; b < range.count; ++b) {
      const std::int32_t id = range.first + b;
      if (cover.contains(f.grid->coord_of(id))) return id;
    }
  }
  return -1;
}

// Callers hold tracker().mu.
void record_locked(Tracker& t, HazardKind kind, std::uint64_t epoch,
                   const std::string& detail) {
  t.hazards.push_back(HazardRecord{kind, detail, epoch});
}

}  // namespace

bool enabled() {
  int m = g_mode.load(std::memory_order_relaxed);
  if (m < 0) {
    m = resolve_mode();
    g_mode.store(m, std::memory_order_relaxed);
    if (m != 0) register_exit_report();
  }
  return m != 0;
}

void set_enabled(bool on) {
  g_mode.store(on ? 1 : 0, std::memory_order_relaxed);
  if (on) register_exit_report();
}

const char* hazard_kind_name(HazardKind kind) {
  switch (kind) {
    case HazardKind::kReadInflightGhost:
      return "read-inflight-ghost";
    case HazardKind::kWriteInflightGhost:
      return "write-inflight-ghost";
    case HazardKind::kWriteWriteOverlap:
      return "write-write-overlap";
    case HazardKind::kOverlappingExchange:
      return "overlapping-exchange";
    case HazardKind::kCorruptPlan:
      return "corrupt-plan";
  }
  return "unknown";
}

KernelScope::KernelScope(const char* name, std::vector<Access> writes,
                         std::vector<Access> reads) {
  if (!enabled()) return;
  Tracker& t = tracker();
  std::lock_guard<std::mutex> lock(t.mu);
  token_ = t.next_token++;
  const std::thread::id tid = std::this_thread::get_id();

  for (const Access& w : writes) {
    if (w.key == nullptr || w.box.empty()) continue;
    const Box cover = brick_cover(w.box, w.brick_dims);
    auto it = t.fields.find(w.key);
    if (it != t.fields.end() && it->second.in_flight) {
      const std::int32_t hit = inflight_hit(it->second, cover);
      if (hit >= 0) {
        record_locked(t, HazardKind::kWriteInflightGhost, it->second.epoch,
                      std::string(name) + ": write box " + box_str(w.box) +
                          " covers ghost brick " + std::to_string(hit) +
                          " of a field whose exchange has not finished");
      }
    }
    // Concurrent write-write at cell-box granularity. Same-thread
    // scopes are RAII-nested (an enclosing kernel delegating to an
    // inner engine over the same field) and sequence their stores, so
    // only cross-thread overlap is a hazard.
    for (const OpenScope& os : t.open) {
      if (os.tid == tid) continue;
      for (const Access& w2 : os.writes) {
        if (w2.key != w.key) continue;
        const Box common = intersect(w2.box, w.box);
        if (!common.empty()) {
          const std::uint64_t epoch =
              it != t.fields.end() ? it->second.epoch : 0;
          record_locked(t, HazardKind::kWriteWriteOverlap, epoch,
                        std::string(name) + " and " + os.name +
                            ": concurrent writes to one field overlap on " +
                            box_str(common));
        }
      }
    }
  }

  for (const Access& r : reads) {
    if (r.key == nullptr || r.box.empty()) continue;
    auto it = t.fields.find(r.key);
    if (it == t.fields.end() || !it->second.in_flight) continue;
    const std::int32_t hit = inflight_hit(it->second, brick_cover(r.box, r.brick_dims));
    if (hit >= 0) {
      record_locked(t, HazardKind::kReadInflightGhost, it->second.epoch,
                    std::string(name) + ": read box " + box_str(r.box) +
                        " (tap-grown) covers ghost brick " +
                        std::to_string(hit) +
                        " of a field whose exchange has not finished");
    }
  }

  OpenScope scope;
  scope.token = token_;
  scope.name = name;
  scope.tid = tid;
  scope.writes = std::move(writes);
  t.open.push_back(std::move(scope));
}

KernelScope::~KernelScope() {
  if (token_ == 0) return;
  Tracker& t = tracker();
  std::lock_guard<std::mutex> lock(t.mu);
  for (std::size_t n = 0; n < t.open.size(); ++n) {
    if (t.open[n].token != token_) continue;
    for (const Access& w : t.open[n].writes) {
      if (w.key != nullptr) ++t.fields[w.key].epoch;
    }
    t.open.erase(t.open.begin() + static_cast<std::ptrdiff_t>(n));
    break;
  }
}

void on_exchange_begin(const void* key, const BrickGrid* grid,
                       const std::vector<BrickRange>& ghost_ranges) {
  if (!enabled()) return;
  Tracker& t = tracker();
  std::lock_guard<std::mutex> lock(t.mu);
  FieldState& f = t.fields[key];
  if (f.in_flight) {
    record_locked(t, HazardKind::kOverlappingExchange, f.epoch,
                  "exchange begin while a previous exchange of the same "
                  "field is still in flight");
  }
  f.grid = grid;
  f.inflight = ghost_ranges;
  f.in_flight = true;
}

void on_exchange_finish(const void* key) {
  if (!enabled()) return;
  Tracker& t = tracker();
  std::lock_guard<std::mutex> lock(t.mu);
  auto it = t.fields.find(key);
  if (it == t.fields.end()) return;
  it->second.in_flight = false;
  it->second.inflight.clear();
  ++it->second.epoch;
}

void validate_plan(const char* name, const BrickPlanItem* items,
                   std::size_t count, std::int64_t num_full, Vec3 brick_dims) {
  if (!enabled()) return;
  constexpr std::size_t kMaxReports = 8;  // one bad plan, not 10k lines
  std::vector<std::string> problems;
  const auto note = [&](std::size_t n, const std::string& what) {
    if (problems.size() < kMaxReports) {
      problems.push_back("item " + std::to_string(n) + ": " + what);
    }
  };
  if (num_full < 0 || static_cast<std::size_t>(num_full) > count) {
    note(0, "full-brick prefix length " + std::to_string(num_full) +
                " exceeds item count " + std::to_string(count));
  }
  std::unordered_set<std::int32_t> ids;
  ids.reserve(count);
  for (std::size_t n = 0; n < count; ++n) {
    const BrickPlanItem& it = items[n];
    if (it.id < 0) note(n, "negative brick id");
    if (!ids.insert(it.id).second) {
      note(n, "duplicate brick id " + std::to_string(it.id) +
                  " (two chunks would write the same brick)");
    }
    const bool full = it.ilo == 0 && it.jlo == 0 && it.klo == 0 &&
                      it.ihi == brick_dims.x && it.jhi == brick_dims.y &&
                      it.khi == brick_dims.z;
    const bool in_prefix =
        num_full >= 0 && n < static_cast<std::size_t>(num_full);
    if (in_prefix && !full) {
      note(n, "clipped brick inside the full-brick prefix (the kernel "
              "would write the whole brick)");
    }
    if (it.ilo < 0 || it.jlo < 0 || it.klo < 0 || it.ihi > brick_dims.x ||
        it.jhi > brick_dims.y || it.khi > brick_dims.z ||
        it.ilo >= it.ihi || it.jlo >= it.jhi || it.klo >= it.khi) {
      note(n, "clip bounds outside the brick (writes would escape the "
              "declared region)");
    }
  }
  if (problems.empty()) return;
  Tracker& t = tracker();
  std::lock_guard<std::mutex> lock(t.mu);
  for (const std::string& p : problems) {
    record_locked(t, HazardKind::kCorruptPlan, 0,
                  std::string(name) + ": " + p);
  }
}

std::size_t hazard_count() {
  Tracker& t = tracker();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.hazards.size();
}

std::vector<HazardRecord> hazards() {
  Tracker& t = tracker();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.hazards;
}

void clear_hazards() {
  Tracker& t = tracker();
  std::lock_guard<std::mutex> lock(t.mu);
  t.hazards.clear();
}

void reset() {
  Tracker& t = tracker();
  std::lock_guard<std::mutex> lock(t.mu);
  t.fields.clear();
  t.open.clear();
  t.hazards.clear();
}

void require_clean(const std::string& what) {
  Tracker& t = tracker();
  std::lock_guard<std::mutex> lock(t.mu);
  if (t.hazards.empty()) return;
  std::ostringstream os;
  os << what << ": " << t.hazards.size() << " access hazard(s) recorded:";
  for (const HazardRecord& h : t.hazards) {
    os << "\n  [" << hazard_kind_name(h.kind) << " @epoch " << h.epoch << "] "
       << h.detail;
  }
  throw Error(os.str());
}

}  // namespace gmg::check
