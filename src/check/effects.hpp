// Static kernel-effect summaries (DESIGN.md §18, layer 2 of the
// verification ladder). An EffectSummary is a constexpr description of
// what one kernel launch touches: which field *roles* it writes and
// which it reads, and — for reads — how far beyond its active box the
// stencil taps reach. The summaries are derived from the same numbers
// the constexpr DSL footprints (footprint.hpp) encode, so a stencil
// edit that widens a footprint shows up here as a static_assert
// mismatch, and the schedule verifier (schedule.hpp) consumes them to
// prove, at setup time, that every planned launch reads only ghost
// layers some completed exchange or producing write actually filled.
//
// Every kernel in src/gmg, src/dsl (generated), src/batch and src/amr
// exports one of these as a sibling `<kernel>_effects()` constexpr
// function — enforced by gmg_lint rule effect-summary.
//
// Roles are positional names ("x", "b", "Ax", "coarse", "fine", ...),
// not concrete field identities: the schedule recorder binds each role
// to a (level, field) pair per recorded step, and the verifier
// cross-checks that binding against the summary — a recorded write
// with no declared write effect for its role is the "undeclared write
// box" hazard.
#pragma once

#include <cstdint>

namespace gmg::check {

/// constexpr-safe string equality for role/kernel names.
constexpr bool streq(const char* a, const char* b) {
  while (*a != '\0' && *a == *b) {
    ++a;
    ++b;
  }
  return *a == *b;
}

enum class EffectKind : std::uint8_t { kRead, kWrite };

/// One field-role effect: `reach` is the stencil radius beyond the
/// kernel's active box (always 0 for writes — kernels write only the
/// cells they are launched over, plus any ghost spill declared via the
/// recorded access box itself).
struct FieldEffect {
  EffectKind kind = EffectKind::kRead;
  const char* role = "";
  int reach = 0;
};

/// The full effect set of one kernel. Built fluently:
///   constexpr auto smooth_effects(int radius) {
///     return EffectSummary("kernel.smooth")
///         .writes("x").reads("x", 0).reads("b").reads("Ax");
///   }
struct EffectSummary {
  static constexpr int kMaxEffects = 12;

  const char* kernel = "";
  FieldEffect effects[kMaxEffects] = {};
  int count = 0;

  constexpr EffectSummary() = default;
  constexpr explicit EffectSummary(const char* name) : kernel(name) {}

  constexpr EffectSummary writes(const char* role) const {
    return with(FieldEffect{EffectKind::kWrite, role, 0});
  }
  constexpr EffectSummary reads(const char* role, int reach = 0) const {
    return with(FieldEffect{EffectKind::kRead, role, reach});
  }

  constexpr bool empty() const { return count == 0; }

  /// Declared read reach for `role`, or -1 when the summary declares
  /// no read of that role.
  constexpr int read_reach(const char* role) const {
    for (int i = 0; i < count; ++i) {
      if (effects[i].kind == EffectKind::kRead && streq(effects[i].role, role))
        return effects[i].reach;
    }
    return -1;
  }

  constexpr bool writes_role(const char* role) const {
    for (int i = 0; i < count; ++i) {
      if (effects[i].kind == EffectKind::kWrite && streq(effects[i].role, role))
        return true;
    }
    return false;
  }

  constexpr bool reads_role(const char* role) const {
    return read_reach(role) >= 0;
  }

  constexpr int num_writes() const {
    int n = 0;
    for (int i = 0; i < count; ++i) {
      if (effects[i].kind == EffectKind::kWrite) ++n;
    }
    return n;
  }

  constexpr int max_read_reach() const {
    int m = 0;
    for (int i = 0; i < count; ++i) {
      if (effects[i].kind == EffectKind::kRead && effects[i].reach > m)
        m = effects[i].reach;
    }
    return m;
  }

 private:
  constexpr EffectSummary with(FieldEffect e) const {
    EffectSummary s = *this;
    // Silently saturating would hide effects from the verifier; a
    // constexpr out-of-bounds write fails compilation instead.
    s.effects[s.count] = e;
    s.count = s.count + 1;
    return s;
  }
};

}  // namespace gmg::check
