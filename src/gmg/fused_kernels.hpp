// Fused multi-stage kernels for the descent leg of the V-cycle
// (DESIGN.md §16). The split schedule makes three full passes over
// each fine brick per level visit — smooth, residual, restriction —
// even though fine-grain blocking keeps a brick's working set
// resident. These kernels glue the post-applyOp stages into ONE pass:
// per fine brick, the final smoother update, r = b - Ax, and the 8->1
// full-weighted coarse contribution, with the brick's freshly-written
// residual still in cache when the restriction reads it.
//
// Fusion boundary: applyOp stays its own pass. The CA margin schedule
// and the split-phase overlap machinery split only the operator
// application by region (DESIGN.md §10/§11); the stages fused here are
// pointwise (smooth/residual) or read only the brick's own residual
// (restriction), so composing them changes no exchange, margin, or
// overlap decision.
//
// Bitwise contract: every fused kernel replicates the split kernels'
// per-element arithmetic and summation order VERBATIM (same tap order,
// same 0.125 * (8-term sum), same -omega/diag factor), under the
// repo-wide -ffp-contract=off. Restriction writes stay race-free under
// any chunking: eight fine bricks write disjoint octants of one coarse
// brick, and each fine brick reads only the residual it just wrote.
#pragma once

#include "brick/bricked_array.hpp"
#include "check/effects.hpp"
#include "check/footprint.hpp"
#include "common/types.hpp"

namespace gmg::fused {

/// The fused descent kernel's read footprint on the fine residual,
/// derived as the union of the stages it glues together: the pointwise
/// smooth/residual stage (center tap) merged with the restriction
/// octant. Derived through the constexpr check:: machinery so a stage
/// edit that widens a footprint fails the static_asserts below, not as
/// a silent out-of-ghost read.
constexpr dsl::OffsetSet descent_footprint() {
  dsl::OffsetSet pointwise;  // smooth + residual touch only the center
  pointwise.add(dsl::Tap{0, 0, 0, 0});
  return pointwise.merged(check::restriction_shape());
}

// The union must be exactly the restriction octant (the pointwise
// center tap is one of its 8 taps) and must fit even the smallest
// supported brick: the fused pass reads no cell the split restriction
// would not.
static_assert(check::same_footprint(descent_footprint(),
                                    check::restriction_shape()),
              "fused smooth+residual+restriction footprint must equal "
              "the restriction octant");
static_assert(check::footprint_fits(descent_footprint().extents(), 2, 2, 2),
              "fused descent footprint must fit the smallest brick");

/// Setup-time guard (GmgSolver constructor, fuse_stages on): the fused
/// footprint must fit the configured brick's one-brick-deep ghost
/// capacity, and the per-brick octant restriction needs even brick
/// dims. Throws GmgError otherwise — undersized ghosts are rejected at
/// setup, not discovered as corrupt coarse RHS values.
void require_fused_fits(const BrickShape& shape);

/// Fused final Jacobi sweep: per brick of `active`,
///   r = b - Ax;  x += gamma * (Ax - b);
/// and, for interior bricks, the 8->1 full-weighted restriction of the
/// just-written r into `coarse_b`. `active` must cover the fine
/// interior (it always does: active = grow(interior, margin - radius)
/// with margin >= radius). Extents/shapes as restriction().
void smooth_residual_restrict(BrickedArray& x, BrickedArray& r,
                              BrickedArray& coarse_b, const BrickedArray& Ax,
                              const BrickedArray& b, real_t gamma,
                              const Box& active);

/// Variable-coefficient twin: x += (-omega / diag) * (Ax - b).
void smooth_residual_restrict_varcoef(BrickedArray& x, BrickedArray& r,
                                      BrickedArray& coarse_b,
                                      const BrickedArray& Ax,
                                      const BrickedArray& b,
                                      const BrickedArray& diag, real_t omega,
                                      const Box& active);

/// Fused GS descent tail: r = b - Ax over the full interior plus the
/// per-brick restriction into `coarse_b`, one pass per fine brick.
void residual_restrict(BrickedArray& r, BrickedArray& coarse_b,
                       const BrickedArray& b, const BrickedArray& Ax);

/// Fused convergence check: r = b - Ax over the interior and the local
/// max|r| in the same pass. Uses the identical flat range and chunk
/// grain as the split max_norm, so the fixed reduction tree — and with
/// it the solve history — is bitwise identical to residual()+max_norm().
real_t residual_max_norm(BrickedArray& r, const BrickedArray& b,
                         const BrickedArray& Ax);

// Static effect summaries (check/effects.hpp, DESIGN.md §18): the
// fused stages' write sets are the union of the split kernels they
// replace, with `coarse` bound to the coarse-level RHS the restriction
// feeds. The schedule verifier additionally proves the per-brick chunk
// write boxes of each fused launch pairwise disjoint.

constexpr check::EffectSummary smooth_residual_restrict_effects() {
  return check::EffectSummary("kernel.fusedDescent")
      .writes("x")
      .writes("r")
      .writes("coarse")
      .reads("x")
      .reads("Ax")
      .reads("b");
}

constexpr check::EffectSummary smooth_residual_restrict_varcoef_effects() {
  return check::EffectSummary("kernel.fusedDescentVarCoef")
      .writes("x")
      .writes("r")
      .writes("coarse")
      .reads("x")
      .reads("Ax")
      .reads("b")
      .reads("diag");
}

constexpr check::EffectSummary residual_restrict_effects() {
  return check::EffectSummary("kernel.fusedGsTail")
      .writes("r")
      .writes("coarse")
      .reads("b")
      .reads("Ax");
}

constexpr check::EffectSummary residual_max_norm_effects() {
  return check::EffectSummary("kernel.fusedResidualNorm")
      .writes("r")
      .reads("b")
      .reads("Ax");
}

// The fused descent reads the residual only through the restriction
// octant it just wrote — its summary must not claim a wider reach than
// the split restriction's footprint radius.
static_assert(smooth_residual_restrict_effects().max_read_reach() == 0 &&
                  check::restriction_shape().radius() == 1,
              "fused descent reads must stay within the active box");

}  // namespace gmg::fused
