#include "gmg/operators.hpp"

#include <cmath>
#include <cstring>

#include "dsl/apply_brick.hpp"
#include "dsl/stencils.hpp"
#include "trace/trace.hpp"

namespace gmg {

namespace {

/// Tally a kernel's floating-point work so the trace metrics sink can
/// report achieved flop counts next to the measured span durations.
inline void count_flops(std::uint64_t pts, std::uint64_t flops_per_pt) {
  trace::counter_add("gmg.flops", pts * flops_per_pt);
}

inline std::uint64_t box_points(const Box& b) {
  return static_cast<std::uint64_t>(b.volume());
}

/// Visit the contiguous rows of `active` clipped to each brick:
/// fn(flat_base_index, ilo, ihi) where the row occupies
/// [flat_base_index + ilo, flat_base_index + ihi).
template <typename BD, typename Fn>
void for_each_row(BD, const BrickGrid& grid, const Box& active, Fn&& fn) {
  const Box brick_region{
      {floor_div(active.lo.x, BD::bx), floor_div(active.lo.y, BD::by),
       floor_div(active.lo.z, BD::bz)},
      {floor_div(active.hi.x - 1, BD::bx) + 1,
       floor_div(active.hi.y - 1, BD::by) + 1,
       floor_div(active.hi.z - 1, BD::bz) + 1}};
  GMG_REQUIRE(grid.extended_box().covers(brick_region),
              "active region extends beyond the ghost bricks");
  const Vec3 bl = brick_region.lo, bh = brick_region.hi;
#pragma omp parallel for collapse(2) schedule(static)
  for (index_t bz = bl.z; bz < bh.z; ++bz) {
    for (index_t by = bl.y; by < bh.y; ++by) {
      for (index_t bx = bl.x; bx < bh.x; ++bx) {
        const std::int32_t id = grid.storage_id({bx, by, bz});
        GMG_ASSERT(id >= 0);
        const index_t cx = bx * BD::bx, cy = by * BD::by, cz = bz * BD::bz;
        const index_t ilo = std::max<index_t>(0, active.lo.x - cx);
        const index_t ihi = std::min<index_t>(BD::bx, active.hi.x - cx);
        const index_t jlo = std::max<index_t>(0, active.lo.y - cy);
        const index_t jhi = std::min<index_t>(BD::by, active.hi.y - cy);
        const index_t klo = std::max<index_t>(0, active.lo.z - cz);
        const index_t khi = std::min<index_t>(BD::bz, active.hi.z - cz);
        const std::size_t brick_base =
            static_cast<std::size_t>(id) * BD::volume;
        for (index_t lk = klo; lk < khi; ++lk) {
          for (index_t lj = jlo; lj < jhi; ++lj) {
            fn(brick_base + static_cast<std::size_t>(
                                (lk * BD::by + lj) * BD::bx),
               ilo, ihi);
          }
        }
      }
    }
  }
}

}  // namespace

namespace {

/// Specialized 7-point star kernel — the code BrickLib's vector code
/// generator would emit for Fig. 1's DSL input. Per output row, the
/// six neighbor rows are resolved to direct pointers once (crossing
/// into adjacent bricks where needed); the row body is then a pure
/// unit-stride SIMD loop with scalar patch-ups only at the two
/// x-boundary cells. The generic DSL engine (dsl::apply) remains the
/// fallback for arbitrary stencils.
template <typename BD>
void apply_op_7pt(BD, BrickedArray& Ax, const BrickedArray& x, real_t alpha,
                  real_t beta, const Box& active) {
  const BrickGrid& grid = x.grid();
  GMG_REQUIRE(&Ax.grid() == &grid, "fields must share a brick grid");
  const real_t* __restrict xp = x.data();
  real_t* __restrict op = Ax.data();

  const Box brick_region{
      {floor_div(active.lo.x, BD::bx), floor_div(active.lo.y, BD::by),
       floor_div(active.lo.z, BD::bz)},
      {floor_div(active.hi.x - 1, BD::bx) + 1,
       floor_div(active.hi.y - 1, BD::by) + 1,
       floor_div(active.hi.z - 1, BD::bz) + 1}};
  // Every tap of the outermost active cells must land in an existing
  // brick (radius 1: the active region grown by one cell).
  const Box tap_region{
      {floor_div(active.lo.x - 1, BD::bx), floor_div(active.lo.y - 1, BD::by),
       floor_div(active.lo.z - 1, BD::bz)},
      {floor_div(active.hi.x, BD::bx) + 1,
       floor_div(active.hi.y, BD::by) + 1,
       floor_div(active.hi.z, BD::bz) + 1}};
  GMG_REQUIRE(grid.extended_box().covers(tap_region),
              "stencil taps reach beyond the ghost bricks");

  const Vec3 bl = brick_region.lo, bh = brick_region.hi;
#pragma omp parallel for collapse(2) schedule(static)
  for (index_t bz = bl.z; bz < bh.z; ++bz) {
    for (index_t by = bl.y; by < bh.y; ++by) {
      for (index_t bx = bl.x; bx < bh.x; ++bx) {
        const std::int32_t id = grid.storage_id({bx, by, bz});
        GMG_ASSERT(id >= 0);
        const auto& adj = grid.adjacency(id);
        const auto brick_of = [&](int dx, int dy, int dz) {
          const std::int32_t b = adj[direction_index(dx, dy, dz)];
          GMG_ASSERT(b >= 0);
          return xp + static_cast<std::size_t>(b) * BD::volume;
        };
        const real_t* __restrict xb = brick_of(0, 0, 0);
        real_t* __restrict ob =
            op + static_cast<std::size_t>(id) * BD::volume;

        const index_t cx = bx * BD::bx, cy = by * BD::by, cz = bz * BD::bz;
        const index_t ilo = std::max<index_t>(0, active.lo.x - cx);
        const index_t ihi = std::min<index_t>(BD::bx, active.hi.x - cx);
        const index_t jlo = std::max<index_t>(0, active.lo.y - cy);
        const index_t jhi = std::min<index_t>(BD::by, active.hi.y - cy);
        const index_t klo = std::max<index_t>(0, active.lo.z - cz);
        const index_t khi = std::min<index_t>(BD::bz, active.hi.z - cz);

        constexpr index_t kRow = BD::bx;
        constexpr index_t kPlane = BD::bx * BD::by;
        const auto row_at = [&](const real_t* brick, index_t lj, index_t lk) {
          return brick + lk * kPlane + lj * kRow;
        };

        for (index_t lk = klo; lk < khi; ++lk) {
          for (index_t lj = jlo; lj < jhi; ++lj) {
            const real_t* __restrict xr = row_at(xb, lj, lk);
            const real_t* __restrict ym =
                lj > 0 ? row_at(xb, lj - 1, lk)
                       : row_at(brick_of(0, -1, 0), BD::by - 1, lk);
            const real_t* __restrict yp =
                lj < BD::by - 1 ? row_at(xb, lj + 1, lk)
                                : row_at(brick_of(0, 1, 0), 0, lk);
            const real_t* __restrict zm =
                lk > 0 ? row_at(xb, lj, lk - 1)
                       : row_at(brick_of(0, 0, -1), lj, BD::bz - 1);
            const real_t* __restrict zp =
                lk < BD::bz - 1 ? row_at(xb, lj, lk + 1)
                                : row_at(brick_of(0, 0, 1), lj, 0);
            real_t* __restrict orow = ob + lk * kPlane + lj * kRow;

            // One SIMD core over [max(ilo,1), min(ihi,B-1)) plus
            // scalar patch-ups at the two x-boundary cells. The tap
            // summation order (xm + xp + ym + yp + zm + zp) is kept
            // IDENTICAL between core and patches so that cells
            // computed redundantly in ghost bricks (communication-
            // avoiding sweeps) are bitwise equal to the owning rank's
            // interior computation.
            const index_t core_lo = std::max<index_t>(ilo, 1);
            const index_t core_hi = std::min<index_t>(ihi, BD::bx - 1);
#pragma omp simd
            for (index_t li = core_lo; li < core_hi; ++li) {
              orow[li] = alpha * xr[li] +
                         beta * (xr[li - 1] + xr[li + 1] + ym[li] + yp[li] +
                                 zm[li] + zp[li]);
            }
            if (ilo == 0) {
              const real_t xm =
                  row_at(brick_of(-1, 0, 0), lj, lk)[BD::bx - 1];
              orow[0] = alpha * xr[0] +
                        beta * (xm + xr[1] + ym[0] + yp[0] + zm[0] + zp[0]);
            }
            if (ihi == BD::bx) {
              constexpr index_t e = BD::bx - 1;
              const real_t xpv = row_at(brick_of(1, 0, 0), lj, lk)[0];
              orow[e] = alpha * xr[e] +
                        beta * (xr[e - 1] + xpv + ym[e] + yp[e] + zm[e] +
                                zp[e]);
            }
          }
        }
      }
    }
  }
}

}  // namespace

void apply_op(BrickedArray& Ax, const BrickedArray& x, real_t alpha,
              real_t beta, const Box& active) {
  // 7-point star: 2 multiplies + 6 adds per output cell.
  trace::TraceSpan span("kernel.applyOp");
  count_flops(box_points(active), 8);
  with_brick_dims(x.shape(), [&](auto bd) {
    apply_op_7pt(bd, Ax, x, alpha, beta, active);
  });
}

void smooth(BrickedArray& x, const BrickedArray& Ax, const BrickedArray& b,
            real_t gamma, const Box& active) {
  trace::TraceSpan span("kernel.smooth");
  count_flops(box_points(active), 3);
  with_brick_dims(x.shape(), [&](auto bd) {
    real_t* __restrict xp = x.data();
    const real_t* __restrict axp = Ax.data();
    const real_t* __restrict bp = b.data();
    for_each_row(bd, x.grid(), active,
                 [&](std::size_t o, index_t ilo, index_t ihi) {
#pragma omp simd
                   for (index_t i = ilo; i < ihi; ++i) {
                     xp[o + i] += gamma * (axp[o + i] - bp[o + i]);
                   }
                 });
  });
}

void smooth_residual(BrickedArray& x, BrickedArray& r, const BrickedArray& Ax,
                     const BrickedArray& b, real_t gamma, const Box& active) {
  trace::TraceSpan span("kernel.smoothResidual");
  count_flops(box_points(active), 4);
  with_brick_dims(x.shape(), [&](auto bd) {
    real_t* __restrict xp = x.data();
    real_t* __restrict rp = r.data();
    const real_t* __restrict axp = Ax.data();
    const real_t* __restrict bp = b.data();
    for_each_row(bd, x.grid(), active,
                 [&](std::size_t o, index_t ilo, index_t ihi) {
#pragma omp simd
                   for (index_t i = ilo; i < ihi; ++i) {
                     const real_t ax = axp[o + i];
                     const real_t rhs = bp[o + i];
                     rp[o + i] = rhs - ax;
                     xp[o + i] += gamma * (ax - rhs);
                   }
                 });
  });
}

void residual(BrickedArray& r, const BrickedArray& b, const BrickedArray& Ax,
              const Box& active) {
  trace::TraceSpan span("kernel.residual");
  count_flops(box_points(active), 1);
  with_brick_dims(r.shape(), [&](auto bd) {
    real_t* __restrict rp = r.data();
    const real_t* __restrict axp = Ax.data();
    const real_t* __restrict bp = b.data();
    for_each_row(bd, r.grid(), active,
                 [&](std::size_t o, index_t ilo, index_t ihi) {
#pragma omp simd
                   for (index_t i = ilo; i < ihi; ++i) {
                     rp[o + i] = bp[o + i] - axp[o + i];
                   }
                 });
  });
}

void restriction(BrickedArray& coarse, const BrickedArray& fine) {
  const Vec3 fe = fine.extent(), ce = coarse.extent();
  GMG_REQUIRE(fe.x == 2 * ce.x && fe.y == 2 * ce.y && fe.z == 2 * ce.z,
              "fine extent must be twice the coarse extent");
  // Full-weighting of a 2x2x2 cell block: 7 adds + 1 multiply.
  trace::TraceSpan span("kernel.restriction");
  count_flops(static_cast<std::uint64_t>(ce.x) * ce.y * ce.z, 8);
  GMG_REQUIRE(fine.shape() == coarse.shape(),
              "restriction assumes equal brick shapes on both levels");
  with_brick_dims(fine.shape(), [&](auto bd) {
    using BD = decltype(bd);
    static_assert(BD::bx % 2 == 0 && BD::by % 2 == 0 && BD::bz % 2 == 0);
    const BrickGrid& fg = fine.grid();
    const BrickGrid& cg = coarse.grid();
    const real_t* __restrict fp = fine.data();
    real_t* __restrict cp = coarse.data();
    const Vec3 nb = fg.interior_extent();
#pragma omp parallel for collapse(2) schedule(static)
    for (index_t bz = 0; bz < nb.z; ++bz) {
      for (index_t by = 0; by < nb.y; ++by) {
        for (index_t bx = 0; bx < nb.x; ++bx) {
          const std::int32_t fid = fg.storage_id({bx, by, bz});
          const std::int32_t cid =
              cg.storage_id({bx / 2, by / 2, bz / 2});
          GMG_ASSERT(fid >= 0 && cid >= 0);
          // In-coarse-brick base offset of this fine brick's image.
          const index_t ox = (bx % 2) * (BD::bx / 2);
          const index_t oy = (by % 2) * (BD::by / 2);
          const index_t oz = (bz % 2) * (BD::bz / 2);
          const real_t* fb =
              fp + static_cast<std::size_t>(fid) * BD::volume;
          real_t* cb = cp + static_cast<std::size_t>(cid) * BD::volume;
          for (index_t lk = 0; lk < BD::bz; lk += 2) {
            for (index_t lj = 0; lj < BD::by; lj += 2) {
              const real_t* r0 = fb + (lk * BD::by + lj) * BD::bx;
              const real_t* r1 = r0 + BD::bx;            // j+1
              const real_t* r2 = r0 + BD::by * BD::bx;   // k+1
              const real_t* r3 = r2 + BD::bx;            // j+1, k+1
              real_t* crow =
                  cb + ((oz + lk / 2) * BD::by + (oy + lj / 2)) * BD::bx + ox;
#pragma omp simd
              for (index_t li = 0; li < BD::bx / 2; ++li) {
                const index_t f = 2 * li;
                crow[li] = 0.125 * (r0[f] + r0[f + 1] + r1[f] + r1[f + 1] +
                                    r2[f] + r2[f + 1] + r3[f] + r3[f + 1]);
              }
            }
          }
        }
      }
    }
  });
}

void interpolation_increment(BrickedArray& fine, const BrickedArray& coarse) {
  const Vec3 fe = fine.extent(), ce = coarse.extent();
  GMG_REQUIRE(fe.x == 2 * ce.x && fe.y == 2 * ce.y && fe.z == 2 * ce.z,
              "fine extent must be twice the coarse extent");
  trace::TraceSpan span("kernel.interpIncrement");
  count_flops(static_cast<std::uint64_t>(fe.x) * fe.y * fe.z, 1);
  GMG_REQUIRE(fine.shape() == coarse.shape(),
              "interpolation assumes equal brick shapes on both levels");
  with_brick_dims(fine.shape(), [&](auto bd) {
    using BD = decltype(bd);
    const BrickGrid& fg = fine.grid();
    const BrickGrid& cg = coarse.grid();
    real_t* __restrict fp = fine.data();
    const real_t* __restrict cp = coarse.data();
    const Vec3 nb = fg.interior_extent();
#pragma omp parallel for collapse(2) schedule(static)
    for (index_t bz = 0; bz < nb.z; ++bz) {
      for (index_t by = 0; by < nb.y; ++by) {
        for (index_t bx = 0; bx < nb.x; ++bx) {
          const std::int32_t fid = fg.storage_id({bx, by, bz});
          const std::int32_t cid =
              cg.storage_id({bx / 2, by / 2, bz / 2});
          GMG_ASSERT(fid >= 0 && cid >= 0);
          const index_t ox = (bx % 2) * (BD::bx / 2);
          const index_t oy = (by % 2) * (BD::by / 2);
          const index_t oz = (bz % 2) * (BD::bz / 2);
          real_t* fb = fp + static_cast<std::size_t>(fid) * BD::volume;
          const real_t* cb =
              cp + static_cast<std::size_t>(cid) * BD::volume;
          for (index_t lk = 0; lk < BD::bz; ++lk) {
            for (index_t lj = 0; lj < BD::by; ++lj) {
              real_t* frow = fb + (lk * BD::by + lj) * BD::bx;
              const real_t* crow =
                  cb + ((oz + lk / 2) * BD::by + (oy + lj / 2)) * BD::bx + ox;
#pragma omp simd
              for (index_t li = 0; li < BD::bx; ++li) {
                frow[li] += crow[li / 2];
              }
            }
          }
        }
      }
    }
  });
}

void gs_color_sweep(BrickedArray& x, const BrickedArray& b, real_t alpha,
                    real_t beta, int color, Vec3 origin, const Box& active) {
  GMG_REQUIRE(color == 0 || color == 1, "color must be 0 (red) or 1 (black)");
  // One checkerboard color updates half the cells; ~9 flops each
  // (6 adds, 1 multiply, 1 subtract, 1 divide).
  trace::TraceSpan span("kernel.gsColorSweep");
  count_flops(box_points(active) / 2, 9);
  with_brick_dims(x.shape(), [&](auto bd) {
    using BD = decltype(bd);
    const BrickGrid& grid = x.grid();
    GMG_REQUIRE(&b.grid() == &grid, "fields must share a brick grid");
    real_t* __restrict xp = x.data();
    const real_t* __restrict bp = b.data();

    const Box brick_region{
        {floor_div(active.lo.x, BD::bx), floor_div(active.lo.y, BD::by),
         floor_div(active.lo.z, BD::bz)},
        {floor_div(active.hi.x - 1, BD::bx) + 1,
         floor_div(active.hi.y - 1, BD::by) + 1,
         floor_div(active.hi.z - 1, BD::bz) + 1}};
    const Box tap_region{{floor_div(active.lo.x - 1, BD::bx),
                          floor_div(active.lo.y - 1, BD::by),
                          floor_div(active.lo.z - 1, BD::bz)},
                         {floor_div(active.hi.x, BD::bx) + 1,
                          floor_div(active.hi.y, BD::by) + 1,
                          floor_div(active.hi.z, BD::bz) + 1}};
    GMG_REQUIRE(grid.extended_box().covers(tap_region),
                "stencil taps reach beyond the ghost bricks");

    const Vec3 bl = brick_region.lo, bh = brick_region.hi;
    // Same-color cells never neighbor each other on the checkerboard,
    // so bricks (and cells within a color) can update concurrently.
#pragma omp parallel for collapse(2) schedule(static)
    for (index_t bz = bl.z; bz < bh.z; ++bz) {
      for (index_t by = bl.y; by < bh.y; ++by) {
        for (index_t bx = bl.x; bx < bh.x; ++bx) {
          const std::int32_t id = grid.storage_id({bx, by, bz});
          GMG_ASSERT(id >= 0);
          const auto& adj = grid.adjacency(id);
          const auto brick_of = [&](int dx, int dy, int dz) {
            const std::int32_t nb = adj[direction_index(dx, dy, dz)];
            GMG_ASSERT(nb >= 0);
            return xp + static_cast<std::size_t>(nb) * BD::volume;
          };
          real_t* __restrict xb = xp + static_cast<std::size_t>(id) *
                                           BD::volume;
          const real_t* __restrict bb =
              bp + static_cast<std::size_t>(id) * BD::volume;

          const index_t cx = bx * BD::bx, cy = by * BD::by, cz = bz * BD::bz;
          const index_t ilo = std::max<index_t>(0, active.lo.x - cx);
          const index_t ihi = std::min<index_t>(BD::bx, active.hi.x - cx);
          const index_t jlo = std::max<index_t>(0, active.lo.y - cy);
          const index_t jhi = std::min<index_t>(BD::by, active.hi.y - cy);
          const index_t klo = std::max<index_t>(0, active.lo.z - cz);
          const index_t khi = std::min<index_t>(BD::bz, active.hi.z - cz);

          constexpr index_t kRow = BD::bx;
          constexpr index_t kPlane = BD::bx * BD::by;
          const auto row_at = [&](const real_t* brick, index_t lj,
                                  index_t lk) {
            return brick + lk * kPlane + lj * kRow;
          };

          for (index_t lk = klo; lk < khi; ++lk) {
            for (index_t lj = jlo; lj < jhi; ++lj) {
              real_t* __restrict xr = xb + lk * kPlane + lj * kRow;
              const real_t* __restrict br = bb + lk * kPlane + lj * kRow;
              const real_t* __restrict ym =
                  lj > 0 ? row_at(xb, lj - 1, lk)
                         : row_at(brick_of(0, -1, 0), BD::by - 1, lk);
              const real_t* __restrict yprow =
                  lj < BD::by - 1 ? row_at(xb, lj + 1, lk)
                                  : row_at(brick_of(0, 1, 0), 0, lk);
              const real_t* __restrict zm =
                  lk > 0 ? row_at(xb, lj, lk - 1)
                         : row_at(brick_of(0, 0, -1), lj, BD::bz - 1);
              const real_t* __restrict zprow =
                  lk < BD::bz - 1 ? row_at(xb, lj, lk + 1)
                                  : row_at(brick_of(0, 0, 1), lj, 0);
              // Global parity of the first active cell in this row.
              const index_t row_parity =
                  (origin.x + cx + origin.y + cy + lj + origin.z + cz + lk) &
                  1;
              index_t first =
                  ilo + (((color - row_parity - ilo) % 2) + 2) % 2;
              for (index_t li = first; li < ihi; li += 2) {
                const real_t xm =
                    li > 0 ? xr[li - 1]
                           : row_at(brick_of(-1, 0, 0), lj, lk)[BD::bx - 1];
                const real_t xpv =
                    li < BD::bx - 1 ? xr[li + 1]
                                    : row_at(brick_of(1, 0, 0), lj, lk)[0];
                xr[li] = (br[li] - beta * (xm + xpv + ym[li] + yprow[li] +
                                           zm[li] + zprow[li])) /
                         alpha;
              }
            }
          }
        }
      }
    }
  });
}

void init_zero(BrickedArray& a) {
  std::memset(a.data(), 0, a.size() * sizeof(real_t));
}

namespace {

/// Contiguous interior storage range (interior bricks are ids
/// [0, num_interior), each brick one dense block).
std::size_t interior_span(const BrickedArray& a) {
  return static_cast<std::size_t>(a.grid().num_interior()) *
         static_cast<std::size_t>(a.shape().volume());
}

}  // namespace

real_t norm2_sq(const BrickedArray& a) {
  const real_t* __restrict p = a.data();
  const std::size_t n = interior_span(a);
  real_t sum = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : sum)
  for (std::size_t i = 0; i < n; ++i) sum += p[i] * p[i];
  return sum;
}

real_t dot_interior(const BrickedArray& a, const BrickedArray& b) {
  GMG_REQUIRE(&a.grid() == &b.grid(), "fields must share a brick grid");
  const real_t* __restrict pa = a.data();
  const real_t* __restrict pb = b.data();
  const std::size_t n = interior_span(a);
  real_t sum = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : sum)
  for (std::size_t i = 0; i < n; ++i) sum += pa[i] * pb[i];
  return sum;
}

void axpy_interior(BrickedArray& y, real_t alpha, const BrickedArray& x) {
  GMG_REQUIRE(&y.grid() == &x.grid(), "fields must share a brick grid");
  real_t* __restrict py = y.data();
  const real_t* __restrict px = x.data();
  const std::size_t n = interior_span(y);
#pragma omp parallel for simd schedule(static)
  for (std::size_t i = 0; i < n; ++i) py[i] += alpha * px[i];
}

void xpay_interior(BrickedArray& y, const BrickedArray& x, real_t beta) {
  GMG_REQUIRE(&y.grid() == &x.grid(), "fields must share a brick grid");
  real_t* __restrict py = y.data();
  const real_t* __restrict px = x.data();
  const std::size_t n = interior_span(y);
#pragma omp parallel for simd schedule(static)
  for (std::size_t i = 0; i < n; ++i) py[i] = px[i] + beta * py[i];
}

void copy_interior(BrickedArray& dst, const BrickedArray& src) {
  GMG_REQUIRE(&dst.grid() == &src.grid(), "fields must share a brick grid");
  std::memcpy(dst.data(), src.data(), interior_span(dst) * sizeof(real_t));
}

void axpy(BrickedArray& y, real_t alpha, const BrickedArray& x,
          const Box& active) {
  with_brick_dims(y.shape(), [&](auto bd) {
    real_t* __restrict py = y.data();
    const real_t* __restrict px = x.data();
    for_each_row(bd, y.grid(), active,
                 [&](std::size_t o, index_t ilo, index_t ihi) {
#pragma omp simd
                   for (index_t i = ilo; i < ihi; ++i) {
                     py[o + i] += alpha * px[o + i];
                   }
                 });
  });
}

void cheby_p_update(BrickedArray& p, const BrickedArray& r, real_t inv_diag,
                    real_t beta, const Box& active) {
  with_brick_dims(p.shape(), [&](auto bd) {
    real_t* __restrict pp = p.data();
    const real_t* __restrict pr = r.data();
    for_each_row(bd, p.grid(), active,
                 [&](std::size_t o, index_t ilo, index_t ihi) {
#pragma omp simd
                   for (index_t i = ilo; i < ihi; ++i) {
                     pp[o + i] = inv_diag * pr[o + i] + beta * pp[o + i];
                   }
                 });
  });
}

void interpolation_assign(BrickedArray& fine, const BrickedArray& coarse) {
  const Vec3 fe = fine.extent(), ce = coarse.extent();
  GMG_REQUIRE(fe.x == 2 * ce.x && fe.y == 2 * ce.y && fe.z == 2 * ce.z,
              "fine extent must be twice the coarse extent");
  GMG_REQUIRE(fine.shape() == coarse.shape(),
              "interpolation assumes equal brick shapes on both levels");
  with_brick_dims(fine.shape(), [&](auto bd) {
    using BD = decltype(bd);
    const BrickGrid& fg = fine.grid();
    const BrickGrid& cg = coarse.grid();
    real_t* __restrict fp = fine.data();
    const real_t* __restrict cp = coarse.data();
    const Vec3 nb = fg.interior_extent();
#pragma omp parallel for collapse(2) schedule(static)
    for (index_t bz = 0; bz < nb.z; ++bz) {
      for (index_t by = 0; by < nb.y; ++by) {
        for (index_t bx = 0; bx < nb.x; ++bx) {
          const std::int32_t fid = fg.storage_id({bx, by, bz});
          const std::int32_t cid = cg.storage_id({bx / 2, by / 2, bz / 2});
          GMG_ASSERT(fid >= 0 && cid >= 0);
          const index_t ox = (bx % 2) * (BD::bx / 2);
          const index_t oy = (by % 2) * (BD::by / 2);
          const index_t oz = (bz % 2) * (BD::bz / 2);
          real_t* fb = fp + static_cast<std::size_t>(fid) * BD::volume;
          const real_t* cb = cp + static_cast<std::size_t>(cid) * BD::volume;
          for (index_t lk = 0; lk < BD::bz; ++lk) {
            for (index_t lj = 0; lj < BD::by; ++lj) {
              real_t* frow = fb + (lk * BD::by + lj) * BD::bx;
              const real_t* crow =
                  cb + ((oz + lk / 2) * BD::by + (oy + lj / 2)) * BD::bx + ox;
#pragma omp simd
              for (index_t li = 0; li < BD::bx; ++li) {
                frow[li] = crow[li / 2];
              }
            }
          }
        }
      }
    }
  });
}

void interpolation_trilinear_assign(BrickedArray& fine,
                                    const BrickedArray& coarse) {
  const Vec3 fe = fine.extent(), ce = coarse.extent();
  GMG_REQUIRE(fe.x == 2 * ce.x && fe.y == 2 * ce.y && fe.z == 2 * ce.z,
              "fine extent must be twice the coarse extent");
  // Element-accessor implementation: this transfer runs once per FMG
  // level, not in the V-cycle hot path.
  const Box interior = Box::from_extent(fe);
#pragma omp parallel for collapse(2) schedule(static)
  for (index_t k = interior.lo.z; k < interior.hi.z; ++k) {
    for (index_t j = interior.lo.y; j < interior.hi.y; ++j) {
      for (index_t i = interior.lo.x; i < interior.hi.x; ++i) {
        const index_t ci = floor_div(i, 2), cj = floor_div(j, 2),
                      ck = floor_div(k, 2);
        // Neighbor side per axis: a fine cell sits 1/4 coarse cell off
        // its parent's center, toward -1 for even indices, +1 for odd.
        const index_t si = (i % 2 == 0) ? -1 : 1;
        const index_t sj = (j % 2 == 0) ? -1 : 1;
        const index_t sk = (k % 2 == 0) ? -1 : 1;
        real_t v = 0;
        for (int dz = 0; dz < 2; ++dz) {
          for (int dy = 0; dy < 2; ++dy) {
            for (int dx = 0; dx < 2; ++dx) {
              const real_t w = (dx ? 0.25 : 0.75) * (dy ? 0.25 : 0.75) *
                               (dz ? 0.25 : 0.75);
              v += w * coarse(ci + dx * si, cj + dy * sj, ck + dz * sk);
            }
          }
        }
        fine(i, j, k) = v;
      }
    }
  }
}

real_t max_norm(const BrickedArray& a) {
  real_t m = 0.0;
  with_brick_dims(a.shape(), [&](auto bd) {
    using BD = decltype(bd);
    const BrickGrid& grid = a.grid();
    const real_t* __restrict p = a.data();
    // Interior bricks occupy storage ids [0, num_interior) — scan them
    // as one flat range.
    const std::size_t n =
        static_cast<std::size_t>(grid.num_interior()) * BD::volume;
    real_t local = 0.0;
#pragma omp parallel for schedule(static) reduction(max : local)
    for (std::size_t i = 0; i < n; ++i) {
      local = std::max(local, std::abs(p[i]));
    }
    m = local;
  });
  return m;
}

}  // namespace gmg
