#include "gmg/operators.hpp"

#include <cmath>
#include <cstring>
#include <optional>

#include "brick/brick_mask.hpp"
#include "brick/brick_plan.hpp"
#include "check/shadow.hpp"
#include "dsl/apply_brick.hpp"
#include "dsl/stencils.hpp"
#include "exec/runtime.hpp"
#include "trace/trace.hpp"

namespace gmg {

namespace {

/// Tally a kernel's floating-point work so the trace metrics sink can
/// report achieved flop counts next to the measured span durations.
inline void count_flops(std::uint64_t pts, std::uint64_t flops_per_pt) {
  trace::counter_add("gmg.flops", pts * flops_per_pt);
}

inline std::uint64_t box_points(const Box& b) {
  return static_cast<std::uint64_t>(b.volume());
}

/// Visit the contiguous rows of `active` clipped to each brick:
/// fn(flat_base_index, ilo, ihi) where the row occupies
/// [flat_base_index + ilo, flat_base_index + ihi). Full bricks of the
/// cached iteration plan collapse to ONE call covering the whole brick
/// (base, 0, BD::volume) — element-wise kernels don't care about row
/// structure, so the straight-line loop replaces bz*by row calls.
template <typename BD, typename Fn>
void for_each_row_plan(BD, const char* name, const BrickIterPlan& plan,
                       Fn&& fn) {
  for_each_plan_brick<BD>(name, plan, [&](const BrickPlanItem& it,
                                          auto full) {
    const std::size_t brick_base = static_cast<std::size_t>(it.id) * BD::volume;
    if constexpr (decltype(full)::value) {
      fn(brick_base, index_t{0}, static_cast<index_t>(BD::volume));
    } else {
      for (index_t lk = it.klo; lk < it.khi; ++lk) {
        for (index_t lj = it.jlo; lj < it.jhi; ++lj) {
          fn(brick_base +
                 static_cast<std::size_t>((lk * BD::by + lj) * BD::bx),
             static_cast<index_t>(it.ilo), static_cast<index_t>(it.ihi));
        }
      }
    }
  });
}

template <typename BD, typename Fn>
void for_each_row(BD, const char* name, const BrickGrid& grid,
                  const Box& active, Fn&& fn) {
  const auto plan = grid.iteration_plan(active, Vec3{BD::bx, BD::by, BD::bz});
  for_each_row_plan(BD{}, name, *plan, fn);
}

/// The brick-coordinate cover of the taps of `active` at stencil
/// `radius` must lie within the grid (the active region grown by the
/// radius, in bricks).
template <typename BD>
void require_taps_in_grid(BD, const BrickGrid& grid, const Box& active,
                          index_t radius) {
  const Box tap_region{{floor_div(active.lo.x - radius, BD::bx),
                        floor_div(active.lo.y - radius, BD::by),
                        floor_div(active.lo.z - radius, BD::bz)},
                       {floor_div(active.hi.x - 1 + radius, BD::bx) + 1,
                        floor_div(active.hi.y - 1 + radius, BD::by) + 1,
                        floor_div(active.hi.z - 1 + radius, BD::bz) + 1}};
  GMG_REQUIRE(grid.extended_box().covers(tap_region),
              "stencil taps reach beyond the ghost bricks");
}

}  // namespace

namespace {

/// Specialized 7-point star kernel — the code BrickLib's vector code
/// generator would emit for Fig. 1's DSL input. Per output row, the
/// six neighbor rows are resolved to direct pointers once (crossing
/// into adjacent bricks where needed); the row body is then a pure
/// unit-stride SIMD loop with scalar patch-ups only at the two
/// x-boundary cells. The generic DSL engine (dsl::apply) remains the
/// fallback for arbitrary stencils. Full bricks of the iteration plan
/// instantiate the body with compile-time whole-brick bounds.
template <typename BD>
void apply_op_7pt(BD, BrickedArray& Ax, const BrickedArray& x, real_t alpha,
                  real_t beta, const Box& active,
                  const BrickMask* mask = nullptr) {
  const BrickGrid& grid = x.grid();
  GMG_REQUIRE(&Ax.grid() == &grid, "fields must share a brick grid");
  const real_t* __restrict xp = x.data();
  real_t* __restrict op = Ax.data();

  require_taps_in_grid(BD{}, grid, active, 1);
  const auto plan =
      grid.iteration_plan(active, Vec3{BD::bx, BD::by, BD::bz}, mask);

  for_each_plan_brick<BD>("kernel.applyOp", *plan, [&](const BrickPlanItem& it,
                                                       auto full) {
    constexpr bool kFull = decltype(full)::value;
    const auto& adj = it.adj;
    const auto brick_of = [&](int dx, int dy, int dz) {
      const std::int32_t b = adj[direction_index(dx, dy, dz)];
      GMG_ASSERT(b >= 0);
      return xp + static_cast<std::size_t>(b) * BD::volume;
    };
    const real_t* __restrict xb = xp + static_cast<std::size_t>(it.id) *
                                           BD::volume;
    real_t* __restrict ob = op + static_cast<std::size_t>(it.id) * BD::volume;

    const index_t ilo = kFull ? 0 : it.ilo;
    const index_t ihi = kFull ? BD::bx : it.ihi;
    const index_t jlo = kFull ? 0 : it.jlo;
    const index_t jhi = kFull ? BD::by : it.jhi;
    const index_t klo = kFull ? 0 : it.klo;
    const index_t khi = kFull ? BD::bz : it.khi;

    constexpr index_t kRow = BD::bx;
    constexpr index_t kPlane = BD::bx * BD::by;
    const auto row_at = [&](const real_t* brick, index_t lj, index_t lk) {
      return brick + lk * kPlane + lj * kRow;
    };

    for (index_t lk = klo; lk < khi; ++lk) {
      for (index_t lj = jlo; lj < jhi; ++lj) {
        const real_t* __restrict xr = row_at(xb, lj, lk);
        const real_t* __restrict ym =
            lj > 0 ? row_at(xb, lj - 1, lk)
                   : row_at(brick_of(0, -1, 0), BD::by - 1, lk);
        const real_t* __restrict yp =
            lj < BD::by - 1 ? row_at(xb, lj + 1, lk)
                            : row_at(brick_of(0, 1, 0), 0, lk);
        const real_t* __restrict zm =
            lk > 0 ? row_at(xb, lj, lk - 1)
                   : row_at(brick_of(0, 0, -1), lj, BD::bz - 1);
        const real_t* __restrict zp =
            lk < BD::bz - 1 ? row_at(xb, lj, lk + 1)
                            : row_at(brick_of(0, 0, 1), lj, 0);
        real_t* __restrict orow = ob + lk * kPlane + lj * kRow;

        // One SIMD core over [max(ilo,1), min(ihi,B-1)) plus
        // scalar patch-ups at the two x-boundary cells. The tap
        // summation order (xm + xp + ym + yp + zm + zp) is kept
        // IDENTICAL between core and patches so that cells
        // computed redundantly in ghost bricks (communication-
        // avoiding sweeps) are bitwise equal to the owning rank's
        // interior computation.
        const index_t core_lo = kFull ? 1 : std::max<index_t>(ilo, 1);
        const index_t core_hi =
            kFull ? BD::bx - 1 : std::min<index_t>(ihi, BD::bx - 1);
#pragma omp simd
        for (index_t li = core_lo; li < core_hi; ++li) {
          orow[li] = alpha * xr[li] +
                     beta * (xr[li - 1] + xr[li + 1] + ym[li] + yp[li] +
                             zm[li] + zp[li]);
        }
        if (kFull || ilo == 0) {
          const real_t xm = row_at(brick_of(-1, 0, 0), lj, lk)[BD::bx - 1];
          orow[0] = alpha * xr[0] +
                    beta * (xm + xr[1] + ym[0] + yp[0] + zm[0] + zp[0]);
        }
        if (kFull || ihi == BD::bx) {
          constexpr index_t e = BD::bx - 1;
          const real_t xpv = row_at(brick_of(1, 0, 0), lj, lk)[0];
          orow[e] = alpha * xr[e] +
                    beta * (xr[e - 1] + xpv + ym[e] + yp[e] + zm[e] + zp[e]);
        }
      }
    }
  });
}

}  // namespace

void apply_op(BrickedArray& Ax, const BrickedArray& x, real_t alpha,
              real_t beta, const Box& active) {
  // 7-point star: 2 multiplies + 6 adds per output cell.
  trace::TraceSpan span("kernel.applyOp");
  count_flops(box_points(active), 8);
  const auto scope = check::scope_if_enabled(
      "kernel.applyOp", {check::access(Ax, active)},
      {check::access(x, grow(active, 1))});
  with_brick_dims(x.shape(), [&](auto bd) {
    apply_op_7pt(bd, Ax, x, alpha, beta, active);
  });
}

void apply_op(BrickedArray& Ax, const BrickedArray& x, real_t alpha,
              real_t beta, const Box& active, const BrickMask& mask) {
  // Masked variant (AMR composite levels): only bricks selected by
  // `mask` are computed; taps may still read de-selected neighbor
  // bricks, which on a composite level hold the restricted fine
  // solution. Write/read declarations stay the conservative active
  // box — the shadow tracker needs no mask awareness.
  trace::TraceSpan span("kernel.applyOpMasked");
  count_flops(box_points(active), 8);
  const auto scope = check::scope_if_enabled(
      "kernel.applyOpMasked", {check::access(Ax, active)},
      {check::access(x, grow(active, 1))});
  with_brick_dims(x.shape(), [&](auto bd) {
    apply_op_7pt(bd, Ax, x, alpha, beta, active, &mask);
  });
}

void smooth(BrickedArray& x, const BrickedArray& Ax, const BrickedArray& b,
            real_t gamma, const Box& active) {
  trace::TraceSpan span("kernel.smooth");
  count_flops(box_points(active), 3);
  const auto scope = check::scope_if_enabled(
      "kernel.smooth", {check::access(x, active)},
      {check::access(Ax, active), check::access(b, active)});
  with_brick_dims(x.shape(), [&](auto bd) {
    real_t* __restrict xp = x.data();
    const real_t* __restrict axp = Ax.data();
    const real_t* __restrict bp = b.data();
    for_each_row(bd, "kernel.smooth", x.grid(), active,
                 [&](std::size_t o, index_t ilo, index_t ihi) {
#pragma omp simd
                   for (index_t i = ilo; i < ihi; ++i) {
                     xp[o + i] += gamma * (axp[o + i] - bp[o + i]);
                   }
                 });
  });
}

void smooth_residual(BrickedArray& x, BrickedArray& r, const BrickedArray& Ax,
                     const BrickedArray& b, real_t gamma, const Box& active) {
  trace::TraceSpan span("kernel.smoothResidual");
  count_flops(box_points(active), 4);
  const auto scope = check::scope_if_enabled(
      "kernel.smoothResidual",
      {check::access(x, active), check::access(r, active)},
      {check::access(Ax, active), check::access(b, active)});
  with_brick_dims(x.shape(), [&](auto bd) {
    real_t* __restrict xp = x.data();
    real_t* __restrict rp = r.data();
    const real_t* __restrict axp = Ax.data();
    const real_t* __restrict bp = b.data();
    for_each_row(bd, "kernel.smoothResidual", x.grid(), active,
                 [&](std::size_t o, index_t ilo, index_t ihi) {
#pragma omp simd
                   for (index_t i = ilo; i < ihi; ++i) {
                     const real_t ax = axp[o + i];
                     const real_t rhs = bp[o + i];
                     rp[o + i] = rhs - ax;
                     xp[o + i] += gamma * (ax - rhs);
                   }
                 });
  });
}

void residual(BrickedArray& r, const BrickedArray& b, const BrickedArray& Ax,
              const Box& active) {
  trace::TraceSpan span("kernel.residual");
  count_flops(box_points(active), 1);
  const auto scope = check::scope_if_enabled(
      "kernel.residual", {check::access(r, active)},
      {check::access(b, active), check::access(Ax, active)});
  with_brick_dims(r.shape(), [&](auto bd) {
    real_t* __restrict rp = r.data();
    const real_t* __restrict axp = Ax.data();
    const real_t* __restrict bp = b.data();
    for_each_row(bd, "kernel.residual", r.grid(), active,
                 [&](std::size_t o, index_t ilo, index_t ihi) {
#pragma omp simd
                   for (index_t i = ilo; i < ihi; ++i) {
                     rp[o + i] = bp[o + i] - axp[o + i];
                   }
                 });
  });
}

void residual(BrickedArray& r, const BrickedArray& b, const BrickedArray& Ax,
              const Box& active, const BrickMask& mask) {
  trace::TraceSpan span("kernel.residualMasked");
  count_flops(box_points(active), 1);
  const auto scope = check::scope_if_enabled(
      "kernel.residualMasked", {check::access(r, active)},
      {check::access(b, active), check::access(Ax, active)});
  with_brick_dims(r.shape(), [&](auto bd) {
    using BD = decltype(bd);
    real_t* __restrict rp = r.data();
    const real_t* __restrict axp = Ax.data();
    const real_t* __restrict bp = b.data();
    const auto plan =
        r.grid().iteration_plan(active, Vec3{BD::bx, BD::by, BD::bz}, &mask);
    for_each_row_plan(bd, "kernel.residualMasked", *plan,
                      [&](std::size_t o, index_t ilo, index_t ihi) {
#pragma omp simd
                        for (index_t i = ilo; i < ihi; ++i) {
                          rp[o + i] = bp[o + i] - axp[o + i];
                        }
                      });
  });
}

void restriction(BrickedArray& coarse, const BrickedArray& fine) {
  const Vec3 fe = fine.extent(), ce = coarse.extent();
  GMG_REQUIRE(fe.x == 2 * ce.x && fe.y == 2 * ce.y && fe.z == 2 * ce.z,
              "fine extent must be twice the coarse extent");
  // Full-weighting of a 2x2x2 cell block: 7 adds + 1 multiply.
  trace::TraceSpan span("kernel.restriction");
  count_flops(static_cast<std::uint64_t>(ce.x) * ce.y * ce.z, 8);
  GMG_REQUIRE(fine.shape() == coarse.shape(),
              "restriction assumes equal brick shapes on both levels");
  const auto scope = check::scope_if_enabled(
      "kernel.restriction", {check::access(coarse, Box::from_extent(ce))},
      {check::access(fine, Box::from_extent(fe))});
  with_brick_dims(fine.shape(), [&](auto bd) {
    using BD = decltype(bd);
    static_assert(BD::bx % 2 == 0 && BD::by % 2 == 0 && BD::bz % 2 == 0);
    const BrickGrid& fg = fine.grid();
    const BrickGrid& cg = coarse.grid();
    const real_t* __restrict fp = fine.data();
    real_t* __restrict cp = coarse.data();
    // Interior fine bricks are ids [0, num_interior) in lexicographic
    // order; eight fine bricks write disjoint octants of one coarse
    // brick, so any chunking is race-free.
    exec::parallel_for(
        "kernel.restriction", fg.num_interior(), exec::brick_grain(BD::volume),
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t fid = lo; fid < hi; ++fid) {
            const Vec3 bc = fg.coord_of(static_cast<std::int32_t>(fid));
            const index_t bx = bc.x, by = bc.y, bz = bc.z;
            const std::int32_t cid = cg.storage_id({bx / 2, by / 2, bz / 2});
            GMG_ASSERT(cid >= 0);
            // In-coarse-brick base offset of this fine brick's image.
            const index_t ox = (bx % 2) * (BD::bx / 2);
            const index_t oy = (by % 2) * (BD::by / 2);
            const index_t oz = (bz % 2) * (BD::bz / 2);
            const real_t* fb = fp + static_cast<std::size_t>(fid) * BD::volume;
            real_t* cb = cp + static_cast<std::size_t>(cid) * BD::volume;
            for (index_t lk = 0; lk < BD::bz; lk += 2) {
              for (index_t lj = 0; lj < BD::by; lj += 2) {
                const real_t* r0 = fb + (lk * BD::by + lj) * BD::bx;
                const real_t* r1 = r0 + BD::bx;           // j+1
                const real_t* r2 = r0 + BD::by * BD::bx;  // k+1
                const real_t* r3 = r2 + BD::bx;           // j+1, k+1
                real_t* crow = cb +
                               ((oz + lk / 2) * BD::by + (oy + lj / 2)) *
                                   BD::bx +
                               ox;
#pragma omp simd
                for (index_t li = 0; li < BD::bx / 2; ++li) {
                  const index_t f = 2 * li;
                  crow[li] = 0.125 * (r0[f] + r0[f + 1] + r1[f] + r1[f + 1] +
                                      r2[f] + r2[f + 1] + r3[f] + r3[f + 1]);
                }
              }
            }
          }
        });
  });
}

void interpolation_increment(BrickedArray& fine, const BrickedArray& coarse) {
  const Vec3 fe = fine.extent(), ce = coarse.extent();
  GMG_REQUIRE(fe.x == 2 * ce.x && fe.y == 2 * ce.y && fe.z == 2 * ce.z,
              "fine extent must be twice the coarse extent");
  trace::TraceSpan span("kernel.interpIncrement");
  count_flops(static_cast<std::uint64_t>(fe.x) * fe.y * fe.z, 1);
  GMG_REQUIRE(fine.shape() == coarse.shape(),
              "interpolation assumes equal brick shapes on both levels");
  const auto scope = check::scope_if_enabled(
      "kernel.interpIncrement", {check::access(fine, Box::from_extent(fe))},
      {check::access(coarse, Box::from_extent(ce))});
  with_brick_dims(fine.shape(), [&](auto bd) {
    using BD = decltype(bd);
    const BrickGrid& fg = fine.grid();
    const BrickGrid& cg = coarse.grid();
    real_t* __restrict fp = fine.data();
    const real_t* __restrict cp = coarse.data();
    exec::parallel_for(
        "kernel.interpIncrement", fg.num_interior(),
        exec::brick_grain(BD::volume), [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t fid = lo; fid < hi; ++fid) {
            const Vec3 bc = fg.coord_of(static_cast<std::int32_t>(fid));
            const index_t bx = bc.x, by = bc.y, bz = bc.z;
            const std::int32_t cid = cg.storage_id({bx / 2, by / 2, bz / 2});
            GMG_ASSERT(cid >= 0);
            const index_t ox = (bx % 2) * (BD::bx / 2);
            const index_t oy = (by % 2) * (BD::by / 2);
            const index_t oz = (bz % 2) * (BD::bz / 2);
            real_t* fb = fp + static_cast<std::size_t>(fid) * BD::volume;
            const real_t* cb = cp + static_cast<std::size_t>(cid) * BD::volume;
            for (index_t lk = 0; lk < BD::bz; ++lk) {
              for (index_t lj = 0; lj < BD::by; ++lj) {
                real_t* frow = fb + (lk * BD::by + lj) * BD::bx;
                const real_t* crow =
                    cb +
                    ((oz + lk / 2) * BD::by + (oy + lj / 2)) * BD::bx + ox;
#pragma omp simd
                for (index_t li = 0; li < BD::bx; ++li) {
                  frow[li] += crow[li / 2];
                }
              }
            }
          }
        });
  });
}

void gs_color_sweep(BrickedArray& x, const BrickedArray& b, real_t alpha,
                    real_t beta, int color, Vec3 origin, const Box& active) {
  GMG_REQUIRE(color == 0 || color == 1, "color must be 0 (red) or 1 (black)");
  // One checkerboard color updates half the cells; ~9 flops each
  // (6 adds, 1 multiply, 1 subtract, 1 divide).
  trace::TraceSpan span("kernel.gsColorSweep");
  count_flops(box_points(active) / 2, 9);
  const auto scope = check::scope_if_enabled(
      "kernel.gsColorSweep", {check::access(x, active)},
      {check::access(x, grow(active, 1)), check::access(b, active)});
  with_brick_dims(x.shape(), [&](auto bd) {
    using BD = decltype(bd);
    const BrickGrid& grid = x.grid();
    GMG_REQUIRE(&b.grid() == &grid, "fields must share a brick grid");
    real_t* __restrict xp = x.data();
    const real_t* __restrict bp = b.data();

    require_taps_in_grid(bd, grid, active, 1);
    const auto plan =
        grid.iteration_plan(active, Vec3{BD::bx, BD::by, BD::bz});

    // Same-color cells never neighbor each other on the checkerboard,
    // so bricks (and cells within a color) can update concurrently.
    for_each_plan_brick<BD>(
        "kernel.gsColorSweep", *plan, [&](const BrickPlanItem& it, auto full) {
          constexpr bool kFull = decltype(full)::value;
          const auto& adj = it.adj;
          const auto brick_of = [&](int dx, int dy, int dz) {
            const std::int32_t nb = adj[direction_index(dx, dy, dz)];
            GMG_ASSERT(nb >= 0);
            return xp + static_cast<std::size_t>(nb) * BD::volume;
          };
          real_t* __restrict xb =
              xp + static_cast<std::size_t>(it.id) * BD::volume;
          const real_t* __restrict bb =
              bp + static_cast<std::size_t>(it.id) * BD::volume;

          const Vec3 c = it.coord;
          const index_t cx = c.x * BD::bx, cy = c.y * BD::by,
                        cz = c.z * BD::bz;
          const index_t ilo = kFull ? 0 : it.ilo;
          const index_t ihi = kFull ? BD::bx : it.ihi;
          const index_t jlo = kFull ? 0 : it.jlo;
          const index_t jhi = kFull ? BD::by : it.jhi;
          const index_t klo = kFull ? 0 : it.klo;
          const index_t khi = kFull ? BD::bz : it.khi;

          constexpr index_t kRow = BD::bx;
          constexpr index_t kPlane = BD::bx * BD::by;
          const auto row_at = [&](const real_t* brick, index_t lj,
                                  index_t lk) {
            return brick + lk * kPlane + lj * kRow;
          };

          for (index_t lk = klo; lk < khi; ++lk) {
            for (index_t lj = jlo; lj < jhi; ++lj) {
              real_t* __restrict xr = xb + lk * kPlane + lj * kRow;
              const real_t* __restrict br = bb + lk * kPlane + lj * kRow;
              const real_t* __restrict ym =
                  lj > 0 ? row_at(xb, lj - 1, lk)
                         : row_at(brick_of(0, -1, 0), BD::by - 1, lk);
              const real_t* __restrict yprow =
                  lj < BD::by - 1 ? row_at(xb, lj + 1, lk)
                                  : row_at(brick_of(0, 1, 0), 0, lk);
              const real_t* __restrict zm =
                  lk > 0 ? row_at(xb, lj, lk - 1)
                         : row_at(brick_of(0, 0, -1), lj, BD::bz - 1);
              const real_t* __restrict zprow =
                  lk < BD::bz - 1 ? row_at(xb, lj, lk + 1)
                                  : row_at(brick_of(0, 0, 1), lj, 0);
              // Global parity of the first active cell in this row.
              const index_t row_parity =
                  (origin.x + cx + origin.y + cy + lj + origin.z + cz + lk) &
                  1;
              index_t first = ilo + (((color - row_parity - ilo) % 2) + 2) % 2;
              for (index_t li = first; li < ihi; li += 2) {
                const real_t xm =
                    li > 0 ? xr[li - 1]
                           : row_at(brick_of(-1, 0, 0), lj, lk)[BD::bx - 1];
                const real_t xpv =
                    li < BD::bx - 1 ? xr[li + 1]
                                    : row_at(brick_of(1, 0, 0), lj, lk)[0];
                xr[li] = (br[li] - beta * (xm + xpv + ym[li] + yprow[li] +
                                           zm[li] + zprow[li])) /
                         alpha;
              }
            }
          }
        });
  });
}

void init_zero(BrickedArray& a) {
  // Writes every brick of the storage, ghosts included.
  std::optional<check::KernelScope> scope;
  if (check::enabled()) {
    const Box bricks = a.grid().extended_box();
    const Vec3 d = a.shape().dims();
    const Box cells{{bricks.lo.x * d.x, bricks.lo.y * d.y, bricks.lo.z * d.z},
                    {bricks.hi.x * d.x, bricks.hi.y * d.y, bricks.hi.z * d.z}};
    scope.emplace("kernel.initZero",
                  std::vector<check::Access>{check::access(a, cells)},
                  std::vector<check::Access>{});
  }
  real_t* __restrict p = a.data();
  exec::parallel_for("kernel.initZero", static_cast<std::int64_t>(a.size()),
                     exec::kElementGrain, [&](std::int64_t lo, std::int64_t hi) {
                       std::memset(p + lo, 0,
                                   static_cast<std::size_t>(hi - lo) *
                                       sizeof(real_t));
                     });
}

namespace {

/// Contiguous interior storage range (interior bricks are ids
/// [0, num_interior), each brick one dense block).
std::int64_t interior_span(const BrickedArray& a) {
  return static_cast<std::int64_t>(a.grid().num_interior()) *
         static_cast<std::int64_t>(a.shape().volume());
}

}  // namespace

namespace detail {

real_t sum_sq_range(const real_t* p, std::int64_t n) {
  real_t sum = 0.0;
#pragma omp simd reduction(+ : sum)
  for (std::int64_t i = 0; i < n; ++i) sum += p[i] * p[i];
  return sum;
}

real_t dot_range(const real_t* a, const real_t* b, std::int64_t n) {
  real_t sum = 0.0;
#pragma omp simd reduction(+ : sum)
  for (std::int64_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace detail

real_t norm2_sq(const BrickedArray& a) {
  const real_t* __restrict p = a.data();
  // Chunked tree reduction: per-chunk partial sums combined in fixed
  // chunk order — bitwise reproducible at any worker count. The chunk
  // body lives in detail:: so the batched per-component reduction can
  // run the identical compiled loop.
  return exec::parallel_reduce_sum<real_t>(
      "kernel.norm2", interior_span(a), exec::kElementGrain,
      [&](std::int64_t lo, std::int64_t hi) {
        return detail::sum_sq_range(p + lo, hi - lo);
      });
}

real_t dot_interior(const BrickedArray& a, const BrickedArray& b) {
  GMG_REQUIRE(&a.grid() == &b.grid(), "fields must share a brick grid");
  const real_t* __restrict pa = a.data();
  const real_t* __restrict pb = b.data();
  return exec::parallel_reduce_sum<real_t>(
      "kernel.dot", interior_span(a), exec::kElementGrain,
      [&](std::int64_t lo, std::int64_t hi) {
        return detail::dot_range(pa + lo, pb + lo, hi - lo);
      });
}

void axpy_interior(BrickedArray& y, real_t alpha, const BrickedArray& x) {
  GMG_REQUIRE(&y.grid() == &x.grid(), "fields must share a brick grid");
  real_t* __restrict py = y.data();
  const real_t* __restrict px = x.data();
  exec::parallel_for("kernel.axpy", interior_span(y), exec::kElementGrain,
                     [&](std::int64_t lo, std::int64_t hi) {
#pragma omp simd
                       for (std::int64_t i = lo; i < hi; ++i)
                         py[i] += alpha * px[i];
                     });
}

void xpay_interior(BrickedArray& y, const BrickedArray& x, real_t beta) {
  GMG_REQUIRE(&y.grid() == &x.grid(), "fields must share a brick grid");
  real_t* __restrict py = y.data();
  const real_t* __restrict px = x.data();
  exec::parallel_for("kernel.xpay", interior_span(y), exec::kElementGrain,
                     [&](std::int64_t lo, std::int64_t hi) {
#pragma omp simd
                       for (std::int64_t i = lo; i < hi; ++i)
                         py[i] = px[i] + beta * py[i];
                     });
}

void copy_interior(BrickedArray& dst, const BrickedArray& src) {
  GMG_REQUIRE(&dst.grid() == &src.grid(), "fields must share a brick grid");
  real_t* __restrict pd = dst.data();
  const real_t* __restrict ps = src.data();
  exec::parallel_for("kernel.copy", interior_span(dst), exec::kElementGrain,
                     [&](std::int64_t lo, std::int64_t hi) {
                       std::memcpy(pd + lo, ps + lo,
                                   static_cast<std::size_t>(hi - lo) *
                                       sizeof(real_t));
                     });
}

void axpy(BrickedArray& y, real_t alpha, const BrickedArray& x,
          const Box& active) {
  const auto scope = check::scope_if_enabled("kernel.axpyActive",
                                             {check::access(y, active)},
                                             {check::access(x, active)});
  with_brick_dims(y.shape(), [&](auto bd) {
    real_t* __restrict py = y.data();
    const real_t* __restrict px = x.data();
    for_each_row(bd, "kernel.axpyActive", y.grid(), active,
                 [&](std::size_t o, index_t ilo, index_t ihi) {
#pragma omp simd
                   for (index_t i = ilo; i < ihi; ++i) {
                     py[o + i] += alpha * px[o + i];
                   }
                 });
  });
}

void cheby_p_update(BrickedArray& p, const BrickedArray& r, real_t inv_diag,
                    real_t beta, const Box& active) {
  const auto scope = check::scope_if_enabled("kernel.chebyP",
                                             {check::access(p, active)},
                                             {check::access(r, active)});
  with_brick_dims(p.shape(), [&](auto bd) {
    real_t* __restrict pp = p.data();
    const real_t* __restrict pr = r.data();
    for_each_row(bd, "kernel.chebyP", p.grid(), active,
                 [&](std::size_t o, index_t ilo, index_t ihi) {
#pragma omp simd
                   for (index_t i = ilo; i < ihi; ++i) {
                     pp[o + i] = inv_diag * pr[o + i] + beta * pp[o + i];
                   }
                 });
  });
}

void interpolation_assign(BrickedArray& fine, const BrickedArray& coarse) {
  const Vec3 fe = fine.extent(), ce = coarse.extent();
  GMG_REQUIRE(fe.x == 2 * ce.x && fe.y == 2 * ce.y && fe.z == 2 * ce.z,
              "fine extent must be twice the coarse extent");
  GMG_REQUIRE(fine.shape() == coarse.shape(),
              "interpolation assumes equal brick shapes on both levels");
  const auto scope = check::scope_if_enabled(
      "kernel.interpAssign", {check::access(fine, Box::from_extent(fe))},
      {check::access(coarse, Box::from_extent(ce))});
  with_brick_dims(fine.shape(), [&](auto bd) {
    using BD = decltype(bd);
    const BrickGrid& fg = fine.grid();
    const BrickGrid& cg = coarse.grid();
    real_t* __restrict fp = fine.data();
    const real_t* __restrict cp = coarse.data();
    exec::parallel_for(
        "kernel.interpAssign", fg.num_interior(),
        exec::brick_grain(BD::volume), [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t fid = lo; fid < hi; ++fid) {
            const Vec3 bc = fg.coord_of(static_cast<std::int32_t>(fid));
            const index_t bx = bc.x, by = bc.y, bz = bc.z;
            const std::int32_t cid = cg.storage_id({bx / 2, by / 2, bz / 2});
            GMG_ASSERT(cid >= 0);
            const index_t ox = (bx % 2) * (BD::bx / 2);
            const index_t oy = (by % 2) * (BD::by / 2);
            const index_t oz = (bz % 2) * (BD::bz / 2);
            real_t* fb = fp + static_cast<std::size_t>(fid) * BD::volume;
            const real_t* cb = cp + static_cast<std::size_t>(cid) * BD::volume;
            for (index_t lk = 0; lk < BD::bz; ++lk) {
              for (index_t lj = 0; lj < BD::by; ++lj) {
                real_t* frow = fb + (lk * BD::by + lj) * BD::bx;
                const real_t* crow =
                    cb +
                    ((oz + lk / 2) * BD::by + (oy + lj / 2)) * BD::bx + ox;
#pragma omp simd
                for (index_t li = 0; li < BD::bx; ++li) {
                  frow[li] = crow[li / 2];
                }
              }
            }
          }
        });
  });
}

void interpolation_trilinear_assign(BrickedArray& fine,
                                    const BrickedArray& coarse) {
  const Vec3 fe = fine.extent(), ce = coarse.extent();
  GMG_REQUIRE(fe.x == 2 * ce.x && fe.y == 2 * ce.y && fe.z == 2 * ce.z,
              "fine extent must be twice the coarse extent");
  // Element-accessor implementation: this transfer runs once per FMG
  // level, not in the V-cycle hot path. Chunked over k-planes (each
  // fine cell writes only its own plane).
  const Box interior = Box::from_extent(fe);
  const auto scope = check::scope_if_enabled(
      "kernel.interpTrilinear", {check::access(fine, interior)},
      {check::access(coarse, grow(Box::from_extent(ce), 1))});
  exec::parallel_for(
      "kernel.interpTrilinear", fe.z, 1, [&](std::int64_t klo, std::int64_t khi) {
        for (index_t k = static_cast<index_t>(klo);
             k < static_cast<index_t>(khi); ++k) {
          for (index_t j = interior.lo.y; j < interior.hi.y; ++j) {
            for (index_t i = interior.lo.x; i < interior.hi.x; ++i) {
              const index_t ci = floor_div(i, 2), cj = floor_div(j, 2),
                            ck = floor_div(k, 2);
              // Neighbor side per axis: a fine cell sits 1/4 coarse cell
              // off its parent's center, toward -1 for even indices, +1
              // for odd.
              const index_t si = (i % 2 == 0) ? -1 : 1;
              const index_t sj = (j % 2 == 0) ? -1 : 1;
              const index_t sk = (k % 2 == 0) ? -1 : 1;
              real_t v = 0;
              for (int dz = 0; dz < 2; ++dz) {
                for (int dy = 0; dy < 2; ++dy) {
                  for (int dx = 0; dx < 2; ++dx) {
                    const real_t w = (dx ? 0.25 : 0.75) * (dy ? 0.25 : 0.75) *
                                     (dz ? 0.25 : 0.75);
                    v += w * coarse(ci + dx * si, cj + dy * sj, ck + dz * sk);
                  }
                }
              }
              fine(i, j, k) = v;
            }
          }
        }
      });
}

real_t max_norm(const BrickedArray& a) {
  real_t m = 0.0;
  with_brick_dims(a.shape(), [&](auto bd) {
    using BD = decltype(bd);
    const BrickGrid& grid = a.grid();
    const real_t* __restrict p = a.data();
    // Interior bricks occupy storage ids [0, num_interior) — scan them
    // as one flat range.
    const std::int64_t n =
        static_cast<std::int64_t>(grid.num_interior()) * BD::volume;
    m = exec::parallel_reduce_max<real_t>(
        "kernel.maxNorm", n, exec::kElementGrain,
        [&](std::int64_t lo, std::int64_t hi) {
          real_t local = 0.0;
#pragma omp simd reduction(max : local)
          for (std::int64_t i = lo; i < hi; ++i) {
            local = std::max(local, std::abs(p[i]));
          }
          return local;
        });
  });
  return m;
}

}  // namespace gmg
