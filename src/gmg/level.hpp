// One level of the multigrid hierarchy: geometry, fields, stencil
// coefficients, and the exchange engine for this rank's subdomain.
#pragma once

#include <memory>

#include "brick/bricked_array.hpp"
#include "comm/exchange.hpp"
#include "common/types.hpp"
#include "gmg/kernel_plan.hpp"
#include "mesh/decomposition.hpp"

namespace gmg {

struct MgLevel {
  int level = 0;     // 0 = finest
  real_t h = 0;      // grid spacing
  Vec3 cells;        // subdomain interior extent at this level
  Vec3 global;       // global extent at this level
  Box rank_box;      // this rank's box in global cell coordinates
  BrickShape shape;

  // Stencil coefficients (paper §IV-C): A = alpha*center + beta*faces,
  // Jacobi weight gamma. For the 4th-order operator (radius 2) the
  // face taps split into distance-1 (beta) and distance-2 (beta2)
  // coefficients.
  real_t alpha = 0, beta = 0, beta2 = 0, gamma = 0;
  int radius = 1;

  std::shared_ptr<const BrickGrid> grid;
  BrickedArray x;   // solution / correction
  BrickedArray b;   // right-hand side
  BrickedArray Ax;  // operator application scratch
  BrickedArray r;   // residual
  BrickedArray p;   // Chebyshev/CG direction (allocated when needed)

  // Variable-coefficient mode (set_coefficient): cell-centered
  // coefficient field and the per-cell operator diagonal.
  bool varcoef = false;
  BrickedArray coef;
  BrickedArray diag;

  std::unique_ptr<comm::BrickExchange> exchange;

  // Resolved kernel bindings for this level's (brick dims, coefficient
  // kind, smoother, fused-vs-split) configuration — see
  // kernel_plan.hpp. Rebuilt by set_coefficient when varcoef flips.
  KernelPlan plan;

  // Communication-avoiding bookkeeping: how many ghost cell layers of
  // x are still valid (0 = must exchange before the next applyOp), and
  // whether b's ghosts are current (needed when smoothing extends into
  // the ghost region).
  index_t margin = 0;
  bool b_ghosts_valid = false;

  // Compute–comm overlap (DESIGN.md §10): which ghost groups are
  // filled by another rank, the interior/surface split of the owned
  // bricks, and the interior set as a cell-space box. Levels with no
  // remote neighbor (single-rank runs) take the blocking path.
  std::array<bool, kNumDirections> remote{};
  bool has_remote = false;
  BrickPartition part;
  Box part_cells;

  Box interior() const { return Box::from_extent(cells); }
};

}  // namespace gmg
