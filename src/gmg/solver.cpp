#include "gmg/solver.hpp"

#include <array>
#include <cmath>
#include <cstdlib>
#include <string>

#include "check/footprint.hpp"
#include "check/schedule.hpp"
#include "common/timer.hpp"
#include "dsl/stencils.hpp"
#include "gmg/fused_kernels.hpp"
#include "gmg/operators.hpp"
#include "gmg/operators_varcoef.hpp"
#include "gmg/schedule_audit.hpp"
#include "trace/trace.hpp"

namespace gmg {

// Compile-time footprint verification (src/check): the stencil
// expressions the solver instantiates must have exactly the shapes the
// ghost sizing below assumes. A stencil edit that widens a footprint
// fails here, not as a silent out-of-ghost read.
static_assert(check::same_footprint(
                  dsl::laplacian_7pt<0>(1.0, 1.0).offsets(),
                  check::star_shape(1)),
              "7-point Laplacian footprint is not the radius-1 star");
static_assert(dsl::star_stencil<2, 0>(std::array<real_t, 3>{1.0, 1.0, 1.0})
                      .offsets()
                      .radius() == 2,
              "13-point operator footprint is not radius 2");
static_assert(check::restriction_shape().num_taps() == 8 &&
                  check::restriction_shape().radius() == 1,
              "restriction must read exactly the 2x2x2 fine block");
static_assert(check::interpolation_trilinear_shape().num_taps() == 27,
              "trilinear interpolation reads the 27-point coarse box");

GmgSolver::GmgSolver(const GmgOptions& opts, const CartDecomp& decomp,
                     int rank)
    : opts_(opts), decomp_(decomp), rank_(rank) {
  GMG_REQUIRE(opts_.levels >= 1, "need at least one level");
  GMG_REQUIRE(opts_.smooths >= 1, "need at least one smoothing iteration");
  GMG_REQUIRE(opts_.operator_radius == 1 || opts_.operator_radius == 2,
              "operator radius must be 1 (7-point) or 2 (13-point)");

  // Environment override for the fusion gate (mirrors
  // GMG_EXEC_WORKERS): lets CI and benches flip configurations without
  // a rebuild. "0" disables, anything else enables.
  if (const char* env = std::getenv("GMG_FUSE_STAGES")) {
    opts_.fuse_stages = std::string(env) != "0";
  }

  // Footprint-vs-ghost-depth checks (src/check): the ghost region is
  // one brick deep, so every stencil the cycle applies — operator,
  // smoother consumption rate, inter-level transfers — must fit the
  // brick shape. Undersized ghosts fail here at setup, on every level
  // at once (the brick shape is level-invariant).
  check::require_footprint_fits(
      opts_.operator_radius == 1 ? "operator (7-point star)"
                                 : "operator (13-point star)",
      check::star_shape(opts_.operator_radius).extents(), opts_.brick);
  check::require_footprint_fits("restriction (8->1 full weighting)",
                                check::restriction_shape().extents(),
                                opts_.brick);
  check::require_footprint_fits(
      "interpolation (trilinear)",
      check::interpolation_trilinear_shape().extents(), opts_.brick);
  // The fused descent kernel's union footprint (DESIGN.md §16) must
  // fit the ghost capacity too — with today's stages it equals the
  // restriction octant, but deriving it through the same constexpr
  // union keeps a future wider final-smooth stage from silently
  // outgrowing the ghosts.
  if (opts_.fuse_stages) fused::require_fused_fits(opts_.brick);
  // CA smoothing refills the ghost margin to one brick depth per
  // exchange and consumes layers per sweep: the operator radius for
  // Jacobi/Chebyshev, two for a red-black iteration (each colored
  // half-sweep reads the other color at radius 1).
  check::require_ghost_capacity(
      opts_.smoother == Smoother::kRedBlackGS
          ? "red-black Gauss-Seidel (2 ghost layers per iteration)"
          : "smoother sweep",
      opts_.brick,
      opts_.smoother == Smoother::kRedBlackGS
          ? index_t{2}
          : static_cast<index_t>(opts_.operator_radius));

  const Vec3 sub0 = decomp.subdomain_extent();
  const Vec3 global0 = decomp.global_extent();
  const BrickShape shape = opts_.brick;

  // Clamp depth: every level's subdomain must be brick-divisible and
  // hold at least one brick per axis.
  int levels = opts_.levels;
  for (int l = 0; l < levels; ++l) {
    const index_t scale = index_t{1} << l;
    const bool ok =
        sub0.x % (shape.bx * scale) == 0 && sub0.y % (shape.by * scale) == 0 &&
        sub0.z % (shape.bz * scale) == 0 && sub0.x / scale >= shape.bx &&
        sub0.y / scale >= shape.by && sub0.z / scale >= shape.bz;
    if (!ok) {
      levels = l;
      break;
    }
  }
  GMG_REQUIRE(levels >= 1,
              "subdomain is too small for even one level with this brick "
              "shape");
  opts_.levels = levels;

  const Box rank_box0 = decomp.subdomain_box(rank);
  // Which ghost groups come from other ranks — a property of the rank
  // grid alone, so identical on every level.
  const std::array<bool, kNumDirections> remote =
      decomp.remote_neighbors(rank);
  bool has_remote = false;
  for (bool r : remote) has_remote = has_remote || r;

  levels_.reserve(static_cast<std::size_t>(levels));
  for (int l = 0; l < levels; ++l) {
    const index_t scale = index_t{1} << l;
    MgLevel lev;
    lev.level = l;
    lev.cells = {sub0.x / scale, sub0.y / scale, sub0.z / scale};
    lev.global = {global0.x / scale, global0.y / scale, global0.z / scale};
    lev.rank_box = Box{{rank_box0.lo.x / scale, rank_box0.lo.y / scale,
                        rank_box0.lo.z / scale},
                       {rank_box0.hi.x / scale, rank_box0.hi.y / scale,
                        rank_box0.hi.z / scale}};
    lev.shape = shape;
    lev.h = 1.0 / static_cast<real_t>(lev.global.x);
    lev.radius = opts_.operator_radius;

    // A = s*I + c*Laplacian_h. Radius 1: the paper's 7-point star.
    // Radius 2: the 4th-order 13-point star with per-axis second-
    // derivative weights (-1/12, 4/3, -5/2, 4/3, -1/12)/h^2.
    const real_t c_over_h2 = opts_.laplacian_coef / (lev.h * lev.h);
    if (lev.radius == 1) {
      lev.alpha = opts_.identity_coef - 6.0 * c_over_h2;
      lev.beta = c_over_h2;
      lev.beta2 = 0.0;
    } else {
      lev.alpha = opts_.identity_coef - 3.0 * (5.0 / 2.0) * c_over_h2;
      lev.beta = (4.0 / 3.0) * c_over_h2;
      lev.beta2 = -(1.0 / 12.0) * c_over_h2;
    }
    GMG_REQUIRE(lev.alpha != 0.0, "operator diagonal vanishes");
    // Point-Jacobi weight: omega/|diag| with omega = 1/2 generalizes
    // the paper's gamma = h^2/12.
    lev.gamma = -0.5 / lev.alpha;

    lev.grid = std::make_shared<BrickGrid>(Vec3{
        lev.cells.x / shape.bx, lev.cells.y / shape.by, lev.cells.z / shape.bz});
    lev.remote = remote;
    lev.has_remote = has_remote;
    lev.part = lev.grid->partition(remote);
    lev.part_cells =
        Box{{lev.part.interior_box.lo.x * shape.bx,
             lev.part.interior_box.lo.y * shape.by,
             lev.part.interior_box.lo.z * shape.bz},
            {lev.part.interior_box.hi.x * shape.bx,
             lev.part.interior_box.hi.y * shape.by,
             lev.part.interior_box.hi.z * shape.bz}};
    lev.x = BrickedArray(lev.grid, shape);
    lev.b = BrickedArray(lev.grid, shape);
    lev.Ax = BrickedArray(lev.grid, shape);
    lev.r = BrickedArray(lev.grid, shape);
    if (needs_p()) lev.p = BrickedArray(lev.grid, shape);
    lev.exchange = std::make_unique<comm::BrickExchange>(
        lev.grid, shape, decomp, rank, opts_.exchange_mode);
    levels_.push_back(std::move(lev));
  }
  resolve_kernel_plans();
  // Setup-time schedule proof (DESIGN.md §18): dry-run the planned
  // V-cycle and FMG schedules and statically verify the margin
  // algebra, exchange placement and fused chunk disjointness before
  // the first sweep can execute. Rejects a hazardous configuration
  // here, with a diagnostic naming the offending kernel pair.
  if (check::verify_schedule_enabled()) verify_solver_schedule(*this);
}

void GmgSolver::resolve_kernel_plans() {
  for (MgLevel& lev : levels_) {
    resolve_level_kernels(opts_, lev);
    switch (opts_.smoother) {
      case Smoother::kPointJacobi:
      case Smoother::kWeightedJacobi:
        lev.plan.sweep = &GmgSolver::jacobi_sweeps;
        break;
      case Smoother::kChebyshev:
        lev.plan.sweep = &GmgSolver::chebyshev_sweeps;
        break;
      case Smoother::kRedBlackGS:
        lev.plan.sweep = &GmgSolver::gs_sweeps;
        break;
    }
  }
}

void GmgSolver::set_rhs(
    const std::function<real_t(real_t, real_t, real_t)>& f) {
  GMG_REQUIRE(!storage_detached_,
              "attach_field_storage() before set_rhs on a parked hierarchy");
  MgLevel& fine = levels_.front();
  const real_t h = fine.h;
  for_each(fine.interior(), [&](index_t i, index_t j, index_t k) {
    const real_t px = (static_cast<real_t>(fine.rank_box.lo.x + i) + 0.5) * h;
    const real_t py = (static_cast<real_t>(fine.rank_box.lo.y + j) + 0.5) * h;
    const real_t pz = (static_cast<real_t>(fine.rank_box.lo.z + k) + 0.5) * h;
    fine.b(i, j, k) = f(px, py, pz);
  });
  init_zero(fine.x);
  fine.margin = fine.shape.bx;  // zero ghosts are valid for a zero x
  fine.b_ghosts_valid = false;
  for (std::size_t l = 1; l < levels_.size(); ++l) {
    init_zero(levels_[l].x);
    init_zero(levels_[l].b);
    levels_[l].margin = 0;
    levels_[l].b_ghosts_valid = false;
  }
  // Back-to-back-solve state audit: p is the one field the first sweep
  // reads before writing (cheby_p_update computes p = r/D + beta*p even
  // when beta == 0), so a value left by the previous solve — or an Inf
  // that 0*p turns into NaN — would leak in. Zero it so a reused
  // hierarchy starts from exactly the constructor's state; Ax and r
  // are always fully written before their first read.
  for (MgLevel& lev : levels_) {
    if (lev.p.size() != 0) init_zero(lev.p);
  }
}

void GmgSolver::detach_field_storage(BrickArena& arena) {
  if (storage_detached_) return;
  for (MgLevel& lev : levels_) {
    arena.release(std::move(lev.x));
    arena.release(std::move(lev.b));
    arena.release(std::move(lev.Ax));
    arena.release(std::move(lev.r));
    if (lev.p.size() != 0) arena.release(std::move(lev.p));
    // coef/diag describe the operator, not one solve — they stay, like
    // the grids, exchange engines and iteration plans.
  }
  storage_detached_ = true;
}

void GmgSolver::attach_field_storage(BrickArena& arena) {
  if (!storage_detached_) return;
  for (MgLevel& lev : levels_) {
    lev.x = arena.acquire(lev.grid, lev.shape);
    lev.b = arena.acquire(lev.grid, lev.shape);
    lev.Ax = arena.acquire(lev.grid, lev.shape);
    lev.r = arena.acquire(lev.grid, lev.shape);
    if (needs_p()) lev.p = arena.acquire(lev.grid, lev.shape);
    // Everything is zero again; mirror the constructor's conservative
    // margin so the CA exchange schedule matches a fresh solver's.
    lev.margin = 0;
    lev.b_ghosts_valid = false;
  }
  storage_detached_ = false;
}

void GmgSolver::set_coefficient(
    comm::Communicator& comm,
    const std::function<real_t(real_t, real_t, real_t)>& f) {
  GMG_REQUIRE(opts_.operator_radius == 1,
              "variable coefficients support the 7-point operator only");
  MgLevel& fine = levels_.front();
  fine.coef = BrickedArray(fine.grid, fine.shape);
  const real_t h = fine.h;
  for_each(fine.interior(), [&](index_t i, index_t j, index_t k) {
    const real_t px = (static_cast<real_t>(fine.rank_box.lo.x + i) + 0.5) * h;
    const real_t py = (static_cast<real_t>(fine.rank_box.lo.y + j) + 0.5) * h;
    const real_t pz = (static_cast<real_t>(fine.rank_box.lo.z + k) + 0.5) * h;
    const real_t v = f(px, py, pz);
    GMG_REQUIRE(v > 0, "coefficient must be positive");
    fine.coef(i, j, k) = v;
  });
  for (std::size_t l = 1; l < levels_.size(); ++l) {
    levels_[l].coef = BrickedArray(levels_[l].grid, levels_[l].shape);
    restriction(levels_[l].coef, levels_[l - 1].coef);
  }
  for (MgLevel& lev : levels_) {
    lev.varcoef = true;
    exchange_now(comm, lev, lev.coef);
    lev.diag = BrickedArray(lev.grid, lev.shape);
    // The CA redundant sweeps read the diagonal in the ghost shell;
    // compute it everywhere the taps stay within the ghost bricks.
    varcoef_diagonal(lev.diag, lev.coef, opts_.identity_coef, lev.h,
                     grow(lev.interior(), lev.shape.bx - 1));
    lev.margin = 0;  // ghosts of x are unrelated to the new operator
  }
  // The varcoef flip invalidates every const-coefficient kernel
  // binding; re-resolve the plans against the new operator — and
  // re-prove the schedule against the rebound plans (the varcoef
  // kernels have their own effect summaries).
  resolve_kernel_plans();
  if (check::verify_schedule_enabled()) verify_solver_schedule(*this);
}

void GmgSolver::exchange_now(comm::Communicator& comm, MgLevel& lev,
                             BrickedArray& field) {
  lev.exchange->exchange(comm, field);
}

void GmgSolver::apply_operator(MgLevel& lev, BrickedArray& out,
                               const BrickedArray& in, const Box& active) {
  // The variant branch chain (varcoef / generated / radius) lives in
  // resolve_level_kernels now; per sweep this is one indirect call.
  lev.plan.apply(out, in, active);
}

void GmgSolver::exchange_for_smooth(comm::Communicator& comm, MgLevel& lev) {
  const bool with_p = opts_.smoother == Smoother::kChebyshev &&
                      lev.p.size() != 0;
  profiler_.timed(lev.level, perf::Phase::kExchange, [&] {
    std::vector<BrickedArray*> fields{&lev.x};
    // Aggregate everything the redundant ghost sweeps will read into
    // one message round (the paper's message aggregation across
    // fields).
    if (opts_.communication_avoiding && !lev.b_ghosts_valid) {
      fields.push_back(&lev.b);
      lev.b_ghosts_valid = true;
    }
    if (with_p && opts_.communication_avoiding) fields.push_back(&lev.p);
    lev.exchange->exchange(comm, fields);
  });
  lev.margin = lev.shape.bx;
}

bool GmgSolver::use_overlap(const MgLevel& lev) const {
  if (!(opts_.overlap && lev.has_remote &&
        static_cast<int>(lev.part.interior.size()) >=
            opts_.overlap_min_interior_bricks)) {
    return false;
  }
  // Work-vs-traffic cutoff: split-phase only pays off when the interior
  // compute hidden behind the messages outweighs the per-exchange
  // split/submit/wait overhead, which scales with the remote payload.
  // Value-neutral either way (DESIGN.md §10).
  if (opts_.overlap_min_compute_bytes_ratio > 0.0) {
    const double interior_bytes =
        static_cast<double>(lev.part.interior.size()) *
        static_cast<double>(lev.shape.volume()) * sizeof(real_t);
    const double remote_bytes =
        static_cast<double>(lev.exchange->remote_bytes_per_exchange());
    if (interior_bytes <
        opts_.overlap_min_compute_bytes_ratio * remote_bytes) {
      return false;
    }
  }
  return true;
}

exec::Engine& GmgSolver::engine() {
  exec::Engine& eng = exec::default_engine();
  const std::uint64_t gen = exec::default_engine_generation();
  if (gen != engine_generation_) {
    compute_stream_ = eng.create_stream("gmg.compute");
    engine_generation_ = gen;
  }
  return eng;
}

void GmgSolver::begin_exchange_for_smooth(comm::Communicator& comm,
                                          MgLevel& lev) {
  const bool with_p = opts_.smoother == Smoother::kChebyshev &&
                      lev.p.size() != 0;
  profiler_.timed(lev.level, perf::Phase::kExchange, [&] {
    std::vector<BrickedArray*> fields{&lev.x};
    if (opts_.communication_avoiding && !lev.b_ghosts_valid) {
      fields.push_back(&lev.b);
      lev.b_ghosts_valid = true;
    }
    if (with_p && opts_.communication_avoiding) fields.push_back(&lev.p);
    lev.exchange->begin(comm, std::move(fields));
  });
  // The margin is claimed at begin time: every consumer of the ghost
  // layers runs after finish_exchange_overlapped() completes them.
  lev.margin = lev.shape.bx;
}

Box GmgSolver::overlap_safe_box(const MgLevel& lev, const Box& active) const {
  if (lev.part.interior_box.empty()) return Box{};
  // Clamp to the interior-partition cells on sides with a remote
  // neighbor (their ghost bricks are in-flight receive targets; one
  // brick of owned surface keeps the stencil taps clear of them). On
  // self-periodic sides the ghost copies completed synchronously in
  // begin(), so the full active growth is safe.
  Box safe = active;
  for (int d = 0; d < 3; ++d) {
    int off[3] = {0, 0, 0};
    off[d] = -1;
    if (lev.remote[static_cast<std::size_t>(
            direction_index(off[0], off[1], off[2]))])
      safe.lo[d] = std::max(safe.lo[d], lev.part_cells.lo[d]);
    off[d] = 1;
    if (lev.remote[static_cast<std::size_t>(
            direction_index(off[0], off[1], off[2]))])
      safe.hi[d] = std::min(safe.hi[d], lev.part_cells.hi[d]);
  }
  return safe.empty() ? Box{} : safe;
}

void GmgSolver::finish_exchange_overlapped(
    comm::Communicator& comm, MgLevel& lev, const Box& active,
    perf::Phase phase, const std::function<void(const Box&)>& kernel) {
  const Box safe = overlap_safe_box(lev, active);
  exec::Event done;
  double interior_seconds = 0.0;
  if (!safe.empty()) {
    // The worker records the phase span itself (it owns the timing);
    // the aggregate is updated from this thread after done.wait(),
    // because Profiler::stats_ is not thread-safe.
    exec::Engine& eng = engine();
    eng.submit(compute_stream_, "overlap.interior", [&, safe] {
      trace::TraceSpan span(perf::phase_name(phase),
                            perf::phase_category(phase), lev.level);
      kernel(safe);
      interior_seconds = span.close();
    });
    done = eng.record(compute_stream_);
  }
  profiler_.timed(lev.level, perf::Phase::kExchange,
                  [&] { lev.exchange->finish(comm); });
  // Shell sweeps run on this thread while the interior task drains on
  // the stream worker: the shell boxes and the safe box are disjoint
  // cell regions writing disjoint storage (DESIGN.md §10), so the only
  // ordering needed is done.wait() before anyone reads the result.
  const std::vector<Box> shell = shell_boxes(active, safe);
  if (!shell.empty()) {
    profiler_.timed(lev.level, phase, [&] {
      for (const Box& s : shell) kernel(s);
    });
  }
  {
    trace::TraceSpan wait_span("exec.wait_overlap", trace::Category::kWait);
    done.wait();
  }
  if (!safe.empty()) profiler_.record(lev.level, phase, interior_seconds);
}

void GmgSolver::smooth_level(comm::Communicator& comm, MgLevel& lev,
                             int iterations, bool with_residual,
                             BrickedArray* restrict_to) {
  // The former per-call smoother switch, resolved once at setup into
  // the level's plan (kernel_plan.hpp).
  (this->*lev.plan.sweep)(comm, lev, iterations, with_residual, restrict_to);
}

void GmgSolver::gs_sweeps(comm::Communicator& comm, MgLevel& lev,
                          int iterations, bool with_residual,
                          BrickedArray* restrict_to) {
  GMG_REQUIRE(lev.radius == 1 && !lev.varcoef,
              "red-black Gauss-Seidel supports the constant-coefficient "
              "7-point operator only");
  const Box interior = lev.interior();
  const Vec3 origin = lev.rank_box.lo;
  for (int it = 0; it < iterations; ++it) {
    if (opts_.communication_avoiding) {
      // A full red+black iteration consumes two ghost layers.
      bool split = false;
      if (lev.margin < 2 || !lev.b_ghosts_valid) {
        split = use_overlap(lev);
        if (split)
          begin_exchange_for_smooth(comm, lev);
        else
          exchange_for_smooth(comm, lev);
      }
      const Box red_box = grow(interior, lev.margin - 1);
      const Box black_box = grow(interior, lev.margin - 2);
      if (split) {
        // A red cell reads only black-parity neighbors, which the red
        // half-sweep never writes — so splitting red by region changes
        // no value. Black needs the red updates everywhere and runs
        // whole, after finish.
        finish_exchange_overlapped(
            comm, lev, red_box, perf::Phase::kSmooth,
            [&](const Box& region) {
              gs_color_sweep(lev.x, lev.b, lev.alpha, lev.beta, 0, origin,
                             region);
            });
        profiler_.timed(lev.level, perf::Phase::kSmooth, [&] {
          gs_color_sweep(lev.x, lev.b, lev.alpha, lev.beta, 1, origin,
                         black_box);
        });
      } else {
        profiler_.timed(lev.level, perf::Phase::kSmooth, [&] {
          gs_color_sweep(lev.x, lev.b, lev.alpha, lev.beta, 0, origin,
                         red_box);
          gs_color_sweep(lev.x, lev.b, lev.alpha, lev.beta, 1, origin,
                         black_box);
        });
      }
      lev.margin -= 2;
    } else {
      // Without deep ghosts, the black half-sweep needs the red-updated
      // neighbor values: exchange before each half-sweep. Either half
      // splits cleanly by region (a cell never reads its own parity).
      for (int color = 0; color < 2; ++color) {
        if (use_overlap(lev)) {
          begin_exchange_for_smooth(comm, lev);
          finish_exchange_overlapped(
              comm, lev, interior, perf::Phase::kSmooth,
              [&](const Box& region) {
                gs_color_sweep(lev.x, lev.b, lev.alpha, lev.beta, color,
                               origin, region);
              });
        } else {
          exchange_for_smooth(comm, lev);
          profiler_.timed(lev.level, perf::Phase::kSmooth, [&] {
            gs_color_sweep(lev.x, lev.b, lev.alpha, lev.beta, color, origin,
                           interior);
          });
        }
      }
      lev.margin = 0;
    }
  }
  if (with_residual) {
    // GS updates in place and leaves no fused residual; compute it for
    // the restriction that follows.
    if (lev.margin < 1) {
      if (use_overlap(lev)) {
        begin_exchange_for_smooth(comm, lev);
        finish_exchange_overlapped(
            comm, lev, interior, perf::Phase::kApplyOp,
            [&](const Box& region) {
              apply_operator(lev, lev.Ax, lev.x, region);
            });
      } else {
        exchange_for_smooth(comm, lev);
        profiler_.timed(lev.level, perf::Phase::kApplyOp, [&] {
          apply_operator(lev, lev.Ax, lev.x, interior);
        });
      }
    } else {
      profiler_.timed(lev.level, perf::Phase::kApplyOp, [&] {
        apply_operator(lev, lev.Ax, lev.x, interior);
      });
    }
    if (restrict_to != nullptr && lev.plan.fuse_gs_tail) {
      // Fused tail (the former separate-full-pass small fix): r and
      // its restriction into the coarse RHS in one pass per brick.
      profiler_.timed(lev.level, perf::Phase::kFusedDescent, [&] {
        lev.plan.residual_restrict(*restrict_to);
      });
    } else {
      profiler_.timed(lev.level, perf::Phase::kResidual, [&] {
        residual(lev.r, lev.b, lev.Ax, interior);
      });
    }
  }
}

void GmgSolver::jacobi_sweeps(comm::Communicator& comm, MgLevel& lev,
                              int iterations, bool with_residual,
                              BrickedArray* restrict_to) {
  const Box interior = lev.interior();
  const index_t radius = lev.radius;
  for (int it = 0; it < iterations; ++it) {
    Box active = interior;
    bool split = false;  // exchange begun, to finish around the applyOp
    if (opts_.communication_avoiding) {
      // Exchange when the ghost margin is spent — or when b's ghosts
      // are stale, since the redundant sweep reads b there too.
      if (lev.margin < radius || !lev.b_ghosts_valid) {
        split = use_overlap(lev);
        if (split)
          begin_exchange_for_smooth(comm, lev);
        else
          exchange_for_smooth(comm, lev);
      }
      active = grow(interior, lev.margin - radius);
    } else {
      split = use_overlap(lev);
      if (split)
        begin_exchange_for_smooth(comm, lev);
      else
        exchange_for_smooth(comm, lev);
      lev.margin = 0;
    }
    // Only the operator application is split by region: Ax is computed
    // from an x the exchange does not modify outside the ghost bricks,
    // so interior-then-surface order cannot change any value. The
    // pointwise update below stays one full-region call either way —
    // that is the bitwise-identity argument (DESIGN.md §10).
    if (split) {
      finish_exchange_overlapped(
          comm, lev, active, perf::Phase::kApplyOp,
          [&](const Box& region) {
            apply_operator(lev, lev.Ax, lev.x, region);
          });
    } else {
      profiler_.timed(lev.level, perf::Phase::kApplyOp,
                      [&] { apply_operator(lev, lev.Ax, lev.x, active); });
    }
    // On the FINAL descent sweep the fused plan folds the restriction
    // of the just-computed residual into the same pass over each fine
    // brick (one pass instead of smooth+residual then restriction).
    // Earlier sweeps overwrite r anyway, so only the last one feeds
    // the coarse RHS.
    const bool fuse_final = with_residual && restrict_to != nullptr &&
                            lev.plan.fuse_descent && it == iterations - 1;
    if (fuse_final) {
      profiler_.timed(lev.level, perf::Phase::kFusedDescent, [&] {
        lev.plan.smooth_residual_restrict(*restrict_to, active);
      });
    } else if (with_residual) {
      profiler_.timed(lev.level, perf::Phase::kSmoothResidual,
                      [&] { lev.plan.smooth_residual(active); });
    } else {
      profiler_.timed(lev.level, perf::Phase::kSmooth,
                      [&] { lev.plan.smooth(active); });
    }
    if (opts_.communication_avoiding) lev.margin -= radius;
  }
}

void GmgSolver::chebyshev_sweeps(comm::Communicator& comm, MgLevel& lev,
                                 int iterations, bool with_residual,
                                 BrickedArray* restrict_to) {
  (void)with_residual;  // r = b - Ax is produced every sweep anyway
  // Chebyshev cannot fuse the descent: the recurrence consumes r on
  // EVERY sweep and updates x after it, so there is no final pointwise
  // pass to glue the restriction onto. The plan's capability predicate
  // (fuse_descent = false) makes cycle_at keep the split restriction.
  (void)restrict_to;
  const Box interior = lev.interior();
  const index_t radius = lev.radius;
  const real_t lambda_max = opts_.cheby_lambda_max;
  const real_t lambda_min = lambda_max * opts_.cheby_min_frac;
  const real_t theta = 0.5 * (lambda_max + lambda_min);
  const real_t delta = 0.5 * (lambda_max - lambda_min);
  const real_t inv_diag = 1.0 / lev.alpha;

  real_t alpha_ch = 0.0;
  for (int it = 0; it < iterations; ++it) {
    Box active = interior;
    bool split = false;
    if (opts_.communication_avoiding) {
      if (lev.margin < radius || !lev.b_ghosts_valid) {
        split = use_overlap(lev);
        if (split)
          begin_exchange_for_smooth(comm, lev);
        else
          exchange_for_smooth(comm, lev);
      }
      active = grow(interior, lev.margin - radius);
    } else {
      split = use_overlap(lev);
      if (split)
        begin_exchange_for_smooth(comm, lev);
      else
        exchange_for_smooth(comm, lev);
      lev.margin = 0;
    }
    // Split only the applyOp (see jacobi_sweeps); the Chebyshev
    // recurrence below reads Ax and runs once over the full region.
    if (split) {
      finish_exchange_overlapped(
          comm, lev, active, perf::Phase::kApplyOp,
          [&](const Box& region) {
            apply_operator(lev, lev.Ax, lev.x, region);
          });
    } else {
      profiler_.timed(lev.level, perf::Phase::kApplyOp,
                      [&] { apply_operator(lev, lev.Ax, lev.x, active); });
    }
    profiler_.timed(lev.level, perf::Phase::kSmoothResidual, [&] {
      residual(lev.r, lev.b, lev.Ax, active);
      // Chebyshev recurrence on the diagonally preconditioned
      // residual (D^-1 A has spectrum in [lambda_min, lambda_max]).
      real_t beta_ch;
      if (it == 0) {
        beta_ch = 0.0;
        alpha_ch = 1.0 / theta;
      } else {
        beta_ch = 0.25 * (delta * alpha_ch) * (delta * alpha_ch);
        alpha_ch = 1.0 / (theta - beta_ch / alpha_ch);
      }
      if (lev.varcoef) {
        cheby_p_update_varcoef(lev.p, lev.r, lev.diag, beta_ch, active);
      } else {
        cheby_p_update(lev.p, lev.r, inv_diag, beta_ch, active);
      }
      axpy(lev.x, alpha_ch, lev.p, active);
    });
    if (opts_.communication_avoiding) lev.margin -= radius;
  }
}

void GmgSolver::bottom_solve(comm::Communicator& comm) {
  MgLevel& lev = levels_[static_cast<std::size_t>(bottom_level())];
  if (opts_.bottom == BottomSolverType::kSmooth) {
    smooth_level(comm, lev, opts_.bottom_smooths, /*with_residual=*/false);
  } else {
    profiler_.timed(lev.level, perf::Phase::kBottomSolve,
                    [&] { bottom_cg(comm, lev); });
  }
}

void GmgSolver::bottom_cg(comm::Communicator& comm, MgLevel& lev) {
  // Matrix-free conjugate gradient on the coarsest grid. The periodic
  // operator is singular with a constant null space; the RHS reaching
  // the bottom is a restricted residual (mean zero), so the Krylov
  // iteration stays in range(A).
  const Box interior = lev.interior();

  // r = b - A x (x may be nonzero on the second visit of a W-cycle).
  if (lev.margin < lev.radius) {
    exchange_now(comm, lev, lev.x);
    lev.margin = lev.shape.bx;
  }
  apply_operator(lev, lev.Ax, lev.x, interior);
  residual(lev.r, lev.b, lev.Ax, interior);
  copy_interior(lev.p, lev.r);

  real_t rr = comm.allreduce_sum(dot_interior(lev.r, lev.r));
  const real_t stop = opts_.bottom_cg_tolerance * opts_.bottom_cg_tolerance;
  for (int it = 0; it < opts_.bottom_smooths && rr > stop; ++it) {
    exchange_now(comm, lev, lev.p);
    apply_operator(lev, lev.Ax, lev.p, interior);  // Ax := A p
    const real_t pAp = comm.allreduce_sum(dot_interior(lev.p, lev.Ax));
    if (pAp == 0.0) break;
    const real_t a = rr / pAp;
    axpy_interior(lev.x, a, lev.p);
    axpy_interior(lev.r, -a, lev.Ax);
    const real_t rr_new = comm.allreduce_sum(dot_interior(lev.r, lev.r));
    xpay_interior(lev.p, lev.r, rr_new / rr);
    rr = rr_new;
  }
  lev.margin = 0;  // x changed; ghosts are stale
}

void GmgSolver::cycle_at(comm::Communicator& comm, int l) {
  if (l == bottom_level()) {
    bottom_solve(comm);
    return;
  }
  MgLevel& lev = levels_[static_cast<std::size_t>(l)];
  MgLevel& coarse = levels_[static_cast<std::size_t>(l + 1)];

  // Descent: where the plan fuses, the final smoothing sweep also
  // restricts r into the coarse RHS (one pass instead of three stages
  // — DESIGN.md §16); otherwise restriction runs as its own pass.
  BrickedArray* restrict_to =
      lev.plan.fuses_restriction() ? &coarse.b : nullptr;
  smooth_level(comm, lev, opts_.smooths, /*with_residual=*/true, restrict_to);
  if (restrict_to == nullptr) {
    profiler_.timed(l, perf::Phase::kRestriction,
                    [&] { restriction(coarse.b, lev.r); });
  }
  coarse.b_ghosts_valid = false;
  profiler_.timed(l + 1, perf::Phase::kInitZero, [&] { init_zero(coarse.x); });
  coarse.margin = coarse.shape.bx;  // zero ghosts are valid

  cycle_at(comm, l + 1);
  if (opts_.cycle == CycleType::kW) cycle_at(comm, l + 1);

  profiler_.timed(l, perf::Phase::kInterpIncrement,
                  [&] { interpolation_increment(lev.x, coarse.x); });
  lev.margin = 0;  // interior changed; ghosts are stale
  smooth_level(comm, lev, opts_.smooths, /*with_residual=*/true);
}

void GmgSolver::vcycle(comm::Communicator& comm) {
  // Umbrella span so the timeline shows cycle boundaries around the
  // per-phase spans Profiler::timed emits.
  trace::TraceSpan span("gmg.vcycle");
  cycle_at(comm, 0);
}

void GmgSolver::fmg(comm::Communicator& comm) {
  trace::TraceSpan span("gmg.fmg");
  const int bottom = bottom_level();
  // Restrict the RHS itself down the hierarchy.
  for (int l = 0; l < bottom; ++l) {
    MgLevel& lev = levels_[static_cast<std::size_t>(l)];
    MgLevel& coarse = levels_[static_cast<std::size_t>(l + 1)];
    profiler_.timed(l, perf::Phase::kRestriction,
                    [&] { restriction(coarse.b, lev.b); });
    coarse.b_ghosts_valid = false;
  }
  // Solve the coarsest, then work upward: prolong as initial guess,
  // one cycle per level.
  MgLevel& coarsest = levels_[static_cast<std::size_t>(bottom)];
  init_zero(coarsest.x);
  coarsest.margin = coarsest.shape.bx;
  bottom_solve(comm);
  for (int l = bottom - 1; l >= 0; --l) {
    MgLevel& lev = levels_[static_cast<std::size_t>(l)];
    MgLevel& coarse = levels_[static_cast<std::size_t>(l + 1)];
    // FMG needs a higher-order prolongation for its initial guesses;
    // trilinear reads one coarse ghost layer.
    if (coarse.margin < 1) {
      profiler_.timed(l + 1, perf::Phase::kExchange,
                      [&] { exchange_now(comm, coarse, coarse.x); });
      coarse.margin = coarse.shape.bx;
    }
    profiler_.timed(l, perf::Phase::kInterpIncrement,
                    [&] { interpolation_trilinear_assign(lev.x, coarse.x); });
    lev.margin = 0;
    cycle_at(comm, l);
  }
}

real_t GmgSolver::residual_norm(comm::Communicator& comm) {
  MgLevel& fine = levels_.front();
  if (fine.margin < fine.radius && use_overlap(fine)) {
    begin_exchange_for_smooth(comm, fine);
    finish_exchange_overlapped(comm, fine, fine.interior(),
                               perf::Phase::kApplyOp, [&](const Box& region) {
                                 apply_operator(fine, fine.Ax, fine.x, region);
                               });
  } else {
    if (fine.margin < fine.radius) exchange_for_smooth(comm, fine);
    profiler_.timed(0, perf::Phase::kApplyOp, [&] {
      apply_operator(fine, fine.Ax, fine.x, fine.interior());
    });
  }
  real_t local = 0;
  if (fine.plan.fuse_norm) {
    // Fused residual + max-norm: one pass instead of two, bitwise
    // identical to the split pair (fused_kernels.hpp).
    profiler_.timed(0, perf::Phase::kMaxNorm,
                    [&] { local = fine.plan.residual_max_norm(); });
  } else {
    profiler_.timed(0, perf::Phase::kResidual, [&] {
      residual(fine.r, fine.b, fine.Ax, fine.interior());
    });
    profiler_.timed(0, perf::Phase::kMaxNorm,
                    [&] { local = max_norm(fine.r); });
  }
  return comm.allreduce_max(local);
}

real_t GmgSolver::residual_norm_l2(comm::Communicator& comm) {
  MgLevel& fine = levels_.front();
  if (fine.margin < fine.radius) exchange_for_smooth(comm, fine);
  apply_operator(fine, fine.Ax, fine.x, fine.interior());
  residual(fine.r, fine.b, fine.Ax, fine.interior());
  const real_t global_sq = comm.allreduce_sum(norm2_sq(fine.r));
  return std::sqrt(global_sq);
}

SolveResult GmgSolver::solve(comm::Communicator& comm,
                             const SolveControl* control) {
  GMG_REQUIRE(!storage_detached_,
              "attach_field_storage() before solving a parked hierarchy");
  Timer timer;
  SolveResult result;
  real_t res = residual_norm(comm);
  result.history.push_back(res);
  while (res > opts_.tolerance && result.vcycles < opts_.max_vcycles) {
    if (control != nullptr) {
      // The abort decision must be unanimous: a rank that left the
      // loop while a peer entered vcycle() would deadlock the peer's
      // collectives. Reduce the local view once per cycle — all ranks
      // see the same max and exit together.
      const bool local =
          control->cancel.load(std::memory_order_relaxed) ||
          (control->deadline_ns != 0 &&
           trace::now_ns() >= control->deadline_ns);
      if (comm.allreduce_max(local ? 1.0 : 0.0) > 0.0) {
        result.cancelled = true;
        break;
      }
    }
    vcycle(comm);
    res = residual_norm(comm);
    result.history.push_back(res);
    ++result.vcycles;
  }
  result.final_residual = res;
  result.converged = !result.cancelled && res <= opts_.tolerance;
  result.seconds = timer.elapsed();
  return result;
}

}  // namespace gmg
