// Variable-coefficient operator support: A x = s*x + div(beta grad x)
// with a cell-centered coefficient field and arithmetic face
// averaging,
//   (A x)_i = s*x_i + (1/h^2) sum_faces 0.5*(beta_i + beta_nbr)
//                                       * (x_nbr - x_i).
// The paper's DSL explicitly supports non-constant coefficients
// (§III); these kernels are built from the same expression-template
// engine, with the coefficient bound as a second grid slot.
#pragma once

#include "brick/bricked_array.hpp"
#include "check/effects.hpp"
#include "common/types.hpp"
#include "dsl/stencils.hpp"

namespace gmg {

namespace vc {

// The variable-coefficient expression trees, shared between the solo
// kernels below and the batched engine (src/batch): both sides apply
// literally the same expression object, so per-element arithmetic —
// and with it the bitwise-identity contract of batched solves — cannot
// drift between the two paths.

/// A x = s*x + (1/h^2) sum_faces 0.5*(beta_i + beta_nbr)*(x_nbr - x_i)
/// with x on slot 0, beta on slot 1, and f = 0.5/h^2.
inline auto apply_expr(real_t identity_coef, real_t f) {
  using namespace dsl;
  Grid<0> X;
  Grid<1> B;
  return Coef(identity_coef) * X(i, j, k) +
         Coef(f) *
             ((B(i, j, k) + B(i + 1, j, k)) * (X(i + 1, j, k) - X(i, j, k)) +
              (B(i, j, k) + B(i - 1, j, k)) * (X(i - 1, j, k) - X(i, j, k)) +
              (B(i, j, k) + B(i, j + 1, k)) * (X(i, j + 1, k) - X(i, j, k)) +
              (B(i, j, k) + B(i, j - 1, k)) * (X(i, j - 1, k) - X(i, j, k)) +
              (B(i, j, k) + B(i, j, k + 1)) * (X(i, j, k + 1) - X(i, j, k)) +
              (B(i, j, k) + B(i, j, k - 1)) * (X(i, j, k - 1) - X(i, j, k)));
}

/// diag = s - f*(6*beta_i + sum of the 6 face neighbors), beta on
/// slot 0.
inline auto diagonal_expr(real_t identity_coef, real_t f) {
  using namespace dsl;
  Grid<0> B;
  return Coef(identity_coef) -
         Coef(f) * (Coef(6.0) * B(i, j, k) + B(i + 1, j, k) + B(i - 1, j, k) +
                    B(i, j + 1, k) + B(i, j - 1, k) + B(i, j, k + 1) +
                    B(i, j, k - 1));
}

}  // namespace vc

/// Ax = s*x + div(beta grad x) over `active`. Requires valid x and
/// beta ghosts covering the active region grown by one cell.
void apply_op_varcoef(BrickedArray& Ax, const BrickedArray& x,
                      const BrickedArray& beta, real_t identity_coef,
                      real_t h, const Box& active);

/// diag(i) = s - (1/h^2) * sum_faces 0.5*(beta_i + beta_nbr) — the
/// operator diagonal, needed by the point smoothers. Same ghost
/// requirements as apply_op_varcoef.
void varcoef_diagonal(BrickedArray& diag, const BrickedArray& beta,
                      real_t identity_coef, real_t h, const Box& active);

/// Point Jacobi with a per-cell diagonal:
/// x += (-omega/diag) * (Ax - b), fused with r = b - Ax.
void smooth_residual_varcoef(BrickedArray& x, BrickedArray& r,
                             const BrickedArray& Ax, const BrickedArray& b,
                             const BrickedArray& diag, real_t omega,
                             const Box& active);

/// Unfused variant for the bottom solver.
void smooth_varcoef(BrickedArray& x, const BrickedArray& Ax,
                    const BrickedArray& b, const BrickedArray& diag,
                    real_t omega, const Box& active);

/// Chebyshev direction update with a per-cell diagonal:
/// p = r/diag + beta_ch * p.
void cheby_p_update_varcoef(BrickedArray& p, const BrickedArray& r,
                            const BrickedArray& diag, real_t beta_ch,
                            const Box& active);

// Static effect summaries (check/effects.hpp, DESIGN.md §18). The
// variable-coefficient operator taps x and beta at face neighbors:
// reach 1 on both.

constexpr check::EffectSummary apply_op_varcoef_effects() {
  return check::EffectSummary("kernel.applyOpVarCoef")
      .writes("Ax")
      .reads("x", 1)
      .reads("coef", 1);
}

constexpr check::EffectSummary varcoef_diagonal_effects() {
  return check::EffectSummary("kernel.varcoefDiagonal")
      .writes("diag")
      .reads("coef", 1);
}

constexpr check::EffectSummary smooth_residual_varcoef_effects() {
  return check::EffectSummary("kernel.smoothResidualVarCoef")
      .writes("x")
      .writes("r")
      .reads("x")
      .reads("Ax")
      .reads("b")
      .reads("diag");
}

constexpr check::EffectSummary smooth_varcoef_effects() {
  return check::EffectSummary("kernel.smoothVarCoef")
      .writes("x")
      .reads("x")
      .reads("Ax")
      .reads("b")
      .reads("diag");
}

constexpr check::EffectSummary cheby_p_update_varcoef_effects() {
  return check::EffectSummary("kernel.chebyPVarCoef")
      .writes("p")
      .reads("p")
      .reads("r")
      .reads("diag");
}

}  // namespace gmg
