// Runtime kernel specialization for the V-cycle hot path (DESIGN.md
// §16): a KernelPlan is resolved ONCE at solver setup (and again when
// set_coefficient flips a level to the variable-coefficient operator)
// and cached in the MgLevel. It binds the exact kernel variant for
// this level's (brick dims, const/var coefficient, smoother,
// fused-vs-split) configuration, so the per-sweep `switch` dispatch in
// smooth_level/jacobi_sweeps disappears: every sweep goes through one
// member-function pointer and a handful of pre-bound functors.
//
// The plan also carries the fusion capability predicate. Cross-stage
// fusion (final smooth + residual + restriction in one pass over each
// fine brick) is legal only where the last smoother application is a
// pointwise update of an already-materialized Ax:
//   - Jacobi / weighted Jacobi: fully fusible (fuse_descent).
//   - Red-black GS: the half-sweeps update x in place, but the descent
//     tail's residual + restriction still fuse (fuse_gs_tail).
//   - Chebyshev: the recurrence needs r on every sweep and updates x
//     *after* r, so the split path stays; only the residual+norm
//     fusion applies.
// Fused results are bitwise identical to the split path (the kernels
// replicate the split per-element arithmetic verbatim; see
// fused_kernels.hpp).
#pragma once

#include <functional>

#include "brick/bricked_array.hpp"
#include "common/types.hpp"

namespace gmg {

namespace comm {
class Communicator;
}

class GmgSolver;
struct MgLevel;
struct GmgOptions;

struct KernelPlan {
  /// Final descent smooth+residual+restriction runs as one fused pass
  /// (Jacobi family only).
  bool fuse_descent = false;
  /// The GS descent tail's residual+restriction runs as one fused pass
  /// (the half-sweeps themselves stay split).
  bool fuse_gs_tail = false;
  /// residual_norm computes r and its max-norm in one pass (legal for
  /// every smoother: fp max is exactly associative, and the reduction
  /// reuses the split max_norm's chunk plan).
  bool fuse_norm = false;

  /// Jacobi damping: 0.5 for kPointJacobi, opts.jacobi_weight for
  /// kWeightedJacobi (resolved once; sweeps stop re-deriving it).
  real_t weight = 0.5;

  /// Whether the descent smooth_level call consumes the restriction
  /// itself (cycle_at skips the separate restriction pass).
  bool fuses_restriction() const { return fuse_descent || fuse_gs_tail; }

  /// The smoother sweep routine for this configuration — the former
  /// smooth_level switch, resolved once.
  using SweepFn = void (GmgSolver::*)(comm::Communicator&, MgLevel&, int,
                                      bool, BrickedArray*);
  SweepFn sweep = nullptr;

  // Pre-bound kernel functors. Each captures the MgLevel POINTER plus
  // scalar coefficients by value — the field BrickedArrays are
  // reassigned by detach/attach_field_storage, so the bindings must
  // dereference through the level at call time.
  /// out = A in over `active` (varcoef / generated / radius-specific
  /// variant chosen at resolve time).
  std::function<void(BrickedArray& out, const BrickedArray& in,
                     const Box& active)>
      apply;
  /// x-update only (bottom solve, upsweep without residual).
  std::function<void(const Box& active)> smooth;
  /// x-update + r = b - Ax (split descent / non-final sweeps).
  std::function<void(const Box& active)> smooth_residual;
  /// Fused final sweep: x-update + residual + restriction of r into
  /// the coarse RHS, one pass per fine brick.
  std::function<void(BrickedArray& coarse_b, const Box& active)>
      smooth_residual_restrict;
  /// Fused GS tail: r = b - Ax + restriction, one pass per fine brick.
  std::function<void(BrickedArray& coarse_b)> residual_restrict;
  /// Fused convergence check: r = b - Ax and local max|r| in one pass.
  std::function<real_t()> residual_max_norm;
};

/// Resolve the kernel bindings and fusion predicate for one level.
/// Called from GmgSolver's constructor and again from set_coefficient
/// (the varcoef flip invalidates the const-coefficient bindings). The
/// sweep member pointer is assigned by the solver (it points at
/// private members).
void resolve_level_kernels(const GmgOptions& opts, MgLevel& lev);

}  // namespace gmg
