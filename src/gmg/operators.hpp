// The V-cycle operators on bricked storage (paper §IV-C):
//   applyOp            Ax = A x (7-point constant-coefficient stencil)
//   smooth             x := x + gamma*(Ax - b)          (point Jacobi)
//   smooth+residual    fused smooth and r = b - Ax
//   restriction        coarse b = volume average of 8 fine residuals
//   interp+increment   fine x += piecewise-constant coarse correction
//   initZero / maxNorm
//
// Every cell-space operator takes an *active region* that may extend
// into the ghost bricks; the communication-avoiding scheduler (see
// vcycle.hpp) shrinks it by one cell per sweep between exchanges.
#pragma once

#include "brick/bricked_array.hpp"
#include "check/effects.hpp"
#include "common/types.hpp"

namespace gmg {

class BrickMask;

/// Ax = alpha*x + beta * (6-point neighbor sum) over `active`.
void apply_op(BrickedArray& Ax, const BrickedArray& x, real_t alpha,
              real_t beta, const Box& active);

/// Masked applyOp (AMR composite levels, DESIGN.md §17): computes only
/// the bricks selected by `mask`; taps may read de-selected neighbors
/// (on a composite level those hold the restricted fine solution).
void apply_op(BrickedArray& Ax, const BrickedArray& x, real_t alpha,
              real_t beta, const Box& active, const BrickMask& mask);

/// x += gamma * (Ax - b) over `active`.
void smooth(BrickedArray& x, const BrickedArray& Ax, const BrickedArray& b,
            real_t gamma, const Box& active);

/// Fused point-Jacobi smooth and residual (r = b - Ax, using the
/// pre-smooth Ax, exactly as the paper's fused kernel does).
void smooth_residual(BrickedArray& x, BrickedArray& r, const BrickedArray& Ax,
                     const BrickedArray& b, real_t gamma, const Box& active);

/// r = b - Ax over `active`.
void residual(BrickedArray& r, const BrickedArray& b, const BrickedArray& Ax,
              const Box& active);

/// Masked residual: r = b - Ax on the bricks selected by `mask` only.
void residual(BrickedArray& r, const BrickedArray& b, const BrickedArray& Ax,
              const Box& active, const BrickMask& mask);

/// coarse(i,j,k) = average of the 8 fine cells it covers. Operates on
/// the full interiors; the grids must satisfy fine extent == 2x coarse
/// extent and share the same (cubic, even) brick shape.
void restriction(BrickedArray& coarse, const BrickedArray& fine);

/// fine(i,j,k) += coarse(i/2, j/2, k/2) over the full fine interior.
void interpolation_increment(BrickedArray& fine, const BrickedArray& coarse);

/// Zero the entire storage (interior and ghost bricks — ghost zeros
/// are valid periodic data for a zero field, saving one exchange after
/// initZero in the downsweep).
void init_zero(BrickedArray& a);

/// max |a| over the subdomain interior (this rank's part of the
/// convergence norm; reduce across ranks with allreduce_max).
real_t max_norm(const BrickedArray& a);

/// Sum of a(i)^2 over the interior (combine across ranks with
/// allreduce_sum, then sqrt, for the global L2 norm).
real_t norm2_sq(const BrickedArray& a);

// ---------------------------------------------------------------------------
// BLAS-1-style kernels. The *_interior forms scan the contiguous
// interior-brick storage range (used by the conjugate-gradient bottom
// solver); the Box forms honor a communication-avoiding active region
// (used by the Chebyshev smoother).
// ---------------------------------------------------------------------------

/// Local <a, b> over the interior.
real_t dot_interior(const BrickedArray& a, const BrickedArray& b);

/// y += alpha * x over the interior.
void axpy_interior(BrickedArray& y, real_t alpha, const BrickedArray& x);

/// y = x + beta * y over the interior (CG direction update).
void xpay_interior(BrickedArray& y, const BrickedArray& x, real_t beta);

/// dst = src over the interior.
void copy_interior(BrickedArray& dst, const BrickedArray& src);

/// y += alpha * x over `active`.
void axpy(BrickedArray& y, real_t alpha, const BrickedArray& x,
          const Box& active);

/// Chebyshev direction update: p = inv_diag * r + beta * p over
/// `active` (the preconditioned residual folded into the recurrence).
void cheby_p_update(BrickedArray& p, const BrickedArray& r, real_t inv_diag,
                    real_t beta, const Box& active);

/// One Gauss-Seidel half-sweep over the cells of one red-black color
/// (global parity of i+j+k, so the coloring is decomposition-
/// independent): x_i = (b_i - beta * sum of 6 neighbors) / alpha.
/// `origin` is this rank's global offset (rank_box.lo) so local cells
/// map to the global checkerboard. Radius-1 operator only.
void gs_color_sweep(BrickedArray& x, const BrickedArray& b, real_t alpha,
                    real_t beta, int color, Vec3 origin, const Box& active);

namespace detail {

// Per-chunk reduction bodies, shared between the solo reductions above
// and the per-component batched reductions (src/batch). noinline so
// both callers run the exact same compiled loop — hand a batched
// component's gathered chunk to the same function over the same chunk
// plan and the partial sums (and therefore the fixed reduction tree)
// are bitwise identical to solo.
[[gnu::noinline]] real_t sum_sq_range(const real_t* p, std::int64_t n);
[[gnu::noinline]] real_t dot_range(const real_t* a, const real_t* b,
                                   std::int64_t n);

}  // namespace detail

/// fine(i,j,k) = coarse(i/2,j/2,k/2) (piecewise-constant prolongation;
/// the increment form is the V-cycle's correction transfer).
void interpolation_assign(BrickedArray& fine, const BrickedArray& coarse);

/// Cell-centered trilinear prolongation (per-axis weights 3/4, 1/4) —
/// the higher-order transfer classic FMG requires for its initial
/// guesses. Reads one coarse ghost layer: exchange the coarse field
/// first.
void interpolation_trilinear_assign(BrickedArray& fine,
                                    const BrickedArray& coarse);

// ---------------------------------------------------------------------------
// Static effect summaries (check/effects.hpp, DESIGN.md §18): one
// constexpr EffectSummary per kernel above, consumed by the setup-time
// schedule verifier and enforced by gmg_lint rule effect-summary. The
// read reaches restate the constexpr DSL footprints — solver.cpp
// static_asserts pin the two representations to each other.
// ---------------------------------------------------------------------------

constexpr check::EffectSummary apply_op_effects(int radius) {
  return check::EffectSummary("kernel.applyOp")
      .writes("Ax")
      .reads("x", radius);
}

constexpr check::EffectSummary smooth_effects() {
  return check::EffectSummary("kernel.smooth")
      .writes("x")
      .reads("x")
      .reads("Ax")
      .reads("b");
}

constexpr check::EffectSummary smooth_residual_effects() {
  return check::EffectSummary("kernel.smoothResidual")
      .writes("x")
      .writes("r")
      .reads("x")
      .reads("Ax")
      .reads("b");
}

constexpr check::EffectSummary residual_effects() {
  return check::EffectSummary("kernel.residual")
      .writes("r")
      .reads("b")
      .reads("Ax");
}

/// Reads the 2x2x2 fine octant of every coarse cell: taps land inside
/// the fine interior whenever the coarse box does, hence reach 0.
constexpr check::EffectSummary restriction_effects() {
  return check::EffectSummary("kernel.restriction")
      .writes("coarse")
      .reads("fine");
}

constexpr check::EffectSummary interpolation_increment_effects() {
  return check::EffectSummary("kernel.interpIncrement")
      .writes("fine")
      .reads("fine")
      .reads("coarse");
}

constexpr check::EffectSummary interpolation_assign_effects() {
  return check::EffectSummary("kernel.interpAssign")
      .writes("fine")
      .reads("coarse");
}

/// Trilinear taps read one coarse ghost layer.
constexpr check::EffectSummary interpolation_trilinear_assign_effects() {
  return check::EffectSummary("kernel.interpTrilinear")
      .writes("fine")
      .reads("coarse", 1);
}

constexpr check::EffectSummary init_zero_effects() {
  return check::EffectSummary("kernel.initZero").writes("a");
}

constexpr check::EffectSummary max_norm_effects() {
  return check::EffectSummary("kernel.maxNorm").reads("a");
}

constexpr check::EffectSummary norm2_sq_effects() {
  return check::EffectSummary("kernel.norm2Sq").reads("a");
}

constexpr check::EffectSummary dot_interior_effects() {
  return check::EffectSummary("kernel.dot").reads("a").reads("b");
}

constexpr check::EffectSummary axpy_interior_effects() {
  return check::EffectSummary("kernel.axpy").writes("y").reads("y").reads("x");
}

constexpr check::EffectSummary xpay_interior_effects() {
  return check::EffectSummary("kernel.xpay").writes("y").reads("y").reads("x");
}

constexpr check::EffectSummary copy_interior_effects() {
  return check::EffectSummary("kernel.copy").writes("dst").reads("src");
}

constexpr check::EffectSummary axpy_effects() {
  return check::EffectSummary("kernel.axpyActive")
      .writes("y")
      .reads("y")
      .reads("x");
}

constexpr check::EffectSummary cheby_p_update_effects() {
  return check::EffectSummary("kernel.chebyP")
      .writes("p")
      .reads("p")
      .reads("r");
}

/// Each colored half-sweep reads the opposite color at radius 1 and
/// writes only its own parity cells.
constexpr check::EffectSummary gs_color_sweep_effects() {
  return check::EffectSummary("kernel.gsColorSweep")
      .writes("x")
      .reads("x", 1)
      .reads("b");
}

}  // namespace gmg
