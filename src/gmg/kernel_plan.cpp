#include "gmg/kernel_plan.hpp"

#include <array>

#include "dsl/apply_brick.hpp"
#include "dsl/generated/laplacian_7pt_gen.hpp"
#include "dsl/generated/star_13pt_gen.hpp"
#include "dsl/stencils.hpp"
#include "gmg/fused_kernels.hpp"
#include "gmg/level.hpp"
#include "gmg/operators.hpp"
#include "gmg/operators_varcoef.hpp"
#include "gmg/solver.hpp"

namespace gmg {

// This file IS the specializer registry: the only place in src/gmg
// that names the per-stage kernels directly. Everything in the sweep
// hot path (solver.cpp) calls through the bound functors —
// tools/gmg_lint enforces that no bare per-stage kernel call creeps
// back into the solver.
void resolve_level_kernels(const GmgOptions& opts, MgLevel& lev) {
  KernelPlan plan;
  plan.sweep = lev.plan.sweep;  // assigned by the solver; keep across
                                // a set_coefficient re-resolve

  const bool jacobi = opts.smoother == Smoother::kPointJacobi ||
                      opts.smoother == Smoother::kWeightedJacobi;
  plan.weight = opts.smoother == Smoother::kWeightedJacobi
                    ? opts.jacobi_weight
                    : real_t{0.5};
  // Fusion capability predicate (see kernel_plan.hpp): full descent
  // fusion needs a pointwise final smoother application (Jacobi
  // family); GS fuses only its residual+restriction tail; Chebyshev
  // falls back to the split schedule entirely. The residual+norm
  // fusion is smoother-independent.
  plan.fuse_descent = opts.fuse_stages && jacobi;
  plan.fuse_gs_tail =
      opts.fuse_stages && opts.smoother == Smoother::kRedBlackGS;
  plan.fuse_norm = opts.fuse_stages;

  // The functors capture the LEVEL pointer plus scalars by value:
  // detach/attach_field_storage reassigns the field BrickedArrays, so
  // bindings dereference through the level at call time. MgLevel
  // addresses are stable (levels_ is sized once at construction).
  MgLevel* L = &lev;

  // applyOp variant: the former branch chain in
  // GmgSolver::apply_operator, resolved once per level instead of per
  // sweep.
  if (lev.varcoef) {
    const real_t s = opts.identity_coef;
    plan.apply = [L, s](BrickedArray& out, const BrickedArray& in,
                        const Box& active) {
      apply_op_varcoef(out, in, L->coef, s, L->h, active);
    };
  } else if (opts.use_generated_kernels) {
    if (lev.radius == 1) {
      plan.apply = [L](BrickedArray& out, const BrickedArray& in,
                       const Box& active) {
        dsl::generated::laplacian_7pt(out, in, L->alpha, L->beta, active);
      };
    } else {
      plan.apply = [L](BrickedArray& out, const BrickedArray& in,
                       const Box& active) {
        dsl::generated::star_13pt(out, in, L->alpha, L->beta, L->beta2,
                                  active);
      };
    }
  } else if (lev.radius == 1) {
    plan.apply = [L](BrickedArray& out, const BrickedArray& in,
                     const Box& active) {
      apply_op(out, in, L->alpha, L->beta, active);
    };
  } else {
    plan.apply = [L](BrickedArray& out, const BrickedArray& in,
                     const Box& active) {
      const auto expr = dsl::star_stencil<2, 0>(
          std::array<real_t, 3>{L->alpha, L->beta, L->beta2});
      dsl::apply(expr, out, active, in);
    };
  }

  // Pointwise smoother stage, const/var coefficient resolved here.
  const real_t weight = plan.weight;
  if (lev.varcoef) {
    plan.smooth = [L, weight](const Box& active) {
      smooth_varcoef(L->x, L->Ax, L->b, L->diag, weight, active);
    };
    plan.smooth_residual = [L, weight](const Box& active) {
      smooth_residual_varcoef(L->x, L->r, L->Ax, L->b, L->diag, weight,
                              active);
    };
    plan.smooth_residual_restrict = [L, weight](BrickedArray& coarse_b,
                                                const Box& active) {
      fused::smooth_residual_restrict_varcoef(L->x, L->r, coarse_b, L->Ax,
                                              L->b, L->diag, weight, active);
    };
  } else {
    const real_t gamma = -weight / lev.alpha;
    plan.smooth = [L, gamma](const Box& active) {
      smooth(L->x, L->Ax, L->b, gamma, active);
    };
    plan.smooth_residual = [L, gamma](const Box& active) {
      smooth_residual(L->x, L->r, L->Ax, L->b, gamma, active);
    };
    plan.smooth_residual_restrict = [L, gamma](BrickedArray& coarse_b,
                                               const Box& active) {
      fused::smooth_residual_restrict(L->x, L->r, coarse_b, L->Ax, L->b,
                                      gamma, active);
    };
  }

  plan.residual_restrict = [L](BrickedArray& coarse_b) {
    fused::residual_restrict(L->r, coarse_b, L->b, L->Ax);
  };
  plan.residual_max_norm = [L]() {
    return fused::residual_max_norm(L->r, L->b, L->Ax);
  };

  lev.plan = std::move(plan);
}

}  // namespace gmg
