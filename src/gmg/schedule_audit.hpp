// Dry-run schedule recording for GmgSolver (DESIGN.md §18). The
// ScheduleWalker replicates the solver's cycle routines — the CA
// margin algebra, the aggregated-exchange decisions, the split-phase
// overlap branches, and the fused-plan capability checks — step for
// step against the live MgLevel/KernelPlan state, but instead of
// launching kernels it records check::ScheduleStep entries. The
// resulting Schedule is the complete planned launch/exchange sequence
// of a solve, proven hazard-free by check::ScheduleVerifier at setup
// time (the GmgSolver constructor runs verify_solver_schedule before
// returning).
//
// The walker is the one place outside solver.cpp that re-states the
// sweep schedules; tests/test_schedule.cpp pins the two together by
// asserting the verifier accepts exactly the configurations whose
// GMG_CHECK-instrumented runs execute clean.
#pragma once

#include <string>

#include "check/schedule.hpp"
#include "gmg/solver.hpp"

namespace gmg {

/// Mirrors one solve's schedule against `s` into a recorder. Keeps its
/// own per-level margin/b_ghosts_valid shadow state so several cycles
/// (or an embedding composite walk — amr/composite_audit.cpp) can be
/// appended with the state carried across.
class ScheduleWalker {
 public:
  ScheduleWalker(check::ScheduleRecorder& rec, const GmgSolver& s);

  /// Register every solver level's LevelInfo with the recorder.
  void add_levels();
  /// Record the canonical post-set_rhs state: fine margin at brick
  /// depth with stale b ghosts, coarse margins spent, x/p fully valid
  /// from init_zero.
  void set_canonical_initial();

  /// Re-establish the fine-level state a composite correction solve
  /// creates (copy_interior into b, init_zero of x) — records the
  /// init_zero/copy steps and resets the walker's fine margin.
  void reset_fine_for_correction(const std::string& rhs_field);

  /// Batch width K: bottom-CG collectives record every component
  /// (unconditional across the batch — retirement-exempt), while
  /// residual_norm's per-component norms follow the retirement-masked
  /// active list. Solo default: K = 1, active = {0}.
  void set_num_components(int k) { num_components_ = k; }
  /// The components residual_norm's retirement-masked reductions
  /// cover; the batched audit shrinks this after recording a retire.
  void set_active_components(std::vector<int> comps) {
    active_components_ = std::move(comps);
  }

  /// One convergence-check pass: exchange-if-needed, applyOp,
  /// residual(+max-norm), allreduce.
  void residual_norm();
  /// One V (or W) cycle from the finest level.
  void vcycle();
  /// The FMG F-cycle: RHS restriction chain, bottom solve, prolonged
  /// initial guesses with one cycle per level.
  void fmg();

  index_t margin(int l) const;

  /// Canonical field name used for solver level fields in recorded
  /// schedules ("x", "b", "Ax", "r", "p", "coef", "diag").
  static std::string field(const char* name) { return name; }

 private:
  struct LevState {
    index_t margin = 0;
    bool b_ghosts_valid = false;
  };

  const MgLevel& lev(int l) const { return s_.level(l); }
  int bottom() const { return s_.bottom_level(); }
  bool ca() const { return s_.options().communication_avoiding; }
  bool cheby() const { return s_.options().smoother == Smoother::kChebyshev; }
  bool varcoef(int l) const { return lev(l).varcoef; }

  std::vector<std::string> smooth_exchange_fields(int l);
  index_t exchange_depth(int l) const;
  void exchange_for_smooth(int l);
  void begin_exchange_for_smooth(int l);
  /// applyOp over `active`, split-phase when the solver would split:
  /// begin, partial pass over the remote-clipped safe box, finish,
  /// then the full-region step. `in`/`out` name the bound fields.
  void apply_op(int l, const Box& active, const char* in, const char* out,
                bool split);
  void record_apply(int l, const Box& active, const char* in, const char* out,
                    bool partial);
  void add_chunk_writes(check::ScheduleStep& step, int l, const Box& active);

  void smooth_level(int l, int iterations, bool with_residual,
                    bool restrict_to_coarse);
  void jacobi_sweeps(int l, int iterations, bool with_residual,
                     bool restrict_to_coarse);
  void chebyshev_sweeps(int l, int iterations);
  void gs_sweeps(int l, int iterations, bool with_residual,
                 bool restrict_to_coarse);
  void bottom_solve();
  void bottom_cg(int l);
  void cycle_at(int l);

  check::ScheduleRecorder& rec_;
  const GmgSolver& s_;
  std::vector<LevState> st_;
  int num_components_ = 1;
  std::vector<int> active_components_{0};
};

/// Record the planned schedule of `cycles` V-cycles (with the
/// interleaved convergence checks solve() issues) from the canonical
/// post-set_rhs state.
check::Schedule record_solver_schedule(const GmgSolver& s, int cycles = 2);

/// Record the planned FMG schedule.
check::Schedule record_fmg_schedule(const GmgSolver& s);

/// Record and statically verify both schedules; throws gmg::Error with
/// the offending kernel pair on the first hazard. Called from the
/// GmgSolver constructor (and again after set_coefficient rebinds the
/// kernel plans) when check::verify_schedule_enabled().
void verify_solver_schedule(const GmgSolver& s);

}  // namespace gmg
