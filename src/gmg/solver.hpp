// Geometric multigrid solver with fine-grain data blocking — the
// paper's core contribution (Algorithms 1 and 2), extended with the
// variants §IX lists as future work: alternative smoothers (weighted
// Jacobi, Chebyshev), a conjugate-gradient bottom solver, W-cycles,
// full multigrid (FMG), and a 4th-order (radius-2) operator.
#pragma once

#include <atomic>
#include <functional>
#include <vector>

#include "brick/brick_arena.hpp"
#include "comm/simmpi.hpp"
#include "exec/engine.hpp"
#include "exec/runtime.hpp"
#include "gmg/level.hpp"
#include "perf/profiler.hpp"

namespace gmg {

/// Smoothing operator (paper §IV-C uses point Jacobi; §IX lists
/// alternatives as future work).
enum class Smoother {
  kPointJacobi,    // x += gamma (Ax - b), gamma = -1/(2 diag)
  kWeightedJacobi, // same with a configurable weight
  kChebyshev,      // polynomial smoother on D^-1 A eigenvalue bounds
  kRedBlackGS,     // red-black Gauss-Seidel (two colored half-sweeps)
};

enum class CycleType { kV, kW };

enum class BottomSolverType {
  kSmooth,             // the paper's 100 point-Jacobi iterations
  kConjugateGradient,  // matrix-free CG with global reductions
};

struct GmgOptions {
  /// Total number of grids in the V-cycle (the artifact's -l flag);
  /// the coarsest grid (index levels-1) hosts the bottom solver.
  /// Clamped so the coarsest subdomain still holds one whole brick.
  int levels = 6;
  /// Smoothing iterations per level per sweep (paper: 12).
  int smooths = 12;
  /// Bottom-solver budget: point-Jacobi iterations (paper: 100) or CG
  /// iterations.
  int bottom_smooths = 100;
  /// Convergence: max-norm of the residual (paper: 1e-10).
  real_t tolerance = 1e-10;
  /// Safety limit on V-cycles (the artifact's -n flag).
  int max_vcycles = 100;

  BrickShape brick = BrickShape::cube(8);
  /// Deep-ghost communication-avoiding smoothing (paper §V): exchange
  /// once per brick-depth/radius sweeps, computing redundantly into
  /// the ghost region. Off = exchange before every applyOp
  /// (Algorithm 2 as literally written).
  bool communication_avoiding = true;
  comm::BrickExchangeMode exchange_mode = comm::BrickExchangeMode::kPackFree;

  /// Overlap compute with the ghost exchange (DESIGN.md §10): each
  /// exchange runs split-phase, with the stencil applied over the
  /// interior brick partition on an exec::Engine worker while the
  /// messages fly, then over the surface shell once finish() returns.
  /// Bitwise identical to the blocking path (only the operator
  /// application is split by region; the pointwise x-update still runs
  /// as one full-region call). No effect on ranks with no remote
  /// neighbor.
  bool overlap = true;
  /// Levels with fewer interior (non-surface) bricks than this fall
  /// back to the blocking exchange even when `overlap` is on: on the
  /// coarse grids there is next to no interior work to hide the
  /// messages behind, so the split-phase machinery is pure overhead.
  int overlap_min_interior_bricks = 4;
  /// Second overlap cutoff, in work-vs-traffic terms: split-phase
  /// engages only where the interior field bytes (the compute hidden
  /// behind the messages) are at least this multiple of the remote
  /// payload bytes one exchange round moves. The brick-count floor
  /// above catches tiny coarse grids; this ratio catches the
  /// surface-dominated shapes in between, where the safe interior is a
  /// sliver and the split-phase machinery (stream submit, shell sweep
  /// bookkeeping, event wait) costs more than the messages it hides.
  /// Overlap is value-neutral (DESIGN.md §10), so this is purely a
  /// performance knob; 0 disables the ratio test. The default was set
  /// by measurement on fig8's 8-rank 64^3 problem: its split-phase
  /// levels sit at interior/payload ratios of 0.44 (L0) and 0.05 (L1)
  /// and hide 35–53% of the *visible* exchange wait there, yet the
  /// wall clock runs a consistent ~6–10% *slower* than blocking —
  /// with host-parallelism oversubscribed, the hidden wait is cost
  /// moved, not removed, and the split/submit/wait machinery is a
  /// pure add. 8.0 keeps split-phase for the regime where interior
  /// arithmetic genuinely dwarfs the traffic (roughly >=64^3 per rank
  /// at brick 4^3), and turns small-subdomain solves — including
  /// everything the serve tier batches — back into the cheaper
  /// blocking exchange. Set to 0 to measure raw split-phase behavior
  /// (what fig8 --overlap=on reports per level).
  double overlap_min_compute_bytes_ratio = 8.0;
  /// Upper bound on how many compatible requests the serve tier's
  /// coalescer may fuse into one batched solve through this hierarchy
  /// (src/batch). 1 = no coalescing. Not part of the hierarchy cache
  /// key: batching reuses the solo hierarchy's geometry unchanged.
  int max_batch = 1;

  /// The operator solved is A = identity_coef * I + laplacian_coef *
  /// Laplacian_h. The paper's model problem is (0, 1); an implicit
  /// heat step (I - nu*dt*Laplacian) u = rhs uses (1, -nu*dt).
  real_t identity_coef = 0.0;
  real_t laplacian_coef = 1.0;
  /// Laplacian discretization: 1 = the paper's 2nd-order 7-point
  /// star; 2 = 4th-order 13-point star (radius 2).
  int operator_radius = 1;

  Smoother smoother = Smoother::kPointJacobi;
  real_t jacobi_weight = 0.5;  // used by kWeightedJacobi
  /// Chebyshev smoothing interval on the spectrum of D^-1 A:
  /// [lambda_max * min_frac, lambda_max].
  real_t cheby_lambda_max = 1.9;
  real_t cheby_min_frac = 0.125;

  CycleType cycle = CycleType::kV;
  BottomSolverType bottom = BottomSolverType::kSmooth;
  real_t bottom_cg_tolerance = 1e-12;

  /// Route applyOp through the stencilgen-emitted kernels
  /// (src/dsl/generated/) instead of the hand-written ones — the
  /// "everything through the code generator" configuration BrickLib
  /// itself runs in. Constant-coefficient operators only.
  bool use_generated_kernels = false;

  /// Cross-stage kernel fusion for the V-cycle descent (DESIGN.md
  /// §16): where the smoother permits it, the final smooth + residual
  /// + restriction run as ONE pass over each fine brick, and
  /// residual_norm fuses the residual with its max-norm reduction.
  /// Jacobi/weighted Jacobi fuse fully; red-black GS fuses its
  /// residual+restriction tail; Chebyshev falls back to the split
  /// schedule (its recurrence consumes r every sweep). Value-neutral:
  /// fused results are bitwise identical to the split path. The
  /// GMG_FUSE_STAGES environment variable ("0" disables) overrides
  /// this at construction, mirroring GMG_EXEC_WORKERS.
  bool fuse_stages = true;
};

struct SolveResult {
  int vcycles = 0;
  real_t final_residual = 0;
  bool converged = false;
  /// The solve stopped early because its SolveControl was cancelled or
  /// its deadline passed (see GmgSolver::solve).
  bool cancelled = false;
  double seconds = 0;
  /// Residual max-norm before the first cycle and after each cycle.
  std::vector<real_t> history;
};

/// External control of an in-flight solve (the serve layer's
/// cancellation/deadline hook). One instance may be shared by every
/// rank of a solve: the abort decision is made *collectively* — each
/// rank contributes its local view through an allreduce once per cycle
/// — so all ranks leave the cycle loop together and no rank blocks in
/// a collective its peers never enter.
struct SolveControl {
  std::atomic<bool> cancel{false};
  /// Absolute deadline on the trace::now_ns() clock; 0 = none.
  std::uint64_t deadline_ns = 0;
};

class GmgSolver {
 public:
  /// Build the hierarchy for this rank of `decomp`. The physical
  /// domain is the unit cube; h at the finest level is
  /// 1/global_extent.x.
  GmgSolver(const GmgOptions& opts, const CartDecomp& decomp, int rank);

  int num_levels() const { return static_cast<int>(levels_.size()); }
  int bottom_level() const { return num_levels() - 1; }
  MgLevel& level(int l) { return levels_[static_cast<std::size_t>(l)]; }
  const MgLevel& level(int l) const {
    return levels_[static_cast<std::size_t>(l)];
  }
  const GmgOptions& options() const { return opts_; }
  int rank() const { return rank_; }
  /// The decomposition this hierarchy was built for (kept by value so
  /// batched twins — src/batch — can build their own stretched-shape
  /// exchange engines against the same rank geometry).
  const CartDecomp& decomp() const { return decomp_; }

  /// Per-request solve parameters that do not affect hierarchy setup
  /// (the serve layer reuses one cached hierarchy across requests with
  /// different accuracy targets).
  void set_solve_params(real_t tolerance, int max_vcycles) {
    opts_.tolerance = tolerance;
    opts_.max_vcycles = max_vcycles;
  }

  /// Initialize b on the finest level from a function of physical
  /// cell-center coordinates in [0,1)^3, and reset x to zero.
  void set_rhs(const std::function<real_t(real_t, real_t, real_t)>& f);

  /// Switch to the variable-coefficient operator
  /// A = identity_coef*I + div(beta grad .) with the cell-centered
  /// coefficient beta(x,y,z) > 0. The coefficient is evaluated on the
  /// finest level, volume-average restricted down the hierarchy, and
  /// its ghosts exchanged (hence the communicator). Requires
  /// operator_radius == 1.
  void set_coefficient(comm::Communicator& comm,
                       const std::function<real_t(real_t, real_t, real_t)>& f);

  /// Algorithm 1: cycle until the global residual max-norm drops
  /// below tolerance. With `control`, the loop additionally stops —
  /// collectively, at a cycle boundary — once the cancel flag is set
  /// or the deadline has passed on any rank (result.cancelled). The
  /// solver is re-entrant across calls: set_rhs() + solve() on a
  /// once-built hierarchy is bitwise identical to a fresh solver.
  SolveResult solve(comm::Communicator& comm,
                    const SolveControl* control = nullptr);

  /// Hand every per-solve field (x, b, Ax, r, and the Chebyshev/CG
  /// direction p) of every level to `arena`, leaving the hierarchy a
  /// storage-less skeleton: geometry, stencil coefficients, exchange
  /// engines, cached iteration plans, and the variable-coefficient
  /// operator (coef/diag) stay resident. The serve layer parks cached
  /// hierarchies this way so idle entries hold no field memory.
  void detach_field_storage(BrickArena& arena);

  /// Re-acquire the detached fields from `arena` (zeroed, so a
  /// following set_rhs()/solve() behaves exactly like a fresh solver).
  /// No-op when storage is already attached.
  void attach_field_storage(BrickArena& arena);

  /// Whether the per-solve fields are currently detached.
  bool storage_detached() const { return storage_detached_; }

  /// One multigrid cycle rooted at the finest level (V or W according
  /// to options().cycle).
  void vcycle(comm::Communicator& comm);

  /// Full multigrid: restrict the RHS down the hierarchy, solve the
  /// coarsest, and work upward using prolonged solutions as initial
  /// guesses with one cycle per level. Typically reaches
  /// discretization accuracy in a single pass; follow with solve()
  /// for tighter algebraic tolerances.
  void fmg(comm::Communicator& comm);

  /// Global max-norm of the finest-level residual (collective).
  real_t residual_norm(comm::Communicator& comm);
  /// Global L2 norm of the finest-level residual (collective).
  /// Recomputes Ax; call after residual_norm or a cycle.
  real_t residual_norm_l2(comm::Communicator& comm);

  const BrickedArray& solution() const { return levels_.front().x; }
  BrickedArray& solution() { return levels_.front().x; }

  perf::Profiler& profiler() { return profiler_; }
  const perf::Profiler& profiler() const { return profiler_; }

 private:
  /// Apply this level's operator over `active` — dispatches through
  /// the level's resolved KernelPlan binding.
  void apply_operator(MgLevel& lev, BrickedArray& out, const BrickedArray& in,
                      const Box& active);

  /// Resolve every level's KernelPlan (kernel bindings + fusion
  /// predicate + sweep routine). Called from the constructor and again
  /// from set_coefficient.
  void resolve_kernel_plans();

  /// One smoothing block at `lev`: `iterations` sweeps of the selected
  /// smoother with CA-scheduled exchanges, dispatched through the
  /// level's resolved plan. A non-null `restrict_to` asks the sweep to
  /// fuse the descent restriction of r into it where the plan permits
  /// (cycle_at checks plan.fuses_restriction() to know whether the
  /// separate restriction pass is still needed).
  void smooth_level(comm::Communicator& comm, MgLevel& lev, int iterations,
                    bool with_residual, BrickedArray* restrict_to = nullptr);
  void jacobi_sweeps(comm::Communicator& comm, MgLevel& lev, int iterations,
                     bool with_residual, BrickedArray* restrict_to);
  void chebyshev_sweeps(comm::Communicator& comm, MgLevel& lev,
                        int iterations, bool with_residual,
                        BrickedArray* restrict_to);
  void gs_sweeps(comm::Communicator& comm, MgLevel& lev, int iterations,
                 bool with_residual, BrickedArray* restrict_to);

  void bottom_solve(comm::Communicator& comm);
  void bottom_cg(comm::Communicator& comm, MgLevel& lev);

  /// The single sanctioned direct-exchange entry point outside the
  /// exchange_for_smooth family (gmg_lint rule exchange-in-schedule-fn
  /// forbids bare `lev.exchange->exchange(...)` calls in schedule
  /// code): one blocking round on `field`. Margin bookkeeping stays at
  /// the call sites — the callers' margin algebra is what the schedule
  /// verifier proves.
  void exchange_now(comm::Communicator& comm, MgLevel& lev,
                    BrickedArray& field);

  /// Recursive cycle body rooted at level l.
  void cycle_at(comm::Communicator& comm, int l);

  void exchange_for_smooth(comm::Communicator& comm, MgLevel& lev);

  // Split-phase overlap machinery (DESIGN.md §10).
  /// Whether this level's exchanges should run split-phase.
  bool use_overlap(const MgLevel& lev) const;
  /// begin() half of exchange_for_smooth: same field aggregation and
  /// margin bookkeeping, but returns with the messages still in
  /// flight.
  void begin_exchange_for_smooth(comm::Communicator& comm, MgLevel& lev);
  /// The subregion of `active` whose stencil taps touch no remote
  /// ghost brick — safe to compute while the exchange is in flight.
  Box overlap_safe_box(const MgLevel& lev, const Box& active) const;
  /// Complete a begun exchange while `kernel` runs over the safe
  /// subregion of `active` on an engine stream; after finish(), run
  /// `kernel` over the remaining surface shell on this thread while
  /// the interior task drains. Both parts are profiled under `phase`.
  void finish_exchange_overlapped(
      comm::Communicator& comm, MgLevel& lev, const Box& active,
      perf::Phase phase, const std::function<void(const Box&)>& kernel);
  /// The process-wide runtime engine (exec::default_engine()), with
  /// this solver's compute stream recreated whenever
  /// configure_default_engine() has replaced the pool.
  exec::Engine& engine();

  /// Whether the configured smoother/bottom solver needs the p field.
  bool needs_p() const {
    return opts_.smoother == Smoother::kChebyshev ||
           opts_.bottom == BottomSolverType::kConjugateGradient;
  }

  /// The dry-run schedule walker (schedule_audit.cpp) replicates the
  /// sweep routines' margin algebra and overlap decisions; it needs
  /// use_overlap/needs_p but must not mutate anything.
  friend class ScheduleWalker;

  GmgOptions opts_;
  CartDecomp decomp_;
  int rank_;
  bool storage_detached_ = false;
  std::vector<MgLevel> levels_;
  perf::Profiler profiler_;
  /// Generation of exec::default_engine() that compute_stream_ was
  /// created on; 0 = not yet created (generations start at 1).
  std::uint64_t engine_generation_ = 0;
  exec::Stream compute_stream_;
};

}  // namespace gmg
