#include "gmg/schedule_audit.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "gmg/fused_kernels.hpp"
#include "gmg/operators.hpp"
#include "gmg/operators_varcoef.hpp"

namespace gmg {

namespace {

using check::read_access;
using check::write_access;

// Representative planned bottom-CG iterations: each iteration has the
// identical launch/exchange/reduction structure, so two suffice to
// prove the loop body (the real count is data-dependent and bounded by
// bottom_smooths).
constexpr int kRecordedCgIterations = 2;

}  // namespace

ScheduleWalker::ScheduleWalker(check::ScheduleRecorder& rec,
                               const GmgSolver& s)
    : rec_(rec), s_(s) {
  st_.resize(static_cast<std::size_t>(s.num_levels()));
}

index_t ScheduleWalker::margin(int l) const {
  return st_[static_cast<std::size_t>(l)].margin;
}

void ScheduleWalker::add_levels() {
  for (int l = 0; l < s_.num_levels(); ++l) {
    const MgLevel& L = lev(l);
    check::LevelInfo info;
    info.level = l;
    info.interior = L.interior();
    info.ghost_depth = L.shape.bx;
    for (int d = 0; d < 3; ++d) {
      int off[3] = {0, 0, 0};
      off[d] = -1;
      info.remote_lo[d] = L.remote[static_cast<std::size_t>(
          direction_index(off[0], off[1], off[2]))];
      off[d] = 1;
      info.remote_hi[d] = L.remote[static_cast<std::size_t>(
          direction_index(off[0], off[1], off[2]))];
    }
    rec_.add_level(info);
  }
}

void ScheduleWalker::set_canonical_initial() {
  // Mirrors GmgSolver::set_rhs: fine x freshly init_zero'd (ghost
  // zeros are valid), fine b interior-written with stale ghosts,
  // coarse x/b init_zero'd but their margins spent, p init_zero'd
  // everywhere. The variable-coefficient fields were exchanged /
  // ghost-computed at set_coefficient time.
  for (int l = 0; l < s_.num_levels(); ++l) {
    const index_t bx = lev(l).shape.bx;
    rec_.set_initial("x", l, bx);
    if (l > 0) rec_.set_initial("b", l, bx);
    rec_.set_initial("p", l, bx);
    rec_.set_initial("coef", l, bx);
    rec_.set_initial("diag", l, bx - 1);
    st_[static_cast<std::size_t>(l)].margin = l == 0 ? bx : 0;
    st_[static_cast<std::size_t>(l)].b_ghosts_valid = false;
  }
}

void ScheduleWalker::reset_fine_for_correction(const std::string& rhs_field) {
  const Box interior = lev(0).interior();
  check::ScheduleStep& cp =
      rec_.kernel("kernel.copy", 0, copy_interior_effects());
  cp.accesses.push_back(write_access("b", 0, interior, "dst"));
  cp.accesses.push_back(read_access(rhs_field, 0, interior, 0, "src"));
  check::ScheduleStep& iz =
      rec_.kernel("kernel.initZero", 0, init_zero_effects());
  iz.accesses.push_back(
      write_access("x", 0, grow(interior, lev(0).shape.bx), "a"));
  st_[0].margin = lev(0).shape.bx;
  st_[0].b_ghosts_valid = false;
}

std::vector<std::string> ScheduleWalker::smooth_exchange_fields(int l) {
  // Mirrors exchange_for_smooth's aggregation: x always; b when its
  // ghosts are stale under CA; p for the CA Chebyshev recurrence.
  LevState& ls = st_[static_cast<std::size_t>(l)];
  std::vector<std::string> fields{"x"};
  if (ca() && !ls.b_ghosts_valid) {
    fields.push_back("b");
    ls.b_ghosts_valid = true;
  }
  const bool with_p = cheby() && lev(l).p.size() != 0;
  if (with_p && ca()) fields.push_back("p");
  return fields;
}

index_t ScheduleWalker::exchange_depth(int l) const {
  const MgLevel& L = lev(l);
  return L.exchange ? L.exchange->ghost_layers() : L.shape.bx;
}

void ScheduleWalker::exchange_for_smooth(int l) {
  const index_t depth = exchange_depth(l);
  rec_.exchange(l, smooth_exchange_fields(l), depth);
  st_[static_cast<std::size_t>(l)].margin = depth;
}

void ScheduleWalker::begin_exchange_for_smooth(int l) {
  const index_t depth = exchange_depth(l);
  rec_.exchange_begin(l, smooth_exchange_fields(l), depth);
  st_[static_cast<std::size_t>(l)].margin = depth;
}

void ScheduleWalker::record_apply(int l, const Box& active, const char* in,
                                  const char* out, bool partial) {
  const MgLevel& L = lev(l);
  check::ScheduleStep& step = rec_.kernel(
      L.varcoef ? "kernel.applyOpVarCoef" : "kernel.applyOp", l,
      L.varcoef ? apply_op_varcoef_effects()
                : apply_op_effects(static_cast<int>(L.radius)));
  step.partial = partial;
  step.accesses.push_back(write_access(out, l, active, "Ax"));
  step.accesses.push_back(
      read_access(in, l, active, static_cast<int>(L.radius), "x"));
  if (L.varcoef)
    step.accesses.push_back(read_access("coef", l, active, 1, "coef"));
}

void ScheduleWalker::apply_op(int l, const Box& active, const char* in,
                              const char* out, bool split) {
  if (split) {
    const Box safe = s_.overlap_safe_box(lev(l), active);
    if (!safe.empty()) record_apply(l, safe, in, out, /*partial=*/true);
    rec_.exchange_finish(l);
    record_apply(l, active, in, out, /*partial=*/false);
  } else {
    record_apply(l, active, in, out, /*partial=*/false);
  }
}

void ScheduleWalker::add_chunk_writes(check::ScheduleStep& step, int l,
                                      const Box& active) {
  // Replicate the cached iteration plan's chunking: one chunk per
  // brick intersecting `active`, clipped to it — the per-brick write
  // region of a fused launch (interior bricks plus the CA redundant
  // ghost-brick slabs).
  const BrickShape& sh = lev(l).shape;
  const Vec3 pitch{sh.bx, sh.by, sh.bz};
  auto floor_div = [](index_t a, index_t p) {
    return a >= 0 ? a / p : -((-a + p - 1) / p);
  };
  Box bricks;
  for (int d = 0; d < 3; ++d) {
    bricks.lo[d] = floor_div(active.lo[d], pitch[d]);
    bricks.hi[d] = floor_div(active.hi[d] - 1, pitch[d]) + 1;
  }
  step.chunk_pitch = pitch;
  step.chunk_writes.reserve(static_cast<std::size_t>(bricks.volume()));
  for_each(bricks, [&](index_t bi, index_t bj, index_t bk) {
    const Box brick{{bi * pitch.x, bj * pitch.y, bk * pitch.z},
                    {(bi + 1) * pitch.x, (bj + 1) * pitch.y,
                     (bk + 1) * pitch.z}};
    const Box clip = intersect(brick, active);
    if (!clip.empty()) step.chunk_writes.push_back(clip);
  });
}

void ScheduleWalker::smooth_level(int l, int iterations, bool with_residual,
                                  bool restrict_to_coarse) {
  switch (s_.options().smoother) {
    case Smoother::kPointJacobi:
    case Smoother::kWeightedJacobi:
      jacobi_sweeps(l, iterations, with_residual, restrict_to_coarse);
      break;
    case Smoother::kChebyshev:
      chebyshev_sweeps(l, iterations);
      break;
    case Smoother::kRedBlackGS:
      gs_sweeps(l, iterations, with_residual, restrict_to_coarse);
      break;
  }
}

void ScheduleWalker::jacobi_sweeps(int l, int iterations, bool with_residual,
                                   bool restrict_to_coarse) {
  const MgLevel& L = lev(l);
  LevState& ls = st_[static_cast<std::size_t>(l)];
  const Box interior = L.interior();
  const index_t radius = L.radius;
  for (int it = 0; it < iterations; ++it) {
    Box active = interior;
    bool split = false;
    if (ca()) {
      if (ls.margin < radius || !ls.b_ghosts_valid) {
        split = s_.use_overlap(L);
        if (split)
          begin_exchange_for_smooth(l);
        else
          exchange_for_smooth(l);
      }
      active = grow(interior, ls.margin - radius);
    } else {
      split = s_.use_overlap(L);
      if (split)
        begin_exchange_for_smooth(l);
      else
        exchange_for_smooth(l);
      ls.margin = 0;
    }
    apply_op(l, active, "x", "Ax", split);

    const bool fuse_final = with_residual && restrict_to_coarse &&
                            L.plan.fuse_descent && it == iterations - 1;
    if (fuse_final) {
      check::ScheduleStep& step = rec_.kernel(
          L.varcoef ? "kernel.fusedDescentVarCoef" : "kernel.fusedDescent", l,
          L.varcoef ? fused::smooth_residual_restrict_varcoef_effects()
                    : fused::smooth_residual_restrict_effects());
      step.accesses.push_back(write_access("x", l, active, "x"));
      step.accesses.push_back(write_access("r", l, active, "r"));
      step.accesses.push_back(
          write_access("b", l + 1, lev(l + 1).interior(), "coarse"));
      step.accesses.push_back(read_access("x", l, active, 0, "x"));
      step.accesses.push_back(read_access("Ax", l, active, 0, "Ax"));
      step.accesses.push_back(read_access("b", l, active, 0, "b"));
      if (L.varcoef)
        step.accesses.push_back(read_access("diag", l, active, 0, "diag"));
      add_chunk_writes(step, l, active);
    } else if (with_residual) {
      check::ScheduleStep& step = rec_.kernel(
          L.varcoef ? "kernel.smoothResidualVarCoef" : "kernel.smoothResidual",
          l,
          L.varcoef ? smooth_residual_varcoef_effects()
                    : smooth_residual_effects());
      step.accesses.push_back(write_access("x", l, active, "x"));
      step.accesses.push_back(write_access("r", l, active, "r"));
      step.accesses.push_back(read_access("x", l, active, 0, "x"));
      step.accesses.push_back(read_access("Ax", l, active, 0, "Ax"));
      step.accesses.push_back(read_access("b", l, active, 0, "b"));
      if (L.varcoef)
        step.accesses.push_back(read_access("diag", l, active, 0, "diag"));
    } else {
      check::ScheduleStep& step = rec_.kernel(
          L.varcoef ? "kernel.smoothVarCoef" : "kernel.smooth", l,
          L.varcoef ? smooth_varcoef_effects() : smooth_effects());
      step.accesses.push_back(write_access("x", l, active, "x"));
      step.accesses.push_back(read_access("x", l, active, 0, "x"));
      step.accesses.push_back(read_access("Ax", l, active, 0, "Ax"));
      step.accesses.push_back(read_access("b", l, active, 0, "b"));
      if (L.varcoef)
        step.accesses.push_back(read_access("diag", l, active, 0, "diag"));
    }
    if (ca()) ls.margin -= radius;
  }
}

void ScheduleWalker::chebyshev_sweeps(int l, int iterations) {
  const MgLevel& L = lev(l);
  LevState& ls = st_[static_cast<std::size_t>(l)];
  const Box interior = L.interior();
  const index_t radius = L.radius;
  for (int it = 0; it < iterations; ++it) {
    Box active = interior;
    bool split = false;
    if (ca()) {
      if (ls.margin < radius || !ls.b_ghosts_valid) {
        split = s_.use_overlap(L);
        if (split)
          begin_exchange_for_smooth(l);
        else
          exchange_for_smooth(l);
      }
      active = grow(interior, ls.margin - radius);
    } else {
      split = s_.use_overlap(L);
      if (split)
        begin_exchange_for_smooth(l);
      else
        exchange_for_smooth(l);
      ls.margin = 0;
    }
    apply_op(l, active, "x", "Ax", split);

    check::ScheduleStep& res =
        rec_.kernel("kernel.residual", l, residual_effects());
    res.accesses.push_back(write_access("r", l, active, "r"));
    res.accesses.push_back(read_access("b", l, active, 0, "b"));
    res.accesses.push_back(read_access("Ax", l, active, 0, "Ax"));

    check::ScheduleStep& pup = rec_.kernel(
        L.varcoef ? "kernel.chebyPVarCoef" : "kernel.chebyP", l,
        L.varcoef ? cheby_p_update_varcoef_effects() : cheby_p_update_effects());
    pup.accesses.push_back(write_access("p", l, active, "p"));
    pup.accesses.push_back(read_access("p", l, active, 0, "p"));
    pup.accesses.push_back(read_access("r", l, active, 0, "r"));
    if (L.varcoef)
      pup.accesses.push_back(read_access("diag", l, active, 0, "diag"));

    check::ScheduleStep& ax =
        rec_.kernel("kernel.axpyActive", l, axpy_effects());
    ax.accesses.push_back(write_access("x", l, active, "y"));
    ax.accesses.push_back(read_access("x", l, active, 0, "y"));
    ax.accesses.push_back(read_access("p", l, active, 0, "x"));

    if (ca()) ls.margin -= radius;
  }
}

void ScheduleWalker::gs_sweeps(int l, int iterations, bool with_residual,
                               bool restrict_to_coarse) {
  const MgLevel& L = lev(l);
  LevState& ls = st_[static_cast<std::size_t>(l)];
  const Box interior = L.interior();
  auto color_sweep = [&](const Box& region, bool partial) {
    check::ScheduleStep& step =
        rec_.kernel("kernel.gsColorSweep", l, gs_color_sweep_effects());
    step.partial = partial;
    step.accesses.push_back(write_access("x", l, region, "x"));
    step.accesses.push_back(read_access("x", l, region, 1, "x"));
    step.accesses.push_back(read_access("b", l, region, 0, "b"));
  };
  for (int it = 0; it < iterations; ++it) {
    if (ca()) {
      bool split = false;
      if (ls.margin < 2 || !ls.b_ghosts_valid) {
        split = s_.use_overlap(L);
        if (split)
          begin_exchange_for_smooth(l);
        else
          exchange_for_smooth(l);
      }
      const Box red_box = grow(interior, ls.margin - 1);
      const Box black_box = grow(interior, ls.margin - 2);
      if (split) {
        const Box safe = s_.overlap_safe_box(L, red_box);
        if (!safe.empty()) color_sweep(safe, /*partial=*/true);
        rec_.exchange_finish(l);
        color_sweep(red_box, /*partial=*/false);
        color_sweep(black_box, /*partial=*/false);
      } else {
        color_sweep(red_box, /*partial=*/false);
        color_sweep(black_box, /*partial=*/false);
      }
      ls.margin -= 2;
    } else {
      for (int color = 0; color < 2; ++color) {
        if (s_.use_overlap(L)) {
          begin_exchange_for_smooth(l);
          const Box safe = s_.overlap_safe_box(L, interior);
          if (!safe.empty()) color_sweep(safe, /*partial=*/true);
          rec_.exchange_finish(l);
          color_sweep(interior, /*partial=*/false);
        } else {
          exchange_for_smooth(l);
          color_sweep(interior, /*partial=*/false);
        }
      }
      ls.margin = 0;
    }
  }
  if (with_residual) {
    if (ls.margin < 1) {
      if (s_.use_overlap(L)) {
        begin_exchange_for_smooth(l);
        apply_op(l, interior, "x", "Ax", /*split=*/true);
      } else {
        exchange_for_smooth(l);
        apply_op(l, interior, "x", "Ax", /*split=*/false);
      }
    } else {
      apply_op(l, interior, "x", "Ax", /*split=*/false);
    }
    if (restrict_to_coarse && L.plan.fuse_gs_tail) {
      check::ScheduleStep& step =
          rec_.kernel("kernel.fusedGsTail", l, fused::residual_restrict_effects());
      step.accesses.push_back(write_access("r", l, interior, "r"));
      step.accesses.push_back(
          write_access("b", l + 1, lev(l + 1).interior(), "coarse"));
      step.accesses.push_back(read_access("b", l, interior, 0, "b"));
      step.accesses.push_back(read_access("Ax", l, interior, 0, "Ax"));
      add_chunk_writes(step, l, interior);
    } else {
      check::ScheduleStep& res =
          rec_.kernel("kernel.residual", l, residual_effects());
      res.accesses.push_back(write_access("r", l, interior, "r"));
      res.accesses.push_back(read_access("b", l, interior, 0, "b"));
      res.accesses.push_back(read_access("Ax", l, interior, 0, "Ax"));
    }
  }
}

void ScheduleWalker::bottom_solve() {
  const int l = bottom();
  if (s_.options().bottom == BottomSolverType::kSmooth) {
    smooth_level(l, s_.options().bottom_smooths, /*with_residual=*/false,
                 /*restrict_to_coarse=*/false);
  } else {
    bottom_cg(l);
  }
}

void ScheduleWalker::bottom_cg(int l) {
  const MgLevel& L = lev(l);
  LevState& ls = st_[static_cast<std::size_t>(l)];
  const Box interior = L.interior();
  if (ls.margin < L.radius) {
    const index_t depth = exchange_depth(l);
    rec_.exchange(l, {"x"}, depth);
    ls.margin = depth;
  }
  apply_op(l, interior, "x", "Ax", /*split=*/false);
  check::ScheduleStep& res =
      rec_.kernel("kernel.residual", l, residual_effects());
  res.accesses.push_back(write_access("r", l, interior, "r"));
  res.accesses.push_back(read_access("b", l, interior, 0, "b"));
  res.accesses.push_back(read_access("Ax", l, interior, 0, "Ax"));
  check::ScheduleStep& cp =
      rec_.kernel("kernel.copy", l, copy_interior_effects());
  cp.accesses.push_back(write_access("p", l, interior, "dst"));
  cp.accesses.push_back(read_access("r", l, interior, 0, "src"));
  // The entry rr pass is unconditional over the whole batch (retired
  // components keep riding so the collective count stays uniform).
  const int rr_group = rec_.next_reduction_group();
  for (int c = 0; c < num_components_; ++c)
    rec_.reduction("allreduce.dot_rr", l, c, rr_group);

  for (int it = 0; it < kRecordedCgIterations; ++it) {
    rec_.exchange(l, {"p"}, exchange_depth(l));
    // Ax := A p — the plan's applyOp bound to the direction field.
    check::ScheduleStep& ap = rec_.kernel(
        L.varcoef ? "kernel.applyOpVarCoef" : "kernel.applyOp", l,
        L.varcoef ? apply_op_varcoef_effects()
                  : apply_op_effects(static_cast<int>(L.radius)));
    ap.accesses.push_back(write_access("Ax", l, interior, "Ax"));
    ap.accesses.push_back(
        read_access("p", l, interior, static_cast<int>(L.radius), "x"));
    if (L.varcoef)
      ap.accesses.push_back(read_access("coef", l, interior, 1, "coef"));
    // One iteration's collective sequence: per component (ascending),
    // pAp then the refreshed rr — components 0,0,1,1,... within the
    // group, non-decreasing, exactly the batched loop's order.
    const int it_group = rec_.next_reduction_group();
    for (int c = 0; c < num_components_; ++c) {
      rec_.reduction("allreduce.dot_pAp", l, c, it_group);
      if (c == 0) {
        check::ScheduleStep& ax =
            rec_.kernel("kernel.axpy", l, axpy_interior_effects());
        ax.accesses.push_back(write_access("x", l, interior, "y"));
        ax.accesses.push_back(read_access("x", l, interior, 0, "y"));
        ax.accesses.push_back(read_access("p", l, interior, 0, "x"));
        check::ScheduleStep& ar =
            rec_.kernel("kernel.axpy", l, axpy_interior_effects());
        ar.accesses.push_back(write_access("r", l, interior, "y"));
        ar.accesses.push_back(read_access("r", l, interior, 0, "y"));
        ar.accesses.push_back(read_access("Ax", l, interior, 0, "x"));
      }
      rec_.reduction("allreduce.dot_rr", l, c, it_group);
      if (c == 0) {
        check::ScheduleStep& xp =
            rec_.kernel("kernel.xpay", l, xpay_interior_effects());
        xp.accesses.push_back(write_access("p", l, interior, "y"));
        xp.accesses.push_back(read_access("p", l, interior, 0, "y"));
        xp.accesses.push_back(read_access("r", l, interior, 0, "x"));
      }
    }
  }
  ls.margin = 0;
}

void ScheduleWalker::cycle_at(int l) {
  if (l == bottom()) {
    bottom_solve();
    return;
  }
  const MgLevel& L = lev(l);
  const bool fuses = L.plan.fuses_restriction();
  smooth_level(l, s_.options().smooths, /*with_residual=*/true,
               /*restrict_to_coarse=*/fuses);
  if (!fuses) {
    check::ScheduleStep& step =
        rec_.kernel("kernel.restriction", l, restriction_effects());
    step.accesses.push_back(
        write_access("b", l + 1, lev(l + 1).interior(), "coarse"));
    step.accesses.push_back(read_access("r", l, L.interior(), 0, "fine"));
  }
  LevState& cs = st_[static_cast<std::size_t>(l + 1)];
  cs.b_ghosts_valid = false;
  check::ScheduleStep& iz =
      rec_.kernel("kernel.initZero", l + 1, init_zero_effects());
  iz.accesses.push_back(write_access(
      "x", l + 1, grow(lev(l + 1).interior(), lev(l + 1).shape.bx), "a"));
  cs.margin = lev(l + 1).shape.bx;

  cycle_at(l + 1);
  if (s_.options().cycle == CycleType::kW) cycle_at(l + 1);

  check::ScheduleStep& interp =
      rec_.kernel("kernel.interpIncrement", l, interpolation_increment_effects());
  interp.accesses.push_back(write_access("x", l, L.interior(), "fine"));
  interp.accesses.push_back(read_access("x", l, L.interior(), 0, "fine"));
  interp.accesses.push_back(
      read_access("x", l + 1, lev(l + 1).interior(), 0, "coarse"));
  st_[static_cast<std::size_t>(l)].margin = 0;
  smooth_level(l, s_.options().smooths, /*with_residual=*/true,
               /*restrict_to_coarse=*/false);
}

void ScheduleWalker::vcycle() { cycle_at(0); }

void ScheduleWalker::residual_norm() {
  const MgLevel& fine = lev(0);
  LevState& ls = st_[0];
  const Box interior = fine.interior();
  if (ls.margin < fine.radius && s_.use_overlap(fine)) {
    begin_exchange_for_smooth(0);
    apply_op(0, interior, "x", "Ax", /*split=*/true);
  } else {
    if (ls.margin < fine.radius) exchange_for_smooth(0);
    apply_op(0, interior, "x", "Ax", /*split=*/false);
  }
  if (fine.plan.fuse_norm) {
    check::ScheduleStep& step = rec_.kernel(
        "kernel.fusedResidualNorm", 0, fused::residual_max_norm_effects());
    step.accesses.push_back(write_access("r", 0, interior, "r"));
    step.accesses.push_back(read_access("b", 0, interior, 0, "b"));
    step.accesses.push_back(read_access("Ax", 0, interior, 0, "Ax"));
  } else {
    check::ScheduleStep& res =
        rec_.kernel("kernel.residual", 0, residual_effects());
    res.accesses.push_back(write_access("r", 0, interior, "r"));
    res.accesses.push_back(read_access("b", 0, interior, 0, "b"));
    res.accesses.push_back(read_access("Ax", 0, interior, 0, "Ax"));
    check::ScheduleStep& mn =
        rec_.kernel("kernel.maxNorm", 0, max_norm_effects());
    mn.accesses.push_back(read_access("r", 0, interior, 0, "a"));
  }
  // Per-component convergence norms in ascending component order; the
  // batched residual_norms skips retired components, so these carry
  // the retirement mask.
  const int group = rec_.next_reduction_group();
  for (int c : active_components_)
    rec_.reduction("allreduce.max_norm", 0, c, group,
                   /*retirement_masked=*/true);
}

void ScheduleWalker::fmg() {
  const int bot = bottom();
  for (int l = 0; l < bot; ++l) {
    check::ScheduleStep& step =
        rec_.kernel("kernel.restriction", l, restriction_effects());
    step.accesses.push_back(
        write_access("b", l + 1, lev(l + 1).interior(), "coarse"));
    step.accesses.push_back(read_access("b", l, lev(l).interior(), 0, "fine"));
    st_[static_cast<std::size_t>(l + 1)].b_ghosts_valid = false;
  }
  check::ScheduleStep& iz =
      rec_.kernel("kernel.initZero", bot, init_zero_effects());
  iz.accesses.push_back(
      write_access("x", bot, grow(lev(bot).interior(), lev(bot).shape.bx), "a"));
  st_[static_cast<std::size_t>(bot)].margin = lev(bot).shape.bx;
  bottom_solve();
  for (int l = bot - 1; l >= 0; --l) {
    LevState& cs = st_[static_cast<std::size_t>(l + 1)];
    if (cs.margin < 1) {
      const index_t depth = exchange_depth(l + 1);
      rec_.exchange(l + 1, {"x"}, depth);
      cs.margin = depth;
    }
    check::ScheduleStep& interp = rec_.kernel(
        "kernel.interpTrilinear", l, interpolation_trilinear_assign_effects());
    interp.accesses.push_back(write_access("x", l, lev(l).interior(), "fine"));
    interp.accesses.push_back(
        read_access("x", l + 1, lev(l + 1).interior(), 1, "coarse"));
    st_[static_cast<std::size_t>(l)].margin = 0;
    cycle_at(l);
  }
}

check::Schedule record_solver_schedule(const GmgSolver& s, int cycles) {
  check::ScheduleRecorder rec("gmg.solve");
  ScheduleWalker w(rec, s);
  w.add_levels();
  w.set_canonical_initial();
  w.residual_norm();
  for (int c = 0; c < cycles; ++c) {
    w.vcycle();
    w.residual_norm();
  }
  return rec.take();
}

check::Schedule record_fmg_schedule(const GmgSolver& s) {
  check::ScheduleRecorder rec("gmg.fmg");
  ScheduleWalker w(rec, s);
  w.add_levels();
  w.set_canonical_initial();
  w.fmg();
  w.residual_norm();
  return rec.take();
}

void verify_solver_schedule(const GmgSolver& s) {
  check::ScheduleVerifier verifier;
  verifier.verify(record_solver_schedule(s));
  verifier.verify(record_fmg_schedule(s));
}

}  // namespace gmg
