#include "gmg/operators_varcoef.hpp"

#include "brick/brick_plan.hpp"
#include "check/shadow.hpp"
#include "dsl/apply_brick.hpp"
#include "dsl/stencils.hpp"
#include "trace/trace.hpp"

namespace gmg {

namespace {

inline void count_flops_vc(const Box& active, std::uint64_t flops_per_pt) {
  trace::counter_add("gmg.flops",
                     static_cast<std::uint64_t>(active.volume()) *
                         flops_per_pt);
}

/// Row visitor shared by the pointwise variable-coefficient kernels
/// (same shape as the one in operators.cpp, duplicated to keep both
/// translation units self-contained). Runs over the grid's cached
/// iteration plan on the kernel runtime; full bricks collapse to one
/// flat whole-brick call.
template <typename BD, typename Fn>
void for_each_row_vc(BD, const char* name, const BrickGrid& grid,
                     const Box& active, Fn&& fn) {
  const auto plan = grid.iteration_plan(active, Vec3{BD::bx, BD::by, BD::bz});
  for_each_plan_brick<BD>(name, *plan, [&](const BrickPlanItem& it,
                                           auto full) {
    const std::size_t base = static_cast<std::size_t>(it.id) * BD::volume;
    if constexpr (decltype(full)::value) {
      fn(base, index_t{0}, static_cast<index_t>(BD::volume));
    } else {
      for (index_t lk = it.klo; lk < it.khi; ++lk) {
        for (index_t lj = it.jlo; lj < it.jhi; ++lj) {
          fn(base + static_cast<std::size_t>((lk * BD::by + lj) * BD::bx),
             static_cast<index_t>(it.ilo), static_cast<index_t>(it.ihi));
        }
      }
    }
  });
}

}  // namespace

void apply_op_varcoef(BrickedArray& Ax, const BrickedArray& x,
                      const BrickedArray& beta, real_t identity_coef,
                      real_t h, const Box& active) {
  // Six face fluxes: 2 adds + 1 sub + 1 mul each, plus the identity
  // term and flux sum — ~26 flops per output cell.
  trace::TraceSpan span("kernel.applyOpVarCoef");
  count_flops_vc(active, 26);
  const real_t f = 0.5 / (h * h);
  // Face-averaged flux form, written directly in the stencil DSL with
  // the coefficient bound to grid slot 1 (Fig. 1's "non-constant
  // coefficients"). The tree itself lives in vc:: so the batched
  // engine applies the identical expression.
  dsl::apply(vc::apply_expr(identity_coef, f), Ax, active, x, beta);
}

void varcoef_diagonal(BrickedArray& diag, const BrickedArray& beta,
                      real_t identity_coef, real_t h, const Box& active) {
  const real_t f = 0.5 / (h * h);
  dsl::apply(vc::diagonal_expr(identity_coef, f), diag, active, beta);
}

void smooth_residual_varcoef(BrickedArray& x, BrickedArray& r,
                             const BrickedArray& Ax, const BrickedArray& b,
                             const BrickedArray& diag, real_t omega,
                             const Box& active) {
  trace::TraceSpan span("kernel.smoothResidualVarCoef");
  count_flops_vc(active, 6);
  const auto scope = check::scope_if_enabled(
      "kernel.smoothResidualVarCoef",
      {check::access(x, active), check::access(r, active)},
      {check::access(Ax, active), check::access(b, active),
       check::access(diag, active)});
  with_brick_dims(x.shape(), [&](auto bd) {
    real_t* __restrict xp = x.data();
    real_t* __restrict rp = r.data();
    const real_t* __restrict axp = Ax.data();
    const real_t* __restrict bp = b.data();
    const real_t* __restrict dp = diag.data();
    for_each_row_vc(bd, "kernel.smoothResidualVarCoef", x.grid(), active,
                    [&](std::size_t o, index_t ilo, index_t ihi) {
#pragma omp simd
                      for (index_t i = ilo; i < ihi; ++i) {
                        const real_t ax = axp[o + i];
                        const real_t rhs = bp[o + i];
                        rp[o + i] = rhs - ax;
                        xp[o + i] += (-omega / dp[o + i]) * (ax - rhs);
                      }
                    });
  });
}

void smooth_varcoef(BrickedArray& x, const BrickedArray& Ax,
                    const BrickedArray& b, const BrickedArray& diag,
                    real_t omega, const Box& active) {
  trace::TraceSpan span("kernel.smoothVarCoef");
  count_flops_vc(active, 5);
  const auto scope = check::scope_if_enabled(
      "kernel.smoothVarCoef", {check::access(x, active)},
      {check::access(Ax, active), check::access(b, active),
       check::access(diag, active)});
  with_brick_dims(x.shape(), [&](auto bd) {
    real_t* __restrict xp = x.data();
    const real_t* __restrict axp = Ax.data();
    const real_t* __restrict bp = b.data();
    const real_t* __restrict dp = diag.data();
    for_each_row_vc(bd, "kernel.smoothVarCoef", x.grid(), active,
                    [&](std::size_t o, index_t ilo, index_t ihi) {
#pragma omp simd
                      for (index_t i = ilo; i < ihi; ++i) {
                        xp[o + i] += (-omega / dp[o + i]) *
                                     (axp[o + i] - bp[o + i]);
                      }
                    });
  });
}

void cheby_p_update_varcoef(BrickedArray& p, const BrickedArray& r,
                            const BrickedArray& diag, real_t beta_ch,
                            const Box& active) {
  const auto scope = check::scope_if_enabled(
      "kernel.chebyPVarCoef", {check::access(p, active)},
      {check::access(r, active), check::access(diag, active)});
  with_brick_dims(p.shape(), [&](auto bd) {
    real_t* __restrict pp = p.data();
    const real_t* __restrict rp = r.data();
    const real_t* __restrict dp = diag.data();
    for_each_row_vc(bd, "kernel.chebyPVarCoef", p.grid(), active,
                    [&](std::size_t o, index_t ilo, index_t ihi) {
#pragma omp simd
                      for (index_t i = ilo; i < ihi; ++i) {
                        pp[o + i] =
                            rp[o + i] / dp[o + i] + beta_ch * pp[o + i];
                      }
                    });
  });
}

}  // namespace gmg
