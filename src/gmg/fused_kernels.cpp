#include "gmg/fused_kernels.hpp"

#include <cmath>

#include "brick/brick_plan.hpp"
#include "check/shadow.hpp"
#include "exec/runtime.hpp"
#include "trace/trace.hpp"

namespace gmg::fused {

namespace {

inline void count_flops(std::uint64_t pts, std::uint64_t flops_per_pt) {
  trace::counter_add("gmg.flops", pts * flops_per_pt);
}

inline std::uint64_t box_points(const Box& b) {
  return static_cast<std::uint64_t>(b.volume());
}

/// 8->1 full weighting of ONE fine brick into its coarse octant — the
/// split restriction()'s per-brick body verbatim (same row pointers,
/// same 0.125 * 8-term summation order), so fused coarse RHS values
/// are bitwise identical to the split pass. `bc` is the fine brick's
/// grid coordinate; `fb` points at its (freshly written) residual.
template <typename BD>
inline void restrict_brick(const Vec3& bc, const BrickGrid& cg,
                           const real_t* __restrict fb,
                           real_t* __restrict cp) {
  const index_t bx = bc.x, by = bc.y, bz = bc.z;
  const std::int32_t cid = cg.storage_id({bx / 2, by / 2, bz / 2});
  GMG_ASSERT(cid >= 0);
  // In-coarse-brick base offset of this fine brick's image.
  const index_t ox = (bx % 2) * (BD::bx / 2);
  const index_t oy = (by % 2) * (BD::by / 2);
  const index_t oz = (bz % 2) * (BD::bz / 2);
  real_t* cb = cp + static_cast<std::size_t>(cid) * BD::volume;
  for (index_t lk = 0; lk < BD::bz; lk += 2) {
    for (index_t lj = 0; lj < BD::by; lj += 2) {
      const real_t* r0 = fb + (lk * BD::by + lj) * BD::bx;
      const real_t* r1 = r0 + BD::bx;           // j+1
      const real_t* r2 = r0 + BD::by * BD::bx;  // k+1
      const real_t* r3 = r2 + BD::bx;           // j+1, k+1
      real_t* crow = cb +
                     ((oz + lk / 2) * BD::by + (oy + lj / 2)) * BD::bx + ox;
#pragma omp simd
      for (index_t li = 0; li < BD::bx / 2; ++li) {
        const index_t f = 2 * li;
        crow[li] = 0.125 * (r0[f] + r0[f + 1] + r1[f] + r1[f + 1] + r2[f] +
                            r2[f + 1] + r3[f] + r3[f + 1]);
      }
    }
  }
}

/// One pass over the bricks of `active`: run `pointwise(o, ilo, ihi)`
/// on every row (exactly as for_each_row chunks them — full bricks
/// collapse to one whole-brick call), and restrict each INTERIOR
/// brick's just-written residual into the coarse grid. Interior bricks
/// are always in the plan's full prefix here because `active` covers
/// the interior; clipped items are ghost-shell bricks, which
/// contribute no restriction.
template <typename BD, typename PointwiseRow>
void descent_pass(BD, const char* name, const BrickGrid& fg,
                  const BrickGrid& cg, const real_t* __restrict rp,
                  real_t* __restrict cp, const Box& active,
                  PointwiseRow&& pointwise) {
  const std::int64_t ni = fg.num_interior();
  const auto plan = fg.iteration_plan(active, Vec3{BD::bx, BD::by, BD::bz});
  for_each_plan_brick<BD>(name, *plan, [&](const BrickPlanItem& it,
                                           auto full) {
    const std::size_t base = static_cast<std::size_t>(it.id) * BD::volume;
    if constexpr (decltype(full)::value) {
      pointwise(base, index_t{0}, static_cast<index_t>(BD::volume));
      if (it.id < ni) restrict_brick<BD>(it.coord, cg, rp + base, cp);
    } else {
      GMG_ASSERT(it.id >= ni);
      for (index_t lk = it.klo; lk < it.khi; ++lk) {
        for (index_t lj = it.jlo; lj < it.jhi; ++lj) {
          pointwise(base +
                        static_cast<std::size_t>((lk * BD::by + lj) * BD::bx),
                    static_cast<index_t>(it.ilo),
                    static_cast<index_t>(it.ihi));
        }
      }
    }
  });
}

/// Shared argument checks for the fused descent kernels.
void require_descent_args(const BrickedArray& r, const BrickedArray& coarse_b,
                          const Box& active) {
  const Vec3 fe = r.extent(), ce = coarse_b.extent();
  GMG_REQUIRE(fe.x == 2 * ce.x && fe.y == 2 * ce.y && fe.z == 2 * ce.z,
              "fine extent must be twice the coarse extent");
  GMG_REQUIRE(r.shape() == coarse_b.shape(),
              "fused restriction assumes equal brick shapes on both levels");
  GMG_REQUIRE(active.covers(Box::from_extent(fe)),
              "fused descent sweep must cover the fine interior");
}

}  // namespace

void require_fused_fits(const BrickShape& shape) {
  check::require_footprint_fits("fused smooth+residual+restriction",
                                descent_footprint().extents(), shape);
  GMG_REQUIRE(shape.bx % 2 == 0 && shape.by % 2 == 0 && shape.bz % 2 == 0,
              "fused smooth+residual+restriction needs even brick dims "
              "(per-brick 8->1 octant restriction)");
}

void smooth_residual_restrict(BrickedArray& x, BrickedArray& r,
                              BrickedArray& coarse_b, const BrickedArray& Ax,
                              const BrickedArray& b, real_t gamma,
                              const Box& active) {
  require_descent_args(r, coarse_b, active);
  trace::TraceSpan span("kernel.smoothResidualRestrict");
  count_flops(box_points(active), 4);
  count_flops(static_cast<std::uint64_t>(coarse_b.extent().x) *
                  coarse_b.extent().y * coarse_b.extent().z,
              8);
  // r appears in both lists: this scope's own restriction stage reads
  // the residual the pointwise stage just wrote (same-brick
  // read-after-write, ordered within one chunk); cross-scope hazard
  // tracking still sees the full write set.
  const auto scope = check::scope_if_enabled(
      "kernel.smoothResidualRestrict",
      {check::access(x, active), check::access(r, active),
       check::access(coarse_b, Box::from_extent(coarse_b.extent()))},
      {check::access(Ax, active), check::access(b, active),
       check::access(r, Box::from_extent(r.extent()))});
  with_brick_dims(x.shape(), [&](auto bd) {
    using BD = decltype(bd);
    static_assert(BD::bx % 2 == 0 && BD::by % 2 == 0 && BD::bz % 2 == 0);
    real_t* __restrict xp = x.data();
    real_t* __restrict rp = r.data();
    real_t* __restrict cp = coarse_b.data();
    const real_t* __restrict axp = Ax.data();
    const real_t* __restrict bp = b.data();
    descent_pass(bd, "kernel.smoothResidualRestrict", x.grid(),
                 coarse_b.grid(), rp, cp, active,
                 [&](std::size_t o, index_t ilo, index_t ihi) {
#pragma omp simd
                   for (index_t i = ilo; i < ihi; ++i) {
                     const real_t ax = axp[o + i];
                     const real_t rhs = bp[o + i];
                     rp[o + i] = rhs - ax;
                     xp[o + i] += gamma * (ax - rhs);
                   }
                 });
  });
}

void smooth_residual_restrict_varcoef(BrickedArray& x, BrickedArray& r,
                                      BrickedArray& coarse_b,
                                      const BrickedArray& Ax,
                                      const BrickedArray& b,
                                      const BrickedArray& diag, real_t omega,
                                      const Box& active) {
  require_descent_args(r, coarse_b, active);
  trace::TraceSpan span("kernel.smoothResidualRestrictVarCoef");
  count_flops(box_points(active), 6);
  count_flops(static_cast<std::uint64_t>(coarse_b.extent().x) *
                  coarse_b.extent().y * coarse_b.extent().z,
              8);
  const auto scope = check::scope_if_enabled(
      "kernel.smoothResidualRestrictVarCoef",
      {check::access(x, active), check::access(r, active),
       check::access(coarse_b, Box::from_extent(coarse_b.extent()))},
      {check::access(Ax, active), check::access(b, active),
       check::access(diag, active),
       check::access(r, Box::from_extent(r.extent()))});
  with_brick_dims(x.shape(), [&](auto bd) {
    using BD = decltype(bd);
    static_assert(BD::bx % 2 == 0 && BD::by % 2 == 0 && BD::bz % 2 == 0);
    real_t* __restrict xp = x.data();
    real_t* __restrict rp = r.data();
    real_t* __restrict cp = coarse_b.data();
    const real_t* __restrict axp = Ax.data();
    const real_t* __restrict bp = b.data();
    const real_t* __restrict dp = diag.data();
    descent_pass(bd, "kernel.smoothResidualRestrictVarCoef", x.grid(),
                 coarse_b.grid(), rp, cp, active,
                 [&](std::size_t o, index_t ilo, index_t ihi) {
#pragma omp simd
                   for (index_t i = ilo; i < ihi; ++i) {
                     const real_t ax = axp[o + i];
                     const real_t rhs = bp[o + i];
                     rp[o + i] = rhs - ax;
                     xp[o + i] += (-omega / dp[o + i]) * (ax - rhs);
                   }
                 });
  });
}

void residual_restrict(BrickedArray& r, BrickedArray& coarse_b,
                       const BrickedArray& b, const BrickedArray& Ax) {
  const Vec3 fe = r.extent(), ce = coarse_b.extent();
  GMG_REQUIRE(fe.x == 2 * ce.x && fe.y == 2 * ce.y && fe.z == 2 * ce.z,
              "fine extent must be twice the coarse extent");
  GMG_REQUIRE(r.shape() == coarse_b.shape(),
              "fused restriction assumes equal brick shapes on both levels");
  trace::TraceSpan span("kernel.residualRestrict");
  const Box interior = Box::from_extent(fe);
  count_flops(box_points(interior), 1);
  count_flops(static_cast<std::uint64_t>(ce.x) * ce.y * ce.z, 8);
  const auto scope = check::scope_if_enabled(
      "kernel.residualRestrict",
      {check::access(r, interior),
       check::access(coarse_b, Box::from_extent(ce))},
      {check::access(b, interior), check::access(Ax, interior),
       check::access(r, interior)});
  with_brick_dims(r.shape(), [&](auto bd) {
    using BD = decltype(bd);
    static_assert(BD::bx % 2 == 0 && BD::by % 2 == 0 && BD::bz % 2 == 0);
    const BrickGrid& fg = r.grid();
    const BrickGrid& cg = coarse_b.grid();
    real_t* __restrict rp = r.data();
    real_t* __restrict cp = coarse_b.data();
    const real_t* __restrict bp = b.data();
    const real_t* __restrict axp = Ax.data();
    // Interior fine bricks are ids [0, num_interior): per brick, the
    // flat residual rows then the octant copy from the residual still
    // in cache. Any chunking is race-free (disjoint r bricks, disjoint
    // coarse octants).
    exec::parallel_for(
        "kernel.residualRestrict", fg.num_interior(),
        exec::brick_grain(BD::volume), [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t fid = lo; fid < hi; ++fid) {
            const std::size_t base =
                static_cast<std::size_t>(fid) * BD::volume;
#pragma omp simd
            for (index_t i = 0; i < static_cast<index_t>(BD::volume); ++i) {
              rp[base + i] = bp[base + i] - axp[base + i];
            }
            restrict_brick<BD>(fg.coord_of(static_cast<std::int32_t>(fid)),
                               cg, rp + base, cp);
          }
        });
  });
}

real_t residual_max_norm(BrickedArray& r, const BrickedArray& b,
                         const BrickedArray& Ax) {
  trace::TraceSpan span("kernel.residualMaxNorm");
  const Box interior = Box::from_extent(r.extent());
  count_flops(box_points(interior), 2);
  const auto scope = check::scope_if_enabled(
      "kernel.residualMaxNorm", {check::access(r, interior)},
      {check::access(b, interior), check::access(Ax, interior)});
  real_t m = 0.0;
  with_brick_dims(r.shape(), [&](auto bd) {
    using BD = decltype(bd);
    real_t* __restrict rp = r.data();
    const real_t* __restrict bp = b.data();
    const real_t* __restrict axp = Ax.data();
    // Identical flat range and chunk grain as the split max_norm: the
    // per-chunk partials — and the fixed combining tree over them —
    // see the same values in the same order, so the result is bitwise
    // equal to residual() followed by max_norm() (fp max is exactly
    // associative; the residual write is elementwise identical).
    const std::int64_t n =
        static_cast<std::int64_t>(r.grid().num_interior()) * BD::volume;
    m = exec::parallel_reduce_max<real_t>(
        "kernel.residualMaxNorm", n, exec::kElementGrain,
        [&](std::int64_t lo, std::int64_t hi) {
          real_t local = 0.0;
#pragma omp simd reduction(max : local)
          for (std::int64_t i = lo; i < hi; ++i) {
            const real_t v = bp[i] - axp[i];
            rp[i] = v;
            local = std::max(local, std::abs(v));
          }
          return local;
        });
  });
  return m;
}

}  // namespace gmg::fused
