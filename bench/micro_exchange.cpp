// Microbenchmark (ablation, paper §V / reference [6]): the on-node
// cost of ghost exchange under the three buffer strategies —
// packing-free (communication-ordered brick storage), staged
// pack/unpack, and per-brick messages (no aggregation) — plus the
// conventional element-wise array exchange.
#include <benchmark/benchmark.h>

#include "comm/exchange.hpp"
#include "comm/simmpi.hpp"

namespace {

using namespace gmg;

/// Single-rank periodic exchange: all 26 transfers become on-node
/// copies, isolating exactly the data-movement cost the brick layout
/// optimizes (no thread scheduling noise).
void BM_BrickExchange_SelfCopies(benchmark::State& state,
                                 comm::BrickExchangeMode mode) {
  const index_t sub = static_cast<index_t>(state.range(0));
  const CartDecomp decomp({sub, sub, sub}, {1, 1, 1});
  comm::World world(1);
  world.run([&](comm::Communicator& c) {
    BrickedArray f =
        BrickedArray::create({sub, sub, sub}, BrickShape::cube(8));
    f.fill(1.0);
    comm::BrickExchange ex(f.grid_ptr(), f.shape(), decomp, 0, mode);
    ex.exchange(c, f);  // warm-up
    for (auto _ : state) {
      ex.exchange(c, f);
      benchmark::DoNotOptimize(f.data());
    }
    state.counters["GB/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(ex.bytes_per_exchange()) / 1e9,
        benchmark::Counter::kIsRate);
  });
}

// Periodic self-copies take the same whole-brick memcpy path in every
// mode, so only one brick series is needed here; the staged vs
// pack-free message path is compared on a live two-rank world in
// bench/fig6_exchange_bandwidth.
void BM_Exchange_BrickGhosts(benchmark::State& state) {
  BM_BrickExchange_SelfCopies(state, comm::BrickExchangeMode::kPackFree);
}
BENCHMARK(BM_Exchange_BrickGhosts)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMicrosecond);

/// Element-wise pack/unpack of the conventional array layout — the
/// cost the communication-ordered brick storage eliminates.
void BM_ArrayExchange_SelfCopies(benchmark::State& state) {
  const index_t sub = static_cast<index_t>(state.range(0));
  const CartDecomp decomp({sub, sub, sub}, {1, 1, 1});
  comm::World world(1);
  world.run([&](comm::Communicator& c) {
    Array3D f({sub, sub, sub}, 8);
    f.fill(1.0);
    comm::ArrayExchange ex({sub, sub, sub}, 8, decomp, 0);
    ex.exchange(c, f);  // warm-up
    for (auto _ : state) {
      ex.exchange(c, f);
      benchmark::DoNotOptimize(f.data());
    }
    state.counters["GB/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(ex.bytes_per_exchange()) / 1e9,
        benchmark::Counter::kIsRate);
  });
}
BENCHMARK(BM_ArrayExchange_SelfCopies)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
