// Figure 6: achieved GB/s of the exchange() operation vs total message
// volume across the V-cycle levels, against the 25 GB/s Slingshot NIC
// peak. Modeled per system (with both small-message protocol policies,
// Table I); fitted alpha/beta are printed for comparison with the
// paper's 25–200 us / 7–16 GB/s ranges. A live 2-rank host exchange
// exercises the real packing-free code path end to end.
#include <iostream>

#include <utility>

#include "bench/bench_util.hpp"
#include "comm/exchange.hpp"
#include "comm/simmpi.hpp"
#include "common/ascii_plot.hpp"
#include "common/table.hpp"
#include "net/net_model.hpp"
#include "perf/profiler.hpp"
#include "perf/vcycle_model.hpp"

using namespace gmg;

namespace {

void modeled_fig6() {
  bench::section(
      "Fig. 6 — exchange GB/s vs total message size per level (modeled, "
      "rendezvous protocol)");
  Table t({"level", "message bytes", "Perlmutter A100", "Frontier MI250X GCD",
           "Sunspot PVC tile"});
  std::vector<net::NetworkModel> nets;
  for (const arch::ArchSpec* spec : arch::paper_platforms())
    nets.emplace_back(*spec, net::Protocol::kForceRendezvous);

  std::vector<std::vector<double>> xs(nets.size()), ts(nets.size());
  for (int l = 0; l < 6; ++l) {
    const index_t n = 512 >> l;
    t.row().cell(static_cast<long>(l));
    t.cell(static_cast<long>(
        perf::brick_exchange_bytes({n, n, n}, 8)));
    for (std::size_t d = 0; d < nets.size(); ++d) {
      const index_t bd = nets[d].spec().brick_dim;
      const double bytes = static_cast<double>(
          perf::brick_exchange_bytes({n, n, n}, bd));
      t.cell(nets[d].exchange_rate_gbs(bytes, 26, 8), 3);
      xs[d].push_back(bytes);
      ts[d].push_back(nets[d].exchange_time(bytes, 26, 8));
    }
  }
  t.print();
  t.write_csv("bench/out/fig6_exchange.csv");

  AsciiPlot plot({56, 14, /*log_x=*/true, /*log_y=*/true,
                  "total message bytes", "exchange GB/s (log-log)"});
  for (std::size_t d = 0; d < nets.size(); ++d) {
    std::vector<std::pair<double, double>> pts;
    for (int l = 0; l < 6; ++l) {
      const index_t n = 512 >> l;
      const double bytes = static_cast<double>(perf::brick_exchange_bytes(
          {n, n, n}, nets[d].spec().brick_dim));
      pts.emplace_back(bytes, nets[d].exchange_rate_gbs(bytes, 26, 8));
    }
    plot.add_series(nets[d].spec().system, std::move(pts));
  }
  plot.print();

  for (std::size_t d = 0; d < nets.size(); ++d) {
    const auto fit = net::fit_linear_model(xs[d], ts[d]);
    std::cout << "  " << nets[d].spec().system << ": fitted alpha = "
              << fit.alpha_s * 1e6 << " us, beta = " << fit.beta_bytes_s / 1e9
              << " GB/s (NIC peak 25 GB/s; paper: 25-200 us, 7-16 GB/s)\n";
  }
}

void protocol_ablation() {
  bench::section(
      "Fig. 6 ablation — eager default vs forced rendezvous at the "
      "coarsest levels (Frontier model)");
  Table t({"level", "message bytes", "eager-default GB/s",
           "forced-rendezvous GB/s"});
  const net::NetworkModel eager(arch::mi250x_gcd(),
                                net::Protocol::kEagerDefault);
  const net::NetworkModel rdzv(arch::mi250x_gcd(),
                               net::Protocol::kForceRendezvous);
  for (int l = 0; l < 6; ++l) {
    const index_t n = 512 >> l;
    const double bytes =
        static_cast<double>(perf::brick_exchange_bytes({n, n, n}, 8));
    t.row()
        .cell(static_cast<long>(l))
        .cell(static_cast<long>(bytes))
        .cell(eager.exchange_rate_gbs(bytes, 26, 8), 3)
        .cell(rdzv.exchange_rate_gbs(bytes, 26, 8), 3);
  }
  t.print();
  bench::note(
      "  FI_CXI_RDZV_*=0 (force rendezvous) wins once messages shrink "
      "below the eager threshold — the paper's coarsest-level finding.");
}

void measured_host_exchange(bool overlap) {
  bench::section(
      std::string("Fig. 6 (measured) — live 2-rank exchange on the host, ") +
      (overlap ? "split-phase begin()/finish() path (--overlap=on)"
               : "blocking exchange() path (--overlap=off)") +
      " (memcpy-level; wall time includes thread scheduling)");
  Table t({"subdomain", "mode", "payload bytes", "time [us]", "GB/s"});
  const std::pair<comm::BrickExchangeMode, const char*> modes[] = {
      {comm::BrickExchangeMode::kPackFree, "pack-free"},
      {comm::BrickExchangeMode::kPacked, "packed"},
      {comm::BrickExchangeMode::kPerBrick, "per-brick"},
  };
  // Sum over all ranks/configs of the Profiler's kExchange aggregate;
  // trace_report's "exchange total across ranks" line must agree with
  // this number (the spans are one and the same measurements).
  double profiler_exchange_total = 0;
  for (index_t sub : {16, 32, 64}) {
    for (const auto& [mode, mode_name] : modes) {
      const CartDecomp decomp({2 * sub, sub, sub}, {2, 1, 1});
      comm::World world(2);
      double secs = 0;
      std::uint64_t bytes = 0;
      double exchange_total = 0;
      world.run([&](comm::Communicator& c) {
        BrickedArray f = BrickedArray::create({sub, sub, sub},
                                              BrickShape::cube(8));
        comm::BrickExchange ex(f.grid_ptr(), f.shape(), decomp, c.rank(),
                               mode);
        ex.exchange(c, f);  // warm-up
        c.barrier();
        const int reps = 20;
        perf::Profiler prof;  // rank-local; emits "exchange" spans
        Timer timer;
        for (int r = 0; r < reps; ++r) {
          prof.timed(0, perf::Phase::kExchange, [&] {
            if (overlap) {
              // The solver's split-phase schedule, back to back: any
              // per-phase overhead over blocking shows up right here.
              ex.begin(c, f);
              ex.finish(c);
            } else {
              ex.exchange(c, f);
            }
          });
        }
        const double local = timer.elapsed() / reps;
        const double worst = c.allreduce_max(local);
        const double all_ranks =
            c.allreduce_sum(prof.total(0, perf::Phase::kExchange));
        if (c.rank() == 0) {
          secs = worst;
          bytes = ex.bytes_per_exchange();
          exchange_total = all_ranks;
        }
      });
      profiler_exchange_total += exchange_total;
      t.row()
          .cell(std::to_string(sub) + "^3")
          .cell(mode_name)
          .cell(static_cast<long>(bytes))
          .cell(secs * 1e6, 1)
          .cell(static_cast<double>(bytes) / secs / 1e9, 3);
    }
  }
  t.print();
  std::cout << "  Profiler kExchange aggregate across ranks: "
            << profiler_exchange_total
            << " s (trace_report's exchange total must match within 5%)\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.add_flag("overlap",
                "measured exchange path: on = split-phase begin()/finish() "
                "(DESIGN.md §10), off = blocking exchange()",
                "on");
  const std::string trace_out =
      bench::parse_trace_out(opts, argc, argv, "fig6_exchange_bandwidth");
  modeled_fig6();
  protocol_ablation();
  measured_host_exchange(opts.get_bool("overlap"));
  bench::finish_trace(trace_out);
  return 0;
}
