// Serve-layer benchmark: cold hierarchy setup vs cached-hierarchy
// request latency, and sustained solve throughput at 1/4/8 concurrent
// clients against one SolveService. The cold/cached gap is the payoff
// of the hierarchy cache + brick arena (setup, allocation, and
// first-touch costs paid once per problem shape, not per request).
// Writes BENCH_serve_throughput.json; smoke-run by ci/tier1.sh.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "serve/service.hpp"

using namespace gmg;
using namespace gmg::serve;

namespace {

real_t sine_rhs(real_t x, real_t y, real_t z) {
  return std::sin(2 * M_PI * x) * std::sin(2 * M_PI * y) *
         std::sin(2 * M_PI * z);
}

GmgOptions bench_options() {
  GmgOptions o;
  o.levels = 3;
  o.smooths = 6;
  o.bottom_smooths = 30;
  o.tolerance = 1e-8;
  o.max_vcycles = 40;
  o.brick = BrickShape::cube(4);
  return o;
}

SolveRequest bench_request() {
  SolveRequest req;
  req.domain.global_extent = {32, 32, 32};
  req.rhs = sine_rhs;
  req.tolerance = 1e-8;
  req.max_vcycles = 40;
  req.return_solution = false;  // measure the solve, not the copy-out
  return req;
}

struct ClientPoint {
  int clients = 0;
  int requests = 0;
  double seconds = 0;
  double req_per_s = 0;
};

/// One point of the coalescer sweep: the same offered load (8 clients,
/// fixed request count) served with the operator's max_batch at K.
struct BatchPoint {
  int max_batch = 0;
  int requests = 0;
  double seconds = 0;
  double req_per_s = 0;
  std::uint64_t batch_solves = 0;
  std::uint64_t batch_requests = 0;
  double occupancy = 0;
};

/// Coalescing pays where fixed per-request costs (world spin-up,
/// per-sweep exchange/dispatch machinery) dominate the arithmetic, so
/// the sweep runs a small domain; K requests then ride one V-cycle
/// schedule instead of K.
BatchPoint run_batch_point(int max_batch, bool fuse_stages = true) {
  // Tiny requests, deep hierarchy, small bricks: per-sweep fixed costs
  // (exchange rounds, kernel dispatch) dwarf the arithmetic — the
  // regime coalescing targets.
  GmgOptions o;
  o.levels = 3;
  o.smooths = 6;
  o.bottom_smooths = 30;
  o.tolerance = 1e-8;
  o.max_vcycles = 40;
  o.brick = BrickShape::cube(2);
  o.max_batch = max_batch;
  o.fuse_stages = fuse_stages;

  ServeConfig cfg;
  cfg.executors = 1;
  cfg.queue_capacity = 64;
  // Closed-loop clients resubmit the moment a batch retires, so the
  // whole burst lands within a fraction of a millisecond; a long hold
  // would only add idle time to every batch.
  cfg.max_batch_hold_seconds = 0.0005;
  SolveService service(cfg);
  service.register_operator("poisson", o);

  SolveRequest req;
  req.domain.global_extent = {8, 8, 8};
  req.rhs = sine_rhs;
  req.tolerance = 1e-8;
  req.max_vcycles = 40;
  req.return_solution = false;

  // Warm the hierarchy cache; the sweep measures steady-state serving.
  const RequestResult warm = service.submit(req).get();
  if (warm.status != RequestStatus::kDone) {
    std::cerr << "batch warm-up failed: " << status_name(warm.status) << "\n";
    std::exit(1);
  }
  // Warm the K-wide batched solver too (built lazily on the first
  // coalesced batch): one untimed burst of max_batch requests.
  if (max_batch > 1) {
    std::vector<std::thread> warmers;
    warmers.reserve(static_cast<std::size_t>(max_batch));
    for (int c = 0; c < max_batch; ++c) {
      warmers.emplace_back([&] { service.submit(req).wait(); });
    }
    for (auto& th : warmers) th.join();
  }

  constexpr int kClients = 8;
  constexpr int kPerClient = 24;
  BatchPoint p;
  p.max_batch = max_batch;
  p.requests = kClients * kPerClient;
  // Best of two passes: the service is in steady state, so the runs
  // differ only by scheduler noise.
  p.seconds = 0;
  for (int pass = 0; pass < 2; ++pass) {
    Timer t;
    {
      std::vector<std::thread> threads;
      threads.reserve(kClients);
      for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&] {
          for (int i = 0; i < kPerClient; ++i) service.submit(req).wait();
        });
      }
      for (auto& th : threads) th.join();
    }
    const double s = t.elapsed();
    if (p.seconds == 0 || s < p.seconds) p.seconds = s;
  }
  p.req_per_s = static_cast<double>(p.requests) / p.seconds;
  const ServiceStats stats = service.stats();
  p.batch_solves = stats.batch_solves;
  p.batch_requests = stats.batch_requests;
  p.occupancy = stats.batch_solves
                    ? static_cast<double>(stats.batch_requests) /
                          static_cast<double>(stats.batch_solves)
                    : 0.0;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_out =
      bench::parse_trace_out(argc, argv, "serve_throughput");

  ServeConfig cfg;
  cfg.executors = 2;
  cfg.queue_capacity = 32;
  SolveService service(cfg);
  service.register_operator("poisson", bench_options());
  const SolveRequest req = bench_request();

  bench::section(
      "Solve service — cold vs cached request latency, 32^3 Poisson, "
      "bricks 4^3, 3 levels");

  // Request #1 pays hierarchy construction; #2..#K reuse the cached
  // hierarchy with arena-recycled field storage.
  const RequestResult cold = service.submit(req).get();
  if (cold.status != RequestStatus::kDone) {
    std::cerr << "cold solve failed: " << status_name(cold.status) << " "
              << cold.error << "\n";
    return 1;
  }
  constexpr int kCachedRuns = 5;
  std::vector<double> cached_totals;
  for (int i = 0; i < kCachedRuns; ++i) {
    const RequestResult r = service.submit(req).get();
    if (r.status != RequestStatus::kDone || !r.cache_hit) {
      std::cerr << "cached solve " << i << " unexpected: "
                << status_name(r.status) << "\n";
      return 1;
    }
    cached_totals.push_back(r.total_seconds);
  }
  std::sort(cached_totals.begin(), cached_totals.end());
  const double cached_median = cached_totals[kCachedRuns / 2];

  Table lat({"request", "total_s", "setup_s", "solve_s", "vcycles"});
  lat.row()
      .cell("cold")
      .cell(cold.total_seconds, 4)
      .cell(cold.setup_seconds, 4)
      .cell(cold.solve_seconds, 4)
      .cell(static_cast<long>(cold.solve.vcycles));
  lat.row()
      .cell("cached(med)")
      .cell(cached_median, 4)
      .cell(0.0, 4)
      .cell(cached_median, 4)
      .cell(static_cast<long>(cold.solve.vcycles));
  lat.print();
  bench::note("  speedup(cold/cached) = " +
              std::to_string(cold.total_seconds / cached_median));

  bench::section("Solve service — throughput vs concurrent clients");
  std::vector<ClientPoint> points;
  for (int clients : {1, 4, 8}) {
    const int per_client = 3;
    ClientPoint p;
    p.clients = clients;
    p.requests = clients * per_client;
    Timer t;
    {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(clients));
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&] {
          for (int i = 0; i < per_client; ++i) service.submit(req).wait();
        });
      }
      for (auto& th : threads) th.join();
    }
    p.seconds = t.elapsed();
    p.req_per_s = static_cast<double>(p.requests) / p.seconds;
    points.push_back(p);
  }

  Table tput({"clients", "requests", "wall_s", "req/s"});
  for (const ClientPoint& p : points) {
    tput.row()
        .cell(static_cast<long>(p.clients))
        .cell(static_cast<long>(p.requests))
        .cell(p.seconds, 3)
        .cell(p.req_per_s, 2);
  }
  tput.print();
  tput.write_csv("bench/out/serve_throughput.csv");

  bench::section(
      "Batch coalescing — 8 clients, 8^3 Poisson, max_batch sweep");
  std::vector<BatchPoint> batch_points;
  for (int k : {1, 2, 4, 8}) batch_points.push_back(run_batch_point(k));

  Table bt({"max_batch", "requests", "wall_s", "req/s", "batches",
            "occupancy", "speedup"});
  const double base_rps = batch_points.front().req_per_s;
  for (const BatchPoint& p : batch_points) {
    bt.row()
        .cell(static_cast<long>(p.max_batch))
        .cell(static_cast<long>(p.requests))
        .cell(p.seconds, 3)
        .cell(p.req_per_s, 2)
        .cell(static_cast<long>(p.batch_solves))
        .cell(p.occupancy, 2)
        .cell(p.req_per_s / base_rps, 2);
  }
  bt.print();
  bt.write_csv("bench/out/serve_batch_sweep.csv");

  bench::section(
      "Cross-stage fusion — req/s with fuse_stages on vs off, solo "
      "(K=1) and coalesced (K=4) serving");
  struct FusionPoint {
    int max_batch;
    bool fuse;
    BatchPoint p;
  };
  std::vector<FusionPoint> fusion_points;
  for (int k : {1, 4}) {
    for (const bool fuse : {true, false}) {
      fusion_points.push_back({k, fuse, run_batch_point(k, fuse)});
    }
  }
  Table fus({"max_batch", "fuse_stages", "wall_s", "req/s", "batches",
             "occupancy", "fused/split"});
  for (std::size_t i = 0; i < fusion_points.size(); i += 2) {
    const FusionPoint& on = fusion_points[i];
    const FusionPoint& off = fusion_points[i + 1];
    fus.row()
        .cell(static_cast<long>(on.max_batch))
        .cell("on")
        .cell(on.p.seconds, 3)
        .cell(on.p.req_per_s, 2)
        .cell(static_cast<long>(on.p.batch_solves))
        .cell(on.p.occupancy, 2)
        .cell(on.p.req_per_s / off.p.req_per_s, 3);
    fus.row()
        .cell(static_cast<long>(off.max_batch))
        .cell("off")
        .cell(off.p.seconds, 3)
        .cell(off.p.req_per_s, 2)
        .cell(static_cast<long>(off.p.batch_solves))
        .cell(off.p.occupancy, 2)
        .cell("");
  }
  fus.print();
  fus.write_csv("bench/out/serve_fusion_sweep.csv");

  const ServiceReport rep = service.report();
  std::cout << rep.to_string();

  std::ofstream os("BENCH_serve_throughput.json");
  os << "{\n  \"bench\": \"serve_throughput\",\n"
     << "  \"n\": 32,\n  \"brick_dim\": 4,\n  \"levels\": 3,\n"
     << "  \"cold_seconds\": " << cold.total_seconds << ",\n"
     << "  \"cold_setup_seconds\": " << cold.setup_seconds << ",\n"
     << "  \"cached_median_seconds\": " << cached_median << ",\n"
     << "  \"cold_over_cached\": " << cold.total_seconds / cached_median
     << ",\n"
     << "  \"cache_hit_ratio\": " << rep.cache.hit_ratio() << ",\n"
     << "  \"arena_reuse_ratio\": " << rep.arena.reuse_ratio() << ",\n"
     << "  \"latency_p50_seconds\": " << rep.latency_p50 << ",\n"
     << "  \"latency_p99_seconds\": " << rep.latency_p99 << ",\n"
     << "  \"latency_p999_seconds\": " << rep.latency_p999 << ",\n"
     << "  \"clients\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ClientPoint& p = points[i];
    os << "    {\"clients\": " << p.clients << ", \"requests\": "
       << p.requests << ", \"seconds\": " << p.seconds
       << ", \"req_per_s\": " << p.req_per_s << "}"
       << (i + 1 < points.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"batch_sweep_n\": 8,\n  \"batch_sweep_clients\": 8,\n"
     << "  \"batch\": [\n";
  for (std::size_t i = 0; i < batch_points.size(); ++i) {
    const BatchPoint& p = batch_points[i];
    os << "    {\"max_batch\": " << p.max_batch
       << ", \"requests\": " << p.requests << ", \"seconds\": " << p.seconds
       << ", \"req_per_s\": " << p.req_per_s
       << ", \"batch_solves\": " << p.batch_solves
       << ", \"batch_requests\": " << p.batch_requests
       << ", \"occupancy\": " << p.occupancy
       << ", \"speedup_vs_unbatched\": " << p.req_per_s / base_rps << "}"
       << (i + 1 < batch_points.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"fusion\": [\n";
  for (std::size_t i = 0; i < fusion_points.size(); ++i) {
    const FusionPoint& fp = fusion_points[i];
    // Partner of the on/off pair (pairs are adjacent, on first).
    const FusionPoint& other =
        fusion_points[fp.fuse ? i + 1 : i - 1];
    os << "    {\"max_batch\": " << fp.max_batch << ", \"fuse_stages\": "
       << (fp.fuse ? "true" : "false")
       << ", \"seconds\": " << fp.p.seconds
       << ", \"req_per_s\": " << fp.p.req_per_s
       << ", \"fused_over_split\": "
       << (fp.fuse ? fp.p.req_per_s / other.p.req_per_s
                   : other.p.req_per_s / fp.p.req_per_s)
       << "}" << (i + 1 < fusion_points.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  std::cout << "  wrote BENCH_serve_throughput.json\n";
  bench::finish_trace(trace_out);
  return 0;
}
