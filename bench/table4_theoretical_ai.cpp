// Table IV: theoretical arithmetic intensity (FLOP/byte) of every
// V-cycle operation at the finest level, from the compulsory-traffic
// accounting — cross-checked against the address-trace cache
// simulator replaying the real layouts through an infinite cache.
#include <iostream>

#include "arch/kernel_costs.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "perf/movement.hpp"

using namespace gmg;

int main() {
  bench::section("Table IV — theoretical AI (FLOP/B) per operation");
  Table t({"Operation", "FLOPs/pt", "bytes/pt", "theoretical AI",
           "simulated AI (infinite cache)"});
  for (int opi = 0; opi < arch::kNumOps; ++opi) {
    const auto op = static_cast<arch::Op>(opi);
    const auto sim =
        perf::measure_movement(op, perf::Layout::kBrick, 32, 8, 0, 64);
    t.row()
        .cell(arch::op_name(op))
        .cell(arch::flops_per_point(op), 0)
        .cell(arch::bytes_per_point(op), 0)
        .cell(arch::theoretical_ai(op), 3)
        .cell(sim.ai(), 3);
  }
  t.print();
  t.write_csv("bench/out/table4_theoretical_ai.csv");
  bench::note(
      "  paper reference: 0.50 / 0.125 / 0.15 / 0.11 / 0.06.\n"
      "  simulated smooth AI is lower because the simulator charges the\n"
      "  x read-modify-write twice (fill + write-back); Table IV's\n"
      "  convention counts a cache-resident RMW once.");
  return 0;
}
