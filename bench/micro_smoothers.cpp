// Microbenchmark (§IX future work): smoother and bottom-solver
// variants under identical blocking/communication settings — cost per
// V-cycle and cycles-to-converge, the two sides of time-to-solution.
#include <benchmark/benchmark.h>

#include <cmath>

#include "comm/simmpi.hpp"
#include "gmg/solver.hpp"

namespace {

using namespace gmg;

real_t sine_rhs(real_t x, real_t y, real_t z) {
  return std::sin(2 * M_PI * x) * std::sin(2 * M_PI * y) *
         std::sin(2 * M_PI * z);
}

GmgOptions base_options() {
  GmgOptions o;
  o.levels = 4;
  o.smooths = 8;
  o.bottom_smooths = 60;
  o.brick = BrickShape::cube(4);
  o.max_vcycles = 60;
  return o;
}

void solve_benchmark(benchmark::State& state, const GmgOptions& opts,
                     bool use_fmg = false) {
  const CartDecomp decomp({64, 64, 64}, {1, 1, 1});
  comm::World world(1);
  world.run([&](comm::Communicator& c) {
    int vcycles = 0;
    for (auto _ : state) {
      GmgSolver solver(opts, decomp, 0);
      solver.set_rhs(sine_rhs);
      if (use_fmg) solver.fmg(c);
      const SolveResult r = solver.solve(c);
      vcycles = r.vcycles;
      benchmark::DoNotOptimize(r.final_residual);
    }
    state.counters["vcycles"] = vcycles;
  });
}

void BM_Solve_PointJacobi(benchmark::State& state) {
  solve_benchmark(state, base_options());
}
void BM_Solve_Chebyshev(benchmark::State& state) {
  GmgOptions o = base_options();
  o.smoother = Smoother::kChebyshev;
  solve_benchmark(state, o);
}
void BM_Solve_Wcycle(benchmark::State& state) {
  GmgOptions o = base_options();
  o.cycle = CycleType::kW;
  solve_benchmark(state, o);
}
void BM_Solve_CgBottom(benchmark::State& state) {
  GmgOptions o = base_options();
  o.bottom = BottomSolverType::kConjugateGradient;
  solve_benchmark(state, o);
}
void BM_Solve_FmgStart(benchmark::State& state) {
  solve_benchmark(state, base_options(), /*use_fmg=*/true);
}

BENCHMARK(BM_Solve_PointJacobi)->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_Solve_Chebyshev)->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_Solve_Wcycle)->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_Solve_CgBottom)->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_Solve_FmgStart)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace

BENCHMARK_MAIN();
