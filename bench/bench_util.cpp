#include "bench/bench_util.hpp"

#include <algorithm>

#include "common/options.hpp"
#include "gmg/fused_kernels.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/metrics.hpp"

namespace gmg::bench {

namespace {

struct KernelFixture {
  BrickedArray x, b, Ax, r, coarse;
  real_t alpha, beta, gamma;

  static index_t coarse_brick_dim(index_t n, index_t bdim) {
    for (index_t c : {index_t{8}, index_t{4}, index_t{2}}) {
      if (c <= bdim && c <= n / 2 && (n / 2) % c == 0) return c;
    }
    return 2;
  }

  explicit KernelFixture(index_t n, index_t bdim)
      : x(BrickedArray::create({n, n, n}, BrickShape::cube(bdim))),
        b(x.grid_ptr(), x.shape()),
        Ax(x.grid_ptr(), x.shape()),
        r(x.grid_ptr(), x.shape()),
        coarse(BrickedArray::create(
            {n / 2, n / 2, n / 2},
            BrickShape::cube(coarse_brick_dim(n, bdim)))) {
    const real_t h = 1.0 / static_cast<real_t>(n);
    alpha = -6.0 / (h * h);
    beta = 1.0 / (h * h);
    gamma = h * h / 12.0;
    for_each(Box::from_extent({n, n, n}), [&](index_t i, index_t j, index_t k) {
      x(i, j, k) = 0.25 * static_cast<real_t>((i * 7 + j * 3 + k) % 11);
      b(i, j, k) = 0.5 * static_cast<real_t>((i + j * 5 + k * 2) % 7);
    });
    x.fill_ghosts_periodic();
    b.fill_ghosts_periodic();
  }
};

}  // namespace

double measure_host_kernel(arch::Op op, index_t n, index_t bdim,
                           int repetitions) {
  KernelFixture f(n, bdim);
  const Box interior = Box::from_extent({n, n, n});
  const auto run = [&] {
    switch (op) {
      case arch::Op::kApplyOp:
        apply_op(f.Ax, f.x, f.alpha, f.beta, interior);
        break;
      case arch::Op::kSmooth:
        smooth(f.x, f.Ax, f.b, f.gamma, interior);
        break;
      case arch::Op::kSmoothResidual:
        smooth_residual(f.x, f.r, f.Ax, f.b, f.gamma, interior);
        break;
      case arch::Op::kRestriction:
        restriction(f.coarse, f.r);
        break;
      case arch::Op::kInterpIncrement:
        interpolation_increment(f.x, f.coarse);
        break;
      default:
        GMG_REQUIRE(false, "unknown op");
    }
  };
  run();  // warm-up (and page-fault the fields)
  double best = 1e30;
  for (int rep = 0; rep < repetitions; ++rep) {
    Timer t;
    run();
    best = std::min(best, t.elapsed());
  }
  return best;
}

FusedDescentTimes measure_fused_descent(index_t n, index_t bdim,
                                        int repetitions) {
  KernelFixture f(n, bdim);
  GMG_REQUIRE(f.r.shape() == f.coarse.shape(),
              "fused descent bench needs equal brick shapes on both levels");
  const Box interior = Box::from_extent({n, n, n});
  const auto run_split = [&] {
    smooth_residual(f.x, f.r, f.Ax, f.b, f.gamma, interior);
    restriction(f.coarse, f.r);
  };
  const auto run_fused = [&] {
    fused::smooth_residual_restrict(f.x, f.r, f.coarse, f.Ax, f.b, f.gamma,
                                    interior);
  };
  // Warm up both paths, then interleave the timed passes so neither
  // schedule systematically sees a warmer cache.
  run_split();
  run_fused();
  FusedDescentTimes out;
  out.split_smooth_residual = 1e30;
  out.split_restriction = 1e30;
  out.fused = 1e30;
  for (int rep = 0; rep < repetitions; ++rep) {
    {
      Timer t;
      smooth_residual(f.x, f.r, f.Ax, f.b, f.gamma, interior);
      out.split_smooth_residual = std::min(out.split_smooth_residual,
                                           t.elapsed());
    }
    {
      Timer t;
      restriction(f.coarse, f.r);
      out.split_restriction = std::min(out.split_restriction, t.elapsed());
    }
    {
      Timer t;
      run_fused();
      out.fused = std::min(out.fused, t.elapsed());
    }
  }
  return out;
}

arch::ArchSpec calibrated_host(index_t n) {
  arch::ArchSpec host = arch::host_cpu();
  const index_t bdim = host.brick_dim;
  const std::uint64_t cache_bytes =
      static_cast<std::uint64_t>(host.l2_cache_mb * 1024 * 1024);
  for (int opi = 0; opi < arch::kNumOps; ++opi) {
    const auto op = static_cast<arch::Op>(opi);
    const double secs = measure_host_kernel(op, n, bdim);
    const double points =
        arch::points_for(op, static_cast<double>(n) * n * n);
    const double achieved_gbs =
        points * arch::bytes_per_point(op) / secs / 1e9;
    host.frac_roofline[opi] =
        std::min(1.0, achieved_gbs / host.hbm_measured_gbs);

    // Fraction of theoretical AI: compulsory vs finite-cache traffic
    // from the address-trace simulator on a smaller replay grid.
    const index_t sim_n = 32;
    const auto compulsory = perf::measure_movement(
        op, perf::Layout::kBrick, sim_n, bdim, 0, host.cache_line_bytes);
    const auto actual =
        perf::measure_movement(op, perf::Layout::kBrick, sim_n, bdim,
                               cache_bytes, host.cache_line_bytes);
    host.frac_theoretical_ai[opi] =
        static_cast<double>(compulsory.bytes) /
        static_cast<double>(actual.bytes);
  }
  return host;
}

std::string parse_trace_out(Options& opts, int argc,
                            const char* const argv[], const char* program) {
  opts.add_flag("trace-out",
                "write Chrome trace-event JSON (and a .metrics.json "
                "sidecar) to this path; load in ui.perfetto.dev");
  try {
    opts.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n" << opts.help(program);
    std::exit(2);
  }
  return opts.has("trace-out") ? opts.get("trace-out") : std::string();
}

std::string parse_trace_out(int argc, const char* const argv[],
                            const char* program) {
  Options opts;
  return parse_trace_out(opts, argc, argv, program);
}

void finish_trace(const std::string& path) {
  if (path.empty()) return;
  const trace::Snapshot snap = trace::collect();
  trace::write_chrome_trace_file(snap, path);
  std::string metrics_path = path;
  const std::string json = ".json";
  if (metrics_path.size() >= json.size() &&
      metrics_path.compare(metrics_path.size() - json.size(), json.size(),
                           json) == 0) {
    metrics_path.resize(metrics_path.size() - json.size());
  }
  metrics_path += ".metrics.json";
  trace::write_metrics_json_file(trace::summarize(snap), metrics_path);
  std::cout << "\nwrote trace:   " << path
            << " (load in ui.perfetto.dev or chrome://tracing)\n"
            << "wrote metrics: " << metrics_path << "\n";
}

}  // namespace gmg::bench
