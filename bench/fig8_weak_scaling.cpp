// Figure 8: weak scaling — GStencil/s (total) and parallel efficiency
// for solving Ax=b with 512^3 cells per rank, from 2 to 128 nodes
// (Perlmutter 4 ranks/node, Frontier 8, Sunspot 12; Sunspot capped at
// 16 nodes as in the paper). Modeled via the V-cycle schedule priced
// with the per-system device + congested-network models; a live
// multi-rank simmpi run confirms the algorithmic weak-scaling property
// (V-cycles to converge independent of rank count).
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "comm/simmpi.hpp"
#include "common/table.hpp"
#include "gmg/solver.hpp"
#include "net/net_model.hpp"
#include "perf/vcycle_model.hpp"

using namespace gmg;

namespace {

void modeled_weak_scaling() {
  bench::section(
      "Fig. 8 — weak scaling, 512^3 per rank (modeled): GStencil/s and "
      "parallel efficiency");
  Table t({"nodes", "system", "ranks (GPUs)", "GStencil/s",
           "efficiency"});
  AsciiPlot plot({56, 12, /*log_x=*/true, /*log_y=*/false, "nodes",
                  "parallel efficiency (weak scaling)"});
  for (const arch::ArchSpec* spec : arch::paper_platforms()) {
    const arch::DeviceModel dev(*spec);
    const net::NetworkModel net(*spec, net::Protocol::kForceRendezvous,
                                spec->ranks_per_node);
    const int max_nodes = spec->system == "Sunspot" ? 16 : 128;
    double per_rank_ref = 0;
    std::vector<std::pair<double, double>> eff;
    for (int nodes = 2; nodes <= max_nodes; nodes *= 2) {
      const int ranks = nodes * spec->ranks_per_node;
      perf::VcycleModelInput in;
      in.subdomain = {512, 512, 512};
      in.levels = 6;
      in.smooths = 12;
      in.bottom_smooths = 100;
      in.brick_dim = spec->brick_dim;
      in.total_ranks = ranks;
      in.nodes = nodes;
      const auto cost = perf::model_vcycle(dev, net, in);
      // The paper's throughput metric: fine-grid cells solved per
      // second of total time-to-converge (12 V-cycles).
      const double per_rank = static_cast<double>(in.subdomain.volume()) /
                              (12.0 * cost.total_s) / 1e9;
      if (per_rank_ref == 0) per_rank_ref = per_rank;
      t.row()
          .cell(static_cast<long>(nodes))
          .cell(spec->system)
          .cell(static_cast<long>(ranks))
          .cell(per_rank * ranks, 1)
          .cell_percent(per_rank / per_rank_ref);
      eff.emplace_back(nodes, per_rank / per_rank_ref);
    }
    plot.add_series(spec->system, std::move(eff));
  }
  t.print();
  plot.print();
  t.write_csv("bench/out/fig8_weak_scaling.csv");
  bench::note(
      "  paper reference: >=87% efficiency at 128 nodes (512 GPUs);\n"
      "  Frontier approaches ~2x Perlmutter's aggregate GStencil/s (twice\n"
      "  the ranks per node), Sunspot lands near Perlmutter despite more\n"
      "  GPUs per node (network drawbacks, no GPU-aware MPI).");
}

void live_weak_scaling_check(bool overlap) {
  bench::section(
      std::string("Fig. 8 (live) — convergence is rank-count independent "
                  "on simmpi (--overlap=") +
      (overlap ? "on" : "off") +
      "): a fixed 64^3 global solve split over 1, 8 and 64 ranks must take "
      "the same number of V-cycles (the iterates are bitwise identical)");
  Table t({"ranks", "subdomain", "V-cycles", "final residual"});
  for (int ranks : {1, 8, 64}) {
    const int per_axis = static_cast<int>(std::lround(std::cbrt(ranks)));
    const CartDecomp decomp({64, 64, 64},
                            {per_axis, per_axis, per_axis});
    comm::World world(ranks);
    int vcycles = 0;
    real_t residual = 0;
    world.run([&](comm::Communicator& c) {
      GmgOptions opts;
      opts.levels = 3;  // same hierarchy on every rank count
      opts.smooths = 8;
      opts.bottom_smooths = 100;
      opts.brick = BrickShape::cube(4);
      opts.max_vcycles = 60;
      opts.overlap = overlap;
      GmgSolver solver(opts, decomp, c.rank());
      solver.set_rhs([](real_t x, real_t y, real_t z) {
        return std::sin(2 * M_PI * x) * std::sin(2 * M_PI * y) *
               std::sin(2 * M_PI * z);
      });
      const SolveResult res = solver.solve(c);
      if (c.rank() == 0) {
        vcycles = res.vcycles;
        residual = res.final_residual;
      }
    });
    t.row()
        .cell(static_cast<long>(ranks))
        .cell(std::to_string(64 / per_axis) + "^3")
        .cell(static_cast<long>(vcycles))
        .cell(residual, 12);
  }
  t.print();
}

struct OverlapRun {
  std::vector<double> exchange_s;  // per level, summed across ranks
  double wall_s = 0;               // slowest rank, fixed V-cycle count
};

OverlapRun run_overlap_config(const CartDecomp& decomp, bool overlap,
                              double bytes_ratio, int vcycles) {
  OverlapRun out;
  comm::World world(decomp.num_ranks());
  world.run([&](comm::Communicator& c) {
    GmgOptions opts;
    opts.levels = 4;
    opts.smooths = 12;
    opts.bottom_smooths = 50;
    opts.brick = BrickShape::cube(4);
    opts.overlap = overlap;
    opts.overlap_min_compute_bytes_ratio = bytes_ratio;
    GmgSolver solver(opts, decomp, c.rank());
    solver.set_rhs([](real_t x, real_t y, real_t z) {
      return std::sin(2 * M_PI * x) * std::sin(2 * M_PI * y) *
             std::sin(2 * M_PI * z);
    });
    solver.vcycle(c);  // warm-up: engine + exchange buffers + caches
    solver.profiler().clear();
    c.barrier();
    Timer timer;
    for (int v = 0; v < vcycles; ++v) solver.vcycle(c);
    const double wall = c.allreduce_max(timer.elapsed());
    std::vector<double> exch;
    for (int l = 0; l < solver.num_levels(); ++l) {
      const double mine =
          solver.profiler().has(l, perf::Phase::kExchange)
              ? solver.profiler().total(l, perf::Phase::kExchange)
              : 0.0;
      exch.push_back(c.allreduce_sum(mine));
    }
    if (c.rank() == 0) {
      out.exchange_s = exch;
      out.wall_s = wall;
    }
  });
  return out;
}

void overlap_hidden_exchange() {
  bench::section(
      "Fig. 8 (live) — compute–comm overlap: visible exchange seconds per "
      "level (per-rank mean), split-phase vs blocking, 64^3 over 8 ranks "
      "(2x2x2), 4 V-cycles. hidden = max(0, 1 - t_on/t_off): the fraction "
      "of the blocking exchange cost absorbed by interior smoothing");
  const CartDecomp decomp({64, 64, 64}, {2, 2, 2});
  const int vcycles = 4;
  const double ranks = static_cast<double>(decomp.num_ranks());
  const OverlapRun off = run_overlap_config(decomp, false, 0.0, vcycles);
  // Raw split-phase (bytes-ratio cutoff disabled): what the per-level
  // hidden fractions measure. At this problem's interior/payload
  // ratios (0.44 on L0, 0.05 on L1) the default cutoff would route
  // every level through the blocking path and the comparison would be
  // measuring noise.
  const OverlapRun on = run_overlap_config(decomp, true, 0.0, vcycles);
  // The shipping default: the auto-cutoff decides per level. On this
  // problem it picks blocking everywhere (interior arithmetic cannot
  // cover the split/submit/wait machinery at 32^3/rank), so this wall
  // must track the blocking wall.
  const GmgOptions defaults;
  const OverlapRun autorun = run_overlap_config(
      decomp, true, defaults.overlap_min_compute_bytes_ratio, vcycles);

  Table t({"level", "exchange off [ms/rank]", "exchange on [ms/rank]",
           "hidden"});
  const std::size_t nlev = std::min(off.exchange_s.size(), on.exchange_s.size());
  std::vector<double> hidden(nlev, 0.0);
  for (std::size_t l = 0; l < nlev; ++l) {
    hidden[l] = off.exchange_s[l] > 0
                    ? std::max(0.0, 1.0 - on.exchange_s[l] / off.exchange_s[l])
                    : 0.0;
    t.row()
        .cell(static_cast<long>(l))
        .cell(off.exchange_s[l] / ranks * 1e3, 2)
        .cell(on.exchange_s[l] / ranks * 1e3, 2)
        .cell_percent(hidden[l]);
  }
  t.print();
  std::cout << "  wall time, " << vcycles << " V-cycles: blocking "
            << off.wall_s << " s, raw split-phase " << on.wall_s
            << " s, auto-cutoff (ratio="
            << GmgOptions().overlap_min_compute_bytes_ratio << ") "
            << autorun.wall_s << " s\n";

  std::ofstream os("BENCH_overlap.json");
  os << "{\n  \"bench\": \"fig8_weak_scaling\",\n"
     << "  \"ranks\": " << decomp.num_ranks() << ",\n"
     << "  \"rank_grid\": \"2x2x2\",\n"
     << "  \"global\": \"64^3\",\n"
     << "  \"vcycles\": " << vcycles << ",\n"
     // exchange_s_* totals below are summed over all ranks' profilers;
     // wall_s_* are single-run wall clock (slowest rank). Compare the
     // *_per_rank_mean fields against the wall times, not the sums.
     << "  \"ranks_summed\": \"exchange_s_blocking/overlap are summed "
        "across all " << decomp.num_ranks()
     << " ranks; *_per_rank_mean divides by the rank count and is the "
        "figure comparable to wall_s_*\",\n"
     << "  \"wall_s_blocking\": " << off.wall_s << ",\n"
     // wall_s_overlap is the raw split-phase wall (cutoff disabled);
     // wall_s_overlap_auto is the shipping default, where
     // overlap_min_compute_bytes_ratio routes this small-subdomain
     // problem through the blocking path per level.
     << "  \"wall_s_overlap\": " << on.wall_s << ",\n"
     << "  \"wall_s_overlap_auto\": " << autorun.wall_s << ",\n"
     << "  \"overlap_min_compute_bytes_ratio\": "
     << GmgOptions().overlap_min_compute_bytes_ratio << ",\n"
     << "  \"levels\": [\n";
  for (std::size_t l = 0; l < nlev; ++l) {
    os << "    {\"level\": " << l
       << ", \"exchange_s_blocking\": " << off.exchange_s[l]
       << ", \"exchange_s_overlap\": " << on.exchange_s[l]
       << ", \"exchange_s_blocking_per_rank_mean\": "
       << off.exchange_s[l] / ranks
       << ", \"exchange_s_overlap_per_rank_mean\": "
       << on.exchange_s[l] / ranks
       << ", \"hidden_fraction\": " << hidden[l] << "}"
       << (l + 1 < nlev ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  std::cout << "  wrote BENCH_overlap.json\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.add_flag("overlap",
                "live-check smoothing path: on = split-phase compute–comm "
                "overlap (DESIGN.md §10), off = blocking exchanges",
                "on");
  const std::string trace_out =
      bench::parse_trace_out(opts, argc, argv, "fig8_weak_scaling");
  modeled_weak_scaling();
  live_weak_scaling_check(opts.get_bool("overlap"));
  overlap_hidden_exchange();
  bench::finish_trace(trace_out);
  return 0;
}
