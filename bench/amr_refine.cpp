// AMR refinement payoff: composite solve (coarse grid + one 2x
// refined patch over the central 12.5% of the domain) vs a uniformly
// fine solve of the whole domain, at matched accuracy on the refined
// region. The composite solve touches ~4.3x fewer cells; this harness
// measures how much of that shows up as wall time at equal
// discretization error where it matters. Writes BENCH_amr.json;
// ci/tier1.sh smoke-runs it at a reduced size.
#include <fstream>
#include <iostream>

#include "amr/composite_solver.hpp"
#include "amr/hierarchy.hpp"
#include "bench/bench_util.hpp"
#include "comm/simmpi.hpp"
#include "gmg/solver.hpp"

using namespace gmg;

namespace {

constexpr real_t kNu = 1e-3;
constexpr real_t kSigma = 0.05;

real_t exact_u(real_t x, real_t y, real_t z) {
  const real_t dx = x - 0.5, dy = y - 0.5, dz = z - 0.5;
  return std::exp(-(dx * dx + dy * dy + dz * dz) / (2 * kSigma * kSigma));
}

real_t rhs(real_t x, real_t y, real_t z) {
  const real_t s2 = kSigma * kSigma;
  const real_t dx = x - 0.5, dy = y - 0.5, dz = z - 0.5;
  const real_t r2 = dx * dx + dy * dy + dz * dz;
  const real_t u = std::exp(-r2 / (2 * s2));
  return u - kNu * u * (r2 / (s2 * s2) - 3 / s2);
}

struct RunResult {
  double seconds = 0;
  int cycles = 0;
  real_t error = 0;  // max vs manufactured solution, refined region
  std::int64_t dofs = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.add_flag("s", "coarse cells per axis", "64");
  opt.add_flag("b", "brick dimension", "8");
  const std::string trace_out =
      bench::parse_trace_out(opt, argc, argv, "amr_refine");
  const index_t s = opt.get_int("s");
  const index_t b = opt.get_int("b");
  const Box patch{{s / 4, s / 4, s / 4}, {3 * s / 4, 3 * s / 4, 3 * s / 4}};
  // Error comparison region: the inner half of the patch, away from
  // interface pollution — global fine cells at spacing 1/(2s).
  const Box inner_fine{{3 * s / 4, 3 * s / 4, 3 * s / 4},
                       {5 * s / 4, 5 * s / 4, 5 * s / 4}};

  GmgOptions base;
  base.levels = 6;
  base.smooths = 8;
  base.bottom_smooths = 50;
  base.brick = BrickShape::cube(b);
  base.identity_coef = 1.0;
  base.laplacian_coef = -kNu;

  bench::section("AMR refinement payoff — composite (" +
                 std::to_string(s) + "^3 + 2x patch) vs uniform " +
                 std::to_string(2 * s) + "^3, matched accuracy");

  RunResult comp, fine, coarse;
  BrickGrid::PlanCacheStats plan_stats;
  comm::World world(1);
  world.run([&](comm::Communicator& c) {
    // Composite.
    amr::AmrOptions aopts;
    aopts.gmg = base;
    aopts.patch = patch;
    aopts.tolerance = 1e-9;
    amr::AmrHierarchy hier(aopts, CartDecomp({s, s, s}, {1, 1, 1}), 0);
    hier.set_rhs(rhs);
    amr::CompositeSolver solver(hier);
    Timer t;
    const amr::CompositeResult cres = solver.solve(c);
    comp.seconds = t.elapsed();
    comp.cycles = cres.cycles;
    const std::int64_t sc = s;
    comp.dofs = sc * sc * sc + 7 * (sc / 2) * (sc / 2) * (sc / 2);
    const MgLevel& P = hier.patch();
    const Vec3 plo = hier.geometry().part_fine.lo;
    const real_t hf = P.h;
    for_each(inner_fine, [&](index_t i, index_t j, index_t k) {
      const real_t u =
          exact_u((i + 0.5) * hf, (j + 0.5) * hf, (k + 0.5) * hf);
      comp.error = std::max(
          comp.error, std::abs(P.x(i - plo.x, j - plo.y, k - plo.z) - u));
    });
    plan_stats = hier.solver().level(0).grid->plan_cache_stats();
    if (!cres.converged) std::cout << "  WARNING: composite not converged\n";

    // Uniformly fine reference, solved to the same relative residual.
    GmgSolver fsolver(base, CartDecomp({2 * s, 2 * s, 2 * s}, {1, 1, 1}),
                      0);
    fsolver.set_rhs(rhs);
    fsolver.set_solve_params(1e-9 * fsolver.residual_norm(c), 100);
    t.restart();
    const SolveResult fres = fsolver.solve(c);
    fine.seconds = t.elapsed();
    fine.cycles = fres.vcycles;
    fine.dofs = 8 * sc * sc * sc;
    const real_t hu = fsolver.level(0).h;
    for_each(inner_fine, [&](index_t i, index_t j, index_t k) {
      const real_t u =
          exact_u((i + 0.5) * hu, (j + 0.5) * hu, (k + 0.5) * hu);
      fine.error =
          std::max(fine.error, std::abs(fsolver.solution()(i, j, k) - u));
    });

    // Unrefined control: same coarse grid, no patch.
    GmgSolver csolver(base, CartDecomp({s, s, s}, {1, 1, 1}), 0);
    csolver.set_rhs(rhs);
    csolver.set_solve_params(1e-9 * csolver.residual_norm(c), 100);
    t.restart();
    const SolveResult hres = csolver.solve(c);
    coarse.seconds = t.elapsed();
    coarse.cycles = hres.vcycles;
    coarse.dofs = sc * sc * sc;
    const real_t hh = csolver.level(0).h;
    for_each(coarsen(inner_fine, 2), [&](index_t i, index_t j, index_t k) {
      const real_t u =
          exact_u((i + 0.5) * hh, (j + 0.5) * hh, (k + 0.5) * hh);
      coarse.error =
          std::max(coarse.error, std::abs(csolver.solution()(i, j, k) - u));
    });
  });

  const auto report = [](const char* name, const RunResult& r) {
    std::cout << "  " << name << ": " << r.seconds << " s, " << r.cycles
              << " cycles, " << r.dofs << " dofs, max err " << r.error
              << "\n";
  };
  report("composite   ", comp);
  report("uniform fine", fine);
  report("coarse only ", coarse);
  std::cout << "  speedup vs uniform fine: " << fine.seconds / comp.seconds
            << "x at " << comp.error / fine.error
            << "x the fine-grid error (coarse-only error is "
            << coarse.error / comp.error << "x worse)\n"
            << "  plan cache: " << plan_stats.hits << " hits / "
            << plan_stats.misses << " misses, " << plan_stats.entries
            << " entries\n";

  std::ofstream os("BENCH_amr.json");
  os << "{\n  \"bench\": \"amr_refine\",\n"
     << "  \"coarse\": \"" << s << "^3\",\n  \"patch_coarse_cells\": \""
     << patch << "\",\n  \"uniform\": \"" << 2 * s << "^3\",\n"
     << "  \"composite_seconds\": " << comp.seconds << ",\n"
     << "  \"composite_cycles\": " << comp.cycles << ",\n"
     << "  \"composite_dofs\": " << comp.dofs << ",\n"
     << "  \"composite_max_err\": " << comp.error << ",\n"
     << "  \"uniform_seconds\": " << fine.seconds << ",\n"
     << "  \"uniform_cycles\": " << fine.cycles << ",\n"
     << "  \"uniform_dofs\": " << fine.dofs << ",\n"
     << "  \"uniform_max_err\": " << fine.error << ",\n"
     << "  \"coarse_seconds\": " << coarse.seconds << ",\n"
     << "  \"coarse_max_err\": " << coarse.error << ",\n"
     << "  \"speedup_vs_uniform\": " << fine.seconds / comp.seconds << ",\n"
     << "  \"err_ratio_vs_uniform\": " << comp.error / fine.error << ",\n"
     << "  \"plan_cache_hits\": " << plan_stats.hits << ",\n"
     << "  \"plan_cache_misses\": " << plan_stats.misses << "\n}\n";
  bench::note("  wrote BENCH_amr.json");
  bench::finish_trace(trace_out);
  return 0;
}
