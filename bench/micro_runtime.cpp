// Kernel-runtime ablation: the five V-cycle operators on the live
// host, swept over worker counts and over the two runtime modes
// (persistent engine pool vs legacy OpenMP fork/join). Both modes use
// the same chunk plan, so any throughput delta is pure dispatch cost.
// Writes BENCH_kernel_runtime.json.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "check/schedule.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "exec/runtime.hpp"
#include "gmg/schedule_audit.hpp"
#include "gmg/solver.hpp"

using namespace gmg;

namespace {

struct Config {
  exec::KernelRuntime mode;
  int workers;  // engine pool size (ignored by the OpenMP mode)
  std::string label;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_out =
      bench::parse_trace_out(argc, argv, "micro_runtime");
  const index_t n = 64, bdim = 8;
  const int default_workers = exec::resolved_default_workers();

  bench::section(
      "Kernel runtime ablation — GStencil/s per operator, 64^3, bricks "
      "8^3: persistent engine pool at 1/2/default workers vs the OpenMP "
      "fork/join reference (identical chunk plans)");
  std::cout << "  hardware_concurrency = "
            << std::thread::hardware_concurrency()
            << ", default workers = " << default_workers << "\n";

  std::vector<Config> configs{
      {exec::KernelRuntime::kEnginePool, 1, "pool-1"},
      {exec::KernelRuntime::kEnginePool, 2, "pool-2"},
  };
  if (default_workers != 1 && default_workers != 2) {
    configs.push_back({exec::KernelRuntime::kEnginePool, default_workers,
                       "pool-" + std::to_string(default_workers)});
  }
  configs.push_back(
      {exec::KernelRuntime::kOpenMP, default_workers, "omp-forkjoin"});

  // throughput[config][op] in GStencil/s (cells updated per second).
  // Two interleaved passes, best kept, so no config systematically
  // benefits from running on a warmer core than the others.
  std::vector<std::vector<double>> gsps(
      configs.size(), std::vector<double>(arch::kNumOps, 0.0));
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
      const Config& cfg = configs[ci];
      exec::set_kernel_runtime(cfg.mode);
      exec::configure_default_engine(cfg.workers);
      for (int opi = 0; opi < arch::kNumOps; ++opi) {
        const auto op = static_cast<arch::Op>(opi);
        const double secs = bench::measure_host_kernel(op, n, bdim, 9);
        const double points =
            arch::points_for(op, static_cast<double>(n) * n * n);
        gsps[ci][static_cast<std::size_t>(opi)] =
            std::max(gsps[ci][static_cast<std::size_t>(opi)],
                     points / secs / 1e9);
      }
    }
  }
  // Restore the environment-selected defaults for whatever runs next.
  exec::set_kernel_runtime(exec::KernelRuntime::kEnginePool);
  exec::configure_default_engine(default_workers);

  std::vector<std::string> headers{"op"};
  for (const Config& cfg : configs) headers.push_back(cfg.label);
  Table t(headers);
  for (int opi = 0; opi < arch::kNumOps; ++opi) {
    auto& row = t.row().cell(arch::op_name(static_cast<arch::Op>(opi)));
    for (std::size_t ci = 0; ci < configs.size(); ++ci)
      row.cell(gsps[ci][static_cast<std::size_t>(opi)], 3);
  }
  t.print();
  t.write_csv("bench/out/micro_runtime.csv");
  bench::note(
      "  pool-N spins the persistent engine with N workers; omp-forkjoin\n"
      "  is the pre-runtime `#pragma omp parallel for` dispatch. On a\n"
      "  single-core host all configs collapse to the serial fast path.");

  // --- cross-stage fusion: fused descent vs the sum of its split
  // stages (DESIGN.md §16), at the default worker count. Throughput
  // counts the same stencil updates for both schedules (fine
  // smooth+residual points plus coarse restriction points), so the
  // GStencil/s ratio IS the wall-time ratio.
  bench::section(
      "Fused descent — one-pass smooth+residual+restriction vs the "
      "split stages, 64^3, bricks 8^3, default workers");
  const bench::FusedDescentTimes fd = bench::measure_fused_descent(n, bdim, 9);
  const double descent_points =
      static_cast<double>(n) * n * n +
      static_cast<double>(n / 2) * (n / 2) * (n / 2);
  const double split_gsps = descent_points / fd.split_sum() / 1e9;
  const double fused_gsps = descent_points / fd.fused / 1e9;
  Table ft({"schedule", "wall_s", "GStencil/s"});
  ft.row()
      .cell("split smooth+residual")
      .cell(fd.split_smooth_residual, 6)
      .cell("");
  ft.row().cell("split restriction").cell(fd.split_restriction, 6).cell("");
  ft.row().cell("split sum").cell(fd.split_sum(), 6).cell(split_gsps, 3);
  ft.row().cell("fused").cell(fd.fused, 6).cell(fused_gsps, 3);
  ft.print();
  ft.write_csv("bench/out/micro_runtime_fused.csv");
  bench::note("  fused/split speedup = " +
              std::to_string(fd.split_sum() / fd.fused));

  // --- setup-time schedule verification (DESIGN.md §18): what the
  // static proof costs relative to the solver setup it rides on. The
  // ctor hook is disabled so the record+verify phases are timed
  // separately from hierarchy construction; the proof covers both the
  // V-cycle and FMG schedules, exactly what the constructor proves.
  bench::section(
      "Schedule verification overhead — record + prove the planned "
      "V-cycle/FMG launch sequences vs solver setup, 128^3, bricks 8^3");
  const bool verify_was = check::verify_schedule_enabled();
  check::set_verify_schedule_enabled(false);
  const index_t vn = 128;  // production-shape setup: allocation,
                           // first-touch and plan builds dominate
  double setup_s = 1e300, proof_s = 1e300;
  std::size_t proof_steps = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const CartDecomp decomp({vn, vn, vn}, {1, 1, 1});
    Timer tm;
    GmgSolver solver(GmgOptions{}, decomp, 0);
    setup_s = std::min(setup_s, tm.elapsed());
    tm.restart();
    const check::Schedule sched = record_solver_schedule(solver);
    const check::Schedule fmg = record_fmg_schedule(solver);
    check::ScheduleVerifier().verify(sched);
    check::ScheduleVerifier().verify(fmg);
    proof_s = std::min(proof_s, tm.elapsed());
    proof_steps = sched.steps.size() + fmg.steps.size();
  }
  check::set_verify_schedule_enabled(verify_was);
  const double verify_pct = 100.0 * proof_s / setup_s;
  Table vt({"phase", "wall_s"});
  vt.row().cell("solver setup").cell(setup_s, 6);
  vt.row().cell("record + prove").cell(proof_s, 6);
  vt.print();
  bench::note("  proof overhead = " + std::to_string(verify_pct) +
              "% of setup over " + std::to_string(proof_steps) +
              " schedule steps (budget: 5%)");

  std::ofstream os("BENCH_kernel_runtime.json");
  os << "{\n  \"bench\": \"micro_runtime\",\n"
     << "  \"n\": " << n << ",\n  \"brick_dim\": " << bdim << ",\n"
     << "  \"hardware_concurrency\": "
     << std::thread::hardware_concurrency() << ",\n"
     << "  \"default_workers\": " << default_workers << ",\n"
     << "  \"unit\": \"GStencil/s\",\n"
     << "  \"fused_descent\": {\n"
     << "    \"split_smooth_residual_s\": " << fd.split_smooth_residual
     << ",\n"
     << "    \"split_restriction_s\": " << fd.split_restriction << ",\n"
     << "    \"split_sum_s\": " << fd.split_sum() << ",\n"
     << "    \"fused_s\": " << fd.fused << ",\n"
     << "    \"split_gstencil_per_s\": " << split_gsps << ",\n"
     << "    \"fused_gstencil_per_s\": " << fused_gsps << ",\n"
     << "    \"fused_over_split_speedup\": " << fd.split_sum() / fd.fused
     << "\n  },\n"
     << "  \"schedule_verify\": {\n"
     << "    \"setup_s\": " << setup_s << ",\n"
     << "    \"proof_s\": " << proof_s << ",\n"
     << "    \"proof_steps\": " << proof_steps << ",\n"
     << "    \"overhead_pct\": " << verify_pct << ",\n"
     << "    \"budget_pct\": 5\n  },\n"
     << "  \"configs\": [\n";
  for (std::size_t ci = 0; ci < configs.size(); ++ci) {
    const Config& cfg = configs[ci];
    os << "    {\"label\": \"" << cfg.label << "\", \"runtime\": \""
       << (cfg.mode == exec::KernelRuntime::kEnginePool ? "engine_pool"
                                                        : "openmp")
       << "\", \"workers\": " << cfg.workers << ", \"ops\": {";
    for (int opi = 0; opi < arch::kNumOps; ++opi) {
      os << "\"" << arch::op_name(static_cast<arch::Op>(opi))
         << "\": " << gsps[ci][static_cast<std::size_t>(opi)]
         << (opi + 1 < arch::kNumOps ? ", " : "");
    }
    os << "}}" << (ci + 1 < configs.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  std::cout << "  wrote BENCH_kernel_runtime.json\n";
  bench::finish_trace(trace_out);
  return 0;
}
