// Table III: performance portability Phi based on fraction of the
// empirical roofline, per V-cycle operation at the finest level.
// GPU columns carry the profiler-derived efficiencies the paper
// reports (calibration constants in src/arch); the Host column is
// measured live on this machine through the identical pipeline.
#include <iostream>

#include "arch/roofline.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"

using namespace gmg;

int main() {
  bench::section("Table III — Phi from fraction of the Roofline");
  const arch::ArchSpec host = bench::calibrated_host();
  const auto platforms = arch::paper_platforms();

  Table t({"Operation", "A100 CUDA", "MI250X GCD HIP", "PVC tile SYCL",
           "Phi (3 GPUs)", "Host OpenMP (measured)"});
  std::vector<double> per_op_phi;
  for (int op = 0; op < arch::kNumOps; ++op) {
    t.row().cell(arch::op_name(static_cast<arch::Op>(op)));
    std::vector<double> e;
    for (const arch::ArchSpec* spec : platforms) {
      e.push_back(spec->frac_roofline[op]);
      t.cell_percent(spec->frac_roofline[op], 0);
    }
    const double phi = arch::harmonic_mean(e);
    per_op_phi.push_back(phi);
    t.cell_percent(phi, 0);
    t.cell_percent(host.frac_roofline[op], 0);
  }
  t.print();
  t.write_csv("bench/out/table3_phi_roofline.csv");

  const double overall = arch::harmonic_mean(per_op_phi);
  std::cout << "  overall Phi across platforms and operations: "
            << overall * 100 << "% (paper: 73%)\n";

  std::vector<double> host_ops(host.frac_roofline.begin(),
                               host.frac_roofline.end());
  std::cout << "  host-only harmonic mean across operations: "
            << arch::harmonic_mean(host_ops) * 100 << "%\n";
  return 0;
}
