// Figure 5: GStencil/s per invocation for applyOp (top) and
// smooth+residual (bottom) across all V-cycle levels (512^3 down to
// 16^3 per rank), with the theoretical per-architecture ceilings and
// the fitted latency/throughput law f(x) = x / (alpha + x/beta).
//
// Per-system series come from the calibrated device model (the same
// law the paper fits); the fitted alpha must land in the paper's
// 5–20 us empirical range. A live host series with its own fit
// exercises the identical pipeline on real measurements.
#include <algorithm>
#include <fstream>
#include <iostream>

#include "arch/device_model.hpp"
#include "bench/bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "common/table.hpp"
#include "net/net_model.hpp"
#include "trace/trace.hpp"

using namespace gmg;

namespace {

void modeled_series(arch::Op op) {
  bench::section(std::string("Fig. 5 — ") + arch::op_name(op) +
                 " GStencil/s per level (modeled)");
  Table t({"level", "points", "Perlmutter A100", "Frontier MI250X GCD",
           "Sunspot PVC tile"});
  std::vector<arch::DeviceModel> devs;
  for (const arch::ArchSpec* spec : arch::paper_platforms())
    devs.emplace_back(*spec);

  std::vector<std::vector<double>> xs(devs.size()), ts(devs.size());
  for (int l = 0; l < 6; ++l) {
    const double n = static_cast<double>(512 >> l);
    const double points = n * n * n;
    t.row().cell(static_cast<long>(l));
    t.cell(std::to_string(static_cast<long>(n)) + "^3");
    for (std::size_t d = 0; d < devs.size(); ++d) {
      t.cell(devs[d].gstencils_per_s(op, points), 2);
      xs[d].push_back(points * arch::bytes_per_point(op));
      ts[d].push_back(devs[d].kernel_time(op, points));
    }
  }
  t.print();
  t.write_csv(std::string("bench/out/fig5_") + (op == arch::Op::kApplyOp
                                          ? "applyop"
                                          : "smooth_residual") +
              ".csv");

  AsciiPlot plot({56, 14, /*log_x=*/true, /*log_y=*/true, "points",
                  "GStencil/s (log-log)"});
  for (std::size_t d = 0; d < devs.size(); ++d) {
    std::vector<std::pair<double, double>> pts;
    for (int l = 0; l < 6; ++l) {
      const double nn = static_cast<double>(512 >> l);
      const double points = nn * nn * nn;
      pts.emplace_back(points, devs[d].gstencils_per_s(op, points));
    }
    plot.add_series(devs[d].spec().system, std::move(pts));
  }
  plot.print();

  for (std::size_t d = 0; d < devs.size(); ++d) {
    const net::LinearParams fit = net::fit_linear_model(xs[d], ts[d]);
    std::cout << "  " << devs[d].spec().system
              << ": ceiling = " << devs[d].ceiling_gstencils(op)
              << " GStencil/s, fitted latency alpha = "
              << fit.alpha_s * 1e6 << " us (paper: 5-20 us), fitted BW = "
              << fit.beta_bytes_s / 1e9 << " GB/s\n";
  }
}

void measured_host_series() {
  bench::section(
      "Fig. 5 (measured) — live host GStencil/s vs size, with fitted "
      "f(x) = x/(alpha + x/beta)");
  const arch::ArchSpec host = arch::host_cpu();
  Table t({"size", "applyOp GStencil/s", "smooth+residual GStencil/s"});
  std::vector<double> xs_a, ts_a, xs_s, ts_s;
  for (index_t n : {16, 24, 32, 48, 64, 96}) {
    const double points = static_cast<double>(n) * n * n;
    const double ta = bench::measure_host_kernel(arch::Op::kApplyOp, n, 8);
    const double ts =
        bench::measure_host_kernel(arch::Op::kSmoothResidual, n, 8);
    t.row()
        .cell(std::to_string(n) + "^3")
        .cell(points / ta / 1e9, 3)
        .cell(points / ts / 1e9, 3);
    xs_a.push_back(points * arch::bytes_per_point(arch::Op::kApplyOp));
    ts_a.push_back(ta);
    xs_s.push_back(points * arch::bytes_per_point(arch::Op::kSmoothResidual));
    ts_s.push_back(ts);
  }
  t.print();
  t.write_csv("bench/out/fig5_host_measured.csv");
  const auto fa = net::fit_linear_model(xs_a, ts_a);
  const auto fs = net::fit_linear_model(xs_s, ts_s);
  std::cout << "  host applyOp fit:        alpha = " << fa.alpha_s * 1e6
            << " us, beta = " << fa.beta_bytes_s / 1e9 << " GB/s\n"
            << "  host smooth+residual fit: alpha = " << fs.alpha_s * 1e6
            << " us, beta = " << fs.beta_bytes_s / 1e9 << " GB/s\n"
            << "  host STREAM bandwidth:    " << host.hbm_measured_gbs
            << " GB/s (fit beta should approach this)\n"
            << "  host ceiling applyOp:     " << host.hbm_measured_gbs / 16.0
            << " GStencil/s\n";
}

/// Satellite artifact: the tracing subsystem's measured cost on the
/// kernel hot path. Each kernel is timed twice with the identical
/// harness — spans recorded vs trace::set_enabled(false) — and the
/// throughput pair lands in BENCH_trace_overhead.json so CI can
/// regress the <2% overhead budget stated in DESIGN.md.
void trace_overhead_artifact() {
  bench::section(
      "Trace overhead — kernel GStencil/s with tracing enabled vs "
      "disabled (budget: < 2%)");
  // (a) Direct probe: the deterministic cost of recording one span
  // (clock read + ring push), the number the A/B comparison below is
  // validated against on a noisy shared host.
  constexpr int kSpanReps = 50000;  // stays under the ring capacity
  trace::clear();
  Timer probe;
  for (int i = 0; i < kSpanReps; ++i) {
    trace::TraceSpan s("overhead.probe");
  }
  const double span_ns = probe.elapsed() / kSpanReps * 1e9;
  trace::clear();  // drop the probe spans from any --trace-out output

  // (b) A/B comparison: median over interleaved traced/untraced passes
  // (each pass best-of-5) so slow drift cancels out.
  struct Row {
    arch::Op op;
    const char* name;
    double on_s = 0, off_s = 0;
  };
  Row rows[] = {{arch::Op::kApplyOp, "applyOp"},
                {arch::Op::kSmoothResidual, "smooth+residual"},
                {arch::Op::kSmooth, "smooth"}};
  const index_t n = 64;
  const double points = static_cast<double>(n) * n * n;
  constexpr int kPasses = 5;
  const auto median = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  for (Row& r : rows) {
    std::vector<double> on, off;
    for (int pass = 0; pass < kPasses; ++pass) {
      trace::set_enabled(true);
      on.push_back(bench::measure_host_kernel(r.op, n, 8, 5));
      trace::set_enabled(false);
      off.push_back(bench::measure_host_kernel(r.op, n, 8, 5));
    }
    trace::set_enabled(true);
    r.on_s = median(on);
    r.off_s = median(off);
  }

  Table t({"kernel", "traced GStencil/s", "untraced GStencil/s",
           "A/B overhead %", "span-cost overhead %"});
  double max_span_overhead = 0;
  for (const Row& r : rows) {
    const double ab_pct = (r.on_s - r.off_s) / r.off_s * 100.0;
    // One span + one counter per kernel invocation.
    const double span_pct = 2.0 * span_ns / (r.off_s * 1e9) * 100.0;
    max_span_overhead = std::max(max_span_overhead, span_pct);
    t.row()
        .cell(r.name)
        .cell(points / r.on_s / 1e9, 3)
        .cell(points / r.off_s / 1e9, 3)
        .cell(ab_pct, 2)
        .cell(span_pct, 4);
  }
  t.print();
  std::cout << "  span record cost: " << span_ns
            << " ns (A/B deltas beyond span-cost are host timing noise)\n";

  std::ofstream os("BENCH_trace_overhead.json");
  os << "{\n  \"bench\": \"fig5_kernel_throughput\",\n"
     << "  \"subdomain\": \"" << n << "^3\",\n"
     << "  \"budget_pct\": 2.0,\n"
     << "  \"span_record_cost_ns\": " << span_ns << ",\n"
     << "  \"kernels\": [\n";
  bool first = true;
  for (const Row& r : rows) {
    if (!first) os << ",\n";
    first = false;
    os << "    {\"name\": \"" << r.name << "\", \"traced_gstencil_per_s\": "
       << points / r.on_s / 1e9 << ", \"untraced_gstencil_per_s\": "
       << points / r.off_s / 1e9 << ", \"ab_overhead_pct\": "
       << (r.on_s - r.off_s) / r.off_s * 100.0
       << ", \"span_cost_overhead_pct\": "
       << 2.0 * span_ns / (r.off_s * 1e9) * 100.0 << "}";
  }
  os << "\n  ],\n  \"max_span_cost_overhead_pct\": " << max_span_overhead
     << "\n}\n";
  bench::note("  wrote BENCH_trace_overhead.json");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_out =
      bench::parse_trace_out(argc, argv, "fig5_kernel_throughput");
  modeled_series(arch::Op::kApplyOp);
  modeled_series(arch::Op::kSmoothResidual);
  measured_host_series();
  trace_overhead_artifact();
  bench::finish_trace(trace_out);
  return 0;
}
