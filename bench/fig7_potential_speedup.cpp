// Figure 7: potential-speedup plot — every (operation, architecture)
// pair positioned by fraction of theoretical AI (x) and fraction of
// the roofline (y), with speedup = (1/x) * (1/y). The paper's
// takeaways: NVIDIA <=1.2x headroom everywhere; MI250X mostly
// 1.2-1.5x with the interpolation outlier near 4x; PVC 1.5-2x.
#include <iostream>

#include "arch/roofline.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"

using namespace gmg;

int main() {
  bench::section("Fig. 7 — potential speedup per (operation, architecture)");
  Table t({"Architecture", "Operation", "frac theoretical AI",
           "frac roofline", "potential speedup"});
  double worst[3] = {0, 0, 0};
  const auto platforms = arch::paper_platforms();
  for (std::size_t p = 0; p < platforms.size(); ++p) {
    for (int op = 0; op < arch::kNumOps; ++op) {
      const double fx = platforms[p]->frac_theoretical_ai[op];
      const double fy = platforms[p]->frac_roofline[op];
      const double s = arch::potential_speedup(fy, fx);
      worst[p] = std::max(worst[p], s);
      t.row()
          .cell(platforms[p]->name)
          .cell(arch::op_name(static_cast<arch::Op>(op)))
          .cell_percent(fx, 0)
          .cell_percent(fy, 0)
          .cell(s, 2);
    }
  }
  t.print();
  t.write_csv("bench/out/fig7_potential_speedup.csv");
  std::cout << "  max headroom: A100 " << worst[0] << "x (paper <=1.2x+), "
            << "MI250X GCD " << worst[1] << "x (paper ~4x outlier), "
            << "PVC tile " << worst[2] << "x (paper 1.5-2x)\n";
  return 0;
}
