// Figure 4: relative performance (time per V-cycle) of the bricked
// GMG vs HPGMG, the conventional CUDA finite-volume GMG proxy. The
// paper reports 1.58x on Perlmutter and 1.46x on Frontier, with the
// Sunspot result roughly at parity — all relative to HPGMG-CUDA
// running on the A100 (HPGMG has no HIP/SYCL port).
//
// Here the comparator is the in-repo conventional-layout solver
// (src/baseline): measured head-to-head on the live host, and priced
// per system by the same V-cycle model with (a) depth-1 ghost
// exchanges every smooth and (b) the measured array-vs-brick kernel
// efficiency penalty applied.
#include <iostream>

#include "baseline/solver_array.hpp"
#include "bench/bench_util.hpp"
#include "comm/simmpi.hpp"
#include "common/table.hpp"
#include "gmg/solver.hpp"
#include "net/net_model.hpp"
#include "perf/vcycle_model.hpp"

using namespace gmg;

namespace {

real_t sine_rhs(real_t x, real_t y, real_t z) {
  return std::sin(2 * M_PI * x) * std::sin(2 * M_PI * y) *
         std::sin(2 * M_PI * z);
}

/// Measured host array/brick kernel time ratios (>1 means bricks win).
std::array<double, arch::kNumOps> measured_layout_penalty(index_t n) {
  std::array<double, arch::kNumOps> penalty{};
  // Time the array-layout kernels through the baseline operators by
  // running whole V-cycles would conflate exchange; instead reuse the
  // per-kernel measurement for bricks and compare against a dedicated
  // array-layout timing below.
  Array3D x({n, n, n}, 1), b({n, n, n}, 1), Ax({n, n, n}, 1), r({n, n, n}, 1);
  Array3D coarse({n / 2, n / 2, n / 2}, 1);
  for_each(x.interior(), [&](index_t i, index_t j, index_t k) {
    x(i, j, k) = 0.25 * static_cast<real_t>((i * 7 + j * 3 + k) % 11);
    b(i, j, k) = 0.5 * static_cast<real_t>((i + j * 5 + k * 2) % 7);
  });
  x.fill_ghosts_periodic();
  b.fill_ghosts_periodic();
  const Box interior = x.interior();
  const auto time_of = [&](auto&& fn) {
    fn();
    double best = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      Timer t;
      fn();
      best = std::min(best, t.elapsed());
    }
    return best;
  };
  const double ta[arch::kNumOps] = {
      time_of([&] { baseline::apply_op(Ax, x, -6, 1, interior); }),
      time_of([&] { baseline::smooth(x, Ax, b, 0.1, interior); }),
      time_of([&] { baseline::smooth_residual(x, r, Ax, b, 0.1, interior); }),
      time_of([&] { baseline::restriction(coarse, r); }),
      time_of([&] { baseline::interpolation_increment(x, coarse); })};
  for (int op = 0; op < arch::kNumOps; ++op) {
    const double tb = bench::measure_host_kernel(static_cast<arch::Op>(op),
                                                 n, 8);
    penalty[static_cast<std::size_t>(op)] = ta[op] / tb;
  }
  return penalty;
}

void measured_host_comparison() {
  bench::section(
      "Fig. 4 (measured) — bricked GMG vs conventional-layout GMG on the "
      "live host, 64^3, 4 levels, time per V-cycle");
  const CartDecomp decomp({64, 64, 64}, {1, 1, 1});
  comm::World world(1);
  double brick_s = 0, array_s = 0;
  world.run([&](comm::Communicator& c) {
    GmgOptions bo;
    bo.levels = 4;
    bo.smooths = 12;
    bo.bottom_smooths = 100;
    bo.brick = BrickShape::cube(8);
    // Single-rank on-node comparison: isolate the storage layout.
    // CA's redundant ghost computation only pays off against a real
    // network (see micro_ca and the modeled table below).
    bo.communication_avoiding = false;
    GmgSolver bsolver(bo, decomp, 0);
    bsolver.set_rhs(sine_rhs);
    bsolver.vcycle(c);  // warm-up
    Timer tb;
    for (int v = 0; v < 3; ++v) bsolver.vcycle(c);
    brick_s = tb.elapsed() / 3;

    baseline::ArrayGmgOptions ao;
    ao.levels = 4;
    ao.smooths = 12;
    ao.bottom_smooths = 100;
    baseline::ArrayGmgSolver asolver(ao, decomp, 0);
    asolver.set_rhs(sine_rhs);
    asolver.vcycle(c);
    Timer ta;
    for (int v = 0; v < 3; ++v) asolver.vcycle(c);
    array_s = ta.elapsed() / 3;
  });
  std::cout << "  bricked GMG:      " << brick_s << " s/V-cycle\n"
            << "  conventional GMG: " << array_s << " s/V-cycle\n"
            << "  speedup:          " << array_s / brick_s << "x\n";
}

void modeled_fig4() {
  bench::section(
      "Fig. 4 (modeled) — time/V-cycle relative to the HPGMG-style "
      "comparator on the A100 (512^3/rank, 8 nodes)");
  const auto penalty = measured_layout_penalty(64);
  std::cout << "  measured array-layout kernel penalty (array/brick time): ";
  for (int op = 0; op < arch::kNumOps; ++op)
    std::cout << penalty[static_cast<std::size_t>(op)] << (op + 1 < arch::kNumOps ? ", " : "\n");

  // HPGMG-style comparator on the A100: conventional layout, depth-1
  // ghosts, exchange before every smooth, unfused kernels. Its kernel
  // fraction-of-roofline is set to 0.70x the bricked kernels' — the
  // gap between HPGMG-CUDA's straightforward kernels and the
  // blocked/vector-folded ones that Table III quantifies (we cannot
  // profile HPGMG-CUDA without an A100; the measured host layout
  // penalty above is the live analogue of the same gap).
  constexpr double kHpgmgKernelEfficiency = 0.70;
  arch::ArchSpec hpgmg_spec = arch::a100();
  for (int op = 0; op < arch::kNumOps; ++op) {
    hpgmg_spec.frac_roofline[op] *= kHpgmgKernelEfficiency;
  }
  perf::VcycleModelInput ref_in;
  ref_in.subdomain = {512, 512, 512};
  ref_in.levels = 6;
  ref_in.smooths = 12;
  ref_in.bottom_smooths = 100;
  ref_in.communication_avoiding = false;
  ref_in.ghost_depth = 1;
  ref_in.brick_dim = 8;
  ref_in.fused_smooth_residual = false;  // HPGMG: separate kernels
  ref_in.pack_free = false;              // element-wise pack/unpack
  const double hpgmg_s =
      perf::model_vcycle(arch::DeviceModel(hpgmg_spec),
                         net::NetworkModel(arch::a100()), ref_in)
          .total_s;

  Table t({"system", "GMG-bricks s/V-cycle", "HPGMG-CUDA(A100) s/V-cycle",
           "relative performance"});
  for (const arch::ArchSpec* spec : arch::paper_platforms()) {
    perf::VcycleModelInput in;
    in.subdomain = {512, 512, 512};
    in.levels = 6;
    in.smooths = 12;
    in.bottom_smooths = 100;
    in.brick_dim = spec->brick_dim;
    const double ours =
        perf::model_vcycle(arch::DeviceModel(*spec),
                           net::NetworkModel(*spec), in)
            .total_s;
    t.row().cell(spec->system).cell(ours, 4).cell(hpgmg_s, 4).cell(
        hpgmg_s / ours, 2);
  }
  t.print();
  t.write_csv("bench/out/fig4_hpgmg_compare.csv");
  bench::note(
      "  paper reference: Perlmutter 1.58x, Frontier 1.46x, Sunspot ~1x.");
}

}  // namespace

int main() {
  measured_host_comparison();
  modeled_fig4();
  return 0;
}
