// Table II: percentage of the total finest-level (512^3) time spent in
// each V-cycle operation, with communication avoiding on. Modeled per
// paper system; also measured live on the host from a real solver run.
#include <iostream>

#include "bench/bench_util.hpp"
#include "comm/simmpi.hpp"
#include "common/table.hpp"
#include "gmg/solver.hpp"
#include "net/net_model.hpp"
#include "perf/vcycle_model.hpp"

using namespace gmg;

namespace {

void modeled_table2() {
  bench::section("Table II — % of finest-level time per operation (modeled)");
  Table t({"Operation", "A100 (CUDA)", "MI250X GCD (HIP)", "PVC tile (SYCL)"});

  std::vector<perf::LevelCost> finest;
  for (const arch::ArchSpec* spec : arch::paper_platforms()) {
    perf::VcycleModelInput in;
    in.subdomain = {512, 512, 512};
    in.levels = 6;
    in.smooths = 12;
    in.bottom_smooths = 100;
    in.brick_dim = spec->brick_dim;
    finest.push_back(perf::model_vcycle(arch::DeviceModel(*spec),
                                        net::NetworkModel(*spec), in)
                         .levels[0]);
  }

  const auto row = [&](const std::string& name, auto pick) {
    t.row().cell(name);
    for (const auto& l0 : finest) t.cell_percent(pick(l0) / l0.total_s());
  };
  row("applyOp", [](const perf::LevelCost& c) { return c.applyop_s; });
  row("smooth+residual",
      [](const perf::LevelCost& c) { return c.smooth_residual_s; });
  row("restriction", [](const perf::LevelCost& c) { return c.restriction_s; });
  row("interpolation+increment",
      [](const perf::LevelCost& c) { return c.interp_s; });
  row("exchange", [](const perf::LevelCost& c) { return c.exchange_s; });
  t.print();
  t.write_csv("bench/out/table2_op_breakdown.csv");
  bench::note(
      "  paper reference (A100): 25.0 / 54.5 / 1.0 / 1.9 / 17.5 %.");
}

void measured_table2() {
  bench::section(
      "Table II (measured) — finest-level breakdown of a live 8-rank host "
      "run, 32^3/rank");
  const CartDecomp decomp({64, 64, 64}, {2, 2, 2});
  comm::World world(8);
  std::map<perf::Phase, double> breakdown;
  world.run([&](comm::Communicator& c) {
    GmgOptions opts;
    opts.levels = 3;
    opts.smooths = 12;
    opts.bottom_smooths = 100;
    opts.brick = BrickShape::cube(4);
    opts.max_vcycles = 2;
    opts.tolerance = 0;
    GmgSolver solver(opts, decomp, c.rank());
    solver.set_rhs([](real_t x, real_t y, real_t z) {
      return std::sin(2 * M_PI * x) * std::sin(2 * M_PI * y) *
             std::sin(2 * M_PI * z);
    });
    solver.solve(c);
    if (c.rank() == 0) breakdown = solver.profiler().level_breakdown(0);
  });
  Table t({"Operation", "Host (OpenMP)"});
  for (const auto& [phase, frac] : breakdown) {
    t.row().cell(perf::phase_name(phase)).cell_percent(frac);
  }
  t.print();
  bench::note(
      "  note: simmpi exchange time on a single shared core reflects "
      "thread scheduling, not a network — the modeled table above is the "
      "paper-comparable one.");
}

}  // namespace

int main() {
  modeled_table2();
  measured_table2();
  return 0;
}
