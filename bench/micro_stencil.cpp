// Microbenchmark (ablation §V): fine-grain data blocking vs the
// conventional ijk array layout for the V-cycle kernels, and the
// brick-size choice (8^3 vs 4^3, the paper's per-platform tuning).
#include <benchmark/benchmark.h>

#include "baseline/operators_array.hpp"
#include "dsl/apply_brick.hpp"
#include "dsl/stencils.hpp"
#include "gmg/operators.hpp"

namespace {

using namespace gmg;

constexpr index_t kN = 64;

struct BrickFixture {
  BrickedArray x, b, Ax, r;
  explicit BrickFixture(index_t bdim)
      : x(BrickedArray::create({kN, kN, kN}, BrickShape::cube(bdim))),
        b(x.grid_ptr(), x.shape()),
        Ax(x.grid_ptr(), x.shape()),
        r(x.grid_ptr(), x.shape()) {
    for_each(Box::from_extent({kN, kN, kN}),
             [&](index_t i, index_t j, index_t k) {
               x(i, j, k) = static_cast<real_t>((i + j + k) % 13);
               b(i, j, k) = static_cast<real_t>((i * j + k) % 7);
             });
    x.fill_ghosts_periodic();
    b.fill_ghosts_periodic();
  }
};

void BM_ApplyOp_Brick(benchmark::State& state) {
  BrickFixture f(state.range(0));
  const Box interior = Box::from_extent({kN, kN, kN});
  for (auto _ : state) {
    apply_op(f.Ax, f.x, -6.0, 1.0, interior);
    benchmark::DoNotOptimize(f.Ax.data());
  }
  state.counters["GStencil/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kN * kN * kN / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ApplyOp_Brick)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_ApplyOp_Array(benchmark::State& state) {
  Array3D x({kN, kN, kN}, 1), Ax({kN, kN, kN}, 1);
  for_each(x.interior(), [&](index_t i, index_t j, index_t k) {
    x(i, j, k) = static_cast<real_t>((i + j + k) % 13);
  });
  x.fill_ghosts_periodic();
  for (auto _ : state) {
    baseline::apply_op(Ax, x, -6.0, 1.0, x.interior());
    benchmark::DoNotOptimize(Ax.data());
  }
  state.counters["GStencil/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kN * kN * kN / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ApplyOp_Array)->Unit(benchmark::kMillisecond);

void BM_SmoothResidual_Brick(benchmark::State& state) {
  BrickFixture f(state.range(0));
  const Box interior = Box::from_extent({kN, kN, kN});
  apply_op(f.Ax, f.x, -6.0, 1.0, interior);
  for (auto _ : state) {
    smooth_residual(f.x, f.r, f.Ax, f.b, 1e-6, interior);
    benchmark::DoNotOptimize(f.x.data());
  }
  state.counters["GStencil/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kN * kN * kN / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SmoothResidual_Brick)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_SmoothResidual_Array(benchmark::State& state) {
  Array3D x({kN, kN, kN}, 1), b({kN, kN, kN}, 1), Ax({kN, kN, kN}, 1),
      r({kN, kN, kN}, 1);
  for_each(x.interior(), [&](index_t i, index_t j, index_t k) {
    x(i, j, k) = static_cast<real_t>((i + j + k) % 13);
    b(i, j, k) = static_cast<real_t>((i * j + k) % 7);
  });
  x.fill_ghosts_periodic();
  baseline::apply_op(Ax, x, -6.0, 1.0, x.interior());
  for (auto _ : state) {
    baseline::smooth_residual(x, r, Ax, b, 1e-6, x.interior());
    benchmark::DoNotOptimize(x.data());
  }
  state.counters["GStencil/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kN * kN * kN / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SmoothResidual_Array)->Unit(benchmark::kMillisecond);

void BM_Restriction_Brick(benchmark::State& state) {
  BrickFixture f(8);
  BrickedArray coarse =
      BrickedArray::create({kN / 2, kN / 2, kN / 2}, BrickShape::cube(8));
  for (auto _ : state) {
    restriction(coarse, f.x);
    benchmark::DoNotOptimize(coarse.data());
  }
}
BENCHMARK(BM_Restriction_Brick)->Unit(benchmark::kMillisecond);

void BM_InterpIncrement_Brick(benchmark::State& state) {
  BrickFixture f(8);
  BrickedArray coarse =
      BrickedArray::create({kN / 2, kN / 2, kN / 2}, BrickShape::cube(8));
  coarse.fill(0.5);
  for (auto _ : state) {
    interpolation_increment(f.x, coarse);
    benchmark::DoNotOptimize(f.x.data());
  }
}
BENCHMARK(BM_InterpIncrement_Brick)->Unit(benchmark::kMillisecond);

// The generic expression-template engine vs the specialized
// row-pointer kernel for the same 7-point stencil — the gap the
// paper's "vector code generator" closes by emitting specialized code
// per stencil (our apply_op plays that role).
void BM_ApplyOp_BrickGenericDsl(benchmark::State& state) {
  BrickFixture f(state.range(0));
  const Box interior = Box::from_extent({kN, kN, kN});
  const auto expr = dsl::laplacian_7pt<0>(-6.0, 1.0);
  for (auto _ : state) {
    dsl::apply(expr, f.Ax, interior, f.x);
    benchmark::DoNotOptimize(f.Ax.data());
  }
  state.counters["GStencil/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kN * kN * kN / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ApplyOp_BrickGenericDsl)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Higher-radius star stencils through the DSL: the vector-folding /
// shell-core split pays off more as the radius grows.
template <int R>
void BM_StarStencil_Brick(benchmark::State& state) {
  BrickFixture f(8);
  std::array<real_t, R + 1> c{};
  c.fill(0.125);
  const auto expr = dsl::star_stencil<R, 0>(c);
  const Box interior = Box::from_extent({kN, kN, kN});
  for (auto _ : state) {
    dsl::apply(expr, f.Ax, interior, f.x);
    benchmark::DoNotOptimize(f.Ax.data());
  }
}
BENCHMARK(BM_StarStencil_Brick<2>)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StarStencil_Brick<4>)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
