// Figure 3: total execution time per multigrid level for a 1024^3
// Poisson solve on 8 nodes (512^3 per rank, one A100 / MI250X GCD /
// PVC tile per node), 6 levels, 12 smooths per level, 100 at the
// coarsest, communication-avoiding enabled.
//
// Per-system times come from the calibrated device+network models over
// the exact Algorithm 2 schedule (DESIGN.md §2); a live 8-rank simmpi
// run of the same schedule on the host validates the schedule itself
// and prints the artifact-format profile.
#include <iostream>

#include "bench/bench_util.hpp"
#include "comm/simmpi.hpp"
#include "common/table.hpp"
#include "gmg/solver.hpp"
#include "net/net_model.hpp"
#include "perf/vcycle_model.hpp"

using namespace gmg;

namespace {

void modeled_fig3() {
  bench::section(
      "Fig. 3 — total time per level [s], 12 V-cycles, 512^3/rank on 8 "
      "nodes (modeled per system)");
  const int kVcycles = 12;

  std::vector<perf::VcycleCost> costs;
  for (const arch::ArchSpec* spec : arch::paper_platforms()) {
    const arch::DeviceModel dev(*spec);
    const net::NetworkModel net(*spec, net::Protocol::kForceRendezvous);
    perf::VcycleModelInput in;
    in.subdomain = {512, 512, 512};
    in.levels = 6;
    in.smooths = 12;
    in.bottom_smooths = 100;
    in.brick_dim = spec->brick_dim;
    in.communication_avoiding = true;
    in.remote_neighbors = 26;
    in.total_ranks = 8;
    in.nodes = 8;
    costs.push_back(perf::model_vcycle(dev, net, in));
  }

  Table t({"level", "cells/rank", "Perlmutter A100", "Frontier MI250X GCD",
           "Sunspot PVC tile"});
  for (std::size_t l = 0; l < 6; ++l) {
    t.row().cell(static_cast<long>(l));
    const Vec3 c = costs[0].levels[l].cells;
    t.cell(std::to_string(c.x) + "^3");
    for (const auto& cost : costs)
      t.cell(cost.levels[l].total_s() * kVcycles, 4);
  }
  t.row().cell("total").cell("");
  for (const auto& cost : costs) t.cell(cost.total_s * kVcycles, 4);
  t.print();
  t.write_csv("bench/out/fig3_level_times.csv");

  // The paper's headline observation: between large levels the time
  // ratio tracks the ~4x surface ratio (communication-dominated), not
  // the 8x volume ratio, and flattens at the latency floor.
  for (std::size_t s = 0; s < costs.size(); ++s) {
    const double r01 =
        costs[s].levels[0].total_s() / costs[s].levels[1].total_s();
    std::cout << "  " << arch::paper_platforms()[s]->system
              << ": level0/level1 time ratio = " << r01
              << " (volume ratio would be 8, surface ratio 4)\n";
  }
}

/// One live validation run; returns rank 0's per-(level, phase) wall
/// totals so the fused-vs-split comparison below can contrast the
/// descent stages directly.
perf::Profiler measured_host_run(bool fuse_stages) {
  bench::section(
      std::string("Fig. 3 validation — live 8-rank run of the same "
                  "schedule on the host (32^3/rank, 3 levels, "
                  "artifact-format profile of rank 0), fuse_stages=") +
      (fuse_stages ? "on" : "off"));
  const CartDecomp decomp({64, 64, 64}, {2, 2, 2});
  comm::World world(8);
  std::string report;
  perf::Profiler prof;
  world.run([&](comm::Communicator& c) {
    GmgOptions opts;
    opts.levels = 3;
    opts.smooths = 12;
    opts.bottom_smooths = 100;
    opts.brick = BrickShape::cube(4);
    opts.max_vcycles = 2;
    opts.tolerance = 0;  // run exactly max_vcycles
    opts.fuse_stages = fuse_stages;
    GmgSolver solver(opts, decomp, c.rank());
    solver.set_rhs([](real_t x, real_t y, real_t z) {
      return std::sin(2 * M_PI * x) * std::sin(2 * M_PI * y) *
             std::sin(2 * M_PI * z);
    });
    solver.solve(c);
    if (c.rank() == 0) {
      report = solver.profiler().report();
      prof = solver.profiler();
    }
  });
  std::cout << report;

  // Per-stage wall breakdown per level (rank 0).
  Table t({"level", "stage", "wall_s", "share"});
  for (int l = 0; l <= prof.max_level(); ++l) {
    for (const auto& [phase, share] : prof.level_breakdown(l)) {
      t.row()
          .cell(static_cast<long>(l))
          .cell(perf::phase_name(phase))
          .cell(prof.total(l, phase), 5)
          .cell(share, 3);
    }
    std::cout << "level " << l << " total: " << prof.level_total(l)
              << " s\n";
  }
  t.print();
  return prof;
}

/// Sum of the descent-tail stage walls across levels: the phases the
/// fused schedule collapses into one pass.
double descent_stage_seconds(const perf::Profiler& prof) {
  double s = 0;
  for (int l = 0; l <= prof.max_level(); ++l) {
    s += prof.total(l, perf::Phase::kSmoothResidual);
    s += prof.total(l, perf::Phase::kRestriction);
    s += prof.total(l, perf::Phase::kFusedDescent);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_out =
      bench::parse_trace_out(argc, argv, "fig3_level_times");
  modeled_fig3();
  const perf::Profiler fused_prof = measured_host_run(/*fuse_stages=*/true);
  const perf::Profiler split_prof = measured_host_run(/*fuse_stages=*/false);
  bench::note(
      "  descent stages (smooth+residual / restriction / fused), all "
      "levels:\n  fused  " +
      std::to_string(descent_stage_seconds(fused_prof)) + " s\n  split  " +
      std::to_string(descent_stage_seconds(split_prof)) + " s");
  bench::finish_trace(trace_out);
  return 0;
}
