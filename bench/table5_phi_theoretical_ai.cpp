// Table V: performance portability Phi based on fraction of the
// theoretical arithmetic intensity — i.e. how close each kernel's
// actual data movement comes to the compulsory (infinite-cache)
// bound. GPU columns: paper-reported profiler efficiencies. Host
// column: measured by replaying the kernels' address traces through
// an LRU model of the host cache.
#include <iostream>

#include "arch/roofline.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"

using namespace gmg;

int main() {
  bench::section("Table V — Phi from fraction of theoretical AI");
  const arch::ArchSpec host = bench::calibrated_host();
  const auto platforms = arch::paper_platforms();

  Table t({"Operation", "A100 CUDA", "MI250X GCD HIP", "PVC tile SYCL",
           "Phi (3 GPUs)", "Host OpenMP (cache-sim)"});
  std::vector<double> per_op_phi;
  for (int op = 0; op < arch::kNumOps; ++op) {
    t.row().cell(arch::op_name(static_cast<arch::Op>(op)));
    std::vector<double> e;
    for (const arch::ArchSpec* spec : platforms) {
      e.push_back(spec->frac_theoretical_ai[op]);
      t.cell_percent(spec->frac_theoretical_ai[op], 0);
    }
    const double phi = arch::harmonic_mean(e);
    per_op_phi.push_back(phi);
    t.cell_percent(phi, 0);
    t.cell_percent(std::min(1.0, host.frac_theoretical_ai[op]), 0);
  }
  t.print();
  t.write_csv("bench/out/table5_phi_theoretical_ai.csv");

  std::cout << "  overall Phi across platforms and operations: "
            << arch::harmonic_mean(per_op_phi) * 100 << "% (paper: 92%)\n";
  return 0;
}
